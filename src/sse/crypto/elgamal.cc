#include "sse/crypto/elgamal.h"

#include <openssl/bn.h>

#include <string>

#include "sse/crypto/sha256.h"
#include "sse/obs/metrics_registry.h"
#include "sse/util/serde.h"

namespace sse::crypto {

namespace {

// RFC 3526 MODP primes (generator 2). Stored as hex.
constexpr const char* kModp1536Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF";

constexpr const char* kModp2048Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

constexpr const char* kModp3072Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AAAC42DAD33170D04507A33"
    "A85521ABDF1CBA64ECFB850458DBEF0A8AEA71575D060C7DB3970F85A6E1E4C7"
    "ABF5AE8CDB0933D71E8C94E04A25619DCEE3D2261AD2EE6BF12FFA06D98A0864"
    "D87602733EC86A64521F2B18177B200CBBE117577A615D6C770988C0BAD946E2"
    "08E24FA074E5AB3143DB5BFCE0FD108E4B82D120A93AD2CAFFFFFFFFFFFFFFFF";

// 512-bit safe prime (p = 2q+1) for fast tests. INSECURE at this size;
// generated once with `openssl prime -generate -bits 512 -safe`.
constexpr const char* kToy512Hex =
    "D39CE5FD2026EBDE1273DCFC61507421ABF8CBD21D32970CA2EE4A54144FFEA8"
    "1125D09C77700CCDD7C60851E7E48610731FD96DB4ED661CB927DB337CC0D177";

struct Group {
  BIGNUM* p;
  BIGNUM* g;
};

// Builds (and leaks, intentionally — process lifetime) the named group.
Result<Group> GetGroup(ElGamalGroupId id) {
  const char* hex = nullptr;
  switch (id) {
    case ElGamalGroupId::kToy512:
      hex = kToy512Hex;
      break;
    case ElGamalGroupId::kModp1536:
      hex = kModp1536Hex;
      break;
    case ElGamalGroupId::kModp2048:
      hex = kModp2048Hex;
      break;
    case ElGamalGroupId::kModp3072:
      hex = kModp3072Hex;
      break;
  }
  if (hex == nullptr) return Status::InvalidArgument("unknown ElGamal group");
  BIGNUM* p = nullptr;
  if (BN_hex2bn(&p, hex) == 0) {
    return Status::CryptoError("BN_hex2bn failed for group prime");
  }
  BIGNUM* g = BN_new();
  if (g == nullptr || BN_set_word(g, 2) != 1) {
    BN_free(p);
    BN_free(g);
    return Status::CryptoError("failed to build generator");
  }
  return Group{p, g};
}

// Fixed-width big-endian encoding, matching the group's modulus size so
// that KDF inputs and wire sizes are canonical.
Bytes BnToBytesPadded(const BIGNUM* bn, size_t width) {
  Bytes out(width, 0);
  const size_t n = static_cast<size_t>(BN_num_bytes(bn));
  BN_bn2bin(bn, out.data() + (width - n));
  return out;
}

constexpr size_t kExponentBytes = 32;  // 256-bit short exponents.
constexpr const char* kKdfLabel = "sse.elgamal.kdf";

Result<Bytes> DeriveMaskKey(const BIGNUM* shared, size_t modulus_bytes) {
  Bytes encoded = BnToBytesPadded(shared, modulus_bytes);
  Bytes label = StringToBytes(kKdfLabel);
  return Sha256Concat(label, encoded);
}

}  // namespace

struct ElGamal::Impl {
  BIGNUM* p = nullptr;
  BIGNUM* g = nullptr;
  BIGNUM* x = nullptr;  // secret key
  BIGNUM* h = nullptr;  // public key g^x mod p
  size_t modulus_bytes = 0;

  ~Impl() {
    BN_free(p);
    BN_free(g);
    BN_clear_free(x);
    BN_free(h);
  }
};

ElGamal::ElGamal(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)), group_id_(ElGamalGroupId::kModp2048) {}

ElGamal::ElGamal(ElGamal&&) noexcept = default;
ElGamal& ElGamal::operator=(ElGamal&&) noexcept = default;
ElGamal::~ElGamal() = default;

namespace {

Result<std::unique_ptr<ElGamal::Impl>> BuildKeyPair(ElGamalGroupId group,
                                                    BytesView exponent_bytes) {
  Group grp{nullptr, nullptr};
  SSE_ASSIGN_OR_RETURN(grp, GetGroup(group));
  auto impl = std::make_unique<ElGamal::Impl>();
  impl->p = grp.p;
  impl->g = grp.g;
  impl->modulus_bytes = static_cast<size_t>(BN_num_bytes(impl->p));

  impl->x = BN_bin2bn(exponent_bytes.data(),
                      static_cast<int>(exponent_bytes.size()), nullptr);
  if (impl->x == nullptr || BN_is_zero(impl->x)) {
    return Status::CryptoError("invalid ElGamal secret exponent");
  }
  impl->h = BN_new();
  BN_CTX* ctx = BN_CTX_new();
  if (impl->h == nullptr || ctx == nullptr ||
      BN_mod_exp(impl->h, impl->g, impl->x, impl->p, ctx) != 1) {
    BN_CTX_free(ctx);
    return Status::CryptoError("BN_mod_exp failed during keygen");
  }
  BN_CTX_free(ctx);
  return impl;
}

}  // namespace

Result<ElGamal> ElGamal::Generate(ElGamalGroupId group, RandomSource& rng) {
  Bytes exponent;
  SSE_ASSIGN_OR_RETURN(exponent, rng.Generate(kExponentBytes));
  std::unique_ptr<Impl> impl;
  SSE_ASSIGN_OR_RETURN(impl, BuildKeyPair(group, exponent));
  ElGamal out(std::move(impl));
  out.group_id_ = group;
  return out;
}

Result<ElGamal> ElGamal::FromSecret(ElGamalGroupId group, BytesView secret) {
  if (secret.size() < 16) {
    return Status::InvalidArgument("ElGamal secret must be >= 16 bytes");
  }
  // Stretch the secret into a uniform 256-bit exponent.
  Bytes label = StringToBytes("sse.elgamal.secret");
  Bytes exponent;
  SSE_ASSIGN_OR_RETURN(exponent, Sha256Concat(label, secret));
  std::unique_ptr<Impl> impl;
  SSE_ASSIGN_OR_RETURN(impl, BuildKeyPair(group, exponent));
  ElGamal out(std::move(impl));
  out.group_id_ = group;
  return out;
}

Result<Bytes> ElGamal::Encrypt(BytesView message, RandomSource& rng) const {
  obs::ScopedCryptoTimer timer(obs::CryptoTimers::Global().elgamal_encrypt);
  if (message.size() > kMaxMessageSize) {
    return Status::InvalidArgument("ElGamal message exceeds 32 bytes");
  }
  Bytes eph;
  SSE_ASSIGN_OR_RETURN(eph, rng.Generate(kExponentBytes));
  BIGNUM* y = BN_bin2bn(eph.data(), static_cast<int>(eph.size()), nullptr);
  BIGNUM* c1 = BN_new();
  BIGNUM* s = BN_new();
  BN_CTX* ctx = BN_CTX_new();
  Status status = Status::OK();
  Bytes out;
  if (y == nullptr || c1 == nullptr || s == nullptr || ctx == nullptr ||
      BN_is_zero(y)) {
    status = Status::CryptoError("ElGamal encrypt allocation failed");
  } else if (BN_mod_exp(c1, impl_->g, y, impl_->p, ctx) != 1 ||
             BN_mod_exp(s, impl_->h, y, impl_->p, ctx) != 1) {
    status = Status::CryptoError("ElGamal encrypt exponentiation failed");
  } else {
    Result<Bytes> key = DeriveMaskKey(s, impl_->modulus_bytes);
    if (!key.ok()) {
      status = key.status();
    } else {
      // c2 = first |m| bytes of the mask XOR message, plus a length byte so
      // Decrypt knows the original size.
      Bytes c2(message.size());
      for (size_t i = 0; i < message.size(); ++i) {
        c2[i] = message[i] ^ key.value()[i];
      }
      BufferWriter w;
      w.PutBytes(BnToBytesPadded(c1, impl_->modulus_bytes));
      w.PutBytes(c2);
      out = w.TakeData();
    }
  }
  BN_clear_free(y);
  BN_free(c1);
  BN_clear_free(s);
  BN_CTX_free(ctx);
  if (!status.ok()) return status;
  return out;
}

Result<Bytes> ElGamal::Decrypt(BytesView ciphertext) const {
  obs::ScopedCryptoTimer timer(obs::CryptoTimers::Global().elgamal_decrypt);
  BufferReader r(ciphertext);
  Bytes c1_bytes;
  SSE_ASSIGN_OR_RETURN(c1_bytes, r.GetBytes(impl_->modulus_bytes + 8));
  Bytes c2;
  SSE_ASSIGN_OR_RETURN(c2, r.GetBytes(kMaxMessageSize));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  if (c1_bytes.size() != impl_->modulus_bytes) {
    return Status::CryptoError("ElGamal c1 has wrong width");
  }

  BIGNUM* c1 = BN_bin2bn(c1_bytes.data(), static_cast<int>(c1_bytes.size()),
                         nullptr);
  BIGNUM* s = BN_new();
  BN_CTX* ctx = BN_CTX_new();
  Status status = Status::OK();
  Bytes out;
  if (c1 == nullptr || s == nullptr || ctx == nullptr) {
    status = Status::CryptoError("ElGamal decrypt allocation failed");
  } else if (BN_is_zero(c1) || BN_cmp(c1, impl_->p) >= 0) {
    status = Status::CryptoError("ElGamal c1 outside group range");
  } else if (BN_mod_exp(s, c1, impl_->x, impl_->p, ctx) != 1) {
    status = Status::CryptoError("ElGamal decrypt exponentiation failed");
  } else {
    Result<Bytes> key = DeriveMaskKey(s, impl_->modulus_bytes);
    if (!key.ok()) {
      status = key.status();
    } else {
      out.resize(c2.size());
      for (size_t i = 0; i < c2.size(); ++i) out[i] = c2[i] ^ key.value()[i];
    }
  }
  BN_free(c1);
  BN_clear_free(s);
  BN_CTX_free(ctx);
  if (!status.ok()) return status;
  return out;
}

size_t ElGamal::CiphertextSize() const {
  // varint(|c1|) is 2 bytes for all supported groups; varint(32) is 1 byte.
  BufferWriter w;
  w.PutVarint(impl_->modulus_bytes);
  const size_t c1_prefix = w.size();
  return c1_prefix + impl_->modulus_bytes + 1 + kMaxMessageSize;
}

}  // namespace sse::crypto
