#ifndef SSE_NET_TCP_H_
#define SSE_NET_TCP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sse/engine/worker_pool.h"
#include "sse/net/admission.h"
#include "sse/net/channel.h"
#include "sse/net/connection.h"
#include "sse/net/frame.h"
#include "sse/net/reactor.h"
#include "sse/obs/metrics_registry.h"
#include "sse/util/result.h"

namespace sse::net {

/// Loopback/network transport for the protocols: a real TCP server serving
/// any `MessageHandler`, and a matching `Channel` client. Framing is a
/// little-endian u32 length prefix around `Message::Encode()` bytes — the
/// same bytes the in-process channel counts, so measurements transfer.
///
/// The server is an event-driven reactor (`net/reactor.h`): a fixed set of
/// epoll loop threads owns every accepted socket as a non-blocking
/// `Connection` state machine (`net/connection.h`), and decoded request
/// frames are dispatched into ONE process-wide worker pool shared by all
/// connections. The thread budget is therefore `reactor_loops +
/// dispatch_workers`, independent of how many clients are connected —
/// 5k idle connections cost file descriptors and buffers, not threads.
///
/// By default the handler — a single-writer state machine for the plain
/// scheme servers — is protected by a per-server mutex, so requests from
/// different clients serialize at the dispatch point. A thread-safe
/// handler (engine::ServerEngine) opts out via
/// Options::serialize_handler=false, and concurrent connections then reach
/// the handler in parallel.
///
/// Each connection is served *pipelined* (Options::pipelined, default on):
/// the reactor decodes frames continuously and replies are written as each
/// completes — so a client with many in-flight submissions keeps the wire
/// and the handler busy at the same time. Per-connection backpressure
/// (Options::pipeline_queue) pauses reading a connection whose reply
/// window is full, pushing back through TCP flow control. Error replies
/// echo the request's session stamp (when one can be recovered) so a
/// pipelined client can correlate them with the call they answer. With a
/// concurrent handler, replies to *different* requests may be written out
/// of submission order; session-stamped clients match by (client_id, seq),
/// and un-stamped clients should keep at most one call in flight.
class TcpServer {
 public:
  struct Options {
    /// Serialize all Handle() calls on one mutex. Leave on for handlers
    /// that are not internally synchronized. (Pipelining still overlaps
    /// socket reads/writes with handling even when serialized.)
    bool serialize_handler = true;
    /// listen(2) backlog.
    int listen_backlog = 128;
    /// Pipelined serving: many frames per connection may be in flight at
    /// once. Off restores the one-request-at-a-time lockstep window.
    bool pipelined = true;
    /// Threads in the server-wide dispatch pool shared by every
    /// connection (the reactor refactor replaced the old per-connection
    /// pools; the name is kept for compatibility).
    size_t pipeline_workers = 4;
    /// Backpressure bound per connection: frames dispatched whose replies
    /// are not yet fully written. Beyond it the reactor stops reading
    /// that connection until replies drain.
    size_t pipeline_queue = 64;
    /// Answer kMsgStats admin requests in the server itself (from the
    /// process-wide metrics registry and span collector) instead of
    /// forwarding them to the handler.
    bool serve_stats = true;
    /// Epoll loop threads owning the sockets.
    size_t reactor_loops = 2;
    /// Graceful-shutdown budget: Stop() lets dispatched requests finish
    /// and flushes their queued replies for up to this long before
    /// closing sockets. 0 aborts immediately (replies may be dropped).
    double drain_timeout_ms = 5000.0;
    /// Close connections with no socket activity for this long and no
    /// requests in flight (counted by sse_net_idle_closed_total). 0
    /// disables sweeping — the default, since abandoned-socket reclaim
    /// is an operator policy, not a protocol behavior.
    uint64_t idle_timeout_ms = 0;
    /// Admission control: consulted on the loop thread for every data
    /// frame before it is queued for dispatch; a refusal sheds the frame
    /// with a retryable RESOURCE_EXHAUSTED carrying the controller's
    /// retry-after hint. Null (the default) admits everything.
    std::shared_ptr<AdmissionController> admission;
    /// Hard bound on the dispatch queue: frames arriving while this many
    /// tasks already wait for a worker are shed exactly like an admission
    /// refusal. Bounds dispatch *latency*, not just memory — a request
    /// admitted under this bound waits at most max_dispatch_queue
    /// handler-times for its worker. 0 = unbounded (the default).
    size_t max_dispatch_queue = 0;
    /// Record every served/shed frame into obs::SloTracker::Global()
    /// (availability + latency attainment per op class, scraped as the
    /// sse_slo_* gauges). Also gated process-wide by
    /// obs::SetSloRecordingEnabled for benches that price the layer.
    bool slo_tracking = true;
    /// Quiet time after the last shed before the server journals a
    /// brownout_exit event (obs/events.h). Entering brownout is edge
    /// triggered on the first shed.
    uint64_t brownout_exit_ms = 1000;
  };

  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving `handler`
  /// on the reactor threads. `handler` must outlive the server.
  static Result<std::unique_ptr<TcpServer>> Start(MessageHandler* handler,
                                                  uint16_t port = 0);
  static Result<std::unique_ptr<TcpServer>> Start(MessageHandler* handler,
                                                  uint16_t port,
                                                  Options options);

  /// The actually bound port.
  uint16_t port() const { return port_; }

  /// Stops accepting, drains in-flight requests (bounded by
  /// Options::drain_timeout_ms), flushes queued replies, then closes all
  /// sockets and joins the reactor/pool threads. Idempotent; also run by
  /// the destructor.
  void Stop();

  uint64_t requests_served() const { return requests_served_.load(); }
  uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }
  /// Currently open connections (also exported as the
  /// sse_net_connections_active gauge).
  size_t connections_active() const;
  /// Fixed serving-thread budget: reactor loops + dispatch pool.
  size_t serving_threads() const;

 private:
  class Acceptor;

  TcpServer(MessageHandler* handler, int listen_fd, uint16_t port,
            Options options);
  /// Accept-loop body, run on loop 0 whenever the listener is readable.
  void AcceptReady();
  /// Closes connections idle past Options::idle_timeout_ms (periodic on
  /// loop 0; only fully quiescent connections are eligible).
  void SweepIdleConnections();
  /// Frame entry from a connection: admission check, accounting, then
  /// hand-off to the pool (or an immediate shed reply).
  void DispatchFrame(const std::shared_ptr<Connection>& conn, Bytes frame);
  /// Answers a frame refused before dispatch (admission shed or a full
  /// dispatch queue) with a session-addressed error reply, on the loop
  /// thread — shedding must be cheaper than serving.
  void ShedFrame(const std::shared_ptr<Connection>& conn, bool has_session,
                 uint64_t client_id, uint64_t seq, const Status& status);
  /// Records a shed for brownout edge detection, emitting a
  /// brownout_enter event on the not-shedding → shedding transition.
  void NoteShed(const char* reason);
  /// Emits brownout_exit once no shed has happened for
  /// Options::brownout_exit_ms; called on each admitted frame.
  void MaybeExitBrownout();
  /// Decode + handle one frame, producing the reply frame to write. Error
  /// replies are addressed with the request's session stamp when possible.
  /// `enqueued_ns` anchors the request's wire deadline: queue wait counts
  /// against the caller's budget, and expired work is dropped undone.
  Message HandleFrame(const Bytes& frame, uint64_t enqueued_ns);
  void OnConnectionClosed(Connection* conn);

  MessageHandler* handler_;
  int listen_fd_;
  uint16_t port_;
  Options options_;

  std::unique_ptr<Reactor> reactor_;
  std::unique_ptr<engine::WorkerPool> pool_;
  std::unique_ptr<Acceptor> acceptor_;

  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes Stop() callers
  bool stopped_ = false;

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  /// Requests dispatched to the pool whose replies are not yet fully on
  /// the wire (or accounted as dropped); Stop() drains this to zero.
  std::atomic<uint64_t> inflight_requests_{0};

  mutable std::mutex conns_mu_;
  std::map<Connection*, std::shared_ptr<Connection>> conns_;

  std::mutex handler_mutex_;
  obs::MetricsRegistry::Registration active_gauge_;

  /// Brownout edge detection for the event journal: set on the first shed,
  /// cleared (with a brownout_exit event) by the first admitted frame that
  /// arrives Options::brownout_exit_ms after the last shed.
  std::atomic<bool> brownout_{false};
  std::atomic<uint64_t> last_shed_ns_{0};
};

/// Client channel over a TCP connection. One `Call` = one request/response
/// round trip on the persistent connection; `Submit`/`Await` pipeline many
/// calls over it at once. Submit writes the request frame immediately and
/// records the call as in flight; Await reads frames until the awaited
/// reply arrives, matching session-stamped replies to their submission by
/// the (client_id, seq) echo and buffering out-of-order arrivals.
/// Un-stamped replies are matched to the oldest in-flight call (FIFO),
/// which is only reliable against servers that reply in order — stamp
/// sessions (net::RetryingChannel does) for real pipelining. A transport
/// failure mid-pipeline fails every in-flight call, since frames after the
/// failure point cannot be trusted.
///
/// The receive path runs on the same `FrameAssembler` state machine the
/// server's reactor connections use, so both ends of the wire share one
/// framing implementation (torn prefixes, oversize frames and partial
/// reads behave identically).
///
/// Every blocking step is bounded: connect uses a non-blocking dial with a
/// poll(2) deadline, send/recv carry SO_SNDTIMEO/SO_RCVTIMEO. An expired
/// timeout surfaces as DEADLINE_EXCEEDED, other socket failures as
/// IO_ERROR — both retryable. After any failure the connection is in an
/// unknown mid-frame state, so the channel marks it broken and (with
/// auto_reconnect, the default) transparently dials a fresh one on the
/// next Call; Reset() forces the same teardown, which is how the retry
/// layer flushes a stream that may hold a stale reply.
class TcpChannel : public Channel {
 public:
  struct Options {
    /// Per-step deadlines in milliseconds; 0 = unbounded (old behavior).
    double connect_timeout_ms = 5000.0;
    double send_timeout_ms = 5000.0;
    double recv_timeout_ms = 5000.0;
    /// Redial automatically on the first Call after a failure or Reset().
    bool auto_reconnect = true;
  };

  ~TcpChannel() override;
  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  /// Connects to 127.0.0.1:`port` (or `host`).
  static Result<std::unique_ptr<TcpChannel>> Connect(
      uint16_t port, const std::string& host = "127.0.0.1");
  static Result<std::unique_ptr<TcpChannel>> Connect(uint16_t port,
                                                     const std::string& host,
                                                     Options options);

  Result<Message> Call(const Message& request) override;
  CallId Submit(const Message& request) override;
  Result<Message> Await(CallId id) override;
  size_t pending_calls() const override {
    return inflight_.size() + buffered_.size();
  }

  /// Tears the connection down; with auto_reconnect the next Call redials.
  /// In-flight submissions fail with UNAVAILABLE.
  void Reset() override;

  const ChannelStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Clear(); }

  /// Caps SO_SNDTIMEO/SO_RCVTIMEO below the configured per-step timeouts
  /// so one socket exchange cannot outlive the caller's remaining call
  /// budget (see Channel::SetIoDeadlineMs). Applied to the live socket
  /// immediately and re-applied after every redial.
  void SetIoDeadlineMs(double ms) override;

  bool connected() const { return fd_ >= 0; }
  uint64_t reconnects() const { return reconnects_; }

 private:
  /// A submitted call awaiting its reply.
  struct Inflight {
    bool has_session = false;
    uint64_t client_id = 0;
    uint64_t seq = 0;
  };

  TcpChannel(int fd, std::string host, uint16_t port, Options options)
      : fd_(fd), host_(std::move(host)), port_(port), options_(options) {}

  /// Reads socket bytes into the shared frame machine until one complete
  /// frame pops out. NOT_FOUND signals a clean EOF at a frame boundary
  /// when `eof_ok_at_start`; mid-frame EOFs are IO_ERROR.
  Result<Bytes> ReceiveFrame(bool eof_ok_at_start);
  /// Redials if the connection is broken (or fails if reconnects are off).
  Status EnsureConnected();
  /// Closes the socket and marks the channel broken.
  void MarkBroken();
  /// Fails every in-flight submission with `status` (the stream is gone).
  void FailInflight(const Status& status);
  /// Buffers `reply` as the completed result for call `id`, converting an
  /// application-level kMsgError into its embedded status (as Call does).
  void Complete(CallId id, Result<Message> reply);
  /// The in-flight call a decoded (or undecodable) frame answers, or 0.
  CallId MatchReply(const Message& reply) const;

  /// The configured timeouts with the SetIoDeadlineMs cap applied.
  double EffectiveSendTimeoutMs() const;
  double EffectiveRecvTimeoutMs() const;

  int fd_;
  std::string host_;
  uint16_t port_;
  Options options_;
  double io_deadline_cap_ms_ = 0.0;  // 0 = no cap
  uint64_t reconnects_ = 0;
  ChannelStats stats_;
  FrameAssembler rx_;  // same framing state machine as the server side
  std::map<CallId, Inflight> inflight_;
  std::deque<CallId> inflight_order_;  // submission order, for FIFO matching
};

}  // namespace sse::net

#endif  // SSE_NET_TCP_H_
