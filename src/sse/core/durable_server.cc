#include "sse/core/durable_server.h"

namespace sse::core {

namespace {
std::string SnapshotPath(const std::string& dir) { return dir + "/state.snap"; }
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
}  // namespace

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    const std::string& dir, PersistableHandler* inner) {
  return Open(dir, inner, Options{});
}

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    const std::string& dir, PersistableHandler* inner, Options options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("inner handler must be non-null");
  }
  // 1. Restore the last checkpoint, if any.
  if (storage::Snapshot::Exists(SnapshotPath(dir))) {
    Bytes state;
    SSE_ASSIGN_OR_RETURN(state, storage::Snapshot::Read(SnapshotPath(dir)));
    SSE_RETURN_IF_ERROR(inner->RestoreState(state));
  }
  // 2. Replay journaled requests on top. Replies are discarded — they were
  // already delivered before the crash.
  Status replay = storage::WriteAheadLog::Replay(
      WalPath(dir), [&](BytesView record) -> Status {
        Result<net::Message> msg = net::Message::Decode(record);
        if (!msg.ok()) return msg.status();
        Result<net::Message> reply = inner->Handle(msg.value());
        if (!reply.ok()) return reply.status();
        return Status::OK();
      });
  SSE_RETURN_IF_ERROR(replay);

  Result<storage::WriteAheadLog> wal =
      storage::WriteAheadLog::Open(WalPath(dir));
  if (!wal.ok()) return wal.status();
  return std::unique_ptr<DurableServer>(
      new DurableServer(dir, inner, std::move(wal).value(), options));
}

Result<net::Message> DurableServer::Handle(const net::Message& request) {
  if (!inner_->IsMutating(request.type)) {
    return inner_->Handle(request);
  }
  // Mutations hold the commit lock shared so Checkpoint() can quiesce them.
  std::shared_lock<std::shared_mutex> commit_lock(commit_mutex_);
  // Apply first, journal second, reply last. Journaling a request the
  // handler would reject poisons the log (replay re-runs the rejection and
  // recovery fails), so only *accepted* mutations are written; because the
  // reply is not produced until the journal entry is durable, an
  // acknowledged update can never be lost. A crash between apply and
  // append loses only an unacknowledged update.
  Result<net::Message> reply = inner_->Handle(request);
  if (!reply.ok()) return reply;
  uint64_t my_seq = 0;
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    SSE_RETURN_IF_ERROR(wal_->Append(request.Encode()));
    my_seq = ++appended_seq_;
    if (options_.sync_every_append && !options_.group_commit) {
      // Per-append-fsync baseline: sync inline under the WAL mutex.
      SSE_RETURN_IF_ERROR(wal_->Sync());
      synced_seq_ = appended_seq_;
      ++syncs_performed_;
      return reply;
    }
  }
  if (options_.sync_every_append) {
    SSE_RETURN_IF_ERROR(SyncUpTo(my_seq));
  }
  return reply;
}

Status DurableServer::SyncUpTo(uint64_t seq) {
  std::unique_lock<std::mutex> lock(wal_mutex_);
  while (synced_seq_ < seq) {
    if (!sync_in_progress_) {
      // Become the leader: one fsync covers every record appended so far,
      // including those of the followers waiting behind us.
      sync_in_progress_ = true;
      const uint64_t target = appended_seq_;
      lock.unlock();
      Status s = wal_->Sync();  // stdio FILE* calls are internally locked
      lock.lock();
      sync_in_progress_ = false;
      if (!s.ok()) {
        sync_cv_.notify_all();
        return s;
      }
      if (target > synced_seq_) synced_seq_ = target;
      ++syncs_performed_;
      sync_cv_.notify_all();
    } else {
      sync_cv_.wait(lock, [this, seq] {
        return synced_seq_ >= seq || !sync_in_progress_;
      });
    }
  }
  return Status::OK();
}

uint64_t DurableServer::wal_syncs() const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  return syncs_performed_;
}

Status DurableServer::Checkpoint() {
  // Exclusive commit lock: no mutation is between apply and journal while
  // the snapshot is cut, so snapshot + truncated WAL is a consistent pair.
  std::unique_lock<std::shared_mutex> commit_lock(commit_mutex_);
  Bytes state;
  SSE_ASSIGN_OR_RETURN(state, inner_->SerializeState());
  SSE_RETURN_IF_ERROR(storage::Snapshot::Write(SnapshotPath(dir_), state));
  std::lock_guard<std::mutex> lock(wal_mutex_);
  return wal_->Reset();
}

}  // namespace sse::core
