#include "sse/core/query.h"

#include <algorithm>
#include <map>
#include <set>

namespace sse::core {

namespace {

/// Rebuilds a SearchOutcome from an id set, pulling each document's
/// plaintext from whichever constituent outcome supplied it.
SearchOutcome Assemble(const std::set<uint64_t>& ids,
                       const std::map<uint64_t, Bytes>& documents) {
  SearchOutcome out;
  out.ids.assign(ids.begin(), ids.end());
  for (uint64_t id : out.ids) {
    auto it = documents.find(id);
    if (it != documents.end()) {
      out.documents.emplace_back(id, it->second);
    }
  }
  return out;
}

}  // namespace

Result<SearchOutcome> SearchAll(SseClientInterface& client,
                                const std::vector<std::string>& keywords) {
  if (keywords.empty()) {
    return Status::InvalidArgument("conjunction over zero keywords");
  }
  std::set<uint64_t> intersection;
  std::map<uint64_t, Bytes> documents;
  bool first = true;
  for (const std::string& kw : keywords) {
    SearchOutcome outcome;
    SSE_ASSIGN_OR_RETURN(outcome, client.Search(kw));
    std::set<uint64_t> ids(outcome.ids.begin(), outcome.ids.end());
    for (auto& [id, content] : outcome.documents) {
      documents.emplace(id, std::move(content));
    }
    if (first) {
      intersection = std::move(ids);
      first = false;
    } else {
      std::set<uint64_t> kept;
      std::set_intersection(intersection.begin(), intersection.end(),
                            ids.begin(), ids.end(),
                            std::inserter(kept, kept.begin()));
      intersection = std::move(kept);
    }
    if (intersection.empty()) break;  // short-circuit
  }
  return Assemble(intersection, documents);
}

Result<SearchOutcome> SearchAny(SseClientInterface& client,
                                const std::vector<std::string>& keywords) {
  if (keywords.empty()) {
    return Status::InvalidArgument("disjunction over zero keywords");
  }
  std::set<uint64_t> all;
  std::map<uint64_t, Bytes> documents;
  for (const std::string& kw : keywords) {
    SearchOutcome outcome;
    SSE_ASSIGN_OR_RETURN(outcome, client.Search(kw));
    all.insert(outcome.ids.begin(), outcome.ids.end());
    for (auto& [id, content] : outcome.documents) {
      documents.emplace(id, std::move(content));
    }
  }
  return Assemble(all, documents);
}

Result<SearchOutcome> SearchExcept(SseClientInterface& client,
                                   const std::string& include,
                                   const std::string& exclude) {
  SearchOutcome base;
  SSE_ASSIGN_OR_RETURN(base, client.Search(include));
  SearchOutcome removed;
  SSE_ASSIGN_OR_RETURN(removed, client.Search(exclude));
  std::set<uint64_t> keep(base.ids.begin(), base.ids.end());
  for (uint64_t id : removed.ids) keep.erase(id);
  std::map<uint64_t, Bytes> documents;
  for (auto& [id, content] : base.documents) {
    documents.emplace(id, std::move(content));
  }
  return Assemble(keep, documents);
}

}  // namespace sse::core
