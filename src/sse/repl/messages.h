#ifndef SSE_REPL_MESSAGES_H_
#define SSE_REPL_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "sse/net/message.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::repl {

/// Payloads of the replication control plane (kMsgReplAppend / kMsgReplAck
/// / kMsgReplSnapshot / kMsgReplPromote). The carried WAL records are the
/// byte-exact journaled request messages — a follower's log is therefore
/// byte-identical to the primary's and replays through the same recovery
/// path on promotion.
///
/// Every primary→follower message carries the primary's fencing `epoch`:
/// promotion bumps the epoch, and a follower rejects traffic from an epoch
/// older than its own, so a deposed primary that comes back cannot
/// overwrite a promoted successor's log.

/// kMsgReplAppend: a contiguous run of WAL records starting at
/// `first_seq`. An empty run is a health probe — the follower still
/// answers with its cursor, which is how the sender learns where to ship
/// from on (re)connect.
struct ReplAppend {
  uint64_t epoch = 0;
  uint64_t first_seq = 0;
  std::vector<Bytes> records;

  net::Message ToMessage() const;
  static Result<ReplAppend> FromMessage(const net::Message& msg);
};

/// kMsgReplAck: the follower's reply to every append or snapshot.
/// `next_seq` is the sequence its durable log expects next — one cursor
/// covers catch-up, duplicate-skip and rewind: the sender resumes shipping
/// exactly there. `accepted` is false when the append was refused (epoch
/// fence, sequence gap, or local storage fault); the ack still carries
/// everything the sender needs to recover.
struct ReplAck {
  uint64_t epoch = 0;
  uint64_t next_seq = 1;
  bool accepted = true;

  net::Message ToMessage() const;
  static Result<ReplAck> FromMessage(const net::Message& msg);
};

/// kMsgReplSnapshot: full-state catch-up for a follower whose cursor fell
/// behind the primary's WAL compaction horizon. `blob` is the primary's
/// newest checkpoint in DurableServer's SDR2 format (state ‖ reply cache ‖
/// the WAL cut `cut_seq` it was taken at); the follower installs it and
/// resumes its log at `cut_seq`.
struct ReplSnapshot {
  uint64_t epoch = 0;
  uint64_t cut_seq = 1;
  Bytes blob;

  net::Message ToMessage() const;
  static Result<ReplSnapshot> FromMessage(const net::Message& msg);
};

/// kMsgReplPromote: operator RPC ordering a follower to become primary.
/// The node replays its shipped segments through the normal
/// salvage/snapshot recovery, adopts `max(own epoch, min_epoch) + 1` and
/// starts serving mutations; the reply is a ReplAck with the new epoch.
struct ReplPromote {
  uint64_t min_epoch = 0;

  net::Message ToMessage() const;
  static Result<ReplPromote> FromMessage(const net::Message& msg);
};

}  // namespace sse::repl

#endif  // SSE_REPL_MESSAGES_H_
