#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes. Usage:
#   scripts/ci.sh [--skip-tsan] [--skip-asan]
#
# 1. Configure + build everything, run the full ctest suite (the repo's
#    tier-1 gate from ROADMAP.md).
# 2. Rebuild the engine/concurrency test targets with -fsanitize=thread in
#    a separate build dir and run only the "concurrency"/"chaos" labels.
# 3. Rebuild the net/engine test targets with -fsanitize=address,undefined
#    and run the same labels (memory errors in the pipelined frame paths).
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
for arg in "$@"; do
  [[ "$arg" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$arg" == "--skip-asan" ]] && SKIP_ASAN=1
done

echo "==> tier-1: build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==> cluster: replication units + kill-the-primary chaos harness"
# The `cluster` label covers the in-process replication suite (repl_test)
# and the multi-process chaos sweep (cluster_test spawns real node
# processes over localhost TCP and SIGKILLs the primary mid-stream).
ctest --test-dir build -L cluster --output-on-failure

echo "==> obs: observability suite + machine-readable search bench"
ctest --test-dir build -L obs --output-on-failure
# Emits p50/p95/p99 and the tracing-overhead delta for trend tracking.
./build/bench/bench_table1_search BENCH_search.json >/dev/null
echo "    wrote BENCH_search.json"

echo "==> overload: deadline propagation, admission control, retry budgets"
# Deadline wire/scope units, the admission policy, the bounded dispatch
# queue, the breaker, and the brownout chaos test (open-loop saturation
# against the reactor stack with an exactly-once oracle).
ctest --test-dir build -L overload --output-on-failure

echo "==> load: open-loop load-harness smoke (deterministic, throttled)"
# bench_load --smoke pins per-op cost with a throttled handler and asserts
# the regime shape itself: the nominal point must be error-free, the
# past-watermark point must shed, and the event journal must have fired.
# The label is anchored because plain "load" also matches "overload".
ctest --test-dir build -L '^load$' --output-on-failure

echo "==> scheme3: forward-private dynamic scheme suite"
# Covers the hash-chain client/server pair, the descriptor-driven engine
# integration, and the forward-privacy property test (stale trapdoors must
# not see post-search updates).
ctest --test-dir build -L scheme3 --output-on-failure

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "==> skipping TSan pass (--skip-tsan)"
else
  echo "==> tsan: concurrency + chaos + obs + net + repl tests under ThreadSanitizer"
  cmake -B build-tsan -S . \
    -DSSE_TSAN=ON \
    -DSSE_BUILD_BENCHMARKS=OFF \
    -DSSE_BUILD_EXAMPLES=OFF >/dev/null
  # Only the labeled test targets need to exist; building them (plus their
  # libsse dependency) is much faster than a full TSan build.
  cmake --build build-tsan -j "$(nproc)" \
    --target engine_concurrency_test tcp_test chaos_test \
             obs_trace_test obs_metrics_test obs_stats_rpc_test \
             obs_slo_test obs_events_test \
             reactor_test net_scale_test repl_test scheme3_test \
             overload_test
  # repl_test (not the multi-process cluster harness — TSan doesn't see
  # across fork/exec) exercises the sender's shipping threads, the node's
  # role lock and the failover router under the race detector. scheme3_test
  # rides along for its sharded-engine broadcast searches, which hit the
  # server's relaxed stat counters from multiple shards.
  # overload_test rides in the TSan pass too: the shed path races the
  # reactor loops against the dispatch pool and the admission EWMA.
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan \
    -L "concurrency|chaos|obs|net|cluster|scheme3|overload" \
    --output-on-failure -E cluster_test
fi

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "==> skipping ASan pass (--skip-asan)"
else
  echo "==> asan: concurrency + chaos tests under Address/UBSanitizer"
  cmake -B build-asan -S . \
    -DSSE_ASAN=ON \
    -DSSE_BUILD_BENCHMARKS=OFF \
    -DSSE_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-asan -j "$(nproc)" \
    --target engine_concurrency_test tcp_test chaos_test batch_test \
             crash_recovery_test env_test reactor_test net_scale_test \
             scheme3_test overload_test
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan -L "concurrency|chaos|net|scheme3|overload" \
    --output-on-failure
  # batch_test carries no ctest label; run the binary directly so the
  # envelope codecs get their sanitizer pass too.
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/batch_test

  echo "==> asan: seeded crash-recovery sweep (SSE_CRASH_SEED=${SSE_CRASH_SEED:-default})"
  # The sweep crashes the storage Env at every faultable operation and
  # asserts recovery + exactly-once retries; a date-derived seed rotates
  # the torn-write patterns across days without losing reproducibility
  # (the failing seed is printed by the test on mismatch).
  SSE_CRASH_SEED="${SSE_CRASH_SEED:-$(date -u +%Y%m%d)}" \
    ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan -L "crash" --output-on-failure
fi

echo "==> ci.sh: all green"
