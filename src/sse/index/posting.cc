#include "sse/index/posting.h"

#include <algorithm>

#include "sse/util/serde.h"

namespace sse::index {

Result<Bytes> EncodeIdList(const DocIdList& ids) {
  BufferWriter w;
  w.PutVarint(ids.size());
  uint64_t prev = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0 && ids[i] <= prev) {
      return Status::InvalidArgument(
          "id list must be strictly increasing before encoding");
    }
    w.PutVarint(i == 0 ? ids[i] : ids[i] - prev);
    prev = ids[i];
  }
  return w.TakeData();
}

Result<DocIdList> DecodeIdList(BytesView data) {
  BufferReader r(data);
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > data.size()) {
    // Each id needs at least one byte; a bigger count is corruption.
    return Status::Corruption("posting count exceeds payload size");
  }
  DocIdList ids;
  ids.reserve(static_cast<size_t>(count));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    SSE_ASSIGN_OR_RETURN(delta, r.GetVarint());
    if (i > 0 && delta == 0) {
      return Status::Corruption("zero delta in posting list");
    }
    const uint64_t id = (i == 0) ? delta : prev + delta;
    if (i > 0 && id < prev) return Status::Corruption("posting delta overflow");
    ids.push_back(id);
    prev = id;
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return ids;
}

DocIdList Canonicalize(DocIdList ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

Result<BitVec> IdsToBitmap(size_t num_bits, const DocIdList& ids) {
  return BitVec::FromPositions(num_bits, ids);
}

DocIdList BitmapToIds(const BitVec& bitmap) { return bitmap.Ones(); }

DocIdList MergeIdLists(const DocIdList& a, const DocIdList& b) {
  DocIdList out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace sse::index
