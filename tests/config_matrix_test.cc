// Configuration matrix: every full-featured scheme (engine-capable in the
// descriptor table — the paper schemes plus forward-private Scheme 3) must
// behave identically across every server-side backend combination —
// B+-tree vs hash token index, in-memory vs log-backed document store.
// The kinds under test come from the descriptor table, so a newly
// registered engine-capable scheme enrolls here with no test changes.

#include <gtest/gtest.h>

#include <tuple>

#include "sse/core/registry.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_messages.h"
#include "test_util.h"

namespace sse::core {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::MakeTestSystem;
using sse::testing::TempDir;

using MatrixParam = std::tuple<SystemKind, bool /*hash_index*/,
                               bool /*log_backed_docs*/>;

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  ConfigMatrixTest() : rng_(12345) {
    SystemConfig config = FastTestConfig();
    config.scheme.use_hash_index = std::get<1>(GetParam());
    if (std::get<2>(GetParam())) {
      config.scheme.document_log_path = dir_.path() + "/docs.log";
    }
    sys_ = MakeTestSystem(std::get<0>(GetParam()), &rng_, config);
  }

  TempDir dir_;
  DeterministicRandom rng_;
  SseSystem sys_;
};

TEST_P(ConfigMatrixTest, StoreSearchInterleave) {
  for (uint64_t i = 0; i < 12; ++i) {
    SSE_ASSERT_OK(sys_.client->Store({Document::Make(
        i, "content-" + std::to_string(i),
        {"all", "mod" + std::to_string(i % 3)})}));
    if (i % 4 == 3) {
      auto outcome = sys_.client->Search("all");
      SSE_ASSERT_OK_RESULT(outcome);
      EXPECT_EQ(outcome->ids.size(), i + 1);
    }
  }
  auto mod1 = sys_.client->Search("mod1");
  SSE_ASSERT_OK_RESULT(mod1);
  EXPECT_EQ(mod1->ids, (std::vector<uint64_t>{1, 4, 7, 10}));
  ASSERT_EQ(mod1->documents.size(), 4u);
  EXPECT_EQ(BytesToString(mod1->documents[2].second), "content-7");
}

TEST_P(ConfigMatrixTest, FakeUpdateAndMiss) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK(sys_.client->FakeUpdate({"kw", "ghost"}));
  EXPECT_EQ(sys_.client->Search("kw")->ids, std::vector<uint64_t>{0});
  EXPECT_TRUE(sys_.client->Search("never")->ids.empty());
}

std::vector<SystemKind> EngineCapableKinds() {
  std::vector<SystemKind> kinds;
  for (const SchemeDescriptor& desc : AllSchemes()) {
    if (desc.traits.engine_capable) kinds.push_back(desc.kind);
  }
  return kinds;
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ConfigMatrixTest,
    ::testing::Combine(::testing::ValuesIn(EngineCapableKinds()),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name(SystemKindName(std::get<0>(info.param)));
      name += std::get<1>(info.param) ? "_hash" : "_btree";
      name += std::get<2>(info.param) ? "_logdocs" : "_memdocs";
      return name;
    });

TEST(ParameterMismatchTest, Scheme1BitmapCapacityMismatchRejected) {
  // Client and server disagreeing on max_documents is a deployment error;
  // the server must reject the wrong-width bitmap, not corrupt state.
  DeterministicRandom rng(9);
  SystemConfig server_config = FastTestConfig();
  server_config.scheme.max_documents = 256;
  SseSystem sys = MakeTestSystem(SystemKind::kScheme1, &rng, server_config);

  SystemConfig client_config = server_config;
  client_config.scheme.max_documents = 512;  // different bitmap width
  auto client = Scheme1Client::Create(sse::testing::TestMasterKey(),
                                      client_config.scheme, sys.channel.get(),
                                      &rng);
  ASSERT_TRUE(client.ok());
  Status s = (*client)->Store({Document::Make(0, "a", {"kw"})});
  EXPECT_EQ(s.code(), StatusCode::kProtocolError);
}

TEST(ParameterMismatchTest, Scheme2GarbageChainElementFailsCleanly) {
  DeterministicRandom rng(10);
  SseSystem sys = MakeTestSystem(SystemKind::kScheme2, &rng);
  SSE_ASSERT_OK(sys.client->Store({Document::Make(0, "a", {"kw"})}));
  // Hand-craft a search with a bogus chain element for the real token.
  auto* client = static_cast<Scheme2Client*>(sys.client.get());
  auto trapdoor = client->MakeTrapdoor("kw");
  ASSERT_TRUE(trapdoor.ok());
  S2SearchRequest req;
  req.token = trapdoor->token;
  req.chain_element = Bytes(32, 0xee);  // not on the chain
  auto reply = sys.channel->Call(req.ToMessage());
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  // And the genuine trapdoor still works afterwards.
  auto outcome = sys.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
}

}  // namespace
}  // namespace sse::core
