# Empty compiler generated dependencies file for phr_gp.
# This may be replaced when dependencies are built.
