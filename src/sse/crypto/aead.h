#ifndef SSE_CRYPTO_AEAD_H_
#define SSE_CRYPTO_AEAD_H_

#include <cstddef>

#include "sse/util/bytes.h"
#include "sse/util/random.h"
#include "sse/util/result.h"

namespace sse::crypto {

inline constexpr size_t kAeadKeySize = 32;
inline constexpr size_t kAeadNonceSize = 12;
inline constexpr size_t kAeadTagSize = 16;
/// Ciphertext expansion: nonce || ct || tag.
inline constexpr size_t kAeadOverhead = kAeadNonceSize + kAeadTagSize;

/// Authenticated encryption (AES-256-GCM) used for the data items: the
/// paper's `E_{k_m}(M_i)`. Each Seal draws a fresh random nonce which is
/// prepended to the ciphertext, so the same key can encrypt many documents.
class Aead {
 public:
  /// `key` must be exactly 32 bytes.
  static Result<Aead> Create(BytesView key);

  /// Encrypts `plaintext` binding `associated_data` (e.g. the document id,
  /// so a malicious server cannot swap ciphertexts between ids).
  Result<Bytes> Seal(BytesView plaintext, BytesView associated_data,
                     RandomSource& rng) const;

  /// Decrypts and authenticates. Fails with CRYPTO_ERROR on any tampering.
  Result<Bytes> Open(BytesView ciphertext, BytesView associated_data) const;

 private:
  explicit Aead(Bytes key) : key_(std::move(key)) {}
  Bytes key_;
};

}  // namespace sse::crypto

#endif  // SSE_CRYPTO_AEAD_H_
