#include "sse/core/scheme2_server.h"

#include <algorithm>

#include "sse/crypto/hash_chain.h"
#include "sse/crypto/stream_cipher.h"
#include "sse/util/serde.h"

namespace sse::core {

namespace {

obs::MetricsRegistry::Counter* CacheEvictionsCounter() {
  static auto* c = obs::MetricsRegistry::Global().GetCounter(
      "sse_s2_plaintext_cache_evictions_total",
      "Scheme 2 plaintext-cache entries dropped by the LRU bound");
  return c;
}

}  // namespace

Scheme2Server::Scheme2Server(const SchemeOptions& options)
    : options_(options),
      index_(options.use_hash_index, options.btree_order) {
  registrations_.push_back(obs::MetricsRegistry::Global().RegisterGauge(
      "sse_s2_plaintext_cache_entries",
      [this] {
        return static_cast<double>(
            cache_entries_.load(std::memory_order_relaxed));
      },
      "Scheme 2 keywords currently holding a decrypted posting-list cache"));
}

void Scheme2Server::TouchPlaintextCache(const Bytes& token) {
  if (options_.plaintext_cache_max_entries == 0) return;
  auto pos = cache_pos_.find(token);
  if (pos != cache_pos_.end()) {
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, pos->second);
  } else {
    cache_lru_.push_front(token);
    cache_pos_[token] = cache_lru_.begin();
  }
  while (cache_pos_.size() > options_.plaintext_cache_max_entries) {
    const Bytes victim = cache_lru_.back();
    if (Entry* evicted = index_.GetMutable(victim)) {
      // Soft state only: the segments stay; the next search of this
      // keyword decrypts them all again instead of the cached suffix.
      evicted->cached_ids.clear();
      evicted->cached_ids.shrink_to_fit();
      evicted->cached_segments = 0;
    }
    cache_pos_.erase(victim);
    cache_lru_.pop_back();
    cache_evictions_.fetch_add(1, std::memory_order_relaxed);
    CacheEvictionsCounter()->Add();
  }
  cache_entries_.store(cache_pos_.size(), std::memory_order_relaxed);
}

void Scheme2Server::ResetPlaintextCacheLru() {
  cache_lru_.clear();
  cache_pos_.clear();
  cache_entries_.store(0, std::memory_order_relaxed);
}

Result<net::Message> Scheme2Server::Handle(const net::Message& request) {
  switch (request.type) {
    case kMsgS2UpdateRequest:
      return HandleUpdate(request);
    case kMsgS2SearchRequest:
      return HandleSearch(request);
    case kMsgS2FetchAllRequest:
      return HandleFetchAll(request);
    case kMsgS2ReinitRequest:
      return HandleReinit(request);
    default:
      return Status::ProtocolError("scheme2 server: unexpected message " +
                                   net::MessageTypeName(request.type));
  }
}

Result<net::Message> Scheme2Server::HandleUpdate(const net::Message& msg) {
  S2UpdateRequest req;
  SSE_ASSIGN_OR_RETURN(req, S2UpdateRequest::FromMessage(msg));
  for (S2UpdateEntry& e : req.entries) {
    Entry* entry = index_.GetMutable(e.token);
    index_bytes_ += e.segment.ciphertext.size() + e.segment.tag.size();
    if (entry == nullptr) {
      Entry fresh;
      fresh.segments.push_back(std::move(e.segment));
      index_bytes_ += e.token.size();
      index_.Put(e.token, std::move(fresh));
    } else {
      entry->segments.push_back(std::move(e.segment));
    }
  }
  for (const WireDocument& doc : req.documents) {
    SSE_RETURN_IF_ERROR(docs_.Put(doc.id, doc.ciphertext));
  }
  S2UpdateAck ack;
  ack.keywords_updated = req.entries.size();
  return ack.ToMessage();
}

Result<net::Message> Scheme2Server::HandleSearch(const net::Message& msg) {
  S2SearchRequest req;
  SSE_ASSIGN_OR_RETURN(req, S2SearchRequest::FromMessage(msg));
  S2SearchResult result;

  Entry* entry = index_.GetMutable(req.token);
  if (entry == nullptr) {
    result.found = false;
    return result.ToMessage();
  }
  result.found = true;

  // Decide which segments still need decryption (Optimization 1: the ones
  // beyond the plaintext cache; without the cache, all of them).
  const size_t start =
      options_.server_plaintext_cache ? entry->cached_segments : 0;
  index::DocIdList ids = options_.server_plaintext_cache
                             ? entry->cached_ids
                             : index::DocIdList{};

  // Walk the chain forward from the trapdoor's element, newest segment
  // first: newer segments use deeper (smaller-index) chain elements, so
  // their keys appear earlier on the forward walk.
  Bytes position = req.chain_element;
  for (size_t j = entry->segments.size(); j-- > start;) {
    const S2Segment& seg = entry->segments[j];
    Result<crypto::HashChain::WalkResult> walk_result =
        crypto::HashChain::WalkForwardToTag(position, seg.tag,
                                            options_.chain_length);
    if (!walk_result.ok() &&
        walk_result.status().code() == StatusCode::kNotFound &&
        position != req.chain_element) {
      // Segments are normally stored newest-last with monotonically deeper
      // keys, but a rolled-back client can append a segment under an older
      // key than its predecessor. Restart the walk from the trapdoor
      // element so any key at or below the trapdoor depth stays reachable.
      walk_result = crypto::HashChain::WalkForwardToTag(
          req.chain_element, seg.tag, options_.chain_length);
    }
    if (!walk_result.ok()) return walk_result.status();
    crypto::HashChain::WalkResult walk = std::move(walk_result).value();
    total_chain_steps_ += walk.steps;
    result.chain_steps += walk.steps;
    position = walk.element;

    Result<crypto::StreamCipher> cipher =
        crypto::StreamCipher::Create(walk.element);
    if (!cipher.ok()) return cipher.status();
    Bytes plain;
    SSE_ASSIGN_OR_RETURN(plain, cipher->Decrypt(seg.ciphertext));
    index::DocIdList segment_ids;
    SSE_ASSIGN_OR_RETURN(segment_ids, index::DecodeIdList(plain));
    ids = index::MergeIdLists(ids, segment_ids);
    ++total_segments_decrypted_;
    ++result.segments_decrypted;
  }

  if (options_.server_plaintext_cache) {
    entry->cached_ids = ids;
    entry->cached_segments = entry->segments.size();
    TouchPlaintextCache(req.token);
  }

  result.ids = std::move(ids);
  std::vector<std::pair<uint64_t, Bytes>> fetched;
  SSE_ASSIGN_OR_RETURN(fetched, docs_.GetMany(result.ids));
  for (const auto& [id, blob] : fetched) {
    result.documents.push_back(WireDocument{id, blob});
  }
  return result.ToMessage();
}

Result<net::Message> Scheme2Server::HandleFetchAll(const net::Message& msg) {
  S2FetchAllRequest req;
  SSE_ASSIGN_OR_RETURN(req, S2FetchAllRequest::FromMessage(msg));
  S2FetchAllReply reply;
  reply.keywords.reserve(index_.size());
  index_.ForEach([&](const Bytes& token, const Entry& entry) {
    S2KeywordDump dump;
    dump.token = token;
    dump.segments = entry.segments;
    reply.keywords.push_back(std::move(dump));
    return true;
  });
  return reply.ToMessage();
}

Result<net::Message> Scheme2Server::HandleReinit(const net::Message& msg) {
  S2ReinitRequest req;
  SSE_ASSIGN_OR_RETURN(req, S2ReinitRequest::FromMessage(msg));
  index_.Clear();
  ResetPlaintextCacheLru();
  index_bytes_ = 0;
  for (S2UpdateEntry& e : req.entries) {
    Entry fresh;
    index_bytes_ +=
        e.token.size() + e.segment.ciphertext.size() + e.segment.tag.size();
    fresh.segments.push_back(std::move(e.segment));
    index_.Put(e.token, std::move(fresh));
  }
  S2ReinitAck ack;
  ack.keywords = req.entries.size();
  return ack.ToMessage();
}

Result<Bytes> Scheme2Server::SerializeState() const {
  BufferWriter w;
  w.PutVarint(index_.size());
  index_.ForEach([&](const Bytes& token, const Entry& entry) {
    w.PutBytes(token);
    w.PutVarint(entry.segments.size());
    for (const S2Segment& seg : entry.segments) {
      w.PutBytes(seg.ciphertext);
      w.PutBytes(seg.tag);
    }
    return true;
  });
  w.PutVarint(docs_.size());
  SSE_RETURN_IF_ERROR(docs_.ForEach([&](uint64_t id, const Bytes& blob) {
    w.PutVarint(id);
    w.PutBytes(blob);
    return true;
  }));
  return w.TakeData();
}

Status Scheme2Server::RestoreState(BytesView data) {
  TokenMap<Entry> index(options_.use_hash_index, options_.btree_order);
  storage::DocumentStore docs;
  uint64_t index_bytes = 0;

  BufferReader r(data);
  uint64_t keyword_count = 0;
  SSE_ASSIGN_OR_RETURN(keyword_count, r.GetVarint());
  for (uint64_t i = 0; i < keyword_count; ++i) {
    Bytes token;
    SSE_ASSIGN_OR_RETURN(token, r.GetBytes());
    uint64_t seg_count = 0;
    SSE_ASSIGN_OR_RETURN(seg_count, r.GetVarint());
    if (seg_count > r.remaining()) {
      return Status::Corruption("segment count exceeds payload");
    }
    Entry entry;
    entry.segments.reserve(static_cast<size_t>(seg_count));
    index_bytes += token.size();
    for (uint64_t j = 0; j < seg_count; ++j) {
      S2Segment seg;
      SSE_ASSIGN_OR_RETURN(seg.ciphertext, r.GetBytes());
      SSE_ASSIGN_OR_RETURN(seg.tag, r.GetBytes());
      index_bytes += seg.ciphertext.size() + seg.tag.size();
      entry.segments.push_back(std::move(seg));
    }
    index.Put(token, std::move(entry));
  }
  uint64_t doc_count = 0;
  SSE_ASSIGN_OR_RETURN(doc_count, r.GetVarint());
  for (uint64_t i = 0; i < doc_count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, r.GetBytes());
    SSE_RETURN_IF_ERROR(docs.Put(id, std::move(blob)));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());

  index_ = std::move(index);
  docs_ = std::move(docs);
  index_bytes_ = index_bytes;
  // The restored entries carry no plaintext caches (they are soft state,
  // never serialized), so the LRU starts over with them.
  ResetPlaintextCacheLru();
  return Status::OK();
}

bool Scheme2Server::IsMutating(uint16_t msg_type) const {
  return msg_type == kMsgS2UpdateRequest || msg_type == kMsgS2ReinitRequest;
}

Status Scheme2Server::UseLogBackedDocuments(const std::string& path) {
  if (docs_.size() != 0) {
    return Status::FailedPrecondition(
        "cannot switch document backend after documents were stored");
  }
  SSE_ASSIGN_OR_RETURN(docs_, storage::DocumentStore::OpenLogBacked(path));
  return Status::OK();
}

}  // namespace sse::core
