#include "sse/net/frame.h"

#include <algorithm>
#include <cstring>

namespace sse::net {

Bytes EncodeFrame(const Bytes& payload) {
  Bytes framed(kFrameHeaderSize + payload.size());
  for (size_t i = 0; i < kFrameHeaderSize; ++i) {
    framed[i] = static_cast<uint8_t>(payload.size() >> (8 * i));
  }
  // Zero-length frames are legal; an empty Bytes may hand out a null
  // data() pointer, which memcpy forbids even for zero sizes.
  if (!payload.empty()) {
    std::memcpy(framed.data() + kFrameHeaderSize, payload.data(),
                payload.size());
  }
  return framed;
}

Status FrameAssembler::Feed(const uint8_t* data, size_t len) {
  if (poisoned_) {
    return Status::ProtocolError("frame stream previously poisoned");
  }
  size_t pos = 0;
  while (pos < len) {
    if (!reading_payload_) {
      const size_t take =
          std::min(len - pos, kFrameHeaderSize - header_filled_);
      std::memcpy(header_ + header_filled_, data + pos, take);
      header_filled_ += take;
      pos += take;
      if (header_filled_ < kFrameHeaderSize) break;  // torn length prefix
      uint32_t frame_len = 0;
      for (size_t i = 0; i < kFrameHeaderSize; ++i) {
        frame_len |= static_cast<uint32_t>(header_[i]) << (8 * i);
      }
      if (frame_len > max_frame_) {
        poisoned_ = true;
        return Status::ProtocolError("frame length exceeds limit");
      }
      header_filled_ = 0;
      reading_payload_ = true;
      expected_ = frame_len;
      partial_.clear();
      partial_.reserve(frame_len);
    }
    if (reading_payload_) {
      const size_t take =
          std::min(len - pos, static_cast<size_t>(expected_) - partial_.size());
      partial_.insert(partial_.end(), data + pos, data + pos + take);
      pos += take;
      if (partial_.size() == expected_) {
        ready_.push_back(std::move(partial_));
        partial_ = Bytes();
        reading_payload_ = false;
        expected_ = 0;
      }
    }
  }
  return Status::OK();
}

bool FrameAssembler::Next(Bytes* frame) {
  if (ready_.empty()) return false;
  *frame = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

void FrameAssembler::Reset() {
  poisoned_ = false;
  header_filled_ = 0;
  reading_payload_ = false;
  expected_ = 0;
  partial_.clear();
  ready_.clear();
}

}  // namespace sse::net
