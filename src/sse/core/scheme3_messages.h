#ifndef SSE_CORE_SCHEME3_MESSAGES_H_
#define SSE_CORE_SCHEME3_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "sse/core/wire_common.h"
#include "sse/net/message.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::core {

/// Wire messages for Scheme 3, the forward-private dynamic scheme (after
/// Etemad–Küpçü; see DESIGN.md §13 and docs/PROTOCOL.md §8).
///
/// The defining property shows in what is ABSENT from the update wire
/// format: there is no keyword token. Update j of keyword w is stored
/// under the address f'(k_j) of a fresh per-keyword chain key
/// k_j = f^{l-j}(seed_w), so consecutive updates of the same keyword are
/// unlinkable to each other and — because f only walks toward *older*
/// keys — unlinkable to every previously released search trapdoor.
///
/// The 0x04xx range extends the net/message.h range table (which stays
/// scheme-agnostic; the constant lives here with the scheme that owns it).
inline constexpr uint16_t kMsgRangeScheme3 = 0x0400;

inline constexpr uint16_t kMsgS3UpdateRequest = kMsgRangeScheme3 + 1;
inline constexpr uint16_t kMsgS3UpdateAck = kMsgRangeScheme3 + 2;
inline constexpr uint16_t kMsgS3SearchRequest = kMsgRangeScheme3 + 3;
inline constexpr uint16_t kMsgS3SearchResult = kMsgRangeScheme3 + 4;

/// One forward-private index entry: the posting delta E_{k_j}(I_j(w))
/// filed under the unlinkable address f'(k_j).
struct S3UpdateEntry {
  Bytes address;     // f'(k_j)
  Bytes ciphertext;  // E_{k_j}(delta id list)
};

struct S3UpdateRequest {
  std::vector<S3UpdateEntry> entries;
  std::vector<WireDocument> documents;

  net::Message ToMessage() const;
  static Result<S3UpdateRequest> FromMessage(const net::Message& msg);
};

struct S3UpdateAck {
  uint64_t entries_added = 0;

  net::Message ToMessage() const;
  static Result<S3UpdateAck> FromMessage(const net::Message& msg);
};

/// Trapdoor(w) = (k_c, c): the newest chain key and the update counter.
/// The server derives every older address f'(f^i(k_c)) but no newer one.
struct S3SearchRequest {
  Bytes chain_element;
  uint32_t counter = 0;

  net::Message ToMessage() const;
  static Result<S3SearchRequest> FromMessage(const net::Message& msg);
};

struct S3SearchResult {
  bool found = false;
  std::vector<uint64_t> ids;
  std::vector<WireDocument> documents;
  /// Server-side work counters for the update-heavy benches: chain steps
  /// walked and entries decrypted for this search.
  uint64_t chain_steps = 0;
  uint64_t entries_decrypted = 0;

  net::Message ToMessage() const;
  static Result<S3SearchResult> FromMessage(const net::Message& msg);
};

}  // namespace sse::core

#endif  // SSE_CORE_SCHEME3_MESSAGES_H_
