// Seeded crash-recovery sweep over the storage fault-injection Env.
//
// A fault-free workload is recorded once as the exact wire messages a
// retrying client sent. A deterministic replay of that transcript against a
// fresh FaultyEnv fixes the storage-operation schedule (M operations) and
// the reference end state. Then, for EVERY operation index k < M, the
// workload re-runs against an env that crashes at op k — covering append,
// fsync, rotation, checkpoint (snapshot write, prune, compaction) and batch
// group-commit paths. After each crash the server is restarted against the
// surviving disk image and must recover; a client-style retry of every
// mutation (twice) must then leave the state byte-identical to the
// reference: acknowledged writes survived (their retries dedup against the
// recovered reply cache), unacknowledged ones apply exactly once.
//
// The torn-write seed is overridable via SSE_CRASH_SEED for soak runs; the
// op schedule is content-independent, so every seed sweeps the same points.

#include "sse/core/durable_server.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_server.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"
#include "sse/core/scheme3_client.h"
#include "sse/core/scheme3_server.h"
#include "sse/engine/scheme1_adapter.h"
#include "sse/engine/server_engine.h"
#include "sse/net/batch.h"
#include "sse/net/retry.h"
#include "sse/storage/faulty_env.h"
#include "test_util.h"

namespace sse {
namespace {

using ::sse::testing::FastTestConfig;
using ::sse::testing::TestMasterKey;

uint64_t CrashSeed() {
  if (const char* s = std::getenv("SSE_CRASH_SEED")) {
    return std::strtoull(s, nullptr, 10);
  }
  return 0x53534531u;
}

/// Tiny segments force a rotation on nearly every journaled record, so the
/// sweep exercises segment creation/sealing as densely as appends.
core::DurableServer::Options DurableOpts(storage::FaultyEnv* env) {
  core::DurableServer::Options opts;
  opts.env = env;
  opts.wal_segment_bytes = 256;
  return opts;
}

struct RecordedWorkload {
  std::vector<net::Message> messages;  // raw stamped requests, wire order
  std::vector<bool> mutating;          // aligned with messages
  std::vector<bool> dedupable;         // has >=1 cache-entering sub-op
  std::set<size_t> checkpoint_after;   // Checkpoint() after N messages fed
};

using InnerFactory =
    std::function<std::unique_ptr<core::PersistableHandler>()>;

/// Classifies a recorded request: does it mutate state (must be resent by
/// the oracle), and does a successful reply promise dedup cache entries
/// (plain mutations and every mutating sub-op of a batch envelope; a batch
/// of read-only sub-ops is "mutating=false, dedupable=false").
void Classify(const core::PersistableHandler& handler,
              const net::Message& request, bool* mutating, bool* dedupable) {
  if (request.type != net::kMsgBatch) {
    *mutating = handler.IsMutating(request.type);
    *dedupable = *mutating && request.has_session;
    return;
  }
  *mutating = false;
  *dedupable = false;
  auto batch = net::BatchRequest::FromMessage(request);
  ASSERT_TRUE(batch.ok());
  for (const auto& op : batch->ops) {
    if (handler.IsMutating(op.type)) {
      *mutating = true;
      *dedupable = request.has_session;
      return;
    }
  }
}

/// True if the reply means every sub-operation is durably applied. Batch
/// envelopes report per-op outcomes inside an OK envelope, so the entries
/// must be inspected: a crash mid-envelope yields error entries for the
/// sub-ops whose durability was never established.
bool FullyAcked(const net::Message& request,
                const Result<net::Message>& reply) {
  if (!reply.ok()) return false;
  if (request.type != net::kMsgBatch) return true;
  auto decoded = net::BatchReply::FromMessage(*reply);
  if (!decoded.ok()) return false;
  for (const auto& entry : decoded->entries) {
    if (entry.type == net::kMsgError) return false;
  }
  return true;
}

/// Feeds the transcript in order, checkpointing at the recorded boundaries,
/// until the env crashes. `acked[i]` is set iff message i's reply promised
/// durability — which the DurableServer only does once the record(s) are
/// fsynced.
void FeedWorkload(const RecordedWorkload& w, core::DurableServer* durable,
                  storage::FaultyEnv* env, std::vector<bool>* acked) {
  acked->assign(w.messages.size(), false);
  for (size_t i = 0; i < w.messages.size(); ++i) {
    if (env->crashed()) break;
    (*acked)[i] = FullyAcked(w.messages[i], durable->Handle(w.messages[i]));
    if (w.checkpoint_after.count(i + 1) != 0 && !env->crashed()) {
      (void)durable->Checkpoint();
    }
  }
}

/// The heart of the PR's acceptance criterion. See file comment.
void CrashSweep(const RecordedWorkload& w, const InnerFactory& make_inner,
                uint64_t min_crash_points) {
  const uint64_t seed = CrashSeed();

  // Pass 1 (fault-free): fix the op schedule and the reference state.
  uint64_t total_ops = 0;
  Bytes reference;
  {
    storage::FaultyEnv env(seed);
    auto inner = make_inner();
    auto durable = core::DurableServer::Open("/vault", inner.get(),
                                             DurableOpts(&env));
    SSE_ASSERT_OK_RESULT(durable);
    std::vector<bool> acked;
    FeedWorkload(w, durable->get(), &env, &acked);
    for (size_t i = 0; i < acked.size(); ++i) {
      ASSERT_TRUE(acked[i]) << "fault-free replay rejected message " << i;
    }
    total_ops = env.ops();
    auto state = inner->SerializeState();
    SSE_ASSERT_OK_RESULT(state);
    reference = std::move(*state);
  }
  EXPECT_GE(total_ops, min_crash_points)
      << "workload too small for a meaningful sweep";

  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("crash point " + std::to_string(k) + "/" +
                 std::to_string(total_ops) + " (seed " +
                 std::to_string(seed) + ")");
    storage::FaultyEnv env(seed);
    env.CrashAt(k);

    auto victim = make_inner();
    std::vector<bool> acked(w.messages.size(), false);
    {
      // Open itself may be the victim (crash during recovery); that run
      // simply feeds nothing and the post-restart reopen must still work.
      auto durable = core::DurableServer::Open("/vault", victim.get(),
                                               DurableOpts(&env));
      if (durable.ok()) FeedWorkload(w, durable->get(), &env, &acked);
    }
    if (!env.crashed()) env.Crash();  // schedule always fires for k < M
    env.Restart();

    // Recovery MUST succeed at every crash point.
    auto recovered = make_inner();
    auto reopened = core::DurableServer::Open("/vault", recovered.get(),
                                              DurableOpts(&env));
    ASSERT_TRUE(reopened.ok())
        << "recovery failed: " << reopened.status().message();
    const core::ReplyCache* cache = (*reopened)->reply_cache();
    ASSERT_NE(cache, nullptr);

    // Round 1: a client retries every mutation in order. Acked ones must
    // be served from the recovered dedup cache, never re-applied.
    for (size_t i = 0; i < w.messages.size(); ++i) {
      if (!w.mutating[i]) continue;
      const uint64_t hits_before = cache->hits();
      auto reply = (*reopened)->Handle(w.messages[i]);
      ASSERT_TRUE(reply.ok()) << "retry of message " << i << " failed: "
                              << reply.status().message();
      if (acked[i] && w.dedupable[i]) {
        EXPECT_GT(cache->hits(), hits_before)
            << "acked message " << i << " was not deduped after recovery";
      }
    }
    // Round 2: by now everything is cached; retries must all be no-ops.
    for (size_t i = 0; i < w.messages.size(); ++i) {
      if (!w.mutating[i]) continue;
      ASSERT_TRUE((*reopened)->Handle(w.messages[i]).ok());
    }

    auto state = recovered->SerializeState();
    SSE_ASSERT_OK_RESULT(state);
    EXPECT_EQ(*state, reference)
        << "state diverged from the fault-free reference";
  }
}

/// Scheme 1 workload: a plain client storing XOR-delta updates (the
/// non-idempotent path dedup exists for) with periodic checkpoints, then a
/// second client pushing batched update envelopes through group commit.
RecordedWorkload RecordScheme1Workload() {
  RecordedWorkload w;
  storage::FaultyEnv env(CrashSeed());
  core::SchemeOptions plain_opts = FastTestConfig().scheme;
  core::SchemeOptions batched_opts = plain_opts;
  batched_opts.batch_ops = true;

  core::Scheme1Server inner(plain_opts);
  auto durable =
      core::DurableServer::Open("/vault", &inner, DurableOpts(&env));
  EXPECT_TRUE(durable.ok());
  net::InProcessChannel::Options record;
  record.record_transcript = true;
  net::InProcessChannel channel(durable->get(), record);

  DeterministicRandom rng1(CrashSeed() ^ 0x101);
  net::RetryOptions plain_retry;
  plain_retry.client_id = 1;
  net::RetryingChannel retry1(&channel, plain_retry, &rng1);
  auto client1 =
      core::Scheme1Client::Create(TestMasterKey(), plain_opts, &retry1, &rng1);
  EXPECT_TRUE(client1.ok());
  for (int i = 0; i < 30; ++i) {
    // Reused keywords make most updates is_new=0 XOR toggles: any
    // double-apply after recovery flips bits and fails the state oracle.
    SSE_EXPECT_OK((*client1)->Store(
        {core::Document::Make(static_cast<uint64_t>(i),
                              "plain doc " + std::to_string(i),
                              {"kw" + std::to_string(i % 6)})}));
    if (i % 6 == 5) {
      SSE_EXPECT_OK((*durable)->Checkpoint());
      w.checkpoint_after.insert(channel.transcript().size());
    }
  }

  DeterministicRandom rng2(CrashSeed() ^ 0x202);
  net::RetryOptions batch_retry;
  batch_retry.client_id = 2;
  batch_retry.batch_size = 4;
  batch_retry.max_inflight = 1;  // deterministic transcript order
  net::RetryingChannel retry2(&channel, batch_retry, &rng2);
  auto client2 = core::Scheme1Client::Create(TestMasterKey(), batched_opts,
                                             &retry2, &rng2);
  EXPECT_TRUE(client2.ok());
  std::vector<core::Document> bulk;
  for (int i = 0; i < 16; ++i) {
    bulk.push_back(core::Document::Make(100 + i,
                                        "batched doc " + std::to_string(i),
                                        {"bkw" + std::to_string(i)}));
  }
  SSE_EXPECT_OK((*client2)->Store(bulk));
  SSE_EXPECT_OK((*durable)->Checkpoint());
  w.checkpoint_after.insert(channel.transcript().size());

  core::Scheme1Server classifier(plain_opts);
  for (const net::Exchange& ex : channel.transcript()) {
    bool mutating = false, dedupable = false;
    Classify(classifier, ex.request, &mutating, &dedupable);
    w.messages.push_back(ex.request);
    w.mutating.push_back(mutating);
    w.dedupable.push_back(dedupable);
  }
  return w;
}

/// Scheme 2 workload, stores only (Scheme 2 searches advance server-side
/// chain state, so a search would make the retry oracle order-sensitive).
RecordedWorkload RecordScheme2Workload() {
  RecordedWorkload w;
  storage::FaultyEnv env(CrashSeed());
  const core::SchemeOptions options = FastTestConfig().scheme;
  core::Scheme2Server inner(options);
  auto durable =
      core::DurableServer::Open("/vault", &inner, DurableOpts(&env));
  EXPECT_TRUE(durable.ok());
  net::InProcessChannel::Options record;
  record.record_transcript = true;
  net::InProcessChannel channel(durable->get(), record);

  DeterministicRandom rng(CrashSeed() ^ 0x303);
  net::RetryOptions retry_opts;
  retry_opts.client_id = 3;
  net::RetryingChannel retry(&channel, retry_opts, &rng);
  auto client =
      core::Scheme2Client::Create(TestMasterKey(), options, &retry, &rng);
  EXPECT_TRUE(client.ok());
  for (int i = 0; i < 16; ++i) {
    SSE_EXPECT_OK((*client)->Store(
        {core::Document::Make(static_cast<uint64_t>(i),
                              "s2 doc " + std::to_string(i),
                              {"s2kw" + std::to_string(i % 5)})}));
    if (i % 5 == 4) {
      SSE_EXPECT_OK((*durable)->Checkpoint());
      w.checkpoint_after.insert(channel.transcript().size());
    }
  }

  core::Scheme2Server classifier(options);
  for (const net::Exchange& ex : channel.transcript()) {
    bool mutating = false, dedupable = false;
    Classify(classifier, ex.request, &mutating, &dedupable);
    w.messages.push_back(ex.request);
    w.mutating.push_back(mutating);
    w.dedupable.push_back(dedupable);
  }
  return w;
}

/// Scheme 3 workload, stores only. The forward-private update is the
/// interesting recovery case: each update's address is single-use, so a
/// retry after recovery must dedup against the reply cache (or overwrite
/// the identical entry) without the client burning a second counter.
RecordedWorkload RecordScheme3Workload() {
  RecordedWorkload w;
  storage::FaultyEnv env(CrashSeed());
  const core::SchemeOptions options = FastTestConfig().scheme;
  core::Scheme3Server inner(options);
  auto durable =
      core::DurableServer::Open("/vault", &inner, DurableOpts(&env));
  EXPECT_TRUE(durable.ok());
  net::InProcessChannel::Options record;
  record.record_transcript = true;
  net::InProcessChannel channel(durable->get(), record);

  DeterministicRandom rng(CrashSeed() ^ 0x404);
  net::RetryOptions retry_opts;
  retry_opts.client_id = 4;
  net::RetryingChannel retry(&channel, retry_opts, &rng);
  auto client =
      core::Scheme3Client::Create(TestMasterKey(), options, &retry, &rng);
  EXPECT_TRUE(client.ok());
  for (int i = 0; i < 16; ++i) {
    SSE_EXPECT_OK((*client)->Store(
        {core::Document::Make(static_cast<uint64_t>(i),
                              "s3 doc " + std::to_string(i),
                              {"s3kw" + std::to_string(i % 5)})}));
    if (i % 5 == 4) {
      SSE_EXPECT_OK((*durable)->Checkpoint());
      w.checkpoint_after.insert(channel.transcript().size());
    }
  }

  core::Scheme3Server classifier(options);
  for (const net::Exchange& ex : channel.transcript()) {
    bool mutating = false, dedupable = false;
    Classify(classifier, ex.request, &mutating, &dedupable);
    w.messages.push_back(ex.request);
    w.mutating.push_back(mutating);
    w.dedupable.push_back(dedupable);
  }
  return w;
}

TEST(CrashRecoveryTest, Scheme1SurvivesACrashAtEveryStorageOperation) {
  const RecordedWorkload w = RecordScheme1Workload();
  ASSERT_FALSE(w.messages.empty());
  const core::SchemeOptions options = FastTestConfig().scheme;
  CrashSweep(
      w, [&] { return std::make_unique<core::Scheme1Server>(options); },
      /*min_crash_points=*/200);
}

TEST(CrashRecoveryTest, Scheme2SurvivesACrashAtEveryStorageOperation) {
  const RecordedWorkload w = RecordScheme2Workload();
  ASSERT_FALSE(w.messages.empty());
  const core::SchemeOptions options = FastTestConfig().scheme;
  CrashSweep(
      w, [&] { return std::make_unique<core::Scheme2Server>(options); },
      /*min_crash_points=*/50);
}

TEST(CrashRecoveryTest, Scheme3SurvivesACrashAtEveryStorageOperation) {
  const RecordedWorkload w = RecordScheme3Workload();
  ASSERT_FALSE(w.messages.empty());
  const core::SchemeOptions options = FastTestConfig().scheme;
  CrashSweep(
      w, [&] { return std::make_unique<core::Scheme3Server>(options); },
      /*min_crash_points=*/50);
}

TEST(CrashRecoveryTest, DegradedModeSurfacesInEngineMetrics) {
  storage::FaultyEnv env;
  DeterministicRandom rng(91);
  const core::SchemeOptions options = FastTestConfig().scheme;
  auto engine = engine::ServerEngine::Create(
      std::make_unique<engine::Scheme1Adapter>(options),
      engine::EngineOptions{});
  SSE_ASSERT_OK_RESULT(engine);
  core::DurableServer::Options dopts;
  dopts.env = &env;
  auto durable = core::DurableServer::Open("/vault", engine->get(), dopts);
  SSE_ASSERT_OK_RESULT(durable);
  net::InProcessChannel channel(durable->get());
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
  SSE_ASSERT_OK_RESULT(client);
  SSE_ASSERT_OK((*client)->Store({core::Document::Make(0, "a", {"k"})}));
  EXPECT_FALSE((*engine)->Metrics().degraded);

  // Fail the journal fsync of the next mutation (append at ops(), sync at
  // ops()+1): the fail-stop must propagate into the engine's metrics.
  env.FailAt(env.ops() + 1, storage::FaultyEnv::FaultKind::kSyncFail);
  EXPECT_FALSE((*client)->Store({core::Document::Make(1, "b", {"k"})}).ok());

  const engine::MetricsSnapshot snap = (*engine)->Metrics();
  EXPECT_TRUE(snap.degraded);
  EXPECT_GE(snap.storage_faults, 1u);
  EXPECT_TRUE((*engine)->degraded());

  // Mutations are refused, reads keep serving.
  auto refused = (*client)->Store({core::Document::Make(2, "c", {"k"})});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  auto outcome = (*client)->Search("k");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_FALSE(outcome->ids.empty());
  EXPECT_EQ(outcome->ids.front(), 0u);
}

}  // namespace
}  // namespace sse
