file(REMOVE_RECURSE
  "CMakeFiles/hash_chain_test.dir/hash_chain_test.cc.o"
  "CMakeFiles/hash_chain_test.dir/hash_chain_test.cc.o.d"
  "hash_chain_test"
  "hash_chain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
