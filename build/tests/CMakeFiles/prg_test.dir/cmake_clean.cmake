file(REMOVE_RECURSE
  "CMakeFiles/prg_test.dir/prg_test.cc.o"
  "CMakeFiles/prg_test.dir/prg_test.cc.o.d"
  "prg_test"
  "prg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
