// The storage Env abstraction: POSIX basics, plus the FaultyEnv crash
// semantics every durability test in the repo leans on — sync promotion,
// the rename-without-parent-fsync hole, torn write-back, and exact-index
// fault scheduling.

#include "sse/storage/env.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sse/storage/faulty_env.h"
#include "test_util.h"

namespace sse::storage {
namespace {

using sse::testing::TempDir;

Bytes B(const char* s) { return StringToBytes(s); }

// --- PosixEnv ---------------------------------------------------------------

TEST(PosixEnvTest, WriteReadRoundTrip) {
  TempDir dir;
  Env* env = Env::Default();
  const std::string path = dir.path() + "/file";
  auto file = env->NewWritableFile(path, true);
  SSE_ASSERT_OK_RESULT(file);
  SSE_ASSERT_OK((*file)->Append(B("hello ")));
  SSE_ASSERT_OK((*file)->Append(B("world")));
  EXPECT_EQ((*file)->size(), 11u);
  SSE_ASSERT_OK((*file)->Sync());
  SSE_ASSERT_OK((*file)->Close());

  auto read = env->ReadFile(path);
  SSE_ASSERT_OK_RESULT(read);
  EXPECT_EQ(BytesToString(*read), "hello world");
  auto size = env->FileSize(path);
  SSE_ASSERT_OK_RESULT(size);
  EXPECT_EQ(*size, 11u);
}

TEST(PosixEnvTest, ReopenWithoutTruncateAppends) {
  TempDir dir;
  Env* env = Env::Default();
  const std::string path = dir.path() + "/file";
  {
    auto file = env->NewWritableFile(path, true);
    SSE_ASSERT_OK_RESULT(file);
    SSE_ASSERT_OK((*file)->Append(B("one")));
    SSE_ASSERT_OK((*file)->Close());
  }
  {
    auto file = env->NewWritableFile(path, false);
    SSE_ASSERT_OK_RESULT(file);
    EXPECT_EQ((*file)->size(), 3u);  // initial size reflects existing bytes
    SSE_ASSERT_OK((*file)->Append(B("two")));
    SSE_ASSERT_OK((*file)->Close());
  }
  auto read = env->ReadFile(path);
  SSE_ASSERT_OK_RESULT(read);
  EXPECT_EQ(BytesToString(*read), "onetwo");
}

TEST(PosixEnvTest, TruncateDiscardsExistingContents) {
  TempDir dir;
  Env* env = Env::Default();
  const std::string path = dir.path() + "/file";
  { SSE_ASSERT_OK((*env->NewWritableFile(path, true))->Append(B("old"))); }
  {
    auto file = env->NewWritableFile(path, true);
    SSE_ASSERT_OK_RESULT(file);
    SSE_ASSERT_OK((*file)->Append(B("new")));
    SSE_ASSERT_OK((*file)->Close());
  }
  EXPECT_EQ(BytesToString(*env->ReadFile(path)), "new");
}

TEST(PosixEnvTest, ReadMissingFileIsNotFound) {
  TempDir dir;
  auto read = Env::Default()->ReadFile(dir.path() + "/absent");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(Env::Default()->FileExists(dir.path() + "/absent"));
}

TEST(PosixEnvTest, ListDirReturnsNames) {
  TempDir dir;
  Env* env = Env::Default();
  SSE_ASSERT_OK((*env->NewWritableFile(dir.path() + "/a", true))->Close());
  SSE_ASSERT_OK((*env->NewWritableFile(dir.path() + "/b", true))->Close());
  auto names = env->ListDir(dir.path());
  SSE_ASSERT_OK_RESULT(names);
  std::sort(names->begin(), names->end());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
}

TEST(PosixEnvTest, RenameReplacesAndRemoveDeletes) {
  TempDir dir;
  Env* env = Env::Default();
  SSE_ASSERT_OK((*env->NewWritableFile(dir.path() + "/from", true))
                    ->Append(B("payload")));
  SSE_ASSERT_OK((*env->NewWritableFile(dir.path() + "/to", true))
                    ->Append(B("stale")));
  SSE_ASSERT_OK(env->Rename(dir.path() + "/from", dir.path() + "/to"));
  EXPECT_FALSE(env->FileExists(dir.path() + "/from"));
  EXPECT_EQ(BytesToString(*env->ReadFile(dir.path() + "/to")), "payload");
  SSE_ASSERT_OK(env->SyncDir(dir.path()));
  SSE_ASSERT_OK(env->Remove(dir.path() + "/to"));
  EXPECT_FALSE(env->FileExists(dir.path() + "/to"));
}

// --- FaultyEnv: the two-world crash model -----------------------------------

TEST(FaultyEnvTest, UnsyncedAppendsDoNotSurviveCrash) {
  FaultyEnv env;
  auto file = env.NewWritableFile("/d/f", true);
  SSE_ASSERT_OK_RESULT(file);
  SSE_ASSERT_OK((*file)->Append(B("synced")));
  SSE_ASSERT_OK((*file)->Sync());
  SSE_ASSERT_OK(env.SyncDir("/d"));  // the entry itself must be durable too
  SSE_ASSERT_OK((*file)->Append(B("-unsynced-tail")));

  env.Crash();
  env.Restart();
  auto read = env.ReadFile("/d/f");
  SSE_ASSERT_OK_RESULT(read);
  // The synced prefix survives; the unsynced suffix survives only as a
  // (possibly empty) torn write-back prefix.
  ASSERT_GE(read->size(), 6u);
  EXPECT_EQ(BytesToString(Bytes(read->begin(), read->begin() + 6)), "synced");
  EXPECT_LE(read->size(), 6u + 14u);
}

TEST(FaultyEnvTest, TornWriteBackIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FaultyEnv env(seed);
    auto file = env.NewWritableFile("/d/f", true);
    EXPECT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Append(B("base")).ok());
    EXPECT_TRUE((*file)->Sync().ok());
    EXPECT_TRUE(env.SyncDir("/d").ok());
    EXPECT_TRUE((*file)->Append(Bytes(64, 0xab)).ok());
    env.Crash();
    env.Restart();
    return env.ReadFile("/d/f").value();
  };
  EXPECT_EQ(run(1), run(1));  // reproducible sweeps
  // Different seeds eventually produce different tear lengths (one fixed
  // pair would be flaky to assert on, so compare a small family).
  bool any_difference = false;
  for (uint64_t seed = 2; seed < 10; ++seed) {
    if (run(seed) != run(seed + 100)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultyEnvTest, FileCreationNeedsSyncDirToSurviveCrash) {
  FaultyEnv env;
  auto file = env.NewWritableFile("/d/f", true);
  SSE_ASSERT_OK_RESULT(file);
  SSE_ASSERT_OK((*file)->Append(B("content")));
  SSE_ASSERT_OK((*file)->Sync());  // content durable, entry not
  env.Crash();
  env.Restart();
  EXPECT_FALSE(env.FileExists("/d/f"));
}

TEST(FaultyEnvTest, RenameWithoutSyncDirResurrectsOldFile) {
  FaultyEnv env;
  // Durable original.
  {
    auto file = env.NewWritableFile("/d/snap", true);
    SSE_ASSERT_OK_RESULT(file);
    SSE_ASSERT_OK((*file)->Append(B("v1")));
    SSE_ASSERT_OK((*file)->Sync());
    SSE_ASSERT_OK(env.SyncDir("/d"));
  }
  // Staged replacement, renamed into place, parent never fsynced.
  {
    auto file = env.NewWritableFile("/d/snap.tmp", true);
    SSE_ASSERT_OK_RESULT(file);
    SSE_ASSERT_OK((*file)->Append(B("v2")));
    SSE_ASSERT_OK((*file)->Sync());
  }
  SSE_ASSERT_OK(env.Rename("/d/snap.tmp", "/d/snap"));
  EXPECT_EQ(BytesToString(*env.ReadFile("/d/snap")), "v2");  // live view

  env.Crash();
  env.Restart();
  // The classic hole: the rename "succeeded" but v1 is back.
  EXPECT_EQ(BytesToString(*env.ReadFile("/d/snap")), "v1");
  EXPECT_FALSE(env.FileExists("/d/snap.tmp"));

  // With the parent fsync the replacement sticks.
  {
    auto file = env.NewWritableFile("/d/snap.tmp", true);
    SSE_ASSERT_OK_RESULT(file);
    SSE_ASSERT_OK((*file)->Append(B("v3")));
    SSE_ASSERT_OK((*file)->Sync());
  }
  SSE_ASSERT_OK(env.Rename("/d/snap.tmp", "/d/snap"));
  SSE_ASSERT_OK(env.SyncDir("/d"));
  env.Crash();
  env.Restart();
  EXPECT_EQ(BytesToString(*env.ReadFile("/d/snap")), "v3");
}

TEST(FaultyEnvTest, RemoveWithoutSyncDirResurrectsOnCrash) {
  FaultyEnv env;
  {
    auto file = env.NewWritableFile("/d/f", true);
    SSE_ASSERT_OK_RESULT(file);
    SSE_ASSERT_OK((*file)->Append(B("keep")));
    SSE_ASSERT_OK((*file)->Sync());
    SSE_ASSERT_OK(env.SyncDir("/d"));
  }
  SSE_ASSERT_OK(env.Remove("/d/f"));
  EXPECT_FALSE(env.FileExists("/d/f"));
  env.Crash();
  env.Restart();
  EXPECT_TRUE(env.FileExists("/d/f"));  // removal was never made durable

  SSE_ASSERT_OK(env.Remove("/d/f"));
  SSE_ASSERT_OK(env.SyncDir("/d"));
  env.Crash();
  env.Restart();
  EXPECT_FALSE(env.FileExists("/d/f"));
}

// --- FaultyEnv: scheduled faults --------------------------------------------

TEST(FaultyEnvTest, ScheduledEioFailsExactlyThatOperation) {
  FaultyEnv env;
  auto file = env.NewWritableFile("/d/f", true);
  SSE_ASSERT_OK_RESULT(file);
  SSE_ASSERT_OK((*file)->Append(B("aa")));
  env.FailAt(env.ops(), FaultyEnv::FaultKind::kEio);  // the NEXT append
  const Status failed = (*file)->Append(B("bb"));
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  SSE_ASSERT_OK((*file)->Append(B("cc")));  // one-shot fault
  EXPECT_EQ(BytesToString(*env.ReadFile("/d/f")), "aacc");
}

TEST(FaultyEnvTest, ShortWritePersistsHalfThenFails) {
  FaultyEnv env;
  auto file = env.NewWritableFile("/d/f", true);
  SSE_ASSERT_OK_RESULT(file);
  env.FailAt(env.ops(), FaultyEnv::FaultKind::kShortWrite);
  const Status failed = (*file)->Append(B("12345678"));
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(BytesToString(*env.ReadFile("/d/f")), "1234");
}

TEST(FaultyEnvTest, SyncFailurePromotesNothing) {
  FaultyEnv env;
  auto file = env.NewWritableFile("/d/f", true);
  SSE_ASSERT_OK_RESULT(file);
  SSE_ASSERT_OK((*file)->Append(B("data")));
  SSE_ASSERT_OK(env.SyncDir("/d"));  // entry durable, content not yet
  env.FailAt(env.ops(), FaultyEnv::FaultKind::kSyncFail);
  EXPECT_FALSE((*file)->Sync().ok());
  env.Crash();
  env.Restart();
  auto read = env.ReadFile("/d/f");
  SSE_ASSERT_OK_RESULT(read);
  // Nothing was promoted by the failed sync; whatever survives is torn
  // write-back, i.e. some prefix of the unsynced bytes.
  EXPECT_LE(read->size(), 4u);
  EXPECT_TRUE(std::equal(read->begin(), read->end(), B("data").begin()));
}

TEST(FaultyEnvTest, ScheduledCrashStopsTheWorldUntilRestart) {
  FaultyEnv env;
  auto file = env.NewWritableFile("/d/f", true);
  SSE_ASSERT_OK_RESULT(file);
  SSE_ASSERT_OK((*file)->Append(B("x")));
  SSE_ASSERT_OK((*file)->Sync());
  SSE_ASSERT_OK(env.SyncDir("/d"));
  env.CrashAt(env.ops());
  EXPECT_FALSE((*file)->Append(B("y")).ok());
  EXPECT_TRUE(env.crashed());
  // Everything fails while crashed, and failed ops are not counted.
  const uint64_t ops_at_crash = env.ops();
  EXPECT_FALSE(env.ReadFile("/d/f").ok());
  EXPECT_FALSE(env.NewWritableFile("/d/g", true).ok());
  EXPECT_EQ(env.ops(), ops_at_crash);

  env.Restart();
  EXPECT_FALSE(env.crashed());
  EXPECT_EQ(BytesToString(*env.ReadFile("/d/f")), "x");
  // The pre-crash handle is stale even after restart.
  EXPECT_FALSE((*file)->Append(B("z")).ok());
  EXPECT_FALSE((*file)->Sync().ok());
}

TEST(FaultyEnvTest, OpLogNamesEveryCountedOperation) {
  FaultyEnv env;
  auto file = env.NewWritableFile("/d/f", true);
  SSE_ASSERT_OK_RESULT(file);
  SSE_ASSERT_OK((*file)->Append(B("x")));
  SSE_ASSERT_OK((*file)->Sync());
  SSE_ASSERT_OK(env.SyncDir("/d"));
  const std::vector<std::string> log = env.op_log();
  ASSERT_EQ(log.size(), env.ops());
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "create /d/f");
  EXPECT_EQ(log[1], "append /d/f");
  EXPECT_EQ(log[2], "sync /d/f");
  EXPECT_EQ(log[3], "syncdir /d");
}

TEST(FaultyEnvTest, CorruptByteFlipsLiveAndDurable) {
  FaultyEnv env;
  auto file = env.NewWritableFile("/d/f", true);
  SSE_ASSERT_OK_RESULT(file);
  SSE_ASSERT_OK((*file)->Append(B("abc")));
  SSE_ASSERT_OK((*file)->Sync());
  SSE_ASSERT_OK(env.SyncDir("/d"));
  SSE_ASSERT_OK(env.CorruptByte("/d/f", 1));
  EXPECT_EQ((*env.ReadFile("/d/f"))[1], static_cast<uint8_t>('b' ^ 0xFF));
  env.Crash();
  env.Restart();
  EXPECT_EQ((*env.ReadFile("/d/f"))[1], static_cast<uint8_t>('b' ^ 0xFF));
  EXPECT_FALSE(env.CorruptByte("/d/f", 99).ok());
  EXPECT_FALSE(env.CorruptByte("/d/missing", 0).ok());
}

}  // namespace
}  // namespace sse::storage
