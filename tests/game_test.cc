// The Definition 4 distinguishing experiment, executed: no built-in
// adversary beats coin flipping against the real Scheme 1, while the same
// battery demolishes a strawman that skips the PRG mask — so a pass means
// something.

#include "sse/security/game.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace sse::security {
namespace {

/// Equal-trace history pair engineered so that UNMASKED indexes differ
/// blatantly (uniform popularity vs one-hot-popular keyword) while every
/// trace component — ids, lengths, |W_D|, query results, Π — matches.
struct HistoryPair {
  History h0;
  History h1;
};

HistoryPair MakePair() {
  constexpr size_t kDocs = 16;
  HistoryPair pair;
  for (size_t i = 0; i < kDocs; ++i) {
    // Same content length everywhere (lengths are in the trace).
    const std::string content = "record-" + std::string(8, 'x');
    // h0: 16 keywords, each matching exactly two documents.
    pair.h0.documents.push_back(core::Document::Make(
        i, content,
        {"p" + std::to_string(i / 2), "f" + std::to_string(((i + 3) % 16) / 2)}));
    // h1: one keyword on every document, plus singletons.
    std::vector<std::string> kws = {"all"};
    if (i < 15) kws.push_back("s" + std::to_string(i));
    pair.h1.documents.push_back(core::Document::Make(i, content, kws));
  }
  return pair;
}

core::SchemeOptions GameOptions() {
  core::SchemeOptions options = sse::testing::FastTestConfig().scheme;
  options.max_documents = 16;  // tight bitmaps make plaintext leaks glaring
  return options;
}

TEST(GameTest, PairHasEqualTraces) {
  HistoryPair pair = MakePair();
  const Trace t0 = ComputeTrace(pair.h0);
  const Trace t1 = ComputeTrace(pair.h1);
  EXPECT_EQ(t0.unique_keywords, 16u);
  EXPECT_TRUE(t0 == t1);
}

TEST(GameTest, MismatchedTracesRejected) {
  HistoryPair pair = MakePair();
  pair.h1.queries.push_back("all");  // breaks trace equality
  DeterministicRandom coin(1);
  DeterministicRandom scheme(2);
  auto adversaries = BuiltinDistinguishers();
  auto outcome = PlayScheme1Game(pair.h0, pair.h1, GameOptions(),
                                 adversaries[0], 4, coin, scheme);
  EXPECT_FALSE(outcome.ok());
}

TEST(GameTest, NoBuiltinAdversaryBeatsTheRealScheme) {
  HistoryPair pair = MakePair();
  DeterministicRandom coin(3);
  DeterministicRandom scheme(4);
  const int trials = 60;
  // 3-sigma bound for a fair coin over `trials` flips.
  const double noise = 3.0 / std::sqrt(static_cast<double>(trials));
  for (const Distinguisher& adversary : BuiltinDistinguishers()) {
    auto outcome = PlayScheme1Game(pair.h0, pair.h1, GameOptions(), adversary,
                                   trials, coin, scheme);
    ASSERT_TRUE(outcome.ok()) << adversary.name;
    EXPECT_LT(std::abs(outcome->Advantage()), noise)
        << adversary.name << " wins with advantage " << outcome->Advantage();
  }
}

TEST(GameTest, BatteryDemolishesTheLeakyStrawman) {
  HistoryPair pair = MakePair();
  DeterministicRandom coin(5);
  DeterministicRandom scheme(6);
  const int trials = 40;
  double best = 0.0;
  std::string winner;
  for (const Distinguisher& adversary : BuiltinDistinguishers()) {
    auto outcome = PlayStrawmanGame(pair.h0, pair.h1, GameOptions(), adversary,
                                    trials, coin, scheme);
    ASSERT_TRUE(outcome.ok()) << adversary.name;
    if (std::abs(outcome->Advantage()) > best) {
      best = std::abs(outcome->Advantage());
      winner = adversary.name;
    }
  }
  EXPECT_GT(best, 0.9) << "no distinguisher caught the unmasked index; "
                          "the battery has no teeth (best: " << winner << ")";
}

TEST(GameTest, AdvantageArithmetic) {
  GameOutcome outcome;
  outcome.trials = 100;
  outcome.correct = 50;
  EXPECT_DOUBLE_EQ(outcome.Advantage(), 0.0);
  outcome.correct = 100;
  EXPECT_DOUBLE_EQ(outcome.Advantage(), 1.0);
  outcome.correct = 0;
  EXPECT_DOUBLE_EQ(outcome.Advantage(), -1.0);
  EXPECT_DOUBLE_EQ(GameOutcome{}.Advantage(), 0.0);
}

}  // namespace
}  // namespace sse::security
