#ifndef SSE_CORE_TYPES_H_
#define SSE_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::core {

/// A document as the paper models it: `D_i = (M_i, W_i)` — a data item
/// (opaque content bytes) plus a metadata item (the set of keywords), bound
/// to a client-chosen exclusive identifier `i`.
struct Document {
  uint64_t id = 0;
  Bytes content;                      // M_i (plaintext on the client side)
  std::vector<std::string> keywords;  // W_i

  static Document Make(uint64_t id, std::string_view content,
                       std::vector<std::string> keywords);
};

/// What a search returns to the client: the matching identifiers and the
/// decrypted data items.
struct SearchOutcome {
  std::vector<uint64_t> ids;  // I(w), ascending
  /// (id, plaintext) for every returned document that decrypted cleanly.
  std::vector<std::pair<uint64_t, Bytes>> documents;
};

/// The client half of any searchable-encryption system in this library.
/// Both paper schemes and all three baselines implement it, so tests and
/// benches drive every system through one interface.
class SseClientInterface {
 public:
  virtual ~SseClientInterface() = default;

  /// Storage/MetadataStorage: adds `docs` to the encrypted database in one
  /// batch (one protocol run). Ids must not have been stored before.
  virtual Status Store(const std::vector<Document>& docs) = 0;

  /// Trapdoor + Search: retrieves every document whose metadata contains
  /// `keyword`.
  virtual Result<SearchOutcome> Search(std::string_view keyword) = 0;

  /// Searches many keywords in one protocol run, returning outcomes
  /// aligned with `keywords`. The default loops Search sequentially (K
  /// round trips); scheme clients with SchemeOptions::batch_ops pipeline
  /// all K searches into ~one batched frame per protocol round. Any
  /// per-keyword failure fails the whole call.
  virtual Result<std::vector<SearchOutcome>> MultiSearch(
      const std::vector<std::string>& keywords);

  /// A "fake update" (§5.7): runs the update protocol for `keywords`
  /// without changing any posting, hiding real update sizes from the
  /// server. Baselines that cannot express this return UNIMPLEMENTED.
  virtual Status FakeUpdate(const std::vector<std::string>& keywords) {
    (void)keywords;
    return Status::Unimplemented("fake updates not supported by this scheme");
  }

  /// Human-readable system name, e.g. "scheme1".
  virtual std::string name() const = 0;

  /// Serializes the client's protocol state (counters, epochs, used ids —
  /// whatever the scheme must persist across sessions). Stateless clients
  /// return an empty blob. Deployments MUST persist this with the same
  /// care as server state: for the paper schemes, restoring a stale copy
  /// reuses chain elements or identifiers the server has already seen.
  virtual Bytes SerializeState() const { return {}; }

  /// Restores state produced by SerializeState. The default accepts only
  /// an empty blob, so a stateless client loudly rejects a stateful
  /// scheme's snapshot instead of silently dropping it.
  virtual Status RestoreState(BytesView data) {
    if (!data.empty()) {
      return Status::InvalidArgument(
          "this scheme's client keeps no protocol state");
    }
    return Status::OK();
  }
};

/// 8-byte little-endian encoding of a document id, used as AEAD associated
/// data so ciphertexts cannot be transplanted between identifiers.
Bytes EncodeDocId(uint64_t id);

}  // namespace sse::core

#endif  // SSE_CORE_TYPES_H_
