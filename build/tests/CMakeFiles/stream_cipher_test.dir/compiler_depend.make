# Empty compiler generated dependencies file for stream_cipher_test.
# This may be replaced when dependencies are built.
