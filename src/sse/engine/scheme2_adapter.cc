#include "sse/engine/scheme2_adapter.h"

#include <utility>

#include "sse/core/scheme2_messages.h"
#include "sse/engine/shard_router.h"

namespace sse::engine {

using core::S2FetchAllReply;
using core::S2FetchAllRequest;
using core::S2ReinitAck;
using core::S2ReinitRequest;
using core::S2SearchRequest;
using core::S2SearchResult;
using core::S2UpdateAck;
using core::S2UpdateRequest;

std::unique_ptr<SchemeShard> Scheme2Adapter::CreateShard() const {
  return std::make_unique<ServerShard<core::Scheme2Server>>(options_);
}

bool Scheme2Adapter::IsMutating(uint16_t msg_type) const {
  return msg_type == core::kMsgS2UpdateRequest ||
         msg_type == core::kMsgS2ReinitRequest;
}

LockMode Scheme2Adapter::LockModeFor(uint16_t msg_type) const {
  switch (msg_type) {
    case core::kMsgS2UpdateRequest:
    case core::kMsgS2ReinitRequest:
      return LockMode::kExclusive;
    case core::kMsgS2SearchRequest:
      // Searching refreshes the Optimization-1 plaintext cache in place.
      return options_.server_plaintext_cache ? LockMode::kExclusive
                                             : LockMode::kShared;
    default:
      return LockMode::kShared;
  }
}

Result<RequestPlan> Scheme2Adapter::Route(const net::Message& request,
                                          size_t num_shards) const {
  RequestPlan plan;
  switch (request.type) {
    case core::kMsgS2UpdateRequest: {
      S2UpdateRequest req;
      SSE_ASSIGN_OR_RETURN(req, S2UpdateRequest::FromMessage(request));
      std::vector<std::vector<size_t>> by_shard(num_shards);
      for (size_t i = 0; i < req.entries.size(); ++i) {
        by_shard[ShardForToken(req.entries[i].token, num_shards)].push_back(i);
      }
      for (size_t s = 0; s < num_shards; ++s) {
        if (by_shard[s].empty()) continue;
        S2UpdateRequest sub;
        sub.entries.reserve(by_shard[s].size());
        for (size_t idx : by_shard[s]) {
          sub.entries.push_back(std::move(req.entries[idx]));
        }
        plan.subs.push_back(
            SubRequest{s, sub.ToMessage(), std::move(by_shard[s])});
      }
      plan.documents = std::move(req.documents);
      return plan;
    }
    case core::kMsgS2SearchRequest: {
      S2SearchRequest req;
      SSE_ASSIGN_OR_RETURN(req, S2SearchRequest::FromMessage(request));
      plan.subs.push_back(
          SubRequest{ShardForToken(req.token, num_shards), request, {}});
      plan.attach_documents = true;
      return plan;
    }
    case core::kMsgS2FetchAllRequest: {
      for (size_t s = 0; s < num_shards; ++s) {
        plan.subs.push_back(SubRequest{s, request, {}});
      }
      return plan;
    }
    case core::kMsgS2ReinitRequest: {
      S2ReinitRequest req;
      SSE_ASSIGN_OR_RETURN(req, S2ReinitRequest::FromMessage(request));
      std::vector<std::vector<size_t>> by_shard(num_shards);
      for (size_t i = 0; i < req.entries.size(); ++i) {
        by_shard[ShardForToken(req.entries[i].token, num_shards)].push_back(i);
      }
      // Every shard gets a (possibly empty) Reinit so all of them clear
      // their old-epoch index.
      for (size_t s = 0; s < num_shards; ++s) {
        S2ReinitRequest sub;
        sub.entries.reserve(by_shard[s].size());
        for (size_t idx : by_shard[s]) {
          sub.entries.push_back(std::move(req.entries[idx]));
        }
        plan.subs.push_back(
            SubRequest{s, sub.ToMessage(), std::move(by_shard[s])});
      }
      return plan;
    }
    default:
      plan.subs.push_back(SubRequest{0, request, {}});
      return plan;
  }
}

Result<net::Message> Scheme2Adapter::Merge(const net::Message& request,
                                           const RequestPlan& plan,
                                           std::vector<net::Message> replies,
                                           const DocumentFetcher& fetch_docs)
    const {
  (void)plan;
  switch (request.type) {
    case core::kMsgS2UpdateRequest: {
      S2UpdateAck merged;
      for (net::Message& reply : replies) {
        S2UpdateAck ack;
        SSE_ASSIGN_OR_RETURN(ack, S2UpdateAck::FromMessage(reply));
        merged.keywords_updated += ack.keywords_updated;
      }
      return merged.ToMessage();
    }
    case core::kMsgS2SearchRequest: {
      S2SearchResult result;
      SSE_ASSIGN_OR_RETURN(result, S2SearchResult::FromMessage(replies.at(0)));
      std::vector<std::pair<uint64_t, Bytes>> fetched;
      SSE_ASSIGN_OR_RETURN(fetched, fetch_docs(result.ids));
      result.documents.clear();
      for (auto& [id, blob] : fetched) {
        result.documents.push_back(core::WireDocument{id, std::move(blob)});
      }
      return result.ToMessage();
    }
    case core::kMsgS2FetchAllRequest: {
      S2FetchAllReply merged;
      for (net::Message& reply : replies) {
        S2FetchAllReply part;
        SSE_ASSIGN_OR_RETURN(part, S2FetchAllReply::FromMessage(reply));
        for (auto& kw : part.keywords) merged.keywords.push_back(std::move(kw));
      }
      return merged.ToMessage();
    }
    case core::kMsgS2ReinitRequest: {
      S2ReinitAck merged;
      for (net::Message& reply : replies) {
        S2ReinitAck ack;
        SSE_ASSIGN_OR_RETURN(ack, S2ReinitAck::FromMessage(reply));
        merged.keywords += ack.keywords;
      }
      return merged.ToMessage();
    }
    default:
      if (replies.size() != 1) {
        return Status::Internal("expected exactly one shard reply");
      }
      return std::move(replies[0]);
  }
}

}  // namespace sse::engine
