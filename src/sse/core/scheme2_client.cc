#include "sse/core/scheme2_client.h"

#include <algorithm>
#include <map>

#include "sse/crypto/hash_chain.h"
#include "sse/crypto/hkdf.h"
#include "sse/crypto/stream_cipher.h"
#include "sse/index/posting.h"
#include "sse/util/serde.h"

namespace sse::core {

namespace {
constexpr const char* kTokenLabel = "s2.token";
constexpr const char* kChainLabel = "s2.chain";
}  // namespace

Scheme2Client::Scheme2Client(crypto::Prf prf, crypto::Aead aead,
                             const SchemeOptions& options,
                             net::Channel* channel, RandomSource* rng)
    : prf_(std::move(prf)),
      aead_(std::move(aead)),
      options_(options),
      channel_(channel),
      rng_(rng) {}

Result<std::unique_ptr<Scheme2Client>> Scheme2Client::Create(
    const crypto::MasterKey& key, const SchemeOptions& options,
    net::Channel* channel, RandomSource* rng) {
  if (channel == nullptr || rng == nullptr) {
    return Status::InvalidArgument("channel and rng must be non-null");
  }
  if (options.chain_length == 0) {
    return Status::InvalidArgument("chain_length must be > 0");
  }
  Result<crypto::Prf> prf = crypto::Prf::Create(key.keyword_key());
  if (!prf.ok()) return prf.status();
  Bytes aead_key;
  SSE_ASSIGN_OR_RETURN(aead_key, crypto::HkdfSha256(key.data_key(), /*salt=*/{},
                                                    "sse.data.aead", 32));
  Result<crypto::Aead> aead = crypto::Aead::Create(aead_key);
  if (!aead.ok()) return aead.status();
  return std::unique_ptr<Scheme2Client>(
      new Scheme2Client(std::move(prf).value(), std::move(aead).value(),
                        options, channel, rng));
}

Result<Bytes> Scheme2Client::Token(std::string_view keyword) const {
  return prf_.EvalLabeled(kTokenLabel, StringToBytes(keyword));
}

Result<Bytes> Scheme2Client::ChainSeed(BytesView token, uint32_t epoch) const {
  BufferWriter w;
  w.PutU32(epoch);
  w.PutRaw(token);
  return prf_.EvalLabeled(kChainLabel, w.data());
}

Result<Bytes> Scheme2Client::ChainKeyAt(BytesView token, uint32_t epoch,
                                        uint32_t ctr) const {
  if (ctr == 0 || ctr > options_.chain_length) {
    return Status::ResourceExhausted(
        "chain counter " + std::to_string(ctr) + " outside [1, " +
        std::to_string(options_.chain_length) + "]");
  }
  // Memo fast paths. Element index is l - ctr, so a *smaller* requested
  // counter lies forward (more hash applications) of the memoized element.
  const std::string memo_key = HexEncode(token);
  auto it = chain_memo_.find(memo_key);
  if (it != chain_memo_.end() && it->second.epoch == epoch) {
    const ChainMemo& memo = it->second;
    if (memo.ctr == ctr) return memo.element;
    if (ctr < memo.ctr) {
      Bytes element = memo.element;
      for (uint32_t c = memo.ctr; c > ctr; --c) {
        SSE_ASSIGN_OR_RETURN(element, crypto::HashChain::Step(element));
      }
      return element;
    }
    // ctr > memo.ctr: deeper toward the seed; fall through to recompute
    // (and refresh the memo, since counters only grow over time).
  }
  Bytes seed;
  SSE_ASSIGN_OR_RETURN(seed, ChainSeed(token, epoch));
  crypto::HashChain chain =
      crypto::HashChain::Create(seed, options_.chain_length).value();
  Bytes element;
  SSE_ASSIGN_OR_RETURN(element, chain.KeyForCounter(ctr));
  chain_memo_[memo_key] = ChainMemo{epoch, ctr, element};
  return element;
}

Result<Scheme2Client::Trapdoor> Scheme2Client::MakeTrapdoor(
    std::string_view keyword) const {
  Trapdoor t;
  SSE_ASSIGN_OR_RETURN(t.token, Token(keyword));
  // Before any counted update the chain is untouched; use the ctr=1
  // element, which is the deepest any future segment key can sit.
  const uint32_t effective_ctr = ctr_ == 0 ? 1 : ctr_;
  SSE_ASSIGN_OR_RETURN(t.chain_element,
                       ChainKeyAt(t.token, epoch_, effective_ctr));
  return t;
}

Result<uint32_t> Scheme2Client::NextUpdateCounter() {
  // Optimization 2: reuse the previous counter unless a search happened
  // since the last update (the server has not seen that key yet, so
  // reusing it leaks nothing and spends no chain element).
  const bool must_increment =
      !options_.counter_after_search_only || searched_since_update_ || ctr_ == 0;
  if (must_increment) {
    if (ctr_ >= options_.chain_length) {
      return Status::ResourceExhausted(
          "pseudo-random chain exhausted after " + std::to_string(ctr_) +
          " counted updates; call Reinitialize()");
    }
    ++ctr_;
    searched_since_update_ = false;
  }
  return ctr_;
}

Status Scheme2Client::Store(const std::vector<Document>& docs) {
  if (docs.empty()) return Status::OK();
  for (const Document& doc : docs) {
    if (used_ids_.count(doc.id) > 0) {
      return Status::AlreadyExists("document id " + std::to_string(doc.id) +
                                   " was already stored");
    }
  }
  std::map<std::string, std::vector<uint64_t>> by_keyword;
  for (const Document& doc : docs) {
    for (const std::string& kw : doc.keywords) {
      by_keyword[kw].push_back(doc.id);
    }
  }
  std::vector<PendingUpdate> updates;
  updates.reserve(by_keyword.size());
  for (auto& [kw, ids] : by_keyword) {
    updates.push_back(PendingUpdate{kw, index::Canonicalize(std::move(ids))});
  }
  SSE_RETURN_IF_ERROR(RunUpdateProtocol(updates, docs));
  for (const Document& doc : docs) used_ids_.insert(doc.id);
  return Status::OK();
}

Status Scheme2Client::FakeUpdate(const std::vector<std::string>& keywords) {
  // Deduplicate for wire economy (duplicates would be harmless here, but
  // mirror Scheme 1's contract: one entry per keyword per protocol run).
  const std::set<std::string> unique(keywords.begin(), keywords.end());
  std::vector<PendingUpdate> updates;
  updates.reserve(unique.size());
  for (const std::string& kw : unique) {
    updates.push_back(PendingUpdate{kw, {}});  // empty I_j(w)
  }
  return RunUpdateProtocol(updates, /*documents=*/{});
}

Status Scheme2Client::RunUpdateProtocol(
    const std::vector<PendingUpdate>& updates,
    const std::vector<Document>& documents) {
  uint32_t update_ctr = 0;
  SSE_ASSIGN_OR_RETURN(update_ctr, NextUpdateCounter());
  const bool batched = options_.batch_ops && !updates.empty();

  std::vector<S2UpdateEntry> entries;
  entries.reserve(updates.size());
  for (const PendingUpdate& u : updates) {
    S2UpdateEntry entry;
    SSE_ASSIGN_OR_RETURN(entry.token, Token(u.keyword));
    Bytes key;
    SSE_ASSIGN_OR_RETURN(key, ChainKeyAt(entry.token, epoch_, update_ctr));

    Bytes plain;
    SSE_ASSIGN_OR_RETURN(plain, index::EncodeIdList(u.ids));
    Result<crypto::StreamCipher> cipher = crypto::StreamCipher::Create(key);
    if (!cipher.ok()) return cipher.status();
    SSE_ASSIGN_OR_RETURN(entry.segment.ciphertext,
                         cipher->Encrypt(plain, *rng_));
    SSE_ASSIGN_OR_RETURN(entry.segment.tag, crypto::HashChain::Tag(key));
    entries.push_back(std::move(entry));
  }

  std::vector<WireDocument> wire_docs;
  wire_docs.reserve(documents.size());
  for (const Document& doc : documents) {
    WireDocument wire;
    wire.id = doc.id;
    SSE_ASSIGN_OR_RETURN(wire.ciphertext,
                         aead_.Seal(doc.content, EncodeDocId(doc.id), *rng_));
    wire_docs.push_back(std::move(wire));
  }

  if (batched) {
    // One op per keyword, pipelined through MultiCall; documents ride with
    // the first op (the server extracts them before routing).
    std::vector<net::Message> round;
    round.reserve(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      S2UpdateRequest one;
      one.entries.push_back(std::move(entries[i]));
      if (i == 0) one.documents = std::move(wire_docs);
      round.push_back(one.ToMessage());
    }
    std::vector<Result<net::Message>> replies = channel_->MultiCall(round);
    for (Result<net::Message>& ack_msg : replies) {
      if (!ack_msg.ok()) return ack_msg.status();
      S2UpdateAck ack;
      SSE_ASSIGN_OR_RETURN(ack, S2UpdateAck::FromMessage(*ack_msg));
      if (ack.keywords_updated != 1) {
        return Status::ProtocolError("server acknowledged wrong keyword count");
      }
    }
    return Status::OK();
  }

  S2UpdateRequest req;
  req.entries = std::move(entries);
  req.documents = std::move(wire_docs);
  net::Message ack_msg;
  SSE_ASSIGN_OR_RETURN(ack_msg, channel_->Call(req.ToMessage()));
  S2UpdateAck ack;
  SSE_ASSIGN_OR_RETURN(ack, S2UpdateAck::FromMessage(ack_msg));
  if (ack.keywords_updated != req.entries.size()) {
    return Status::ProtocolError("server acknowledged wrong keyword count");
  }
  return Status::OK();
}

Result<SearchOutcome> Scheme2Client::Search(std::string_view keyword) {
  Trapdoor trapdoor;
  SSE_ASSIGN_OR_RETURN(trapdoor, MakeTrapdoor(keyword));
  S2SearchRequest req;
  req.token = std::move(trapdoor.token);
  req.chain_element = std::move(trapdoor.chain_element);

  net::Message reply_msg;
  SSE_ASSIGN_OR_RETURN(reply_msg, channel_->Call(req.ToMessage()));
  searched_since_update_ = true;
  return ParseSearchResult(reply_msg);
}

Result<SearchOutcome> Scheme2Client::ParseSearchResult(
    const net::Message& msg) {
  S2SearchResult result;
  SSE_ASSIGN_OR_RETURN(result, S2SearchResult::FromMessage(msg));
  last_chain_steps_ = result.chain_steps;
  last_segments_ = result.segments_decrypted;

  SearchOutcome outcome;
  if (!result.found) return outcome;
  outcome.ids = result.ids;
  std::sort(outcome.ids.begin(), outcome.ids.end());
  outcome.documents.reserve(result.documents.size());
  for (const WireDocument& wire : result.documents) {
    Bytes plain;
    SSE_ASSIGN_OR_RETURN(plain,
                         aead_.Open(wire.ciphertext, EncodeDocId(wire.id)));
    outcome.documents.emplace_back(wire.id, std::move(plain));
  }
  return outcome;
}

Result<std::vector<SearchOutcome>> Scheme2Client::MultiSearch(
    const std::vector<std::string>& keywords) {
  if (!options_.batch_ops) return SseClientInterface::MultiSearch(keywords);
  const size_t n = keywords.size();
  std::vector<SearchOutcome> outcomes(n);
  if (n == 0) return outcomes;

  // Scheme 2 searches are one round, so all K fit in a single MultiCall.
  std::vector<net::Message> round;
  round.reserve(n);
  for (const std::string& keyword : keywords) {
    Trapdoor trapdoor;
    SSE_ASSIGN_OR_RETURN(trapdoor, MakeTrapdoor(keyword));
    S2SearchRequest req;
    req.token = std::move(trapdoor.token);
    req.chain_element = std::move(trapdoor.chain_element);
    round.push_back(req.ToMessage());
  }
  std::vector<Result<net::Message>> replies = channel_->MultiCall(round);
  searched_since_update_ = true;
  for (size_t i = 0; i < n; ++i) {
    if (!replies[i].ok()) return replies[i].status();
    SSE_ASSIGN_OR_RETURN(outcomes[i], ParseSearchResult(*replies[i]));
  }
  return outcomes;
}

Bytes Scheme2Client::SerializeState() const {
  BufferWriter w;
  w.PutU32(ctr_);
  w.PutU32(epoch_);
  w.PutBool(searched_since_update_);
  w.PutVarint(used_ids_.size());
  for (uint64_t id : used_ids_) w.PutVarint(id);
  return w.TakeData();
}

Status Scheme2Client::RestoreState(BytesView data) {
  BufferReader r(data);
  uint32_t ctr = 0;
  SSE_ASSIGN_OR_RETURN(ctr, r.GetU32());
  uint32_t epoch = 0;
  SSE_ASSIGN_OR_RETURN(epoch, r.GetU32());
  bool searched = false;
  SSE_ASSIGN_OR_RETURN(searched, r.GetBool());
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > data.size()) {
    return Status::Corruption("used-id count exceeds payload");
  }
  std::set<uint64_t> used_ids;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    used_ids.insert(id);
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  if (ctr > options_.chain_length) {
    return Status::Corruption("restored counter exceeds chain length");
  }
  ctr_ = ctr;
  epoch_ = epoch;
  searched_since_update_ = searched;
  used_ids_ = std::move(used_ids);
  chain_memo_.clear();  // memoized positions may postdate the restored state
  return Status::OK();
}

Status Scheme2Client::Reinitialize() {
  // Round 1: download every keyword's segments.
  net::Message reply_msg;
  SSE_ASSIGN_OR_RETURN(reply_msg,
                       channel_->Call(S2FetchAllRequest{}.ToMessage()));
  S2FetchAllReply dump;
  SSE_ASSIGN_OR_RETURN(dump, S2FetchAllReply::FromMessage(reply_msg));

  // Decrypt and merge every keyword's postings locally, exactly as the
  // server would after a search, but using the old epoch's chain.
  const uint32_t old_epoch = epoch_;
  const uint32_t old_ctr = ctr_ == 0 ? 1 : ctr_;
  const uint32_t new_epoch = epoch_ + 1;

  S2ReinitRequest reinit;
  reinit.entries.reserve(dump.keywords.size());
  for (const S2KeywordDump& kw : dump.keywords) {
    Bytes start;
    SSE_ASSIGN_OR_RETURN(start, ChainKeyAt(kw.token, old_epoch, old_ctr));
    Bytes position = start;
    index::DocIdList ids;
    for (size_t j = kw.segments.size(); j-- > 0;) {
      const S2Segment& seg = kw.segments[j];
      Result<crypto::HashChain::WalkResult> walk_result =
          crypto::HashChain::WalkForwardToTag(position, seg.tag,
                                              options_.chain_length);
      if (!walk_result.ok() &&
          walk_result.status().code() == StatusCode::kNotFound &&
          position != start) {
        // Mirror the server's tolerance for out-of-order segment keys.
        walk_result = crypto::HashChain::WalkForwardToTag(
            start, seg.tag, options_.chain_length);
      }
      if (!walk_result.ok()) return walk_result.status();
      crypto::HashChain::WalkResult walk = std::move(walk_result).value();
      position = walk.element;
      Result<crypto::StreamCipher> cipher =
          crypto::StreamCipher::Create(walk.element);
      if (!cipher.ok()) return cipher.status();
      Bytes plain;
      SSE_ASSIGN_OR_RETURN(plain, cipher->Decrypt(seg.ciphertext));
      index::DocIdList segment_ids;
      SSE_ASSIGN_OR_RETURN(segment_ids, index::DecodeIdList(plain));
      ids = index::MergeIdLists(ids, segment_ids);
    }

    // Re-encrypt the merged list as the single first segment of the new
    // epoch (counter 1).
    S2UpdateEntry entry;
    entry.token = kw.token;
    Bytes key;
    SSE_ASSIGN_OR_RETURN(key, ChainKeyAt(kw.token, new_epoch, 1));
    Bytes plain;
    SSE_ASSIGN_OR_RETURN(plain, index::EncodeIdList(ids));
    Result<crypto::StreamCipher> cipher = crypto::StreamCipher::Create(key);
    if (!cipher.ok()) return cipher.status();
    SSE_ASSIGN_OR_RETURN(entry.segment.ciphertext,
                         cipher->Encrypt(plain, *rng_));
    SSE_ASSIGN_OR_RETURN(entry.segment.tag, crypto::HashChain::Tag(key));
    reinit.entries.push_back(std::move(entry));
  }

  // Round 2: atomically replace the keyword index.
  net::Message ack_msg;
  SSE_ASSIGN_OR_RETURN(ack_msg, channel_->Call(reinit.ToMessage()));
  S2ReinitAck ack;
  SSE_ASSIGN_OR_RETURN(ack, S2ReinitAck::FromMessage(ack_msg));
  if (ack.keywords != reinit.entries.size()) {
    return Status::ProtocolError("reinit acknowledged wrong keyword count");
  }

  epoch_ = new_epoch;
  ctr_ = reinit.entries.empty() ? 0 : 1;
  searched_since_update_ = true;  // next update must take a fresh element
  chain_memo_.clear();            // old-epoch positions are dead weight
  return Status::OK();
}

}  // namespace sse::core
