#include "sse/phr/record.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sse::phr {
namespace {

PatientRecord SampleRecord() {
  PatientRecord record;
  record.patient_id = "p00042";
  record.name = "emma jansen";
  record.visit_date = "2026-03-14";
  record.practitioner = "dr visser";
  record.conditions = {"hypertension", "type 2 diabetes"};
  record.medications = {"lisinopril", "metformin"};
  record.allergies = {"penicillin"};
  record.notes = "patient reports mild headaches after dosage change";
  return record;
}

TEST(RecordTest, TextRoundTrip) {
  const PatientRecord original = SampleRecord();
  auto restored = PatientRecord::FromText(original.ToText());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->patient_id, original.patient_id);
  EXPECT_EQ(restored->name, original.name);
  EXPECT_EQ(restored->visit_date, original.visit_date);
  EXPECT_EQ(restored->practitioner, original.practitioner);
  EXPECT_EQ(restored->conditions, original.conditions);
  EXPECT_EQ(restored->medications, original.medications);
  EXPECT_EQ(restored->allergies, original.allergies);
  EXPECT_EQ(restored->notes, original.notes);
}

TEST(RecordTest, EmptyListsRoundTrip) {
  PatientRecord record;
  record.patient_id = "p1";
  auto restored = PatientRecord::FromText(record.ToText());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->conditions.empty());
  EXPECT_TRUE(restored->medications.empty());
}

TEST(RecordTest, FromTextRejectsGarbage) {
  EXPECT_FALSE(PatientRecord::FromText("not a record at all").ok());
  EXPECT_FALSE(PatientRecord::FromText("").ok());
}

TEST(RecordTest, SearchKeywordsContainTags) {
  const PatientRecord record = SampleRecord();
  auto keywords = record.SearchKeywords();
  auto has = [&](const std::string& kw) {
    return std::find(keywords.begin(), keywords.end(), kw) != keywords.end();
  };
  EXPECT_TRUE(has("patient:p00042"));
  EXPECT_TRUE(has("condition:hypertension"));
  EXPECT_TRUE(has("condition:type-2-diabetes"));
  EXPECT_TRUE(has("med:metformin"));
  EXPECT_TRUE(has("allergy:penicillin"));
  EXPECT_TRUE(has("gp:dr-visser"));
  EXPECT_TRUE(has("date:2026-03"));
  // Note tokens included; raw unnormalized phrases are not.
  EXPECT_TRUE(has("headaches"));
  EXPECT_TRUE(has("dosage"));
  EXPECT_FALSE(has("type 2 diabetes"));  // only the tag form is indexed
}

TEST(RecordTest, DocumentConversionRoundTrip) {
  const PatientRecord record = SampleRecord();
  core::Document doc = RecordToDocument(17, record);
  EXPECT_EQ(doc.id, 17u);
  EXPECT_FALSE(doc.keywords.empty());
  auto restored = DocumentToRecord(doc.content);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->patient_id, record.patient_id);
}

}  // namespace
}  // namespace sse::phr
