#include "sse/storage/snapshot.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "sse/util/crc32.h"
#include "sse/util/serde.h"

namespace sse::storage {

namespace {
constexpr char kMagic[8] = {'S', 'S', 'E', 'S', 'N', 'A', 'P', '1'};
constexpr uint32_t kVersion = 1;
}  // namespace

Status Snapshot::Write(const std::string& path, BytesView payload) {
  BufferWriter w;
  w.PutRaw(BytesView(reinterpret_cast<const uint8_t*>(kMagic), sizeof(kMagic)));
  w.PutU32(kVersion);
  w.PutU64(payload.size());
  w.PutU32(Crc32c(payload));
  w.PutRaw(payload);
  const Bytes& framed = w.data();

  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create " + tmp + ": " + std::strerror(errno));
  }
  const bool wrote =
      std::fwrite(framed.data(), 1, framed.size(), file) == framed.size();
  const bool flushed = std::fflush(file) == 0 && fsync(fileno(file)) == 0;
  std::fclose(file);
  if (!wrote || !flushed) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot rename failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<Bytes> Snapshot::Read(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no snapshot at " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long file_size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (file_size < 0) {
    std::fclose(file);
    return Status::IoError("cannot stat snapshot " + path);
  }
  Bytes raw(static_cast<size_t>(file_size));
  const size_t got = raw.empty() ? 0 : std::fread(raw.data(), 1, raw.size(), file);
  std::fclose(file);
  if (got != raw.size()) return Status::IoError("short read on snapshot");

  BufferReader r(raw);
  Bytes magic;
  SSE_ASSIGN_OR_RETURN(magic, r.GetRaw(sizeof(kMagic)));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("snapshot magic mismatch");
  }
  uint32_t version = 0;
  SSE_ASSIGN_OR_RETURN(version, r.GetU32());
  if (version != kVersion) {
    return Status::Corruption("unsupported snapshot version " +
                              std::to_string(version));
  }
  uint64_t length = 0;
  SSE_ASSIGN_OR_RETURN(length, r.GetU64());
  uint32_t crc = 0;
  SSE_ASSIGN_OR_RETURN(crc, r.GetU32());
  if (length != r.remaining()) {
    return Status::Corruption("snapshot payload length mismatch");
  }
  Bytes payload;
  SSE_ASSIGN_OR_RETURN(payload, r.GetRaw(static_cast<size_t>(length)));
  if (Crc32c(payload) != crc) {
    return Status::Corruption("snapshot CRC mismatch");
  }
  return payload;
}

bool Snapshot::Exists(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::fclose(file);
  return true;
}

}  // namespace sse::storage
