#ifndef SSE_OBS_HISTOGRAM_H_
#define SSE_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace sse::obs {

/// Lock-free latency histogram with power-of-two nanosecond buckets.
/// Recording is two relaxed atomic adds — cheap enough for every request on
/// the hot path; snapshots are approximate (not a consistent cut), which is
/// fine for reporting.
///
/// Lives in obs (not engine) so the net and storage layers can record into
/// the same shape and multi-source snapshots compose via Merge(); the
/// engine keeps an alias for source compatibility.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;  // covers ~1 ns .. ~9 min

  void Record(uint64_t nanos);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t total_nanos = 0;
    std::array<uint64_t, kBuckets> buckets{};

    double mean_micros() const;
    /// Quantile `q` in [0,1] (µs), linearly interpolated inside the bucket
    /// containing the rank (median-unbiased: a lone sample reports its
    /// bucket midpoint, not the upper edge).
    double quantile_micros(double q) const;
    /// Folds `other` into this snapshot so per-shard / per-run snapshots
    /// compose into one distribution.
    void Merge(const Snapshot& other);

    /// Bucket `i` covers nanos in [lower_edge(i), upper_edge(i)).
    static uint64_t lower_edge_nanos(size_t i) {
      return i == 0 ? 0 : (1ULL << i);
    }
    static uint64_t upper_edge_nanos(size_t i) { return 2ULL << i; }
  };
  Snapshot Snap() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_nanos_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

}  // namespace sse::obs

#endif  // SSE_OBS_HISTOGRAM_H_
