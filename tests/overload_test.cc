// The overload-protection suite: deadline propagation on the wire and
// through the handler layers, server-side admission control with
// mutation-vs-search priority, client-side retry budgets and per-endpoint
// circuit breakers, and a brownout chaos test driving the whole stack —
// real reactor TCP server, bounded dispatch queue, admission controller —
// past saturation while an oracle checks that exactly-once never breaks.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sse/core/durable_server.h"
#include "sse/core/persistable.h"
#include "sse/core/registry.h"
#include "sse/core/scheme1_messages.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_messages.h"
#include "sse/engine/worker_pool.h"
#include "sse/net/admission.h"
#include "sse/net/batch.h"
#include "sse/net/deadline.h"
#include "sse/net/message.h"
#include "sse/net/retry.h"
#include "sse/net/tcp.h"
#include "sse/obs/metrics_registry.h"
#include "sse/obs/stats_rpc.h"
#include "sse/repl/failover_channel.h"
#include "test_util.h"

namespace sse {
namespace {

using core::Document;
using core::SystemKind;
using net::AdmissionDecision;
using net::ClassifyFrame;
using net::Deadline;
using net::Message;
using net::OpClass;
using net::QueueAdmissionController;
using net::RetryAfterHintMs;
using net::RetryingChannel;
using net::RetryOptions;
using net::ScopedDeadline;
using net::WithRetryAfter;
using sse::testing::FastTestConfig;
using sse::testing::TempDir;
using sse::testing::TestMasterKey;

// ---------------------------------------------------------------------------
// Deadline: wire header + anchored expiry + thread-local propagation.

TEST(DeadlineTest, WireHeaderRoundTripsOutsideSessionCrc) {
  Message msg{core::kMsgS1UpdateRequest, Bytes{1, 2, 3}};
  msg.StampSession(/*client=*/7, /*sequence=*/9);
  msg.has_deadline = true;
  msg.deadline_ms = 50;

  auto decoded = Message::Decode(msg.Encode());
  SSE_ASSERT_OK_RESULT(decoded);
  EXPECT_TRUE(decoded->has_deadline);
  EXPECT_EQ(decoded->deadline_ms, 50u);
  EXPECT_TRUE(decoded->has_session);
  EXPECT_EQ(decoded->client_id, 7u);
  EXPECT_EQ(decoded->payload, (Bytes{1, 2, 3}));

  // A retry may re-stamp a smaller budget on the already-stamped message:
  // the deadline header sits outside the session CRC, so the payload
  // checksum still verifies.
  msg.deadline_ms = 5;
  auto restamped = Message::Decode(msg.Encode());
  SSE_ASSERT_OK_RESULT(restamped);
  EXPECT_EQ(restamped->deadline_ms, 5u);

  // PeekSession still finds the stamp on the deadline-carrying frame.
  uint64_t client = 0, seq = 0;
  EXPECT_TRUE(Message::PeekSession(msg.Encode(), &client, &seq));
  EXPECT_EQ(client, 7u);
  EXPECT_EQ(seq, 9u);
}

TEST(DeadlineTest, AnchoredExpiryAndRemaining) {
  const uint64_t now = Deadline::NowNs();

  // "None": never expires, unbounded remaining budget.
  Deadline none;
  EXPECT_FALSE(none.has_deadline());
  EXPECT_FALSE(none.Expired(now + 1'000'000'000ull));
  EXPECT_EQ(none.RemainingMs(now), UINT32_MAX);

  Deadline fresh = Deadline::FromRemainingMs(100, now);
  EXPECT_TRUE(fresh.has_deadline());
  EXPECT_FALSE(fresh.Expired(now));
  EXPECT_FALSE(fresh.Expired(now + 99'000'000ull));
  EXPECT_TRUE(fresh.Expired(now + 100'000'000ull));
  EXPECT_EQ(fresh.RemainingMs(now + 100'000'000ull), 0u);
  EXPECT_LE(fresh.RemainingMs(now), 100u);

  // FromMessage anchors to the *local* observation clock, so queue wait
  // counts against the budget and remote clock skew cannot matter.
  Message msg{core::kMsgS2SearchRequest, {}};
  msg.has_deadline = true;
  msg.deadline_ms = 30;
  Deadline anchored = Deadline::FromMessage(msg, now - 40'000'000ull);
  EXPECT_TRUE(anchored.Expired(now));
  Deadline unanchored = Deadline::FromMessage(msg, now);
  EXPECT_FALSE(unanchored.Expired(now));

  Message plain{core::kMsgS2SearchRequest, {}};
  EXPECT_FALSE(Deadline::FromMessage(plain, now).has_deadline());
}

TEST(DeadlineTest, StampMessageWritesRemainingBudget) {
  Message msg{core::kMsgS2UpdateRequest, {}};
  Deadline d = Deadline::FromRemainingMs(40, Deadline::NowNs());
  d.StampMessage(&msg);
  ASSERT_TRUE(msg.has_deadline);
  EXPECT_GE(msg.deadline_ms, 1u);
  EXPECT_LE(msg.deadline_ms, 40u);

  // Stamping a "none" deadline strips any stale header.
  Deadline().StampMessage(&msg);
  EXPECT_FALSE(msg.has_deadline);
}

TEST(DeadlineTest, ScopedDeadlineNestsPerThread) {
  EXPECT_FALSE(net::CurrentDeadline().has_deadline());
  const uint64_t now = Deadline::NowNs();
  {
    ScopedDeadline outer(Deadline::FromRemainingMs(1000, now));
    EXPECT_TRUE(net::CurrentDeadline().has_deadline());
    const uint64_t outer_expiry = net::CurrentDeadline().expires_ns();
    {
      ScopedDeadline inner(Deadline::FromRemainingMs(10, now));
      EXPECT_NE(net::CurrentDeadline().expires_ns(), outer_expiry);
    }
    EXPECT_EQ(net::CurrentDeadline().expires_ns(), outer_expiry);

    // Other threads see their own (absent) deadline, not this one.
    std::thread([] {
      EXPECT_FALSE(net::CurrentDeadline().has_deadline());
    }).join();
  }
  EXPECT_FALSE(net::CurrentDeadline().has_deadline());
}

TEST(DeadlineTest, ExceededStatusIsRetryable) {
  const Status status = net::DeadlineExceededStatus("at dequeue");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(status.IsRetryable());
  EXPECT_NE(status.message().find("at dequeue"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Admission: frame classification, retry-after hints, the queue policy.

TEST(AdmissionTest, ClassifiesFramesByWireType) {
  auto frame_of = [](uint16_t type) {
    return Message{type, Bytes{0xAA}}.Encode();
  };
  EXPECT_EQ(ClassifyFrame(frame_of(core::kMsgS1UpdateRequest)),
            OpClass::kMutation);
  EXPECT_EQ(ClassifyFrame(frame_of(core::kMsgS2UpdateRequest)),
            OpClass::kMutation);
  EXPECT_EQ(ClassifyFrame(frame_of(core::kMsgS2ReinitRequest)),
            OpClass::kMutation);
  EXPECT_EQ(ClassifyFrame(frame_of(net::kMsgPutDocument)), OpClass::kMutation);
  EXPECT_EQ(ClassifyFrame(frame_of(core::kMsgS1SearchRequest)),
            OpClass::kSearch);
  EXPECT_EQ(ClassifyFrame(frame_of(core::kMsgS2SearchRequest)),
            OpClass::kSearch);
  EXPECT_EQ(ClassifyFrame(frame_of(net::kMsgFetchDocuments)),
            OpClass::kSearch);
  EXPECT_EQ(ClassifyFrame(frame_of(net::kMsgStats)), OpClass::kControl);
  EXPECT_EQ(ClassifyFrame(frame_of(net::kMsgReplAppend)), OpClass::kControl);
  EXPECT_EQ(ClassifyFrame(frame_of(net::kMsgReplPromote)), OpClass::kControl);
  // Unknown types classify as mutations — the conservative (shed-first)
  // direction; a truncated frame likewise.
  EXPECT_EQ(ClassifyFrame(frame_of(0x7777)), OpClass::kMutation);
  EXPECT_EQ(ClassifyFrame(Bytes{0x01}), OpClass::kMutation);

  // Batch envelopes are classified by their first sub-op, through the
  // optional session/trace/deadline headers.
  auto batch_of = [](uint16_t op_type) {
    net::BatchRequest batch;
    batch.ops.push_back({/*seq=*/11, op_type, Bytes{1, 2}});
    batch.ops.push_back({/*seq=*/12, op_type, Bytes{3}});
    Message msg = batch.ToMessage();
    msg.StampSession(5, 42);
    msg.has_deadline = true;
    msg.deadline_ms = 100;
    return msg.Encode();
  };
  EXPECT_EQ(ClassifyFrame(batch_of(core::kMsgS2UpdateRequest)),
            OpClass::kMutation);
  EXPECT_EQ(ClassifyFrame(batch_of(core::kMsgS2SearchRequest)),
            OpClass::kSearch);
}

TEST(AdmissionTest, RetryAfterHintRoundTripsThroughErrorMessages) {
  const Status shed =
      WithRetryAfter(Status::ResourceExhausted("server overloaded"), 40);
  uint32_t hint = 0;
  ASSERT_TRUE(RetryAfterHintMs(shed, &hint));
  EXPECT_EQ(hint, 40u);

  // The hint survives the kMsgError wire encoding (code + message text).
  const Status decoded =
      net::DecodeErrorMessage(net::MakeErrorMessage(shed));
  EXPECT_EQ(decoded.code(), StatusCode::kResourceExhausted);
  hint = 0;
  ASSERT_TRUE(RetryAfterHintMs(decoded, &hint));
  EXPECT_EQ(hint, 40u);

  EXPECT_FALSE(RetryAfterHintMs(Status::Unavailable("no hint here"), &hint));
}

TEST(AdmissionTest, DepthWatermarksShedMutationsFirst) {
  QueueAdmissionController::Options options;
  options.max_queue_depth = 16;  // mutations derive 16 / 2 = 8
  QueueAdmissionController controller(options);

  EXPECT_TRUE(controller.Admit(OpClass::kMutation, 7).admit);
  AdmissionDecision shed = controller.Admit(OpClass::kMutation, 8);
  EXPECT_FALSE(shed.admit);
  EXPECT_STREQ(shed.reason, "queue_full");
  EXPECT_GE(shed.retry_after_ms, 25u);

  // Searches ride out the brownout until the higher watermark.
  EXPECT_TRUE(controller.Admit(OpClass::kSearch, 8).admit);
  EXPECT_TRUE(controller.Admit(OpClass::kSearch, 15).admit);
  EXPECT_FALSE(controller.Admit(OpClass::kSearch, 16).admit);

  // Control traffic is never shed, no matter the depth.
  EXPECT_TRUE(controller.Admit(OpClass::kControl, 10'000).admit);
  EXPECT_GE(controller.shed_total(), 2u);
}

TEST(AdmissionTest, QueueWaitEwmaSheds) {
  QueueAdmissionController::Options options;
  options.max_queue_wait_ms = 10.0;  // mutations derive 5ms
  options.wait_ewma_alpha = 1.0;     // each sample replaces the EWMA
  QueueAdmissionController controller(options);

  EXPECT_TRUE(controller.Admit(OpClass::kMutation, 0).admit);

  controller.OnQueueWait(/*wait_ns=*/6'000'000);  // 6ms
  EXPECT_NEAR(controller.wait_ewma_ms(), 6.0, 0.1);
  EXPECT_FALSE(controller.Admit(OpClass::kMutation, 0).admit);
  EXPECT_TRUE(controller.Admit(OpClass::kSearch, 0).admit);

  controller.OnQueueWait(/*wait_ns=*/20'000'000);  // 20ms
  AdmissionDecision shed = controller.Admit(OpClass::kSearch, 0);
  EXPECT_FALSE(shed.admit);
  EXPECT_STREQ(shed.reason, "queue_wait");

  controller.OnQueueWait(/*wait_ns=*/1'000'000);  // recovered: 1ms
  EXPECT_TRUE(controller.Admit(OpClass::kMutation, 0).admit);
}

TEST(AdmissionTest, MemoryPressureShedsMutationsOnly) {
  std::atomic<bool> pressured{false};
  QueueAdmissionController::Options options;
  options.max_queue_depth = 1024;
  options.memory_pressure = [&] { return pressured.load(); };
  QueueAdmissionController controller(options);

  EXPECT_TRUE(controller.Admit(OpClass::kMutation, 0).admit);
  pressured = true;
  AdmissionDecision shed = controller.Admit(OpClass::kMutation, 0);
  EXPECT_FALSE(shed.admit);
  EXPECT_STREQ(shed.reason, "memory");
  // Searches allocate no durable state; they keep flowing.
  EXPECT_TRUE(controller.Admit(OpClass::kSearch, 0).admit);
  pressured = false;
  EXPECT_TRUE(controller.Admit(OpClass::kMutation, 0).admit);
}

TEST(AdmissionTest, RetryAfterScalesWithOverload) {
  QueueAdmissionController::Options options;
  options.max_queue_depth = 8;  // mutations derive 4
  options.retry_after_ms = 10;
  QueueAdmissionController controller(options);

  const AdmissionDecision mild = controller.Admit(OpClass::kMutation, 4);
  const AdmissionDecision deep = controller.Admit(OpClass::kMutation, 12);
  EXPECT_FALSE(mild.admit);
  EXPECT_FALSE(deep.admit);
  EXPECT_EQ(mild.retry_after_ms, 10u);       // 1x at the watermark
  EXPECT_EQ(deep.retry_after_ms, 30u);       // 3x overload
  const AdmissionDecision capped = controller.Admit(OpClass::kMutation, 4000);
  EXPECT_EQ(capped.retry_after_ms, 80u);     // clamped at 8x
}

// ---------------------------------------------------------------------------
// WorkerPool: the bounded dispatch queue underneath the shed path.

TEST(WorkerPoolTest, TrySubmitBoundsQueue) {
  using SubmitResult = engine::WorkerPool::SubmitResult;
  engine::WorkerPool pool(1);

  std::mutex gate;
  gate.lock();  // wedge the single worker on the first task
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] {
    std::lock_guard<std::mutex> hold(gate);
    ran.fetch_add(1);
  }));
  // Wait for the worker to pick the blocker up so the queue is empty.
  while (pool.queue_depth() > 0) std::this_thread::yield();

  EXPECT_EQ(pool.TrySubmit([&] { ran.fetch_add(1); }, /*max_queue=*/2),
            SubmitResult::kAccepted);
  EXPECT_EQ(pool.TrySubmit([&] { ran.fetch_add(1); }, /*max_queue=*/2),
            SubmitResult::kAccepted);
  EXPECT_EQ(pool.TrySubmit([&] { ran.fetch_add(1); }, /*max_queue=*/2),
            SubmitResult::kQueueFull);
  // max_queue == 0 keeps the unbounded Submit behavior.
  EXPECT_EQ(pool.TrySubmit([&] { ran.fetch_add(1); }, /*max_queue=*/0),
            SubmitResult::kAccepted);

  gate.unlock();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(pool.TrySubmit([] {}, /*max_queue=*/2), SubmitResult::kShutdown);
}

// ---------------------------------------------------------------------------
// Retry budgets + per-attempt deadline stamping (client side).

/// Scripted inner channel: fails the next `fail_next` calls with the
/// configured status, then answers every call with an ack echoing the
/// session stamp. Records what each attempt carried on the wire.
class ScriptedChannel : public net::Channel {
 public:
  struct Attempt {
    bool has_deadline = false;
    uint32_t deadline_ms = 0;
  };

  Result<Message> Call(const Message& request) override {
    attempts_.push_back({request.has_deadline, request.deadline_ms});
    if (fail_next > 0) {
      --fail_next;
      return failure;
    }
    Message reply{kAckType, {}};
    reply.EchoSession(request);
    return reply;
  }

  void Reset() override {}
  const net::ChannelStats& stats() const override { return stats_; }
  void ResetStats() override {}
  void SetIoDeadlineMs(double ms) override { io_caps_.push_back(ms); }

  static constexpr uint16_t kAckType = 0x0791;
  int fail_next = 0;
  Status failure = Status::Unavailable("scripted failure");
  const std::vector<Attempt>& attempts() const { return attempts_; }
  const std::vector<double>& io_caps() const { return io_caps_; }

 private:
  std::vector<Attempt> attempts_;
  std::vector<double> io_caps_;
  net::ChannelStats stats_;
};

TEST(RetryBudgetTest, BucketRefusesRetriesWhenEmpty) {
  ScriptedChannel inner;
  inner.fail_next = 100;  // never recovers
  RetryOptions options;
  options.max_attempts = 10;
  options.retry_budget = 2.0;
  RetryingChannel retry(&inner, options);
  retry.set_sleep_fn([](double) {});

  auto reply = retry.Call(Message{0x0790, {}});
  ASSERT_FALSE(reply.ok());
  // First attempt is free; two retries spend the bucket; the third retry
  // is refused and the last failure surfaces with the budget verdict.
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(reply.status().message().find("retry budget exhausted"),
            std::string::npos);
  EXPECT_EQ(retry.retry_stats().attempts, 3u);
  EXPECT_EQ(retry.retry_stats().budget_exhausted, 1u);
  EXPECT_DOUBLE_EQ(retry.retry_tokens(), 0.0);
}

TEST(RetryBudgetTest, SuccessesRefillTheBucket) {
  ScriptedChannel inner;
  RetryOptions options;
  options.max_attempts = 10;
  options.retry_budget = 4.0;
  options.retry_budget_refill = 0.5;
  RetryingChannel retry(&inner, options);
  retry.set_sleep_fn([](double) {});

  // Two failed attempts before success: spends 2 tokens, refills 0.5.
  inner.fail_next = 2;
  SSE_ASSERT_OK_RESULT(retry.Call(Message{0x0790, {}}));
  EXPECT_DOUBLE_EQ(retry.retry_tokens(), 2.5);

  // Clean successes credit the bucket back, capped at the budget.
  for (int i = 0; i < 5; ++i) {
    SSE_ASSERT_OK_RESULT(retry.Call(Message{0x0790, {}}));
  }
  EXPECT_DOUBLE_EQ(retry.retry_tokens(), 4.0);
  EXPECT_EQ(retry.retry_stats().budget_exhausted, 0u);
}

TEST(RetryBudgetTest, ShedStatusIsRetriedWithHintFloor) {
  ScriptedChannel inner;
  inner.fail_next = 1;
  inner.failure =
      WithRetryAfter(Status::ResourceExhausted("server overloaded"), 120);
  RetryOptions options;
  options.max_attempts = 5;
  options.initial_backoff_ms = 1.0;
  options.max_backoff_ms = 5.0;  // the hint must override this cap
  RetryingChannel retry(&inner, options);
  std::vector<double> sleeps;
  retry.set_sleep_fn([&](double ms) { sleeps.push_back(ms); });

  // RESOURCE_EXHAUSTED is not retryable in the global Status sense (a
  // consumed hash chain is permanent), but a *server shed* is — the retry
  // layer makes that call, and paces itself by the server's hint.
  SSE_ASSERT_OK_RESULT(retry.Call(Message{0x0790, {}}));
  EXPECT_EQ(retry.retry_stats().retries, 1u);
  ASSERT_EQ(sleeps.size(), 1u);
  EXPECT_GE(sleeps[0], 120.0);
}

TEST(RetryDeadlineTest, StampsRemainingBudgetPerAttempt) {
  ScriptedChannel inner;
  inner.fail_next = 1;
  RetryOptions options;
  options.max_attempts = 5;
  options.call_deadline_ms = 500.0;
  RetryingChannel retry(&inner, options);
  double clock_ms = 0.0;
  retry.set_clock_fn([&] { return clock_ms; });
  retry.set_sleep_fn([&](double) { clock_ms += 200.0; });

  SSE_ASSERT_OK_RESULT(retry.Call(Message{0x0790, {}}));
  ASSERT_EQ(inner.attempts().size(), 2u);
  // First attempt carries the whole budget; the retry only what is left,
  // and the transport's IO timeout is capped to the same remainder so the
  // last attempt cannot overshoot the budget.
  EXPECT_TRUE(inner.attempts()[0].has_deadline);
  EXPECT_EQ(inner.attempts()[0].deadline_ms, 500u);
  EXPECT_TRUE(inner.attempts()[1].has_deadline);
  EXPECT_EQ(inner.attempts()[1].deadline_ms, 300u);
  ASSERT_EQ(inner.io_caps().size(), 2u);
  EXPECT_DOUBLE_EQ(inner.io_caps()[0], 500.0);
  EXPECT_DOUBLE_EQ(inner.io_caps()[1], 300.0);

  // Without propagation (or without a deadline) nothing is stamped.
  ScriptedChannel bare;
  RetryOptions off = options;
  off.propagate_deadline = false;
  RetryingChannel no_stamp(&bare, off);
  no_stamp.set_sleep_fn([](double) {});
  SSE_ASSERT_OK_RESULT(no_stamp.Call(Message{0x0790, {}}));
  ASSERT_EQ(bare.attempts().size(), 1u);
  EXPECT_FALSE(bare.attempts()[0].has_deadline);
}

// ---------------------------------------------------------------------------
// Server-side deadline enforcement: at dequeue, mid-batch, before fsync.

/// Thread-safe handler whose data ops sleep a configurable time — the
/// stand-in for an expensive request when the test needs a saturated
/// dispatch queue or a deadline that expires while work is queued.
class SlowCountingHandler : public net::MessageHandler {
 public:
  explicit SlowCountingHandler(int sleep_ms) : sleep_ms_(sleep_ms) {}

  Result<Message> Handle(const Message& request) override {
    handled_.fetch_add(1);
    if (sleep_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    }
    Message reply{kAckType, {}};
    reply.EchoSession(request);
    return reply;
  }

  int handled() const { return handled_.load(); }

  static constexpr uint16_t kAckType = 0x0793;

 private:
  const int sleep_ms_;
  std::atomic<int> handled_{0};
};

TEST(TcpDeadlineTest, ExpiredRequestDroppedAtDequeue) {
  SlowCountingHandler handler(/*sleep_ms=*/100);
  net::TcpServer::Options options;
  options.serialize_handler = false;
  options.pipeline_workers = 1;  // one worker: the second frame must queue
  auto server = net::TcpServer::Start(&handler, 0, options);
  SSE_ASSERT_OK_RESULT(server);
  auto channel = net::TcpChannel::Connect((*server)->port());
  SSE_ASSERT_OK_RESULT(channel);

  // Frame A occupies the worker for 100ms; frame B arrives with a 1ms
  // budget and sits in the dispatch queue past it. The server must drop B
  // at dequeue — retryable DEADLINE_EXCEEDED, handler never invoked.
  Message slow{0x0792, Bytes{0x01}};
  Message doomed{0x0792, Bytes{0x02}};
  doomed.has_deadline = true;
  doomed.deadline_ms = 1;
  const auto id_a = (*channel)->Submit(slow);
  const auto id_b = (*channel)->Submit(doomed);

  SSE_ASSERT_OK_RESULT((*channel)->Await(id_a));
  auto dropped = (*channel)->Await(id_b);
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(dropped.status().IsRetryable());
  EXPECT_EQ(handler.handled(), 1);
  (*server)->Stop();
}

TEST(TcpAdmissionTest, BoundedDispatchQueueShedsWithRetryableVerdict) {
  SlowCountingHandler handler(/*sleep_ms=*/20);
  net::TcpServer::Options options;
  options.serialize_handler = false;
  options.pipeline_workers = 1;
  options.max_dispatch_queue = 2;
  auto server = net::TcpServer::Start(&handler, 0, options);
  SSE_ASSERT_OK_RESULT(server);
  auto channel = net::TcpChannel::Connect((*server)->port());
  SSE_ASSERT_OK_RESULT(channel);

  // Flood 12 slow frames at a queue bounded to 2: the overflow is shed
  // with RESOURCE_EXHAUSTED + a retry-after hint instead of queueing
  // without bound. Session stamps let the pipelined replies correlate.
  constexpr int kFlood = 12;
  std::vector<net::Channel::CallId> ids;
  for (int i = 0; i < kFlood; ++i) {
    Message msg{0x0792, Bytes{static_cast<uint8_t>(i)}};
    msg.StampSession(/*client=*/21, /*sequence=*/100 + i);
    ids.push_back((*channel)->Submit(msg));
  }
  int ok = 0, shed = 0;
  for (const auto id : ids) {
    auto reply = (*channel)->Await(id);
    if (reply.ok()) {
      ++ok;
      continue;
    }
    ASSERT_EQ(reply.status().code(), StatusCode::kResourceExhausted)
        << reply.status().ToString();
    uint32_t hint = 0;
    EXPECT_TRUE(RetryAfterHintMs(reply.status(), &hint));
    EXPECT_GE(hint, 1u);
    ++shed;
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(ok + shed, kFlood);
  EXPECT_EQ(handler.handled(), ok);
  (*server)->Stop();
}

/// Minimal persistable handler for the durable-deadline tests: XOR cells
/// keyed by one byte (double-apply visible), with an optional per-op sleep
/// so a deadline can expire between batch sub-ops.
class XorCellsHandler : public core::PersistableHandler {
 public:
  static constexpr uint16_t kOpSet = 0x0794;     // payload: cell, delta, slow
  static constexpr uint16_t kOpGet = 0x0796;     // payload: cell
  static constexpr uint16_t kOpAck = 0x0795;

  Result<Message> Handle(const Message& request) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (request.type == kOpSet) {
      if (request.payload.size() != 3) {
        return Status::InvalidArgument("set wants cell,delta,slow");
      }
      if (request.payload[2] != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(750));
      }
      cells_[request.payload[0]] ^= request.payload[1];
      ++applies_;
      Message reply{kOpAck, {}};
      reply.EchoSession(request);
      return reply;
    }
    if (request.type == kOpGet && request.payload.size() == 1) {
      Message reply{kOpAck, Bytes{cells_[request.payload[0]]}};
      reply.EchoSession(request);
      return reply;
    }
    return Status::InvalidArgument("unknown op");
  }

  Result<Bytes> SerializeState() const override { return Bytes{}; }
  Status RestoreState(BytesView) override { return Status::OK(); }
  bool IsMutating(uint16_t msg_type) const override {
    return msg_type == kOpSet;
  }

  int applies() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return applies_;
  }

 private:
  mutable std::mutex mutex_;
  std::map<uint8_t, uint8_t> cells_;
  int applies_ = 0;
};

Message SetOp(uint8_t cell, uint8_t delta, bool slow = false) {
  return Message{XorCellsHandler::kOpSet,
                 Bytes{cell, delta, static_cast<uint8_t>(slow ? 1 : 0)}};
}

TEST(DurableDeadlineTest, ExpiredMutationDroppedBeforeWalAppend) {
  TempDir dir;
  XorCellsHandler inner;
  auto durable = core::DurableServer::Open(dir.path(), &inner);
  SSE_ASSERT_OK_RESULT(durable);

  SSE_ASSERT_OK_RESULT((*durable)->Handle(SetOp(1, 0x0F)));
  EXPECT_EQ((*durable)->wal_records(), 1u);

  // An expired mutation must cost neither an apply nor a WAL record (let
  // alone the fsync): nobody is waiting for the reply.
  const Deadline expired =
      Deadline::FromRemainingMs(1, Deadline::NowNs() - 50'000'000ull);
  {
    ScopedDeadline scope(expired);
    auto refused = (*durable)->Handle(SetOp(1, 0xF0));
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(refused.status().IsRetryable());

    // Read-only work under the same expired deadline still serves — the
    // durable layer only refuses what would burn an fsync.
    SSE_ASSERT_OK_RESULT(
        (*durable)->Handle(Message{XorCellsHandler::kOpGet, Bytes{1}}));
  }
  EXPECT_EQ((*durable)->wal_records(), 1u);
  EXPECT_EQ(inner.applies(), 1);
}

TEST(DurableDeadlineTest, MidBatchExpiryFailsRemainingOpsOnly) {
  TempDir dir;
  XorCellsHandler inner;
  auto durable = core::DurableServer::Open(dir.path(), &inner);
  SSE_ASSERT_OK_RESULT(durable);

  // Op 1 sleeps 750ms against a 500ms budget: ops 0-1 commit, ops 2-3 are
  // refused per-op while the envelope reply itself stays OK.
  net::BatchRequest batch;
  auto add = [&](uint64_t seq, const Message& op) {
    batch.ops.push_back({seq, op.type, op.payload});
  };
  add(101, SetOp(1, 0x01));
  add(102, SetOp(2, 0x02, /*slow=*/true));
  add(103, SetOp(3, 0x04));
  add(104, SetOp(4, 0x08));
  Message envelope = batch.ToMessage();
  envelope.StampSession(/*client=*/31, /*sequence=*/100);

  Result<Message> reply = Status::OK();
  {
    ScopedDeadline scope(
        Deadline::FromRemainingMs(500, Deadline::NowNs()));
    reply = (*durable)->Handle(envelope);
  }
  SSE_ASSERT_OK_RESULT(reply);
  auto entries = net::BatchReply::FromMessage(*reply);
  SSE_ASSERT_OK_RESULT(entries);
  ASSERT_EQ(entries->entries.size(), 4u);
  EXPECT_EQ(entries->entries[0].type, XorCellsHandler::kOpAck);
  EXPECT_EQ(entries->entries[1].type, XorCellsHandler::kOpAck);
  for (size_t i = 2; i < 4; ++i) {
    ASSERT_EQ(entries->entries[i].type, net::kMsgError) << "op " << i;
    const Status status = net::DecodeErrorMessage(
        Message{entries->entries[i].type, entries->entries[i].payload});
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << "op " << i;
  }
  // Exactly the committed prefix reached the WAL.
  EXPECT_EQ((*durable)->wal_records(), 2u);
  EXPECT_EQ(inner.applies(), 2);
}

TEST(EngineDeadlineTest, ExpiredBatchFailsEveryOp) {
  core::SystemConfig config = FastTestConfig();
  config.engine_shards = 2;
  DeterministicRandom rng(41);
  core::SseSystem sys =
      sse::testing::MakeTestSystem(SystemKind::kScheme2, &rng, config);

  net::BatchRequest batch;
  batch.ops.push_back({201, core::kMsgS2SearchRequest, Bytes{1}});
  batch.ops.push_back({202, core::kMsgS2SearchRequest, Bytes{2}});
  Message envelope = batch.ToMessage();
  envelope.StampSession(/*client=*/33, /*sequence=*/200);

  Result<Message> reply = Status::OK();
  {
    ScopedDeadline scope(
        Deadline::FromRemainingMs(1, Deadline::NowNs() - 50'000'000ull));
    reply = sys.server->Handle(envelope);
  }
  SSE_ASSERT_OK_RESULT(reply);
  auto entries = net::BatchReply::FromMessage(*reply);
  SSE_ASSERT_OK_RESULT(entries);
  ASSERT_EQ(entries->entries.size(), 2u);
  for (const auto& entry : entries->entries) {
    ASSERT_EQ(entry.type, net::kMsgError);
    const Status status =
        net::DecodeErrorMessage(Message{entry.type, entry.payload});
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  }
}

// ---------------------------------------------------------------------------
// Per-endpoint circuit breaker in the failover router.

/// Plays a replication primary for the router's stats probe; data ops are
/// scripted per-mode so the test can walk the breaker state machine.
class ModalPrimaryHandler : public net::MessageHandler {
 public:
  enum class Mode { kOk, kShed, kUnavailable };

  Result<Message> Handle(const Message& request) override {
    if (request.type == net::kMsgStats) {
      obs::StatsReply stats;
      stats.prometheus_text = "sse_repl_is_primary 1\n";
      Message reply = stats.ToMessage();
      reply.EchoSession(request);
      return reply;
    }
    data_calls_.fetch_add(1);
    switch (mode_.load()) {
      case Mode::kShed:
        return WithRetryAfter(
            Status::ResourceExhausted("server overloaded (queue_full)"), 150);
      case Mode::kUnavailable:
        return Status::Unavailable("scripted outage");
      case Mode::kOk:
        break;
    }
    Message reply{XorCellsHandler::kOpAck, {}};
    reply.EchoSession(request);
    return reply;
  }

  void set_mode(Mode mode) { mode_ = mode; }
  int data_calls() const { return data_calls_.load(); }

 private:
  std::atomic<Mode> mode_{Mode::kOk};
  std::atomic<int> data_calls_{0};
};

TEST(FailoverBreakerTest, ShedOpensBreakerForRetryAfterWithoutDemotion) {
  using BreakerState = repl::FailoverChannel::BreakerState;
  ModalPrimaryHandler handler;
  net::TcpServer::Options sopts;
  sopts.serve_stats = false;  // the handler plays the repl stats endpoint
  auto server = net::TcpServer::Start(&handler, 0, sopts);
  SSE_ASSERT_OK_RESULT(server);

  repl::FailoverChannel::Options fopts;
  fopts.is_mutating = [](const Message& m) {
    return m.type == XorCellsHandler::kOpSet;
  };
  repl::FailoverChannel channel({{"127.0.0.1", (*server)->port()}}, fopts);

  // A shed reply opens the breaker for exactly the server's hint.
  handler.set_mode(ModalPrimaryHandler::Mode::kShed);
  auto shed = channel.Call(SetOp(1, 1));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(handler.data_calls(), 1);
  EXPECT_EQ(channel.breaker_opens(), 1u);
  ASSERT_EQ(channel.breaker_states().size(), 1u);
  EXPECT_EQ(channel.breaker_states()[0], BreakerState::kOpen);
  // The shed did NOT demote the primary: it is alive, just pacing us.
  EXPECT_EQ(channel.primary_index(), 0);

  // While open, calls are refused locally — the overloaded server never
  // sees them — with the remaining open time as the retry-after hint.
  auto refused = channel.Call(SetOp(1, 2));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.status().message().find("circuit breaker open"),
            std::string::npos);
  uint32_t hint = 0;
  EXPECT_TRUE(RetryAfterHintMs(refused.status(), &hint));
  EXPECT_EQ(handler.data_calls(), 1);

  // Past the hint the breaker half-opens; a healthy probe closes it.
  handler.set_mode(ModalPrimaryHandler::Mode::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  SSE_ASSERT_OK_RESULT(channel.Call(SetOp(1, 3)));
  EXPECT_EQ(channel.breaker_states()[0], BreakerState::kClosed);
  (*server)->Stop();
}

TEST(FailoverBreakerTest, ConsecutiveRetryableFailuresOpenBreaker) {
  ModalPrimaryHandler handler;
  net::TcpServer::Options sopts;
  sopts.serve_stats = false;
  auto server = net::TcpServer::Start(&handler, 0, sopts);
  SSE_ASSERT_OK_RESULT(server);

  repl::FailoverChannel::Options fopts;
  fopts.is_mutating = [](const Message&) { return true; };
  fopts.breaker_failure_threshold = 3;
  fopts.breaker_open_ms = 60'000;  // must not half-open during the test
  repl::FailoverChannel channel({{"127.0.0.1", (*server)->port()}}, fopts);

  handler.set_mode(ModalPrimaryHandler::Mode::kUnavailable);
  for (int i = 0; i < 3; ++i) {
    auto reply = channel.Call(SetOp(1, 1));
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable) << "call " << i;
  }
  EXPECT_EQ(channel.breaker_opens(), 1u);
  EXPECT_EQ(handler.data_calls(), 3);

  // The fourth call trips on the breaker locally instead of hammering the
  // failing endpoint again.
  auto refused = channel.Call(SetOp(1, 1));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(handler.data_calls(), 3);
  (*server)->Stop();
}

// ---------------------------------------------------------------------------
// The brownout chaos test: the full stack at ~2x+ sustained saturation.

/// Decorator that charges every data frame a fixed handler cost before
/// forwarding, turning a microsecond-fast test engine into a saturable
/// server with a known capacity (workers / cost). Thread-safe as long as
/// the inner handler is.
class ThrottledHandler : public net::MessageHandler {
 public:
  ThrottledHandler(net::MessageHandler* inner, int cost_ms)
      : inner_(inner), cost_ms_(cost_ms) {}

  Result<Message> Handle(const Message& request) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(cost_ms_));
    return inner_->Handle(request);
  }

 private:
  net::MessageHandler* inner_;
  const int cost_ms_;
};

double CounterValue(const std::string& name) {
  double value = 0.0;
  repl::FindMetricValue(obs::MetricsRegistry::Global().RenderPrometheus(),
                        name, &value);
  return value;
}

TEST(OverloadChaosTest, BrownoutShedsMutationsServesSearchesExactlyOnce) {
  // Server: a real sharded Scheme 2 engine behind the reactor TCP stack,
  // throttled to ~2 ops/ms of worker capacity, with a bounded dispatch
  // queue and the default admission policy (mutations shed at depth 12,
  // searches at 24, hard cap 32).
  core::SystemConfig config = FastTestConfig();
  config.scheme.chain_length = 4096;
  config.engine_shards = 2;
  DeterministicRandom rng(57);
  core::SseSystem sys =
      sse::testing::MakeTestSystem(SystemKind::kScheme2, &rng, config);
  ThrottledHandler throttled(sys.server.get(), /*cost_ms=*/1);

  QueueAdmissionController::Options admission_options;
  admission_options.max_queue_depth = 24;
  admission_options.mutation_queue_depth = 12;
  admission_options.retry_after_ms = 5;
  auto controller =
      std::make_shared<QueueAdmissionController>(admission_options);

  net::TcpServer::Options server_options;
  server_options.serialize_handler = false;
  server_options.pipeline_workers = 2;
  server_options.max_dispatch_queue = 32;
  server_options.admission = controller;
  auto server = net::TcpServer::Start(&throttled, 0, server_options);
  SSE_ASSERT_OK_RESULT(server);

  const double shed_before = CounterValue("sse_admission_shed_total");
  const double shed_mutations_before =
      CounterValue("sse_admission_shed_mutations_total");

  // Open-loop burst generators: windows of raw garbage frames (3:1
  // mutations to searches), each window ~3x the dispatch bound — well
  // past the ~2000 frames/s the throttled workers can drain. Garbage payloads draw
  // INVALID_ARGUMENT when admitted; what matters here is the wire type
  // (for classification) and the 1ms each admitted frame costs.
  std::atomic<bool> stop_burst{false};
  std::atomic<int> burst_mut_shed{0}, burst_mut_sent{0};
  std::atomic<int> burst_search_shed{0}, burst_search_sent{0};
  std::atomic<int> burst_bad_status{0};
  constexpr int kBurstThreads = 2;
  std::vector<std::thread> bursters;
  for (int b = 0; b < kBurstThreads; ++b) {
    bursters.emplace_back([&, b] {
      auto tcp = net::TcpChannel::Connect((*server)->port());
      ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
      uint64_t seq = 1;
      DeterministicRandom burst_rng(400 + static_cast<uint64_t>(b));
      while (!stop_burst.load()) {
        std::vector<std::pair<net::Channel::CallId, bool>> window;
        for (int i = 0; i < 48 && !stop_burst.load(); ++i) {
          const bool mutation = i % 4 != 0;
          Message msg{mutation ? core::kMsgS2UpdateRequest
                               : core::kMsgS2SearchRequest,
                      Bytes{static_cast<uint8_t>(burst_rng.Next() & 0xFF)}};
          msg.StampSession(1000 + static_cast<uint64_t>(b), seq++);
          window.emplace_back((*tcp)->Submit(msg), mutation);
          (mutation ? burst_mut_sent : burst_search_sent).fetch_add(1);
        }
        for (const auto& [id, mutation] : window) {
          auto reply = (*tcp)->Await(id);
          if (reply.ok()) continue;
          const StatusCode code = reply.status().code();
          if (code == StatusCode::kResourceExhausted ||
              code == StatusCode::kDeadlineExceeded) {
            // Every shed verdict must carry a retry-after pace.
            uint32_t hint = 0;
            if (code == StatusCode::kResourceExhausted &&
                !RetryAfterHintMs(reply.status(), &hint)) {
              burst_bad_status.fetch_add(1);
            }
            (mutation ? burst_mut_shed : burst_search_shed).fetch_add(1);
          }
          // Any other code is the scheme parser's answer to the garbage
          // payload of an *admitted* frame — the admission layer only owes
          // well-formed verdicts for the frames it sheds.
        }
        // A beat between windows: the generator stays open-loop (each
        // window is ~3x the dispatch bound, so shedding continues), but
        // the pause guarantees the queue periodically drains enough for
        // the probe clients' retries to win admission even when a
        // sanitizer slows the drain rate by an order of magnitude.
        // Without it the probes can starve under TSan: every one of
        // their attempts lands while the bursters hold the queue full.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  // Probe clients: real Scheme 2 clients running a mixed store/search
  // workload through retrying channels that honor the shed hints. Their
  // calls ride through the same brownout; with the deep chaos-grade retry
  // budget every op must eventually land exactly once.
  constexpr int kProbeThreads = 2;
  constexpr size_t kOpsEach = 48;
  constexpr uint64_t kIdsEach = 64;
  std::vector<std::thread> probes;
  std::vector<size_t> divergences(kProbeThreads, size_t{0});
  std::vector<size_t> searches_served(kProbeThreads, size_t{0});
  std::vector<std::vector<double>> latencies_ms(kProbeThreads);
  for (int t = 0; t < kProbeThreads; ++t) {
    probes.emplace_back([&, t] {
      auto tcp = net::TcpChannel::Connect((*server)->port());
      ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
      DeterministicRandom thread_rng(500 + static_cast<uint64_t>(t));
      RetryOptions ropts;
      // Chaos-depth retries: under TSan the whole system runs ~10x
      // slower, so an op can eat far more shed verdicts before the
      // bursters' inter-window beat lets it through.
      ropts.max_attempts = 512;
      ropts.initial_backoff_ms = 1.0;
      ropts.max_backoff_ms = 50.0;
      RetryingChannel retry(tcp->get(), ropts, &thread_rng);
      auto client = core::Scheme2Client::Create(TestMasterKey(), config.scheme,
                                                &retry, &thread_rng);
      ASSERT_TRUE(client.ok()) << client.status().ToString();

      const std::string ns = "t" + std::to_string(t) + ".";
      std::map<std::string, std::set<uint64_t>> oracle;
      uint64_t next_id = static_cast<uint64_t>(t) * kIdsEach;
      const uint64_t max_id = next_id + kIdsEach;
      DeterministicRandom workload(600 + static_cast<uint64_t>(t));
      for (size_t op = 0; op < kOpsEach; ++op) {
        const auto t0 = std::chrono::steady_clock::now();
        if (next_id + 1 < max_id && workload.Next() % 3 == 0) {
          const uint64_t id = next_id++;
          const std::string kw = ns + "kw" + std::to_string(workload.Next() % 8);
          const Document doc =
              Document::Make(id, ns + "doc-" + std::to_string(id), {kw});
          const Status stored = (*client)->Store({doc});
          ASSERT_TRUE(stored.ok()) << "op " << op << ": " << stored.ToString();
          oracle[kw].insert(id);
        } else {
          const std::string kw = ns + "kw" + std::to_string(workload.Next() % 8);
          auto outcome = (*client)->Search(kw);
          ASSERT_TRUE(outcome.ok())
              << "op " << op << ": " << outcome.status().ToString();
          ++searches_served[static_cast<size_t>(t)];
          const std::vector<uint64_t> expected(oracle[kw].begin(),
                                               oracle[kw].end());
          if (outcome->ids != expected) {
            ++divergences[static_cast<size_t>(t)];
          }
        }
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        latencies_ms[static_cast<size_t>(t)].push_back(ms);
      }
    });
  }

  for (std::thread& th : probes) th.join();
  stop_burst = true;
  for (std::thread& th : bursters) th.join();
  (*server)->Stop();

  // The server actually browned out, mutations first, and every shed
  // carried a well-formed retryable verdict.
  EXPECT_GT(controller->shed_total(), 0u);
  EXPECT_GT(burst_mut_shed.load(), 0);
  EXPECT_EQ(burst_bad_status.load(), 0);
  const double mut_rate = static_cast<double>(burst_mut_shed.load()) /
                          std::max(1, burst_mut_sent.load());
  const double search_rate = static_cast<double>(burst_search_shed.load()) /
                             std::max(1, burst_search_sent.load());
  EXPECT_GT(mut_rate, search_rate);
  EXPECT_GT(CounterValue("sse_admission_shed_total"), shed_before);
  EXPECT_GT(CounterValue("sse_admission_shed_mutations_total"),
            shed_mutations_before);

  // Searches kept serving through the brownout, and the accepted ops'
  // tail latency stayed bounded — the queue cap converts unbounded wait
  // into fast sheds the retry layer paces out.
  std::vector<double> all_latencies;
  for (int t = 0; t < kProbeThreads; ++t) {
    EXPECT_GT(searches_served[static_cast<size_t>(t)], 0u) << "thread " << t;
    all_latencies.insert(all_latencies.end(),
                         latencies_ms[static_cast<size_t>(t)].begin(),
                         latencies_ms[static_cast<size_t>(t)].end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  const double p99 =
      all_latencies[static_cast<size_t>(0.99 * (all_latencies.size() - 1))];
  EXPECT_LT(p99, 5000.0);

  // Exactly-once: zero oracle divergences across shed + retry.
  for (int t = 0; t < kProbeThreads; ++t) {
    EXPECT_EQ(divergences[static_cast<size_t>(t)], 0u) << "thread " << t;
  }
}

}  // namespace
}  // namespace sse
