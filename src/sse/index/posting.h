#ifndef SSE_INDEX_POSTING_H_
#define SSE_INDEX_POSTING_H_

#include <cstdint>
#include <vector>

#include "sse/util/bitvec.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::index {

/// Document identifiers as used throughout the library. The paper assigns
/// each document an exclusive client-chosen identifier `i`; Scheme 1 uses
/// the identifier as a bit position, Scheme 2 stores lists of them.
using DocIdList = std::vector<uint64_t>;

/// Encodes a strictly-increasing id list as delta varints (count-prefixed).
/// Scheme 2's posting segments use this format before encryption, so the
/// plaintext a chain key unlocks is compact.
Result<Bytes> EncodeIdList(const DocIdList& ids);

/// Decodes EncodeIdList output. Enforces strict monotonicity (duplicate or
/// out-of-order ids indicate corruption).
Result<DocIdList> DecodeIdList(BytesView data);

/// Sorts and deduplicates in place; returns the canonical strictly
/// increasing list.
DocIdList Canonicalize(DocIdList ids);

/// Converts an id list to a bitmap of `num_bits` bits (Scheme 1's I(w)).
Result<BitVec> IdsToBitmap(size_t num_bits, const DocIdList& ids);

/// Extracts the set bit positions (bitmap -> id list).
DocIdList BitmapToIds(const BitVec& bitmap);

/// Merges two canonical lists (set union).
DocIdList MergeIdLists(const DocIdList& a, const DocIdList& b);

}  // namespace sse::index

#endif  // SSE_INDEX_POSTING_H_
