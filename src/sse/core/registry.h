#ifndef SSE_CORE_REGISTRY_H_
#define SSE_CORE_REGISTRY_H_

#include <memory>

#include "sse/core/persistable.h"
#include "sse/core/scheme_descriptor.h"
#include "sse/core/types.h"
#include "sse/crypto/keys.h"
#include "sse/net/channel.h"
#include "sse/net/retry.h"
#include "sse/util/random.h"

namespace sse::core {

/// A fully wired client/channel/server triple for one system. The channel
/// is the instrumented in-process link; benches read its stats for the
/// round/byte numbers. With SystemConfig::with_retry the client talks
/// through `retry` (session-stamped exactly-once calls) instead of the
/// bare channel.
struct SseSystem {
  std::unique_ptr<PersistableHandler> server;
  std::unique_ptr<net::InProcessChannel> channel;
  std::unique_ptr<net::RetryingChannel> retry;  // null unless with_retry
  std::unique_ptr<SseClientInterface> client;

  net::ChannelStats& stats() { return channel->mutable_stats(); }
};

/// Builds a ready-to-use system of the given kind by dispatching through
/// its SchemeDescriptor (see scheme_descriptor.h; the table lives in
/// scheme_registry.cc). `rng` must outlive the returned system.
Result<SseSystem> CreateSystem(SystemKind kind, const crypto::MasterKey& key,
                               const SystemConfig& config, RandomSource* rng);

}  // namespace sse::core

#endif  // SSE_CORE_REGISTRY_H_
