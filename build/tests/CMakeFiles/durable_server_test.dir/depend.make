# Empty dependencies file for durable_server_test.
# This may be replaced when dependencies are built.
