// vault_admin — inspect and maintain a durable SSE server directory
// without any keys (everything here is the server's own view: ciphertext
// and framing only).
//
// Usage:
//   vault_admin <dir> status              # snapshot/WAL/doc-log overview
//   vault_admin <dir> checkpoint <scheme> # load, checkpoint, compact WAL
//                                         # (any descriptor-table name, e.g.
//                                         # scheme1/scheme2/scheme3; s1/s2
//                                         # stay as aliases)
//   vault_admin <dir> compact             # compact the document log, if any
//   vault_admin stats <host:port> [--spans]   # scrape a running server
//   vault_admin events <host:port> [N]    # last N journal events (default
//                                         # the whole ring) from a live
//                                         # server, oldest first
//
// Example (after using sse_cli):
//   ./build/examples/vault_admin /tmp/vault status
//   ./build/examples/vault_admin stats 127.0.0.1:7700

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sse/core/durable_server.h"
#include "sse/core/registry.h"
#include "sse/net/tcp.h"
#include "sse/obs/stats_rpc.h"
#include "sse/repl/failover_channel.h"
#include "sse/storage/log_store.h"
#include "sse/storage/snapshot.h"
#include "sse/storage/wal.h"

namespace {

using namespace sse;

int Usage() {
  std::fprintf(stderr,
               "usage: vault_admin <dir> status\n"
               "       vault_admin <dir> checkpoint <scheme>\n"
               "       vault_admin <dir> compact\n"
               "       vault_admin stats <host:port> [--spans]\n"
               "       vault_admin events <host:port> [N]\n"
               "scheme names:");
  for (const core::SchemeDescriptor& d : core::AllSchemes()) {
    std::fprintf(stderr, " %.*s", static_cast<int>(d.name.size()),
                 d.name.data());
  }
  std::fprintf(stderr, " (s1/s2 are aliases)\n");
  return 2;
}

/// Dials host:port out of a "host:port" (or bare-port) target string.
Result<std::unique_ptr<net::TcpChannel>> DialTarget(const std::string& target) {
  std::string host = "127.0.0.1";
  std::string port_str = target;
  if (size_t colon = target.rfind(':'); colon != std::string::npos) {
    host = target.substr(0, colon);
    port_str = target.substr(colon + 1);
  }
  const long port = std::strtol(port_str.c_str(), nullptr, 10);
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port in " + target);
  }
  return net::TcpChannel::Connect(static_cast<uint16_t>(port), host);
}

/// Fetches the last `tail` journal events (0 = the server's whole ring)
/// over the stats RPC and prints them one per line, oldest first.
int RunEvents(const std::string& target, uint32_t tail) {
  auto channel = DialTarget(target);
  if (!channel.ok()) {
    std::fprintf(stderr, "connect %s failed: %s\n", target.c_str(),
                 channel.status().ToString().c_str());
    return 1;
  }
  obs::StatsRequest req;
  req.include_events = true;
  req.events_tail = tail;
  auto reply_msg = (*channel)->Call(req.ToMessage());
  if (!reply_msg.ok()) {
    std::fprintf(stderr, "stats RPC failed: %s\n",
                 reply_msg.status().ToString().c_str());
    return 1;
  }
  auto reply = obs::StatsReply::FromMessage(*reply_msg);
  if (!reply.ok()) {
    std::fprintf(stderr, "bad stats reply: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  if (reply->events_json.empty() || reply->events_json == "[]") {
    std::printf("(no events recorded; server may predate the journal)\n");
    return 0;
  }
  // The payload is our own fixed-schema JSON array; reflow it one event
  // per line so the narrative reads top to bottom.
  const std::string& json = reply->events_json;
  std::string line;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '[' && i == 0) continue;
    if (c == ']' && i + 1 == json.size()) break;
    if (c == ',' && i + 1 < json.size() && json[i + 1] == '{') {
      std::printf("%s\n", line.c_str());
      line.clear();
      continue;
    }
    line.push_back(c);
  }
  if (!line.empty()) std::printf("%s\n", line.c_str());
  return 0;
}

/// Scrapes a live server over the kMsgStats admin RPC and pretty-prints
/// the Prometheus payload: metric families grouped with their HELP text,
/// and the degraded-mode gauges called out up front so an operator sees
/// storage faults before scrolling.
int RunStats(const std::string& target, bool include_spans) {
  auto channel = DialTarget(target);
  if (!channel.ok()) {
    std::fprintf(stderr, "connect %s failed: %s\n", target.c_str(),
                 channel.status().ToString().c_str());
    return 1;
  }
  obs::StatsRequest req;
  req.include_spans = include_spans;
  auto reply_msg = (*channel)->Call(req.ToMessage());
  if (!reply_msg.ok()) {
    std::fprintf(stderr, "stats RPC failed: %s\n",
                 reply_msg.status().ToString().c_str());
    return 1;
  }
  auto reply = obs::StatsReply::FromMessage(*reply_msg);
  if (!reply.ok()) {
    std::fprintf(stderr, "bad stats reply: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }

  // Health summary first: any *_degraded gauge that reads nonzero.
  bool any_degraded = false;
  std::vector<std::string> lines;
  {
    size_t start = 0;
    const std::string& text = reply->prometheus_text;
    while (start <= text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      lines.push_back(text.substr(start, end - start));
      start = end + 1;
    }
  }
  for (const std::string& line : lines) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const std::string name = line.substr(0, space);
    if (name.find("_degraded") == std::string::npos) continue;
    const double value = std::strtod(line.c_str() + space + 1, nullptr);
    if (value != 0.0) {
      std::printf("!! DEGRADED: %s = %g\n", name.c_str(), value);
      any_degraded = true;
    }
  }
  std::printf("health:        %s\n",
              any_degraded ? "DEGRADED (see above)"
                           : "ok (no degraded gauges)");
  // Replication role summary (present only on nodes serving through
  // repl::ReplNode, which injects the sse_repl_* series into this scrape).
  double is_primary = 0;
  if (repl::FindMetricValue(reply->prometheus_text, "sse_repl_is_primary",
                            &is_primary)) {
    double epoch = 0, promotions = 0;
    repl::FindMetricValue(reply->prometheus_text, "sse_repl_epoch", &epoch);
    repl::FindMetricValue(reply->prometheus_text, "sse_repl_promotions_total",
                          &promotions);
    if (is_primary != 0.0) {
      std::printf("replication:   PRIMARY (epoch %g, %g promotion(s))\n",
                  epoch, promotions);
      double log_end = 0, acked = 0;
      if (repl::FindMetricValue(reply->prometheus_text,
                                "sse_repl_log_end_seq", &log_end) &&
          repl::FindMetricValue(reply->prometheus_text,
                                "sse_repl_max_acked_seq", &acked)) {
        std::printf("follower lag:  %g record(s) not yet acked by any "
                    "follower (log end %g, max acked %g)\n",
                    log_end - acked, log_end, acked);
      }
    } else {
      // A primary whose sender was fenced also reports 0: it refuses
      // mutations until an operator intervenes, exactly like a follower.
      double next_seq = 0, view_ok = 1;
      repl::FindMetricValue(reply->prometheus_text, "sse_repl_node_next_seq",
                            &next_seq);
      repl::FindMetricValue(reply->prometheus_text, "sse_repl_view_ok",
                            &view_ok);
      std::printf("replication:   follower/fenced (epoch %g, durable cursor "
                  "%g, read view %s, %g promotion(s))\n",
                  epoch, next_seq, view_ok != 0.0 ? "ok" : "FAIL-STOPPED",
                  promotions);
    }
  }
  // Reactor load at a glance: open connections on the scraped server
  // (sse_net_connections_active; includes this scrape's own connection).
  for (const std::string& line : lines) {
    if (line.rfind("sse_net_connections_active", 0) != 0) continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    std::printf("connections:   %g active\n",
                std::strtod(line.c_str() + space + 1, nullptr));
    break;
  }
  // SLO attainment per op class, from the sse_slo_* gauges the server's
  // tracker publishes (fast window attainment vs objective-relative burn).
  for (const char* cls : {"search", "mutation", "control"}) {
    const std::string base = std::string("sse_slo_") + cls;
    double attainment = 0;
    if (!repl::FindMetricValue(reply->prometheus_text, base + "_attainment",
                               &attainment)) {
      continue;  // server predates the SLO tracker
    }
    double burn_fast = 0, burn_slow = 0, total = 0;
    repl::FindMetricValue(reply->prometheus_text, base + "_burn_fast",
                          &burn_fast);
    repl::FindMetricValue(reply->prometheus_text, base + "_burn_slow",
                          &burn_slow);
    repl::FindMetricValue(reply->prometheus_text, base + "_window_total",
                          &total);
    if (total == 0) {
      std::printf("slo %-9s (no traffic in window)\n",
                  (std::string(cls) + ":").c_str());
      continue;
    }
    std::printf("slo %-9s attainment %.4f, burn %.2f fast / %.2f slow "
                "(%g op(s) in window)%s\n",
                (std::string(cls) + ":").c_str(), attainment, burn_fast,
                burn_slow, total,
                burn_fast > 1.0 ? "  <-- BURNING BUDGET" : "");
  }
  // Overload summary: what the admission layer has shed and dropped. The
  // breaker-open count appears only on nodes that run client-side failover
  // channels (e.g. a primary forwarding through one).
  {
    double shed = 0, shed_mutations = 0, queue_full = 0, deadline_dropped = 0;
    repl::FindMetricValue(reply->prometheus_text, "sse_admission_shed_total",
                          &shed);
    repl::FindMetricValue(reply->prometheus_text,
                          "sse_admission_shed_mutations_total",
                          &shed_mutations);
    repl::FindMetricValue(reply->prometheus_text,
                          "sse_admission_queue_full_total", &queue_full);
    repl::FindMetricValue(reply->prometheus_text,
                          "sse_admission_deadline_dropped_total",
                          &deadline_dropped);
    std::printf("overload:      %g shed (%g mutations, %g queue-full), "
                "%g expired at dequeue",
                shed, shed_mutations, queue_full, deadline_dropped);
    double breaker_opens = 0;
    if (repl::FindMetricValue(reply->prometheus_text,
                              "sse_client_breaker_opens_total",
                              &breaker_opens)) {
      std::printf(", %g breaker open(s)", breaker_opens);
    }
    std::printf("\n");
  }
  std::printf("\n");

  // Metric families, blank-line separated; HELP kept, TYPE dropped.
  bool first = true;
  for (const std::string& line : lines) {
    if (line.rfind("# TYPE", 0) == 0) continue;
    if (line.rfind("# HELP", 0) == 0) {
      if (!first) std::printf("\n");
      first = false;
    }
    if (!line.empty()) std::printf("%s\n", line.c_str());
  }
  if (include_spans) {
    std::printf("\n# recent spans (Chrome trace-event JSON; load in "
                "chrome://tracing or Perfetto)\n%s\n",
                reply->spans_json.c_str());
  }
  return 0;
}

void PrintFileSize(const char* label, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::printf("%-14s absent\n", label);
    return;
  }
  std::fseek(f, 0, SEEK_END);
  std::printf("%-14s %ld bytes\n", label, std::ftell(f));
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "stats") == 0) {
    const bool spans = argc >= 4 && std::strcmp(argv[3], "--spans") == 0;
    return RunStats(argv[2], spans);
  }
  if (argc >= 3 && std::strcmp(argv[1], "events") == 0) {
    const long tail = argc >= 4 ? std::strtol(argv[3], nullptr, 10) : 0;
    return RunEvents(argv[2], tail > 0 ? static_cast<uint32_t>(tail) : 0);
  }
  if (argc < 3) return Usage();
  const std::string dir = argv[1];
  const std::string command = argv[2];

  if (command == "status") {
    storage::SnapshotSet snapshots(dir);
    auto gens = snapshots.List();
    if (!gens.ok()) {
      std::printf("%-14s %s\n", "snapshots:",
                  gens.status().ToString().c_str());
    } else if (gens->empty()) {
      std::printf("%-14s absent\n", "snapshots:");
    } else {
      for (uint64_t gen : *gens) {
        auto verify = storage::Snapshot::Read(snapshots.PathFor(gen));
        char label[32];
        std::snprintf(label, sizeof(label), "snapshot g%llu:",
                      (unsigned long long)gen);
        PrintFileSize(label, snapshots.PathFor(gen));
        if (!verify.ok()) {
          std::printf("%-14s   ^ %s\n", "",
                      verify.status().ToString().c_str());
        }
      }
    }
    uint64_t bytes = 0;
    storage::WalReplayReport report;
    Status replay = storage::WriteAheadLog::Replay(
        dir, storage::WalOptions{}, /*min_seq=*/0,
        [&](uint64_t, BytesView record) {
          bytes += record.size();
          return Status::OK();
        },
        &report);
    if (replay.ok()) {
      std::printf("%-14s %llu record(s) in %llu segment(s), "
                  "%llu payload bytes, seqs [%llu, %llu)%s\n",
                  "wal:", (unsigned long long)report.records,
                  (unsigned long long)report.segments,
                  (unsigned long long)bytes,
                  (unsigned long long)report.lowest_seq,
                  (unsigned long long)report.next_seq,
                  report.torn_bytes > 0 ? " (torn tail dropped)" : "");
    } else {
      std::printf("%-14s CORRUPT: %s\n", "wal:", replay.ToString().c_str());
    }
    // Replication role marker, when this directory belongs to a ReplNode.
    const std::string marker = dir + "/repl.role";
    std::FILE* marker_file = std::fopen(marker.c_str(), "rb");
    if (marker_file != nullptr) {
      char buf[256] = {0};
      const size_t n = std::fread(buf, 1, sizeof(buf) - 1, marker_file);
      std::fclose(marker_file);
      std::string text(buf, n);
      for (char& c : text) {
        if (c == '\n') c = ' ';
      }
      std::printf("%-14s %s\n", "repl role:", text.c_str());
    }
    const std::string doc_log = dir + "/docs.log";
    std::FILE* probe = std::fopen(doc_log.c_str(), "rb");
    if (probe != nullptr) {
      std::fclose(probe);
      auto store = storage::LogStore::Open(doc_log);
      if (store.ok()) {
        std::printf("%-14s %zu live blob(s), %llu bytes (%llu reclaimable)\n",
                    "doc log:", (*store)->live_keys(),
                    (unsigned long long)(*store)->file_bytes(),
                    (unsigned long long)(*store)->garbage_bytes());
      } else {
        std::printf("%-14s %s\n", "doc log:",
                    store.status().ToString().c_str());
      }
    } else {
      std::printf("%-14s absent (documents in snapshots)\n", "doc log:");
    }
    return 0;
  }

  if (command == "checkpoint") {
    if (argc < 4) return Usage();
    // Public parameters only; defaults match sse_cli. Any descriptor-table
    // scheme works — the admin needs the right state shape, never a key.
    core::SystemConfig config;
    config.scheme.max_documents = 1 << 16;
    config.scheme.chain_length = 1 << 14;
    std::string name = argv[3];
    if (name == "s1") name = "scheme1";
    if (name == "s2") name = "scheme2";
    const core::SchemeDescriptor* scheme = core::FindScheme(name);
    if (scheme == nullptr) return Usage();
    auto built = scheme->make_server(config);
    if (!built.ok()) {
      std::fprintf(stderr, "scheme init failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<core::PersistableHandler> inner = std::move(*built);
    auto durable = core::DurableServer::Open(dir, inner.get());
    if (!durable.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   durable.status().ToString().c_str());
      return 1;
    }
    Status s = (*durable)->Checkpoint();
    if (!s.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint written; old WAL segments compacted\n");
    return 0;
  }

  if (command == "compact") {
    auto store = storage::LogStore::Open(dir + "/docs.log");
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    const uint64_t before = (*store)->file_bytes();
    Status s = (*store)->Compact();
    if (!s.ok()) {
      std::fprintf(stderr, "compact failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("compacted: %llu -> %llu bytes\n", (unsigned long long)before,
                (unsigned long long)(*store)->file_bytes());
    return 0;
  }
  return Usage();
}
