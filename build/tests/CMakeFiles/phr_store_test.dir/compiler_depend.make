# Empty compiler generated dependencies file for phr_store_test.
# This may be replaced when dependencies are built.
