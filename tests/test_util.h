#ifndef SSE_TESTS_TEST_UTIL_H_
#define SSE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sse/core/registry.h"
#include "sse/crypto/keys.h"
#include "sse/util/random.h"
#include "sse/util/status.h"

namespace sse::testing {

/// Asserts a Status/Result is OK with a useful failure message.
/// Copies by value: `expr` is often `temporary_result.status()`, whose
/// referent dies with the temporary at the end of the initializer — a
/// reference here would dangle before the ok() check runs.
#define SSE_ASSERT_OK(expr)                                 \
  do {                                                      \
    const ::sse::Status _st = (expr);                       \
    ASSERT_TRUE(_st.ok()) << "status: " << _st.ToString();  \
  } while (0)

#define SSE_EXPECT_OK(expr)                                 \
  do {                                                      \
    const ::sse::Status _st = (expr);                       \
    EXPECT_TRUE(_st.ok()) << "status: " << _st.ToString();  \
  } while (0)

#define SSE_ASSERT_OK_RESULT(result)                                       \
  ASSERT_TRUE((result).ok()) << "status: " << (result).status().ToString()

#define SSE_EXPECT_OK_RESULT(result)                                       \
  EXPECT_TRUE((result).ok()) << "status: " << (result).status().ToString()

/// Deterministic master key for tests.
inline crypto::MasterKey TestMasterKey(uint64_t seed = 1) {
  DeterministicRandom rng(seed);
  return crypto::MasterKey::Generate(rng).value();
}

/// Scheme options sized for fast tests: small bitmap, short chain, toy
/// ElGamal group.
inline core::SystemConfig FastTestConfig() {
  core::SystemConfig config;
  config.scheme.max_documents = 256;
  config.scheme.chain_length = 64;
  config.scheme.elgamal_group = crypto::ElGamalGroupId::kToy512;
  config.goh.bloom_bits = 2048;
  config.goh.num_keys = 8;
  return config;
}

/// Builds a ready system for tests; aborts the test on failure.
inline core::SseSystem MakeTestSystem(core::SystemKind kind,
                                      RandomSource* rng,
                                      core::SystemConfig config) {
  auto result = core::CreateSystem(kind, TestMasterKey(), config, rng);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

inline core::SseSystem MakeTestSystem(core::SystemKind kind,
                                      RandomSource* rng) {
  return MakeTestSystem(kind, rng, FastTestConfig());
}

/// Creates a fresh temp directory and removes it (recursively) at scope
/// exit.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/sse_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    path_ = dir != nullptr ? dir : "/tmp";
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace sse::testing

#endif  // SSE_TESTS_TEST_UTIL_H_
