#ifndef SSE_CORE_DURABLE_SERVER_H_
#define SSE_CORE_DURABLE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include <vector>

#include "sse/core/persistable.h"
#include "sse/core/reply_cache.h"
#include "sse/obs/histogram.h"
#include "sse/obs/metrics_registry.h"
#include "sse/storage/env.h"
#include "sse/storage/snapshot.h"
#include "sse/storage/wal.h"

namespace sse::core {

/// Crash-safe shell around any PersistableHandler.
///
/// Layout in `dir`: generational checkpoints `state.snap.<gen>` (the last
/// two are retained) and segmented WAL files `wal.<number>.log` holding the
/// mutating request messages journaled since. Each checkpoint records the
/// WAL sequence it was cut at; recovery restores the newest generation that
/// verifies — falling back to the previous generation, then to WAL-only
/// replay when the log still covers history from sequence 1 — and
/// re-handles every journaled request past the restored cut. Because
/// server handling is deterministic given requests, replay reconstructs
/// the exact state. Only *successfully applied* mutations are journaled,
/// and the reply is withheld until the journal entry is durable — so
/// acknowledged updates survive crashes and rejected requests can never
/// poison recovery. Call Checkpoint() periodically to bound the log; old
/// segments are deleted only once they are no longer needed by the oldest
/// retained snapshot generation.
///
/// Storage faults are fail-stop: a failed WAL append, fsync, rotation or
/// snapshot write permanently degrades the server to read-only (a failed
/// fsync is never retried — the kernel may have dropped the dirty pages
/// while reporting the error only once). Degraded mode rejects mutations
/// with UNAVAILABLE (retryable, so clients fail over cleanly), keeps
/// serving searches, and notifies the inner handler once via
/// PersistableHandler::OnStorageDegraded so engines can expose the state
/// in their metrics. Recovery from a degraded server is a restart: the
/// on-disk image is intact up to the last durable record.
///
/// Concurrency: Handle() is safe to call from many threads when the inner
/// handler is itself thread-safe (e.g. an engine::ServerEngine). Appends
/// serialize on a WAL mutex; durability syncs use *group commit* — the
/// first waiter fsyncs on behalf of every append that landed before the
/// sync started, so N concurrent mutations cost far fewer than N fsyncs
/// while each reply still waits for its own record to be durable.
/// Checkpoint() quiesces mutating requests (a commit rw-lock) so the
/// snapshot and the compacted WAL stay consistent.
///
/// At-most-once: session-stamped requests (see net::Message::StampSession)
/// are deduped through a ReplyCache *before* the apply+journal path, so a
/// client retry of an already-applied mutation is served the recorded
/// reply instead of being re-applied. The cache is part of the checkpoint
/// snapshot and is rebuilt for journaled mutations during WAL replay —
/// dedup therefore survives crash recovery, closing the window where a
/// crash between apply and reply would otherwise let a retry double-apply
/// a non-idempotent Scheme 1 update. Mutations only enter the cache after
/// their WAL record is durable; non-mutating requests bypass the cache
/// entirely (re-executing a search is harmless, and not recording search
/// results keeps the table small) but still have their session echoed.
/// Hook for primary→follower WAL replication (implemented by
/// repl::ReplSender). OnAppend runs with the WAL mutex held, immediately
/// after a record lands in the local log (durability not yet guaranteed) —
/// implementations must only enqueue, never block. WaitReplicated runs
/// after the record is locally durable, outside the WAL mutex, and may
/// block for a bounded time until the configured ack mode is satisfied
/// (e.g. at least one follower acknowledged the sequence).
class WalShipper {
 public:
  virtual ~WalShipper() = default;
  virtual void OnAppend(uint64_t wal_seq, BytesView record) = 0;
  virtual void WaitReplicated(uint64_t wal_seq) = 0;
};

class DurableServer : public net::MessageHandler {
 public:
  struct Options {
    /// fsync the WAL before replying to a mutating request (safest).
    bool sync_every_append = true;
    /// Batch concurrent fsyncs (leader/follower group commit). With a
    /// single client this degenerates to one fsync per append; turn it off
    /// only to benchmark the per-append-fsync baseline.
    bool group_commit = true;
    /// Dedup session-stamped requests through a crash-surviving ReplyCache.
    bool enable_reply_cache = true;
    ReplyCache::Options reply_cache;
    /// Filesystem the WAL and snapshots live on; tests inject a FaultyEnv.
    storage::Env* env = storage::Env::Default();
    /// WAL segment rotation threshold.
    uint64_t wal_segment_bytes = 8ull << 20;
    /// Quarantine corrupt mid-segment WAL ranges during recovery instead
    /// of failing with CORRUPTION (see WalOptions::salvage). Strict by
    /// default: silent data loss must be opted into.
    bool wal_salvage = false;
    /// Replication hook: every journaled record is offered to the shipper
    /// right after its local append, and mutating replies additionally
    /// wait on WaitReplicated after their local fsync (ack-mode policy
    /// lives in the shipper). Must outlive the server. Null = standalone.
    WalShipper* shipper = nullptr;
  };

  /// One durable checkpoint blob (magic "SDR2"): the WAL sequence the
  /// checkpoint was cut at plus the serialized inner state and reply
  /// cache. Public so the replication layer can ship whole snapshots to a
  /// follower that fell behind WAL compaction, and install received ones.
  struct SnapshotBlob {
    uint64_t wal_seq = 1;
    Bytes state;
    Bytes cache;
  };
  static Result<SnapshotBlob> DecodeSnapshot(BytesView blob);
  static Bytes EncodeSnapshot(const SnapshotBlob& contents);

  /// Opens (and recovers) a durable server over `inner` in directory `dir`,
  /// which must exist. `inner` must outlive the DurableServer.
  static Result<std::unique_ptr<DurableServer>> Open(
      const std::string& dir, PersistableHandler* inner);
  static Result<std::unique_ptr<DurableServer>> Open(
      const std::string& dir, PersistableHandler* inner, Options options);

  Result<net::Message> Handle(const net::Message& request) override;

  /// Writes a snapshot of the inner state as a new generation, prunes old
  /// generations and compacts WAL segments no longer needed by the oldest
  /// retained generation. Blocks until in-flight mutating requests have
  /// committed, and blocks new ones while the snapshot is cut. Refused in
  /// degraded mode.
  Status Checkpoint();

  /// Journaled records not yet subsumed by the newest checkpoint.
  uint64_t wal_records() const;
  /// Sequence the WAL will stamp on the next append. The replication
  /// sender seeds its notion of the log end from this at startup.
  uint64_t wal_next_seq() const;
  /// fsyncs actually issued; under concurrent load with group commit this
  /// grows slower than wal_records().
  uint64_t wal_syncs() const;
  const std::string& directory() const { return dir_; }

  /// True once a storage fault has fail-stopped this server to read-only.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  /// The fault that caused degradation (OK while healthy).
  Status degraded_cause() const;

  /// Dedup table for session-stamped requests; null when disabled.
  const ReplyCache* reply_cache() const { return reply_cache_.get(); }

  /// Per-stage storage latency (also scraped via the metrics registry as
  /// sse_wal_append_seconds / sse_wal_fsync_seconds /
  /// sse_checkpoint_seconds).
  obs::LatencyHistogram::Snapshot wal_append_latency() const {
    return wal_append_hist_.Snap();
  }
  obs::LatencyHistogram::Snapshot wal_fsync_latency() const {
    return wal_fsync_hist_.Snap();
  }
  obs::LatencyHistogram::Snapshot checkpoint_latency() const {
    return checkpoint_hist_.Snap();
  }

 private:
  DurableServer(std::string dir, PersistableHandler* inner,
                storage::WriteAheadLog wal, Options options,
                std::unique_ptr<ReplyCache> reply_cache,
                uint64_t last_checkpoint_seq)
      : dir_(std::move(dir)),
        inner_(inner),
        wal_(std::make_unique<storage::WriteAheadLog>(std::move(wal))),
        options_(options),
        snapshots_(dir_, options.env),
        reply_cache_(std::move(reply_cache)),
        last_checkpoint_seq_(last_checkpoint_seq) {}

  Result<net::Message> HandleNew(const net::Message& request);

  /// Unpacks a kMsgBatch envelope, running each sub-op through the same
  /// dedup + apply + journal path as a standalone request but with ONE
  /// group fsync covering every accepted mutation in the envelope. Sub-ops
  /// are journaled as individual stamped messages, so WAL replay is
  /// byte-identical to the unbatched case and needs no changes. Cache
  /// commits happen only after the group sync succeeds — a reply entry
  /// never promises a lost update even when the batch is cut short.
  Result<net::Message> HandleBatch(const net::Message& request);

  /// Blocks until every append up to `seq` is fsynced, electing the caller
  /// as the sync leader if none is running.
  Status SyncUpTo(uint64_t seq);

  /// Fail-stop: records the cause, flips the degraded flag and notifies
  /// the inner handler exactly once. Returns the UNAVAILABLE status
  /// mutations are answered with from now on.
  Status EnterDegraded(const Status& cause);
  Status DegradedStatus() const;

  std::string dir_;
  PersistableHandler* inner_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  Options options_;
  storage::SnapshotSet snapshots_;
  std::unique_ptr<ReplyCache> reply_cache_;

  /// Held shared by mutating requests for their whole apply+journal span,
  /// exclusively by Checkpoint(): the snapshot sees no half-committed
  /// mutation and no applied-but-unjournaled request can be compacted away.
  std::shared_mutex commit_mutex_;

  mutable std::mutex wal_mutex_;  // guards wal_ appends and the fields below
  std::condition_variable sync_cv_;
  uint64_t appended_seq_ = 0;
  uint64_t synced_seq_ = 0;
  bool sync_in_progress_ = false;
  uint64_t syncs_performed_ = 0;
  uint64_t last_checkpoint_seq_ = 1;  // WAL seq the newest snapshot was cut at

  std::atomic<bool> degraded_{false};
  mutable std::mutex degraded_mutex_;  // guards degraded_cause_
  Status degraded_cause_;

  obs::LatencyHistogram wal_append_hist_;
  obs::LatencyHistogram wal_fsync_hist_;
  obs::LatencyHistogram checkpoint_hist_;
  /// Scrape hooks into the process-wide registry (released on destruction).
  std::vector<obs::MetricsRegistry::Registration> registrations_;
};

}  // namespace sse::core

#endif  // SSE_CORE_DURABLE_SERVER_H_
