// Experiment T1-comm — Table 1, row "Communication overhead".
//
// Paper claim: Scheme 1 searches in TWO rounds, Scheme 2 in ONE; Scheme 1's
// MetadataStorage needs large bandwidth (a full bitmap per keyword), while
// Scheme 2 ships only the ids actually added. This bench measures rounds
// and framed bytes for search and update across database sizes and prints
// the Table 1 row empirically.

#include <cstdio>

#include "bench_common.h"
#include "sse/core/types.h"

namespace sse::bench {
namespace {

struct CommRow {
  size_t num_docs;
  uint64_t search_rounds;
  uint64_t search_bytes;
  uint64_t update_rounds;
  uint64_t update_bytes;
};

CommRow Measure(core::SystemKind kind, size_t num_docs) {
  DeterministicRandom rng(1);
  // Bitmap capacity tracks the database size (public parameter).
  core::SystemConfig config = BenchConfig(/*max_documents=*/num_docs * 2);
  core::SseSystem sys = MustCreate(kind, config, &rng);

  const size_t vocabulary = num_docs;  // u grows with n in this sweep
  auto docs = phr::GenerateDocuments(num_docs, vocabulary,
                                     /*keywords_per_doc=*/5, /*skew=*/0.8,
                                     /*seed=*/7, /*content_bytes=*/128);
  MustOk(sys.client->Store(docs), "store");

  // One search over a mid-popularity keyword.
  const std::string query = phr::SyntheticKeyword(3);
  sys.channel->ResetStats();
  MustValue(sys.client->Search(query), "search");
  CommRow row{};
  row.num_docs = num_docs;
  row.search_rounds = sys.channel->stats().rounds;
  row.search_bytes = sys.channel->stats().TotalBytes();

  // One single-document update touching 5 keywords.
  sys.channel->ResetStats();
  auto update = phr::GenerateDocuments(1, vocabulary, 5, 0.8, 99, 128,
                                       /*first_id=*/num_docs);
  MustOk(sys.client->Store(update), "update");
  row.update_rounds = sys.channel->stats().rounds;
  row.update_bytes = sys.channel->stats().TotalBytes();
  return row;
}

void Run() {
  std::printf(
      "T1-comm: communication overhead (Table 1)\n"
      "Search: scheme1 = two rounds, scheme2 = one round (paper claim).\n"
      "Update bytes: scheme1 ships a full masked bitmap per keyword;\n"
      "scheme2 ships only the delta ids. ElGamal group: toy-512 (sizes of\n"
      "F(r) scale with the group; see bench_crypto for production sizes).\n\n");
  for (core::SystemKind kind :
       {core::SystemKind::kScheme1, core::SystemKind::kScheme2}) {
    std::printf("system: %s\n", std::string(core::SystemKindName(kind)).c_str());
    TablePrinter table({"n_docs", "search_rounds", "search_bytes",
                        "update_rounds", "update_bytes", "update_B/kw"});
    table.PrintHeader();
    for (size_t n : {256u, 1024u, 4096u, 16384u}) {
      CommRow row = Measure(kind, n);
      table.PrintRow({FmtU(row.num_docs), FmtU(row.search_rounds),
                      FmtU(row.search_bytes), FmtU(row.update_rounds),
                      FmtU(row.update_bytes),
                      Fmt("%.0f", static_cast<double>(row.update_bytes) / 5)});
    }
    table.PrintRule();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace sse::bench

int main() {
  sse::bench::Run();
  return 0;
}
