file(REMOVE_RECURSE
  "CMakeFiles/leakage_demo.dir/leakage_demo.cpp.o"
  "CMakeFiles/leakage_demo.dir/leakage_demo.cpp.o.d"
  "leakage_demo"
  "leakage_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
