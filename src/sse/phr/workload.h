#ifndef SSE_PHR_WORKLOAD_H_
#define SSE_PHR_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sse/core/types.h"
#include "sse/phr/record.h"
#include "sse/util/random.h"

namespace sse::phr {

/// Zipf-distributed sampler over ranks 0..n-1 (rank 0 most popular).
/// Keyword frequencies in text corpora — and diagnoses in medical records —
/// are heavily skewed; the generator uses this to shape realistic posting
/// list distributions.
class ZipfSampler {
 public:
  /// `n` >= 1 items, skew `s` >= 0 (0 = uniform; ~1 = classic Zipf).
  ZipfSampler(size_t n, double s);

  size_t Sample(DeterministicRandom& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Synthetic patient-record generator standing in for the real PHR data the
/// paper's application would hold (no real medical data exists here; see
/// DESIGN.md substitutions). Vocabulary sizes and skew are chosen so the
/// keyword-frequency shape matches what the scenarios exercise: a few very
/// common conditions, a long tail of rare ones.
class PhrWorkload {
 public:
  struct Params {
    size_t num_patients = 100;
    size_t visits_per_patient = 4;  // documents = patients * visits
    double condition_skew = 1.1;
    uint64_t seed = 42;
  };

  explicit PhrWorkload(const Params& params);

  /// All generated records, in storage order.
  const std::vector<PatientRecord>& records() const { return records_; }

  /// Documents ready for SseClientInterface::Store, ids 0..n-1.
  std::vector<core::Document> ToDocuments() const;

  /// Condition tag of rank `rank` ("condition:hypertension" etc.), for
  /// querying in examples and benches.
  static std::string ConditionTag(size_t rank);
  static size_t ConditionVocabularySize();

 private:
  std::vector<PatientRecord> records_;
};

/// Generic synthetic workload for the benchmark harness: `num_docs`
/// documents over a `vocabulary` of "kw<i>" keywords, `keywords_per_doc`
/// each, Zipf-skewed. Deterministic in `seed`.
std::vector<core::Document> GenerateDocuments(size_t num_docs,
                                              size_t vocabulary,
                                              size_t keywords_per_doc,
                                              double skew, uint64_t seed,
                                              size_t content_bytes = 64,
                                              uint64_t first_id = 0);

/// The synthetic keyword string of rank `rank` ("kw000123").
std::string SyntheticKeyword(size_t rank);

}  // namespace sse::phr

#endif  // SSE_PHR_WORKLOAD_H_
