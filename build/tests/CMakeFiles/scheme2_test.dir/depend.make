# Empty dependencies file for scheme2_test.
# This may be replaced when dependencies are built.
