#ifndef SSE_NET_SOCKET_UTIL_H_
#define SSE_NET_SOCKET_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "sse/util/result.h"

namespace sse::net {

/// Shared socket plumbing for the server (reactor/connection) and client
/// (TcpChannel) sides, so EINTR retries, partial-write handling and the
/// standard option set (SO_REUSEADDR on listeners, TCP_NODELAY on every
/// stream) live in exactly one place.

/// Sets or clears O_NONBLOCK.
Status SetNonBlocking(int fd, bool enabled);

/// Disables Nagle; applied to every accepted and dialed stream socket.
void SetNoDelay(int fd);

/// Applies SO_SNDTIMEO / SO_RCVTIMEO (0 = unbounded) to `fd`. Blocking
/// sockets only; an expired timeout surfaces as EAGAIN from send/recv.
void ApplyIoTimeouts(int fd, double send_ms, double recv_ms);

/// Creates a loopback listener on `port` (0 = ephemeral) with SO_REUSEADDR
/// set, bound and listening. `bound_port` receives the actual port.
Result<int> ListenTcp(uint16_t port, int backlog, uint16_t* bound_port);

/// Dials 127.0.0.1-style `host`:`port`. With a positive timeout the dial is
/// non-blocking under a poll(2) deadline; the returned fd is blocking, with
/// TCP_NODELAY and the given IO timeouts applied.
Result<int> DialTcp(const std::string& host, uint16_t port,
                    double connect_timeout_ms, double send_timeout_ms,
                    double recv_timeout_ms);

/// Writes all `len` bytes to a blocking socket, retrying EINTR and
/// resuming after short writes. EAGAIN (an expired SO_SNDTIMEO) surfaces
/// as DEADLINE_EXCEEDED, other failures as IO_ERROR.
Status WriteAllBlocking(int fd, const uint8_t* data, size_t len);

/// Outcome of one non-blocking read/write attempt.
enum class IoResult {
  kOk,          // made progress; *n holds the byte count (> 0)
  kWouldBlock,  // EAGAIN/EWOULDBLOCK: retry when epoll says ready
  kEof,         // read only: peer closed cleanly
  kError,       // unrecoverable socket error
};

/// One recv() on a non-blocking socket, retrying EINTR. On kOk, `*n` > 0.
IoResult ReadSomeNonBlocking(int fd, uint8_t* buf, size_t cap, size_t* n);

/// One send() on a non-blocking socket, retrying EINTR; partial writes are
/// reported via `*n` and the caller resumes on the next EPOLLOUT.
IoResult WriteSomeNonBlocking(int fd, const uint8_t* data, size_t len,
                              size_t* n);

}  // namespace sse::net

#endif  // SSE_NET_SOCKET_UTIL_H_
