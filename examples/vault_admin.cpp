// vault_admin — inspect and maintain a durable SSE server directory
// without any keys (everything here is the server's own view: ciphertext
// and framing only).
//
// Usage:
//   vault_admin <dir> status            # snapshot/WAL/doc-log overview
//   vault_admin <dir> checkpoint s1|s2  # load, checkpoint, compact WAL
//   vault_admin <dir> compact           # compact the document log, if any
//
// Example (after using sse_cli):
//   ./build/examples/vault_admin /tmp/vault status

#include <cstdio>
#include <cstring>
#include <string>

#include "sse/core/durable_server.h"
#include "sse/core/scheme1_server.h"
#include "sse/core/scheme2_server.h"
#include "sse/storage/log_store.h"
#include "sse/storage/snapshot.h"
#include "sse/storage/wal.h"

namespace {

using namespace sse;

int Usage() {
  std::fprintf(stderr,
               "usage: vault_admin <dir> status\n"
               "       vault_admin <dir> checkpoint s1|s2\n"
               "       vault_admin <dir> compact\n");
  return 2;
}

void PrintFileSize(const char* label, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::printf("%-14s absent\n", label);
    return;
  }
  std::fseek(f, 0, SEEK_END);
  std::printf("%-14s %ld bytes\n", label, std::ftell(f));
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string dir = argv[1];
  const std::string command = argv[2];

  if (command == "status") {
    storage::SnapshotSet snapshots(dir);
    auto gens = snapshots.List();
    if (!gens.ok()) {
      std::printf("%-14s %s\n", "snapshots:",
                  gens.status().ToString().c_str());
    } else if (gens->empty()) {
      std::printf("%-14s absent\n", "snapshots:");
    } else {
      for (uint64_t gen : *gens) {
        auto verify = storage::Snapshot::Read(snapshots.PathFor(gen));
        char label[32];
        std::snprintf(label, sizeof(label), "snapshot g%llu:",
                      (unsigned long long)gen);
        PrintFileSize(label, snapshots.PathFor(gen));
        if (!verify.ok()) {
          std::printf("%-14s   ^ %s\n", "",
                      verify.status().ToString().c_str());
        }
      }
    }
    uint64_t bytes = 0;
    storage::WalReplayReport report;
    Status replay = storage::WriteAheadLog::Replay(
        dir, storage::WalOptions{}, /*min_seq=*/0,
        [&](uint64_t, BytesView record) {
          bytes += record.size();
          return Status::OK();
        },
        &report);
    if (replay.ok()) {
      std::printf("%-14s %llu record(s) in %llu segment(s), "
                  "%llu payload bytes, seqs [%llu, %llu)%s\n",
                  "wal:", (unsigned long long)report.records,
                  (unsigned long long)report.segments,
                  (unsigned long long)bytes,
                  (unsigned long long)report.lowest_seq,
                  (unsigned long long)report.next_seq,
                  report.torn_bytes > 0 ? " (torn tail dropped)" : "");
    } else {
      std::printf("%-14s CORRUPT: %s\n", "wal:", replay.ToString().c_str());
    }
    const std::string doc_log = dir + "/docs.log";
    std::FILE* probe = std::fopen(doc_log.c_str(), "rb");
    if (probe != nullptr) {
      std::fclose(probe);
      auto store = storage::LogStore::Open(doc_log);
      if (store.ok()) {
        std::printf("%-14s %zu live blob(s), %llu bytes (%llu reclaimable)\n",
                    "doc log:", (*store)->live_keys(),
                    (unsigned long long)(*store)->file_bytes(),
                    (unsigned long long)(*store)->garbage_bytes());
      } else {
        std::printf("%-14s %s\n", "doc log:",
                    store.status().ToString().c_str());
      }
    } else {
      std::printf("%-14s absent (documents in snapshots)\n", "doc log:");
    }
    return 0;
  }

  if (command == "checkpoint") {
    if (argc < 4) return Usage();
    core::SchemeOptions options;  // public parameters; defaults match sse_cli
    options.max_documents = 1 << 16;
    options.chain_length = 1 << 14;
    std::unique_ptr<core::PersistableHandler> inner;
    if (std::strcmp(argv[3], "s1") == 0) {
      inner = std::make_unique<core::Scheme1Server>(options);
    } else if (std::strcmp(argv[3], "s2") == 0) {
      inner = std::make_unique<core::Scheme2Server>(options);
    } else {
      return Usage();
    }
    auto durable = core::DurableServer::Open(dir, inner.get());
    if (!durable.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   durable.status().ToString().c_str());
      return 1;
    }
    Status s = (*durable)->Checkpoint();
    if (!s.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint written; old WAL segments compacted\n");
    return 0;
  }

  if (command == "compact") {
    auto store = storage::LogStore::Open(dir + "/docs.log");
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    const uint64_t before = (*store)->file_bytes();
    Status s = (*store)->Compact();
    if (!s.ok()) {
      std::fprintf(stderr, "compact failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("compacted: %llu -> %llu bytes\n", (unsigned long long)before,
                (unsigned long long)(*store)->file_bytes());
    return 0;
  }
  return Usage();
}
