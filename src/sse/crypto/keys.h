#ifndef SSE_CRYPTO_KEYS_H_
#define SSE_CRYPTO_KEYS_H_

#include <cstddef>

#include "sse/util/bytes.h"
#include "sse/util/random.h"
#include "sse/util/result.h"

namespace sse::crypto {

inline constexpr size_t kMasterKeyPartSize = 32;

/// The paper's master key `K = (k_m, k_w)`: `k_m` encrypts data items,
/// `k_w` drives every metadata-side primitive (search tokens, chain seeds,
/// masks). Produced by Keygen(s); serializable so a client can persist it.
class MasterKey {
 public:
  /// Keygen(s): draws both parts from `rng`. `security_parameter` is the
  /// part size in bytes (>= 16; default 32 matching the 256-bit primitives).
  static Result<MasterKey> Generate(RandomSource& rng,
                                    size_t security_parameter = kMasterKeyPartSize);

  /// Deterministic derivation from a passphrase (HKDF); for examples/CLI.
  static Result<MasterKey> FromPassphrase(std::string_view passphrase);

  /// Parses the serialization produced by Serialize().
  static Result<MasterKey> Deserialize(BytesView data);

  const Bytes& data_key() const { return k_m_; }     // k_m
  const Bytes& keyword_key() const { return k_w_; }  // k_w

  Bytes Serialize() const;

  bool operator==(const MasterKey& other) const {
    return k_m_ == other.k_m_ && k_w_ == other.k_w_;
  }

 private:
  MasterKey(Bytes k_m, Bytes k_w) : k_m_(std::move(k_m)), k_w_(std::move(k_w)) {}
  Bytes k_m_;
  Bytes k_w_;
};

}  // namespace sse::crypto

#endif  // SSE_CRYPTO_KEYS_H_
