#include "sse/util/crc32.h"

#include <gtest/gtest.h>

namespace sse {
namespace {

TEST(Crc32Test, KnownVectors) {
  // CRC-32C ("123456789") = 0xe3069283 (well-known check value).
  Bytes digits = StringToBytes("123456789");
  EXPECT_EQ(Crc32c(digits), 0xe3069283u);
  EXPECT_EQ(Crc32c(Bytes{}), 0u);
}

TEST(Crc32Test, DifferentInputsDifferentCrc) {
  EXPECT_NE(Crc32c(StringToBytes("hello")), Crc32c(StringToBytes("hellp")));
  EXPECT_NE(Crc32c(StringToBytes("a")), Crc32c(StringToBytes("aa")));
}

TEST(Crc32Test, SingleBitFlipDetected) {
  Bytes data(100, 0x5a);
  const uint32_t clean = Crc32c(data);
  for (size_t i = 0; i < data.size(); i += 13) {
    Bytes corrupted = data;
    corrupted[i] ^= 0x01;
    EXPECT_NE(Crc32c(corrupted), clean) << "at byte " << i;
  }
}

TEST(Crc32Test, ExtendMatchesOneShot) {
  Bytes full = StringToBytes("the quick brown fox");
  Bytes part1 = StringToBytes("the quick ");
  Bytes part2 = StringToBytes("brown fox");
  const uint32_t incremental = Crc32cExtend(Crc32c(part1), part2);
  EXPECT_EQ(incremental, Crc32c(full));
}

}  // namespace
}  // namespace sse
