#include "sse/core/reply_cache.h"

#include <utility>

#include "sse/obs/metrics_registry.h"
#include "sse/util/serde.h"

namespace sse::core {

namespace {
/// Snapshot section magic, "RPLC".
constexpr uint32_t kReplyCacheMagic = 0x52504c43;

/// Process-wide eviction counter; GetCounter is idempotent per name, so
/// every cache instance (engine- or durable-level) feeds the same series.
obs::MetricsRegistry::Counter* EvictionCounter() {
  static auto* counter = obs::MetricsRegistry::Global().GetCounter(
      "sse_engine_reply_cache_evictions_total",
      "Reply-cache entries dropped to enforce size bounds");
  return counter;
}
}  // namespace

ReplyCache::Outcome ReplyCache::Begin(uint64_t client, uint64_t seq,
                                      net::Message* cached_reply) {
  std::lock_guard<std::mutex> lock(mutex_);
  ClientState& state = clients_[client];
  state.last_used = ++tick_;

  auto it = state.replies.find(seq);
  if (it != state.replies.end()) {
    if (cached_reply != nullptr) {
      Result<net::Message> decoded = net::Message::Decode(it->second);
      // The cache only ever stores bytes produced by Message::Encode, so a
      // decode failure would mean in-memory corruption; treat the entry as
      // absent and let the handler re-answer a (non-mutating) request or
      // refuse it below.
      if (decoded.ok()) {
        *cached_reply = std::move(decoded).value();
        hits_ += 1;
        EvictClientsLocked();
        return Outcome::kCached;
      }
      state.replies.erase(it);
      total_entries_ -= 1;
    } else {
      hits_ += 1;
      EvictClientsLocked();
      return Outcome::kCached;
    }
  }

  if (state.in_flight.count(seq) != 0) {
    refusals_ += 1;
    EvictClientsLocked();
    return Outcome::kInFlight;
  }
  if (seq < state.low_water) {
    // The reply for this seq has been evicted; executing again could be a
    // second application of a non-idempotent update. Refuse.
    refusals_ += 1;
    EvictClientsLocked();
    return Outcome::kTooOld;
  }

  state.in_flight.insert(seq);
  if (seq >= state.max_seen) state.max_seen = seq;
  EvictClientsLocked();
  return Outcome::kNew;
}

void ReplyCache::Commit(uint64_t client, uint64_t seq,
                        const net::Message& reply) {
  std::lock_guard<std::mutex> lock(mutex_);
  ClientState& state = clients_[client];
  state.last_used = ++tick_;
  state.in_flight.erase(seq);
  auto [entry, inserted] = state.replies.insert_or_assign(seq, reply.Encode());
  (void)entry;
  if (inserted) total_entries_ += 1;
  if (seq >= state.max_seen) state.max_seen = seq;
  while (state.replies.size() > options_.per_client_entries) {
    DropEntryLocked(&state, state.replies.begin());
  }
  EvictClientsLocked();
  EvictEntriesLocked();
}

void ReplyCache::Abort(uint64_t client, uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  it->second.in_flight.erase(seq);
}

Status ReplyCache::RefusalStatus(Outcome outcome) {
  switch (outcome) {
    case Outcome::kInFlight:
      return Status::Unavailable(
          "duplicate call still executing; retry shortly");
    case Outcome::kTooOld:
      return Status::FailedPrecondition(
          "retry of a call older than the dedup window; refusing to risk "
          "re-execution");
    default:
      return Status::OK();
  }
}

void ReplyCache::EvictClientsLocked() {
  while (clients_.size() > options_.max_clients) {
    auto victim = clients_.end();
    for (auto it = clients_.begin(); it != clients_.end(); ++it) {
      // Never evict a client with a call mid-execution.
      if (!it->second.in_flight.empty()) continue;
      if (victim == clients_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == clients_.end()) return;  // everything in flight
    const size_t dropped = victim->second.replies.size();
    total_entries_ -= dropped;
    evictions_ += dropped;
    if (dropped > 0) EvictionCounter()->Add(dropped);
    clients_.erase(victim);
  }
}

void ReplyCache::DropEntryLocked(ClientState* state,
                                 std::map<uint64_t, Bytes>::iterator entry) {
  const uint64_t evicted = entry->first;
  state->replies.erase(entry);
  if (evicted >= state->low_water) state->low_water = evicted + 1;
  total_entries_ -= 1;
  evictions_ += 1;
  EvictionCounter()->Add();
}

void ReplyCache::EvictEntriesLocked() {
  if (options_.max_total_entries == 0) return;
  while (total_entries_ > options_.max_total_entries) {
    // Global LRU at client granularity: the least-recently-active client
    // that still retains replies gives up its oldest entry first (the one
    // a well-behaved synchronous client is least likely to retry).
    auto victim = clients_.end();
    for (auto it = clients_.begin(); it != clients_.end(); ++it) {
      if (it->second.replies.empty()) continue;
      if (victim == clients_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == clients_.end()) return;
    DropEntryLocked(&victim->second, victim->second.replies.begin());
  }
}

Bytes ReplyCache::Serialize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BufferWriter w;
  w.PutU32(kReplyCacheMagic);
  w.PutVarint(clients_.size());
  for (const auto& [client, state] : clients_) {
    w.PutU64(client);
    w.PutU64(state.max_seen);
    w.PutU64(state.low_water);
    w.PutVarint(state.replies.size());
    for (const auto& [seq, bytes] : state.replies) {
      w.PutU64(seq);
      w.PutBytes(bytes);
    }
  }
  return w.TakeData();
}

Status ReplyCache::Restore(BytesView data) {
  BufferReader r(data);
  uint32_t magic = 0;
  SSE_ASSIGN_OR_RETURN(magic, r.GetU32());
  if (magic != kReplyCacheMagic) {
    return Status::Corruption("reply cache snapshot: bad magic");
  }
  uint64_t n_clients = 0;
  SSE_ASSIGN_OR_RETURN(n_clients, r.GetVarint());
  std::unordered_map<uint64_t, ClientState> restored;
  for (uint64_t i = 0; i < n_clients; ++i) {
    uint64_t client = 0;
    SSE_ASSIGN_OR_RETURN(client, r.GetU64());
    ClientState state;
    SSE_ASSIGN_OR_RETURN(state.max_seen, r.GetU64());
    SSE_ASSIGN_OR_RETURN(state.low_water, r.GetU64());
    uint64_t n_replies = 0;
    SSE_ASSIGN_OR_RETURN(n_replies, r.GetVarint());
    for (uint64_t j = 0; j < n_replies; ++j) {
      uint64_t seq = 0;
      SSE_ASSIGN_OR_RETURN(seq, r.GetU64());
      Bytes bytes;
      SSE_ASSIGN_OR_RETURN(bytes, r.GetBytes());
      state.replies[seq] = std::move(bytes);
    }
    restored[client] = std::move(state);
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  std::lock_guard<std::mutex> lock(mutex_);
  clients_ = std::move(restored);
  // Restored clients become equally "old"; later activity re-ranks them.
  tick_ = 0;
  total_entries_ = 0;
  for (auto& [client, state] : clients_) {
    state.last_used = ++tick_;
    total_entries_ += state.replies.size();
  }
  EvictEntriesLocked();
  return Status::OK();
}

void ReplyCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  clients_.clear();
  tick_ = 0;
  total_entries_ = 0;
}

size_t ReplyCache::client_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clients_.size();
}

size_t ReplyCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_entries_;
}

uint64_t ReplyCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t ReplyCache::refusals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return refusals_;
}

uint64_t ReplyCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace sse::core
