#ifndef SSE_SECURITY_STATS_H_
#define SSE_SECURITY_STATS_H_

#include <cstddef>

#include "sse/util/bytes.h"

namespace sse::security {

/// Crude statistical distinguishers used to sanity-check that real view
/// components "look random" to the same degree simulated ones do. These
/// are necessary-but-not-sufficient checks: failing them would break the
/// scheme's security argument outright; passing them is consistent with it.

/// Fraction of 1 bits. Uniform data converges to 0.5.
double MonobitFraction(BytesView data);

/// Pearson chi-square statistic of the byte histogram against uniform
/// (255 degrees of freedom; ~340 is the p=0.0001 cut for large samples).
double ChiSquareBytes(BytesView data);

/// Shannon entropy of the byte distribution, in bits per byte (max 8).
double ShannonEntropyBytes(BytesView data);

/// Lag-1 serial correlation of the byte sequence (uniform data → ~0).
double SerialCorrelationBytes(BytesView data);

/// True when the sample passes all of: monobit within `monobit_slack` of
/// 0.5, chi-square below `chi_cut`, |serial correlation| below `corr_cut`.
/// Defaults suit samples of at least a few kilobytes.
bool LooksUniform(BytesView data, double monobit_slack = 0.02,
                  double chi_cut = 400.0, double corr_cut = 0.05);

}  // namespace sse::security

#endif  // SSE_SECURITY_STATS_H_
