#include "sse/net/message.h"

#include <gtest/gtest.h>

#include "sse/core/scheme1_messages.h"
#include "sse/core/scheme2_messages.h"

namespace sse::net {
namespace {

TEST(MessageTest, EncodeDecodeRoundTrip) {
  Message msg{0x0105, Bytes{1, 2, 3, 4}};
  Bytes wire = msg.Encode();
  EXPECT_EQ(wire.size(), msg.WireSize());
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->payload, msg.payload);
}

TEST(MessageTest, EmptyPayload) {
  Message msg{7, {}};
  auto decoded = Message::Decode(msg.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(MessageTest, DecodeRejectsLengthMismatch) {
  Message msg{1, Bytes{1, 2, 3}};
  Bytes wire = msg.Encode();
  wire.push_back(0);  // trailing garbage
  EXPECT_FALSE(Message::Decode(wire).ok());
  wire.pop_back();
  wire.pop_back();  // truncated payload
  EXPECT_FALSE(Message::Decode(wire).ok());
}

TEST(MessageTest, DecodeRejectsTinyInputs) {
  EXPECT_FALSE(Message::Decode(Bytes{}).ok());
  EXPECT_FALSE(Message::Decode(Bytes{1}).ok());
  EXPECT_FALSE(Message::Decode(Bytes{1, 2, 3}).ok());
}

TEST(MessageTest, ErrorMessageRoundTrip) {
  Message err = MakeErrorMessage(Status::NotFound("token missing"));
  EXPECT_EQ(err.type, kMsgError);
  Status s = DecodeErrorMessage(err);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "token missing");
}

TEST(MessageTest, NonErrorDecodesToOk) {
  Message msg{kMsgPutDocument, {}};
  EXPECT_TRUE(DecodeErrorMessage(msg).ok());
}

TEST(MessageTest, TypeNames) {
  EXPECT_EQ(MessageTypeName(kMsgError), "Error");
  EXPECT_EQ(MessageTypeName(core::kMsgS1SearchRequest).substr(0, 8),
            "Scheme1.");
  EXPECT_EQ(MessageTypeName(core::kMsgS2UpdateRequest).substr(0, 8),
            "Scheme2.");
  EXPECT_EQ(MessageTypeName(0x0301).substr(0, 9), "Baseline.");
  EXPECT_EQ(MessageTypeName(0x7001).substr(0, 8), "Unknown.");
}

}  // namespace
}  // namespace sse::net
