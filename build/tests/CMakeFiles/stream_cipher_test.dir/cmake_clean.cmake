file(REMOVE_RECURSE
  "CMakeFiles/stream_cipher_test.dir/stream_cipher_test.cc.o"
  "CMakeFiles/stream_cipher_test.dir/stream_cipher_test.cc.o.d"
  "stream_cipher_test"
  "stream_cipher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_cipher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
