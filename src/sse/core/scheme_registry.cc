// The single scheme registration point. Every per-scheme factory the rest
// of the stack needs — classic server, engine adapter, client — lives in
// this table; registry.cc, the CLI tools, benches and parameterized tests
// all dispatch through FindScheme/AllSchemes instead of enumerating kinds.
// Adding a scheme means adding one descriptor here.

#include "sse/core/scheme_descriptor.h"

#include <string>

#include "sse/baselines/cgko_sse1.h"
#include "sse/baselines/swp.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_server.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"
#include "sse/core/scheme3_client.h"
#include "sse/core/scheme3_server.h"
#include "sse/engine/scheme1_adapter.h"
#include "sse/engine/scheme2_adapter.h"
#include "sse/engine/scheme3_adapter.h"

namespace sse::core {

namespace {

/// Builds a classic single-threaded paper-scheme server, applying the
/// document LogStore spill when configured.
template <typename Server>
Result<std::unique_ptr<PersistableHandler>> MakeClassicServer(
    const SystemConfig& config) {
  auto server = std::make_unique<Server>(config.scheme);
  if (!config.scheme.document_log_path.empty()) {
    SSE_RETURN_IF_ERROR(
        server->UseLogBackedDocuments(config.scheme.document_log_path));
  }
  return std::unique_ptr<PersistableHandler>(std::move(server));
}

/// Adapts a scheme client's Create(key, options, channel, rng) factory to
/// the descriptor signature.
template <typename Client>
Result<std::unique_ptr<SseClientInterface>> MakeSchemeClient(
    const crypto::MasterKey& key, const SystemConfig& config,
    net::Channel* channel, RandomSource* rng) {
  Result<std::unique_ptr<Client>> client =
      Client::Create(key, config.scheme, channel, rng);
  if (!client.ok()) return client.status();
  return std::unique_ptr<SseClientInterface>(std::move(client).value());
}

std::vector<SchemeDescriptor> BuildTable() {
  std::vector<SchemeDescriptor> table;

  {
    SchemeDescriptor d;
    d.kind = SystemKind::kScheme1;
    d.name = "scheme1";
    d.summary =
        "paper §5.2: XOR-masked posting bitmaps, hashed-ElGamal nonces, "
        "2-round search";
    d.traits.engine_capable = true;
    d.traits.stateful_client = true;
    d.make_server = MakeClassicServer<Scheme1Server>;
    d.make_adapter = [](const SystemConfig& config) {
      return std::unique_ptr<engine::SchemeAdapter>(
          std::make_unique<engine::Scheme1Adapter>(config.scheme));
    };
    d.make_client = MakeSchemeClient<Scheme1Client>;
    table.push_back(std::move(d));
  }

  {
    SchemeDescriptor d;
    d.kind = SystemKind::kScheme2;
    d.name = "scheme2";
    d.summary =
        "paper §5.5: per-update encrypted posting segments keyed off a "
        "Lamport hash chain, 1-round search";
    d.traits.engine_capable = true;
    d.traits.stateful_client = true;
    d.make_server = MakeClassicServer<Scheme2Server>;
    d.make_adapter = [](const SystemConfig& config) {
      return std::unique_ptr<engine::SchemeAdapter>(
          std::make_unique<engine::Scheme2Adapter>(config.scheme));
    };
    d.make_client = MakeSchemeClient<Scheme2Client>;
    table.push_back(std::move(d));
  }

  {
    SchemeDescriptor d;
    d.kind = SystemKind::kSwp;
    d.name = "swp";
    d.summary = "Song-Wagner-Perrig sequential-scan baseline";
    d.make_server = [](const SystemConfig&) {
      return Result<std::unique_ptr<PersistableHandler>>(
          std::make_unique<baselines::SwpServer>());
    };
    d.make_client = [](const crypto::MasterKey& key, const SystemConfig&,
                       net::Channel* channel, RandomSource* rng)
        -> Result<std::unique_ptr<SseClientInterface>> {
      Result<std::unique_ptr<baselines::SwpClient>> client =
          baselines::SwpClient::Create(key, channel, rng);
      if (!client.ok()) return client.status();
      return std::unique_ptr<SseClientInterface>(std::move(client).value());
    };
    table.push_back(std::move(d));
  }

  {
    SchemeDescriptor d;
    d.kind = SystemKind::kGohZidx;
    d.name = "goh-zidx";
    d.summary = "Goh Z-IDX per-document Bloom filter baseline";
    d.make_server = [](const SystemConfig& config) {
      return Result<std::unique_ptr<PersistableHandler>>(
          std::make_unique<baselines::GohServer>(config.goh));
    };
    d.make_client = [](const crypto::MasterKey& key,
                       const SystemConfig& config, net::Channel* channel,
                       RandomSource* rng)
        -> Result<std::unique_ptr<SseClientInterface>> {
      Result<std::unique_ptr<baselines::GohClient>> client =
          baselines::GohClient::Create(key, config.goh, channel, rng);
      if (!client.ok()) return client.status();
      return std::unique_ptr<SseClientInterface>(std::move(client).value());
    };
    table.push_back(std::move(d));
  }

  {
    SchemeDescriptor d;
    d.kind = SystemKind::kCgkoSse1;
    d.name = "cgko-sse1";
    d.summary = "Curtmola et al. SSE-1 inverted-index baseline";
    d.make_server = [](const SystemConfig& config) {
      return Result<std::unique_ptr<PersistableHandler>>(
          std::make_unique<baselines::CgkoServer>(config.scheme.use_hash_index,
                                                  config.scheme.btree_order));
    };
    d.make_client = [](const crypto::MasterKey& key, const SystemConfig&,
                       net::Channel* channel, RandomSource* rng)
        -> Result<std::unique_ptr<SseClientInterface>> {
      Result<std::unique_ptr<baselines::CgkoClient>> client =
          baselines::CgkoClient::Create(key, channel, rng);
      if (!client.ok()) return client.status();
      return std::unique_ptr<SseClientInterface>(std::move(client).value());
    };
    table.push_back(std::move(d));
  }

  {
    SchemeDescriptor d;
    d.kind = SystemKind::kScheme3;
    d.name = "scheme3";
    d.summary =
        "forward-private dynamic SSE: per-update hash-chain keys, "
        "unlinkable update addresses, client-held counters";
    d.traits.engine_capable = true;
    d.traits.forward_private = true;
    d.traits.stateful_client = true;
    d.make_server = MakeClassicServer<Scheme3Server>;
    d.make_adapter = [](const SystemConfig& config) {
      return std::unique_ptr<engine::SchemeAdapter>(
          std::make_unique<engine::Scheme3Adapter>(config.scheme));
    };
    d.make_client = MakeSchemeClient<Scheme3Client>;
    table.push_back(std::move(d));
  }

  return table;
}

}  // namespace

const std::vector<SchemeDescriptor>& AllSchemes() {
  static const std::vector<SchemeDescriptor>* table =
      new std::vector<SchemeDescriptor>(BuildTable());
  return *table;
}

const SchemeDescriptor* FindScheme(SystemKind kind) {
  for (const SchemeDescriptor& d : AllSchemes()) {
    if (d.kind == kind) return &d;
  }
  return nullptr;
}

const SchemeDescriptor* FindScheme(std::string_view name) {
  for (const SchemeDescriptor& d : AllSchemes()) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

std::string_view SystemKindName(SystemKind kind) {
  const SchemeDescriptor* d = FindScheme(kind);
  return d != nullptr ? d->name : "unknown";
}

Result<SystemKind> SystemKindFromName(std::string_view name) {
  const SchemeDescriptor* d = FindScheme(name);
  if (d == nullptr) {
    return Status::InvalidArgument("unknown system name: " +
                                   std::string(name));
  }
  return d->kind;
}

std::vector<SystemKind> AllSystemKinds() {
  std::vector<SystemKind> kinds;
  kinds.reserve(AllSchemes().size());
  for (const SchemeDescriptor& d : AllSchemes()) kinds.push_back(d.kind);
  return kinds;
}

}  // namespace sse::core
