#ifndef SSE_UTIL_LOGGING_H_
#define SSE_UTIL_LOGGING_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>

namespace sse {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped. Default is
/// kWarning so library users see problems but not chatter.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// One emitted log line, as handed to a sink.
struct LogRecord {
  LogLevel level;
  const char* file;  // basename
  int line;
  uint64_t wall_micros;  // wall-clock µs since Unix epoch
  uint32_t tid;          // small per-process thread number
  uint64_t trace_id;     // active trace on the logging thread, 0 if none
  std::string message;   // user text only (no prefix)
};

/// Replaces the output sink. The default (also restored by passing
/// nullptr) writes human-readable text to stderr:
///   [LEVEL 2026-08-05T12:34:56.789Z tid=3 trace=1a2b] file.cc:42 message
/// Sinks must be callable from any thread; installation is not
/// synchronized with in-flight log statements, so install at startup.
using LogSink = std::function<void(const LogRecord&)>;
void SetLogSink(LogSink sink);

/// A sink that writes one JSON object per line to `out` (caller keeps the
/// FILE open for the sink's lifetime):
///   {"ts":1754412896789123,"level":"INFO","file":"x.cc","line":7,
///    "tid":3,"trace":"1a2b","msg":"..."}
LogSink MakeJsonLinesSink(std::FILE* out);

/// Lets log lines carry the calling thread's active trace id (installed by
/// the obs layer; returns 0 when the thread has no sampled trace open).
void SetLogTraceIdProvider(uint64_t (*provider)());

namespace internal_logging {

/// Stream-style one-shot logger; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define SSE_LOG(level)                                                      \
  ::sse::internal_logging::LogMessage(::sse::LogLevel::k##level, __FILE__, \
                                      __LINE__)                            \
      .stream()

}  // namespace sse

#endif  // SSE_UTIL_LOGGING_H_
