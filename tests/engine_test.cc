// Tests for the sharded server engine: routing equivalence against the
// plain single-threaded servers, snapshot round-trips, document fetches,
// metrics, and shard balance. Concurrency is exercised separately in
// engine_concurrency_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "sse/core/scheme1_client.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/wire_common.h"
#include "sse/engine/scheme1_adapter.h"
#include "sse/engine/scheme2_adapter.h"
#include "sse/engine/server_engine.h"
#include "sse/engine/shard_router.h"
#include "sse/util/serde.h"
#include "test_util.h"

namespace sse {
namespace {

using ::sse::testing::FastTestConfig;
using ::sse::testing::MakeTestSystem;
using ::sse::testing::TestMasterKey;

core::SystemConfig EngineConfig(size_t shards) {
  core::SystemConfig config = FastTestConfig();
  config.engine_shards = shards;
  return config;
}

std::vector<core::Document> CorpusDocs() {
  std::vector<core::Document> docs;
  docs.push_back(core::Document::Make(1, "alpha text", {"alpha", "common"}));
  docs.push_back(core::Document::Make(2, "beta text", {"beta", "common"}));
  docs.push_back(core::Document::Make(3, "gamma text", {"gamma"}));
  docs.push_back(core::Document::Make(4, "delta text", {"delta", "alpha"}));
  docs.push_back(
      core::Document::Make(5, "epsilon text", {"epsilon", "common"}));
  return docs;
}

void ExpectSameOutcome(const core::SearchOutcome& plain,
                       const core::SearchOutcome& engine,
                       const std::string& keyword) {
  EXPECT_EQ(plain.ids, engine.ids) << "keyword: " << keyword;
  ASSERT_EQ(plain.documents.size(), engine.documents.size())
      << "keyword: " << keyword;
  for (size_t i = 0; i < plain.documents.size(); ++i) {
    EXPECT_EQ(plain.documents[i].first, engine.documents[i].first);
    EXPECT_EQ(plain.documents[i].second, engine.documents[i].second);
  }
}

class EngineEquivalenceTest
    : public ::testing::TestWithParam<core::SystemKind> {};

// The engine-backed system must be observably identical to the plain
// server: same ids, same decrypted documents, for hits and misses.
TEST_P(EngineEquivalenceTest, MatchesPlainServer) {
  DeterministicRandom plain_rng(7);
  DeterministicRandom engine_rng(7);
  core::SseSystem plain = MakeTestSystem(GetParam(), &plain_rng);
  core::SseSystem sharded =
      MakeTestSystem(GetParam(), &engine_rng, EngineConfig(4));

  const auto docs = CorpusDocs();
  SSE_ASSERT_OK(plain.client->Store(docs));
  SSE_ASSERT_OK(sharded.client->Store(docs));

  for (const std::string keyword :
       {"alpha", "beta", "gamma", "delta", "epsilon", "common", "missing"}) {
    auto plain_result = plain.client->Search(keyword);
    auto engine_result = sharded.client->Search(keyword);
    SSE_ASSERT_OK_RESULT(plain_result);
    SSE_ASSERT_OK_RESULT(engine_result);
    ExpectSameOutcome(*plain_result, *engine_result, keyword);
  }

  // Incremental updates after the initial load route correctly too.
  const auto extra =
      core::Document::Make(9, "late arrival", {"common", "late"});
  SSE_ASSERT_OK(plain.client->Store({extra}));
  SSE_ASSERT_OK(sharded.client->Store({extra}));
  for (const std::string keyword : {"common", "late"}) {
    auto plain_result = plain.client->Search(keyword);
    auto engine_result = sharded.client->Search(keyword);
    SSE_ASSERT_OK_RESULT(plain_result);
    SSE_ASSERT_OK_RESULT(engine_result);
    ExpectSameOutcome(*plain_result, *engine_result, keyword);
  }

  auto* eng = static_cast<engine::ServerEngine*>(sharded.server.get());
  EXPECT_EQ(eng->document_count(), 6u);
  EXPECT_GT(eng->unique_keywords(), 0u);
  EXPECT_GT(eng->stored_index_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, EngineEquivalenceTest,
                         ::testing::Values(core::SystemKind::kScheme1,
                                           core::SystemKind::kScheme2),
                         [](const auto& info) {
                           return std::string(
                               core::SystemKindName(info.param));
                         });

// Scheme 2 re-initializes its hash chains when the counter nears the chain
// length; through the engine this is a FetchAll broadcast + a Reinit that
// must clear and re-seed every shard.
TEST(EngineScheme2Test, ReinitBroadcastsThroughAllShards) {
  core::SystemConfig config = EngineConfig(4);
  config.scheme.chain_length = 8;
  config.scheme.counter_after_search_only = false;  // burn chain fast
  core::SystemConfig plain_config = config;
  plain_config.engine_shards = 0;

  DeterministicRandom engine_rng(11);
  DeterministicRandom plain_rng(11);
  core::SseSystem sharded =
      MakeTestSystem(core::SystemKind::kScheme2, &engine_rng, config);
  core::SseSystem plain =
      MakeTestSystem(core::SystemKind::kScheme2, &plain_rng, plain_config);

  // Far more counted updates than chain elements: the chain exhausts and
  // the client must rebuild the index under a fresh epoch — through the
  // engine that is a FetchAll broadcast plus a Reinit to every shard.
  auto* sharded_client = static_cast<core::Scheme2Client*>(sharded.client.get());
  auto* plain_client = static_cast<core::Scheme2Client*>(plain.client.get());
  auto store_with_reinit = [](core::Scheme2Client* client,
                              const core::Document& doc) {
    Status s = client->Store({doc});
    if (!s.ok()) {
      SSE_ASSERT_OK(client->Reinitialize());
      SSE_ASSERT_OK(client->Store({doc}));
    }
  };
  for (uint64_t i = 0; i < 24; ++i) {
    const auto doc = core::Document::Make(
        i, "doc " + std::to_string(i),
        {"kw" + std::to_string(i % 6), "shared"});
    store_with_reinit(sharded_client, doc);
    store_with_reinit(plain_client, doc);
    if (i % 5 == 0) {
      SSE_ASSERT_OK_RESULT(sharded.client->Search("shared"));
      SSE_ASSERT_OK_RESULT(plain.client->Search("shared"));
    }
  }
  for (const std::string keyword :
       {"kw0", "kw1", "kw2", "kw3", "kw4", "kw5", "shared"}) {
    auto plain_result = plain.client->Search(keyword);
    auto engine_result = sharded.client->Search(keyword);
    SSE_ASSERT_OK_RESULT(plain_result);
    SSE_ASSERT_OK_RESULT(engine_result);
    ExpectSameOutcome(*plain_result, *engine_result, keyword);
  }
  auto* eng = static_cast<engine::ServerEngine*>(sharded.server.get());
  EXPECT_GT(eng->Metrics().broadcasts, 0u) << "reinit never broadcast";
}

TEST(EngineSnapshotTest, SerializeRestoreRoundTrip) {
  DeterministicRandom rng(13);
  core::SseSystem sharded =
      MakeTestSystem(core::SystemKind::kScheme1, &rng, EngineConfig(4));
  SSE_ASSERT_OK(sharded.client->Store(CorpusDocs()));
  auto* eng = static_cast<engine::ServerEngine*>(sharded.server.get());

  auto state = eng->SerializeState();
  SSE_ASSERT_OK_RESULT(state);

  // Restore into a fresh engine with the same shard count; a fresh client
  // with the same master key must see the same database.
  engine::EngineOptions same_shards;
  same_shards.num_shards = 4;
  auto restored = engine::ServerEngine::Create(
      std::make_unique<engine::Scheme1Adapter>(FastTestConfig().scheme),
      same_shards);
  SSE_ASSERT_OK_RESULT(restored);
  SSE_ASSERT_OK((*restored)->RestoreState(*state));
  EXPECT_EQ((*restored)->document_count(), eng->document_count());
  EXPECT_EQ((*restored)->unique_keywords(), eng->unique_keywords());

  net::InProcessChannel channel(restored->get());
  DeterministicRandom client_rng(14);
  auto client = core::Scheme1Client::Create(
      TestMasterKey(), FastTestConfig().scheme, &channel, &client_rng);
  SSE_ASSERT_OK_RESULT(client);
  auto outcome = (*client)->Search("common");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{1, 2, 5}));
  ASSERT_EQ(outcome->documents.size(), 3u);

  // Shard states are partition-dependent: restoring into a differently
  // sharded engine must be rejected, not silently misrouted.
  engine::EngineOptions fewer_shards;
  fewer_shards.num_shards = 3;
  auto wrong = engine::ServerEngine::Create(
      std::make_unique<engine::Scheme1Adapter>(FastTestConfig().scheme),
      fewer_shards);
  SSE_ASSERT_OK_RESULT(wrong);
  EXPECT_FALSE((*wrong)->RestoreState(*state).ok());
}

// The engine answers document-fetch messages from its shared store
// directly (no shard involved).
TEST(EngineDocumentsTest, FetchDocumentsMessage) {
  DeterministicRandom rng(17);
  core::SseSystem sharded =
      MakeTestSystem(core::SystemKind::kScheme1, &rng, EngineConfig(4));
  SSE_ASSERT_OK(sharded.client->Store(CorpusDocs()));

  net::Message request;
  request.type = net::kMsgFetchDocuments;
  BufferWriter w;
  core::PutIdList(w, {1, 3, 5});
  request.payload = w.TakeData();

  auto reply = sharded.server->Handle(request);
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_EQ(reply->type, net::kMsgFetchDocumentsResult);
  BufferReader r(reply->payload);
  auto docs = core::GetWireDocuments(r);
  SSE_ASSERT_OK_RESULT(docs);
  ASSERT_EQ(docs->size(), 3u);
  std::set<uint64_t> ids;
  for (const auto& doc : *docs) {
    ids.insert(doc.id);
    EXPECT_FALSE(doc.ciphertext.empty());
  }
  EXPECT_EQ(ids, (std::set<uint64_t>{1, 3, 5}));
}

TEST(EngineMetricsTest, CountsRequestsAndShardTraffic) {
  DeterministicRandom rng(19);
  core::SseSystem sharded =
      MakeTestSystem(core::SystemKind::kScheme1, &rng, EngineConfig(4));
  SSE_ASSERT_OK(sharded.client->Store(CorpusDocs()));
  for (const std::string keyword : {"alpha", "beta", "common"}) {
    SSE_ASSERT_OK_RESULT(sharded.client->Search(keyword));
  }
  auto* eng = static_cast<engine::ServerEngine*>(sharded.server.get());
  const engine::MetricsSnapshot snap = eng->Metrics();
  ASSERT_EQ(snap.shards.size(), 4u);
  EXPECT_GT(snap.requests, 0u);
  EXPECT_GT(snap.total_reads(), 0u);   // searches lock shared
  EXPECT_GT(snap.total_writes(), 0u);  // the update locked exclusive
  EXPECT_GT(snap.doc_puts, 0u);
  EXPECT_GT(snap.doc_fetches, 0u);
  EXPECT_EQ(snap.handle_latency.count, snap.requests);
  EXPECT_FALSE(snap.ToString().empty());
}

TEST(ShardRouterTest, StableAndBalanced) {
  const size_t shards = 8;
  std::vector<size_t> hits(shards, 0);
  DeterministicRandom rng(23);
  for (int i = 0; i < 2000; ++i) {
    Bytes token(32);
    for (auto& b : token) b = static_cast<uint8_t>(rng.Next());
    const size_t s = engine::ShardForToken(token, shards);
    ASSERT_LT(s, shards);
    EXPECT_EQ(s, engine::ShardForToken(token, shards));  // deterministic
    ++hits[s];
  }
  // Uniform tokens should land everywhere; with 2000 draws over 8 shards a
  // starved shard means the router is broken, not unlucky.
  for (size_t s = 0; s < shards; ++s) {
    EXPECT_GT(hits[s], 100u) << "shard " << s << " starved";
  }
  // Short tokens still route in range.
  Bytes tiny{0x42};
  EXPECT_LT(engine::ShardForToken(tiny, shards), shards);
  EXPECT_LT(engine::ShardForToken(Bytes{}, shards), shards);
}

// Baselines have no sharding policy; asking for one must fail loudly.
TEST(EngineRegistryTest, BaselinesRejectEngineMode) {
  DeterministicRandom rng(29);
  auto result = core::CreateSystem(core::SystemKind::kSwp, TestMasterKey(),
                                   EngineConfig(4), &rng);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace sse
