// Server-side at-most-once dedup: retries of an answered call are served
// the recorded reply, racing duplicates are refused, and the table
// round-trips through Serialize/Restore so dedup survives recovery.

#include "sse/core/reply_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "test_util.h"

namespace sse::core {
namespace {

using Outcome = ReplyCache::Outcome;

net::Message MakeReply(uint16_t type, uint8_t tag) {
  net::Message reply;
  reply.type = type;
  reply.payload = Bytes{tag, 1, 2, 3};
  return reply;
}

TEST(ReplyCacheTest, FirstClaimIsNewRetryIsCached) {
  ReplyCache cache;
  net::Message cached;
  EXPECT_EQ(cache.Begin(1, 0, &cached), Outcome::kNew);
  cache.Commit(1, 0, MakeReply(0x0104, 9));

  EXPECT_EQ(cache.Begin(1, 0, &cached), Outcome::kCached);
  EXPECT_EQ(cached.type, 0x0104);
  EXPECT_EQ(cached.payload, (Bytes{9, 1, 2, 3}));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ReplyCacheTest, DuplicateWhileExecutingIsRefusedRetryably) {
  ReplyCache cache;
  net::Message cached;
  EXPECT_EQ(cache.Begin(1, 5, &cached), Outcome::kNew);
  // The duplicate arrives while the original is still executing.
  EXPECT_EQ(cache.Begin(1, 5, &cached), Outcome::kInFlight);
  EXPECT_TRUE(ReplyCache::RefusalStatus(Outcome::kInFlight).IsRetryable());
  // After the original commits, the retry is served from cache.
  cache.Commit(1, 5, MakeReply(2, 1));
  EXPECT_EQ(cache.Begin(1, 5, &cached), Outcome::kCached);
}

TEST(ReplyCacheTest, AbortAllowsReexecution) {
  ReplyCache cache;
  net::Message cached;
  EXPECT_EQ(cache.Begin(3, 0, &cached), Outcome::kNew);
  cache.Abort(3, 0);  // handler rejected it; no state changed
  EXPECT_EQ(cache.Begin(3, 0, &cached), Outcome::kNew);
}

TEST(ReplyCacheTest, ClientsAreIndependent) {
  ReplyCache cache;
  net::Message cached;
  EXPECT_EQ(cache.Begin(1, 0, &cached), Outcome::kNew);
  cache.Commit(1, 0, MakeReply(2, 1));
  // Same seq from a different client is a different call.
  EXPECT_EQ(cache.Begin(2, 0, &cached), Outcome::kNew);
}

TEST(ReplyCacheTest, PerClientWindowEvictsOldestAndRefusesBelowIt) {
  ReplyCache::Options opts;
  opts.per_client_entries = 4;
  ReplyCache cache(opts);
  net::Message cached;
  for (uint64_t seq = 0; seq < 8; ++seq) {
    EXPECT_EQ(cache.Begin(1, seq, &cached), Outcome::kNew);
    cache.Commit(1, seq, MakeReply(2, static_cast<uint8_t>(seq)));
  }
  EXPECT_EQ(cache.entry_count(), 4u);
  // Recent seqs still dedup.
  EXPECT_EQ(cache.Begin(1, 7, &cached), Outcome::kCached);
  // A retry below the retained window could be a second application of a
  // non-idempotent update; the cache refuses non-retryably.
  EXPECT_EQ(cache.Begin(1, 0, &cached), Outcome::kTooOld);
  const Status refusal = ReplyCache::RefusalStatus(Outcome::kTooOld);
  EXPECT_EQ(refusal.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(refusal.IsRetryable());
  EXPECT_GE(cache.refusals(), 1u);
}

TEST(ReplyCacheTest, LruClientEvictionKeepsActiveClients) {
  ReplyCache::Options opts;
  opts.max_clients = 2;
  ReplyCache cache(opts);
  net::Message cached;
  for (uint64_t client = 1; client <= 3; ++client) {
    EXPECT_EQ(cache.Begin(client, 0, &cached), Outcome::kNew);
    cache.Commit(client, 0, MakeReply(2, 1));
  }
  EXPECT_EQ(cache.client_count(), 2u);
  // Client 1 was least recently used and got evicted; its history is gone,
  // so the same stamp reads as new again.
  EXPECT_EQ(cache.Begin(1, 0, &cached), Outcome::kNew);
}

TEST(ReplyCacheTest, GlobalBoundEvictsLeastRecentlyActiveClientFirst) {
  ReplyCache::Options opts;
  opts.max_total_entries = 6;
  ReplyCache cache(opts);
  net::Message cached;
  // Three clients, four entries each: 12 commits against a bound of 6.
  for (uint64_t client = 1; client <= 3; ++client) {
    for (uint64_t seq = 0; seq < 4; ++seq) {
      ASSERT_EQ(cache.Begin(client, seq, &cached), Outcome::kNew);
      cache.Commit(client, seq, MakeReply(2, 1));
    }
  }
  EXPECT_LE(cache.entry_count(), 6u);
  EXPECT_GE(cache.evictions(), 6u);
  // The most recently active client keeps its newest entries...
  EXPECT_EQ(cache.Begin(3, 3, &cached), Outcome::kCached);
  // ...while the least recently active client's oldest were dropped, and
  // a retry of one reads as too-old (refused), never re-executed.
  EXPECT_EQ(cache.Begin(1, 0, &cached), Outcome::kTooOld);
}

TEST(ReplyCacheTest, GlobalBoundAppliesOnRestoreToo) {
  ReplyCache unbounded;
  net::Message cached;
  for (uint64_t seq = 0; seq < 10; ++seq) {
    ASSERT_EQ(unbounded.Begin(1, seq, &cached), Outcome::kNew);
    unbounded.Commit(1, seq, MakeReply(2, 1));
  }
  ReplyCache::Options opts;
  opts.max_total_entries = 3;
  ReplyCache bounded(opts);
  SSE_ASSERT_OK(bounded.Restore(unbounded.Serialize()));
  // A snapshot taken under a looser (or absent) bound must not let a
  // restarted server exceed its configured budget.
  EXPECT_LE(bounded.entry_count(), 3u);
  EXPECT_EQ(bounded.Begin(1, 9, &cached), Outcome::kCached);
}

TEST(ReplyCacheTest, SerializeRestoreRoundTripsEntries) {
  ReplyCache cache;
  net::Message cached;
  for (uint64_t client = 1; client <= 3; ++client) {
    for (uint64_t seq = 0; seq < 5; ++seq) {
      ASSERT_EQ(cache.Begin(client, seq, &cached), Outcome::kNew);
      cache.Commit(client, seq,
                   MakeReply(0x0104, static_cast<uint8_t>(client * 10 + seq)));
    }
  }
  const Bytes blob = cache.Serialize();

  ReplyCache restored;
  SSE_ASSERT_OK(restored.Restore(blob));
  EXPECT_EQ(restored.client_count(), 3u);
  EXPECT_EQ(restored.entry_count(), 15u);
  EXPECT_EQ(restored.Begin(2, 3, &cached), Outcome::kCached);
  EXPECT_EQ(cached.payload, (Bytes{23, 1, 2, 3}));
  EXPECT_EQ(restored.Begin(2, 5, &cached), Outcome::kNew);
}

TEST(ReplyCacheTest, SerializeExcludesInFlightClaims) {
  ReplyCache cache;
  net::Message cached;
  EXPECT_EQ(cache.Begin(1, 0, &cached), Outcome::kNew);  // never commits
  ReplyCache restored;
  SSE_ASSERT_OK(restored.Restore(cache.Serialize()));
  // In-flight claims are transient (the call died with the process); after
  // restore the stamp executes as new.
  EXPECT_EQ(restored.Begin(1, 0, &cached), Outcome::kNew);
}

TEST(ReplyCacheTest, EvictionWindowSurvivesRestore) {
  ReplyCache::Options opts;
  opts.per_client_entries = 2;
  ReplyCache cache(opts);
  net::Message cached;
  for (uint64_t seq = 0; seq < 6; ++seq) {
    EXPECT_EQ(cache.Begin(1, seq, &cached), Outcome::kNew);
    cache.Commit(1, seq, MakeReply(2, static_cast<uint8_t>(seq)));
  }
  ReplyCache restored(opts);
  SSE_ASSERT_OK(restored.Restore(cache.Serialize()));
  // The too-old boundary (low_water) is part of the snapshot: seq 0 must
  // still be refused, not re-executed.
  EXPECT_EQ(restored.Begin(1, 0, &cached), Outcome::kTooOld);
  EXPECT_EQ(restored.Begin(1, 5, &cached), Outcome::kCached);
}

TEST(ReplyCacheTest, RestoreRejectsGarbage) {
  ReplyCache cache;
  EXPECT_FALSE(cache.Restore(Bytes{1, 2, 3}).ok());
  EXPECT_FALSE(cache.Restore(Bytes{}).ok());
}

TEST(ReplyCacheTest, ConcurrentClientsDedupExactlyOnce) {
  ReplyCache cache;
  constexpr int kThreads = 8;
  constexpr uint64_t kCallsPerClient = 200;
  std::vector<std::thread> threads;
  std::vector<uint64_t> news(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &news, t] {
      net::Message cached;
      for (uint64_t seq = 0; seq < kCallsPerClient; ++seq) {
        // Each call arrives twice (a retry racing the original).
        for (int attempt = 0; attempt < 2; ++attempt) {
          const Outcome o =
              cache.Begin(static_cast<uint64_t>(t) + 1, seq, &cached);
          if (o == Outcome::kNew) {
            news[t] += 1;
            cache.Commit(static_cast<uint64_t>(t) + 1, seq, MakeReply(2, 1));
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    // Exactly one execution per logical call despite the duplicates.
    EXPECT_EQ(news[t], kCallsPerClient);
  }
}

}  // namespace
}  // namespace sse::core
