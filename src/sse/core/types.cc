#include "sse/core/types.h"

namespace sse::core {

Document Document::Make(uint64_t id, std::string_view content,
                        std::vector<std::string> keywords) {
  Document d;
  d.id = id;
  d.content = StringToBytes(content);
  d.keywords = std::move(keywords);
  return d;
}

Result<std::vector<SearchOutcome>> SseClientInterface::MultiSearch(
    const std::vector<std::string>& keywords) {
  std::vector<SearchOutcome> outcomes;
  outcomes.reserve(keywords.size());
  for (const std::string& keyword : keywords) {
    Result<SearchOutcome> one = Search(keyword);
    if (!one.ok()) return one.status();
    outcomes.push_back(std::move(one).value());
  }
  return outcomes;
}

Bytes EncodeDocId(uint64_t id) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(id >> (8 * i));
  return out;
}

}  // namespace sse::core
