#include "sse/net/channel.h"

#include <cstdio>

namespace sse::net {

std::string ChannelStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "rounds=%llu sent=%lluB recv=%lluB total=%lluB",
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(bytes_sent),
                static_cast<unsigned long long>(bytes_received),
                static_cast<unsigned long long>(TotalBytes()));
  std::string out = buf;
  if (injected_faults > 0) {
    std::snprintf(buf, sizeof(buf), " faults=%llu",
                  static_cast<unsigned long long>(injected_faults));
    out += buf;
  }
  return out;
}

Channel::CallId Channel::Submit(const Message& request) {
  const CallId id = next_call_id_++;
  buffered_.emplace(id, Call(request));
  return id;
}

Result<Message> Channel::Await(CallId id) {
  auto it = buffered_.find(id);
  if (it == buffered_.end()) {
    return Status::InvalidArgument("unknown or already-awaited call ticket");
  }
  Result<Message> result = std::move(it->second);
  buffered_.erase(it);
  return result;
}

std::vector<Result<Message>> Channel::MultiCall(
    const std::vector<Message>& requests) {
  std::vector<Result<Message>> results;
  results.reserve(requests.size());
  for (const Message& request : requests) results.push_back(Call(request));
  return results;
}

InProcessChannel::InProcessChannel(MessageHandler* handler, Options options)
    : handler_(handler), options_(options) {}

Result<Message> InProcessChannel::Call(const Message& request) {
  // Serialize + reparse so byte counts reflect exactly what a socket
  // transport would carry, and so the server never aliases client memory.
  Bytes wire = request.Encode();
  stats_.rounds += 1;
  stats_.frames_sent += 1;
  stats_.bytes_sent += wire.size();
  stats_.calls_by_type[request.type] += 1;

  Message server_side;
  SSE_ASSIGN_OR_RETURN(server_side, Message::Decode(wire));
  Result<Message> reply = handler_->Handle(server_side);
  if (!reply.ok()) {
    // Transport a handler failure as an explicit error message, mirroring
    // what a real server process would send.
    reply = MakeErrorMessage(reply.status());
  }
  Bytes reply_wire = reply->Encode();
  stats_.frames_received += 1;
  stats_.bytes_received += reply_wire.size();

  if (options_.rtt_ms > 0.0) virtual_time_ms_ += options_.rtt_ms;
  if (options_.bandwidth_bytes_per_sec > 0.0) {
    virtual_time_ms_ += 1000.0 *
                        static_cast<double>(wire.size() + reply_wire.size()) /
                        options_.bandwidth_bytes_per_sec;
  }

  Message parsed;
  SSE_ASSIGN_OR_RETURN(parsed, Message::Decode(reply_wire));
  if (options_.record_transcript) {
    transcript_.push_back(Exchange{server_side, parsed});
  }
  Status app_error = DecodeErrorMessage(parsed);
  if (!app_error.ok()) return app_error;
  return parsed;
}

}  // namespace sse::net
