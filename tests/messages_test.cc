// Exhaustive round-trip and adversarial-decode tests for every protocol
// message of both schemes.

#include <gtest/gtest.h>

#include "sse/core/scheme1_messages.h"
#include "sse/core/scheme2_messages.h"
#include "sse/util/random.h"

namespace sse::core {
namespace {

Bytes B(std::initializer_list<uint8_t> bytes) { return Bytes(bytes); }

TEST(Scheme1MessagesTest, NonceRequestRoundTrip) {
  S1NonceRequest msg;
  msg.tokens = {Bytes(32, 1), Bytes(32, 2), Bytes{}};
  auto decoded = S1NonceRequest::FromMessage(msg.ToMessage());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tokens, msg.tokens);
}

TEST(Scheme1MessagesTest, NonceReplyRoundTrip) {
  S1NonceReply msg;
  msg.entries.push_back({true, B({9, 9, 9})});
  msg.entries.push_back({false, Bytes{}});
  auto decoded = S1NonceReply::FromMessage(msg.ToMessage());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_TRUE(decoded->entries[0].present);
  EXPECT_EQ(decoded->entries[0].enc_nonce, B({9, 9, 9}));
  EXPECT_FALSE(decoded->entries[1].present);
}

TEST(Scheme1MessagesTest, UpdateRequestRoundTrip) {
  S1UpdateRequest msg;
  S1UpdateEntry entry;
  entry.token = Bytes(32, 3);
  entry.masked_delta = Bytes(64, 0xaa);
  entry.new_enc_nonce = Bytes(100, 0xbb);
  entry.is_new = true;
  msg.entries.push_back(entry);
  msg.documents.push_back(WireDocument{42, B({1, 2, 3})});
  auto decoded = S1UpdateRequest::FromMessage(msg.ToMessage());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->entries.size(), 1u);
  EXPECT_EQ(decoded->entries[0].token, entry.token);
  EXPECT_EQ(decoded->entries[0].masked_delta, entry.masked_delta);
  EXPECT_TRUE(decoded->entries[0].is_new);
  ASSERT_EQ(decoded->documents.size(), 1u);
  EXPECT_EQ(decoded->documents[0].id, 42u);
}

TEST(Scheme1MessagesTest, SearchMessagesRoundTrip) {
  S1SearchRequest req;
  req.token = Bytes(32, 4);
  EXPECT_EQ(S1SearchRequest::FromMessage(req.ToMessage())->token, req.token);

  S1SearchNonceReply nr;
  nr.found = true;
  nr.enc_nonce = B({7});
  auto nr2 = S1SearchNonceReply::FromMessage(nr.ToMessage());
  ASSERT_TRUE(nr2.ok());
  EXPECT_TRUE(nr2->found);

  S1SearchFinish fin;
  fin.token = Bytes(32, 5);
  fin.nonce = Bytes(32, 6);
  auto fin2 = S1SearchFinish::FromMessage(fin.ToMessage());
  ASSERT_TRUE(fin2.ok());
  EXPECT_EQ(fin2->nonce, fin.nonce);

  S1SearchResult res;
  res.ids = {1, 5, 9};
  res.documents.push_back(WireDocument{5, B({0xff})});
  auto res2 = S1SearchResult::FromMessage(res.ToMessage());
  ASSERT_TRUE(res2.ok());
  EXPECT_EQ(res2->ids, res.ids);
  EXPECT_EQ(res2->documents[0].ciphertext, B({0xff}));
}

TEST(Scheme1MessagesTest, WrongTypeRejected) {
  S1SearchRequest req;
  req.token = Bytes(32, 1);
  net::Message msg = req.ToMessage();
  msg.type = kMsgS1NonceRequest;  // lie about the type
  EXPECT_FALSE(S1SearchRequest::FromMessage(msg).ok());
}

TEST(Scheme2MessagesTest, UpdateRoundTrip) {
  S2UpdateRequest msg;
  S2UpdateEntry entry;
  entry.token = Bytes(32, 1);
  entry.segment.ciphertext = Bytes(80, 2);
  entry.segment.tag = Bytes(32, 3);
  msg.entries.push_back(entry);
  msg.documents.push_back(WireDocument{7, B({1})});
  auto decoded = S2UpdateRequest::FromMessage(msg.ToMessage());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->entries[0].segment.tag, entry.segment.tag);
  EXPECT_EQ(decoded->documents[0].id, 7u);
}

TEST(Scheme2MessagesTest, SearchRoundTrip) {
  S2SearchRequest req;
  req.token = Bytes(32, 4);
  req.chain_element = Bytes(32, 5);
  auto req2 = S2SearchRequest::FromMessage(req.ToMessage());
  ASSERT_TRUE(req2.ok());
  EXPECT_EQ(req2->chain_element, req.chain_element);

  S2SearchResult res;
  res.found = true;
  res.ids = {2, 4};
  res.chain_steps = 17;
  res.segments_decrypted = 3;
  auto res2 = S2SearchResult::FromMessage(res.ToMessage());
  ASSERT_TRUE(res2.ok());
  EXPECT_TRUE(res2->found);
  EXPECT_EQ(res2->chain_steps, 17u);
  EXPECT_EQ(res2->segments_decrypted, 3u);
}

TEST(Scheme2MessagesTest, FetchAllAndReinitRoundTrip) {
  auto fa = S2FetchAllRequest::FromMessage(S2FetchAllRequest{}.ToMessage());
  EXPECT_TRUE(fa.ok());

  S2FetchAllReply reply;
  S2KeywordDump dump;
  dump.token = Bytes(32, 6);
  dump.segments.push_back({Bytes(40, 7), Bytes(32, 8)});
  dump.segments.push_back({Bytes(50, 9), Bytes(32, 10)});
  reply.keywords.push_back(dump);
  auto reply2 = S2FetchAllReply::FromMessage(reply.ToMessage());
  ASSERT_TRUE(reply2.ok());
  ASSERT_EQ(reply2->keywords.size(), 1u);
  EXPECT_EQ(reply2->keywords[0].segments.size(), 2u);
  EXPECT_EQ(reply2->keywords[0].segments[1].tag, Bytes(32, 10));

  S2ReinitRequest reinit;
  S2UpdateEntry entry;
  entry.token = Bytes(32, 11);
  entry.segment = {Bytes(20, 12), Bytes(32, 13)};
  reinit.entries.push_back(entry);
  auto reinit2 = S2ReinitRequest::FromMessage(reinit.ToMessage());
  ASSERT_TRUE(reinit2.ok());
  EXPECT_EQ(reinit2->entries[0].token, Bytes(32, 11));

  S2ReinitAck ack;
  ack.keywords = 12;
  EXPECT_EQ(S2ReinitAck::FromMessage(ack.ToMessage())->keywords, 12u);
}

TEST(Scheme2MessagesTest, FetchAllRejectsPayload) {
  net::Message msg{kMsgS2FetchAllRequest, B({1})};
  EXPECT_FALSE(S2FetchAllRequest::FromMessage(msg).ok());
}

TEST(MessagesFuzzTest, RandomPayloadsNeverCrashDecoders) {
  DeterministicRandom rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes payload(rng.Next() % 200);
    ASSERT_TRUE(rng.Fill(payload).ok());
    // Feed the same garbage to every decoder under its own type tag.
    (void)S1NonceRequest::FromMessage({kMsgS1NonceRequest, payload});
    (void)S1NonceReply::FromMessage({kMsgS1NonceReply, payload});
    (void)S1UpdateRequest::FromMessage({kMsgS1UpdateRequest, payload});
    (void)S1UpdateAck::FromMessage({kMsgS1UpdateAck, payload});
    (void)S1SearchRequest::FromMessage({kMsgS1SearchRequest, payload});
    (void)S1SearchNonceReply::FromMessage({kMsgS1SearchNonceReply, payload});
    (void)S1SearchFinish::FromMessage({kMsgS1SearchFinish, payload});
    (void)S1SearchResult::FromMessage({kMsgS1SearchResult, payload});
    (void)S2UpdateRequest::FromMessage({kMsgS2UpdateRequest, payload});
    (void)S2UpdateAck::FromMessage({kMsgS2UpdateAck, payload});
    (void)S2SearchRequest::FromMessage({kMsgS2SearchRequest, payload});
    (void)S2SearchResult::FromMessage({kMsgS2SearchResult, payload});
    (void)S2FetchAllReply::FromMessage({kMsgS2FetchAllReply, payload});
    (void)S2ReinitRequest::FromMessage({kMsgS2ReinitRequest, payload});
  }
  SUCCEED();
}

TEST(MessagesFuzzTest, TruncationsOfValidMessagesRejected) {
  S2UpdateRequest msg;
  S2UpdateEntry entry;
  entry.token = Bytes(32, 1);
  entry.segment = {Bytes(60, 2), Bytes(32, 3)};
  msg.entries.push_back(entry);
  msg.documents.push_back(WireDocument{1, Bytes(20, 4)});
  const net::Message full = msg.ToMessage();
  for (size_t keep = 0; keep < full.payload.size(); ++keep) {
    net::Message truncated{
        full.type, Bytes(full.payload.begin(), full.payload.begin() + keep)};
    EXPECT_FALSE(S2UpdateRequest::FromMessage(truncated).ok())
        << "prefix " << keep;
  }
}

}  // namespace
}  // namespace sse::core
