#include "sse/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace sse {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_level.load()) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging

}  // namespace sse
