file(REMOVE_RECURSE
  "CMakeFiles/swp_test.dir/swp_test.cc.o"
  "CMakeFiles/swp_test.dir/swp_test.cc.o.d"
  "swp_test"
  "swp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
