#ifndef SSE_ENGINE_WORKER_POOL_H_
#define SSE_ENGINE_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sse::engine {

/// Fixed-size worker pool executing submitted closures FIFO.
///
/// The engine uses it for scatter requests (one keyword batch split across
/// several shards): sub-requests run on pool threads while the submitting
/// connection thread waits. Tasks must never submit-and-wait on the same
/// pool recursively — the engine's dispatch is the only submitter, and it
/// is one level deep by construction.
class WorkerPool {
 public:
  explicit WorkerPool(size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `task` for asynchronous execution. Returns false (dropping
  /// the task) once Shutdown has begun — callers racing a shutdown are
  /// tearing down anyway, and dropping beats dereferencing a dead pool.
  bool Submit(std::function<void()> task);

  /// Outcome of a bounded TrySubmit: accepted, refused because the queue
  /// already holds `max_queue` tasks (shed — the caller owes the client a
  /// retryable verdict), or refused because the pool is shutting down
  /// (drop silently, the server is going away).
  enum class SubmitResult { kAccepted, kQueueFull, kShutdown };

  /// Like Submit but bounded: refuses with kQueueFull when `max_queue`
  /// (> 0) tasks are already queued, keeping dispatch latency — not just
  /// dispatch memory — bounded under overload. max_queue == 0 means
  /// unbounded (identical to Submit).
  SubmitResult TrySubmit(std::function<void()> task, size_t max_queue);

  /// Drains the queue and joins the workers, leaving the object valid:
  /// concurrent Submit/queue_depth callers see a stopped pool instead of
  /// freed memory. Idempotent; the destructor calls it.
  void Shutdown();

  /// Runs every task (on pool threads) and blocks until all have finished.
  /// With an empty pool (threads == 0) the tasks run inline on the caller.
  void RunBatch(std::vector<std::function<void()>> tasks);

  size_t thread_count() const { return threads_.size(); }

  /// Tasks queued but not yet picked up by a worker; the net layer samples
  /// this at each dispatch into the sse_net_dispatch_queue_depth series.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace sse::engine

#endif  // SSE_ENGINE_WORKER_POOL_H_
