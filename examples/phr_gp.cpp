// PHR⁺ general-practitioner scenario (paper §6, second usage profile).
//
// A GP stores a patient record after every visit and retrieves it before
// the next one — updates and searches interleave, which is exactly the
// workload Scheme 2 is designed for: one-round searches, delta-sized
// updates, and Optimization 2 keeping chain consumption low. The server is
// durable (WAL + snapshot), so a "clinic server restart" mid-day loses
// nothing.
//
//   ./build/examples/phr_gp

#include <cstdio>
#include <cstdlib>

#include "sse/core/durable_server.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"
#include "sse/phr/phr_store.h"
#include "sse/phr/workload.h"

namespace {

template <typename T>
T MustValue(sse::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void MustOk(const sse::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace sse;

  // Clinic setup: durable Scheme 2 server in a scratch directory.
  char dir_template[] = "/tmp/phr_gp_XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "cannot create scratch dir\n");
    return 1;
  }
  std::printf("clinic server directory: %s\n", dir);

  core::SchemeOptions options;
  options.max_documents = 1 << 14;
  options.chain_length = 1 << 12;

  core::Scheme2Server server(options);
  auto durable = MustValue(core::DurableServer::Open(dir, &server),
                           "open durable server");
  net::InProcessChannel channel(durable.get());

  // The GP's key — derived from a passphrase here for demonstration.
  auto key = MustValue(crypto::MasterKey::FromPassphrase(
                           "dr-visser practice key, rotate yearly"),
                       "derive key");
  SystemRandom& rng = SystemRandom::Instance();
  auto client = MustValue(
      core::Scheme2Client::Create(key, options, &channel, &rng), "client");
  phr::PhrStore store(client.get());

  // Morning: three patients visit; record stored after each consult.
  phr::PatientRecord r1;
  r1.patient_id = "p1001";
  r1.name = "emma jansen";
  r1.visit_date = "2026-07-06";
  r1.practitioner = "dr visser";
  r1.conditions = {"hypertension"};
  r1.medications = {"lisinopril"};
  r1.notes = "blood pressure trending down, continue current dosage";
  MustOk(store.AddRecord(r1), "store visit 1");

  phr::PatientRecord r2 = r1;
  r2.patient_id = "p1002";
  r2.name = "daan bakker";
  r2.conditions = {"type 2 diabetes"};
  r2.medications = {"metformin"};
  r2.notes = "hba1c improved, discussed diet adjustments";
  MustOk(store.AddRecord(r2), "store visit 2");

  phr::PatientRecord r3 = r1;
  r3.patient_id = "p1001";
  r3.visit_date = "2026-07-20";
  r3.notes = "follow up: mild headaches, monitoring";
  MustOk(store.AddRecord(r3), "store visit 3");

  // Before p1001's next visit: one-round retrieval of the full history.
  channel.ResetStats();
  auto history = MustValue(store.FindByPatient("p1001"), "lookup p1001");
  std::printf("\np1001 history (%zu records), fetched in %llu round(s):\n",
              history.size(),
              static_cast<unsigned long long>(channel.stats().rounds));
  for (const auto& record : history) {
    std::printf("  %s — %s\n", record.visit_date.c_str(),
                record.notes.c_str());
  }

  // Cross-patient clinical query: who is on metformin?
  auto metformin = MustValue(store.FindByMedication("metformin"),
                             "metformin query");
  std::printf("\npatients on metformin: %zu\n", metformin.size());

  // End of day: checkpoint, then simulate a server restart.
  MustOk(durable->Checkpoint(), "checkpoint");
  std::printf("\ncheckpoint written; simulating server restart...\n");
  core::Scheme2Server recovered(options);
  auto durable2 = MustValue(core::DurableServer::Open(dir, &recovered),
                            "recover server");
  net::InProcessChannel channel2(durable2.get());
  client->set_channel(&channel2);

  auto after = MustValue(store.FindByPatient("p1001"), "post-restart lookup");
  std::printf("after restart, p1001 still has %zu records\n", after.size());

  std::printf(
      "\nchain budget: counter=%u of %u (%u counted updates left before "
      "re-initialization)\n",
      client->counter(), options.chain_length, client->remaining_updates());
  return 0;
}
