#include "sse/crypto/stream_cipher.h"

#include <openssl/evp.h>

#include "sse/crypto/hkdf.h"
#include "sse/crypto/prf.h"

namespace sse::crypto {

namespace {

Result<Bytes> AesCtr(BytesView key, BytesView iv, BytesView input) {
  EVP_CIPHER_CTX* ctx = EVP_CIPHER_CTX_new();
  if (ctx == nullptr) return Status::CryptoError("EVP_CIPHER_CTX_new failed");
  Bytes out(input.size());
  int len = 0;
  Status status = Status::OK();
  if (EVP_EncryptInit_ex(ctx, EVP_aes_256_ctr(), nullptr, key.data(),
                         iv.data()) != 1) {
    status = Status::CryptoError("CTR init failed");
  } else if (!input.empty() &&
             (EVP_EncryptUpdate(ctx, out.data(), &len, input.data(),
                                static_cast<int>(input.size())) != 1 ||
              static_cast<size_t>(len) != input.size())) {
    status = Status::CryptoError("CTR update failed");
  }
  EVP_CIPHER_CTX_free(ctx);
  if (!status.ok()) return status;
  return out;
}

}  // namespace

Result<StreamCipher> StreamCipher::Create(BytesView key) {
  if (key.size() < 16) {
    return Status::InvalidArgument("StreamCipher key must be >= 16 bytes");
  }
  Bytes material;
  SSE_ASSIGN_OR_RETURN(material, HkdfSha256(key, /*salt=*/{},
                                            "sse.stream_cipher.v1", 64));
  Bytes enc_key(material.begin(), material.begin() + 32);
  Bytes mac_key(material.begin() + 32, material.end());
  return StreamCipher(std::move(enc_key), std::move(mac_key));
}

Result<Bytes> StreamCipher::Encrypt(BytesView plaintext,
                                    RandomSource& rng) const {
  Bytes iv(kStreamIvSize);
  SSE_RETURN_IF_ERROR(rng.Fill(iv));
  Bytes ct;
  SSE_ASSIGN_OR_RETURN(ct, AesCtr(enc_key_, iv, plaintext));
  Bytes out = Concat(iv, ct);
  Bytes tag;
  SSE_ASSIGN_OR_RETURN(tag, HmacSha256(mac_key_, out));
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

Result<Bytes> StreamCipher::Decrypt(BytesView ciphertext) const {
  if (ciphertext.size() < kStreamOverhead) {
    return Status::CryptoError("stream ciphertext too short");
  }
  const size_t body_len = ciphertext.size() - kStreamTagSize;
  BytesView body = ciphertext.subspan(0, body_len);
  BytesView tag = ciphertext.subspan(body_len);
  Bytes expected;
  SSE_ASSIGN_OR_RETURN(expected, HmacSha256(mac_key_, body));
  if (!ConstantTimeEqual(expected, tag)) {
    return Status::CryptoError("stream cipher MAC mismatch");
  }
  BytesView iv = body.subspan(0, kStreamIvSize);
  BytesView ct = body.subspan(kStreamIvSize);
  return AesCtr(enc_key_, iv, ct);
}

}  // namespace sse::crypto
