#include "sse/security/stats.h"

#include <gtest/gtest.h>

#include "sse/util/random.h"

namespace sse::security {
namespace {

Bytes UniformSample(size_t n, uint64_t seed) {
  DeterministicRandom rng(seed);
  Bytes data(n);
  (void)rng.Fill(data);
  return data;
}

TEST(StatsTest, MonobitOnKnownInputs) {
  EXPECT_DOUBLE_EQ(MonobitFraction(Bytes(100, 0x00)), 0.0);
  EXPECT_DOUBLE_EQ(MonobitFraction(Bytes(100, 0xff)), 1.0);
  EXPECT_DOUBLE_EQ(MonobitFraction(Bytes(100, 0x0f)), 0.5);
  EXPECT_DOUBLE_EQ(MonobitFraction(Bytes{}), 0.5);
}

TEST(StatsTest, MonobitNearHalfForUniform) {
  EXPECT_NEAR(MonobitFraction(UniformSample(1 << 16, 1)), 0.5, 0.01);
}

TEST(StatsTest, ChiSquareLowForUniformHighForConstant) {
  const Bytes uniform = UniformSample(1 << 16, 2);
  EXPECT_LT(ChiSquareBytes(uniform), 340.0);
  const Bytes constant(1 << 16, 0x41);
  EXPECT_GT(ChiSquareBytes(constant), 1e6);
}

TEST(StatsTest, EntropyBounds) {
  EXPECT_NEAR(ShannonEntropyBytes(UniformSample(1 << 16, 3)), 8.0, 0.05);
  EXPECT_DOUBLE_EQ(ShannonEntropyBytes(Bytes(1000, 7)), 0.0);
  // Two equiprobable symbols -> 1 bit.
  Bytes two;
  for (int i = 0; i < 1000; ++i) two.push_back(i % 2 ? 0xaa : 0x55);
  EXPECT_NEAR(ShannonEntropyBytes(two), 1.0, 0.01);
}

TEST(StatsTest, SerialCorrelationDetectsRuns) {
  EXPECT_NEAR(SerialCorrelationBytes(UniformSample(1 << 16, 4)), 0.0, 0.02);
  // A slowly-varying ramp is highly correlated.
  Bytes ramp(4096);
  for (size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<uint8_t>(i / 16);
  }
  EXPECT_GT(SerialCorrelationBytes(ramp), 0.9);
  EXPECT_DOUBLE_EQ(SerialCorrelationBytes(Bytes{1}), 0.0);
}

TEST(StatsTest, LooksUniformVerdicts) {
  EXPECT_TRUE(LooksUniform(UniformSample(1 << 15, 5)));
  EXPECT_FALSE(LooksUniform(Bytes(1 << 15, 0x00)));
  // ASCII text fails (biased bytes).
  std::string text;
  for (int i = 0; i < 4000; ++i) text += "keyword ";
  EXPECT_FALSE(LooksUniform(StringToBytes(text)));
}

}  // namespace
}  // namespace sse::security
