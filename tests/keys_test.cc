#include "sse/crypto/keys.h"

#include <gtest/gtest.h>

#include "sse/util/random.h"

namespace sse::crypto {
namespace {

TEST(MasterKeyTest, GenerateProducesIndependentParts) {
  DeterministicRandom rng(1);
  auto key = MasterKey::Generate(rng);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->data_key().size(), kMasterKeyPartSize);
  EXPECT_EQ(key->keyword_key().size(), kMasterKeyPartSize);
  EXPECT_NE(key->data_key(), key->keyword_key());
}

TEST(MasterKeyTest, SecurityParameterControlsSize) {
  DeterministicRandom rng(2);
  auto key = MasterKey::Generate(rng, 16);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->data_key().size(), 16u);
  EXPECT_FALSE(MasterKey::Generate(rng, 8).ok());
}

TEST(MasterKeyTest, SerializeRoundTrip) {
  DeterministicRandom rng(3);
  auto key = MasterKey::Generate(rng);
  ASSERT_TRUE(key.ok());
  auto restored = MasterKey::Deserialize(key->Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, *key);
}

TEST(MasterKeyTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(MasterKey::Deserialize(Bytes{}).ok());
  EXPECT_FALSE(MasterKey::Deserialize(Bytes{1, 2, 3}).ok());
  // Trailing bytes rejected.
  DeterministicRandom rng(4);
  auto key = MasterKey::Generate(rng);
  ASSERT_TRUE(key.ok());
  Bytes serialized = key->Serialize();
  serialized.push_back(0);
  EXPECT_FALSE(MasterKey::Deserialize(serialized).ok());
}

TEST(MasterKeyTest, FromPassphraseDeterministic) {
  auto a = MasterKey::FromPassphrase("correct horse battery staple");
  auto b = MasterKey::FromPassphrase("correct horse battery staple");
  auto c = MasterKey::FromPassphrase("correct horse battery stapl3");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE(*a == *c);
  EXPECT_FALSE(MasterKey::FromPassphrase("").ok());
}

}  // namespace
}  // namespace sse::crypto
