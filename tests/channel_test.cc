#include "sse/net/channel.h"

#include <gtest/gtest.h>

namespace sse::net {
namespace {

/// Echo handler: replies with the same payload under type+1; type 99
/// triggers a handler error.
class EchoHandler : public MessageHandler {
 public:
  Result<Message> Handle(const Message& request) override {
    ++calls;
    if (request.type == 99) return Status::Internal("handler exploded");
    return Message{static_cast<uint16_t>(request.type + 1), request.payload};
  }
  int calls = 0;
};

TEST(ChannelTest, CallDeliversAndCounts) {
  EchoHandler handler;
  InProcessChannel channel(&handler);
  Message request{5, Bytes{1, 2, 3}};
  auto reply = channel.Call(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, 6);
  EXPECT_EQ(reply->payload, request.payload);
  EXPECT_EQ(handler.calls, 1);

  const ChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.bytes_sent, request.WireSize());
  EXPECT_EQ(stats.bytes_received, reply->WireSize());
  EXPECT_EQ(stats.calls_by_type.at(5), 1u);
}

TEST(ChannelTest, EachCallIsOneRound) {
  EchoHandler handler;
  InProcessChannel channel(&handler);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(channel.Call(Message{1, {}}).ok());
  }
  EXPECT_EQ(channel.stats().rounds, 10u);
}

TEST(ChannelTest, HandlerErrorSurfacesAsStatus) {
  EchoHandler handler;
  InProcessChannel channel(&handler);
  auto reply = channel.Call(Message{99, {}});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInternal);
  // The error reply still counts as traffic.
  EXPECT_EQ(channel.stats().rounds, 1u);
  EXPECT_GT(channel.stats().bytes_received, 0u);
}

TEST(ChannelTest, ResetStatsClears) {
  EchoHandler handler;
  InProcessChannel channel(&handler);
  ASSERT_TRUE(channel.Call(Message{1, Bytes(100, 0)}).ok());
  channel.ResetStats();
  EXPECT_EQ(channel.stats().rounds, 0u);
  EXPECT_EQ(channel.stats().TotalBytes(), 0u);
  EXPECT_EQ(channel.virtual_time_ms(), 0.0);
}

TEST(ChannelTest, TranscriptRecording) {
  EchoHandler handler;
  InProcessChannel::Options options;
  options.record_transcript = true;
  InProcessChannel channel(&handler, options);
  ASSERT_TRUE(channel.Call(Message{1, Bytes{0xaa}}).ok());
  ASSERT_TRUE(channel.Call(Message{2, Bytes{0xbb}}).ok());
  ASSERT_EQ(channel.transcript().size(), 2u);
  EXPECT_EQ(channel.transcript()[0].request.type, 1);
  EXPECT_EQ(channel.transcript()[0].reply.type, 2);
  EXPECT_EQ(channel.transcript()[1].request.payload, Bytes{0xbb});
  channel.ClearTranscript();
  EXPECT_TRUE(channel.transcript().empty());
}

TEST(ChannelTest, TranscriptOffByDefault) {
  EchoHandler handler;
  InProcessChannel channel(&handler);
  ASSERT_TRUE(channel.Call(Message{1, {}}).ok());
  EXPECT_TRUE(channel.transcript().empty());
}

TEST(ChannelTest, VirtualTimeAccumulatesRttAndBandwidth) {
  EchoHandler handler;
  InProcessChannel::Options options;
  options.rtt_ms = 10.0;
  options.bandwidth_bytes_per_sec = 1000.0;  // 1 byte per ms
  InProcessChannel channel(&handler, options);
  Message request{1, Bytes(94, 0)};  // 100 bytes framed
  ASSERT_TRUE(channel.Call(request).ok());
  // 10ms RTT + 200 bytes total / 1000 Bps = 200 ms.
  EXPECT_NEAR(channel.virtual_time_ms(), 210.0, 1.0);
}

TEST(ChannelTest, StatsToStringMentionsRounds) {
  EchoHandler handler;
  InProcessChannel channel(&handler);
  ASSERT_TRUE(channel.Call(Message{1, {}}).ok());
  EXPECT_NE(channel.stats().ToString().find("rounds=1"), std::string::npos);
}

}  // namespace
}  // namespace sse::net
