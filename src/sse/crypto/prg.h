#ifndef SSE_CRYPTO_PRG_H_
#define SSE_CRYPTO_PRG_H_

#include <cstddef>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::crypto {

/// The paper's pseudo-random generator `G(.)`: expands a short seed into an
/// arbitrarily long pseudo-random string. Scheme 1 masks the posting bitmap
/// as `I(w) ⊕ G(r)` where `r` is a fresh per-keyword nonce, so the masked
/// index stored at the server is indistinguishable from random bits.
///
/// Instantiation: AES-256-CTR keystream keyed with SHA-256(seed) and a zero
/// IV. Each seed is used for at most one mask in the protocols, matching
/// CTR's single-use-per-key requirement.
Result<Bytes> PrgExpand(BytesView seed, size_t out_len);

}  // namespace sse::crypto

#endif  // SSE_CRYPTO_PRG_H_
