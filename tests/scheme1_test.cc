#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_server.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "test_util.h"

namespace sse::core {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::MakeTestSystem;

class Scheme1Test : public ::testing::Test {
 protected:
  Scheme1Test()
      : rng_(1234), sys_(MakeTestSystem(SystemKind::kScheme1, &rng_)) {}

  Scheme1Client* client() {
    return static_cast<Scheme1Client*>(sys_.client.get());
  }
  Scheme1Server* server() {
    return static_cast<Scheme1Server*>(sys_.server.get());
  }

  DeterministicRandom rng_;
  SseSystem sys_;
};

TEST_F(Scheme1Test, StoreAndSearchSingleDocument) {
  Document doc = Document::Make(0, "medical record body", {"diabetes", "gp1"});
  SSE_ASSERT_OK(sys_.client->Store({doc}));
  auto outcome = sys_.client->Search("diabetes");
  SSE_ASSERT_OK_RESULT(outcome);
  ASSERT_EQ(outcome->ids, std::vector<uint64_t>{0});
  ASSERT_EQ(outcome->documents.size(), 1u);
  EXPECT_EQ(BytesToString(outcome->documents[0].second),
            "medical record body");
}

TEST_F(Scheme1Test, SearchUnknownKeywordIsEmpty) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "x", {"a"})}));
  auto outcome = sys_.client->Search("never-stored");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_TRUE(outcome->ids.empty());
  EXPECT_TRUE(outcome->documents.empty());
}

TEST_F(Scheme1Test, MultiDocumentPostings) {
  std::vector<Document> docs;
  for (uint64_t i = 0; i < 20; ++i) {
    std::vector<std::string> kws = {"common"};
    if (i % 2 == 0) kws.push_back("even");
    if (i % 5 == 0) kws.push_back("fifth");
    docs.push_back(Document::Make(i, "doc" + std::to_string(i), kws));
  }
  SSE_ASSERT_OK(sys_.client->Store(docs));

  auto common = sys_.client->Search("common");
  SSE_ASSERT_OK_RESULT(common);
  EXPECT_EQ(common->ids.size(), 20u);

  auto even = sys_.client->Search("even");
  SSE_ASSERT_OK_RESULT(even);
  EXPECT_EQ(even->ids, (std::vector<uint64_t>{0, 2, 4, 6, 8, 10, 12, 14, 16, 18}));

  auto fifth = sys_.client->Search("fifth");
  SSE_ASSERT_OK_RESULT(fifth);
  EXPECT_EQ(fifth->ids, (std::vector<uint64_t>{0, 5, 10, 15}));
}

TEST_F(Scheme1Test, IncrementalUpdatesExtendPostings) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"flu"})}));
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(1, "b", {"flu"})}));
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(2, "c", {"flu", "new"})}));
  auto outcome = sys_.client->Search("flu");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1, 2}));
  auto fresh = sys_.client->Search("new");
  SSE_ASSERT_OK_RESULT(fresh);
  EXPECT_EQ(fresh->ids, std::vector<uint64_t>{2});
}

TEST_F(Scheme1Test, UpdateAfterSearchStillCorrect) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK_RESULT(sys_.client->Search("kw"));
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(1, "b", {"kw"})}));
  auto outcome = sys_.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1}));
}

TEST_F(Scheme1Test, SearchTakesExactlyTwoRounds) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  sys_.channel->ResetStats();
  SSE_ASSERT_OK_RESULT(sys_.client->Search("kw"));
  EXPECT_EQ(sys_.channel->stats().rounds, 2u);  // Table 1: two rounds
}

TEST_F(Scheme1Test, MissSearchTakesOneRound) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  sys_.channel->ResetStats();
  SSE_ASSERT_OK_RESULT(sys_.client->Search("absent"));
  EXPECT_EQ(sys_.channel->stats().rounds, 1u);
}

TEST_F(Scheme1Test, UpdateTakesTwoRounds) {
  sys_.channel->ResetStats();
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"k1", "k2"})}));
  EXPECT_EQ(sys_.channel->stats().rounds, 2u);  // Fig. 1: fetch F(r), apply
}

TEST_F(Scheme1Test, DuplicateIdRejectedBeforeNetwork) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(3, "a", {"x"})}));
  sys_.channel->ResetStats();
  Status s = sys_.client->Store({Document::Make(3, "b", {"x"})});
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(sys_.channel->stats().rounds, 0u);
}

TEST_F(Scheme1Test, IdBeyondCapacityRejected) {
  Status s = sys_.client->Store(
      {Document::Make(FastTestConfig().scheme.max_documents, "a", {"x"})});
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST_F(Scheme1Test, EmptyStoreIsNoOp) {
  sys_.channel->ResetStats();
  SSE_ASSERT_OK(sys_.client->Store({}));
  EXPECT_EQ(sys_.channel->stats().rounds, 0u);
}

TEST_F(Scheme1Test, RemoveDocumentTogglesPosting) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"}),
                                    Document::Make(1, "b", {"kw"})}));
  SSE_ASSERT_OK(client()->RemoveDocument(0, {"kw"}));
  auto outcome = sys_.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{1});
  // Unknown id rejected.
  EXPECT_EQ(client()->RemoveDocument(17, {"kw"}).code(),
            StatusCode::kNotFound);
}

TEST_F(Scheme1Test, FakeUpdateKeepsResultsIdentical) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK(sys_.client->FakeUpdate({"kw", "decoy1", "decoy2"}));
  auto outcome = sys_.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
  // A decoy keyword now exists but matches nothing.
  auto decoy = sys_.client->Search("decoy1");
  SSE_ASSERT_OK_RESULT(decoy);
  EXPECT_TRUE(decoy->ids.empty());
}

TEST_F(Scheme1Test, FakeUpdateRerandomizesServerState) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  Bytes before;
  {
    auto state = server()->SerializeState();
    SSE_ASSERT_OK_RESULT(state);
    before = *state;
  }
  SSE_ASSERT_OK(sys_.client->FakeUpdate({"kw"}));
  auto after = server()->SerializeState();
  SSE_ASSERT_OK_RESULT(after);
  EXPECT_NE(before, *after);  // new mask + new F(r')
}

TEST_F(Scheme1Test, DuplicateKeywordsInFakeUpdateAreHarmless) {
  // Regression: two entries for one keyword inside a single protocol run
  // would both derive from the same stale nonce and corrupt the mask.
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK(sys_.client->FakeUpdate({"kw", "kw", "kw"}));
  auto outcome = sys_.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
}

TEST_F(Scheme1Test, DuplicateKeywordsInRemoveAreHarmless) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"}),
                                    Document::Make(1, "b", {"kw"})}));
  SSE_ASSERT_OK(client()->RemoveDocument(0, {"kw", "kw"}));
  auto outcome = sys_.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{1});  // removed exactly once
}

TEST_F(Scheme1Test, TrapdoorIsDeterministic) {
  auto t1 = client()->Trapdoor("word");
  auto t2 = client()->Trapdoor("word");
  auto t3 = client()->Trapdoor("other");
  SSE_ASSERT_OK_RESULT(t1);
  SSE_ASSERT_OK_RESULT(t2);
  SSE_ASSERT_OK_RESULT(t3);
  EXPECT_EQ(*t1, *t2);
  EXPECT_NE(*t1, *t3);
}

TEST_F(Scheme1Test, ServerCountsUniqueKeywords) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"k1", "k2"}),
                                    Document::Make(1, "b", {"k2", "k3"})}));
  EXPECT_EQ(server()->unique_keywords(), 3u);
  EXPECT_EQ(server()->document_count(), 2u);
}

TEST_F(Scheme1Test, ServerStateSerializationRoundTrip) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "alpha", {"k1"}),
                                    Document::Make(1, "beta", {"k1", "k2"})}));
  auto state = server()->SerializeState();
  SSE_ASSERT_OK_RESULT(state);

  Scheme1Server restored(FastTestConfig().scheme);
  SSE_ASSERT_OK(restored.RestoreState(*state));
  EXPECT_EQ(restored.unique_keywords(), 2u);
  EXPECT_EQ(restored.document_count(), 2u);

  // A fresh client (same master key) can search the restored server.
  net::InProcessChannel channel(&restored);
  DeterministicRandom rng(77);
  auto client = Scheme1Client::Create(sse::testing::TestMasterKey(),
                                      FastTestConfig().scheme, &channel, &rng);
  SSE_ASSERT_OK_RESULT(client);
  auto outcome = (*client)->Search("k1");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1}));
}

TEST_F(Scheme1Test, MalformedMessagesRejected) {
  // Raw garbage of each scheme-1 type must produce clean protocol errors.
  for (uint16_t type :
       {kMsgS1NonceRequest, kMsgS1UpdateRequest, kMsgS1SearchRequest,
        kMsgS1SearchFinish}) {
    auto reply = sys_.channel->Call(net::Message{type, Bytes{0xff, 0xff}});
    EXPECT_FALSE(reply.ok()) << "type " << type;
  }
  // Unknown type rejected too.
  EXPECT_FALSE(sys_.channel->Call(net::Message{0x0199, {}}).ok());
}

TEST_F(Scheme1Test, UpdateForUnknownTokenRejected) {
  S1UpdateRequest req;
  S1UpdateEntry entry;
  entry.token = Bytes(32, 1);
  entry.masked_delta = Bytes((FastTestConfig().scheme.max_documents + 7) / 8, 0);
  entry.new_enc_nonce = Bytes(10, 0);
  entry.is_new = false;  // claims to update an existing token
  req.entries.push_back(entry);
  auto reply = sys_.channel->Call(req.ToMessage());
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kProtocolError);
}

TEST_F(Scheme1Test, WrongSizeBitmapRejected) {
  S1UpdateRequest req;
  S1UpdateEntry entry;
  entry.token = Bytes(32, 1);
  entry.masked_delta = Bytes(3, 0);  // wrong size
  entry.new_enc_nonce = Bytes(10, 0);
  entry.is_new = true;
  req.entries.push_back(entry);
  auto reply = sys_.channel->Call(req.ToMessage());
  EXPECT_FALSE(reply.ok());
}

TEST_F(Scheme1Test, LargeBatchRoundTrip) {
  std::vector<Document> docs;
  for (uint64_t i = 0; i < 200; ++i) {
    docs.push_back(Document::Make(
        i, std::string(50, static_cast<char>('a' + i % 26)),
        {"shared", "kw" + std::to_string(i % 10)}));
  }
  SSE_ASSERT_OK(sys_.client->Store(docs));
  auto outcome = sys_.client->Search("kw3");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids.size(), 20u);
  auto shared = sys_.client->Search("shared");
  SSE_ASSERT_OK_RESULT(shared);
  EXPECT_EQ(shared->ids.size(), 200u);
}

}  // namespace
}  // namespace sse::core
