#include "sse/phr/phr_store.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "sse/phr/workload.h"
#include "test_util.h"

namespace sse::phr {
namespace {

using core::SystemKind;
using sse::testing::MakeTestSystem;

PatientRecord Visit(const std::string& pid, const std::string& condition,
                    const std::string& med, const std::string& notes = "") {
  PatientRecord record;
  record.patient_id = pid;
  record.name = "test patient";
  record.visit_date = "2026-07-01";
  record.practitioner = "dr test";
  record.conditions = {condition};
  record.medications = {med};
  record.notes = notes;
  return record;
}

class PhrStoreTest : public ::testing::TestWithParam<SystemKind> {
 protected:
  PhrStoreTest()
      : rng_(123),
        sys_(MakeTestSystem(GetParam(), &rng_)),
        store_(sys_.client.get()) {}

  DeterministicRandom rng_;
  core::SseSystem sys_;
  PhrStore store_;
};

TEST_P(PhrStoreTest, GpScenario) {
  // The §6 GP flow: retrieve the record before a visit, update afterwards.
  SSE_ASSERT_OK(store_.AddRecord(
      Visit("p1", "hypertension", "lisinopril", "initial consult")));
  SSE_ASSERT_OK(store_.AddRecord(Visit("p2", "asthma", "albuterol")));

  auto before_visit = store_.FindByPatient("p1");
  SSE_ASSERT_OK_RESULT(before_visit);
  ASSERT_EQ(before_visit->size(), 1u);
  EXPECT_EQ((*before_visit)[0].conditions[0], "hypertension");

  // After the visit the GP appends a new record.
  SSE_ASSERT_OK(store_.AddRecord(
      Visit("p1", "hypertension", "lisinopril", "dosage increased")));
  auto after_visit = store_.FindByPatient("p1");
  SSE_ASSERT_OK_RESULT(after_visit);
  EXPECT_EQ(after_visit->size(), 2u);
}

TEST_P(PhrStoreTest, FindByConditionAndMedication) {
  SSE_ASSERT_OK(store_.AddRecords({
      Visit("p1", "hypertension", "lisinopril"),
      Visit("p2", "type 2 diabetes", "metformin"),
      Visit("p3", "hypertension", "amlodipine"),
  }));
  auto hyper = store_.FindByCondition("hypertension");
  SSE_ASSERT_OK_RESULT(hyper);
  EXPECT_EQ(hyper->size(), 2u);
  auto metformin = store_.FindByMedication("metformin");
  SSE_ASSERT_OK_RESULT(metformin);
  ASSERT_EQ(metformin->size(), 1u);
  EXPECT_EQ((*metformin)[0].patient_id, "p2");
}

TEST_P(PhrStoreTest, FreeTextNoteSearch) {
  SSE_ASSERT_OK(store_.AddRecord(
      Visit("p1", "migraine", "sumatriptan", "Recurring Aura symptoms")));
  auto hits = store_.FindByNoteTerm("AURA");  // case-insensitive
  SSE_ASSERT_OK_RESULT(hits);
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].patient_id, "p1");
  auto miss = store_.FindByNoteTerm("absent-term");
  SSE_ASSERT_OK_RESULT(miss);
  EXPECT_TRUE(miss->empty());
}

TEST_P(PhrStoreTest, RecordsRoundTripThroughEncryption) {
  PatientRecord original =
      Visit("p9", "eczema", "hydrocortisone", "mild flareup on arms");
  original.allergies = {"latex"};
  SSE_ASSERT_OK(store_.AddRecord(original));
  auto found = store_.FindByPatient("p9");
  SSE_ASSERT_OK_RESULT(found);
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0].ToText(), original.ToText());
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, PhrStoreTest,
    ::testing::Values(SystemKind::kScheme1, SystemKind::kScheme2,
                      SystemKind::kSwp, SystemKind::kGohZidx,
                      SystemKind::kCgkoSse1),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name(core::SystemKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sse::phr
