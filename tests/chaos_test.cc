// The chaos suite: the exactly-once stack (session stamps + RetryingChannel
// + core::ReplyCache) against a seeded probabilistic fault injector, with
// every search checked against a plaintext in-memory oracle.
//
// The property under test is strong: with faults injected on BOTH
// directions at rates up to 20%, a client driving non-idempotent Scheme 1
// updates through the retry layer must never observe a search result that
// differs from the oracle — no posting toggled off by a double-applied
// XOR delta, no stale reply handed to the protocol layer, no corrupt
// payload parsed. A negative control with the reply cache disabled proves
// the suite can actually detect the poison it hunts.

#include "sse/net/chaos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sse/core/durable_server.h"
#include "sse/core/registry.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_messages.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme3_client.h"
#include "sse/net/batch.h"
#include "sse/net/retry.h"
#include "sse/net/tcp.h"
#include "test_util.h"

namespace sse {
namespace {

using core::Document;
using core::SystemKind;
using net::ChaosChannel;
using net::ChaosOptions;
using net::RetryingChannel;
using net::RetryOptions;
using sse::testing::FastTestConfig;
using sse::testing::TempDir;
using sse::testing::TestMasterKey;

/// Plaintext mirror of everything the client stored: keyword -> ids and
/// id -> content. A search diverging from this mirror is the failure the
/// whole exactly-once stack exists to prevent.
struct Oracle {
  std::map<std::string, std::set<uint64_t>> postings;
  std::map<uint64_t, std::string> contents;

  void Add(const Document& doc, std::string_view text) {
    contents[doc.id] = std::string(text);
    for (const std::string& kw : doc.keywords) postings[kw].insert(doc.id);
  }

  std::vector<uint64_t> Expected(const std::string& keyword) const {
    auto it = postings.find(keyword);
    if (it == postings.end()) return {};
    return std::vector<uint64_t>(it->second.begin(), it->second.end());
  }
};

core::SystemConfig ChaosConfig() {
  core::SystemConfig config = FastTestConfig();
  // The workload interleaves searches and updates, so Scheme 2's counter
  // advances nearly once per store; the chain must outlast the run.
  config.scheme.chain_length = 4096;
  config.engine_shards = 2;  // engine-backed servers carry the reply cache
  return config;
}

/// Equal fault pressure on both directions of the link. `rate` is the
/// per-call probability of each drop; duplicates and corruptions run at
/// half that so every fault family stays active without making the
/// expected attempt count explode.
ChaosOptions SymmetricChaos(uint64_t seed, double rate) {
  ChaosOptions opts;
  opts.seed = seed;
  opts.p_request_drop = rate;
  opts.p_reply_drop = rate;
  opts.p_request_duplicate = rate / 2;
  opts.p_reply_duplicate = rate / 2;
  opts.p_request_corrupt = rate / 2;
  opts.p_reply_corrupt = rate / 2;
  opts.p_delay = rate;
  opts.delay_max_ms = 1.0;
  return opts;
}

/// At 20% drops per direction an attempt fails roughly half the time, so
/// the budget must be deep enough that a full Call failing is effectively
/// impossible (0.5^64); a failed Call would abort the run, not corrupt it.
RetryOptions ChaosRetryOptions() {
  RetryOptions opts;
  opts.max_attempts = 64;
  opts.initial_backoff_ms = 0.01;
  opts.max_backoff_ms = 0.1;
  return opts;
}

/// Same retry budget, but multi-op rounds ride kMsgBatch envelopes with a
/// pipelined in-flight window — the configuration the batched clients use.
RetryOptions BatchedChaosRetryOptions() {
  RetryOptions opts = ChaosRetryOptions();
  opts.batch_size = 8;
  opts.max_inflight = 4;
  return opts;
}

/// Runs `ops` mixed operations (stores of fresh docs + searches) against
/// `client`, mirroring every successful store into `oracle` and checking
/// every search against it. Returns the number of divergent searches —
/// zero unless the exactly-once guarantee broke.
size_t RunMixedOps(core::SseClientInterface* client, DeterministicRandom* rng,
                   Oracle* oracle, uint64_t* next_id, size_t ops,
                   uint64_t max_docs, const std::string& ns = "",
                   bool tolerate_errors = false) {
  const size_t kVocab = 24;
  size_t divergences = 0;
  auto keyword = [&](uint64_t i) { return ns + "kw" + std::to_string(i); };
  for (size_t op = 0; op < ops; ++op) {
    const bool can_store = *next_id + 1 < max_docs;
    if (can_store && rng->Next() % 4 == 0) {
      const uint64_t id = (*next_id)++;
      std::vector<std::string> kws;
      const size_t nkw = 1 + rng->Next() % 3;
      for (size_t k = 0; k < nkw; ++k) {
        const std::string kw = keyword(rng->Next() % kVocab);
        if (std::find(kws.begin(), kws.end(), kw) == kws.end())
          kws.push_back(kw);
      }
      const std::string text = ns + "doc-" + std::to_string(id);
      const Document doc = Document::Make(id, text, kws);
      const Status stored = client->Store({doc});
      if (!tolerate_errors) {
        EXPECT_TRUE(stored.ok()) << "op " << op << ": " << stored.ToString();
      }
      if (stored.ok()) oracle->Add(doc, text);
    } else {
      const std::string kw = keyword(rng->Next() % kVocab);
      auto outcome = client->Search(kw);
      if (!tolerate_errors) {
        EXPECT_TRUE(outcome.ok())
            << "op " << op << ": " << outcome.status().ToString();
      }
      if (!outcome.ok()) continue;
      const std::vector<uint64_t> expected = oracle->Expected(kw);
      if (outcome->ids != expected) {
        ++divergences;
        continue;
      }
      for (const auto& [id, content] : outcome->documents) {
        if (BytesToString(content) != oracle->contents[id]) ++divergences;
      }
    }
  }
  return divergences;
}

/// Client stack for one chaotic run: engine-backed server (reply cache on)
/// behind InProcess -> Chaos -> Retrying, driven by a scheme client.
template <typename ClientT>
struct ChaosRig {
  ChaosRig(SystemKind kind, const core::SystemConfig& config,
           const ChaosOptions& chaos_opts, uint64_t seed,
           const RetryOptions& retry_opts = ChaosRetryOptions())
      : rng(seed),
        sys(sse::testing::MakeTestSystem(kind, &rng, config)),
        chaos(sys.channel.get(), chaos_opts),
        retry(&chaos, retry_opts, &rng) {
    chaos.set_sleep_fn([](double) {});  // virtual delays: no wall-clock cost
    retry.set_sleep_fn([](double) {});
    auto created =
        ClientT::Create(TestMasterKey(), config.scheme, &retry, &rng);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    client = std::move(created).value();
  }

  DeterministicRandom rng;
  core::SseSystem sys;  // provides the engine server + inner channel
  ChaosChannel chaos;
  RetryingChannel retry;
  std::unique_ptr<ClientT> client;
};

TEST(ChaosTest, Scheme1SurvivesHeavyChaosWithZeroDivergence) {
  // Scheme 1 is the dangerous one: its XOR-delta update is its own inverse,
  // so any blind re-application erases the posting it meant to add.
  const core::SystemConfig config = ChaosConfig();
  ChaosRig<core::Scheme1Client> rig(SystemKind::kScheme1, config,
                                    SymmetricChaos(/*seed=*/11, 0.20),
                                    /*seed=*/11);
  Oracle oracle;
  uint64_t next_id = 0;
  DeterministicRandom workload(42);
  const size_t divergences =
      RunMixedOps(rig.client.get(), &workload, &oracle, &next_id,
                  /*ops=*/1000, config.scheme.max_documents);
  EXPECT_EQ(divergences, 0u);
  // The run actually exercised the machinery it certifies.
  EXPECT_GT(rig.chaos.chaos_stats().total_injected(), 100u);
  EXPECT_GT(rig.retry.retry_stats().retries, 50u);
  ASSERT_NE(rig.sys.server, nullptr);
}

TEST(ChaosTest, Scheme2SurvivesHeavyChaosWithZeroDivergence) {
  const core::SystemConfig config = ChaosConfig();
  ChaosRig<core::Scheme2Client> rig(SystemKind::kScheme2, config,
                                    SymmetricChaos(/*seed=*/13, 0.20),
                                    /*seed=*/13);
  Oracle oracle;
  uint64_t next_id = 0;
  DeterministicRandom workload(43);
  const size_t divergences =
      RunMixedOps(rig.client.get(), &workload, &oracle, &next_id,
                  /*ops=*/1000, config.scheme.max_documents);
  EXPECT_EQ(divergences, 0u);
  EXPECT_GT(rig.chaos.chaos_stats().total_injected(), 100u);
}

TEST(ChaosTest, Scheme3SurvivesHeavyChaosWithZeroDivergence) {
  // Scheme 3's hazard is the duplicated update: a chain key addresses
  // exactly one entry, so a re-delivered update must overwrite in place
  // (same bytes) rather than shadow or double-count a posting.
  const core::SystemConfig config = ChaosConfig();
  ChaosRig<core::Scheme3Client> rig(SystemKind::kScheme3, config,
                                    SymmetricChaos(/*seed=*/31, 0.20),
                                    /*seed=*/31);
  Oracle oracle;
  uint64_t next_id = 0;
  DeterministicRandom workload(44);
  const size_t divergences =
      RunMixedOps(rig.client.get(), &workload, &oracle, &next_id,
                  /*ops=*/1000, config.scheme.max_documents);
  EXPECT_EQ(divergences, 0u);
  EXPECT_GT(rig.chaos.chaos_stats().total_injected(), 100u);
  EXPECT_GT(rig.retry.retry_stats().retries, 50u);
}

TEST(ChaosTest, Scheme1BatchedPipelineSurvivesHeavyChaos) {
  // Same 20% fault pressure, but with batch_ops on: multi-keyword rounds
  // travel as kMsgBatch envelopes through MultiCall's pipelined window, so
  // chaos now hits envelopes (retried per sub-op with stable seqs) instead
  // of monolithic frames. Exactly-once must hold at sub-op granularity.
  core::SystemConfig config = ChaosConfig();
  config.scheme.batch_ops = true;
  ChaosRig<core::Scheme1Client> rig(SystemKind::kScheme1, config,
                                    SymmetricChaos(/*seed=*/23, 0.20),
                                    /*seed=*/23, BatchedChaosRetryOptions());
  Oracle oracle;
  uint64_t next_id = 0;
  DeterministicRandom workload(46);
  const size_t divergences =
      RunMixedOps(rig.client.get(), &workload, &oracle, &next_id,
                  /*ops=*/600, config.scheme.max_documents);
  EXPECT_EQ(divergences, 0u);
  // The batch path actually carried the run.
  EXPECT_GT(rig.retry.retry_stats().batches, 0u);
  EXPECT_GT(rig.chaos.chaos_stats().total_injected(), 100u);
  // A pipelined multi-keyword search over the chaotic link agrees with the
  // oracle keyword by keyword.
  std::vector<std::string> kws;
  for (uint64_t i = 0; i < 8; ++i) kws.push_back("kw" + std::to_string(i));
  auto multi = rig.client->MultiSearch(kws);
  SSE_ASSERT_OK_RESULT(multi);
  ASSERT_EQ(multi->size(), kws.size());
  for (size_t i = 0; i < kws.size(); ++i) {
    EXPECT_EQ((*multi)[i].ids, oracle.Expected(kws[i])) << kws[i];
  }
}

TEST(ChaosTest, Scheme2BatchedPipelineSurvivesHeavyChaos) {
  core::SystemConfig config = ChaosConfig();
  config.scheme.batch_ops = true;
  ChaosRig<core::Scheme2Client> rig(SystemKind::kScheme2, config,
                                    SymmetricChaos(/*seed=*/27, 0.20),
                                    /*seed=*/27, BatchedChaosRetryOptions());
  Oracle oracle;
  uint64_t next_id = 0;
  DeterministicRandom workload(47);
  const size_t divergences =
      RunMixedOps(rig.client.get(), &workload, &oracle, &next_id,
                  /*ops=*/600, config.scheme.max_documents);
  EXPECT_EQ(divergences, 0u);
  EXPECT_GT(rig.retry.retry_stats().batches, 0u);
  EXPECT_GT(rig.chaos.chaos_stats().total_injected(), 100u);
}

TEST(ChaosTest, Scheme3BatchedPipelineSurvivesHeavyChaos) {
  core::SystemConfig config = ChaosConfig();
  config.scheme.batch_ops = true;
  ChaosRig<core::Scheme3Client> rig(SystemKind::kScheme3, config,
                                    SymmetricChaos(/*seed=*/37, 0.20),
                                    /*seed=*/37, BatchedChaosRetryOptions());
  Oracle oracle;
  uint64_t next_id = 0;
  DeterministicRandom workload(48);
  const size_t divergences =
      RunMixedOps(rig.client.get(), &workload, &oracle, &next_id,
                  /*ops=*/600, config.scheme.max_documents);
  EXPECT_EQ(divergences, 0u);
  EXPECT_GT(rig.retry.retry_stats().batches, 0u);
  EXPECT_GT(rig.chaos.chaos_stats().total_injected(), 100u);
}

TEST(ChaosTest, SeedSweepStaysCleanAtModerateRates) {
  // Several independent fault schedules at varied rates; any one seed
  // reproducing a divergence replays exactly from this table.
  const core::SystemConfig config = ChaosConfig();
  for (uint64_t seed : {101u, 202u, 303u}) {
    const double rate = 0.05 * static_cast<double>(1 + seed % 3);
    ChaosRig<core::Scheme2Client> rig(SystemKind::kScheme2, config,
                                      SymmetricChaos(seed, rate), seed);
    Oracle oracle;
    uint64_t next_id = 0;
    DeterministicRandom workload(seed ^ 0xabcd);
    const size_t divergences =
        RunMixedOps(rig.client.get(), &workload, &oracle, &next_id,
                    /*ops=*/200, config.scheme.max_documents);
    EXPECT_EQ(divergences, 0u) << "seed " << seed << " rate " << rate;
  }
}

TEST(ChaosTest, NegativeControlDedupOffScheme1Diverges) {
  // Same machinery, reply cache disabled, reply drops only: the retry
  // layer re-sends an already-applied update. For a keyword's first update
  // the server rejects the replay ("token already exists") and the store
  // errors out; for later updates it silently re-applies the XOR delta and
  // postings toggle off. Either way searches drift from the oracle. If
  // this control ever stops diverging the suite has lost its teeth.
  core::SystemConfig config = ChaosConfig();
  config.engine_reply_cache = false;
  ChaosOptions chaos_opts;
  chaos_opts.seed = 7;
  chaos_opts.p_reply_drop = 0.3;  // ambiguous acks on updates, nothing else
  ChaosRig<core::Scheme1Client> rig(SystemKind::kScheme1, config, chaos_opts,
                                    /*seed=*/7);
  Oracle oracle;
  uint64_t next_id = 0;
  DeterministicRandom workload(99);
  const size_t divergences =
      RunMixedOps(rig.client.get(), &workload, &oracle, &next_id,
                  /*ops=*/300, config.scheme.max_documents, /*ns=*/"",
                  /*tolerate_errors=*/true);
  EXPECT_GT(divergences, 0u);
}

/// Engine + DurableServer pair that can be crash-recovered in place: Crash()
/// drops both objects without a checkpoint and reopens from snapshot + WAL,
/// exactly as a process restart would.
struct CrashableServer {
  explicit CrashableServer(const core::SystemConfig& config)
      : config(config) {
    Boot();
  }

  void Boot() {
    core::SystemConfig cfg = config;
    auto built = core::CreateSystem(SystemKind::kScheme1, TestMasterKey(),
                                    cfg, &boot_rng);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    engine_owner = std::move(built->server);
    auto opened = core::DurableServer::Open(dir.path(), engine_owner.get());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    durable = std::move(opened).value();
  }

  void Crash() {
    durable.reset();
    engine_owner.reset();
    Boot();
  }

  TempDir dir;
  core::SystemConfig config;
  DeterministicRandom boot_rng{1};
  std::unique_ptr<core::PersistableHandler> engine_owner;
  std::unique_ptr<core::DurableServer> durable;
};

/// Handler indirection so channels built once keep working across Crash().
class RedirectingHandler : public net::MessageHandler {
 public:
  explicit RedirectingHandler(CrashableServer* server) : server_(server) {}
  Result<net::Message> Handle(const net::Message& request) override {
    return server_->durable->Handle(request);
  }

 private:
  CrashableServer* server_;
};

/// Forwards to the inner channel; on the first request of the armed type it
/// lets the server process the call, then crash-recovers the server and
/// reports the reply lost — the tightest version of "crash mid-update".
class CrashAfterApplyChannel : public net::Channel {
 public:
  CrashAfterApplyChannel(net::Channel* inner, CrashableServer* server)
      : inner_(inner), server_(server) {}

  void ArmForType(uint16_t type) { armed_type_ = type; }

  /// Arms on the first request matching `pred` — for targeting a batch
  /// envelope by its sub-op contents rather than the envelope type alone.
  void ArmWhen(std::function<bool(const net::Message&)> pred) {
    armed_pred_ = std::move(pred);
  }

  Result<net::Message> Call(const net::Message& request) override {
    Result<net::Message> reply = inner_->Call(request);
    const bool hit = (armed_type_ != 0 && request.type == armed_type_) ||
                     (armed_pred_ && armed_pred_(request));
    if (hit) {
      armed_type_ = 0;
      armed_pred_ = nullptr;
      server_->Crash();
      return Status::IoError("crash: server failed over before the reply");
    }
    return reply;
  }

  void Reset() override { inner_->Reset(); }
  const net::ChannelStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  net::Channel* inner_;
  CrashableServer* server_;
  uint16_t armed_type_ = 0;
  std::function<bool(const net::Message&)> armed_pred_;
};

TEST(ChaosTest, CrashRecoveryMidUpdateDedupsTheRetry) {
  // The update is applied and journaled, the server dies before replying,
  // and the client's automatic retry lands on the recovered server. The
  // WAL replay must have rebuilt the reply cache so the retry is served
  // the recorded reply instead of re-toggling the posting.
  core::SystemConfig config = ChaosConfig();
  CrashableServer server(config);
  RedirectingHandler redirect(&server);
  net::InProcessChannel base(&redirect);
  CrashAfterApplyChannel crasher(&base, &server);
  DeterministicRandom rng(3);
  RetryingChannel retry(&crasher, ChaosRetryOptions(), &rng);
  retry.set_sleep_fn([](double) {});
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), config.scheme, &retry, &rng);
  SSE_ASSERT_OK_RESULT(client);

  crasher.ArmForType(core::kMsgS1UpdateRequest);
  SSE_ASSERT_OK((*client)->Store({Document::Make(0, "survivor", {"kw"})}));
  // Exactly one application: the posting is present, not toggled back off.
  auto outcome = (*client)->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
  EXPECT_EQ(BytesToString(outcome->documents[0].second), "survivor");
  // The recovered cache, not a fresh execution, answered the retry.
  ASSERT_NE(server.durable->reply_cache(), nullptr);
  EXPECT_GE(server.durable->reply_cache()->hits(), 1u);
}

TEST(ChaosTest, CrashRecoveryMidBatchDedupsEverySubOp) {
  // Crash-mid-batch: the server applies and journals every sub-op of a
  // multi-keyword update envelope, dies before replying, and the client's
  // retry re-sends the same op seqs in a fresh envelope against the
  // recovered server. WAL replay rebuilt the reply cache per sub-op, so
  // each retried op is served its recorded reply — applied exactly once,
  // no XOR delta toggled back off.
  core::SystemConfig config = ChaosConfig();
  config.scheme.batch_ops = true;
  CrashableServer server(config);
  RedirectingHandler redirect(&server);
  net::InProcessChannel base(&redirect);
  CrashAfterApplyChannel crasher(&base, &server);
  DeterministicRandom rng(5);
  RetryingChannel retry(&crasher, BatchedChaosRetryOptions(), &rng);
  retry.set_sleep_fn([](double) {});
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), config.scheme, &retry, &rng);
  SSE_ASSERT_OK_RESULT(client);

  // Target the update-round envelope (mutating sub-ops), not the read-only
  // nonce round that precedes it.
  crasher.ArmWhen([](const net::Message& request) {
    if (request.type != net::kMsgBatch) return false;
    auto batch = net::BatchRequest::FromMessage(request);
    return batch.ok() && !batch->ops.empty() &&
           batch->ops[0].type == core::kMsgS1UpdateRequest;
  });
  SSE_ASSERT_OK((*client)->Store(
      {Document::Make(0, "batch-survivor", {"ka", "kb", "kc"})}));
  // Every posting present exactly once across all three sub-ops.
  for (const char* kw : {"ka", "kb", "kc"}) {
    auto outcome = (*client)->Search(kw);
    SSE_ASSERT_OK_RESULT(outcome);
    EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0}) << kw;
  }
  EXPECT_EQ(BytesToString((*client)->Search("ka")->documents[0].second),
            "batch-survivor");
  // The recovered cache — not a fresh execution — answered each retried
  // sub-op in the envelope.
  ASSERT_NE(server.durable->reply_cache(), nullptr);
  EXPECT_GE(server.durable->reply_cache()->hits(), 3u);
}

TEST(ChaosTest, ChaosWithPeriodicCrashRecoveryStaysConsistent) {
  // Full stack under fire: chaotic link AND a server that loses its
  // process every 100 operations, recovering from snapshot + WAL. The
  // oracle must never notice.
  core::SystemConfig config = ChaosConfig();
  CrashableServer server(config);
  RedirectingHandler redirect(&server);
  net::InProcessChannel base(&redirect);
  ChaosChannel chaos(&base, SymmetricChaos(/*seed=*/17, 0.10));
  chaos.set_sleep_fn([](double) {});
  DeterministicRandom rng(17);
  RetryingChannel retry(&chaos, ChaosRetryOptions(), &rng);
  retry.set_sleep_fn([](double) {});
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), config.scheme, &retry, &rng);
  SSE_ASSERT_OK_RESULT(client);

  Oracle oracle;
  uint64_t next_id = 0;
  DeterministicRandom workload(55);
  size_t divergences = 0;
  for (int round = 0; round < 4; ++round) {
    divergences +=
        RunMixedOps(client->get(), &workload, &oracle, &next_id,
                    /*ops=*/100, config.scheme.max_documents);
    if (round == 1) SSE_ASSERT_OK(server.durable->Checkpoint());
    server.Crash();       // recover from snapshot + WAL, no checkpoint
    chaos.Reset();        // a restart also drops in-flight frames
  }
  EXPECT_EQ(divergences, 0u);
  EXPECT_GT(chaos.chaos_stats().total_injected(), 20u);
}

TEST(ChaosTest, ConcurrentClientsOverTcpUnderChaos) {
  // TSan target: several client threads, each with its own chaotic link
  // and retry layer, hammering one sharded engine over real sockets. The
  // per-thread oracles use disjoint ids and keyword namespaces, so any
  // cross-thread interference shows up as a divergence.
  core::SystemConfig config = ChaosConfig();
  config.engine_shards = 4;
  DeterministicRandom rng(29);
  core::SseSystem sys =
      sse::testing::MakeTestSystem(SystemKind::kScheme2, &rng, config);
  net::TcpServer::Options server_opts;
  server_opts.serialize_handler = false;  // the engine is thread-safe
  auto server = net::TcpServer::Start(sys.server.get(), 0, server_opts);
  SSE_ASSERT_OK_RESULT(server);

  constexpr int kThreads = 3;
  constexpr size_t kOpsEach = 120;
  constexpr uint64_t kIdsEach = 64;
  std::vector<std::thread> threads;
  std::vector<size_t> divergences(kThreads, size_t{0});
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto tcp = net::TcpChannel::Connect((*server)->port());
      ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
      ChaosChannel chaos(tcp->get(),
                         SymmetricChaos(100 + static_cast<uint64_t>(t), 0.15));
      DeterministicRandom thread_rng(200 + static_cast<uint64_t>(t));
      RetryingChannel retry(&chaos, ChaosRetryOptions(), &thread_rng);
      auto client = core::Scheme2Client::Create(TestMasterKey(), config.scheme,
                                                &retry, &thread_rng);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      Oracle oracle;
      uint64_t next_id = static_cast<uint64_t>(t) * kIdsEach;
      DeterministicRandom workload(300 + static_cast<uint64_t>(t));
      divergences[static_cast<size_t>(t)] = RunMixedOps(
          client->get(), &workload, &oracle, &next_id, kOpsEach,
          static_cast<uint64_t>(t) * kIdsEach + kIdsEach,
          /*ns=*/"t" + std::to_string(t) + ".");
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(divergences[static_cast<size_t>(t)], 0u) << "thread " << t;
  }
}

}  // namespace
}  // namespace sse
