#include "sse/repl/failover_channel.h"

#include <algorithm>
#include <cstdlib>

#include "sse/net/admission.h"
#include "sse/obs/events.h"
#include "sse/obs/metrics_registry.h"
#include "sse/obs/stats_rpc.h"

namespace sse::repl {

namespace {

obs::MetricsRegistry::Counter* FailoverCounter() {
  static obs::MetricsRegistry::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(
          "sse_client_failovers_total",
          "times the client demoted its cached primary and re-probed");
  return counter;
}

obs::MetricsRegistry::Counter* BreakerOpenCounter() {
  static obs::MetricsRegistry::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(
          "sse_client_breaker_opens_total",
          "times a client endpoint circuit breaker opened");
  return counter;
}

}  // namespace

bool FindMetricValue(const std::string& prometheus_text,
                     const std::string& name, double* value) {
  size_t pos = 0;
  while ((pos = prometheus_text.find(name, pos)) != std::string::npos) {
    const size_t after = pos + name.size();
    const bool line_start = pos == 0 || prometheus_text[pos - 1] == '\n';
    if (line_start && after < prometheus_text.size() &&
        (prometheus_text[after] == ' ' || prometheus_text[after] == '\t')) {
      *value = std::strtod(prometheus_text.c_str() + after + 1, nullptr);
      return true;
    }
    pos = after;
  }
  return false;
}

FailoverChannel::FailoverChannel(std::vector<ReplSender::Endpoint> endpoints)
    : FailoverChannel(std::move(endpoints), Options()) {}

FailoverChannel::FailoverChannel(std::vector<ReplSender::Endpoint> endpoints,
                                 Options options)
    : options_(std::move(options)) {
  nodes_.reserve(endpoints.size());
  for (ReplSender::Endpoint& endpoint : endpoints) {
    Node node;
    node.endpoint = std::move(endpoint);
    nodes_.push_back(std::move(node));
  }
}

FailoverChannel::~FailoverChannel() = default;

net::TcpChannel* FailoverChannel::Ensure(Node* node) {
  if (node->channel != nullptr) return node->channel.get();
  if (node->backoff_ms != 0 &&
      std::chrono::steady_clock::now() < node->next_dial) {
    return nullptr;
  }
  Result<std::unique_ptr<net::TcpChannel>> connected = net::TcpChannel::Connect(
      node->endpoint.port, node->endpoint.host, options_.channel);
  if (!connected.ok()) {
    MarkDialFailure(node);
    return nullptr;
  }
  node->channel = std::move(connected).value();
  node->backoff_ms = 0;
  if (io_deadline_ms_ > 0.0) node->channel->SetIoDeadlineMs(io_deadline_ms_);
  return node->channel.get();
}

void FailoverChannel::SetIoDeadlineMs(double ms) {
  io_deadline_ms_ = ms;
  for (Node& node : nodes_) {
    if (node.channel != nullptr) node.channel->SetIoDeadlineMs(ms);
  }
}

void FailoverChannel::MarkDialFailure(Node* node) {
  node->backoff_ms = node->backoff_ms == 0
                         ? options_.backoff_initial_ms
                         : std::min(node->backoff_ms * 2, options_.backoff_max_ms);
  node->next_dial = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(node->backoff_ms);
}

int FailoverChannel::FindPrimary() {
  const net::Message probe = obs::StatsRequest{}.ToMessage();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    net::TcpChannel* channel = Ensure(&nodes_[i]);
    if (channel == nullptr) continue;
    Result<net::Message> reply = channel->Call(probe);
    if (!reply.ok()) {
      nodes_[i].channel.reset();
      MarkDialFailure(&nodes_[i]);
      continue;
    }
    Result<obs::StatsReply> stats = obs::StatsReply::FromMessage(*reply);
    if (!stats.ok()) continue;
    double is_primary = 0;
    if (FindMetricValue(stats->prometheus_text, "sse_repl_is_primary",
                        &is_primary) &&
        is_primary != 0) {
      primary_ = static_cast<int>(i);
      return primary_;
    }
  }
  return -1;
}

void FailoverChannel::DemotePrimary() {
  if (primary_ < 0) return;
  const Node& old = nodes_[static_cast<size_t>(primary_)];
  obs::EventJournal::Global().Emit(
      obs::EventKind::kFailover,
      "client demoted cached primary " + old.endpoint.host + ":" +
          std::to_string(old.endpoint.port) + "; re-probing the cluster");
  primary_ = -1;
  ++failovers_;
  FailoverCounter()->Add();
}

bool FailoverChannel::BreakerAllows(Node* node) {
  if (options_.breaker_failure_threshold <= 0) return true;
  switch (node->breaker) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // Channels are single-caller, so at most one half-open probe can be
      // in flight; RecordOutcome settles the state either way.
      return true;
    case BreakerState::kOpen:
      if (std::chrono::steady_clock::now() < node->breaker_until) {
        return false;
      }
      node->breaker = BreakerState::kHalfOpen;
      return true;
  }
  return true;
}

void FailoverChannel::OpenBreaker(Node* node, uint64_t open_ms) {
  node->breaker = BreakerState::kOpen;
  node->breaker_until = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(open_ms);
  ++breaker_opens_;
  BreakerOpenCounter()->Add();
  obs::EventJournal::Global().Emit(
      obs::EventKind::kBreakerOpen,
      "breaker open for " + node->endpoint.host + ":" +
          std::to_string(node->endpoint.port) + " (" +
          std::to_string(open_ms) + " ms)");
}

void FailoverChannel::RecordOutcome(Node* node, const Status& status) {
  if (options_.breaker_failure_threshold <= 0) return;
  if (status.ok()) {
    if (node->breaker == BreakerState::kHalfOpen) {
      obs::EventJournal::Global().Emit(
          obs::EventKind::kBreakerClose,
          "breaker closed for " + node->endpoint.host + ":" +
              std::to_string(node->endpoint.port) +
              " after a successful half-open probe");
    }
    node->breaker = BreakerState::kClosed;
    node->consecutive_failures = 0;
    return;
  }
  if (status.code() == StatusCode::kResourceExhausted) {
    // The server shed us: it is alive but wants the traffic paced. Open
    // immediately for exactly as long as it asked (its retry-after hint).
    uint32_t hint_ms = 0;
    const uint64_t open_ms = net::RetryAfterHintMs(status, &hint_ms)
                                 ? hint_ms
                                 : options_.breaker_open_ms;
    OpenBreaker(node, std::max<uint64_t>(1, open_ms));
    return;
  }
  if (!status.IsRetryable()) return;  // application answer, not node health
  node->consecutive_failures += 1;
  if (node->breaker == BreakerState::kHalfOpen ||
      node->consecutive_failures >= options_.breaker_failure_threshold) {
    OpenBreaker(node, options_.breaker_open_ms);
    node->consecutive_failures = 0;
  }
}

FailoverChannel::Node* FailoverChannel::Route(const net::Message& request,
                                              Status* why) {
  const bool mutating =
      options_.is_mutating ? options_.is_mutating(request) : true;
  if (!mutating && options_.read_from_followers && !nodes_.empty()) {
    // Stale-tolerant read: any reachable endpoint will do; spread them.
    for (size_t step = 0; step < nodes_.size(); ++step) {
      Node* node = &nodes_[(read_rr_ + step) % nodes_.size()];
      if (!BreakerAllows(node)) continue;
      if (Ensure(node) != nullptr) {
        read_rr_ = (read_rr_ + step + 1) % nodes_.size();
        return node;
      }
    }
    *why = Status::Unavailable("no endpoint reachable for read");
    return nullptr;
  }
  int index = primary_;
  if (index < 0) index = FindPrimary();
  if (index < 0) {
    *why = Status::Unavailable("no primary found among endpoints");
    return nullptr;
  }
  Node* node = &nodes_[index];
  if (!BreakerAllows(node)) {
    // An open breaker is NOT a failover: the primary is alive and shedding.
    // Refuse locally with the time left so the retry layer sleeps it off.
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        node->breaker_until - std::chrono::steady_clock::now());
    *why = net::WithRetryAfter(
        Status::ResourceExhausted("endpoint circuit breaker open"),
        static_cast<uint32_t>(std::max<int64_t>(1, left.count())));
    return nullptr;
  }
  if (Ensure(node) == nullptr) {
    DemotePrimary();
    *why = Status::Unavailable("cached primary unreachable");
    return nullptr;
  }
  return node;
}

Result<net::Message> FailoverChannel::Call(const net::Message& request) {
  Status why = Status::OK();
  Node* node = Route(request, &why);
  if (node == nullptr) return why;
  const bool was_primary = primary_ >= 0 && node == &nodes_[primary_];
  Result<net::Message> reply = node->channel->Call(request);
  RecordOutcome(node, reply.ok() ? Status::OK() : reply.status());
  if (!reply.ok() && was_primary) {
    // A dead transport or an explicit "not primary" both mean the role
    // cache is stale; anything non-retryable is the application's answer.
    // A shed (RESOURCE_EXHAUSTED) is neither: the primary is healthy,
    // demoting it would only add probe traffic to an overloaded node —
    // the breaker above paces us instead.
    if (reply.status().IsRetryable()) DemotePrimary();
  }
  return reply;
}

net::Channel::CallId FailoverChannel::Submit(const net::Message& request) {
  const CallId id = next_call_id_++;
  Status why = Status::OK();
  Node* node = Route(request, &why);
  if (node == nullptr) {
    // Routing failed now; Await() hands the failure back.
    buffered_.emplace(id, Result<net::Message>(why));
    return id;
  }
  const size_t index = static_cast<size_t>(node - nodes_.data());
  pending_.emplace(id, std::make_pair(index, node->channel->Submit(request)));
  return id;
}

Result<net::Message> FailoverChannel::Await(CallId id) {
  auto buffered = buffered_.find(id);
  if (buffered != buffered_.end()) {
    Result<net::Message> out = std::move(buffered->second);
    buffered_.erase(buffered);
    return out;
  }
  auto pending = pending_.find(id);
  if (pending == pending_.end()) {
    return Status::InvalidArgument("unknown call id");
  }
  const auto [index, inner_id] = pending->second;
  pending_.erase(pending);
  Node* node = &nodes_[index];
  if (node->channel == nullptr) {
    return Status::Unavailable("endpoint channel dropped while pending");
  }
  Result<net::Message> reply = node->channel->Await(inner_id);
  RecordOutcome(node, reply.ok() ? Status::OK() : reply.status());
  if (!reply.ok() && static_cast<int>(index) == primary_ &&
      reply.status().IsRetryable()) {
    DemotePrimary();
  }
  return reply;
}

size_t FailoverChannel::pending_calls() const {
  return pending_.size() + buffered_.size();
}

void FailoverChannel::Reset() {
  for (Node& node : nodes_) {
    if (node.channel != nullptr) node.channel->Reset();
    // Let the next dial try immediately: a Reset means the caller is
    // about to retry and stale backoff gates would starve it.
    node.backoff_ms = 0;
  }
  if (primary_ >= 0) DemotePrimary();
}

const net::ChannelStats& FailoverChannel::stats() const {
  merged_stats_.Clear();
  for (const Node& node : nodes_) {
    if (node.channel == nullptr) continue;
    const net::ChannelStats& s = node.channel->stats();
    merged_stats_.rounds += s.rounds;
    merged_stats_.bytes_sent += s.bytes_sent;
    merged_stats_.bytes_received += s.bytes_received;
    merged_stats_.frames_sent += s.frames_sent;
    merged_stats_.frames_received += s.frames_received;
    merged_stats_.injected_faults += s.injected_faults;
    for (const auto& [type, count] : s.calls_by_type) {
      merged_stats_.calls_by_type[type] += count;
    }
  }
  return merged_stats_;
}

void FailoverChannel::ResetStats() {
  for (Node& node : nodes_) {
    if (node.channel != nullptr) node.channel->ResetStats();
  }
}

std::vector<FailoverChannel::BreakerState> FailoverChannel::breaker_states()
    const {
  std::vector<BreakerState> out;
  out.reserve(nodes_.size());
  for (const Node& node : nodes_) out.push_back(node.breaker);
  return out;
}

std::vector<std::string> FailoverChannel::endpoints() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    out.push_back(node.endpoint.host + ":" +
                  std::to_string(node.endpoint.port));
  }
  return out;
}

}  // namespace sse::repl
