#ifndef SSE_BASELINES_CGKO_SSE1_H_
#define SSE_BASELINES_CGKO_SSE1_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sse/core/persistable.h"
#include "sse/core/token_map.h"
#include "sse/core/types.h"
#include "sse/core/wire_common.h"
#include "sse/crypto/aead.h"
#include "sse/crypto/keys.h"
#include "sse/crypto/prf.h"
#include "sse/net/channel.h"
#include "sse/storage/document_store.h"

namespace sse::baselines {

/// Baseline: Curtmola–Garay–Kamara–Ostrovsky SSE-1 (CCS 2006) — the
/// encrypted inverted index our paper credits with efficient search but
/// criticizes for updates ("only suitable for one-time construction").
///
/// Construction: all posting lists are chopped into fixed nodes
///   node_j = Enc_{key_j}( doc_id ‖ key_{j+1} ‖ addr_{j+1} )
/// scattered at random positions in one array A; a lookup table T maps
///   T[PRF(k1, w)] = (addr_1 ‖ key_1) ⊕ PRF(k2, w)
/// A trapdoor (PRF(k1,w), PRF(k2,w)) lets the server unmask the list head
/// and walk the chain: O(|D(w)|) work — optimal search.
///
/// The update story is the point of contrast: any document addition forces
/// the client to rebuild and re-upload the whole (A, T) index. Our client
/// therefore keeps the plaintext inverted index locally (keyword → ids) —
/// the very state the paper's schemes avoid — and every Store() re-runs the
/// full build.
inline constexpr uint16_t kMsgCgkoBuild = net::kMsgRangeBaseline + 21;
inline constexpr uint16_t kMsgCgkoBuildAck = net::kMsgRangeBaseline + 22;
inline constexpr uint16_t kMsgCgkoSearch = net::kMsgRangeBaseline + 23;
inline constexpr uint16_t kMsgCgkoSearchResult = net::kMsgRangeBaseline + 24;

class CgkoServer : public core::PersistableHandler {
 public:
  explicit CgkoServer(bool use_hash_index = false, size_t btree_order = 64);

  Result<net::Message> Handle(const net::Message& request) override;
  Result<Bytes> SerializeState() const override;
  Status RestoreState(BytesView data) override;
  bool IsMutating(uint16_t msg_type) const override;

  size_t array_size() const { return array_.size(); }
  size_t table_size() const { return table_.size(); }
  /// List nodes decrypted across all searches (O(|D(w)|) per search).
  uint64_t nodes_walked() const { return nodes_walked_; }
  /// Total bytes of index uploaded over the connection lifetime — the
  /// rebuild cost the benches report.
  uint64_t index_bytes_uploaded() const { return index_bytes_uploaded_; }

 private:
  Result<net::Message> HandleBuild(const net::Message& msg);
  Result<net::Message> HandleSearch(const net::Message& msg);

  std::vector<Bytes> array_;            // A
  core::TokenMap<Bytes> table_;         // T: token -> masked (addr ‖ key)
  storage::DocumentStore docs_;
  uint64_t nodes_walked_ = 0;
  uint64_t index_bytes_uploaded_ = 0;
};

class CgkoClient : public core::SseClientInterface {
 public:
  static Result<std::unique_ptr<CgkoClient>> Create(
      const crypto::MasterKey& key, net::Channel* channel, RandomSource* rng);

  /// Rebuilds the entire index (the SSE-1 update cost) and uploads it with
  /// the new documents.
  Status Store(const std::vector<core::Document>& docs) override;
  Result<core::SearchOutcome> Search(std::string_view keyword) override;
  std::string name() const override { return "cgko-sse1"; }

 private:
  CgkoClient(crypto::Prf prf, crypto::Aead aead, net::Channel* channel,
             RandomSource* rng);

  Result<Bytes> TableToken(std::string_view keyword) const;
  Result<Bytes> TableMask(std::string_view keyword) const;

  crypto::Prf prf_;
  crypto::Aead aead_;
  net::Channel* channel_;
  RandomSource* rng_;

  /// The client-side plaintext inverted index SSE-1 needs for rebuilds.
  std::map<std::string, std::set<uint64_t>> postings_;
  std::set<uint64_t> used_ids_;
};

}  // namespace sse::baselines

#endif  // SSE_BASELINES_CGKO_SSE1_H_
