#ifndef SSE_BENCH_BENCH_COMMON_H_
#define SSE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "sse/core/registry.h"
#include "sse/crypto/keys.h"
#include "sse/phr/workload.h"
#include "sse/util/random.h"
#include "sse/util/timer.h"

namespace sse::bench {

/// Master key shared by all bench systems (deterministic, so repeated runs
/// build identical databases).
inline crypto::MasterKey BenchKey() {
  DeterministicRandom rng(0xbe9c4);
  return crypto::MasterKey::Generate(rng).value();
}

/// Default bench configuration. The ElGamal group defaults to the *toy*
/// 512-bit group so index-construction sweeps finish in seconds; absolute
/// public-key costs at production sizes are reported by bench_crypto, and
/// any bench that depends on them says so in its output header.
inline core::SystemConfig BenchConfig(size_t max_documents = 1 << 14,
                                      uint32_t chain_length = 1 << 12) {
  core::SystemConfig config;
  config.scheme.max_documents = max_documents;
  config.scheme.chain_length = chain_length;
  config.scheme.elgamal_group = crypto::ElGamalGroupId::kToy512;
  return config;
}

inline core::SseSystem MustCreate(core::SystemKind kind,
                                  const core::SystemConfig& config,
                                  RandomSource* rng) {
  auto result = core::CreateSystem(kind, BenchKey(), config, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "CreateSystem failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void MustOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
inline T MustValue(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Paper-style table printer: fixed-width columns to stdout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) widths_.push_back(h.size() + 2);
  }

  void PrintHeader() const {
    PrintRule();
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("| %-*s", static_cast<int>(widths_[i]), headers_[i].c_str());
    }
    std::printf("|\n");
    PrintRule();
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      std::printf("| %-*s", static_cast<int>(widths_[i]), cells[i].c_str());
    }
    std::printf("|\n");
  }

  void PrintRule() const {
    for (size_t w : widths_) {
      std::printf("+%s", std::string(w + 1, '-').c_str());
    }
    std::printf("+\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string FmtU(uint64_t value) { return std::to_string(value); }

}  // namespace sse::bench

#endif  // SSE_BENCH_BENCH_COMMON_H_
