// Robustness against malicious or corrupted clients: every server must
// survive arbitrary bytes on every message type — clean error statuses, no
// crashes, no state corruption.

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "sse/core/scheme1_messages.h"
#include "sse/core/scheme2_messages.h"
#include "sse/core/scheme3_messages.h"
#include "test_util.h"

namespace sse {
namespace {

using core::Document;
using core::SystemKind;
using sse::testing::MakeTestSystem;

class AdversarialTest : public ::testing::TestWithParam<SystemKind> {
 protected:
  AdversarialTest() : rng_(4096), sys_(MakeTestSystem(GetParam(), &rng_)) {}

  DeterministicRandom rng_;
  core::SseSystem sys_;
};

TEST_P(AdversarialTest, RandomBytesOnAllTypesNeverCrash) {
  // Seed some real state first.
  SSE_ASSERT_OK(sys_.client->Store(
      {Document::Make(0, "real content", {"real", "keywords"})}));

  DeterministicRandom fuzz(777);
  int rejected = 0;
  int accepted = 0;
  for (uint16_t base : {net::kMsgRangeCommon, net::kMsgRangeScheme1,
                        net::kMsgRangeScheme2, net::kMsgRangeBaseline,
                        core::kMsgRangeScheme3}) {
    for (uint16_t sub = 0; sub < 30; ++sub) {
      for (size_t len : {0u, 1u, 5u, 64u, 300u}) {
        Bytes payload(len);
        ASSERT_TRUE(fuzz.Fill(payload).ok());
        auto reply = sys_.channel->Call(
            net::Message{static_cast<uint16_t>(base + sub), payload});
        if (reply.ok()) {
          ++accepted;
        } else {
          ++rejected;
        }
      }
    }
  }
  // The vast majority of fuzz inputs must be rejected; a handful of
  // degenerate payloads can parse as valid empty requests.
  EXPECT_GT(rejected, accepted * 5);

  // State must still be intact: the real keyword still resolves.
  auto outcome = sys_.client->Search("real");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
}

TEST_P(AdversarialTest, TruncatedRealMessagesRejected) {
  SSE_ASSERT_OK(sys_.client->Store({Document::Make(0, "a", {"kw"})}));
  // Capture a real message by re-encoding a store of a second document,
  // then replay truncated variants. We synthesize representative requests
  // instead of hooking the channel: every prefix of a valid payload must
  // be rejected or parse to something harmless.
  core::S1SearchRequest s1req;
  s1req.token = Bytes(32, 0xaa);
  net::Message msg = s1req.ToMessage();
  for (size_t keep = 0; keep < msg.payload.size(); ++keep) {
    net::Message truncated{msg.type,
                           Bytes(msg.payload.begin(),
                                 msg.payload.begin() + keep)};
    auto reply = sys_.channel->Call(truncated);
    if (GetParam() == SystemKind::kScheme1) {
      EXPECT_FALSE(reply.ok()) << "prefix " << keep;
    }
  }
}

TEST_P(AdversarialTest, ReplayedUpdatesAreContained) {
  // The model trusts the server for availability, not the network: this
  // test documents what a replayed update message can and cannot do in
  // Scheme 1. Replaying a keyword-creating update is rejected outright
  // (the token already exists); replaying a delta update corrupts at most
  // that keyword's posting list and never crashes the server or touches
  // other keywords — the reason deployments run the protocol over an
  // authenticated transport.
  if (GetParam() != SystemKind::kScheme1) {
    GTEST_SKIP() << "replay semantics are scheme-1 specific";
  }
  core::SystemConfig config = sse::testing::FastTestConfig();
  config.channel.record_transcript = true;
  DeterministicRandom rng(9);
  core::SseSystem sys = MakeTestSystem(SystemKind::kScheme1, &rng, config);

  // First store creates the tokens: replaying it must be rejected.
  SSE_ASSERT_OK(sys.client->Store(
      {Document::Make(0, "a", {"kw", "other"})}));
  const net::Message create = sys.channel->transcript().back().request;
  ASSERT_EQ(create.type, core::kMsgS1UpdateRequest);
  EXPECT_FALSE(sys.channel->Call(create).ok());

  // Second store updates "kw" in place: replaying desynchronizes only
  // that keyword.
  SSE_ASSERT_OK(sys.client->Store({Document::Make(1, "b", {"kw"})}));
  const net::Message delta = sys.channel->transcript().back().request;
  ASSERT_EQ(delta.type, core::kMsgS1UpdateRequest);
  ASSERT_TRUE(sys.channel->Call(delta).ok());

  // "other" is untouched by the replay.
  auto other = sys.client->Search("other");
  SSE_ASSERT_OK_RESULT(other);
  EXPECT_EQ(other->ids, std::vector<uint64_t>{0});
  // "kw" may now decode to garbage ids, but the server must not crash and
  // must answer something.
  auto kw = sys.client->Search("kw");
  EXPECT_TRUE(kw.ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, AdversarialTest, ::testing::ValuesIn(core::AllSystemKinds()),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name(core::SystemKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sse
