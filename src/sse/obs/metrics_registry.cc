#include "sse/obs/metrics_registry.h"

#include <cstdio>

namespace sse::obs {

namespace {

std::atomic<bool> g_crypto_timing{false};

void AppendHelpType(std::string* out, const std::string& name,
                    const std::string& help, const char* type) {
  if (!help.empty()) {
    *out += "# HELP " + name + " " + help + "\n";
  }
  *out += "# TYPE " + name + " " + std::string(type) + "\n";
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

}  // namespace

MetricsRegistry::Registration& MetricsRegistry::Registration::operator=(
    Registration&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void MetricsRegistry::Registration::Release() {
  if (registry_ != nullptr) {
    registry_->Unregister(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: counters may be bumped from detached threads during shutdown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Counter* MetricsRegistry::GetCounter(const std::string& name,
                                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot.second == nullptr) {
    slot.second = std::make_unique<Counter>();
  }
  if (slot.first.empty()) slot.first = help;
  return slot.second.get();
}

MetricsRegistry::Registration MetricsRegistry::RegisterGauge(
    const std::string& name, std::function<double()> fn,
    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  gauges_[id] = GaugeEntry{name, help, std::move(fn)};
  return Registration(this, id);
}

MetricsRegistry::Registration MetricsRegistry::RegisterHistogram(
    const std::string& name, std::function<LatencyHistogram::Snapshot()> fn,
    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  histograms_[id] = HistogramEntry{name, help, std::move(fn)};
  return Registration(this, id);
}

void MetricsRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.erase(id);
  histograms_.erase(id);
}

std::string MetricsRegistry::RenderPrometheus() const {
  // Copy the callback lists out under the lock, then invoke them unlocked:
  // a provider is free to call back into GetCounter() while being scraped.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::map<std::string, std::string> counter_help;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : counters_) {
      counters.emplace_back(name, entry.second->Value());
      counter_help[name] = entry.first;
    }
    for (const auto& [id, entry] : gauges_) gauges.push_back(entry);
    for (const auto& [id, entry] : histograms_) histograms.push_back(entry);
  }

  std::string out;

  for (const auto& [name, value] : counters) {
    AppendHelpType(&out, name, counter_help[name], "counter");
    out += name + " " + std::to_string(value) + "\n";
  }

  // Same-name gauges (one per registered instance) sum into one sample.
  std::map<std::string, std::pair<std::string, double>> gauge_totals;
  for (const GaugeEntry& g : gauges) {
    auto& slot = gauge_totals[g.name];
    if (slot.first.empty()) slot.first = g.help;
    slot.second += g.fn();
  }
  for (const auto& [name, help_value] : gauge_totals) {
    AppendHelpType(&out, name, help_value.first, "gauge");
    out += name + " ";
    AppendDouble(&out, help_value.second);
    out += "\n";
  }

  // Same-name histograms merge into one distribution before rendering.
  std::map<std::string, std::pair<std::string, LatencyHistogram::Snapshot>>
      merged;
  for (const HistogramEntry& h : histograms) {
    auto& slot = merged[h.name];
    if (slot.first.empty()) slot.first = h.help;
    slot.second.Merge(h.fn());
  }
  for (const auto& [name, help_snap] : merged) {
    const LatencyHistogram::Snapshot& snap = help_snap.second;
    AppendHelpType(&out, name, help_snap.first, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      cumulative += snap.buckets[i];
      if (snap.buckets[i] == 0 && i + 1 < snap.buckets.size()) {
        continue;  // keep the output compact: skip interior empty buckets
      }
      out += name + "_bucket{le=\"";
      AppendDouble(&out, static_cast<double>(
                             LatencyHistogram::Snapshot::upper_edge_nanos(i)) /
                             1e9);
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += name + "_sum ";
    AppendDouble(&out, static_cast<double>(snap.total_nanos) / 1e9);
    out += "\n";
    out += name + "_count " + std::to_string(snap.count) + "\n";
  }

  return out;
}

CryptoTimers& CryptoTimers::Global() {
  static CryptoTimers* timers = [] {
    auto* t = new CryptoTimers();
    // Process-lifetime registrations; a function-local static keeps them
    // alive (and reachable, so leak checkers stay quiet).
    static MetricsRegistry::Registration keep[4];
    auto& reg = MetricsRegistry::Global();
    keep[0] = reg.RegisterHistogram(
        "sse_crypto_prf_seconds", [t] { return t->prf.Snap(); },
        "Per-call PRF evaluation latency (gated, off by default)");
    keep[1] = reg.RegisterHistogram(
        "sse_crypto_prg_seconds", [t] { return t->prg.Snap(); },
        "Per-call PRG expansion latency (gated, off by default)");
    keep[2] = reg.RegisterHistogram(
        "sse_crypto_elgamal_encrypt_seconds",
        [t] { return t->elgamal_encrypt.Snap(); },
        "Per-call ElGamal encryption latency (gated, off by default)");
    keep[3] = reg.RegisterHistogram(
        "sse_crypto_elgamal_decrypt_seconds",
        [t] { return t->elgamal_decrypt.Snap(); },
        "Per-call ElGamal decryption latency (gated, off by default)");
    return t;
  }();
  return *timers;
}

bool CryptoTimingEnabled() {
  return g_crypto_timing.load(std::memory_order_relaxed);
}

void SetCryptoTimingEnabled(bool enabled) {
  g_crypto_timing.store(enabled, std::memory_order_relaxed);
}

}  // namespace sse::obs
