file(REMOVE_RECURSE
  "CMakeFiles/phr_gp.dir/phr_gp.cpp.o"
  "CMakeFiles/phr_gp.dir/phr_gp.cpp.o.d"
  "phr_gp"
  "phr_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phr_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
