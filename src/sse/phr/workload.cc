#include "sse/phr/workload.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "sse/phr/tokenizer.h"

namespace sse::phr {

namespace {

constexpr std::array<const char*, 24> kConditions = {
    "hypertension",   "type 2 diabetes", "asthma",        "influenza",
    "osteoarthritis", "depression",      "migraine",      "anemia",
    "hypothyroidism", "eczema",          "bronchitis",    "gastritis",
    "sciatica",       "psoriasis",       "gout",          "angina",
    "epilepsy",       "glaucoma",        "hepatitis b",   "pneumonia",
    "sinusitis",      "tinnitus",        "vertigo",       "shingles"};

constexpr std::array<const char*, 20> kMedications = {
    "lisinopril",  "metformin",  "albuterol",     "oseltamivir", "ibuprofen",
    "sertraline",  "sumatriptan", "ferrous sulfate", "levothyroxine",
    "hydrocortisone", "amoxicillin", "omeprazole", "naproxen",    "methotrexate",
    "allopurinol", "nitroglycerin", "lamotrigine", "latanoprost", "tenofovir",
    "azithromycin"};

constexpr std::array<const char*, 12> kAllergies = {
    "penicillin", "peanuts", "latex",   "pollen",  "shellfish", "aspirin",
    "eggs",       "soy",     "sulfa",   "wheat",   "dust mites", "bee venom"};

constexpr std::array<const char*, 16> kFirstNames = {
    "emma", "liam", "sofia", "noah", "mila", "lucas", "julia", "finn",
    "anna", "daan", "eva",   "sem",  "tess", "bram",  "noor",  "jesse"};

constexpr std::array<const char*, 16> kLastNames = {
    "jansen", "devries", "bakker",   "visser",  "smit",   "meijer",
    "mulder", "bos",     "vos",      "peters",  "hendriks", "dekker",
    "kok",    "vermeer", "scholten", "prins"};

constexpr std::array<const char*, 8> kNoteTemplates = {
    "patient reports mild symptoms improving with rest",
    "follow up visit scheduled blood pressure stable",
    "prescribed new medication monitor for side effects",
    "lab results within normal range continue treatment",
    "patient advised on diet and regular exercise",
    "symptoms persistent referred to specialist",
    "vaccination administered no adverse reaction observed",
    "chronic condition stable renewal of prescription"};

}  // namespace

ZipfSampler::ZipfSampler(size_t n, double s) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& v : cdf_) v /= total;
}

size_t ZipfSampler::Sample(DeterministicRandom& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

PhrWorkload::PhrWorkload(const Params& params) {
  DeterministicRandom rng(params.seed);
  ZipfSampler condition_sampler(kConditions.size(), params.condition_skew);
  ZipfSampler medication_sampler(kMedications.size(), params.condition_skew);

  records_.reserve(params.num_patients * params.visits_per_patient);
  for (size_t p = 0; p < params.num_patients; ++p) {
    char pid[32];
    std::snprintf(pid, sizeof(pid), "p%05zu", p);
    std::string name = std::string(kFirstNames[rng.Next() % kFirstNames.size()]) +
                       " " + kLastNames[rng.Next() % kLastNames.size()];
    // A patient's chronic condition persists across visits.
    const size_t chronic = condition_sampler.Sample(rng);
    for (size_t v = 0; v < params.visits_per_patient; ++v) {
      PatientRecord record;
      record.patient_id = pid;
      record.name = name;
      char date[16];
      std::snprintf(date, sizeof(date), "2026-%02zu-%02zu", 1 + (v % 12),
                    1 + (rng.Next() % 28));
      record.visit_date = date;
      record.practitioner =
          std::string("dr ") + kLastNames[rng.Next() % kLastNames.size()];
      record.conditions.push_back(kConditions[chronic]);
      if (rng.NextDouble() < 0.4) {
        record.conditions.push_back(
            kConditions[condition_sampler.Sample(rng)]);
      }
      record.medications.push_back(
          kMedications[medication_sampler.Sample(rng)]);
      if (rng.NextDouble() < 0.25) {
        record.allergies.push_back(kAllergies[rng.Next() % kAllergies.size()]);
      }
      record.notes = kNoteTemplates[rng.Next() % kNoteTemplates.size()];
      records_.push_back(std::move(record));
    }
  }
}

std::vector<core::Document> PhrWorkload::ToDocuments() const {
  std::vector<core::Document> docs;
  docs.reserve(records_.size());
  for (size_t i = 0; i < records_.size(); ++i) {
    docs.push_back(RecordToDocument(static_cast<uint64_t>(i), records_[i]));
  }
  return docs;
}

std::string PhrWorkload::ConditionTag(size_t rank) {
  return Tag("condition", kConditions[rank % kConditions.size()]);
}

size_t PhrWorkload::ConditionVocabularySize() { return kConditions.size(); }

std::string SyntheticKeyword(size_t rank) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "kw%06zu", rank);
  return buf;
}

std::vector<core::Document> GenerateDocuments(size_t num_docs,
                                              size_t vocabulary,
                                              size_t keywords_per_doc,
                                              double skew, uint64_t seed,
                                              size_t content_bytes,
                                              uint64_t first_id) {
  DeterministicRandom rng(seed);
  ZipfSampler sampler(vocabulary, skew);
  std::vector<core::Document> docs;
  docs.reserve(num_docs);
  for (size_t i = 0; i < num_docs; ++i) {
    core::Document doc;
    doc.id = first_id + i;
    Bytes content(content_bytes);
    (void)rng.Fill(content);
    doc.content = std::move(content);
    // Draw until keywords_per_doc distinct ranks (bounded retries so tiny
    // vocabularies cannot loop forever).
    std::vector<std::string> keywords;
    size_t attempts = 0;
    while (keywords.size() < keywords_per_doc &&
           attempts < keywords_per_doc * 32) {
      ++attempts;
      std::string kw = SyntheticKeyword(sampler.Sample(rng));
      if (std::find(keywords.begin(), keywords.end(), kw) == keywords.end()) {
        keywords.push_back(std::move(kw));
      }
    }
    doc.keywords = std::move(keywords);
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace sse::phr
