file(REMOVE_RECURSE
  "CMakeFiles/hkdf_test.dir/hkdf_test.cc.o"
  "CMakeFiles/hkdf_test.dir/hkdf_test.cc.o.d"
  "hkdf_test"
  "hkdf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hkdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
