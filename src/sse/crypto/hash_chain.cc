#include "sse/crypto/hash_chain.h"

#include "sse/crypto/sha256.h"

namespace sse::crypto {

namespace {
const char kStepLabel[] = "sse.chain.step";
const char kTagLabel[] = "sse.chain.tag";
}  // namespace

Result<HashChain> HashChain::Create(BytesView seed, uint32_t length) {
  if (seed.size() < 16) {
    return Status::InvalidArgument("hash chain seed must be >= 16 bytes");
  }
  if (length == 0) {
    return Status::InvalidArgument("hash chain length must be > 0");
  }
  return HashChain(ToBytes(seed), length);
}

Result<Bytes> HashChain::Step(BytesView element) {
  return Sha256Concat(StringToBytes(kStepLabel), element);
}

Result<Bytes> HashChain::Tag(BytesView element) {
  return Sha256Concat(StringToBytes(kTagLabel), element);
}

Result<Bytes> HashChain::ElementAt(uint32_t index) const {
  if (index >= length_) {
    return Status::OutOfRange("chain index " + std::to_string(index) +
                              " >= length " + std::to_string(length_));
  }
  Bytes element = seed_;
  for (uint32_t i = 0; i < index; ++i) {
    SSE_ASSIGN_OR_RETURN(element, Step(element));
  }
  return element;
}

Result<Bytes> HashChain::KeyForCounter(uint32_t ctr) const {
  if (ctr == 0) {
    return Status::InvalidArgument("chain counter starts at 1");
  }
  if (ctr > length_) {
    return Status::ResourceExhausted(
        "hash chain exhausted: counter " + std::to_string(ctr) +
        " exceeds chain length " + std::to_string(length_) +
        "; re-initialize the index with a fresh seed");
  }
  // ctr = 1 -> element l-1 (deepest usable), ctr = l -> element 0 (seed).
  return ElementAt(length_ - ctr);
}

Result<HashChain::WalkResult> HashChain::WalkForwardToTag(BytesView start,
                                                          BytesView target_tag,
                                                          uint32_t max_steps) {
  Bytes element = ToBytes(start);
  for (uint32_t steps = 0; steps <= max_steps; ++steps) {
    Bytes tag;
    SSE_ASSIGN_OR_RETURN(tag, Tag(element));
    if (ConstantTimeEqual(tag, target_tag)) {
      return WalkResult{std::move(element), steps};
    }
    if (steps < max_steps) {
      SSE_ASSIGN_OR_RETURN(element, Step(element));
    }
  }
  return Status::NotFound("no chain element matched the tag within " +
                          std::to_string(max_steps) + " steps");
}

}  // namespace sse::crypto
