#include "sse/core/token_map.h"

#include <gtest/gtest.h>

#include <map>

#include "sse/util/random.h"

namespace sse::core {
namespace {

class TokenMapTest : public ::testing::TestWithParam<bool> {
 protected:
  TokenMap<int> MakeMap() { return TokenMap<int>(GetParam()); }
};

TEST_P(TokenMapTest, PutGetErase) {
  TokenMap<int> map = MakeMap();
  EXPECT_TRUE(map.Put(Bytes{1, 2}, 10));
  EXPECT_FALSE(map.Put(Bytes{1, 2}, 20));  // replace
  EXPECT_EQ(*map.Get(Bytes{1, 2}), 20);
  EXPECT_EQ(map.Get(Bytes{9}), nullptr);
  EXPECT_TRUE(map.Contains(Bytes{1, 2}));
  EXPECT_TRUE(map.Erase(Bytes{1, 2}));
  EXPECT_FALSE(map.Erase(Bytes{1, 2}));
  EXPECT_EQ(map.size(), 0u);
}

TEST_P(TokenMapTest, GetMutable) {
  TokenMap<int> map = MakeMap();
  map.Put(Bytes{5}, 1);
  *map.GetMutable(Bytes{5}) = 7;
  EXPECT_EQ(*map.Get(Bytes{5}), 7);
  EXPECT_EQ(map.GetMutable(Bytes{6}), nullptr);
}

TEST_P(TokenMapTest, BinaryTokensWithZeros) {
  TokenMap<int> map = MakeMap();
  map.Put(Bytes{0, 0, 0}, 1);
  map.Put(Bytes{0, 0}, 2);
  map.Put(Bytes{}, 3);
  EXPECT_EQ(*map.Get(Bytes{0, 0, 0}), 1);
  EXPECT_EQ(*map.Get(Bytes{0, 0}), 2);
  EXPECT_EQ(*map.Get(Bytes{}), 3);
  EXPECT_EQ(map.size(), 3u);
}

TEST_P(TokenMapTest, ForEachVisitsAll) {
  TokenMap<int> map = MakeMap();
  std::map<std::string, int> reference;
  DeterministicRandom rng(1);
  for (int i = 0; i < 500; ++i) {
    Bytes token(8);
    (void)rng.Fill(token);
    map.Put(token, i);
    reference[BytesToString(token)] = i;
  }
  std::map<std::string, int> visited;
  map.ForEach([&](const Bytes& token, const int& value) {
    visited[BytesToString(token)] = value;
    return true;
  });
  EXPECT_EQ(visited, reference);
}

TEST_P(TokenMapTest, ForEachMutable) {
  TokenMap<int> map = MakeMap();
  map.Put(Bytes{1}, 1);
  map.Put(Bytes{2}, 2);
  map.ForEachMutable([](const Bytes&, int& v) {
    v += 100;
    return true;
  });
  EXPECT_EQ(*map.Get(Bytes{1}), 101);
  EXPECT_EQ(*map.Get(Bytes{2}), 102);
}

TEST_P(TokenMapTest, Clear) {
  TokenMap<int> map = MakeMap();
  map.Put(Bytes{1}, 1);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.Contains(Bytes{1}));
}

TEST_P(TokenMapTest, BackendFlagReported) {
  TokenMap<int> map = MakeMap();
  EXPECT_EQ(map.uses_hash_backend(), GetParam());
}

TEST(TokenMapOrderTest, TreeBackendIteratesInTokenOrder) {
  TokenMap<int> map(/*use_hash=*/false);
  map.Put(Bytes{3}, 3);
  map.Put(Bytes{1}, 1);
  map.Put(Bytes{2}, 2);
  std::vector<int> order;
  map.ForEach([&](const Bytes&, const int& v) {
    order.push_back(v);
    return true;
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TokenMapOrderTest, TreeBackendCountsComparisons) {
  TokenMap<int> map(/*use_hash=*/false);
  for (int i = 0; i < 100; ++i) map.Put(Bytes{static_cast<uint8_t>(i)}, i);
  map.ResetStats();
  map.Get(Bytes{50});
  EXPECT_GT(map.comparisons(), 0u);

  TokenMap<int> hash(/*use_hash=*/true);
  hash.Put(Bytes{1}, 1);
  hash.Get(Bytes{1});
  EXPECT_EQ(hash.comparisons(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, TokenMapTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "hash" : "btree";
                         });

}  // namespace
}  // namespace sse::core
