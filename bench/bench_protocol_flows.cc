// Experiments F1-F4 — Figures 1-4: the message flows of both protocols —
// plus F5: the fault-free cost of the exactly-once RPC stack.
//
// The paper's figures are message-sequence diagrams; this bench regenerates
// them as measured per-step transcripts: direction, message type and framed
// size for MetadataStorage (Figs. 1 and 3) and Search (Figs. 2 and 4) of
// both schemes. F5 then runs an identical mixed workload through a bare
// channel and through RetryingChannel + server ReplyCache on a healthy
// link, reporting the overhead of stamping, checksumming and dedup lookups
// when nothing ever fails (target: < 5%).

#include <cstdio>

#include "bench_common.h"
#include "sse/net/channel.h"
#include "sse/net/retry.h"

namespace sse::bench {
namespace {

void PrintTranscript(const std::vector<net::Exchange>& transcript,
                     size_t from_index) {
  for (size_t i = from_index; i < transcript.size(); ++i) {
    const net::Exchange& ex = transcript[i];
    std::printf("  client -> server  %-28s %8zu bytes\n",
                net::MessageTypeName(ex.request.type).c_str(),
                ex.request.WireSize());
    std::printf("  server -> client  %-28s %8zu bytes\n",
                net::MessageTypeName(ex.reply.type).c_str(),
                ex.reply.WireSize());
  }
}

void Run(core::SystemKind kind, const char* update_fig, const char* search_fig) {
  DeterministicRandom rng(21);
  core::SystemConfig config = BenchConfig(/*max_documents=*/4096,
                                          /*chain_length=*/1024);
  config.channel.record_transcript = true;
  core::SseSystem sys = MustCreate(kind, config, &rng);

  // Seed one batch so the flows below hit existing keywords.
  auto seed = phr::GenerateDocuments(32, /*vocabulary=*/16,
                                     /*keywords_per_doc=*/4, 0.8, 9);
  MustOk(sys.client->Store(seed), "seed");
  sys.channel->ClearTranscript();

  std::printf("%s — MetadataStorage flow, %s (1 document, 4 keywords):\n",
              update_fig, std::string(core::SystemKindName(kind)).c_str());
  auto doc = phr::GenerateDocuments(1, 16, 4, 0.8, 77, 64, /*first_id=*/500);
  MustOk(sys.client->Store(doc), "update");
  PrintTranscript(sys.channel->transcript(), 0);
  const size_t after_update = sys.channel->transcript().size();

  std::printf("\n%s — Search flow, %s (keyword with postings):\n", search_fig,
              std::string(core::SystemKindName(kind)).c_str());
  MustValue(sys.client->Search(phr::SyntheticKeyword(0)), "search");
  PrintTranscript(sys.channel->transcript(), after_update);
  std::printf("\n");
}

/// One timed pass of the F5 workload: stores then repeated searches.
double RunExactlyOnceWorkload(core::SystemKind kind, bool exactly_once,
                              size_t docs, size_t searches) {
  DeterministicRandom rng(31);
  core::SystemConfig config = BenchConfig(/*max_documents=*/4096,
                                          /*chain_length=*/8192);
  config.engine_shards = 2;  // the reply cache lives on engine servers
  config.engine_reply_cache = exactly_once;
  config.with_retry = exactly_once;
  core::SseSystem sys = MustCreate(kind, config, &rng);

  auto corpus = phr::GenerateDocuments(docs, /*vocabulary=*/32,
                                       /*keywords_per_doc=*/4, 0.8, 13);
  Timer timer;
  for (const auto& doc : corpus) MustOk(sys.client->Store({doc}), "store");
  for (size_t i = 0; i < searches; ++i) {
    MustValue(sys.client->Search(phr::SyntheticKeyword(i % 32)), "search");
  }
  return timer.ElapsedMillis();
}

void RunOverheadSweep() {
  std::printf(
      "F5 — fault-free overhead of the exactly-once stack (RetryingChannel\n"
      "session stamps + CRC checks, server-side ReplyCache dedup) vs bare\n"
      "calls on a healthy in-process link. Target: < 5%% added latency.\n\n");
  TablePrinter table({"scheme", "ops", "bare ms", "exactly-once ms",
                      "overhead"});
  table.PrintHeader();
  struct Row {
    core::SystemKind kind;
    size_t docs;
    size_t searches;
  };
  for (const Row& row : {Row{core::SystemKind::kScheme1, 128, 256},
                         Row{core::SystemKind::kScheme2, 512, 1024}}) {
    // Warm-up pass absorbs one-time allocator and page-cache effects, then
    // alternate measured passes to keep drift out of the comparison.
    RunExactlyOnceWorkload(row.kind, false, row.docs / 4, row.searches / 4);
    double bare_ms = 0.0;
    double stamped_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      bare_ms +=
          RunExactlyOnceWorkload(row.kind, false, row.docs, row.searches);
      stamped_ms +=
          RunExactlyOnceWorkload(row.kind, true, row.docs, row.searches);
    }
    const double overhead = 100.0 * (stamped_ms - bare_ms) / bare_ms;
    table.PrintRow({std::string(core::SystemKindName(row.kind)),
                    FmtU(row.docs + row.searches), Fmt("%.1f", bare_ms / 3.0),
                    Fmt("%.1f", stamped_ms / 3.0), Fmt("%+.2f%%", overhead)});
  }
  table.PrintRule();
  std::printf("\n");
}

}  // namespace
}  // namespace sse::bench

int main() {
  std::printf(
      "Protocol flows (Figures 1-4). Each line is one framed message as it\n"
      "crossed the instrumented channel. ElGamal group: toy-512; production\n"
      "groups enlarge F(r) to ~0.6-1.2 KB (see bench_crypto).\n\n");
  sse::bench::Run(sse::core::SystemKind::kScheme1, "Figure 1", "Figure 2");
  sse::bench::Run(sse::core::SystemKind::kScheme2, "Figure 3", "Figure 4");
  sse::bench::RunOverheadSweep();
  return 0;
}
