#include "sse/crypto/hash_chain.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace sse::crypto {
namespace {

Bytes Seed() { return Bytes(32, 0x3c); }

TEST(HashChainTest, CreateValidation) {
  EXPECT_FALSE(HashChain::Create(Bytes(8, 1), 10).ok());  // short seed
  EXPECT_FALSE(HashChain::Create(Seed(), 0).ok());        // zero length
  EXPECT_TRUE(HashChain::Create(Seed(), 1).ok());
}

TEST(HashChainTest, ElementAtMatchesIteratedStep) {
  auto chain = HashChain::Create(Seed(), 16);
  ASSERT_TRUE(chain.ok());
  Bytes manual = Seed();
  for (uint32_t i = 0; i < 16; ++i) {
    auto direct = chain->ElementAt(i);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*direct, manual) << "index " << i;
    manual = *HashChain::Step(manual);
  }
}

TEST(HashChainTest, ElementAtOutOfRange) {
  auto chain = HashChain::Create(Seed(), 4);
  ASSERT_TRUE(chain.ok());
  EXPECT_TRUE(chain->ElementAt(3).ok());
  EXPECT_FALSE(chain->ElementAt(4).ok());
}

TEST(HashChainTest, KeyForCounterWalksBackwards) {
  // ctr=1 must give the deepest usable element (index l-1); ctr=l the seed.
  const uint32_t l = 8;
  auto chain = HashChain::Create(Seed(), l);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(*chain->KeyForCounter(1), *chain->ElementAt(l - 1));
  EXPECT_EQ(*chain->KeyForCounter(l), *chain->ElementAt(0));
  EXPECT_EQ(*chain->KeyForCounter(3), *chain->ElementAt(l - 3));
}

TEST(HashChainTest, KeyForCounterBoundaries) {
  auto chain = HashChain::Create(Seed(), 4);
  ASSERT_TRUE(chain.ok());
  EXPECT_FALSE(chain->KeyForCounter(0).ok());  // counters start at 1
  EXPECT_TRUE(chain->KeyForCounter(4).ok());
  auto exhausted = chain->KeyForCounter(5);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);
}

TEST(HashChainTest, ForwardOnlyProperty) {
  // Holding element i, one can compute element i+1 but elements are all
  // distinct (no cycles in practice).
  auto chain = HashChain::Create(Seed(), 32);
  ASSERT_TRUE(chain.ok());
  std::set<std::string> seen;
  for (uint32_t i = 0; i < 32; ++i) {
    seen.insert(HexEncode(*chain->ElementAt(i)));
  }
  EXPECT_EQ(seen.size(), 32u);
}

TEST(HashChainTest, TagDiffersFromElementAndStep) {
  Bytes element = Seed();
  auto tag = HashChain::Tag(element);
  auto step = HashChain::Step(element);
  ASSERT_TRUE(tag.ok());
  ASSERT_TRUE(step.ok());
  EXPECT_NE(*tag, element);
  EXPECT_NE(*tag, *step);  // domain separation between f and f'
}

TEST(HashChainTest, WalkForwardFindsDeeperElement) {
  const uint32_t l = 20;
  auto chain = HashChain::Create(Seed(), l);
  ASSERT_TRUE(chain.ok());
  // Server holds the element for ctr=9 (index l-9=11) and looks for the
  // key of an update at ctr=4 (index 16): 5 forward steps.
  Bytes start = *chain->KeyForCounter(9);
  Bytes target = *chain->KeyForCounter(4);
  Bytes target_tag = *HashChain::Tag(target);
  auto walk = HashChain::WalkForwardToTag(start, target_tag, l);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(walk->element, target);
  EXPECT_EQ(walk->steps, 5u);
}

TEST(HashChainTest, WalkForwardZeroSteps) {
  auto chain = HashChain::Create(Seed(), 8);
  ASSERT_TRUE(chain.ok());
  Bytes element = *chain->KeyForCounter(3);
  auto walk = HashChain::WalkForwardToTag(element, *HashChain::Tag(element), 8);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(walk->steps, 0u);
}

TEST(HashChainTest, WalkForwardCannotReachNewerKeys) {
  // Keys of *future* updates (higher ctr = smaller index) are not reachable
  // walking forward — the core one-wayness the scheme relies on.
  const uint32_t l = 16;
  auto chain = HashChain::Create(Seed(), l);
  ASSERT_TRUE(chain.ok());
  Bytes old_key = *chain->KeyForCounter(3);   // index 13
  Bytes newer_key = *chain->KeyForCounter(7); // index 9 (deeper)
  auto walk =
      HashChain::WalkForwardToTag(old_key, *HashChain::Tag(newer_key), l);
  EXPECT_FALSE(walk.ok());
  EXPECT_EQ(walk.status().code(), StatusCode::kNotFound);
}

TEST(HashChainTest, DifferentSeedsGiveDisjointChains) {
  auto a = HashChain::Create(Bytes(32, 1), 16);
  auto b = HashChain::Create(Bytes(32, 2), 16);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_NE(*a->ElementAt(i), *b->ElementAt(i));
  }
}

}  // namespace
}  // namespace sse::crypto
