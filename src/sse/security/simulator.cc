#include "sse/security/simulator.h"

#include "sse/crypto/aead.h"
#include "sse/crypto/elgamal.h"
#include "sse/crypto/prf.h"

namespace sse::security {

size_t Scheme1Simulator::CiphertextSizeFor(size_t plain_len) {
  return plain_len + crypto::kAeadOverhead;
}

size_t Scheme1Simulator::EncNonceSize() const {
  // The group is a public parameter, so the simulator may size C_i exactly.
  // Derive the size from a throwaway key pair (cached would be fine too;
  // simulation is not on any hot path).
  DeterministicRandom rng(7);
  Result<crypto::ElGamal> eg =
      crypto::ElGamal::Generate(options_.elgamal_group, rng);
  if (!eg.ok()) return 0;
  return eg->CiphertextSize();
}

Result<View> Scheme1Simulator::SimulateView(const Trace& trace,
                                            size_t t) const {
  if (t > trace.results.size()) {
    return Status::InvalidArgument("t exceeds the trace's query count");
  }
  View view;
  view.ids = trace.ids;

  // R_1 .. R_n: random strings shaped like the real ciphertexts.
  view.encrypted_documents.reserve(trace.lengths.size());
  for (uint64_t len : trace.lengths) {
    Bytes r;
    SSE_ASSIGN_OR_RETURN(
        r, rng_->Generate(CiphertextSizeFor(static_cast<size_t>(len))));
    view.encrypted_documents.push_back(std::move(r));
  }

  // The simulated index: |W_D| random triples (A_i, B_i, C_i).
  const size_t bitmap_bytes = (options_.max_documents + 7) / 8;
  const size_t nonce_ct_size = EncNonceSize();
  view.index.reserve(static_cast<size_t>(trace.unique_keywords));
  for (uint64_t i = 0; i < trace.unique_keywords; ++i) {
    View::IndexEntry entry;
    SSE_ASSIGN_OR_RETURN(entry.token, rng_->Generate(crypto::kPrfOutputSize));
    SSE_ASSIGN_OR_RETURN(entry.masked_bitmap, rng_->Generate(bitmap_bytes));
    SSE_ASSIGN_OR_RETURN(entry.enc_nonce, rng_->Generate(nonce_ct_size));
    view.index.push_back(std::move(entry));
  }

  // Trapdoors: repeat queries reuse the earlier T (search pattern Π);
  // fresh queries consume an unused A_j.
  size_t next_unused = 0;
  view.trapdoors.reserve(t);
  for (size_t i = 0; i < t; ++i) {
    bool reused = false;
    for (size_t j = 0; j < i; ++j) {
      if (trace.search_pattern[j][i]) {
        view.trapdoors.push_back(view.trapdoors[j]);
        reused = true;
        break;
      }
    }
    if (reused) continue;
    if (next_unused >= view.index.size()) {
      // More distinct queries than keywords: the extra trapdoors hit
      // nothing; fabricate fresh random tokens.
      Bytes token;
      SSE_ASSIGN_OR_RETURN(token, rng_->Generate(crypto::kPrfOutputSize));
      view.trapdoors.push_back(std::move(token));
    } else {
      view.trapdoors.push_back(view.index[next_unused].token);
      ++next_unused;
    }
  }
  return view;
}

}  // namespace sse::security
