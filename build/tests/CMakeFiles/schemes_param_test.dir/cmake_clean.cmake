file(REMOVE_RECURSE
  "CMakeFiles/schemes_param_test.dir/schemes_param_test.cc.o"
  "CMakeFiles/schemes_param_test.dir/schemes_param_test.cc.o.d"
  "schemes_param_test"
  "schemes_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemes_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
