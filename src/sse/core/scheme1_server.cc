#include "sse/core/scheme1_server.h"

#include "sse/crypto/prg.h"
#include "sse/util/bitvec.h"
#include "sse/util/serde.h"

namespace sse::core {

Scheme1Server::Scheme1Server(const SchemeOptions& options)
    : options_(options),
      index_(options.use_hash_index, options.btree_order) {}

Result<net::Message> Scheme1Server::Handle(const net::Message& request) {
  switch (request.type) {
    case kMsgS1NonceRequest:
      return HandleNonceRequest(request);
    case kMsgS1UpdateRequest:
      return HandleUpdate(request);
    case kMsgS1SearchRequest:
      return HandleSearchRequest(request);
    case kMsgS1SearchFinish:
      return HandleSearchFinish(request);
    default:
      return Status::ProtocolError("scheme1 server: unexpected message " +
                                   net::MessageTypeName(request.type));
  }
}

Result<net::Message> Scheme1Server::HandleNonceRequest(
    const net::Message& msg) {
  S1NonceRequest req;
  SSE_ASSIGN_OR_RETURN(req, S1NonceRequest::FromMessage(msg));
  S1NonceReply reply;
  reply.entries.reserve(req.tokens.size());
  for (const Bytes& token : req.tokens) {
    S1NonceEntry e;
    const Entry* entry = index_.Get(token);
    if (entry != nullptr) {
      e.present = true;
      e.enc_nonce = entry->enc_nonce;
    }
    reply.entries.push_back(std::move(e));
  }
  return reply.ToMessage();
}

Result<net::Message> Scheme1Server::HandleUpdate(const net::Message& msg) {
  S1UpdateRequest req;
  SSE_ASSIGN_OR_RETURN(req, S1UpdateRequest::FromMessage(msg));
  const size_t bitmap_bytes = (options_.max_documents + 7) / 8;
  for (const S1UpdateEntry& e : req.entries) {
    if (e.masked_delta.size() != bitmap_bytes) {
      return Status::ProtocolError(
          "masked bitmap has wrong size: got " +
          std::to_string(e.masked_delta.size()) + ", want " +
          std::to_string(bitmap_bytes));
    }
    if (e.is_new) {
      if (index_.Contains(e.token)) {
        return Status::ProtocolError(
            "update marks token as new but it already exists");
      }
      index_bytes_ += e.masked_delta.size() + e.new_enc_nonce.size();
      index_.Put(e.token, Entry{e.masked_delta, e.new_enc_nonce});
    } else {
      Entry* entry = index_.GetMutable(e.token);
      if (entry == nullptr) {
        return Status::ProtocolError(
            "update targets a token the server does not hold");
      }
      // (I(w) ⊕ G(r)) ⊕ (U(w) ⊕ G(r) ⊕ G(r')) = I'(w) ⊕ G(r').
      SSE_RETURN_IF_ERROR(XorInPlace(entry->masked_bitmap, e.masked_delta));
      index_bytes_ -= entry->enc_nonce.size();
      index_bytes_ += e.new_enc_nonce.size();
      entry->enc_nonce = e.new_enc_nonce;
    }
  }
  for (const WireDocument& doc : req.documents) {
    SSE_RETURN_IF_ERROR(docs_.Put(doc.id, doc.ciphertext));
  }
  S1UpdateAck ack;
  ack.keywords_updated = req.entries.size();
  return ack.ToMessage();
}

Result<net::Message> Scheme1Server::HandleSearchRequest(
    const net::Message& msg) {
  S1SearchRequest req;
  SSE_ASSIGN_OR_RETURN(req, S1SearchRequest::FromMessage(msg));
  S1SearchNonceReply reply;
  const Entry* entry = index_.Get(req.token);
  if (entry != nullptr) {
    reply.found = true;
    reply.enc_nonce = entry->enc_nonce;
  }
  return reply.ToMessage();
}

Result<net::Message> Scheme1Server::HandleSearchFinish(
    const net::Message& msg) {
  S1SearchFinish req;
  SSE_ASSIGN_OR_RETURN(req, S1SearchFinish::FromMessage(msg));
  const Entry* entry = index_.Get(req.token);
  if (entry == nullptr) {
    return Status::ProtocolError("search finish for unknown token");
  }
  // Unmask: (I(w) ⊕ G(r)) ⊕ G(r) = I(w).
  Bytes mask;
  SSE_ASSIGN_OR_RETURN(mask,
                       crypto::PrgExpand(req.nonce, entry->masked_bitmap.size()));
  Bytes plain = entry->masked_bitmap;
  SSE_RETURN_IF_ERROR(XorInPlace(plain, mask));
  BitVec bitmap;
  SSE_ASSIGN_OR_RETURN(bitmap, BitVec::FromBytes(options_.max_documents, plain));

  S1SearchResult result;
  result.ids = bitmap.Ones();
  std::vector<std::pair<uint64_t, Bytes>> fetched;
  SSE_ASSIGN_OR_RETURN(fetched, docs_.GetMany(result.ids));
  for (const auto& [id, blob] : fetched) {
    result.documents.push_back(WireDocument{id, blob});
  }
  return result.ToMessage();
}

Result<Bytes> Scheme1Server::SerializeState() const {
  BufferWriter w;
  w.PutVarint(index_.size());
  index_.ForEach([&](const Bytes& token, const Entry& entry) {
    w.PutBytes(token);
    w.PutBytes(entry.masked_bitmap);
    w.PutBytes(entry.enc_nonce);
    return true;
  });
  w.PutVarint(docs_.size());
  SSE_RETURN_IF_ERROR(docs_.ForEach([&](uint64_t id, const Bytes& blob) {
    w.PutVarint(id);
    w.PutBytes(blob);
    return true;
  }));
  return w.TakeData();
}

Status Scheme1Server::RestoreState(BytesView data) {
  TokenMap<Entry> index(options_.use_hash_index, options_.btree_order);
  storage::DocumentStore docs;
  uint64_t index_bytes = 0;

  BufferReader r(data);
  uint64_t keyword_count = 0;
  SSE_ASSIGN_OR_RETURN(keyword_count, r.GetVarint());
  for (uint64_t i = 0; i < keyword_count; ++i) {
    Bytes token;
    SSE_ASSIGN_OR_RETURN(token, r.GetBytes());
    Entry entry;
    SSE_ASSIGN_OR_RETURN(entry.masked_bitmap, r.GetBytes());
    SSE_ASSIGN_OR_RETURN(entry.enc_nonce, r.GetBytes());
    index_bytes += entry.masked_bitmap.size() + entry.enc_nonce.size();
    index.Put(token, std::move(entry));
  }
  uint64_t doc_count = 0;
  SSE_ASSIGN_OR_RETURN(doc_count, r.GetVarint());
  for (uint64_t i = 0; i < doc_count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, r.GetBytes());
    SSE_RETURN_IF_ERROR(docs.Put(id, std::move(blob)));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());

  index_ = std::move(index);
  docs_ = std::move(docs);
  index_bytes_ = index_bytes;
  return Status::OK();
}

bool Scheme1Server::IsMutating(uint16_t msg_type) const {
  return msg_type == kMsgS1UpdateRequest;
}

Status Scheme1Server::UseLogBackedDocuments(const std::string& path) {
  if (docs_.size() != 0) {
    return Status::FailedPrecondition(
        "cannot switch document backend after documents were stored");
  }
  SSE_ASSIGN_OR_RETURN(docs_, storage::DocumentStore::OpenLogBacked(path));
  return Status::OK();
}

}  // namespace sse::core
