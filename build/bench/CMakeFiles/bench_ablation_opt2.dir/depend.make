# Empty dependencies file for bench_ablation_opt2.
# This may be replaced when dependencies are built.
