# Empty compiler generated dependencies file for cgko_test.
# This may be replaced when dependencies are built.
