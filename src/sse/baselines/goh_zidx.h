#ifndef SSE_BASELINES_GOH_ZIDX_H_
#define SSE_BASELINES_GOH_ZIDX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sse/core/persistable.h"
#include "sse/core/types.h"
#include "sse/core/wire_common.h"
#include "sse/crypto/aead.h"
#include "sse/crypto/keys.h"
#include "sse/crypto/prf.h"
#include "sse/net/channel.h"
#include "sse/storage/document_store.h"
#include "sse/util/bitvec.h"

namespace sse::baselines {

/// Baseline: Goh's Z-IDX secure index (ePrint 2003/216) — one Bloom filter
/// per document.
///
/// The client derives `r` trapdoor subkeys per keyword, `y_i = PRF(k_i, w)`;
/// the codeword for document `id` is `x_i = PRF(y_i, id)`, and each `x_i`
/// sets one bit (`x_i mod m`) in that document's m-bit filter. A search
/// sends `(y_1..y_r)`; the server recomputes the per-document codewords and
/// answers "match" when all r bits are set. Updates are O(1) per document,
/// but every search touches *every* document: the second O(n) comparator.
///
/// Parameters (m, r) trade index size against Bloom false positives, which
/// this scheme genuinely exhibits — our tests measure the rate.
struct GohOptions {
  size_t bloom_bits = 4096;  // m, per document
  size_t num_keys = 8;       // r
};

inline constexpr uint16_t kMsgGohStore = net::kMsgRangeBaseline + 11;
inline constexpr uint16_t kMsgGohStoreAck = net::kMsgRangeBaseline + 12;
inline constexpr uint16_t kMsgGohSearch = net::kMsgRangeBaseline + 13;
inline constexpr uint16_t kMsgGohSearchResult = net::kMsgRangeBaseline + 14;

class GohServer : public core::PersistableHandler {
 public:
  explicit GohServer(const GohOptions& options);

  Result<net::Message> Handle(const net::Message& request) override;
  Result<Bytes> SerializeState() const override;
  Status RestoreState(BytesView data) override;
  bool IsMutating(uint16_t msg_type) const override;

  size_t document_count() const { return docs_.size(); }
  /// Bloom filters probed across all searches (n per search).
  uint64_t filters_probed() const { return filters_probed_; }

 private:
  Result<net::Message> HandleStore(const net::Message& msg);
  Result<net::Message> HandleSearch(const net::Message& msg);

  GohOptions options_;
  std::vector<std::pair<uint64_t, BitVec>> filters_;
  storage::DocumentStore docs_;
  uint64_t filters_probed_ = 0;
};

class GohClient : public core::SseClientInterface {
 public:
  static Result<std::unique_ptr<GohClient>> Create(
      const crypto::MasterKey& key, const GohOptions& options,
      net::Channel* channel, RandomSource* rng);

  Status Store(const std::vector<core::Document>& docs) override;
  Result<core::SearchOutcome> Search(std::string_view keyword) override;
  std::string name() const override { return "goh-zidx"; }

  /// Trapdoor(w): the r subkeys y_i = PRF(k_i, w).
  Result<std::vector<Bytes>> MakeTrapdoor(std::string_view keyword) const;

 private:
  GohClient(std::vector<crypto::Prf> keys, crypto::Aead aead,
            const GohOptions& options, net::Channel* channel,
            RandomSource* rng);

  std::vector<crypto::Prf> keys_;  // k_1 .. k_r
  crypto::Aead aead_;
  GohOptions options_;
  net::Channel* channel_;
  RandomSource* rng_;
};

/// Bit position a codeword selects in an m-bit filter (shared by client
/// insertion and server probing).
Result<uint64_t> GohBitPosition(const Bytes& subkey, uint64_t doc_id,
                                size_t bloom_bits);

}  // namespace sse::baselines

#endif  // SSE_BASELINES_GOH_ZIDX_H_
