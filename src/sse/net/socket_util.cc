#include "sse/net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sse::net {

Status SetNonBlocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Status::IoError("fcntl(F_GETFL) failed: " +
                           std::string(std::strerror(errno)));
  }
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) != 0) {
    return Status::IoError("fcntl(F_SETFL) failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void ApplyIoTimeouts(int fd, double send_ms, double recv_ms) {
  auto to_timeval = [](double ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (ms - 1000.0 * static_cast<double>(tv.tv_sec)) * 1000.0);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;  // min 1ms
    return tv;
  };
  if (send_ms > 0.0) {
    timeval tv = to_timeval(send_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (recv_ms > 0.0) {
    timeval tv = to_timeval(recv_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
}

Result<int> ListenTcp(uint16_t port, int backlog, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("bind failed: " + std::string(std::strerror(errno)));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    return Status::IoError("listen failed: " +
                           std::string(std::strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return Status::IoError("getsockname failed");
  }
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  return fd;
}

Result<int> DialTcp(const std::string& host, uint16_t port,
                    double connect_timeout_ms, double send_timeout_ms,
                    double recv_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("invalid host address: " + host);
  }

  if (connect_timeout_ms > 0.0) {
    // Bounded connect: dial non-blocking, wait for writability with poll.
    if (Status s = SetNonBlocking(fd, true); !s.ok()) {
      ::close(fd);
      return s;
    }
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int timeout_ms = connect_timeout_ms > 1.0
                                 ? static_cast<int>(connect_timeout_ms)
                                 : 1;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        ::close(fd);
        return Status::DeadlineExceeded("connect timed out");
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (rc < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        const int err = so_error != 0 ? so_error : errno;
        ::close(fd);
        return Status::IoError("connect failed: " +
                               std::string(std::strerror(err)));
      }
    } else if (rc != 0) {
      ::close(fd);
      return Status::IoError("connect failed: " +
                             std::string(std::strerror(errno)));
    }
    if (Status s = SetNonBlocking(fd, false); !s.ok()) {
      ::close(fd);
      return s;
    }
  } else {
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      ::close(fd);
      return Status::IoError("connect failed: " +
                             std::string(std::strerror(errno)));
    }
  }

  SetNoDelay(fd);
  ApplyIoTimeouts(fd, send_timeout_ms, recv_timeout_ms);
  return fd;
}

Status WriteAllBlocking(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Status::DeadlineExceeded("socket send timed out");
      }
      return Status::IoError("socket send failed: " +
                             std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

IoResult ReadSomeNonBlocking(int fd, uint8_t* buf, size_t cap, size_t* n) {
  *n = 0;
  for (;;) {
    const ssize_t got = ::recv(fd, buf, cap, 0);
    if (got > 0) {
      *n = static_cast<size_t>(got);
      return IoResult::kOk;
    }
    if (got == 0) return IoResult::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    return IoResult::kError;
  }
}

IoResult WriteSomeNonBlocking(int fd, const uint8_t* data, size_t len,
                              size_t* n) {
  *n = 0;
  for (;;) {
    const ssize_t sent = ::send(fd, data, len, MSG_NOSIGNAL);
    if (sent > 0) {
      *n = static_cast<size_t>(sent);
      return IoResult::kOk;
    }
    if (sent == 0) return IoResult::kWouldBlock;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    return IoResult::kError;
  }
}

}  // namespace sse::net
