#ifndef SSE_OBS_SLO_H_
#define SSE_OBS_SLO_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sse/obs/metrics_registry.h"

namespace sse::obs {

/// Op classes the SLO layer tracks. The values mirror net::OpClass
/// (search / mutation / control) but are redeclared here so obs stays a
/// leaf: the serving layer maps its classification into this enum at the
/// record site instead of obs depending on net.
enum class SloClass : uint8_t { kSearch = 0, kMutation = 1, kControl = 2 };
inline constexpr size_t kSloClasses = 3;

const char* SloClassName(SloClass c);

/// Per-class service objectives. A request is *good* when it succeeded AND
/// finished under the class's latency threshold; the objective is the
/// target fraction of good requests per window. Burn rate is the standard
/// multi-window SRE signal: (1 - attainment) / (1 - objective) — 1.0 means
/// the error budget burns exactly as fast as it accrues, >>1 means an
/// alert-worthy incident in progress.
struct SloOptions {
  /// Target good-request fraction per class (search, mutation, control).
  std::array<double, kSloClasses> objective = {0.999, 0.995, 0.999};
  /// Latency threshold per class in microseconds; a slower success still
  /// spends error budget. 0 disables the latency criterion for the class.
  std::array<uint64_t, kSloClasses> latency_threshold_us = {10'000, 50'000,
                                                            250'000};
  /// Ring geometry: `buckets` buckets of `bucket_seconds` each bound the
  /// longest window a snapshot can ask for.
  uint32_t bucket_seconds = 1;
  size_t buckets = 600;
  /// The two standard alerting windows (seconds). Fast catches cliffs,
  /// slow filters blips; both must fit inside the ring.
  uint32_t fast_window_s = 60;
  uint32_t slow_window_s = 300;
};

/// Sliding-window SLO accounting from time-bucketed rings.
///
/// Each (class, second) pair lands in one ring bucket holding three
/// relaxed atomic counters (total / errors / slow successes) plus the
/// epoch second it belongs to. Recording is a handful of relaxed atomic
/// ops — cheap enough for every served frame — and rotation is implicit:
/// a bucket whose stored epoch is stale is re-claimed by CAS when its slot
/// comes around again, so idle gaps cost nothing and leave no ghost
/// samples (a window sum simply skips buckets whose epoch falls outside
/// it). The one documented race: a sample recorded in the same nanosecond
/// a bucket is being re-claimed can be lost; monitoring tolerates that,
/// exactness does not belong on this path.
///
/// Snapshots sum the live buckets inside a window and are merge-able, so
/// per-thread or per-process views compose (Window::Merge).
class SloTracker {
 public:
  SloTracker();
  explicit SloTracker(SloOptions options);

  /// The process-wide tracker the serving layer records into and the
  /// stats scrape renders. Its gauges are registered on first use.
  static SloTracker& Global();

  /// Overrides the options Global() will be constructed with. Effective
  /// only before the first Global() call — returns false (and changes
  /// nothing) once the tracker exists, because rewiring objectives under
  /// live recorders would corrupt the windows. Intended for process entry
  /// points translating deployment knobs (e.g. SSE_SLO_SEARCH_MS).
  static bool ConfigureGlobal(const SloOptions& options);

  /// Records one finished request. `ok` is the application verdict (an
  /// error reply or a shed counts against availability); latency is the
  /// server-side cost including queue wait.
  void Record(SloClass c, uint64_t latency_ns, bool ok);
  /// Test seam: record at an explicit epoch second.
  void RecordAt(SloClass c, uint64_t latency_ns, bool ok, int64_t now_s);

  /// One window's aggregate. Empty windows report perfect attainment —
  /// no traffic spends no budget.
  struct Window {
    uint64_t total = 0;
    uint64_t errors = 0;  // !ok
    uint64_t slow = 0;    // ok but over the class latency threshold
    double availability() const {
      return total == 0
                 ? 1.0
                 : 1.0 - static_cast<double>(errors) / static_cast<double>(total);
    }
    /// Good-request fraction: ok AND under the threshold.
    double attainment() const {
      return total == 0 ? 1.0
                        : static_cast<double>(total - errors - slow) /
                              static_cast<double>(total);
    }
    void Merge(const Window& other) {
      total += other.total;
      errors += other.errors;
      slow += other.slow;
    }
  };

  struct ClassReport {
    Window fast;
    Window slow;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    /// Verdict per window: attainment meets the class objective.
    bool fast_ok = true;
    bool slow_ok = true;
  };
  struct Report {
    std::array<ClassReport, kSloClasses> classes;
    const ClassReport& of(SloClass c) const {
      return classes[static_cast<size_t>(c)];
    }
  };

  /// Aggregate of the trailing `window_s` seconds ending at `now_s`.
  Window WindowAt(SloClass c, uint32_t window_s, int64_t now_s) const;

  /// Fast+slow windows, burn rates and verdicts for every class.
  Report Snapshot() const;
  Report SnapshotAt(int64_t now_s) const;

  /// Burn rate of `w` against the class objective.
  double BurnRate(SloClass c, const Window& w) const;

  /// Registers the sse_slo_* gauge family into `registry`; keep the
  /// registrations alive as long as scrapes should see this tracker.
  [[nodiscard]] std::vector<MetricsRegistry::Registration> RegisterGauges(
      MetricsRegistry& registry);

  /// One-line human digest ("search avail=100.00% att=99.90% burn=1.0/0.2
  /// ...") used by StatsLogger; classes with no traffic in the slow window
  /// are skipped unless `include_idle`.
  std::string Summary(bool include_idle = false) const;

  const SloOptions& options() const { return options_; }

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

 private:
  struct Bucket {
    std::atomic<int64_t> epoch{-1};  // bucket-epoch (now_s / bucket_seconds)
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> slow{0};
  };

  SloOptions options_;
  /// kSloClasses rings of options_.buckets each, flattened.
  std::vector<Bucket> buckets_;
};

/// Process-wide gate for the serving layer's SLO recording (mirrors the
/// crypto-timer gate): one relaxed load per frame when off, so benches can
/// price the layer. Default on.
bool SloRecordingEnabled();
void SetSloRecordingEnabled(bool enabled);

}  // namespace sse::obs

#endif  // SSE_OBS_SLO_H_
