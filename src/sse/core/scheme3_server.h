#ifndef SSE_CORE_SCHEME3_SERVER_H_
#define SSE_CORE_SCHEME3_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "sse/core/options.h"
#include "sse/core/persistable.h"
#include "sse/core/scheme3_messages.h"
#include "sse/core/token_map.h"
#include "sse/storage/document_store.h"

namespace sse::core {

/// The honest-but-curious server of Scheme 3 (forward-private dynamic SSE,
/// after Etemad–Küpçü).
///
/// The index is a flat map from unlinkable addresses f'(k_j) to encrypted
/// posting deltas E_{k_j}(I_j(w)) — there is no per-keyword structure the
/// server could correlate updates through. A search trapdoor (k_c, c)
/// releases the newest chain key; the server walks the chain FORWARD
/// (toward older keys), probing f'(position) against the index at each of
/// the c positions and decrypting every hit. It can never derive the key
/// (or address) of an update made after the trapdoor was released — that
/// is the forward-privacy guarantee.
///
/// Unlike Scheme 2 there is no plaintext result cache: searches touch no
/// server state (the stat counters are relaxed atomics), so the engine
/// runs them under a shared lock.
class Scheme3Server : public PersistableHandler {
 public:
  explicit Scheme3Server(const SchemeOptions& options);

  Result<net::Message> Handle(const net::Message& request) override;

  Result<Bytes> SerializeState() const override;
  Status RestoreState(BytesView data) override;
  bool IsMutating(uint16_t msg_type) const override;

  /// Index entries — one per counted update. The server cannot know how
  /// many unique keywords they cover; this is the closest analogue the
  /// shard interface's `unique_keywords` can have for this scheme.
  size_t unique_keywords() const { return index_.size(); }
  size_t document_count() const { return docs_.size(); }
  uint64_t stored_index_bytes() const { return index_bytes_; }
  uint64_t index_comparisons() const { return index_.comparisons(); }
  void ResetIndexStats() { index_.ResetStats(); }

  /// Total chain steps walked / entries decrypted across all searches.
  uint64_t total_chain_steps() const {
    return total_chain_steps_.load(std::memory_order_relaxed);
  }
  uint64_t total_entries_decrypted() const {
    return total_entries_decrypted_.load(std::memory_order_relaxed);
  }

  /// Switches document ciphertexts to an on-disk LogStore (see
  /// SchemeOptions::document_log_path).
  Status UseLogBackedDocuments(const std::string& path);

 private:
  Result<net::Message> HandleUpdate(const net::Message& msg);
  Result<net::Message> HandleSearch(const net::Message& msg) const;

  SchemeOptions options_;
  TokenMap<Bytes> index_;  // f'(k_j) -> E_{k_j}(delta id list)
  storage::DocumentStore docs_;
  uint64_t index_bytes_ = 0;
  // Search-path stats; relaxed atomics because searches run concurrently
  // under the engine's shared shard lock.
  mutable std::atomic<uint64_t> total_chain_steps_{0};
  mutable std::atomic<uint64_t> total_entries_decrypted_{0};
};

}  // namespace sse::core

#endif  // SSE_CORE_SCHEME3_SERVER_H_
