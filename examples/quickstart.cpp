// Quickstart: store three encrypted documents on an (in-process) untrusted
// server and search them by keyword.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "sse/core/registry.h"
#include "sse/crypto/keys.h"
#include "sse/util/random.h"

int main() {
  using namespace sse;

  // 1. Keygen(s): the client's master key. Production code would persist
  //    this secret; everything stored server-side is useless without it.
  SystemRandom& rng = SystemRandom::Instance();
  auto key = crypto::MasterKey::Generate(rng);
  if (!key.ok()) {
    std::fprintf(stderr, "keygen failed: %s\n", key.status().ToString().c_str());
    return 1;
  }

  // 2. Wire up a client/server pair. kScheme2 = the paper's
  //    communication-efficient variant (one-round search). Swap in
  //    kScheme1 for the computationally efficient variant.
  core::SystemConfig config;
  config.scheme.max_documents = 1 << 16;
  auto system = core::CreateSystem(core::SystemKind::kScheme2, *key, config,
                                   &rng);
  if (!system.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  // 3. Store documents: content is AEAD-encrypted, keywords become
  //    searchable representations the server cannot read.
  Status stored = system->client->Store({
      core::Document::Make(0, "Grocery list: apples, oat milk", {"groceries"}),
      core::Document::Make(1, "Meeting notes from Monday", {"work", "notes"}),
      core::Document::Make(2, "Trip checklist and bookings", {"travel", "notes"}),
  });
  if (!stored.ok()) {
    std::fprintf(stderr, "store failed: %s\n", stored.ToString().c_str());
    return 1;
  }

  // 4. Search. The server matches the trapdoor against its token tree and
  //    returns the encrypted documents; the client decrypts locally.
  auto outcome = system->client->Search("notes");
  if (!outcome.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("documents matching \"notes\": %zu\n", outcome->ids.size());
  for (const auto& [id, content] : outcome->documents) {
    std::printf("  #%llu: %s\n", static_cast<unsigned long long>(id),
                BytesToString(content).c_str());
  }

  // 5. What did the exchange cost? The instrumented channel knows.
  std::printf("traffic so far: %s\n",
              system->channel->stats().ToString().c_str());
  return 0;
}
