#ifndef SSE_STORAGE_LOG_STORE_H_
#define SSE_STORAGE_LOG_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::storage {

/// Append-only key-value store (bitcask design): one data file, every
/// Put/Delete appends a checksummed record, and an in-memory index maps
/// each live key to its newest record's offset. Reads are one pread;
/// recovery is a single sequential scan (torn tails tolerated, mid-file
/// corruption reported); `Compact()` rewrites only live records and swaps
/// the file atomically.
///
/// This is the scale-path backend for the encrypted document store: values
/// are opaque ciphertext blobs that never need range scans, exactly the
/// access pattern a log-structured store serves best. Keys are arbitrary
/// byte strings (document ids, tokens, anything).
///
/// Record format, little-endian:
///   len:u32  crc32c(payload):u32  payload
///   payload := flags:u8 (0 = put, 1 = tombstone) ‖ key:bytes ‖ value:bytes
/// (tombstones omit the value field).
class LogStore {
 public:
  ~LogStore();
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  /// Opens (creating if absent) the store at `path` and rebuilds the
  /// index by scanning. A torn final record is truncated away.
  static Result<std::unique_ptr<LogStore>> Open(const std::string& path);

  /// Inserts or overwrites `key`.
  Status Put(BytesView key, BytesView value);

  /// Returns the newest value for `key`, or NOT_FOUND.
  Result<Bytes> Get(BytesView key) const;

  bool Contains(BytesView key) const;

  /// Removes `key` (appends a tombstone). Returns true if it was present.
  Result<bool> Delete(BytesView key);

  /// Flushes and fsyncs the data file.
  Status Sync();

  /// Rewrites the file keeping only live records; atomic (temp + rename).
  /// Reclaims the garbage accumulated by overwrites and tombstones.
  Status Compact();

  /// Visits every live (key, value). Order unspecified. Reads values from
  /// disk, so the callback sees exactly what recovery would.
  Status ForEach(
      const std::function<Status(BytesView key, BytesView value)>& fn) const;

  size_t live_keys() const { return index_.size(); }
  /// Current data file size in bytes.
  uint64_t file_bytes() const { return tail_offset_; }
  /// Bytes occupied by superseded records and tombstones (reclaimable).
  uint64_t garbage_bytes() const { return garbage_bytes_; }
  const std::string& path() const { return path_; }

 private:
  struct Slot {
    uint64_t offset = 0;  // of the record header
    uint32_t record_len = 0;  // header + payload
  };

  LogStore(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  Status ScanAndIndex();
  Result<Bytes> ReadValueAt(const Slot& slot, BytesView expect_key) const;
  Status AppendRecord(uint8_t flags, BytesView key, BytesView value,
                      Slot* out_slot);

  std::string path_;
  int fd_ = -1;
  uint64_t tail_offset_ = 0;
  uint64_t garbage_bytes_ = 0;
  std::unordered_map<std::string, Slot> index_;
};

}  // namespace sse::storage

#endif  // SSE_STORAGE_LOG_STORE_H_
