#include "sse/crypto/aead.h"

#include <openssl/evp.h>

namespace sse::crypto {

namespace {

/// RAII holder for EVP_CIPHER_CTX.
struct CipherCtx {
  EVP_CIPHER_CTX* ctx = EVP_CIPHER_CTX_new();
  ~CipherCtx() { EVP_CIPHER_CTX_free(ctx); }
};

}  // namespace

Result<Aead> Aead::Create(BytesView key) {
  if (key.size() != kAeadKeySize) {
    return Status::InvalidArgument("AEAD key must be 32 bytes, got " +
                                   std::to_string(key.size()));
  }
  return Aead(ToBytes(key));
}

Result<Bytes> Aead::Seal(BytesView plaintext, BytesView associated_data,
                         RandomSource& rng) const {
  Bytes nonce(kAeadNonceSize);
  SSE_RETURN_IF_ERROR(rng.Fill(nonce));

  CipherCtx c;
  if (c.ctx == nullptr) return Status::CryptoError("EVP_CIPHER_CTX_new failed");
  if (EVP_EncryptInit_ex(c.ctx, EVP_aes_256_gcm(), nullptr, key_.data(),
                         nonce.data()) != 1) {
    return Status::CryptoError("GCM EncryptInit failed");
  }
  int len = 0;
  if (!associated_data.empty() &&
      EVP_EncryptUpdate(c.ctx, nullptr, &len, associated_data.data(),
                        static_cast<int>(associated_data.size())) != 1) {
    return Status::CryptoError("GCM AAD update failed");
  }
  Bytes out(kAeadNonceSize + plaintext.size() + kAeadTagSize);
  std::copy(nonce.begin(), nonce.end(), out.begin());
  if (!plaintext.empty() &&
      EVP_EncryptUpdate(c.ctx, out.data() + kAeadNonceSize, &len,
                        plaintext.data(),
                        static_cast<int>(plaintext.size())) != 1) {
    return Status::CryptoError("GCM EncryptUpdate failed");
  }
  if (EVP_EncryptFinal_ex(c.ctx, out.data() + kAeadNonceSize + plaintext.size(),
                          &len) != 1) {
    return Status::CryptoError("GCM EncryptFinal failed");
  }
  if (EVP_CIPHER_CTX_ctrl(c.ctx, EVP_CTRL_GCM_GET_TAG, kAeadTagSize,
                          out.data() + kAeadNonceSize + plaintext.size()) != 1) {
    return Status::CryptoError("GCM get tag failed");
  }
  return out;
}

Result<Bytes> Aead::Open(BytesView ciphertext, BytesView associated_data) const {
  if (ciphertext.size() < kAeadOverhead) {
    return Status::CryptoError("AEAD ciphertext too short");
  }
  const uint8_t* nonce = ciphertext.data();
  const uint8_t* ct = ciphertext.data() + kAeadNonceSize;
  const size_t ct_len = ciphertext.size() - kAeadOverhead;
  const uint8_t* tag = ciphertext.data() + kAeadNonceSize + ct_len;

  CipherCtx c;
  if (c.ctx == nullptr) return Status::CryptoError("EVP_CIPHER_CTX_new failed");
  if (EVP_DecryptInit_ex(c.ctx, EVP_aes_256_gcm(), nullptr, key_.data(),
                         nonce) != 1) {
    return Status::CryptoError("GCM DecryptInit failed");
  }
  int len = 0;
  if (!associated_data.empty() &&
      EVP_DecryptUpdate(c.ctx, nullptr, &len, associated_data.data(),
                        static_cast<int>(associated_data.size())) != 1) {
    return Status::CryptoError("GCM AAD update failed");
  }
  Bytes plaintext(ct_len);
  if (ct_len > 0 && EVP_DecryptUpdate(c.ctx, plaintext.data(), &len, ct,
                                      static_cast<int>(ct_len)) != 1) {
    return Status::CryptoError("GCM DecryptUpdate failed");
  }
  Bytes tag_copy(tag, tag + kAeadTagSize);
  if (EVP_CIPHER_CTX_ctrl(c.ctx, EVP_CTRL_GCM_SET_TAG, kAeadTagSize,
                          tag_copy.data()) != 1) {
    return Status::CryptoError("GCM set tag failed");
  }
  if (EVP_DecryptFinal_ex(c.ctx, plaintext.data() + ct_len, &len) != 1) {
    return Status::CryptoError("AEAD authentication failed");
  }
  return plaintext;
}

}  // namespace sse::crypto
