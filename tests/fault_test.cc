// Failure injection: clients must surface transport faults as clean
// errors, leave consistent state behind, and recover on retry.

#include "sse/net/fault.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme2_client.h"
#include "test_util.h"

namespace sse {
namespace {

using core::Document;
using core::SystemKind;
using net::FaultInjectionChannel;
using sse::testing::FastTestConfig;
using sse::testing::TestMasterKey;

template <typename ClientT>
struct Harness {
  explicit Harness(SystemKind kind)
      : rng(1),
        sys(sse::testing::MakeTestSystem(kind, &rng)),
        faulty(sys.channel.get()) {
    auto created = ClientT::Create(TestMasterKey(), FastTestConfig().scheme,
                                   &faulty, &rng);
    EXPECT_TRUE(created.ok());
    client = std::move(created).value();
  }
  DeterministicRandom rng;
  core::SseSystem sys;  // provides the server + inner channel
  FaultInjectionChannel faulty;
  std::unique_ptr<ClientT> client;
};

TEST(FaultTest, Scheme1RequestLostDuringUpdateLeavesServerUntouched) {
  Harness<core::Scheme1Client> h(SystemKind::kScheme1);
  // Fail the very first call (round 1 of the update).
  h.faulty.FailCall(0, FaultInjectionChannel::FaultPoint::kRequestLost);
  Status s = h.client->Store({Document::Make(0, "a", {"kw"})});
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // Retry succeeds and the data is correct.
  SSE_ASSERT_OK(h.client->Store({Document::Make(0, "a", {"kw"})}));
  auto outcome = h.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
}

TEST(FaultTest, Scheme1ReplyLostAfterApplyIsThePoisonCase) {
  // The apply message (call 1) is processed but unacknowledged. A naive
  // retry of the WHOLE Store would fetch fresh nonces and apply a correct
  // second delta — but the client-side used_ids guard was never set, and
  // the XOR delta for the same ids toggles them OFF again. The client must
  // therefore not blindly re-run Store after an ambiguous failure; the
  // test pins this documented behavior.
  Harness<core::Scheme1Client> h(SystemKind::kScheme1);
  h.faulty.FailCall(1, FaultInjectionChannel::FaultPoint::kReplyLost);
  Status s = h.client->Store({Document::Make(0, "a", {"kw"})});
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // The update WAS applied server-side despite the error:
  // a fresh search (calls 2,3) finds the document.
  auto outcome = h.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
  // Blind retry toggles the posting off — ambiguous-ack retries need
  // idempotence checks above this layer (e.g. search-before-retry).
  SSE_ASSERT_OK(h.client->Store({Document::Make(0, "a", {"kw"})}));
  auto after_retry = h.client->Search("kw");
  SSE_ASSERT_OK_RESULT(after_retry);
  EXPECT_TRUE(after_retry->ids.empty());
}

TEST(FaultTest, Scheme2RetryAfterLostRequestIsSafe) {
  Harness<core::Scheme2Client> h(SystemKind::kScheme2);
  h.faulty.FailCall(0, FaultInjectionChannel::FaultPoint::kRequestLost);
  Status s = h.client->Store({Document::Make(0, "a", {"kw"})});
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  SSE_ASSERT_OK(h.client->Store({Document::Make(0, "a", {"kw"})}));
  auto outcome = h.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
}

TEST(FaultTest, Scheme2RetryAfterLostReplyIsIdempotent) {
  // Scheme 2's append-only segments make the ambiguous case benign: the
  // retry appends a duplicate segment with the same ids; the union is
  // unchanged. This asymmetry vs Scheme 1 is a real deployment
  // consideration the paper's comparison table does not mention.
  Harness<core::Scheme2Client> h(SystemKind::kScheme2);
  h.faulty.FailCall(0, FaultInjectionChannel::FaultPoint::kReplyLost);
  Status s = h.client->Store({Document::Make(0, "a", {"kw"})});
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  SSE_ASSERT_OK(h.client->Store({Document::Make(0, "a", {"kw"})}));
  auto outcome = h.client->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, std::vector<uint64_t>{0});
}

TEST(FaultTest, SearchFailuresAreTransient) {
  Harness<core::Scheme2Client> h(SystemKind::kScheme2);
  SSE_ASSERT_OK(h.client->Store({Document::Make(0, "a", {"kw"})}));
  h.faulty.FailCall(1, FaultInjectionChannel::FaultPoint::kReplyLost);
  EXPECT_FALSE(h.client->Search("kw").ok());
  auto retry = h.client->Search("kw");
  SSE_ASSERT_OK_RESULT(retry);
  EXPECT_EQ(retry->ids, std::vector<uint64_t>{0});
  EXPECT_EQ(h.faulty.faults_injected(), 1u);
}

TEST(FaultTest, ReplyDuplicatedShiftsTheStreamOffByOne) {
  // After a duplicated reply, every later call is answered with the
  // buffered stale reply while its own queues behind — the protocol layer
  // receives answers to the WRONG questions until the stream is flushed.
  Harness<core::Scheme2Client> h(SystemKind::kScheme2);
  SSE_ASSERT_OK(h.client->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK(h.client->Store({Document::Make(1, "b", {"other"})}));
  h.faulty.FailCall(2, FaultInjectionChannel::FaultPoint::kReplyDuplicated);
  // Call 2: the search gets its own reply (plus a buffered duplicate), so
  // it still succeeds.
  auto first = h.client->Search("kw");
  SSE_ASSERT_OK_RESULT(first);
  EXPECT_EQ(first->ids, std::vector<uint64_t>{0});
  // Call 3: answered with the stale duplicate of call 2 — a search for
  // "other" sees "kw"'s hits. Without session stamps this corruption is
  // silent, which is exactly what RetryingChannel's echo check prevents.
  auto second = h.client->Search("other");
  if (second.ok()) {
    EXPECT_EQ(second->ids, std::vector<uint64_t>{0});  // wrong answer!
  }
  // A reconnect (Reset) flushes the backlog and resynchronizes.
  h.faulty.Reset();
  auto third = h.client->Search("other");
  SSE_ASSERT_OK_RESULT(third);
  EXPECT_EQ(third->ids, std::vector<uint64_t>{1});
  EXPECT_EQ(h.faulty.faults_injected(), 1u);
}

TEST(FaultTest, WrapperKeepsItsOwnStats) {
  // The injector counts traffic (and faults) itself rather than delegating
  // to the inner channel: a dropped request is a round the client paid for
  // even though the server never saw it.
  Harness<core::Scheme2Client> h(SystemKind::kScheme2);
  h.faulty.FailCall(0, FaultInjectionChannel::FaultPoint::kRequestLost);
  EXPECT_FALSE(h.client->Store({Document::Make(0, "a", {"kw"})}).ok());
  EXPECT_EQ(h.faulty.stats().rounds, 1u);
  EXPECT_EQ(h.faulty.stats().injected_faults, 1u);
  EXPECT_GT(h.faulty.stats().bytes_sent, 0u);
  EXPECT_EQ(h.faulty.stats().bytes_received, 0u);  // nothing came back
  // The inner channel never carried the dropped round.
  EXPECT_EQ(h.sys.channel->stats().rounds, 0u);

  SSE_ASSERT_OK(h.client->Store({Document::Make(0, "a", {"kw"})}));
  EXPECT_GT(h.faulty.stats().bytes_received, 0u);
  EXPECT_NE(h.faulty.stats().ToString().find("faults=1"), std::string::npos);
}

}  // namespace
}  // namespace sse
