file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_flows.dir/bench_protocol_flows.cc.o"
  "CMakeFiles/bench_protocol_flows.dir/bench_protocol_flows.cc.o.d"
  "bench_protocol_flows"
  "bench_protocol_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
