#include "sse/util/bytes.h"

#include <gtest/gtest.h>

namespace sse {
namespace {

TEST(BytesTest, StringRoundTrip) {
  const std::string s = "hello\0world";  // embedded NUL survives
  Bytes b = StringToBytes(s);
  EXPECT_EQ(BytesToString(b), s);
}

TEST(BytesTest, HexEncode) {
  EXPECT_EQ(HexEncode(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
  EXPECT_EQ(HexEncode(Bytes{}), "");
  EXPECT_EQ(HexEncode(Bytes{0x00, 0x0f}), "000f");
}

TEST(BytesTest, HexDecodeRoundTrip) {
  Bytes original{0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef};
  auto decoded = HexDecode(HexEncode(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(BytesTest, HexDecodeAcceptsUppercase) {
  auto decoded = HexDecode("DEADBEEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
  EXPECT_FALSE(HexDecode("a ").ok());
}

TEST(BytesTest, Concat) {
  Bytes a{1, 2};
  Bytes b{3};
  Bytes c{4, 5, 6};
  EXPECT_EQ(Concat(a, b), (Bytes{1, 2, 3}));
  EXPECT_EQ(Concat(a, b, c), (Bytes{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(Concat(Bytes{}, Bytes{}), Bytes{});
}

TEST(BytesTest, XorInPlace) {
  Bytes a{0xff, 0x00, 0xaa};
  Bytes b{0x0f, 0xf0, 0xaa};
  ASSERT_TRUE(XorInPlace(a, b).ok());
  EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
}

TEST(BytesTest, XorRejectsSizeMismatch) {
  Bytes a{1, 2};
  EXPECT_FALSE(XorInPlace(a, Bytes{1}).ok());
  EXPECT_FALSE(Xor(Bytes{1, 2}, Bytes{1}).ok());
}

TEST(BytesTest, XorIsSelfInverse) {
  Bytes data{0x12, 0x34, 0x56};
  Bytes mask{0xab, 0xcd, 0xef};
  auto once = Xor(data, mask);
  ASSERT_TRUE(once.ok());
  auto twice = Xor(*once, mask);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(*twice, data);
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEqual(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEqual(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEqual(Bytes{}, Bytes{}));
}

TEST(BytesTest, CompareOrdersLexicographically) {
  EXPECT_EQ(Compare(Bytes{1, 2}, Bytes{1, 2}), 0);
  EXPECT_LT(Compare(Bytes{1, 2}, Bytes{1, 3}), 0);
  EXPECT_GT(Compare(Bytes{2}, Bytes{1, 9, 9}), 0);
  EXPECT_LT(Compare(Bytes{1, 2}, Bytes{1, 2, 0}), 0);  // prefix sorts first
  EXPECT_LT(Compare(Bytes{}, Bytes{0}), 0);
}

}  // namespace
}  // namespace sse
