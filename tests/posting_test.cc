#include "sse/index/posting.h"

#include <gtest/gtest.h>

#include "sse/util/random.h"

namespace sse::index {
namespace {

TEST(PostingTest, EncodeDecodeRoundTrip) {
  const DocIdList ids{0, 1, 5, 100, 1000000, 1000001};
  auto encoded = EncodeIdList(ids);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeIdList(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, ids);
}

TEST(PostingTest, EmptyList) {
  auto encoded = EncodeIdList({});
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->size(), 1u);  // just the count varint
  auto decoded = DecodeIdList(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(PostingTest, DeltaEncodingIsCompact) {
  // 1000 consecutive small ids must encode in ~1 byte each.
  DocIdList ids;
  for (uint64_t i = 0; i < 1000; ++i) ids.push_back(i);
  auto encoded = EncodeIdList(ids);
  ASSERT_TRUE(encoded.ok());
  EXPECT_LT(encoded->size(), 1100u);
}

TEST(PostingTest, EncodeRejectsUnsorted) {
  EXPECT_FALSE(EncodeIdList({3, 1}).ok());
  EXPECT_FALSE(EncodeIdList({1, 1}).ok());  // duplicates rejected too
}

TEST(PostingTest, DecodeRejectsCorruptions) {
  // Count larger than payload.
  Bytes bogus{0xff, 0xff, 0x01};
  EXPECT_FALSE(DecodeIdList(bogus).ok());
  // Trailing garbage after a valid list.
  auto encoded = EncodeIdList({1, 2});
  ASSERT_TRUE(encoded.ok());
  Bytes padded = *encoded;
  padded.push_back(0);
  EXPECT_FALSE(DecodeIdList(padded).ok());
}

TEST(PostingTest, Canonicalize) {
  EXPECT_EQ(Canonicalize({5, 1, 3, 1, 5}), (DocIdList{1, 3, 5}));
  EXPECT_EQ(Canonicalize({}), DocIdList{});
}

TEST(PostingTest, BitmapConversions) {
  const DocIdList ids{0, 7, 63, 64, 127};
  auto bitmap = IdsToBitmap(128, ids);
  ASSERT_TRUE(bitmap.ok());
  EXPECT_EQ(BitmapToIds(*bitmap), ids);
  EXPECT_FALSE(IdsToBitmap(100, {100}).ok());
}

TEST(PostingTest, MergeIdLists) {
  EXPECT_EQ(MergeIdLists({1, 3, 5}, {2, 3, 6}), (DocIdList{1, 2, 3, 5, 6}));
  EXPECT_EQ(MergeIdLists({}, {1}), DocIdList{1});
  EXPECT_EQ(MergeIdLists({}, {}), DocIdList{});
}

TEST(PostingTest, RandomizedRoundTrip) {
  DeterministicRandom rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    DocIdList ids;
    uint64_t current = 0;
    const size_t n = rng.Next() % 200;
    for (size_t i = 0; i < n; ++i) {
      current += 1 + rng.Next() % 10000;
      ids.push_back(current);
    }
    auto encoded = EncodeIdList(ids);
    ASSERT_TRUE(encoded.ok());
    auto decoded = DecodeIdList(*encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, ids);
  }
}

}  // namespace
}  // namespace sse::index
