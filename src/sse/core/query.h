#ifndef SSE_CORE_QUERY_H_
#define SSE_CORE_QUERY_H_

#include <string>
#include <vector>

#include "sse/core/types.h"

namespace sse::core {

/// Client-side multi-keyword queries composed from single-keyword searches.
///
/// The paper's schemes (like most SSE of the era) natively support only
/// single-keyword trapdoors; conjunctions and disjunctions are evaluated by
/// the *client* over the per-keyword result sets. Leakage note: the server
/// observes one trapdoor and one access pattern per constituent keyword —
/// strictly more than a dedicated conjunctive scheme would reveal.

/// AND: documents matching every keyword. Issues one search per keyword
/// (short-circuits when an intersection empties out).
Result<SearchOutcome> SearchAll(SseClientInterface& client,
                                const std::vector<std::string>& keywords);

/// OR: documents matching at least one keyword.
Result<SearchOutcome> SearchAny(SseClientInterface& client,
                                const std::vector<std::string>& keywords);

/// Difference: matches of `include` with the ids of `exclude` removed.
Result<SearchOutcome> SearchExcept(SseClientInterface& client,
                                   const std::string& include,
                                   const std::string& exclude);

}  // namespace sse::core

#endif  // SSE_CORE_QUERY_H_
