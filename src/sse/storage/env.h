#ifndef SSE_STORAGE_ENV_H_
#define SSE_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::storage {

/// Append-only writable file handle produced by an `Env`.
///
/// All durable state in the storage layer (WAL segments, snapshot staging
/// files) is written through this interface so that tests can substitute a
/// fault-injecting implementation. `Append` either writes every byte or
/// fails; a failed `Sync` must be treated as fail-stop by callers (the
/// kernel may have dropped the dirty pages, so retrying the fsync can
/// silently "succeed" without persisting anything — fsyncgate semantics).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file. Partial writes are reported as
  /// errors; the file contents past the last successful Append are
  /// unspecified after a failure.
  virtual Status Append(BytesView data) = 0;

  /// Flushes application and OS buffers to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Closes the handle. Idempotent; the destructor closes implicitly but
  /// swallows errors, so callers that care should Close explicitly.
  virtual Status Close() = 0;

  /// Logical file size in bytes, including unsynced appends.
  virtual uint64_t size() const = 0;
};

/// Filesystem abstraction (LevelDB-style) scoped to what the storage layer
/// needs: whole-file reads, append-only writes, directory listing, rename,
/// remove, and the two fsync flavours (file data vs. directory entries).
///
/// `SyncDir` exists because POSIX rename is only durable once the parent
/// directory's entries reach disk; creating or renaming a file and then
/// crashing before `SyncDir(parent)` may resurrect the old name (or no
/// file at all) after restart. `FaultyEnv` models exactly that hole.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment.
  static Env* Default();

  /// Opens `path` for appending, creating it if absent. With `truncate`
  /// the existing contents are discarded first.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the entire file. NotFound if it does not exist.
  virtual Result<Bytes> ReadFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Names (not paths) of the entries in `dir`, unsorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  /// Atomically renames `from` to `to`, replacing any existing `to`.
  /// Durable only after `SyncDir` on the parent directory.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  /// Fsyncs the directory itself, making entry creations, renames and
  /// removals in it durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
};

}  // namespace sse::storage

#endif  // SSE_STORAGE_ENV_H_
