#ifndef SSE_CORE_WIRE_COMMON_H_
#define SSE_CORE_WIRE_COMMON_H_

#include <cstdint>
#include <vector>

#include "sse/util/bytes.h"
#include "sse/util/result.h"
#include "sse/util/serde.h"

namespace sse::core {

/// An encrypted document on the wire: (E_{k_m}(M_i), i).
struct WireDocument {
  uint64_t id = 0;
  Bytes ciphertext;
};

/// count ‖ (varint id ‖ bytes ciphertext)*
void PutWireDocuments(BufferWriter& w, const std::vector<WireDocument>& docs);
Result<std::vector<WireDocument>> GetWireDocuments(BufferReader& r);

/// count ‖ varint id* (ids must fit memory; capped against the reader).
void PutIdList(BufferWriter& w, const std::vector<uint64_t>& ids);
Result<std::vector<uint64_t>> GetIdList(BufferReader& r);

/// count ‖ bytes*
void PutBytesList(BufferWriter& w, const std::vector<Bytes>& items);
Result<std::vector<Bytes>> GetBytesList(BufferReader& r);

}  // namespace sse::core

#endif  // SSE_CORE_WIRE_COMMON_H_
