#include "sse/net/deadline.h"

#include <chrono>
#include <string>

namespace sse::net {

namespace {

thread_local Deadline g_current_deadline;

}  // namespace

Deadline Deadline::FromRemainingMs(uint32_t remaining_ms, uint64_t anchor_ns) {
  // Clamp so a huge budget cannot wrap the anchor; 0 remaining is still a
  // real (already expired) deadline, encoded as anchor itself... except
  // expires_ns_ == 0 means "none", so floor the expiry at 1.
  uint64_t expires = anchor_ns + static_cast<uint64_t>(remaining_ms) * 1000000ull;
  if (expires == 0) expires = 1;
  return Deadline(expires);
}

Deadline Deadline::FromMessage(const Message& msg, uint64_t anchor_ns) {
  if (!msg.has_deadline) return Deadline();
  return FromRemainingMs(msg.deadline_ms, anchor_ns);
}

uint64_t Deadline::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t Deadline::RemainingMs(uint64_t now_ns) const {
  if (expires_ns_ == 0) return UINT32_MAX;
  if (now_ns >= expires_ns_) return 0;
  const uint64_t remaining_ms = (expires_ns_ - now_ns) / 1000000ull;
  return remaining_ms > UINT32_MAX ? UINT32_MAX
                                   : static_cast<uint32_t>(remaining_ms);
}

void Deadline::StampMessage(Message* msg) const {
  if (expires_ns_ == 0) {
    msg->has_deadline = false;
    msg->deadline_ms = 0;
    return;
  }
  msg->has_deadline = true;
  msg->deadline_ms = RemainingMs();
}

Deadline CurrentDeadline() { return g_current_deadline; }

ScopedDeadline::ScopedDeadline(const Deadline& deadline)
    : saved_(g_current_deadline) {
  g_current_deadline = deadline;
}

ScopedDeadline::~ScopedDeadline() { g_current_deadline = saved_; }

Status DeadlineExceededStatus(const char* where) {
  return Status::DeadlineExceeded(std::string("deadline expired ") + where);
}

}  // namespace sse::net
