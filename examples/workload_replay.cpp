// workload_replay — drive any of the five systems with a scripted or
// synthetic workload and report cost counters. Useful for trying your own
// access patterns against each scheme before committing to one.
//
// Usage:
//   workload_replay <system> [ops_file]
//
//   <system>  scheme1 | scheme2 | swp | goh-zidx | cgko-sse1
//   ops_file  text file, one operation per line:
//               store <id> <keyword>[,<keyword>...] [content words...]
//               search <keyword>
//               fake <keyword>[,<keyword>...]
//             '#' starts a comment. Without a file, a synthetic Zipf
//             workload of 200 stores and 100 searches runs instead.
//
// Example:
//   ./build/examples/workload_replay scheme2 ops.txt
//   ./build/examples/workload_replay swp            # synthetic workload

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sse/core/registry.h"
#include "sse/phr/workload.h"
#include "sse/util/timer.h"

namespace {

using namespace sse;

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

struct Op {
  enum class Kind { kStore, kSearch, kFake } kind;
  uint64_t id = 0;
  std::vector<std::string> keywords;
  std::string content;
  std::string query;
};

Result<std::vector<Op>> ParseOps(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::IoError("cannot open " + path);
  std::vector<Op> ops;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string verb;
    ls >> verb;
    Op op{};
    if (verb == "store") {
      op.kind = Op::Kind::kStore;
      std::string kws;
      if (!(ls >> op.id >> kws)) {
        return Status::InvalidArgument("bad store at line " +
                                       std::to_string(line_no));
      }
      op.keywords = SplitCommas(kws);
      std::getline(ls, op.content);
      if (op.content.empty()) op.content = "document " + std::to_string(op.id);
    } else if (verb == "search") {
      op.kind = Op::Kind::kSearch;
      if (!(ls >> op.query)) {
        return Status::InvalidArgument("bad search at line " +
                                       std::to_string(line_no));
      }
    } else if (verb == "fake") {
      op.kind = Op::Kind::kFake;
      std::string kws;
      if (!(ls >> kws)) {
        return Status::InvalidArgument("bad fake at line " +
                                       std::to_string(line_no));
      }
      op.keywords = SplitCommas(kws);
    } else {
      return Status::InvalidArgument("unknown verb '" + verb + "' at line " +
                                     std::to_string(line_no));
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<Op> SyntheticOps() {
  std::vector<Op> ops;
  auto docs = phr::GenerateDocuments(200, /*vocabulary=*/64,
                                     /*keywords_per_doc=*/4, 1.0, 4242);
  DeterministicRandom rng(99);
  size_t doc_cursor = 0;
  while (doc_cursor < docs.size()) {
    // Burst of 1-4 stores, then 1-2 searches over popular keywords.
    const size_t burst = 1 + rng.Next() % 4;
    for (size_t b = 0; b < burst && doc_cursor < docs.size(); ++b) {
      const auto& doc = docs[doc_cursor++];
      Op op{};
      op.kind = Op::Kind::kStore;
      op.id = doc.id;
      op.keywords = doc.keywords;
      op.content = "synthetic";
      ops.push_back(std::move(op));
    }
    const size_t searches = 1 + rng.Next() % 2;
    for (size_t s = 0; s < searches; ++s) {
      Op op{};
      op.kind = Op::Kind::kSearch;
      op.query = phr::SyntheticKeyword(rng.Next() % 16);
      ops.push_back(std::move(op));
    }
  }
  return ops;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: workload_replay <system> [ops_file]\n");
    return 2;
  }
  auto kind = core::SystemKindFromName(argv[1]);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 2;
  }

  std::vector<Op> ops;
  if (argc >= 3) {
    auto parsed = ParseOps(argv[2]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    ops = std::move(parsed).value();
  } else {
    ops = SyntheticOps();
    std::printf("no ops file given; running the synthetic workload "
                "(%zu operations)\n", ops.size());
  }

  SystemRandom& rng = SystemRandom::Instance();
  auto key = crypto::MasterKey::Generate(rng);
  if (!key.ok()) return 1;
  core::SystemConfig config;
  config.scheme.max_documents = 1 << 16;
  auto sys = core::CreateSystem(*kind, *key, config, &rng);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
    return 1;
  }

  LatencyStats store_lat;
  LatencyStats search_lat;
  uint64_t results = 0;
  uint64_t errors = 0;
  for (const Op& op : ops) {
    Timer timer;
    switch (op.kind) {
      case Op::Kind::kStore: {
        Status s = sys->client->Store(
            {core::Document::Make(op.id, op.content, op.keywords)});
        if (!s.ok()) {
          std::fprintf(stderr, "store %llu: %s\n",
                       static_cast<unsigned long long>(op.id),
                       s.ToString().c_str());
          ++errors;
        }
        store_lat.Add(timer.ElapsedMicros());
        break;
      }
      case Op::Kind::kSearch: {
        auto outcome = sys->client->Search(op.query);
        if (outcome.ok()) {
          results += outcome->ids.size();
        } else {
          ++errors;
        }
        search_lat.Add(timer.ElapsedMicros());
        break;
      }
      case Op::Kind::kFake: {
        Status s = sys->client->FakeUpdate(op.keywords);
        if (!s.ok() && s.code() != StatusCode::kUnimplemented) ++errors;
        break;
      }
    }
  }

  std::printf("\nsystem: %s, %zu operations, %llu errors\n", argv[1],
              ops.size(), static_cast<unsigned long long>(errors));
  std::printf("stores:   %s\n", store_lat.Summary().c_str());
  std::printf("searches: %s (total results: %llu)\n",
              search_lat.Summary().c_str(),
              static_cast<unsigned long long>(results));
  std::printf("traffic:  %s\n", sys->channel->stats().ToString().c_str());
  return errors == 0 ? 0 : 1;
}
