#include "sse/util/random.h"

#include <openssl/rand.h>

namespace sse {

Result<Bytes> RandomSource::Generate(size_t n) {
  Bytes out(n);
  SSE_RETURN_IF_ERROR(Fill(out));
  return out;
}

Result<uint64_t> RandomSource::NextU64() {
  Bytes b(8);
  SSE_RETURN_IF_ERROR(Fill(b));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return v;
}

Result<uint64_t> RandomSource::UniformU64(uint64_t bound) {
  if (bound == 0) return Status::InvalidArgument("UniformU64 bound must be > 0");
  // Rejection sampling: accept values below the largest multiple of bound.
  const uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  while (true) {
    uint64_t v = 0;
    SSE_ASSIGN_OR_RETURN(v, NextU64());
    if (v < limit || limit == 0) return v % bound;
  }
}

Status SystemRandom::Fill(Bytes& out) {
  if (out.empty()) return Status::OK();
  if (RAND_bytes(out.data(), static_cast<int>(out.size())) != 1) {
    return Status::CryptoError("RAND_bytes failed");
  }
  return Status::OK();
}

SystemRandom& SystemRandom::Instance() {
  static SystemRandom* instance = new SystemRandom();
  return *instance;
}

namespace {
uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the single seed into xoshiro state.
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

DeterministicRandom::DeterministicRandom(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t DeterministicRandom::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double DeterministicRandom::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

Status DeterministicRandom::Fill(Bytes& out) {
  size_t i = 0;
  while (i < out.size()) {
    uint64_t v = Next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  return Status::OK();
}

}  // namespace sse
