#include "sse/core/scheme1_client.h"

#include <algorithm>
#include <map>

#include "sse/core/scheme1_messages.h"
#include "sse/crypto/hkdf.h"
#include "sse/crypto/prg.h"
#include "sse/index/posting.h"
#include "sse/util/bitvec.h"
#include "sse/util/serde.h"

namespace sse::core {

namespace {
constexpr size_t kNonceSize = 32;
constexpr const char* kTokenLabel = "s1.token";
}  // namespace

Scheme1Client::Scheme1Client(crypto::Prf prf, crypto::ElGamal elgamal,
                             crypto::Aead aead, const SchemeOptions& options,
                             net::Channel* channel, RandomSource* rng)
    : prf_(std::move(prf)),
      elgamal_(std::move(elgamal)),
      aead_(std::move(aead)),
      options_(options),
      channel_(channel),
      rng_(rng) {}

Result<std::unique_ptr<Scheme1Client>> Scheme1Client::Create(
    const crypto::MasterKey& key, const SchemeOptions& options,
    net::Channel* channel, RandomSource* rng) {
  if (channel == nullptr || rng == nullptr) {
    return Status::InvalidArgument("channel and rng must be non-null");
  }
  Result<crypto::Prf> prf = crypto::Prf::Create(key.keyword_key());
  if (!prf.ok()) return prf.status();
  Bytes elgamal_secret;
  SSE_ASSIGN_OR_RETURN(
      elgamal_secret,
      crypto::HkdfSha256(key.keyword_key(), /*salt=*/{}, "sse.s1.elgamal", 32));
  Result<crypto::ElGamal> elgamal =
      crypto::ElGamal::FromSecret(options.elgamal_group, elgamal_secret);
  if (!elgamal.ok()) return elgamal.status();
  Bytes aead_key;
  SSE_ASSIGN_OR_RETURN(aead_key, crypto::HkdfSha256(key.data_key(), /*salt=*/{},
                                                    "sse.data.aead", 32));
  Result<crypto::Aead> aead = crypto::Aead::Create(aead_key);
  if (!aead.ok()) return aead.status();
  return std::unique_ptr<Scheme1Client>(new Scheme1Client(
      std::move(prf).value(), std::move(elgamal).value(),
      std::move(aead).value(), options, channel, rng));
}

Result<Bytes> Scheme1Client::Trapdoor(std::string_view keyword) const {
  return prf_.EvalLabeled(kTokenLabel, StringToBytes(keyword));
}

Status Scheme1Client::Store(const std::vector<Document>& docs) {
  if (docs.empty()) return Status::OK();
  // Validate identifiers before touching the network.
  for (const Document& doc : docs) {
    if (doc.id >= options_.max_documents) {
      return Status::OutOfRange("document id " + std::to_string(doc.id) +
                                " exceeds bitmap capacity " +
                                std::to_string(options_.max_documents));
    }
    if (used_ids_.count(doc.id) > 0) {
      return Status::AlreadyExists("document id " + std::to_string(doc.id) +
                                   " was already stored");
    }
  }
  // Gather the per-keyword update sets U(w) = {i | w ∈ W_i}.
  std::map<std::string, std::vector<uint64_t>> by_keyword;
  for (const Document& doc : docs) {
    for (const std::string& kw : doc.keywords) {
      by_keyword[kw].push_back(doc.id);
    }
  }
  std::vector<PendingUpdate> updates;
  updates.reserve(by_keyword.size());
  for (auto& [kw, ids] : by_keyword) {
    updates.push_back(PendingUpdate{kw, index::Canonicalize(std::move(ids))});
  }
  SSE_RETURN_IF_ERROR(RunUpdateProtocol(updates, docs));
  for (const Document& doc : docs) used_ids_.insert(doc.id);
  return Status::OK();
}

Status Scheme1Client::FakeUpdate(const std::vector<std::string>& keywords) {
  // Deduplicate: two entries for one keyword in a single protocol run
  // would both be built from the same stale nonce and corrupt the mask.
  const std::set<std::string> unique(keywords.begin(), keywords.end());
  std::vector<PendingUpdate> updates;
  updates.reserve(unique.size());
  for (const std::string& kw : unique) {
    updates.push_back(PendingUpdate{kw, {}});  // U(w) = ∅: re-mask only
  }
  return RunUpdateProtocol(updates, /*documents=*/{});
}

Status Scheme1Client::RemoveDocument(uint64_t id,
                                     const std::vector<std::string>& keywords) {
  if (used_ids_.count(id) == 0) {
    return Status::NotFound("document id " + std::to_string(id) +
                            " is not stored");
  }
  // Deduplicate: toggling the same keyword twice would re-add the id.
  const std::set<std::string> unique(keywords.begin(), keywords.end());
  std::vector<PendingUpdate> updates;
  updates.reserve(unique.size());
  for (const std::string& kw : unique) {
    updates.push_back(PendingUpdate{kw, {id}});  // XOR toggles the bit off
  }
  SSE_RETURN_IF_ERROR(RunUpdateProtocol(updates, /*documents=*/{}));
  used_ids_.erase(id);
  return Status::OK();
}

Status Scheme1Client::RunUpdateProtocol(
    const std::vector<PendingUpdate>& updates,
    const std::vector<Document>& documents) {
  const size_t bitmap_bits = options_.max_documents;
  // Batched mode sends each keyword as its own op through MultiCall (a
  // RetryingChannel packs the ops into pipelined kMsgBatch envelopes, so a
  // K-keyword round costs ~1 frame instead of K round trips). A run with
  // no keywords still needs a message to carry documents, so it always
  // takes the monolithic path.
  const bool batched = options_.batch_ops && !updates.empty();

  // Round 1 (Fig. 1, first exchange): request F(r) for every keyword.
  std::vector<Bytes> tokens;
  tokens.reserve(updates.size());
  for (const PendingUpdate& u : updates) {
    Bytes token;
    SSE_ASSIGN_OR_RETURN(token, Trapdoor(u.keyword));
    tokens.push_back(std::move(token));
  }
  std::vector<S1NonceEntry> nonce_entries;
  nonce_entries.reserve(updates.size());
  if (batched) {
    std::vector<net::Message> round1;
    round1.reserve(updates.size());
    for (const Bytes& token : tokens) {
      S1NonceRequest one;
      one.tokens.push_back(token);
      round1.push_back(one.ToMessage());
    }
    std::vector<Result<net::Message>> replies = channel_->MultiCall(round1);
    for (Result<net::Message>& reply_msg : replies) {
      if (!reply_msg.ok()) return reply_msg.status();
      S1NonceReply one;
      SSE_ASSIGN_OR_RETURN(one, S1NonceReply::FromMessage(*reply_msg));
      if (one.entries.size() != 1) {
        return Status::ProtocolError("nonce reply entry count mismatch");
      }
      nonce_entries.push_back(std::move(one.entries[0]));
    }
  } else {
    S1NonceRequest nonce_req;
    nonce_req.tokens = tokens;
    net::Message reply_msg;
    SSE_ASSIGN_OR_RETURN(reply_msg, channel_->Call(nonce_req.ToMessage()));
    S1NonceReply nonce_reply;
    SSE_ASSIGN_OR_RETURN(nonce_reply, S1NonceReply::FromMessage(reply_msg));
    if (nonce_reply.entries.size() != updates.size()) {
      return Status::ProtocolError("nonce reply entry count mismatch");
    }
    nonce_entries = std::move(nonce_reply.entries);
  }

  // Round 2: build the masked deltas.
  std::vector<S1UpdateEntry> entries;
  entries.reserve(updates.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    const PendingUpdate& u = updates[i];
    const S1NonceEntry& nonce_entry = nonce_entries[i];

    BitVec delta;
    SSE_ASSIGN_OR_RETURN(delta, BitVec::FromPositions(bitmap_bits, u.ids));
    Bytes payload = delta.ToBytes();  // U(w), plaintext on the client only

    // Fresh nonce r' and its mask G(r').
    Bytes new_nonce;
    SSE_ASSIGN_OR_RETURN(new_nonce, rng_->Generate(kNonceSize));
    Bytes new_mask;
    SSE_ASSIGN_OR_RETURN(new_mask,
                         crypto::PrgExpand(new_nonce, payload.size()));
    SSE_RETURN_IF_ERROR(XorInPlace(payload, new_mask));  // U ⊕ G(r')

    S1UpdateEntry entry;
    entry.token = tokens[i];
    entry.is_new = !nonce_entry.present;
    if (nonce_entry.present) {
      // Recover r and add G(r): the delta becomes U ⊕ G(r) ⊕ G(r').
      Bytes old_nonce;
      SSE_ASSIGN_OR_RETURN(old_nonce, elgamal_.Decrypt(nonce_entry.enc_nonce));
      Bytes old_mask;
      SSE_ASSIGN_OR_RETURN(old_mask,
                           crypto::PrgExpand(old_nonce, payload.size()));
      SSE_RETURN_IF_ERROR(XorInPlace(payload, old_mask));
    }
    entry.masked_delta = std::move(payload);
    SSE_ASSIGN_OR_RETURN(entry.new_enc_nonce,
                         elgamal_.Encrypt(new_nonce, *rng_));
    entries.push_back(std::move(entry));
  }

  // Encrypted data items ride along in the same round.
  std::vector<WireDocument> wire_docs;
  wire_docs.reserve(documents.size());
  for (const Document& doc : documents) {
    WireDocument wire;
    wire.id = doc.id;
    SSE_ASSIGN_OR_RETURN(
        wire.ciphertext,
        aead_.Seal(doc.content, EncodeDocId(doc.id), *rng_));
    wire_docs.push_back(std::move(wire));
  }

  if (batched) {
    // One op per keyword; the document payload rides with the first op
    // (the server extracts documents before routing, so placement within
    // the round is arbitrary).
    std::vector<net::Message> round2;
    round2.reserve(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      S1UpdateRequest one;
      one.entries.push_back(std::move(entries[i]));
      if (i == 0) one.documents = std::move(wire_docs);
      round2.push_back(one.ToMessage());
    }
    std::vector<Result<net::Message>> replies = channel_->MultiCall(round2);
    for (Result<net::Message>& ack_msg : replies) {
      if (!ack_msg.ok()) return ack_msg.status();
      S1UpdateAck ack;
      SSE_ASSIGN_OR_RETURN(ack, S1UpdateAck::FromMessage(*ack_msg));
      if (ack.keywords_updated != 1) {
        return Status::ProtocolError("server acknowledged wrong keyword count");
      }
    }
    return Status::OK();
  }

  S1UpdateRequest update_req;
  update_req.entries = std::move(entries);
  update_req.documents = std::move(wire_docs);
  net::Message ack_msg;
  SSE_ASSIGN_OR_RETURN(ack_msg, channel_->Call(update_req.ToMessage()));
  S1UpdateAck ack;
  SSE_ASSIGN_OR_RETURN(ack, S1UpdateAck::FromMessage(ack_msg));
  if (ack.keywords_updated != update_req.entries.size()) {
    return Status::ProtocolError("server acknowledged wrong keyword count");
  }
  return Status::OK();
}

Bytes Scheme1Client::SerializeState() const {
  BufferWriter w;
  w.PutVarint(used_ids_.size());
  for (uint64_t id : used_ids_) w.PutVarint(id);
  return w.TakeData();
}

Status Scheme1Client::RestoreState(BytesView data) {
  BufferReader r(data);
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > data.size()) {
    return Status::Corruption("used-id count exceeds payload");
  }
  std::set<uint64_t> used_ids;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    used_ids.insert(id);
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  used_ids_ = std::move(used_ids);
  return Status::OK();
}

Result<SearchOutcome> Scheme1Client::Search(std::string_view keyword) {
  // Round 1 (Fig. 2): send the trapdoor, receive F(r).
  S1SearchRequest req;
  SSE_ASSIGN_OR_RETURN(req.token, Trapdoor(keyword));
  net::Message reply_msg;
  SSE_ASSIGN_OR_RETURN(reply_msg, channel_->Call(req.ToMessage()));
  S1SearchNonceReply nonce_reply;
  SSE_ASSIGN_OR_RETURN(nonce_reply,
                       S1SearchNonceReply::FromMessage(reply_msg));
  if (!nonce_reply.found) {
    return SearchOutcome{};  // keyword never stored
  }

  // Round 2: release r so the server can unmask I(w).
  S1SearchFinish finish;
  finish.token = req.token;
  SSE_ASSIGN_OR_RETURN(finish.nonce, elgamal_.Decrypt(nonce_reply.enc_nonce));
  net::Message result_msg;
  SSE_ASSIGN_OR_RETURN(result_msg, channel_->Call(finish.ToMessage()));
  return ParseSearchResult(result_msg);
}

Result<SearchOutcome> Scheme1Client::ParseSearchResult(
    const net::Message& msg) {
  S1SearchResult result;
  SSE_ASSIGN_OR_RETURN(result, S1SearchResult::FromMessage(msg));
  SearchOutcome outcome;
  outcome.ids = result.ids;
  std::sort(outcome.ids.begin(), outcome.ids.end());
  outcome.documents.reserve(result.documents.size());
  for (const WireDocument& wire : result.documents) {
    Bytes plain;
    SSE_ASSIGN_OR_RETURN(plain,
                         aead_.Open(wire.ciphertext, EncodeDocId(wire.id)));
    outcome.documents.emplace_back(wire.id, std::move(plain));
  }
  return outcome;
}

Result<std::vector<SearchOutcome>> Scheme1Client::MultiSearch(
    const std::vector<std::string>& keywords) {
  if (!options_.batch_ops) return SseClientInterface::MultiSearch(keywords);
  const size_t n = keywords.size();
  std::vector<SearchOutcome> outcomes(n);
  if (n == 0) return outcomes;

  // Round 1 (Fig. 2): all K trapdoors pipelined in one MultiCall.
  std::vector<Bytes> tokens(n);
  std::vector<net::Message> round1;
  round1.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SSE_ASSIGN_OR_RETURN(tokens[i], Trapdoor(keywords[i]));
    S1SearchRequest req;
    req.token = tokens[i];
    round1.push_back(req.ToMessage());
  }
  std::vector<Result<net::Message>> replies = channel_->MultiCall(round1);

  // Round 2 only for the keywords the server knows: release each r.
  std::vector<size_t> found;
  std::vector<net::Message> round2;
  for (size_t i = 0; i < n; ++i) {
    if (!replies[i].ok()) return replies[i].status();
    S1SearchNonceReply nonce_reply;
    SSE_ASSIGN_OR_RETURN(nonce_reply,
                         S1SearchNonceReply::FromMessage(*replies[i]));
    if (!nonce_reply.found) continue;  // never stored: empty outcome
    S1SearchFinish finish;
    finish.token = tokens[i];
    SSE_ASSIGN_OR_RETURN(finish.nonce,
                         elgamal_.Decrypt(nonce_reply.enc_nonce));
    found.push_back(i);
    round2.push_back(finish.ToMessage());
  }
  std::vector<Result<net::Message>> results = channel_->MultiCall(round2);
  for (size_t k = 0; k < found.size(); ++k) {
    if (!results[k].ok()) return results[k].status();
    SSE_ASSIGN_OR_RETURN(outcomes[found[k]], ParseSearchResult(*results[k]));
  }
  return outcomes;
}

}  // namespace sse::core
