// Unit tests for the observability metric primitives: the interpolated
// latency histogram (quantiles must fall *inside* the containing bucket,
// not at its upper edge), snapshot merging, the Prometheus render of the
// MetricsRegistry, and the gated crypto timers.

#include "sse/obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "sse/crypto/prf.h"
#include "sse/obs/histogram.h"
#include "test_util.h"

namespace sse {
namespace {

using obs::LatencyHistogram;
using obs::MetricsRegistry;

TEST(LatencyHistogramTest, SingleSampleReportsBucketInterior) {
  LatencyHistogram hist;
  hist.Record(700);  // bucket [512, 1024)
  const auto snap = hist.Snap();
  ASSERT_EQ(snap.count, 1u);
  // The old implementation returned the upper edge (1.024us) for every
  // quantile; interpolation must place a lone sample strictly inside.
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double micros = snap.quantile_micros(q);
    EXPECT_GT(micros, 0.512) << "q=" << q;
    EXPECT_LT(micros, 1.024) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, QuantilesAreMonotoneAndBoundedByBuckets) {
  LatencyHistogram hist;
  // 100 samples in [512, 1024), 10 in [65536, 131072).
  for (int i = 0; i < 100; ++i) hist.Record(600);
  for (int i = 0; i < 10; ++i) hist.Record(100000);
  const auto snap = hist.Snap();
  ASSERT_EQ(snap.count, 110u);
  const double p50 = snap.quantile_micros(0.50);
  const double p95 = snap.quantile_micros(0.95);
  const double p99 = snap.quantile_micros(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // p50 must land in the small bucket, p95/p99 in the large one.
  EXPECT_LT(p50, 1.024);
  EXPECT_GT(p95, 65.536);
  EXPECT_LT(p99, 131.072);
}

TEST(LatencyHistogramTest, MeanMatchesRecordedTotals) {
  LatencyHistogram hist;
  hist.Record(1000);
  hist.Record(3000);
  const auto snap = hist.Snap();
  EXPECT_DOUBLE_EQ(snap.mean_micros(), 2.0);
}

TEST(LatencyHistogramTest, MergeComposesSnapshots) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 50; ++i) a.Record(600);
  for (int i = 0; i < 50; ++i) b.Record(100000);
  auto merged = a.Snap();
  merged.Merge(b.Snap());
  EXPECT_EQ(merged.count, 100u);
  EXPECT_EQ(merged.total_nanos, 50u * 600 + 50u * 100000);
  // The merged distribution sees both modes: the median sits in or below
  // the boundary between them, p99 in the slow mode's bucket.
  EXPECT_LT(merged.quantile_micros(0.25), 1.024);
  EXPECT_GT(merged.quantile_micros(0.99), 65.536);
  // Merging an empty snapshot is a no-op.
  merged.Merge(LatencyHistogram().Snap());
  EXPECT_EQ(merged.count, 100u);
}

TEST(MetricsRegistryTest, CountersRenderAndAreIdempotent) {
  MetricsRegistry registry;
  auto* c1 = registry.GetCounter("test_ops_total", "operations");
  auto* c2 = registry.GetCounter("test_ops_total");
  EXPECT_EQ(c1, c2);  // same name -> same counter
  c1->Add(3);
  c2->Add();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP test_ops_total operations\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_ops_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("test_ops_total 4\n"), std::string::npos);
}

TEST(MetricsRegistryTest, SameNameGaugesSumAndUnregisterOnDrop) {
  MetricsRegistry registry;
  auto r1 = registry.RegisterGauge("test_gauge", [] { return 2.0; });
  std::string text;
  {
    auto r2 = registry.RegisterGauge("test_gauge", [] { return 3.0; });
    text = registry.RenderPrometheus();
    EXPECT_NE(text.find("test_gauge 5\n"), std::string::npos) << text;
  }
  // r2 dropped: its instance stops being scraped.
  text = registry.RenderPrometheus();
  EXPECT_NE(text.find("test_gauge 2\n"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, HistogramsRenderCumulativeSecondsBuckets) {
  MetricsRegistry registry;
  LatencyHistogram hist;
  hist.Record(700);     // [512, 1024) ns -> le="1.024e-06"
  hist.Record(700);
  hist.Record(100000);  // [65536, 131072) ns
  auto reg =
      registry.RegisterHistogram("test_latency_seconds",
                                 [&] { return hist.Snap(); }, "test latency");
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE test_latency_seconds histogram\n"),
            std::string::npos);
  // Bucket edges are seconds; counts are cumulative.
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"1.024e-06\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"0.000131072\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_sum 0.0001014\n"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, SameNameHistogramsMergeAtRender) {
  MetricsRegistry registry;
  LatencyHistogram shard0;
  LatencyHistogram shard1;
  shard0.Record(700);
  shard1.Record(700);
  auto r0 = registry.RegisterHistogram("test_latency_seconds",
                                       [&] { return shard0.Snap(); });
  auto r1 = registry.RegisterHistogram("test_latency_seconds",
                                       [&] { return shard1.Snap(); });
  const std::string text = registry.RenderPrometheus();
  // One merged series, not two.
  EXPECT_NE(text.find("test_latency_seconds_count 2\n"), std::string::npos)
      << text;
  size_t first = text.find("# TYPE test_latency_seconds histogram");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE test_latency_seconds histogram", first + 1),
            std::string::npos);
}

TEST(MetricsRegistryTest, RegistrationIsMovable) {
  MetricsRegistry registry;
  MetricsRegistry::Registration keep;
  {
    auto r = registry.RegisterGauge("test_moved_gauge", [] { return 1.0; });
    keep = std::move(r);
  }
  EXPECT_NE(registry.RenderPrometheus().find("test_moved_gauge 1\n"),
            std::string::npos);
}

TEST(CryptoTimersTest, GateControlsRecording) {
  auto prf = crypto::Prf::Create(Bytes(32, 0x41)).value();
  obs::SetCryptoTimingEnabled(false);
  const uint64_t before = obs::CryptoTimers::Global().prf.Snap().count;
  ASSERT_TRUE(prf.Eval(std::string_view("off")).ok());
  EXPECT_EQ(obs::CryptoTimers::Global().prf.Snap().count, before);

  obs::SetCryptoTimingEnabled(true);
  ASSERT_TRUE(prf.Eval(std::string_view("on")).ok());
  obs::SetCryptoTimingEnabled(false);
  EXPECT_GT(obs::CryptoTimers::Global().prf.Snap().count, before);
  // The gated series is part of the global scrape.
  EXPECT_NE(MetricsRegistry::Global().RenderPrometheus().find(
                "sse_crypto_prf_seconds_count"),
            std::string::npos);
}

}  // namespace
}  // namespace sse
