file(REMOVE_RECURSE
  "CMakeFiles/goh_test.dir/goh_test.cc.o"
  "CMakeFiles/goh_test.dir/goh_test.cc.o.d"
  "goh_test"
  "goh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
