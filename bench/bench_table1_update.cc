// Experiment T1-update — Table 1, row "Condition on update".
//
// Paper claim: Scheme 1 updates are expensive in bandwidth (each touched
// keyword re-ships a full |max_documents|-bit masked bitmap), so they
// should "occur rarely"; Scheme 2 updates cost only the delta ids and are
// meant to interleave with searches. This bench sweeps the database
// capacity and the update batch size and reports per-update bytes and
// latency for both schemes.

#include <cstdio>

#include "bench_common.h"

namespace sse::bench {
namespace {

void SweepCapacity() {
  std::printf(
      "T1-update (a): single-document update cost vs database capacity.\n"
      "Scheme 1 bytes grow linearly with capacity (bitmap width); Scheme 2\n"
      "bytes stay flat — the paper's 'update rarely' vs 'interleave' split.\n\n");
  TablePrinter table(
      {"system", "capacity", "update_bytes", "update_ms", "bytes/keyword"});
  table.PrintHeader();
  for (core::SystemKind kind :
       {core::SystemKind::kScheme1, core::SystemKind::kScheme2}) {
    for (size_t capacity : {1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
      DeterministicRandom rng(11);
      core::SystemConfig config = BenchConfig(capacity, /*chain_length=*/256);
      core::SseSystem sys = MustCreate(kind, config, &rng);
      // Seed a small base so updates hit existing keywords.
      auto base = phr::GenerateDocuments(128, /*vocabulary=*/64,
                                         /*keywords_per_doc=*/4, 0.8, 3);
      MustOk(sys.client->Store(base), "seed");
      MustValue(sys.client->Search(phr::SyntheticKeyword(0)), "warm search");

      const int updates = 8;
      sys.channel->ResetStats();
      Timer timer;
      for (int i = 0; i < updates; ++i) {
        auto doc = phr::GenerateDocuments(1, 64, 4, 0.8, 100 + i, 64,
                                          /*first_id=*/1000 + i);
        MustOk(sys.client->Store(doc), "update");
      }
      const double ms = timer.ElapsedMillis() / updates;
      const uint64_t bytes = sys.channel->stats().TotalBytes() / updates;
      table.PrintRow({std::string(core::SystemKindName(kind)), FmtU(capacity),
                      FmtU(bytes), Fmt("%.2f", ms),
                      Fmt("%.0f", static_cast<double>(bytes) / 4)});
    }
  }
  table.PrintRule();
  std::printf("\n");
}

void SweepBatchSize() {
  std::printf(
      "T1-update (b): batched updates (Section 5.7). Per-document cost\n"
      "drops as the batch grows because keyword entries amortize.\n\n");
  TablePrinter table({"system", "batch_docs", "bytes/doc", "ms/doc"});
  table.PrintHeader();
  for (core::SystemKind kind :
       {core::SystemKind::kScheme1, core::SystemKind::kScheme2}) {
    for (size_t batch : {1u, 8u, 64u, 256u}) {
      DeterministicRandom rng(12);
      core::SystemConfig config = BenchConfig(1 << 14, /*chain_length=*/256);
      core::SseSystem sys = MustCreate(kind, config, &rng);
      auto docs = phr::GenerateDocuments(batch, /*vocabulary=*/32,
                                         /*keywords_per_doc=*/4, 0.8, 5);
      sys.channel->ResetStats();
      Timer timer;
      MustOk(sys.client->Store(docs), "batch store");
      const double ms = timer.ElapsedMillis() / static_cast<double>(batch);
      const double bytes = static_cast<double>(sys.channel->stats().TotalBytes()) /
                           static_cast<double>(batch);
      table.PrintRow({std::string(core::SystemKindName(kind)), FmtU(batch),
                      Fmt("%.0f", bytes), Fmt("%.3f", ms)});
    }
  }
  table.PrintRule();
  std::printf("\n");
}

}  // namespace
}  // namespace sse::bench

int main() {
  sse::bench::SweepCapacity();
  sse::bench::SweepBatchSize();
  return 0;
}
