#include "sse/storage/document_store.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sse::storage {
namespace {

using sse::testing::TempDir;

/// Runs each test against both backends: in-memory and log-backed.
class DocumentStoreTest : public ::testing::TestWithParam<bool> {
 protected:
  DocumentStoreTest() {
    if (GetParam()) {
      auto opened = DocumentStore::OpenLogBacked(dir_.path() + "/docs.log");
      EXPECT_TRUE(opened.ok()) << opened.status().ToString();
      store_ = std::move(opened).value();
    }
  }
  TempDir dir_;
  DocumentStore store_;
};

TEST_P(DocumentStoreTest, PutGet) {
  SSE_ASSERT_OK(store_.Put(7, Bytes{1, 2, 3}));
  auto got = store_.Get(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (Bytes{1, 2, 3}));
  EXPECT_TRUE(store_.Contains(7));
  EXPECT_EQ(store_.size(), 1u);
  EXPECT_EQ(store_.total_bytes(), 3u);
  EXPECT_EQ(store_.log_backed(), GetParam());
}

TEST_P(DocumentStoreTest, GetMissing) {
  auto got = store_.Get(1);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST_P(DocumentStoreTest, PutReplaceTracksBytes) {
  SSE_ASSERT_OK(store_.Put(1, Bytes(100, 0)));
  EXPECT_EQ(store_.total_bytes(), 100u);
  SSE_ASSERT_OK(store_.Put(1, Bytes(40, 0)));
  EXPECT_EQ(store_.total_bytes(), 40u);
  EXPECT_EQ(store_.size(), 1u);
}

TEST_P(DocumentStoreTest, Erase) {
  SSE_ASSERT_OK(store_.Put(1, Bytes(10, 0)));
  SSE_ASSERT_OK(store_.Put(2, Bytes(20, 0)));
  auto erased = store_.Erase(1);
  ASSERT_TRUE(erased.ok());
  EXPECT_TRUE(*erased);
  auto again = store_.Erase(1);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  EXPECT_EQ(store_.size(), 1u);
  EXPECT_EQ(store_.total_bytes(), 20u);
}

TEST_P(DocumentStoreTest, GetManySkipsMissing) {
  SSE_ASSERT_OK(store_.Put(1, Bytes{0xa}));
  SSE_ASSERT_OK(store_.Put(3, Bytes{0xb}));
  auto got = store_.GetMany({1, 2, 3, 4});
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ((*got)[0].first, 1u);
  EXPECT_EQ((*got)[1].first, 3u);
}

TEST_P(DocumentStoreTest, ForEachOrderedAndEarlyStop) {
  SSE_ASSERT_OK(store_.Put(3, Bytes{3}));
  SSE_ASSERT_OK(store_.Put(1, Bytes{1}));
  SSE_ASSERT_OK(store_.Put(2, Bytes{2}));
  std::vector<uint64_t> ids;
  SSE_ASSERT_OK(store_.ForEach([&](uint64_t id, const Bytes&) {
    ids.push_back(id);
    return ids.size() < 2;
  }));
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2}));
}

TEST_P(DocumentStoreTest, Clear) {
  SSE_ASSERT_OK(store_.Put(1, Bytes(5, 0)));
  SSE_ASSERT_OK(store_.Clear());
  EXPECT_EQ(store_.size(), 0u);
  EXPECT_EQ(store_.total_bytes(), 0u);
  EXPECT_FALSE(store_.Contains(1));
}

INSTANTIATE_TEST_SUITE_P(Backends, DocumentStoreTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "log_backed" : "memory";
                         });

TEST(LogBackedDocumentStoreTest, SurvivesReopen) {
  TempDir dir;
  const std::string path = dir.path() + "/docs.log";
  {
    auto store = DocumentStore::OpenLogBacked(path);
    ASSERT_TRUE(store.ok());
    SSE_ASSERT_OK(store->Put(5, Bytes(64, 0xab)));
    SSE_ASSERT_OK(store->Put(9, Bytes(32, 0xcd)));
    ASSERT_TRUE(store->Erase(5).ok());
  }
  auto store = DocumentStore::OpenLogBacked(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 1u);
  EXPECT_EQ(store->total_bytes(), 32u);
  EXPECT_FALSE(store->Contains(5));
  EXPECT_EQ(*store->Get(9), Bytes(32, 0xcd));
}

TEST(LogBackedDocumentStoreTest, CompactShrinksFile) {
  TempDir dir;
  auto store = DocumentStore::OpenLogBacked(dir.path() + "/docs.log");
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 8; ++round) {
    SSE_ASSERT_OK(store->Put(1, Bytes(512, static_cast<uint8_t>(round))));
  }
  SSE_ASSERT_OK(store->Compact());
  EXPECT_EQ(*store->Get(1), Bytes(512, 7));
  EXPECT_EQ(store->size(), 1u);
}

}  // namespace
}  // namespace sse::storage
