#include "sse/net/connection.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "sse/net/socket_util.h"
#include "sse/obs/metrics_registry.h"

namespace sse::net {

namespace {

/// Same series TcpServer's counters live in; GetCounter is idempotent per
/// name, so both layers share one counter.
obs::MetricsRegistry::Counter* ReadPauseCounter() {
  static auto* counter = obs::MetricsRegistry::Global().GetCounter(
      "sse_net_read_pauses_total",
      "Connections paused by reply-window backpressure");
  return counter;
}

}  // namespace

Connection::Connection(int fd, EventLoop* loop, Options options,
                       Callbacks callbacks)
    : fd_(fd),
      loop_(loop),
      options_(options),
      callbacks_(std::move(callbacks)),
      assembler_(options.max_frame) {
  if (options_.max_outstanding == 0) options_.max_outstanding = 1;
  last_activity_ms_.store(NowMs(), std::memory_order_relaxed);
}

int64_t Connection::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::Register() {
  auto self = shared_from_this();
  loop_->RunInLoop([self] {
    if (self->closed_) return;
    self->interest_ = EPOLLIN;
    if (!self->loop_->Add(self->fd_, self->interest_, self.get()).ok()) {
      self->CloseNow();
      return;
    }
    self->registered_ = true;
  });
}

void Connection::SendFrame(Bytes payload) {
  Bytes framed = EncodeFrame(payload);
  auto self = shared_from_this();
  loop_->RunInLoop([self, framed = std::move(framed)]() mutable {
    self->QueueReply(std::move(framed));
  });
}

void Connection::AbandonReply() {
  auto self = shared_from_this();
  loop_->RunInLoop([self] { self->ReplyRetired(); });
}

void Connection::BeginDrain() {
  auto self = shared_from_this();
  loop_->RunInLoop([self] {
    if (self->closed_) return;
    self->draining_ = true;
    self->reading_ = false;
    self->UpdateInterest();
    if (self->outstanding_.load(std::memory_order_relaxed) == 0 &&
        self->write_queue_.empty()) {
      self->CloseNow();
    }
  });
}

void Connection::Close() {
  auto self = shared_from_this();
  loop_->RunInLoop([self] { self->CloseNow(); });
}

void Connection::OnEvents(uint32_t events) {
  // The loop dispatches on a raw pointer; pin the object in case a close
  // path drops the server's last reference mid-callback.
  auto self = shared_from_this();
  if (closed_) return;
  if ((events & EPOLLERR) != 0) {
    CloseNow();
    return;
  }
  if ((events & (EPOLLIN | EPOLLHUP)) != 0 && reading_) HandleReadable();
  if (closed_) return;
  if ((events & EPOLLOUT) != 0) HandleWritable();
  if (closed_) return;
  if ((events & EPOLLHUP) != 0 && !reading_ && write_queue_.empty() &&
      outstanding_.load(std::memory_order_relaxed) == 0) {
    CloseNow();
  }
}

void Connection::HandleReadable() {
  // Bound the bytes consumed per wakeup so one hot connection cannot
  // starve its loop siblings; level-triggered epoll re-fires for the rest.
  constexpr size_t kMaxBytesPerWake = 128 * 1024;
  uint8_t buf[16 * 1024];
  size_t total = 0;
  while (reading_ && !closed_ && total < kMaxBytesPerWake) {
    size_t n = 0;
    const IoResult r = ReadSomeNonBlocking(fd_, buf, sizeof(buf), &n);
    if (r == IoResult::kOk) {
      total += n;
      last_activity_ms_.store(NowMs(), std::memory_order_relaxed);
      if (!assembler_.Feed(buf, n).ok()) {
        // Oversize/poisoned frame stream: unrecoverable protocol breach.
        CloseNow();
        return;
      }
      DeliverFrames();
    } else if (r == IoResult::kWouldBlock) {
      break;
    } else if (r == IoResult::kEof) {
      peer_eof_ = true;
      reading_ = false;
      // Frames already received still get served; replies flush to the
      // (possibly half-closed) peer, then the connection retires.
      DeliverFrames();
      UpdateInterest();
      if (outstanding_.load(std::memory_order_relaxed) == 0 &&
          write_queue_.empty()) {
        CloseNow();
      }
      return;
    } else {
      CloseNow();
      return;
    }
  }
  if (!closed_) UpdateInterest();
}

void Connection::DeliverFrames() {
  Bytes frame;
  while (!closed_ &&
         outstanding_.load(std::memory_order_relaxed) <
             options_.max_outstanding &&
         assembler_.Next(&frame)) {
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    callbacks_.on_frame(shared_from_this(), std::move(frame));
  }
  if (closed_) return;
  // Backpressure: pause the socket while a full window of replies is in
  // flight (or frames are still buffered waiting for a free slot).
  const bool was_reading = reading_;
  reading_ = !draining_ && !peer_eof_ &&
             outstanding_.load(std::memory_order_relaxed) <
                 options_.max_outstanding &&
             assembler_.ready() == 0;
  if (was_reading && !reading_ && !draining_ && !peer_eof_) {
    ReadPauseCounter()->Add();
  }
}

void Connection::QueueReply(Bytes framed) {
  if (closed_) {
    // The reply raced a close: drop the bytes but keep the accounting
    // balanced so drains and backpressure never wedge.
    ReplyRetired();
    return;
  }
  write_queue_.push_back(std::move(framed));
  queued_replies_.fetch_add(1, std::memory_order_relaxed);
  FlushWrites();
}

void Connection::HandleWritable() { FlushWrites(); }

void Connection::FlushWrites() {
  while (!closed_ && !write_queue_.empty()) {
    const Bytes& front = write_queue_.front();
    size_t n = 0;
    const IoResult r = WriteSomeNonBlocking(
        fd_, front.data() + write_offset_, front.size() - write_offset_, &n);
    if (r == IoResult::kOk) {
      write_offset_ += n;
      last_activity_ms_.store(NowMs(), std::memory_order_relaxed);
      if (write_offset_ == front.size()) {
        write_queue_.pop_front();
        write_offset_ = 0;
        queued_replies_.fetch_sub(1, std::memory_order_relaxed);
        ReplyRetired();
      }
    } else if (r == IoResult::kWouldBlock) {
      // Partial write: resume exactly here on the next EPOLLOUT.
      UpdateInterest();
      return;
    } else {
      CloseNow();
      return;
    }
  }
  if (closed_) return;
  UpdateInterest();
  if ((draining_ || peer_eof_) && write_queue_.empty() &&
      outstanding_.load(std::memory_order_relaxed) == 0) {
    CloseNow();
  }
}

void Connection::ReplyRetired() {
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  if (closed_) return;
  if (!reading_ && !draining_ && !peer_eof_) {
    // A backpressure slot opened: serve any frames buffered while paused,
    // then re-arm the socket if the window allows.
    DeliverFrames();
    UpdateInterest();
  }
  if ((draining_ || peer_eof_) && write_queue_.empty() &&
      outstanding_.load(std::memory_order_relaxed) == 0) {
    CloseNow();
  }
}

void Connection::UpdateInterest() {
  if (!registered_ || closed_) return;
  const uint32_t wanted = (reading_ ? EPOLLIN : 0u) |
                          (!write_queue_.empty() ? EPOLLOUT : 0u);
  if (wanted == interest_) return;
  if (loop_->Mod(fd_, wanted).ok()) interest_ = wanted;
}

void Connection::CloseNow() {
  if (closed_) return;
  closed_ = true;
  closed_flag_.store(true, std::memory_order_release);
  reading_ = false;
  // Undispatched replies die with the connection; retire their slots so
  // server-wide in-flight accounting reaches zero.
  const size_t dropped = write_queue_.size();
  write_queue_.clear();
  queued_replies_.store(0, std::memory_order_relaxed);
  outstanding_.fetch_sub(dropped, std::memory_order_relaxed);
  if (registered_) {
    loop_->Del(fd_);
    registered_ = false;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (callbacks_.on_close) callbacks_.on_close(this);
}

}  // namespace sse::net
