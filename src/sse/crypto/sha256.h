#ifndef SSE_CRYPTO_SHA256_H_
#define SSE_CRYPTO_SHA256_H_

#include <cstddef>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::crypto {

inline constexpr size_t kSha256DigestSize = 32;

/// One-shot SHA-256.
Result<Bytes> Sha256(BytesView data);

/// SHA-256 over `a || b` without materializing the concatenation.
Result<Bytes> Sha256Concat(BytesView a, BytesView b);

/// Incremental SHA-256 hasher.
class Sha256Hasher {
 public:
  Sha256Hasher();
  ~Sha256Hasher();

  Sha256Hasher(const Sha256Hasher&) = delete;
  Sha256Hasher& operator=(const Sha256Hasher&) = delete;

  Status Update(BytesView data);
  /// Finalizes and returns the 32-byte digest. The hasher is reset and can
  /// be reused afterwards.
  Result<Bytes> Finish();

 private:
  void* ctx_;  // EVP_MD_CTX*, kept opaque to avoid leaking OpenSSL headers.
  bool active_;
  Status Init();
};

}  // namespace sse::crypto

#endif  // SSE_CRYPTO_SHA256_H_
