#ifndef SSE_ENGINE_SCHEME1_ADAPTER_H_
#define SSE_ENGINE_SCHEME1_ADAPTER_H_

#include "sse/core/options.h"
#include "sse/core/scheme1_server.h"
#include "sse/engine/scheme_shard.h"

namespace sse::engine {

/// Sharding policy for Scheme 1 (paper §5.2).
///
/// Token-keyed messages route to the token's shard; the batched two-round
/// update (Fig. 1) scatters: nonce requests and update entries are split by
/// token, documents go to the engine store, and acks/nonce replies are
/// merged back into the client's expected order. Searches are single-shard
/// and read-only — the whole point of sharding this scheme.
class Scheme1Adapter : public SchemeAdapter {
 public:
  explicit Scheme1Adapter(const core::SchemeOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "scheme1"; }
  std::unique_ptr<SchemeShard> CreateShard() const override;
  bool IsMutating(uint16_t msg_type) const override;
  LockMode LockModeFor(uint16_t msg_type) const override;
  Result<RequestPlan> Route(const net::Message& request,
                            size_t num_shards) const override;
  Result<net::Message> Merge(const net::Message& request,
                             const RequestPlan& plan,
                             std::vector<net::Message> replies,
                             const DocumentFetcher& fetch_docs) const override;

 private:
  core::SchemeOptions options_;
};

}  // namespace sse::engine

#endif  // SSE_ENGINE_SCHEME1_ADAPTER_H_
