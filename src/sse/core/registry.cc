#include "sse/core/registry.h"

#include "sse/baselines/cgko_sse1.h"
#include "sse/baselines/swp.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_server.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"
#include "sse/engine/scheme1_adapter.h"
#include "sse/engine/scheme2_adapter.h"
#include "sse/engine/server_engine.h"

namespace sse::core {

namespace {

Result<std::unique_ptr<PersistableHandler>> CreateEngineServer(
    SystemKind kind, const SystemConfig& config) {
  std::unique_ptr<engine::SchemeAdapter> adapter;
  if (kind == SystemKind::kScheme1) {
    adapter = std::make_unique<engine::Scheme1Adapter>(config.scheme);
  } else if (kind == SystemKind::kScheme2) {
    adapter = std::make_unique<engine::Scheme2Adapter>(config.scheme);
  } else {
    return Status::InvalidArgument(
        "engine mode (engine_shards > 0) supports scheme1 and scheme2 only");
  }
  engine::EngineOptions opts;
  opts.num_shards = config.engine_shards;
  opts.worker_threads = config.engine_workers;
  opts.document_log_path = config.scheme.document_log_path;
  opts.enable_reply_cache = config.engine_reply_cache;
  Result<std::unique_ptr<engine::ServerEngine>> eng =
      engine::ServerEngine::Create(std::move(adapter), opts);
  if (!eng.ok()) return eng.status();
  return std::unique_ptr<PersistableHandler>(std::move(eng).value());
}

}  // namespace

std::string_view SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kScheme1:
      return "scheme1";
    case SystemKind::kScheme2:
      return "scheme2";
    case SystemKind::kSwp:
      return "swp";
    case SystemKind::kGohZidx:
      return "goh-zidx";
    case SystemKind::kCgkoSse1:
      return "cgko-sse1";
  }
  return "unknown";
}

Result<SystemKind> SystemKindFromName(std::string_view name) {
  for (SystemKind kind : AllSystemKinds()) {
    if (SystemKindName(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown system name: " + std::string(name));
}

std::vector<SystemKind> AllSystemKinds() {
  return {SystemKind::kScheme1, SystemKind::kScheme2, SystemKind::kSwp,
          SystemKind::kGohZidx, SystemKind::kCgkoSse1};
}

Result<SseSystem> CreateSystem(SystemKind kind, const crypto::MasterKey& key,
                               const SystemConfig& config, RandomSource* rng) {
  SseSystem sys;
  if (config.engine_shards > 0) {
    SSE_ASSIGN_OR_RETURN(sys.server, CreateEngineServer(kind, config));
  }
  switch (kind) {
    case SystemKind::kScheme1: {
      if (sys.server != nullptr) break;  // engine-backed
      auto server = std::make_unique<Scheme1Server>(config.scheme);
      if (!config.scheme.document_log_path.empty()) {
        SSE_RETURN_IF_ERROR(
            server->UseLogBackedDocuments(config.scheme.document_log_path));
      }
      sys.server = std::move(server);
      break;
    }
    case SystemKind::kScheme2: {
      if (sys.server != nullptr) break;  // engine-backed
      auto server = std::make_unique<Scheme2Server>(config.scheme);
      if (!config.scheme.document_log_path.empty()) {
        SSE_RETURN_IF_ERROR(
            server->UseLogBackedDocuments(config.scheme.document_log_path));
      }
      sys.server = std::move(server);
      break;
    }
    case SystemKind::kSwp:
      sys.server = std::make_unique<baselines::SwpServer>();
      break;
    case SystemKind::kGohZidx:
      sys.server = std::make_unique<baselines::GohServer>(config.goh);
      break;
    case SystemKind::kCgkoSse1:
      sys.server = std::make_unique<baselines::CgkoServer>(
          config.scheme.use_hash_index, config.scheme.btree_order);
      break;
  }
  if (sys.server == nullptr) {
    return Status::InvalidArgument("unknown system kind");
  }
  sys.channel = std::make_unique<net::InProcessChannel>(sys.server.get(),
                                                        config.channel);
  net::Channel* client_channel = sys.channel.get();
  if (config.with_retry) {
    sys.retry =
        std::make_unique<net::RetryingChannel>(sys.channel.get(), config.retry,
                                               rng);
    client_channel = sys.retry.get();
  }

  switch (kind) {
    case SystemKind::kScheme1: {
      Result<std::unique_ptr<Scheme1Client>> client =
          Scheme1Client::Create(key, config.scheme, client_channel, rng);
      if (!client.ok()) return client.status();
      sys.client = std::move(client).value();
      break;
    }
    case SystemKind::kScheme2: {
      Result<std::unique_ptr<Scheme2Client>> client =
          Scheme2Client::Create(key, config.scheme, client_channel, rng);
      if (!client.ok()) return client.status();
      sys.client = std::move(client).value();
      break;
    }
    case SystemKind::kSwp: {
      Result<std::unique_ptr<baselines::SwpClient>> client =
          baselines::SwpClient::Create(key, client_channel, rng);
      if (!client.ok()) return client.status();
      sys.client = std::move(client).value();
      break;
    }
    case SystemKind::kGohZidx: {
      Result<std::unique_ptr<baselines::GohClient>> client =
          baselines::GohClient::Create(key, config.goh, client_channel, rng);
      if (!client.ok()) return client.status();
      sys.client = std::move(client).value();
      break;
    }
    case SystemKind::kCgkoSse1: {
      Result<std::unique_ptr<baselines::CgkoClient>> client =
          baselines::CgkoClient::Create(key, client_channel, rng);
      if (!client.ok()) return client.status();
      sys.client = std::move(client).value();
      break;
    }
  }
  return sys;
}

}  // namespace sse::core
