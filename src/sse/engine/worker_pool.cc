#include "sse/engine/worker_pool.h"

#include <atomic>

namespace sse::engine {

WorkerPool::WorkerPool(size_t threads) {
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
  return true;
}

WorkerPool::SubmitResult WorkerPool::TrySubmit(std::function<void()> task,
                                               size_t max_queue) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return SubmitResult::kShutdown;
    if (max_queue > 0 && queue_.size() >= max_queue) {
      return SubmitResult::kQueueFull;
    }
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
  return SubmitResult::kAccepted;
}

void WorkerPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (threads_.empty()) {
    for (auto& task : tasks) task();
    return;
  }
  struct Barrier {
    std::mutex mutex;
    std::condition_variable done;
    size_t remaining;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = tasks.size();
  for (auto& task : tasks) {
    auto wrapped = [task = std::move(task), barrier] {
      task();
      std::lock_guard<std::mutex> lock(barrier->mutex);
      if (--barrier->remaining == 0) barrier->done.notify_all();
    };
    // A pool racing Shutdown refuses the submit; run inline so the
    // barrier still completes and no task is lost.
    if (!Submit(wrapped)) wrapped();
  }
  std::unique_lock<std::mutex> lock(barrier->mutex);
  barrier->done.wait(lock, [&] { return barrier->remaining == 0; });
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace sse::engine
