file(REMOVE_RECURSE
  "CMakeFiles/phr_store_test.dir/phr_store_test.cc.o"
  "CMakeFiles/phr_store_test.dir/phr_store_test.cc.o.d"
  "phr_store_test"
  "phr_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phr_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
