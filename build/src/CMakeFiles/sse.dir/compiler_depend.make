# Empty compiler generated dependencies file for sse.
# This may be replaced when dependencies are built.
