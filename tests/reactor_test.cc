#include "sse/net/reactor.h"

#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <random>
#include <vector>

#include "sse/net/frame.h"

namespace sse::net {
namespace {

// ------------------------------------------------------------- framing --

Bytes MakePayload(size_t size, uint32_t seed) {
  Bytes payload(size);
  uint32_t x = seed * 2654435761u + 1;
  for (size_t i = 0; i < size; ++i) {
    x = x * 1664525u + 1013904223u;
    payload[i] = static_cast<uint8_t>(x >> 24);
  }
  return payload;
}

TEST(FrameAssemblerTest, RoundTripOneByteAtATime) {
  const std::vector<Bytes> payloads = {
      MakePayload(1, 1), MakePayload(0, 2), MakePayload(300, 3),
      MakePayload(17, 4)};
  Bytes wire;
  for (const Bytes& p : payloads) {
    Bytes framed = EncodeFrame(p);
    wire.insert(wire.end(), framed.begin(), framed.end());
  }

  FrameAssembler assembler;
  std::vector<Bytes> out;
  for (const uint8_t byte : wire) {
    ASSERT_TRUE(assembler.Feed(&byte, 1).ok());
    Bytes frame;
    while (assembler.Next(&frame)) out.push_back(std::move(frame));
  }
  ASSERT_EQ(out.size(), payloads.size());
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], payloads[i]);
  EXPECT_FALSE(assembler.mid_frame());
  EXPECT_EQ(assembler.partial_bytes(), 0u);
}

TEST(FrameAssemblerTest, TornPrefixReportsMidFrame) {
  const Bytes payload = MakePayload(64, 9);
  const Bytes framed = EncodeFrame(payload);
  FrameAssembler assembler;

  // Two bytes of the length prefix: mid-frame, nothing ready.
  ASSERT_TRUE(assembler.Feed(framed.data(), 2).ok());
  EXPECT_TRUE(assembler.mid_frame());
  EXPECT_EQ(assembler.ready(), 0u);
  EXPECT_EQ(assembler.partial_bytes(), 2u);

  // Rest of the prefix plus half the payload: still mid-frame.
  ASSERT_TRUE(assembler.Feed(framed.data() + 2, 2 + 32).ok());
  EXPECT_TRUE(assembler.mid_frame());
  EXPECT_EQ(assembler.ready(), 0u);

  // The tail completes it.
  ASSERT_TRUE(assembler.Feed(framed.data() + 36, framed.size() - 36).ok());
  EXPECT_FALSE(assembler.mid_frame());
  Bytes out;
  ASSERT_TRUE(assembler.Next(&out));
  EXPECT_EQ(out, payload);
}

TEST(FrameAssemblerTest, ZeroLengthFramesAreFrames) {
  FrameAssembler assembler;
  const Bytes framed = EncodeFrame(Bytes{});
  ASSERT_TRUE(assembler.Feed(framed.data(), framed.size()).ok());
  ASSERT_TRUE(assembler.Feed(framed.data(), framed.size()).ok());
  Bytes out{1, 2, 3};
  ASSERT_TRUE(assembler.Next(&out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(assembler.Next(&out));
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(assembler.Next(&out));
}

TEST(FrameAssemblerTest, FuzzRandomChunkingPreservesFrameSequence) {
  // Deterministic fuzz: random payload sizes reassembled from random
  // chunk sizes must reproduce the exact frame sequence, regardless of
  // where the stream tears.
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<size_t> payload_size(0, 4096);

  std::vector<Bytes> payloads;
  Bytes wire;
  for (int i = 0; i < 200; ++i) {
    payloads.push_back(MakePayload(payload_size(rng), static_cast<uint32_t>(i)));
    Bytes framed = EncodeFrame(payloads.back());
    wire.insert(wire.end(), framed.begin(), framed.end());
  }

  FrameAssembler assembler;
  std::vector<Bytes> out;
  std::uniform_int_distribution<size_t> chunk_size(1, 7000);
  size_t pos = 0;
  while (pos < wire.size()) {
    const size_t take = std::min(chunk_size(rng), wire.size() - pos);
    ASSERT_TRUE(assembler.Feed(wire.data() + pos, take).ok());
    pos += take;
    Bytes frame;
    while (assembler.Next(&frame)) out.push_back(std::move(frame));
  }
  ASSERT_EQ(out.size(), payloads.size());
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], payloads[i]);
  EXPECT_FALSE(assembler.mid_frame());
}

TEST(FrameAssemblerTest, OversizeFramePoisonsTheStream) {
  FrameAssembler assembler(/*max_frame=*/1024);
  Bytes huge_header = EncodeFrame(Bytes{});  // patch the length below
  const uint32_t huge = 4096;
  for (size_t i = 0; i < kFrameHeaderSize; ++i) {
    huge_header[i] = static_cast<uint8_t>(huge >> (8 * i));
  }
  Status status = assembler.Feed(huge_header.data(), kFrameHeaderSize);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kProtocolError);

  // Poisoned: even valid bytes are rejected — the stream cannot be
  // resynchronized after a framing breach.
  const Bytes valid = EncodeFrame(Bytes{1});
  EXPECT_FALSE(assembler.Feed(valid.data(), valid.size()).ok());

  // Reset (a fresh connection) clears the poison.
  assembler.Reset();
  ASSERT_TRUE(assembler.Feed(valid.data(), valid.size()).ok());
  Bytes out;
  ASSERT_TRUE(assembler.Next(&out));
  EXPECT_EQ(out, Bytes{1});
}

TEST(FrameAssemblerTest, OversizeRejectedBeforePayloadArrives) {
  // The length check happens on the prefix alone: a would-be 1 GiB bomb
  // is refused without buffering any payload bytes.
  FrameAssembler assembler(/*max_frame=*/16);
  Bytes framed = EncodeFrame(MakePayload(17, 5));
  EXPECT_FALSE(assembler.Feed(framed.data(), framed.size()).ok());
  // Only the 4 prefix bytes were ever buffered — none of the payload.
  EXPECT_LE(assembler.partial_bytes(), kFrameHeaderSize);
}

// ---------------------------------------------------------- event loop --

TEST(EventLoopTest, PostRunsClosuresOnTheLoopThread) {
  EventLoop loop;
  loop.Start();
  std::mutex mu;
  std::condition_variable cv;
  int ran = 0;
  bool on_loop_thread = false;
  for (int i = 0; i < 3; ++i) {
    loop.Post([&] {
      std::lock_guard<std::mutex> lock(mu);
      on_loop_thread = loop.InLoopThread();
      ran += 1;
      cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return ran == 3; }));
    EXPECT_TRUE(on_loop_thread);
  }
  EXPECT_FALSE(loop.InLoopThread());
  loop.Stop();
}

TEST(EventLoopTest, RunInLoopIsInlineOnTheLoopThread) {
  EventLoop loop;
  loop.Start();
  std::mutex mu;
  std::condition_variable cv;
  bool inner_ran = false;
  loop.RunInLoop([&] {
    // Already on the loop thread: the nested call must run synchronously,
    // not deadlock waiting for another wake cycle.
    loop.RunInLoop([&] {
      std::lock_guard<std::mutex> lock(mu);
      inner_ran = true;
      cv.notify_one();
    });
    EXPECT_TRUE(inner_ran);
  });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return inner_ran; }));
  loop.Stop();
}

TEST(EventLoopTest, StopRunsPendingClosuresAndIsIdempotent) {
  EventLoop loop;
  loop.Start();
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    loop.Post([&] { ran.fetch_add(1); });
  }
  loop.Stop();
  EXPECT_EQ(ran.load(), 10);
  loop.Stop();  // no-op
}

/// Counts readiness callbacks for one eventfd.
class CountingHandler : public EventLoop::Handler {
 public:
  void OnEvents(uint32_t events) override {
    if ((events & EPOLLIN) != 0) fired_.fetch_add(1);
  }
  std::atomic<int> fired_{0};
};

TEST(EventLoopTest, RegisteredFdGetsReadinessEvents) {
  EventLoop loop;
  loop.Start();
  const int efd = ::eventfd(0, EFD_NONBLOCK);
  ASSERT_GE(efd, 0);
  CountingHandler handler;
  loop.RunInLoop([&] {
    ASSERT_TRUE(loop.InLoopThread());
    ASSERT_TRUE(loop.Add(efd, EPOLLIN, &handler).ok());
  });

  const uint64_t one = 1;
  ASSERT_EQ(::write(efd, &one, sizeof(one)), static_cast<ssize_t>(sizeof(one)));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (handler.fired_.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(handler.fired_.load(), 0);

  // Del mid-flight: the loop must never touch the handler again even
  // though the fd stays readable (level-triggered).
  loop.RunInLoop([&] { loop.Del(efd); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const int fired_after_del = handler.fired_.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(handler.fired_.load(), fired_after_del);
  loop.Stop();
  ::close(efd);
}

TEST(ReactorTest, NextLoopRoundRobinsAcrossAllLoops) {
  Reactor reactor(3);
  reactor.Start();
  EXPECT_EQ(reactor.loop_count(), 3u);
  std::map<EventLoop*, int> hits;
  for (int i = 0; i < 9; ++i) hits[reactor.NextLoop()] += 1;
  EXPECT_EQ(hits.size(), 3u);
  for (const auto& [loop, count] : hits) EXPECT_EQ(count, 3);
  reactor.Stop();
}

}  // namespace
}  // namespace sse::net
