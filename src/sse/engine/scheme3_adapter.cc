#include "sse/engine/scheme3_adapter.h"

#include <utility>

#include "sse/core/scheme3_messages.h"
#include "sse/engine/shard_router.h"
#include "sse/index/posting.h"

namespace sse::engine {

using core::S3SearchRequest;
using core::S3SearchResult;
using core::S3UpdateAck;
using core::S3UpdateRequest;

std::unique_ptr<SchemeShard> Scheme3Adapter::CreateShard() const {
  return std::make_unique<ServerShard<core::Scheme3Server>>(options_);
}

bool Scheme3Adapter::IsMutating(uint16_t msg_type) const {
  return msg_type == core::kMsgS3UpdateRequest;
}

LockMode Scheme3Adapter::LockModeFor(uint16_t msg_type) const {
  // Searches are read-only (no plaintext cache to refresh); everything
  // that writes is the update.
  return msg_type == core::kMsgS3UpdateRequest ? LockMode::kExclusive
                                               : LockMode::kShared;
}

Result<RequestPlan> Scheme3Adapter::Route(const net::Message& request,
                                          size_t num_shards) const {
  RequestPlan plan;
  switch (request.type) {
    case core::kMsgS3UpdateRequest: {
      S3UpdateRequest req;
      SSE_ASSIGN_OR_RETURN(req, S3UpdateRequest::FromMessage(request));
      std::vector<std::vector<size_t>> by_shard(num_shards);
      for (size_t i = 0; i < req.entries.size(); ++i) {
        by_shard[ShardForToken(req.entries[i].address, num_shards)].push_back(
            i);
      }
      for (size_t s = 0; s < num_shards; ++s) {
        if (by_shard[s].empty()) continue;
        S3UpdateRequest sub;
        sub.entries.reserve(by_shard[s].size());
        for (size_t idx : by_shard[s]) {
          sub.entries.push_back(std::move(req.entries[idx]));
        }
        plan.subs.push_back(
            SubRequest{s, sub.ToMessage(), std::move(by_shard[s])});
      }
      plan.documents = std::move(req.documents);
      return plan;
    }
    case core::kMsgS3SearchRequest: {
      // The trapdoor has no routable token, and a keyword's entries are
      // scattered: every shard walks the chain over its own slice.
      for (size_t s = 0; s < num_shards; ++s) {
        plan.subs.push_back(SubRequest{s, request, {}});
      }
      plan.attach_documents = true;
      return plan;
    }
    default:
      plan.subs.push_back(SubRequest{0, request, {}});
      return plan;
  }
}

Result<net::Message> Scheme3Adapter::Merge(const net::Message& request,
                                           const RequestPlan& plan,
                                           std::vector<net::Message> replies,
                                           const DocumentFetcher& fetch_docs)
    const {
  (void)plan;
  switch (request.type) {
    case core::kMsgS3UpdateRequest: {
      S3UpdateAck merged;
      for (net::Message& reply : replies) {
        S3UpdateAck ack;
        SSE_ASSIGN_OR_RETURN(ack, S3UpdateAck::FromMessage(reply));
        merged.entries_added += ack.entries_added;
      }
      return merged.ToMessage();
    }
    case core::kMsgS3SearchRequest: {
      S3SearchResult merged;
      index::DocIdList ids;
      for (net::Message& reply : replies) {
        S3SearchResult part;
        SSE_ASSIGN_OR_RETURN(part, S3SearchResult::FromMessage(reply));
        merged.found = merged.found || part.found;
        merged.chain_steps += part.chain_steps;
        merged.entries_decrypted += part.entries_decrypted;
        ids = index::MergeIdLists(ids, part.ids);
      }
      merged.ids = std::move(ids);
      std::vector<std::pair<uint64_t, Bytes>> fetched;
      SSE_ASSIGN_OR_RETURN(fetched, fetch_docs(merged.ids));
      for (auto& [id, blob] : fetched) {
        merged.documents.push_back(core::WireDocument{id, std::move(blob)});
      }
      return merged.ToMessage();
    }
    default:
      if (replies.size() != 1) {
        return Status::Internal("expected exactly one shard reply");
      }
      return std::move(replies[0]);
  }
}

}  // namespace sse::engine
