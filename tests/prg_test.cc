#include "sse/crypto/prg.h"

#include <gtest/gtest.h>

#include "sse/security/stats.h"
#include "sse/util/random.h"

namespace sse::crypto {
namespace {

TEST(PrgTest, DeterministicInSeed) {
  Bytes seed(32, 0x11);
  auto a = PrgExpand(seed, 1000);
  auto b = PrgExpand(seed, 1000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(PrgTest, KnownAnswerVector) {
  // Cross-checked against `openssl enc -aes-256-ctr -K SHA256(seed)
  // -iv 00..00` over zero bytes: pins the exact PRG construction so a
  // refactor cannot silently change every stored mask.
  auto out = PrgExpand(Bytes(32, 0x5a), 48);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(HexEncode(*out),
            "00c2bdfebf19e2410643935588297f7a4214826855de302d1858a47dc1cebc90"
            "5cf7dbc926bac99507a3286afb3d6a05");
}

TEST(PrgTest, PrefixConsistent) {
  // Expanding to different lengths yields a consistent stream prefix —
  // required for Scheme 1, where masks of different bitmap sizes must
  // never be compared, but re-deriving a shorter mask must agree.
  Bytes seed(32, 0x22);
  auto short_mask = PrgExpand(seed, 100);
  auto long_mask = PrgExpand(seed, 200);
  ASSERT_TRUE(short_mask.ok());
  ASSERT_TRUE(long_mask.ok());
  EXPECT_TRUE(std::equal(short_mask->begin(), short_mask->end(),
                         long_mask->begin()));
}

TEST(PrgTest, DifferentSeedsDiverge) {
  auto a = PrgExpand(Bytes(32, 1), 256);
  auto b = PrgExpand(Bytes(32, 2), 256);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST(PrgTest, ZeroLengthIsEmpty) {
  auto out = PrgExpand(Bytes(32, 3), 0);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(PrgTest, EmptySeedRejected) { EXPECT_FALSE(PrgExpand(Bytes{}, 16).ok()); }

TEST(PrgTest, ArbitrarySeedLengthsAccepted) {
  for (size_t n : {1u, 7u, 31u, 32u, 64u, 100u}) {
    auto out = PrgExpand(Bytes(n, 0x5a), 64);
    ASSERT_TRUE(out.ok()) << "seed length " << n;
    EXPECT_EQ(out->size(), 64u);
  }
}

TEST(PrgTest, OutputLooksUniform) {
  auto out = PrgExpand(Bytes(32, 0x77), 1 << 16);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(security::LooksUniform(*out))
      << "monobit=" << security::MonobitFraction(*out)
      << " chi=" << security::ChiSquareBytes(*out)
      << " corr=" << security::SerialCorrelationBytes(*out);
  EXPECT_GT(security::ShannonEntropyBytes(*out), 7.9);
}

TEST(PrgTest, MaskUnmaskRoundTrip) {
  // The Scheme 1 usage pattern: I ⊕ G(r) ⊕ G(r) == I.
  Bytes bitmap(128, 0b10101010);
  auto mask = PrgExpand(Bytes(32, 0x99), bitmap.size());
  ASSERT_TRUE(mask.ok());
  Bytes masked = bitmap;
  ASSERT_TRUE(XorInPlace(masked, *mask).ok());
  EXPECT_NE(masked, bitmap);
  ASSERT_TRUE(XorInPlace(masked, *mask).ok());
  EXPECT_EQ(masked, bitmap);
}

}  // namespace
}  // namespace sse::crypto
