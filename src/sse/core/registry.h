#ifndef SSE_CORE_REGISTRY_H_
#define SSE_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sse/baselines/goh_zidx.h"
#include "sse/core/options.h"
#include "sse/core/persistable.h"
#include "sse/core/types.h"
#include "sse/crypto/keys.h"
#include "sse/net/channel.h"
#include "sse/net/retry.h"
#include "sse/util/random.h"

namespace sse::core {

/// Every searchable-encryption system this library implements.
enum class SystemKind : int {
  kScheme1 = 0,   // the paper's computationally efficient scheme (§5.2)
  kScheme2 = 1,   // the paper's communication efficient scheme (§5.5)
  kSwp = 2,       // Song-Wagner-Perrig linear scan baseline
  kGohZidx = 3,   // Goh Z-IDX per-document Bloom filter baseline
  kCgkoSse1 = 4,  // Curtmola et al. SSE-1 inverted index baseline
};

std::string_view SystemKindName(SystemKind kind);
Result<SystemKind> SystemKindFromName(std::string_view name);
std::vector<SystemKind> AllSystemKinds();

/// A fully wired client/channel/server triple for one system. The channel
/// is the instrumented in-process link; benches read its stats for the
/// round/byte numbers. With SystemConfig::with_retry the client talks
/// through `retry` (session-stamped exactly-once calls) instead of the
/// bare channel.
struct SseSystem {
  std::unique_ptr<PersistableHandler> server;
  std::unique_ptr<net::InProcessChannel> channel;
  std::unique_ptr<net::RetryingChannel> retry;  // null unless with_retry
  std::unique_ptr<SseClientInterface> client;

  net::ChannelStats& stats() { return const_cast<net::ChannelStats&>(channel->stats()); }
};

struct SystemConfig {
  SchemeOptions scheme;
  baselines::GohOptions goh;
  net::InProcessChannel::Options channel;

  /// When > 0, scheme1/scheme2 servers are built as a sharded
  /// engine::ServerEngine with this many shards (thread-safe Handle,
  /// concurrent searches). 0 keeps the classic single-threaded server.
  /// Baselines do not support engine mode.
  size_t engine_shards = 0;
  /// Worker threads for the engine's scatter pool (0 = one per shard).
  size_t engine_workers = 0;

  /// Wrap the client side in a net::RetryingChannel: every call is
  /// session-stamped and transparently retried with backoff under a
  /// deadline. Pair with a server-side reply cache for exactly-once.
  bool with_retry = false;
  net::RetryOptions retry;

  /// At-most-once dedup on engine-backed servers (ignored for the classic
  /// single-threaded servers, which have no reply cache).
  bool engine_reply_cache = true;
};

/// Builds a ready-to-use system of the given kind. `rng` must outlive the
/// returned system.
Result<SseSystem> CreateSystem(SystemKind kind, const crypto::MasterKey& key,
                               const SystemConfig& config, RandomSource* rng);

}  // namespace sse::core

#endif  // SSE_CORE_REGISTRY_H_
