#ifndef SSE_STORAGE_SNAPSHOT_H_
#define SSE_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sse/storage/env.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::storage {

/// Atomic snapshot files.
///
/// A snapshot is an opaque byte blob (the serialized server state) wrapped
/// in a small integrity envelope: magic ‖ version ‖ u64 length ‖ u32 CRC-32C
/// ‖ payload. `Write` stages into `<path>.tmp`, fsyncs it, renames it into
/// place, and fsyncs the parent directory — without that last step a crash
/// can resurrect the old snapshot (or none at all) even though the rename
/// "succeeded". `Read` verifies the envelope and fails with CORRUPTION on
/// any mismatch, including truncated and zero-byte files.
class Snapshot {
 public:
  /// Writes `payload` atomically and durably to `path`.
  static Status Write(const std::string& path, BytesView payload,
                      Env* env = Env::Default());

  /// Reads and verifies the snapshot at `path`.
  static Result<Bytes> Read(const std::string& path, Env* env = Env::Default());

  /// True if a snapshot file exists at `path`.
  static bool Exists(const std::string& path, Env* env = Env::Default());
};

/// Generational snapshots: `state.snap.<gen>` files in a directory, the
/// last `kKeepGenerations` retained. A new checkpoint writes generation
/// `newest+1` and prunes older files only after the write is fully durable,
/// so a corrupt or torn newest generation can always fall back to its
/// predecessor (the WAL keeps enough history to catch up from either; see
/// WriteAheadLog::CompactBefore).
class SnapshotSet {
 public:
  static constexpr int kKeepGenerations = 2;

  SnapshotSet(std::string dir, Env* env = Env::Default())
      : dir_(std::move(dir)), env_(env) {}

  /// Generation numbers present on disk, ascending. Non-snapshot files are
  /// ignored.
  Result<std::vector<uint64_t>> List() const;

  /// Writes `payload` as the next generation and prunes all but the newest
  /// `kKeepGenerations` generations.
  Status WriteNext(BytesView payload);

  /// Reads the newest generation that verifies, trying older generations
  /// when the newest is corrupt. NotFound when no snapshot file exists at
  /// all; CORRUPTION when files exist but none verifies. `gen` (optional)
  /// receives the generation that was read.
  Result<Bytes> ReadNewestValid(uint64_t* gen = nullptr) const;

  std::string PathFor(uint64_t gen) const;

 private:
  std::string dir_;
  Env* env_;
};

}  // namespace sse::storage

#endif  // SSE_STORAGE_SNAPSHOT_H_
