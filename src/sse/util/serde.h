#ifndef SSE_UTIL_SERDE_H_
#define SSE_UTIL_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse {

/// Append-only binary encoder producing the library's canonical wire format:
/// little-endian fixed-width integers, LEB128 varints, and length-prefixed
/// byte strings. Every protocol message, WAL record and snapshot section is
/// encoded with this writer so that byte counts measured by the channel are
/// well-defined.
class BufferWriter {
 public:
  BufferWriter() = default;

  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Unsigned LEB128.
  void PutVarint(uint64_t v);
  /// Raw bytes, no length prefix.
  void PutRaw(BytesView data);
  /// Varint length prefix followed by the bytes.
  void PutBytes(BytesView data);
  /// Varint length prefix followed by the UTF-8 contents.
  void PutString(std::string_view s);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  const Bytes& data() const { return buf_; }
  Bytes TakeData() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Sequential decoder over a byte view. All getters fail with
/// INVALID_ARGUMENT (truncation) or CORRUPTION (malformed varint) instead of
/// reading out of bounds; parsers built on it are safe on adversarial input.
class BufferReader {
 public:
  explicit BufferReader(BytesView data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<uint64_t> GetVarint();
  /// Reads exactly `n` raw bytes.
  Result<Bytes> GetRaw(size_t n);
  /// Reads a varint length prefix then that many bytes. `max_len` bounds
  /// the accepted length to keep adversarial inputs from provoking huge
  /// allocations.
  Result<Bytes> GetBytes(size_t max_len = kDefaultMaxLen);
  Result<std::string> GetString(size_t max_len = kDefaultMaxLen);
  Result<bool> GetBool();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

  /// Fails unless the entire input has been consumed — protocol messages
  /// must not carry trailing garbage.
  Status ExpectEnd() const;

  static constexpr size_t kDefaultMaxLen = size_t{1} << 30;

 private:
  Status Need(size_t n) const;

  BytesView data_;
  size_t pos_ = 0;
};

}  // namespace sse

#endif  // SSE_UTIL_SERDE_H_
