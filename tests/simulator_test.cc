// Executable version of the Theorem 1 security argument: the simulator
// fabricates views from traces alone, and crude statistical distinguishers
// must fail to tell real server state from simulated state.

#include "sse/security/simulator.h"

#include <gtest/gtest.h>

#include "sse/core/registry.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_server.h"
#include "sse/security/stats.h"
#include "sse/security/trace.h"
#include "test_util.h"

namespace sse::security {
namespace {

using core::Document;
using core::SystemKind;
using sse::testing::FastTestConfig;
using sse::testing::MakeTestSystem;

History MakeHistory() {
  History history;
  history.documents = {
      Document::Make(0, "record zero body", {"flu", "shared"}),
      Document::Make(1, "record one, a bit longer", {"shared"}),
      Document::Make(2, "r2", {"rare", "flu"}),
  };
  history.queries = {"flu", "shared", "flu", "absent"};
  return history;
}

TEST(TraceTest, ComputesPublicQuantities) {
  const Trace trace = ComputeTrace(MakeHistory());
  EXPECT_EQ(trace.ids, (std::vector<uint64_t>{0, 1, 2}));
  EXPECT_EQ(trace.lengths, (std::vector<uint64_t>{16, 24, 2}));
  EXPECT_EQ(trace.unique_keywords, 3u);
  ASSERT_EQ(trace.results.size(), 4u);
  EXPECT_EQ(trace.results[0], (std::vector<uint64_t>{0, 2}));  // flu
  EXPECT_EQ(trace.results[1], (std::vector<uint64_t>{0, 1}));  // shared
  EXPECT_EQ(trace.results[3], std::vector<uint64_t>{});        // absent
  // Search pattern: queries 0 and 2 are the same keyword.
  EXPECT_TRUE(trace.search_pattern[0][2]);
  EXPECT_TRUE(trace.search_pattern[2][0]);
  EXPECT_FALSE(trace.search_pattern[0][1]);
  EXPECT_TRUE(trace.search_pattern[3][3]);
}

TEST(TraceTest, EqualHistoriesWithDifferentContentsHaveEqualTraces) {
  // Two histories differing only in document *contents* (same lengths) and
  // keyword *names* (same structure) must produce the same trace — that is
  // what "the server learns nothing beyond the trace" means.
  History h1 = MakeHistory();
  History h2 = MakeHistory();
  h2.documents[0].content = StringToBytes("XXXXXXXXXXXXXXXX");  // same length
  ASSERT_EQ(h2.documents[0].content.size(), h1.documents[0].content.size());
  EXPECT_EQ(ComputeTrace(h1), ComputeTrace(h2));
}

TEST(SimulatorTest, SimulatedViewMatchesTraceShape) {
  DeterministicRandom rng(1);
  core::SchemeOptions options = FastTestConfig().scheme;
  Scheme1Simulator simulator(options, &rng);
  const Trace trace = ComputeTrace(MakeHistory());
  auto view = simulator.SimulateView(trace, trace.results.size());
  SSE_ASSERT_OK_RESULT(view);

  EXPECT_EQ(view->ids, trace.ids);
  ASSERT_EQ(view->encrypted_documents.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(view->encrypted_documents[i].size(),
              Scheme1Simulator::CiphertextSizeFor(trace.lengths[i]));
  }
  EXPECT_EQ(view->index.size(), trace.unique_keywords);
  ASSERT_EQ(view->trapdoors.size(), 4u);
  // Π respected: queries 0 and 2 share a trapdoor, others differ.
  EXPECT_EQ(view->trapdoors[0], view->trapdoors[2]);
  EXPECT_NE(view->trapdoors[0], view->trapdoors[1]);
  EXPECT_NE(view->trapdoors[1], view->trapdoors[3]);
}

TEST(SimulatorTest, PartialViewsArePrefixes) {
  DeterministicRandom rng(2);
  Scheme1Simulator simulator(FastTestConfig().scheme, &rng);
  const Trace trace = ComputeTrace(MakeHistory());
  auto full = simulator.SimulateView(trace, 4);
  SSE_ASSERT_OK_RESULT(full);
  auto partial = simulator.SimulateView(trace, 2);
  SSE_ASSERT_OK_RESULT(partial);
  EXPECT_EQ(partial->trapdoors.size(), 2u);
  EXPECT_FALSE(simulator.SimulateView(trace, 5).ok());  // t > q
}

TEST(SimulatorTest, RealServerStateLooksAsRandomAsSimulated) {
  // Store a very regular, low-entropy document collection with Scheme 1;
  // the *masked* index on the server must be statistically uniform, just
  // like the simulator's fabricated one. A distinguisher that thresholds
  // on byte statistics learns nothing.
  DeterministicRandom rng(3);
  core::SystemConfig config = FastTestConfig();
  config.scheme.max_documents = 2048;  // big bitmaps -> enough sample bytes
  core::SseSystem sys = MakeTestSystem(SystemKind::kScheme1, &rng, config);

  std::vector<Document> docs;
  for (uint64_t i = 0; i < 64; ++i) {
    // Pathological structure: every doc matches keyword "all"; contents all
    // zero bytes.
    docs.push_back(Document{i, Bytes(64, 0), {"all", "k" + std::to_string(i % 4)}});
  }
  SSE_ASSERT_OK(sys.client->Store(docs));

  auto* server = static_cast<core::Scheme1Server*>(sys.server.get());
  auto state = server->SerializeState();
  SSE_ASSERT_OK_RESULT(state);

  // Real server bytes: masked bitmaps + ElGamal blobs + AEAD ciphertexts.
  // The serialization framing (length prefixes, ids) is known public
  // structure and inflates chi-square slightly; the cut below leaves room
  // for it while still catching any leak of the (all-zero!) plaintexts.
  EXPECT_TRUE(LooksUniform(*state, /*monobit_slack=*/0.02, /*chi_cut=*/800.0,
                           /*corr_cut=*/0.05))
      << "monobit=" << MonobitFraction(*state)
      << " chi=" << ChiSquareBytes(*state)
      << " corr=" << SerialCorrelationBytes(*state);

  // Simulated index bytes pass the same tests.
  Scheme1Simulator simulator(config.scheme, &rng);
  History history;
  for (const Document& d : docs) history.documents.push_back(d);
  auto view = simulator.SimulateView(ComputeTrace(history), 0);
  SSE_ASSERT_OK_RESULT(view);
  Bytes simulated;
  for (const auto& entry : view->index) {
    simulated.insert(simulated.end(), entry.masked_bitmap.begin(),
                     entry.masked_bitmap.end());
  }
  EXPECT_TRUE(LooksUniform(simulated));
}

TEST(SimulatorTest, RealTrapdoorsRespectSearchPatternOnly) {
  // The server sees identical trapdoors iff the queried keyword repeats —
  // exactly the Π matrix, nothing more.
  DeterministicRandom rng(4);
  core::SseSystem sys = MakeTestSystem(SystemKind::kScheme1, &rng);
  auto* client = static_cast<core::Scheme1Client*>(sys.client.get());
  auto t_flu1 = client->Trapdoor("flu");
  auto t_flu2 = client->Trapdoor("flu");
  auto t_other = client->Trapdoor("other");
  SSE_ASSERT_OK_RESULT(t_flu1);
  SSE_ASSERT_OK_RESULT(t_flu2);
  SSE_ASSERT_OK_RESULT(t_other);
  EXPECT_EQ(*t_flu1, *t_flu2);
  EXPECT_NE(*t_flu1, *t_other);
  // And tokens themselves look uniform (PRF outputs).
  Bytes concat = Concat(*t_flu1, *t_other);
  EXPECT_GT(security::ShannonEntropyBytes(concat), 5.0);
}

}  // namespace
}  // namespace sse::security
