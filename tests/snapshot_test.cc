#include "sse/storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "sse/storage/faulty_env.h"
#include "test_util.h"

namespace sse::storage {
namespace {

using sse::testing::TempDir;

TEST(SnapshotTest, WriteReadRoundTrip) {
  TempDir dir;
  const std::string path = dir.path() + "/state.snap";
  Bytes payload = StringToBytes("serialized server state");
  ASSERT_TRUE(Snapshot::Write(path, payload).ok());
  EXPECT_TRUE(Snapshot::Exists(path));
  auto restored = Snapshot::Read(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, payload);
}

TEST(SnapshotTest, EmptyPayload) {
  TempDir dir;
  const std::string path = dir.path() + "/empty.snap";
  ASSERT_TRUE(Snapshot::Write(path, Bytes{}).ok());
  auto restored = Snapshot::Read(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(SnapshotTest, MissingFileNotFound) {
  TempDir dir;
  auto restored = Snapshot::Read(dir.path() + "/nope.snap");
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(Snapshot::Exists(dir.path() + "/nope.snap"));
}

TEST(SnapshotTest, OverwriteReplacesAtomically) {
  TempDir dir;
  const std::string path = dir.path() + "/state.snap";
  ASSERT_TRUE(Snapshot::Write(path, StringToBytes("v1")).ok());
  ASSERT_TRUE(Snapshot::Write(path, StringToBytes("v2")).ok());
  auto restored = Snapshot::Read(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(BytesToString(*restored), "v2");
}

TEST(SnapshotTest, CorruptedPayloadDetected) {
  TempDir dir;
  const std::string path = dir.path() + "/state.snap";
  ASSERT_TRUE(Snapshot::Write(path, Bytes(100, 0x5a)).ok());
  // Flip a byte inside the payload region.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 40, SEEK_SET);
  std::fputc(0xff, f);
  std::fclose(f);
  auto restored = Snapshot::Read(path);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SnapshotTest, WrongMagicDetected) {
  TempDir dir;
  const std::string path = dir.path() + "/state.snap";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTASNAPSHOTFILE________", f);
  std::fclose(f);
  auto restored = Snapshot::Read(path);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SnapshotTest, TruncatedFileDetected) {
  TempDir dir;
  const std::string path = dir.path() + "/state.snap";
  ASSERT_TRUE(Snapshot::Write(path, Bytes(100, 1)).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(ftruncate(fileno(f), 50), 0);
  std::fclose(f);
  EXPECT_FALSE(Snapshot::Read(path).ok());
}

TEST(SnapshotTest, ZeroByteFileIsCorruption) {
  // Regression: a crash can leave a zero-byte snapshot (entry durable,
  // content not); that must read as CORRUPTION so recovery falls back to
  // the previous generation instead of failing on a parse error.
  TempDir dir;
  const std::string path = dir.path() + "/state.snap";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  auto restored = Snapshot::Read(path);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SnapshotTest, LargePayload) {
  TempDir dir;
  const std::string path = dir.path() + "/big.snap";
  DeterministicRandom rng(5);
  Bytes payload(1 << 20);
  ASSERT_TRUE(rng.Fill(payload).ok());
  ASSERT_TRUE(Snapshot::Write(path, payload).ok());
  auto restored = Snapshot::Read(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, payload);
}

// --- SnapshotSet: generations ----------------------------------------------

TEST(SnapshotSetTest, KeepsOnlyTheLastTwoGenerations) {
  TempDir dir;
  SnapshotSet snapshots(dir.path());
  EXPECT_EQ(snapshots.ReadNewestValid().status().code(),
            StatusCode::kNotFound);
  SSE_ASSERT_OK(snapshots.WriteNext(StringToBytes("g1")));
  SSE_ASSERT_OK(snapshots.WriteNext(StringToBytes("g2")));
  SSE_ASSERT_OK(snapshots.WriteNext(StringToBytes("g3")));
  auto gens = snapshots.List();
  SSE_ASSERT_OK_RESULT(gens);
  EXPECT_EQ(*gens, (std::vector<uint64_t>{2, 3}));  // g1 pruned
  uint64_t gen = 0;
  auto newest = snapshots.ReadNewestValid(&gen);
  SSE_ASSERT_OK_RESULT(newest);
  EXPECT_EQ(BytesToString(*newest), "g3");
  EXPECT_EQ(gen, 3u);
}

TEST(SnapshotSetTest, FallsBackWhenNewestGenerationIsCorrupt) {
  TempDir dir;
  SnapshotSet snapshots(dir.path());
  SSE_ASSERT_OK(snapshots.WriteNext(StringToBytes("older")));
  SSE_ASSERT_OK(snapshots.WriteNext(StringToBytes("newest")));
  // Damage the newest generation's payload.
  std::FILE* f = std::fopen(snapshots.PathFor(2).c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 25, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, 25, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  uint64_t gen = 0;
  auto restored = snapshots.ReadNewestValid(&gen);
  SSE_ASSERT_OK_RESULT(restored);
  EXPECT_EQ(BytesToString(*restored), "older");
  EXPECT_EQ(gen, 1u);
}

TEST(SnapshotSetTest, AllGenerationsCorruptIsCorruption) {
  TempDir dir;
  SnapshotSet snapshots(dir.path());
  SSE_ASSERT_OK(snapshots.WriteNext(StringToBytes("a")));
  SSE_ASSERT_OK(snapshots.WriteNext(StringToBytes("b")));
  for (uint64_t gen : {1u, 2u}) {
    std::FILE* f = std::fopen(snapshots.PathFor(gen).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("x", f);  // truncated garbage
    std::fclose(f);
  }
  auto restored = snapshots.ReadNewestValid();
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SnapshotSetTest, CrashBeforeParentSyncKeepsPreviousGeneration) {
  // The durability hole Snapshot::Write's final SyncDir exists to close:
  // crash right before it and the freshly renamed generation vanishes, but
  // the previous one is untouched and recovery falls back to it.
  FaultyEnv env;
  SnapshotSet snapshots("/vault", &env);
  SSE_ASSERT_OK(snapshots.WriteNext(StringToBytes("durable")));
  // WriteNext = List + [create tmp, append, sync, rename, syncdir(parent)]
  // + prune + final syncdir; crash at the Write-internal syncdir.
  env.CrashAt(env.ops() + 4);
  EXPECT_FALSE(snapshots.WriteNext(StringToBytes("lost")).ok());
  env.Restart();

  uint64_t gen = 0;
  auto restored = snapshots.ReadNewestValid(&gen);
  SSE_ASSERT_OK_RESULT(restored);
  EXPECT_EQ(BytesToString(*restored), "durable");
  EXPECT_EQ(gen, 1u);
}

}  // namespace
}  // namespace sse::storage
