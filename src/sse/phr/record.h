#ifndef SSE_PHR_RECORD_H_
#define SSE_PHR_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sse/core/types.h"
#include "sse/util/result.h"

namespace sse::phr {

/// A personal-health-record entry, the application the paper motivates in
/// §1/§6 (PHR⁺: privacy-enhanced PHR on an honest-but-curious server).
struct PatientRecord {
  std::string patient_id;   // e.g. national id or MRN
  std::string name;
  std::string visit_date;   // ISO date string
  std::string practitioner;
  std::vector<std::string> conditions;
  std::vector<std::string> medications;
  std::vector<std::string> allergies;
  std::string notes;

  /// Serializes to a human-readable text body (the data item M_i).
  std::string ToText() const;
  /// Parses ToText() output.
  static Result<PatientRecord> FromText(const std::string& text);

  /// Structured search keywords (the metadata item W_i): namespaced tags
  /// like "patient:p123", "condition:diabetes", "med:metformin",
  /// "date:2026-07", plus free-text tokens from the notes.
  std::vector<std::string> SearchKeywords() const;
};

/// Converts a record into the library's Document form under identifier
/// `doc_id`.
core::Document RecordToDocument(uint64_t doc_id, const PatientRecord& record);

/// Parses a search outcome's document back into a record.
Result<PatientRecord> DocumentToRecord(const Bytes& content);

}  // namespace sse::phr

#endif  // SSE_PHR_RECORD_H_
