#ifndef SSE_SECURITY_LEAKAGE_H_
#define SSE_SECURITY_LEAKAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sse/net/channel.h"
#include "sse/util/bytes.h"

namespace sse::security {

/// What an honest-but-curious server can extract from a connection's
/// transcript without any keys. This is the measurement side of §5.7: the
/// update-leakage analysis and the effect of batching / fake updates.
struct LeakageReport {
  /// Per update request: how many keyword entries it carried. An observer
  /// learns the *aggregate* keyword count of a batch, nothing per-document
  /// — which is why batching damps leakage, and why fixed-size fake-padded
  /// updates make the sequence constant.
  std::vector<uint64_t> update_keyword_counts;
  /// Per update request: total wire bytes.
  std::vector<uint64_t> update_sizes;
  /// Distinct search tokens observed, with occurrence counts (the search
  /// pattern Π in observable form).
  std::map<std::string, uint64_t> token_occurrences;  // hex token -> count
  /// Result-set sizes per search reply (the access pattern).
  std::vector<uint64_t> result_sizes;

  /// Number of searches whose token repeats an earlier search.
  uint64_t repeated_searches() const;
  /// Shannon entropy (bits) of the update-size sequence; 0 when all
  /// updates look identical (perfect padding).
  double UpdateSizeEntropy() const;
};

/// Parses a transcript of exchanges (any of the five systems) into the
/// leakage an observer can extract. Unknown message types are counted by
/// size only.
LeakageReport AnalyzeTranscript(const std::vector<net::Exchange>& transcript);

}  // namespace sse::security

#endif  // SSE_SECURITY_LEAKAGE_H_
