#include "sse/baselines/goh_zidx.h"

#include <algorithm>

#include "sse/crypto/hkdf.h"
#include "sse/util/serde.h"

namespace sse::baselines {

namespace {

Status CheckType(const net::Message& msg, uint16_t want) {
  if (msg.type != want) {
    return Status::ProtocolError("expected " + net::MessageTypeName(want) +
                                 ", got " + net::MessageTypeName(msg.type));
  }
  return Status::OK();
}

}  // namespace

Result<uint64_t> GohBitPosition(const Bytes& subkey, uint64_t doc_id,
                                size_t bloom_bits) {
  Bytes id_bytes = core::EncodeDocId(doc_id);
  Bytes codeword;
  SSE_ASSIGN_OR_RETURN(codeword, crypto::HmacSha256(subkey, id_bytes));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(codeword[i]) << (8 * i);
  return v % bloom_bits;
}

// ---------------------------------------------------------------- server --

GohServer::GohServer(const GohOptions& options) : options_(options) {}

Result<net::Message> GohServer::Handle(const net::Message& request) {
  switch (request.type) {
    case kMsgGohStore:
      return HandleStore(request);
    case kMsgGohSearch:
      return HandleSearch(request);
    default:
      return Status::ProtocolError("goh server: unexpected message " +
                                   net::MessageTypeName(request.type));
  }
}

Result<net::Message> GohServer::HandleStore(const net::Message& msg) {
  BufferReader r(msg.payload);
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > r.remaining()) {
    return Status::Corruption("document count exceeds payload");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, r.GetBytes());
    Bytes filter_bytes;
    SSE_ASSIGN_OR_RETURN(filter_bytes, r.GetBytes());
    BitVec filter;
    SSE_ASSIGN_OR_RETURN(filter,
                         BitVec::FromBytes(options_.bloom_bits, filter_bytes));
    SSE_RETURN_IF_ERROR(docs_.Put(id, std::move(blob)));
    filters_.emplace_back(id, std::move(filter));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  BufferWriter w;
  w.PutVarint(count);
  return net::Message{kMsgGohStoreAck, w.TakeData()};
}

Result<net::Message> GohServer::HandleSearch(const net::Message& msg) {
  BufferReader r(msg.payload);
  std::vector<Bytes> subkeys;
  SSE_ASSIGN_OR_RETURN(subkeys, core::GetBytesList(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  if (subkeys.size() != options_.num_keys) {
    return Status::ProtocolError("trapdoor has wrong subkey count");
  }

  // The O(n) scan: probe every document's filter with the r codewords.
  std::vector<uint64_t> ids;
  for (const auto& [id, filter] : filters_) {
    ++filters_probed_;
    bool all_set = true;
    for (const Bytes& subkey : subkeys) {
      uint64_t pos = 0;
      SSE_ASSIGN_OR_RETURN(pos,
                           GohBitPosition(subkey, id, options_.bloom_bits));
      if (!filter.Get(static_cast<size_t>(pos))) {
        all_set = false;
        break;
      }
    }
    if (all_set) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());

  BufferWriter w;
  core::PutIdList(w, ids);
  std::vector<core::WireDocument> wire_docs;
  std::vector<std::pair<uint64_t, Bytes>> fetched;
  SSE_ASSIGN_OR_RETURN(fetched, docs_.GetMany(ids));
  for (const auto& [id, blob] : fetched) {
    wire_docs.push_back(core::WireDocument{id, blob});
  }
  core::PutWireDocuments(w, wire_docs);
  return net::Message{kMsgGohSearchResult, w.TakeData()};
}

Result<Bytes> GohServer::SerializeState() const {
  BufferWriter w;
  w.PutVarint(filters_.size());
  for (const auto& [id, filter] : filters_) {
    w.PutVarint(id);
    w.PutBytes(filter.ToBytes());
  }
  w.PutVarint(docs_.size());
  SSE_RETURN_IF_ERROR(docs_.ForEach([&](uint64_t id, const Bytes& blob) {
    w.PutVarint(id);
    w.PutBytes(blob);
    return true;
  }));
  return w.TakeData();
}

Status GohServer::RestoreState(BytesView data) {
  decltype(filters_) filters;
  storage::DocumentStore docs;
  BufferReader r(data);
  uint64_t filter_count = 0;
  SSE_ASSIGN_OR_RETURN(filter_count, r.GetVarint());
  for (uint64_t i = 0; i < filter_count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes bits;
    SSE_ASSIGN_OR_RETURN(bits, r.GetBytes());
    BitVec filter;
    SSE_ASSIGN_OR_RETURN(filter, BitVec::FromBytes(options_.bloom_bits, bits));
    filters.emplace_back(id, std::move(filter));
  }
  uint64_t doc_count = 0;
  SSE_ASSIGN_OR_RETURN(doc_count, r.GetVarint());
  for (uint64_t i = 0; i < doc_count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, r.GetBytes());
    SSE_RETURN_IF_ERROR(docs.Put(id, std::move(blob)));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  filters_ = std::move(filters);
  docs_ = std::move(docs);
  return Status::OK();
}

bool GohServer::IsMutating(uint16_t msg_type) const {
  return msg_type == kMsgGohStore;
}

// ---------------------------------------------------------------- client --

GohClient::GohClient(std::vector<crypto::Prf> keys, crypto::Aead aead,
                     const GohOptions& options, net::Channel* channel,
                     RandomSource* rng)
    : keys_(std::move(keys)),
      aead_(std::move(aead)),
      options_(options),
      channel_(channel),
      rng_(rng) {}

Result<std::unique_ptr<GohClient>> GohClient::Create(
    const crypto::MasterKey& key, const GohOptions& options,
    net::Channel* channel, RandomSource* rng) {
  if (channel == nullptr || rng == nullptr) {
    return Status::InvalidArgument("channel and rng must be non-null");
  }
  if (options.num_keys == 0 || options.bloom_bits < 8) {
    return Status::InvalidArgument("invalid Goh parameters");
  }
  std::vector<crypto::Prf> keys;
  keys.reserve(options.num_keys);
  for (size_t i = 0; i < options.num_keys; ++i) {
    Bytes subkey_material;
    SSE_ASSIGN_OR_RETURN(
        subkey_material,
        crypto::HkdfSha256(key.keyword_key(), /*salt=*/{},
                           "goh.key." + std::to_string(i), 32));
    Result<crypto::Prf> prf = crypto::Prf::Create(subkey_material);
    if (!prf.ok()) return prf.status();
    keys.push_back(std::move(prf).value());
  }
  Bytes aead_key;
  SSE_ASSIGN_OR_RETURN(aead_key, crypto::HkdfSha256(key.data_key(), /*salt=*/{},
                                                    "sse.data.aead", 32));
  Result<crypto::Aead> aead = crypto::Aead::Create(aead_key);
  if (!aead.ok()) return aead.status();
  return std::unique_ptr<GohClient>(new GohClient(std::move(keys),
                                                  std::move(aead).value(),
                                                  options, channel, rng));
}

Result<std::vector<Bytes>> GohClient::MakeTrapdoor(
    std::string_view keyword) const {
  std::vector<Bytes> subkeys;
  subkeys.reserve(keys_.size());
  for (const crypto::Prf& prf : keys_) {
    Bytes y;
    SSE_ASSIGN_OR_RETURN(y, prf.Eval(keyword));
    subkeys.push_back(std::move(y));
  }
  return subkeys;
}

Status GohClient::Store(const std::vector<core::Document>& docs) {
  if (docs.empty()) return Status::OK();
  BufferWriter w;
  w.PutVarint(docs.size());
  for (const core::Document& doc : docs) {
    w.PutVarint(doc.id);
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(
        blob, aead_.Seal(doc.content, core::EncodeDocId(doc.id), *rng_));
    w.PutBytes(blob);

    BitVec filter(options_.bloom_bits);
    for (const std::string& kw : doc.keywords) {
      std::vector<Bytes> subkeys;
      SSE_ASSIGN_OR_RETURN(subkeys, MakeTrapdoor(kw));
      for (const Bytes& subkey : subkeys) {
        uint64_t pos = 0;
        SSE_ASSIGN_OR_RETURN(
            pos, GohBitPosition(subkey, doc.id, options_.bloom_bits));
        filter.Set(static_cast<size_t>(pos));
      }
    }
    w.PutBytes(filter.ToBytes());
  }
  net::Message ack;
  SSE_ASSIGN_OR_RETURN(
      ack, channel_->Call(net::Message{kMsgGohStore, w.TakeData()}));
  SSE_RETURN_IF_ERROR(CheckType(ack, kMsgGohStoreAck));
  return Status::OK();
}

Result<core::SearchOutcome> GohClient::Search(std::string_view keyword) {
  std::vector<Bytes> subkeys;
  SSE_ASSIGN_OR_RETURN(subkeys, MakeTrapdoor(keyword));
  BufferWriter w;
  core::PutBytesList(w, subkeys);
  net::Message reply;
  SSE_ASSIGN_OR_RETURN(
      reply, channel_->Call(net::Message{kMsgGohSearch, w.TakeData()}));
  SSE_RETURN_IF_ERROR(CheckType(reply, kMsgGohSearchResult));
  BufferReader r(reply.payload);
  core::SearchOutcome outcome;
  SSE_ASSIGN_OR_RETURN(outcome.ids, core::GetIdList(r));
  std::vector<core::WireDocument> wire_docs;
  SSE_ASSIGN_OR_RETURN(wire_docs, core::GetWireDocuments(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  for (const core::WireDocument& wire : wire_docs) {
    Bytes plain;
    SSE_ASSIGN_OR_RETURN(
        plain, aead_.Open(wire.ciphertext, core::EncodeDocId(wire.id)));
    outcome.documents.emplace_back(wire.id, std::move(plain));
  }
  return outcome;
}

}  // namespace sse::baselines
