#ifndef SSE_SECURITY_GAME_H_
#define SSE_SECURITY_GAME_H_

#include <functional>
#include <string>
#include <vector>

#include "sse/core/options.h"
#include "sse/security/trace.h"
#include "sse/util/random.h"

namespace sse::security {

/// Executable form of the paper's Definition 4 (adaptive semantic
/// security), as a distinguishing experiment.
///
/// Two histories with EQUAL traces are fixed; each trial flips a fair coin
/// `b`, executes history `H_b` on a fresh Scheme 1 instance (fresh key,
/// fresh randomness), and hands the adversary the server's *view*. The
/// adversary guesses `b`; its advantage is `2·Pr[correct] − 1`. If the
/// scheme meets the definition, no efficient adversary has non-negligible
/// advantage — the suite runs a battery of concrete distinguishers and
/// checks each stays within statistical noise, and validates the harness
/// itself by confirming the same distinguishers DO win against a
/// deliberately leaky strawman.
///
/// This is evidence, not proof: a passing battery cannot certify security,
/// but any reliably winning distinguisher is a concrete break.

/// Runs one history on a fresh Scheme 1 system and captures the server's
/// view (Definition 2): ids, data-item ciphertexts, the searchable
/// representations, and the search trapdoors in query order.
Result<View> CaptureScheme1View(const History& history,
                                const core::SchemeOptions& options,
                                RandomSource& rng);

/// An adversary: examines a view, outputs a guess for b (0 or 1).
struct Distinguisher {
  std::string name;
  std::function<int(const View&)> guess;
};

/// Crude but honest adversaries: byte statistics over the masked index,
/// ciphertext bit counts, nonce-blob correlations. Each would win with
/// advantage ~1 against a scheme that leaked plaintext structure.
std::vector<Distinguisher> BuiltinDistinguishers();

struct GameOutcome {
  int trials = 0;
  int correct = 0;
  /// 2·(correct/trials) − 1, in [−1, 1]; ~0 means no better than guessing.
  double Advantage() const;
};

/// Plays the game for one distinguisher. `h0` and `h1` MUST have equal
/// traces (checked; INVALID_ARGUMENT otherwise). Coin flips come from
/// `coin_rng`; per-trial scheme randomness from `scheme_rng`.
Result<GameOutcome> PlayScheme1Game(const History& h0, const History& h1,
                                    const core::SchemeOptions& options,
                                    const Distinguisher& adversary, int trials,
                                    RandomSource& coin_rng,
                                    RandomSource& scheme_rng);

/// The strawman: a "view" of the same shape whose index stores the posting
/// bitmaps UNMASKED (as a broken scheme would). Used to prove the
/// distinguishers have teeth.
Result<View> CaptureLeakyStrawmanView(const History& history,
                                      const core::SchemeOptions& options,
                                      RandomSource& rng);

/// Plays the game against the strawman instead of the real scheme.
Result<GameOutcome> PlayStrawmanGame(const History& h0, const History& h1,
                                     const core::SchemeOptions& options,
                                     const Distinguisher& adversary,
                                     int trials, RandomSource& coin_rng,
                                     RandomSource& scheme_rng);

}  // namespace sse::security

#endif  // SSE_SECURITY_GAME_H_
