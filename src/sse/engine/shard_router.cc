#include "sse/engine/shard_router.h"

namespace sse::engine {

size_t ShardForToken(BytesView token, size_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t x = 0;
  const size_t n = token.size() < 8 ? token.size() : 8;
  for (size_t i = 0; i < n; ++i) {
    x |= static_cast<uint64_t>(token[i]) << (8 * i);
  }
  // splitmix64 finalizer.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

}  // namespace sse::engine
