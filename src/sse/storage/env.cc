#include "sse/storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace sse::storage {

namespace {

std::string Errno() { return std::strerror(errno); }

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, std::FILE* file, uint64_t size)
      : path_(std::move(path)), file_(file), size_(size) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(BytesView data) override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (!data.empty() &&
        std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IoError("short write to " + path_ + ": " + Errno());
    }
    size_ += data.size();
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fflush(file_) != 0) {
      return Status::IoError("fflush failed for " + path_ + ": " + Errno());
    }
    if (fsync(fileno(file_)) != 0) {
      return Status::IoError("fsync failed for " + path_ + ": " + Errno());
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return Status::IoError("close failed for " + path_);
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  std::string path_;
  std::FILE* file_;
  uint64_t size_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (file == nullptr) {
      return Status::IoError("cannot open " + path + ": " + Errno());
    }
    uint64_t size = 0;
    if (!truncate) {
      // "ab" positions writes at EOF but ftell may report 0 before the
      // first write; seek explicitly to learn the current size.
      if (std::fseek(file, 0, SEEK_END) != 0) {
        std::fclose(file);
        return Status::IoError("cannot seek " + path + ": " + Errno());
      }
      const long pos = std::ftell(file);
      if (pos < 0) {
        std::fclose(file);
        return Status::IoError("cannot tell " + path + ": " + Errno());
      }
      size = static_cast<uint64_t>(pos);
    }
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(path, file, size));
  }

  Result<Bytes> ReadFile(const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      if (errno == ENOENT) return Status::NotFound("no file at " + path);
      return Status::IoError("cannot open " + path + ": " + Errno());
    }
    std::fseek(file, 0, SEEK_END);
    const long file_size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    if (file_size < 0) {
      std::fclose(file);
      return Status::IoError("cannot stat " + path);
    }
    Bytes raw(static_cast<size_t>(file_size));
    const size_t got =
        raw.empty() ? 0 : std::fread(raw.data(), 1, raw.size(), file);
    std::fclose(file);
    if (got != raw.size()) return Status::IoError("short read on " + path);
    return raw;
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return Status::IoError("cannot open dir " + dir + ": " + Errno());
    }
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    ::closedir(d);
    return names;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError("rename " + from + " -> " + to + ": " + Errno());
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return Status::IoError("remove " + path + ": " + Errno());
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      return Status::IoError("cannot open dir " + dir + ": " + Errno());
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Status::IoError("fsync dir " + dir + ": " + Errno());
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound("no file at " + path);
      return Status::IoError("stat " + path + ": " + Errno());
    }
    return static_cast<uint64_t>(st.st_size);
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace sse::storage
