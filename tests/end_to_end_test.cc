// Full-pipeline integration: PHR application -> scheme client -> channel ->
// durable server -> WAL/snapshot -> restart -> search, for both schemes.

#include <gtest/gtest.h>

#include "sse/core/durable_server.h"
#include "sse/core/registry.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_server.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"
#include "sse/phr/phr_store.h"
#include "sse/phr/tokenizer.h"
#include "sse/phr/workload.h"
#include "test_util.h"

namespace sse {
namespace {

using core::Document;
using core::SystemKind;
using sse::testing::FastTestConfig;
using sse::testing::MakeTestSystem;
using sse::testing::TempDir;
using sse::testing::TestMasterKey;

TEST(EndToEndTest, PhrOverDurableScheme1WithRestart) {
  TempDir dir;
  const core::SchemeOptions options = FastTestConfig().scheme;
  phr::PhrWorkload::Params params;
  params.num_patients = 6;
  params.visits_per_patient = 2;
  phr::PhrWorkload workload(params);

  // Session 1: ingest half the records, checkpoint, ingest the rest,
  // "crash" without a second checkpoint.
  {
    core::Scheme1Server inner(options);
    auto durable = core::DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    net::InProcessChannel channel(durable->get());
    DeterministicRandom rng(1);
    auto client =
        core::Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
    SSE_ASSERT_OK_RESULT(client);
    phr::PhrStore store(client->get());

    const auto& records = workload.records();
    std::vector<phr::PatientRecord> first_half(records.begin(),
                                               records.begin() + 6);
    std::vector<phr::PatientRecord> second_half(records.begin() + 6,
                                                records.end());
    SSE_ASSERT_OK(store.AddRecords(first_half));
    SSE_ASSERT_OK((*durable)->Checkpoint());
    SSE_ASSERT_OK(store.AddRecords(second_half));
  }

  // Session 2: recover (snapshot + WAL) and verify every patient's records
  // are all present.
  {
    core::Scheme1Server inner(options);
    auto durable = core::DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    EXPECT_EQ(inner.document_count(), 12u);
    net::InProcessChannel channel(durable->get());
    DeterministicRandom rng(2);
    auto client =
        core::Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
    SSE_ASSERT_OK_RESULT(client);

    std::map<std::string, int> expected_counts;
    for (const auto& record : workload.records()) {
      ++expected_counts[record.patient_id];
    }
    for (const auto& [pid, count] : expected_counts) {
      auto outcome = (*client)->Search(phr::Tag("patient", pid));
      SSE_ASSERT_OK_RESULT(outcome);
      EXPECT_EQ(outcome->ids.size(), static_cast<size_t>(count)) << pid;
      // Contents decrypt to parseable records.
      for (const auto& [id, content] : outcome->documents) {
        EXPECT_TRUE(phr::DocumentToRecord(content).ok());
      }
    }
  }
}

TEST(EndToEndTest, Scheme2SurvivesRestartMidEpoch) {
  TempDir dir;
  const core::SchemeOptions options = FastTestConfig().scheme;

  // The Scheme 2 client's counter is client state; persist it by re-running
  // the same deterministic sequence — here we simply keep one client alive
  // across two server incarnations, as a real deployment would persist ctr.
  DeterministicRandom rng(3);
  core::Scheme2Server inner1(options);
  auto durable1 = core::DurableServer::Open(dir.path(), &inner1);
  SSE_ASSERT_OK_RESULT(durable1);
  net::InProcessChannel channel1(durable1->get());
  auto client =
      core::Scheme2Client::Create(TestMasterKey(), options, &channel1, &rng);
  SSE_ASSERT_OK_RESULT(client);

  SSE_ASSERT_OK((*client)->Store({Document::Make(0, "a", {"kw"})}));
  SSE_ASSERT_OK_RESULT((*client)->Search("kw"));
  SSE_ASSERT_OK((*client)->Store({Document::Make(1, "b", {"kw"})}));

  // Server restarts; client keeps its counter (1 search + 2 updates -> 2).
  core::Scheme2Server inner2(options);
  auto durable2 = core::DurableServer::Open(dir.path(), &inner2);
  SSE_ASSERT_OK_RESULT(durable2);
  EXPECT_EQ(inner2.document_count(), 2u);

  // Reconnect the SAME client (its counter/epoch are client state) to the
  // recovered server and keep working.
  net::InProcessChannel channel2(durable2->get());
  (*client)->set_channel(&channel2);
  auto outcome = (*client)->Search("kw");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{0, 1}));
  SSE_ASSERT_OK((*client)->Store({Document::Make(2, "c", {"kw"})}));
  auto grown = (*client)->Search("kw");
  SSE_ASSERT_OK_RESULT(grown);
  EXPECT_EQ(grown->ids, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(EndToEndTest, LogBackedDocumentsServeBothSchemes) {
  // Document ciphertexts spill to an on-disk LogStore; the searchable
  // index stays in memory. Search results and contents must be identical
  // to the in-memory backend, and the blobs must survive a reopen.
  for (SystemKind kind : {SystemKind::kScheme1, SystemKind::kScheme2}) {
    TempDir dir;
    core::SystemConfig config = FastTestConfig();
    config.scheme.document_log_path = dir.path() + "/docs.log";
    DeterministicRandom rng(33);
    core::SseSystem sys = MakeTestSystem(kind, &rng, config);

    std::vector<Document> docs;
    for (uint64_t i = 0; i < 20; ++i) {
      docs.push_back(Document::Make(i, "payload-" + std::to_string(i),
                                    {"kw" + std::to_string(i % 4)}));
    }
    SSE_ASSERT_OK(sys.client->Store(docs));
    auto outcome = sys.client->Search("kw2");
    SSE_ASSERT_OK_RESULT(outcome);
    EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{2, 6, 10, 14, 18}));
    ASSERT_EQ(outcome->documents.size(), 5u);
    EXPECT_EQ(BytesToString(outcome->documents[0].second), "payload-2");

    // The blobs are on disk: a second store over the same log sees them.
    auto reopened =
        storage::DocumentStore::OpenLogBacked(config.scheme.document_log_path);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened->size(), 20u);
  }
}

TEST(EndToEndTest, MultiTenantIsolationOnSharedServer) {
  // Two clients with independent master keys share one physical server.
  // Tokens are PRF outputs under different keys, so the tenants' indexes
  // interleave in the same tree without any cross-talk.
  const core::SchemeOptions options = FastTestConfig().scheme;
  for (SystemKind kind : {SystemKind::kScheme1, SystemKind::kScheme2}) {
    DeterministicRandom rng_a(11);
    DeterministicRandom rng_b(22);
    DeterministicRandom key_rng_a(100);
    DeterministicRandom key_rng_b(200);
    auto key_a = crypto::MasterKey::Generate(key_rng_a);
    auto key_b = crypto::MasterKey::Generate(key_rng_b);
    ASSERT_TRUE(key_a.ok());
    ASSERT_TRUE(key_b.ok());

    std::unique_ptr<core::PersistableHandler> server;
    if (kind == SystemKind::kScheme1) {
      server = std::make_unique<core::Scheme1Server>(options);
    } else {
      server = std::make_unique<core::Scheme2Server>(options);
    }
    net::InProcessChannel channel_a(server.get());
    net::InProcessChannel channel_b(server.get());

    std::unique_ptr<core::SseClientInterface> client_a;
    std::unique_ptr<core::SseClientInterface> client_b;
    if (kind == SystemKind::kScheme1) {
      client_a = core::Scheme1Client::Create(*key_a, options, &channel_a,
                                             &rng_a)
                     .value();
      client_b = core::Scheme1Client::Create(*key_b, options, &channel_b,
                                             &rng_b)
                     .value();
    } else {
      client_a = core::Scheme2Client::Create(*key_a, options, &channel_a,
                                             &rng_a)
                     .value();
      client_b = core::Scheme2Client::Create(*key_b, options, &channel_b,
                                             &rng_b)
                     .value();
    }

    // Both tenants use the SAME keyword string and overlapping doc ids...
    // which collide in the document store, so tenants must partition ids
    // (a deployment concern); use disjoint ranges here.
    SSE_ASSERT_OK(client_a->Store({Document::Make(0, "tenant A doc", {"kw"})}));
    SSE_ASSERT_OK(
        client_b->Store({Document::Make(100, "tenant B doc", {"kw"})}));

    auto a = client_a->Search("kw");
    SSE_ASSERT_OK_RESULT(a);
    EXPECT_EQ(a->ids, std::vector<uint64_t>{0}) << core::SystemKindName(kind);
    auto b = client_b->Search("kw");
    SSE_ASSERT_OK_RESULT(b);
    EXPECT_EQ(b->ids, std::vector<uint64_t>{100});
    // Tenant A cannot decrypt or even see tenant B's postings.
    ASSERT_EQ(a->documents.size(), 1u);
    EXPECT_EQ(BytesToString(a->documents[0].second), "tenant A doc");
  }
}

TEST(EndToEndTest, MixedWorkloadAcrossAllSystems) {
  // The same PHR workload must yield identical query answers on every
  // system (modulo none — results are exact for all five).
  phr::PhrWorkload::Params params;
  params.num_patients = 8;
  params.visits_per_patient = 2;
  phr::PhrWorkload workload(params);
  auto docs = workload.ToDocuments();

  std::map<std::string, std::vector<uint64_t>> reference;
  for (size_t i = 0; i < docs.size(); ++i) {
    for (const auto& kw : docs[i].keywords) {
      reference[kw].push_back(docs[i].id);
    }
  }

  for (SystemKind kind : core::AllSystemKinds()) {
    DeterministicRandom rng(7);
    core::SseSystem sys = MakeTestSystem(kind, &rng);
    SSE_ASSERT_OK(sys.client->Store(docs));
    for (const auto& [kw, expected] : reference) {
      auto outcome = sys.client->Search(kw);
      SSE_ASSERT_OK_RESULT(outcome);
      EXPECT_EQ(outcome->ids, expected)
          << core::SystemKindName(kind) << " keyword " << kw;
    }
  }
}

}  // namespace
}  // namespace sse
