file(REMOVE_RECURSE
  "CMakeFiles/integration_stack_test.dir/integration_stack_test.cc.o"
  "CMakeFiles/integration_stack_test.dir/integration_stack_test.cc.o.d"
  "integration_stack_test"
  "integration_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
