#ifndef SSE_NET_ADMISSION_H_
#define SSE_NET_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "sse/util/bytes.h"
#include "sse/util/status.h"

namespace sse::net {

/// Coarse request class for admission priority. Searches are the cheap,
/// latency-sensitive traffic an overloaded server should keep answering;
/// mutations burn WAL fsyncs and index growth and are what a brownout
/// sheds first; control traffic (stats scrapes, replication shipping,
/// promotion) is never shed — starving the health probes or the WAL
/// stream during overload would turn a brownout into an outage.
enum class OpClass : uint8_t { kSearch, kMutation, kControl };

/// Classifies a *raw request frame* without a full decode: strips the
/// header-flag bits from the leading type tag and, for a batch envelope,
/// light-parses just far enough to read the first sub-op's type (MultiCall
/// envelopes are homogeneous rounds, so the first op is representative).
/// Unknown types classify as kMutation — the conservative direction, and
/// the same default repl::FailoverChannel uses for routing.
/// The mutation set is the normative wire protocol's (docs/PROTOCOL.md):
/// Scheme 1/2/3 update + reinit requests and the common document put.
OpClass ClassifyFrame(BytesView frame);

/// Attaches a machine-readable retry-after hint to a shed/overload status.
/// The hint rides inside the status *message* as a trailing
/// " [retry-after-ms=N]" marker, which survives the kMsgError wire
/// encoding (code + message string) that the channel layer collapses
/// error replies into. Retry layers parse it back out with
/// RetryAfterHintMs and floor their next backoff at the hint.
Status WithRetryAfter(Status status, uint32_t retry_after_ms);

/// Extracts a WithRetryAfter hint; false when `status` carries none.
bool RetryAfterHintMs(const Status& status, uint32_t* retry_after_ms);

/// The verdict of one admission check.
struct AdmissionDecision {
  bool admit = true;
  /// When shedding: how long the client should wait before retrying, so
  /// backoff adapts to the server's view of the overload instead of the
  /// client's guess.
  uint32_t retry_after_ms = 0;
  /// Diagnostic tag for the shed reason ("queue_full", "queue_wait",
  /// "memory"); never nullptr.
  const char* reason = "";
};

/// Server-side admission policy, consulted on the reactor loop thread for
/// every data frame *before* it is queued for dispatch. Implementations
/// must be thread-safe and fast — this sits on the per-frame hot path of
/// every connection.
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  /// Admit or shed one request. `queue_depth` is the dispatch queue's
  /// occupancy at arrival.
  virtual AdmissionDecision Admit(OpClass op, size_t queue_depth) = 0;

  /// Feedback: the measured queue wait of a request that reached a
  /// worker, so wait-based policies see the latency their admits bought.
  virtual void OnQueueWait(uint64_t /*wait_ns*/) {}
};

/// Default policy: queue-depth and queue-wait-EWMA thresholds with
/// mutation-vs-search priority and an optional memory-pressure input.
///
/// Two watermarks per signal: mutations shed at the lower one, searches
/// only at the higher — so as load climbs the server browns out (updates
/// bounce with retry-after, searches keep serving) before it blacks out.
/// Memory pressure (e.g. the reply cache or posting store near its bound)
/// sheds mutations only; searches allocate no durable state.
class QueueAdmissionController : public AdmissionController {
 public:
  struct Options {
    /// Queue-depth watermark above which searches (and everything else)
    /// are shed. 0 disables depth shedding entirely.
    size_t max_queue_depth = 0;
    /// Lower watermark for mutations; 0 derives max_queue_depth / 2.
    size_t mutation_queue_depth = 0;
    /// EWMA queue-wait watermark (ms) above which searches shed; 0
    /// disables wait shedding.
    double max_queue_wait_ms = 0.0;
    /// Lower wait watermark for mutations; 0 derives half of max.
    double mutation_queue_wait_ms = 0.0;
    /// EWMA smoothing factor per sample, in (0, 1]; higher reacts faster.
    double wait_ewma_alpha = 0.2;
    /// When set and returning true, mutations are shed (memory pressure:
    /// reply cache or posting store at its bound). Checked per mutation.
    std::function<bool()> memory_pressure;
    /// Base retry-after hint; the emitted hint scales with how far past
    /// the watermark the queue is (capped at 8x).
    uint32_t retry_after_ms = 25;
  };

  explicit QueueAdmissionController(Options options);

  AdmissionDecision Admit(OpClass op, size_t queue_depth) override;
  void OnQueueWait(uint64_t wait_ns) override;

  /// Current queue-wait EWMA in ms (for tests and the stats summary).
  double wait_ewma_ms() const;

  uint64_t shed_total() const {
    return shed_total_.load(std::memory_order_relaxed);
  }

 private:
  AdmissionDecision Shed(OpClass op, const char* reason, double overload);

  Options options_;
  std::atomic<uint64_t> wait_ewma_us_{0};  // fixed-point EWMA, microseconds
  std::atomic<uint64_t> shed_total_{0};
};

}  // namespace sse::net

#endif  // SSE_NET_ADMISSION_H_
