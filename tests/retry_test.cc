// RetryingChannel policy: classification, decorrelated-jitter backoff,
// deadlines, session stamping (seq reuse across attempts), and client-side
// stale/corrupt reply detection.

#include "sse/net/retry.h"

#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <vector>

#include "sse/util/crc32.h"
#include "test_util.h"

namespace sse::net {
namespace {

/// Channel whose next Calls run scripted behaviors (then echo by default).
class ScriptedChannel : public Channel {
 public:
  using Behavior = std::function<Result<Message>(const Message&)>;

  void Push(Behavior b) { script_.push_back(std::move(b)); }

  Result<Message> Call(const Message& request) override {
    stats_.rounds += 1;
    seen_.push_back(request);
    if (!script_.empty()) {
      Behavior b = std::move(script_.front());
      script_.pop_front();
      return b(request);
    }
    return Echo(request);
  }

  void Reset() override { resets_ += 1; }
  const ChannelStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Clear(); }

  /// Well-formed reply: echoes the request's session stamp.
  static Result<Message> Echo(const Message& request) {
    Message reply;
    reply.type = static_cast<uint16_t>(request.type + 1);
    reply.payload = request.payload;
    reply.EchoSession(request);
    return reply;
  }

  const std::vector<Message>& seen() const { return seen_; }
  uint64_t resets() const { return resets_; }

 private:
  std::deque<Behavior> script_;
  std::vector<Message> seen_;
  ChannelStats stats_;
  uint64_t resets_ = 0;
};

RetryOptions FastOptions() {
  RetryOptions opts;
  opts.max_attempts = 5;
  opts.initial_backoff_ms = 10.0;
  opts.max_backoff_ms = 100.0;
  return opts;
}

/// Retry harness with virtual time: sleeps advance the clock instantly.
struct Harness {
  explicit Harness(RetryOptions opts) : rng(7), retry(&inner, opts, &rng) {
    retry.set_clock_fn([this] { return now_ms; });
    retry.set_sleep_fn([this](double ms) {
      now_ms += ms;
      sleeps.push_back(ms);
    });
  }
  ScriptedChannel inner;
  DeterministicRandom rng;
  RetryingChannel retry;
  double now_ms = 0.0;
  std::vector<double> sleeps;
};

Message Request(uint16_t type = 0x0101) {
  Message m;
  m.type = type;
  m.payload = Bytes{1, 2, 3};
  return m;
}

TEST(RetryTest, FirstAttemptSuccessMakesOneInnerCall) {
  Harness h(FastOptions());
  auto reply = h.retry.Call(Request());
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_EQ(h.retry.retry_stats().calls, 1u);
  EXPECT_EQ(h.retry.retry_stats().attempts, 1u);
  EXPECT_EQ(h.retry.retry_stats().retries, 0u);
  EXPECT_TRUE(h.sleeps.empty());
}

TEST(RetryTest, StampsSessionsWithMonotonicSeq) {
  Harness h(FastOptions());
  SSE_ASSERT_OK_RESULT(h.retry.Call(Request()));
  SSE_ASSERT_OK_RESULT(h.retry.Call(Request()));
  ASSERT_EQ(h.inner.seen().size(), 2u);
  EXPECT_TRUE(h.inner.seen()[0].has_session);
  EXPECT_EQ(h.inner.seen()[0].client_id, h.retry.client_id());
  EXPECT_EQ(h.inner.seen()[0].seq + 1, h.inner.seen()[1].seq);
  EXPECT_EQ(h.inner.seen()[0].payload_crc, Crc32c(Bytes{1, 2, 3}));
}

TEST(RetryTest, RetryableFailuresAreRetriedWithResetUntilSuccess) {
  Harness h(FastOptions());
  h.inner.Push([](const Message&) -> Result<Message> {
    return Status::IoError("boom");
  });
  h.inner.Push([](const Message&) -> Result<Message> {
    return Status::Unavailable("still down");
  });
  auto reply = h.retry.Call(Request());
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_EQ(h.retry.retry_stats().attempts, 3u);
  EXPECT_EQ(h.retry.retry_stats().retries, 2u);
  // The transport is flushed before every re-send.
  EXPECT_EQ(h.inner.resets(), 2u);
  EXPECT_EQ(h.sleeps.size(), 2u);
}

TEST(RetryTest, AllAttemptsOfOneCallShareTheSeq) {
  // Seq reuse is the heart of exactly-once: the server dedups retries of
  // one logical call only because they carry the same stamp.
  Harness h(FastOptions());
  for (int i = 0; i < 3; ++i) {
    h.inner.Push([](const Message&) -> Result<Message> {
      return Status::IoError("flaky");
    });
  }
  SSE_ASSERT_OK_RESULT(h.retry.Call(Request()));
  ASSERT_EQ(h.inner.seen().size(), 4u);
  for (const Message& m : h.inner.seen()) {
    EXPECT_EQ(m.seq, h.inner.seen()[0].seq);
    EXPECT_EQ(m.client_id, h.retry.client_id());
  }
  // The next logical call advances.
  SSE_ASSERT_OK_RESULT(h.retry.Call(Request()));
  EXPECT_EQ(h.inner.seen().back().seq, h.inner.seen()[0].seq + 1);
}

TEST(RetryTest, NonRetryableErrorSurfacesImmediately) {
  Harness h(FastOptions());
  h.inner.Push([](const Message&) -> Result<Message> {
    return Status::InvalidArgument("bad token");
  });
  auto reply = h.retry.Call(Request());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(h.retry.retry_stats().attempts, 1u);
  EXPECT_EQ(h.retry.retry_stats().retries, 0u);
}

TEST(RetryTest, BackoffFollowsDecorrelatedJitterBounds) {
  RetryOptions opts = FastOptions();
  opts.max_attempts = 6;
  opts.initial_backoff_ms = 8.0;
  opts.max_backoff_ms = 50.0;
  Harness h(opts);
  for (int i = 0; i < 6; ++i) {
    h.inner.Push([](const Message&) -> Result<Message> {
      return Status::IoError("down");
    });
  }
  auto reply = h.retry.Call(Request());
  ASSERT_FALSE(reply.ok());
  ASSERT_EQ(h.sleeps.size(), 5u);
  // First sleep drawn from [0, base]; later from [base, 3*prev], capped.
  EXPECT_GE(h.sleeps[0], 0.0);
  EXPECT_LE(h.sleeps[0], opts.initial_backoff_ms);
  for (size_t i = 1; i < h.sleeps.size(); ++i) {
    EXPECT_LE(h.sleeps[i], opts.max_backoff_ms);
    const double hi = 3.0 * h.sleeps[i - 1];
    if (hi >= opts.initial_backoff_ms) {
      EXPECT_GE(h.sleeps[i],
                std::min(opts.initial_backoff_ms, opts.max_backoff_ms));
      EXPECT_LE(h.sleeps[i], std::max(hi, opts.initial_backoff_ms));
    }
  }
}

TEST(RetryTest, DeadlineBoundsTheWholeCall) {
  RetryOptions opts = FastOptions();
  opts.max_attempts = 100;
  opts.initial_backoff_ms = 40.0;
  opts.max_backoff_ms = 40.0;
  opts.call_deadline_ms = 100.0;
  Harness h(opts);
  for (int i = 0; i < 100; ++i) {
    h.inner.Push([](const Message&) -> Result<Message> {
      return Status::IoError("down");
    });
  }
  auto reply = h.retry.Call(Request());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(h.retry.retry_stats().deadline_exceeded, 1u);
  // Far fewer than max_attempts ran before the budget expired.
  EXPECT_LT(h.retry.retry_stats().attempts, 10u);
  // The deadline error carries the underlying failure for diagnosis.
  EXPECT_NE(reply.status().message().find("IO_ERROR"), std::string::npos);
}

TEST(RetryTest, StaleReplyIsDiscardedAndCallRetried) {
  Harness h(FastOptions());
  h.inner.Push([](const Message& request) -> Result<Message> {
    // A reply for some OTHER call (stream off by one): wrong seq echo.
    Message stale;
    stale.type = static_cast<uint16_t>(request.type + 1);
    stale.payload = Bytes{0xde, 0xad};
    stale.StampSession(request.client_id, request.seq + 1000);
    return stale;
  });
  auto reply = h.retry.Call(Request());
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_EQ(reply->payload, (Bytes{1, 2, 3}));  // the genuine echo
  EXPECT_EQ(h.retry.retry_stats().stale_replies, 1u);
  EXPECT_EQ(h.inner.resets(), 1u);  // flushed the desynced stream
}

TEST(RetryTest, CorruptReplyIsDetectedByChecksumAndRetried) {
  Harness h(FastOptions());
  h.inner.Push([](const Message& request) -> Result<Message> {
    Result<Message> reply = ScriptedChannel::Echo(request);
    reply->payload[0] ^= 0xff;  // damage after the CRC was computed
    return reply;
  });
  auto reply = h.retry.Call(Request());
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_EQ(h.retry.retry_stats().corrupt_replies, 1u);
  EXPECT_EQ(h.retry.retry_stats().attempts, 2u);
}

TEST(RetryTest, CorruptReplySurfacesWhenCorruptRetryDisabled) {
  RetryOptions opts = FastOptions();
  opts.retry_corrupt_replies = false;
  Harness h(opts);
  h.inner.Push([](const Message& request) -> Result<Message> {
    Result<Message> reply = ScriptedChannel::Echo(request);
    reply->payload[0] ^= 0xff;
    return reply;
  });
  auto reply = h.retry.Call(Request());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kCorruption);
}

TEST(RetryTest, ExhaustionReportsTheLastError) {
  RetryOptions opts = FastOptions();
  opts.max_attempts = 3;
  Harness h(opts);
  for (int i = 0; i < 3; ++i) {
    h.inner.Push([](const Message&) -> Result<Message> {
      return Status::Unavailable("overloaded");
    });
  }
  auto reply = h.retry.Call(Request());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(reply.status().message().find("retries exhausted"),
            std::string::npos);
  EXPECT_EQ(h.retry.retry_stats().exhausted, 1u);
}

TEST(RetryTest, UnstampedModePassesMessagesThroughBare) {
  RetryOptions opts = FastOptions();
  opts.stamp_sessions = false;
  Harness h(opts);
  SSE_ASSERT_OK_RESULT(h.retry.Call(Request()));
  ASSERT_EQ(h.inner.seen().size(), 1u);
  EXPECT_FALSE(h.inner.seen()[0].has_session);
}

TEST(RetryTest, DistinctChannelsDrawDistinctClientIds) {
  DeterministicRandom rng(3);
  ScriptedChannel inner;
  RetryingChannel a(&inner, FastOptions(), &rng);
  RetryingChannel b(&inner, FastOptions(), &rng);
  EXPECT_NE(a.client_id(), 0u);
  EXPECT_NE(a.client_id(), b.client_id());
}

}  // namespace
}  // namespace sse::net
