#include "sse/storage/wal.h"

#include <unistd.h>

#include <cstring>

#include "sse/util/crc32.h"

namespace sse::storage {

namespace {

void PutU32(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32(const uint8_t* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[i]) << (8 * i);
  return v;
}

constexpr size_t kHeaderSize = 8;
constexpr uint32_t kMaxRecordSize = 1u << 30;

}  // namespace

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      appended_records_(other.appended_records_) {
  other.file_ = nullptr;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    file_ = other.file_;
    appended_records_ = other.appended_records_;
    other.file_ = nullptr;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open WAL at " + path + ": " +
                           std::strerror(errno));
  }
  return WriteAheadLog(path, file);
}

Status WriteAheadLog::Append(BytesView payload) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL moved-from");
  if (payload.size() > kMaxRecordSize) {
    return Status::InvalidArgument("WAL record exceeds 1 GiB");
  }
  uint8_t header[kHeaderSize];
  PutU32(header, static_cast<uint32_t>(payload.size()));
  PutU32(header + 4, Crc32c(payload));
  if (std::fwrite(header, 1, kHeaderSize, file_) != kHeaderSize) {
    return Status::IoError("WAL header write failed");
  }
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    return Status::IoError("WAL payload write failed");
  }
  ++appended_records_;
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL moved-from");
  if (std::fflush(file_) != 0) return Status::IoError("WAL fflush failed");
  if (fsync(fileno(file_)) != 0) return Status::IoError("WAL fsync failed");
  return Status::OK();
}

Status WriteAheadLog::Replay(const std::string& path,
                             const std::function<Status(BytesView)>& fn,
                             uint64_t* torn_bytes) {
  if (torn_bytes != nullptr) *torn_bytes = 0;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    // A missing log is an empty log.
    return Status::OK();
  }
  Status status = Status::OK();
  while (true) {
    uint8_t header[kHeaderSize];
    const size_t got = std::fread(header, 1, kHeaderSize, file);
    if (got == 0) break;  // clean EOF
    if (got < kHeaderSize) {
      if (torn_bytes != nullptr) *torn_bytes = got;
      break;  // torn header at tail
    }
    const uint32_t len = GetU32(header);
    const uint32_t crc = GetU32(header + 4);
    if (len > kMaxRecordSize) {
      status = Status::Corruption("WAL record length implausible");
      break;
    }
    Bytes payload(len);
    const size_t body = std::fread(payload.data(), 1, len, file);
    if (body < len) {
      if (torn_bytes != nullptr) *torn_bytes = kHeaderSize + body;
      break;  // torn payload at tail
    }
    if (Crc32c(payload) != crc) {
      // If this is the final record it is a torn write; if more data
      // follows it is corruption. Peek one byte to distinguish.
      const int next = std::fgetc(file);
      if (next == EOF) {
        if (torn_bytes != nullptr) *torn_bytes = kHeaderSize + len;
        break;
      }
      status = Status::Corruption("WAL record CRC mismatch mid-log");
      break;
    }
    status = fn(payload);
    if (!status.ok()) break;
  }
  std::fclose(file);
  return status;
}

Status WriteAheadLog::Reset() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL moved-from");
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) return Status::IoError("WAL reopen failed");
  appended_records_ = 0;
  return Status::OK();
}

}  // namespace sse::storage
