#include "sse/util/logging.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <ctime>
#include <memory>
#include <mutex>

namespace sse {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::atomic<uint64_t (*)()> g_trace_provider{nullptr};

// The sink is swapped under a mutex and used via shared_ptr so a log
// statement racing with SetLogSink never calls a destroyed callable.
std::mutex g_sink_mu;
std::shared_ptr<LogSink> g_sink;  // null = default stderr text sink

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

uint32_t ThreadNumber() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

uint64_t WallMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void FormatIsoTime(uint64_t wall_micros, char* buf, size_t buf_size) {
  const std::time_t secs = static_cast<std::time_t>(wall_micros / 1000000);
  const unsigned millis = static_cast<unsigned>((wall_micros / 1000) % 1000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  const size_t n = std::strftime(buf, buf_size, "%Y-%m-%dT%H:%M:%S", &tm_utc);
  std::snprintf(buf + n, buf_size - n, ".%03uZ", millis);
}

void DefaultSink(const LogRecord& record) {
  char ts[40];
  FormatIsoTime(record.wall_micros, ts, sizeof(ts));
  if (record.trace_id != 0) {
    std::fprintf(stderr, "[%s %s tid=%u trace=%llx] %s:%d %s\n",
                 LevelName(record.level), ts, record.tid,
                 static_cast<unsigned long long>(record.trace_id), record.file,
                 record.line, record.message.c_str());
  } else {
    std::fprintf(stderr, "[%s %s tid=%u] %s:%d %s\n", LevelName(record.level),
                 ts, record.tid, record.file, record.line,
                 record.message.c_str());
  }
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = sink ? std::make_shared<LogSink>(std::move(sink)) : nullptr;
}

LogSink MakeJsonLinesSink(std::FILE* out) {
  return [out](const LogRecord& record) {
    std::string line = "{\"ts\":" + std::to_string(record.wall_micros) +
                       ",\"level\":\"" + LevelName(record.level) +
                       "\",\"file\":\"";
    AppendJsonEscaped(&line, record.file);
    line += "\",\"line\":" + std::to_string(record.line) +
            ",\"tid\":" + std::to_string(record.tid);
    if (record.trace_id != 0) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%llx",
                    static_cast<unsigned long long>(record.trace_id));
      line += ",\"trace\":\"";
      line += buf;
      line += "\"";
    }
    line += ",\"msg\":\"";
    AppendJsonEscaped(&line, record.message);
    line += "\"}\n";
    std::fwrite(line.data(), 1, line.size(), out);
    std::fflush(out);
  };
}

void SetLogTraceIdProvider(uint64_t (*provider)()) {
  g_trace_provider.store(provider, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_level.load()) return;
  LogRecord record;
  record.level = level_;
  record.file = Basename(file_);
  record.line = line_;
  record.wall_micros = WallMicros();
  record.tid = ThreadNumber();
  auto* provider = g_trace_provider.load(std::memory_order_relaxed);
  record.trace_id = provider != nullptr ? provider() : 0;
  record.message = stream_.str();
  std::shared_ptr<LogSink> sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    sink = g_sink;
  }
  if (sink) {
    (*sink)(record);
  } else {
    DefaultSink(record);
  }
}

}  // namespace internal_logging

}  // namespace sse
