#ifndef SSE_NET_CHAOS_H_
#define SSE_NET_CHAOS_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "sse/net/channel.h"
#include "sse/util/random.h"

namespace sse::net {

/// Per-direction fault probabilities for ChaosChannel, all in [0, 1] and
/// drawn independently per Call from a seeded generator, so a failing
/// schedule replays exactly from its seed.
struct ChaosOptions {
  uint64_t seed = 1;

  double p_request_drop = 0.0;       // request never reaches the server
  double p_request_duplicate = 0.0;  // server processes the request twice
  double p_request_corrupt = 0.0;    // payload byte flipped before the server
  double p_reply_drop = 0.0;         // server processed; reply lost
  double p_reply_duplicate = 0.0;    // reply delivered again on a later read
  double p_reply_corrupt = 0.0;      // payload byte flipped before the client
  double p_delay = 0.0;              // call delayed by [delay_min, delay_max]

  double delay_min_ms = 0.0;
  double delay_max_ms = 5.0;
};

/// Injection counters, by fault kind.
struct ChaosStats {
  uint64_t calls = 0;
  uint64_t request_drops = 0;
  uint64_t request_duplicates = 0;
  uint64_t request_corruptions = 0;
  uint64_t reply_drops = 0;
  uint64_t reply_duplicates = 0;
  uint64_t reply_corruptions = 0;
  uint64_t delays = 0;
  uint64_t stale_served = 0;  // calls answered with a buffered stale reply

  uint64_t total_injected() const {
    return request_drops + request_duplicates + request_corruptions +
           reply_drops + reply_duplicates + reply_corruptions + delays;
  }
};

/// Seeded probabilistic fault injector over any Channel, the adversary the
/// exactly-once stack (RetryingChannel + core::ReplyCache) must beat.
///
/// Faithfulness notes, per fault:
///  * request drop   — inner never called; the client sees IO_ERROR while
///    the server state is untouched.
///  * request dup    — inner called twice with identical bytes (same
///    session stamp); the second reply joins the stale-reply queue exactly
///    as a doubled datagram would leave an extra reply in the stream.
///  * reply drop     — inner called once; the reply is discarded and the
///    client sees IO_ERROR although server-side effects persist. This is
///    the poison case for non-idempotent Scheme 1 updates.
///  * reply dup      — a copy of the reply is queued; while the queue is
///    non-empty every later Call is answered with the queue head (the
///    stream is off by one) and its own fresh reply is queued behind,
///    mimicking a pipelined TCP stream after a doubled frame. Reset()
///    flushes the queue, as a real reconnect would.
///  * corruption     — one payload byte is flipped WITHOUT refreshing the
///    session checksum, so the receiving side detects it exactly like wire
///    damage: the server rejects a corrupt request with CORRUPTION (a
///    retryable verdict for the retry layer), the client discards a
///    corrupt reply the same way.
///  * delay          — the sleep hook runs (tests plug a virtual clock),
///    exercising deadline budgets without wall-clock cost.
class ChaosChannel : public Channel {
 public:
  /// `inner` must outlive this wrapper.
  ChaosChannel(Channel* inner, const ChaosOptions& options);

  Result<Message> Call(const Message& request) override;

  /// Flushes the simulated stream (drops buffered stale replies) and
  /// resets the inner transport.
  void Reset() override;

  void SetIoDeadlineMs(double ms) override { inner_->SetIoDeadlineMs(ms); }

  const ChannelStats& stats() const override { return stats_; }
  void ResetStats() override {
    stats_.Clear();
    inner_->ResetStats();
  }

  const ChaosStats& chaos_stats() const { return chaos_stats_; }

  /// Replaces wall-clock sleeping for injected delays.
  void set_sleep_fn(std::function<void(double)> fn) {
    sleep_fn_ = std::move(fn);
  }

 private:
  bool Roll(double p);
  void CorruptPayload(Message& msg);

  Channel* inner_;
  ChaosOptions options_;
  DeterministicRandom rng_;
  ChannelStats stats_;
  ChaosStats chaos_stats_;
  std::deque<Message> stale_replies_;
  std::function<void(double)> sleep_fn_;
};

}  // namespace sse::net

#endif  // SSE_NET_CHAOS_H_
