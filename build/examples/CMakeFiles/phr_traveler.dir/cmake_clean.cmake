file(REMOVE_RECURSE
  "CMakeFiles/phr_traveler.dir/phr_traveler.cpp.o"
  "CMakeFiles/phr_traveler.dir/phr_traveler.cpp.o.d"
  "phr_traveler"
  "phr_traveler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phr_traveler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
