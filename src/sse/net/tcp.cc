#include "sse/net/tcp.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "sse/net/deadline.h"
#include "sse/net/socket_util.h"
#include "sse/obs/events.h"
#include "sse/obs/slo.h"
#include "sse/obs/stats_rpc.h"
#include "sse/obs/trace.h"

namespace sse::net {

namespace {

/// Maps the admission-layer op class onto the SLO taxonomy. The two enums
/// are deliberately distinct (obs/ is a leaf library; net/ depends on it,
/// not the other way around) but line up one-to-one.
obs::SloClass SloClassOf(OpClass op) {
  switch (op) {
    case OpClass::kSearch:
      return obs::SloClass::kSearch;
    case OpClass::kMutation:
      return obs::SloClass::kMutation;
    case OpClass::kControl:
      return obs::SloClass::kControl;
  }
  return obs::SloClass::kControl;
}

/// Process-wide net-layer counters, looked up once. Cheap to bump (one
/// relaxed fetch_add) and aggregated across every channel and server in
/// the process — per-instance numbers stay in ChannelStats.
struct NetCounters {
  obs::MetricsRegistry::Counter* frames_sent;
  obs::MetricsRegistry::Counter* frames_received;
  obs::MetricsRegistry::Counter* bytes_sent;
  obs::MetricsRegistry::Counter* bytes_received;
  obs::MetricsRegistry::Counter* timeouts;
  obs::MetricsRegistry::Counter* reconnects;
  obs::MetricsRegistry::Counter* server_frames;
  obs::MetricsRegistry::Counter* read_pauses;

  static NetCounters& Get() {
    static NetCounters c = [] {
      auto& reg = obs::MetricsRegistry::Global();
      NetCounters n;
      n.frames_sent = reg.GetCounter("sse_net_client_frames_sent_total",
                                     "Frames written by TCP clients");
      n.frames_received = reg.GetCounter("sse_net_client_frames_received_total",
                                         "Frames read by TCP clients");
      n.bytes_sent = reg.GetCounter("sse_net_client_bytes_sent_total",
                                    "Payload bytes written by TCP clients");
      n.bytes_received = reg.GetCounter("sse_net_client_bytes_received_total",
                                        "Payload bytes read by TCP clients");
      n.timeouts = reg.GetCounter("sse_net_timeouts_total",
                                  "Socket send/recv deadline expiries");
      n.reconnects = reg.GetCounter("sse_net_reconnects_total",
                                    "Automatic client redials");
      n.server_frames = reg.GetCounter("sse_net_server_frames_total",
                                       "Frames dispatched by TCP servers");
      n.read_pauses = reg.GetCounter(
          "sse_net_read_pauses_total",
          "Connections paused by reply-window backpressure");
      return n;
    }();
    return c;
  }
};

/// Distribution of the client pipeline window occupancy, sampled at each
/// Submit (value = calls already in flight, not a duration).
obs::LatencyHistogram& InflightWindowHistogram() {
  static auto* h = [] {
    auto* hist = new obs::LatencyHistogram();
    static auto reg = obs::MetricsRegistry::Global().RegisterHistogram(
        "sse_net_inflight_window",
        [hist] { return hist->Snap(); },
        "In-flight calls already pending at each Submit (count, not time)");
    return hist;
  }();
  return *h;
}

/// Distribution of the server dispatch-pool queue depth, sampled at each
/// frame dispatch (value = tasks already queued, not a duration).
obs::LatencyHistogram& DispatchQueueDepthHistogram() {
  static auto* h = [] {
    auto* hist = new obs::LatencyHistogram();
    static auto reg = obs::MetricsRegistry::Global().RegisterHistogram(
        "sse_net_dispatch_queue_depth",
        [hist] { return hist->Snap(); },
        "Tasks queued in the server dispatch pool at each frame arrival "
        "(count, not time)");
    return hist;
  }();
  return *h;
}

/// Queue-wait distribution: microseconds between a frame's arrival on the
/// loop thread and a pool worker picking it up. The admission layer's
/// wait-EWMA sees the same samples.
obs::LatencyHistogram& DispatchQueueWaitHistogram() {
  static auto* h = [] {
    auto* hist = new obs::LatencyHistogram();
    static auto reg = obs::MetricsRegistry::Global().RegisterHistogram(
        "sse_net_dispatch_queue_wait_us",
        [hist] { return hist->Snap(); },
        "Dispatch-queue wait per served frame, microseconds");
    return hist;
  }();
  return *h;
}

/// Overload-protection counters (the sse_admission_* series).
struct AdmissionCounters {
  obs::MetricsRegistry::Counter* shed;
  obs::MetricsRegistry::Counter* shed_mutations;
  obs::MetricsRegistry::Counter* queue_full;
  obs::MetricsRegistry::Counter* deadline_dropped;

  static AdmissionCounters& Get() {
    static AdmissionCounters c = [] {
      auto& reg = obs::MetricsRegistry::Global();
      AdmissionCounters a;
      a.shed = reg.GetCounter("sse_admission_shed_total",
                              "Frames shed by admission control");
      a.shed_mutations =
          reg.GetCounter("sse_admission_shed_mutations_total",
                         "Mutation frames shed by admission control");
      a.queue_full =
          reg.GetCounter("sse_admission_queue_full_total",
                         "Frames shed because the dispatch queue was full");
      a.deadline_dropped = reg.GetCounter(
          "sse_admission_deadline_dropped_total",
          "Requests dropped at dequeue with their wire deadline expired");
      return a;
    }();
    return c;
  }
};

Status WriteFrameBlocking(int fd, const Bytes& payload) {
  const Bytes framed = EncodeFrame(payload);
  return WriteAllBlocking(fd, framed.data(), framed.size());
}

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------- server --

/// Listener handler on loop 0: accepts until EAGAIN on every readiness
/// event and hands fresh sockets to the server.
class TcpServer::Acceptor : public EventLoop::Handler {
 public:
  explicit Acceptor(TcpServer* server) : server_(server) {}
  void OnEvents(uint32_t events) override {
    if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
      server_->AcceptReady();
    }
  }

 private:
  TcpServer* server_;
};

TcpServer::TcpServer(MessageHandler* handler, int listen_fd, uint16_t port,
                     Options options)
    : handler_(handler),
      listen_fd_(listen_fd),
      port_(port),
      options_(options) {
  if (options_.reactor_loops == 0) options_.reactor_loops = 1;
  if (options_.pipeline_workers == 0) options_.pipeline_workers = 1;
  if (options_.pipeline_queue == 0) options_.pipeline_queue = 1;
}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(MessageHandler* handler,
                                                    uint16_t port) {
  return Start(handler, port, Options{});
}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(MessageHandler* handler,
                                                    uint16_t port,
                                                    Options options) {
  if (handler == nullptr) {
    return Status::InvalidArgument("handler must be non-null");
  }
  uint16_t bound_port = 0;
  Result<int> fd = ListenTcp(port, options.listen_backlog, &bound_port);
  if (!fd.ok()) return fd.status();
  if (Status s = SetNonBlocking(*fd, true); !s.ok()) {
    ::close(*fd);
    return s;
  }

  auto server = std::unique_ptr<TcpServer>(
      new TcpServer(handler, *fd, bound_port, options));
  server->reactor_ = std::make_unique<Reactor>(server->options_.reactor_loops);
  server->pool_ =
      std::make_unique<engine::WorkerPool>(server->options_.pipeline_workers);
  server->acceptor_ = std::make_unique<Acceptor>(server.get());
  server->active_gauge_ = obs::MetricsRegistry::Global().RegisterGauge(
      "sse_net_connections_active",
      [raw = server.get()] {
        return static_cast<double>(raw->connections_active());
      },
      "Open TCP connections on reactor servers");
  TcpServer* raw_for_sweep = server.get();
  if (options.idle_timeout_ms > 0) {
    // Sweep at a fraction of the timeout so a connection is closed at
    // most ~1.25x after it went idle. Must be scheduled before Start().
    const uint64_t period =
        std::max<uint64_t>(options.idle_timeout_ms / 4, 10);
    server->reactor_->loop(0)->SchedulePeriodic(
        period, [raw_for_sweep] { raw_for_sweep->SweepIdleConnections(); });
  }
  server->reactor_->Start();
  TcpServer* raw = server.get();
  raw->reactor_->loop(0)->Post([raw] {
    raw->reactor_->loop(0)->Add(raw->listen_fd_, EPOLLIN,
                                raw->acceptor_.get());
  });
  return server;
}

TcpServer::~TcpServer() { Stop(); }

size_t TcpServer::connections_active() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void TcpServer::SweepIdleConnections() {
  static obs::MetricsRegistry::Counter* swept =
      obs::MetricsRegistry::Global().GetCounter(
          "sse_net_idle_closed_total",
          "Connections closed by the idle sweeper");
  const int64_t now_ms = Connection::NowMs();
  const int64_t cutoff = now_ms - static_cast<int64_t>(options_.idle_timeout_ms);
  std::vector<std::shared_ptr<Connection>> victims;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [raw, shared] : conns_) {
      // Only fully quiescent connections are eligible: nothing dispatched
      // and nothing waiting to flush. A slow in-flight request is load,
      // not idleness.
      if (!raw->closed() && raw->outstanding() == 0 &&
          raw->queued_replies() == 0 && raw->last_activity_ms() <= cutoff) {
        victims.push_back(shared);
      }
    }
  }
  for (auto& conn : victims) {
    conn->Close();
    swept->Add();
  }
}

size_t TcpServer::serving_threads() const {
  return options_.reactor_loops + pool_->thread_count();
}

void TcpServer::AcceptReady() {
  for (;;) {
    const int conn_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or listener gone
    }
    if (stopping_.load()) {
      ::close(conn_fd);
      continue;
    }
    if (!SetNonBlocking(conn_fd, true).ok()) {
      ::close(conn_fd);
      continue;
    }
    SetNoDelay(conn_fd);
    connections_accepted_.fetch_add(1);

    Connection::Options conn_opts;
    conn_opts.max_outstanding =
        options_.pipelined ? options_.pipeline_queue : 1;
    Connection::Callbacks callbacks;
    callbacks.on_frame = [this](const std::shared_ptr<Connection>& conn,
                                Bytes frame) {
      DispatchFrame(conn, std::move(frame));
    };
    callbacks.on_close = [this](Connection* conn) {
      OnConnectionClosed(conn);
    };
    auto conn = std::make_shared<Connection>(conn_fd, reactor_->NextLoop(),
                                             conn_opts, std::move(callbacks));
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.emplace(conn.get(), conn);
    }
    conn->Register();
  }
}

void TcpServer::OnConnectionClosed(Connection* conn) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn);
}

void TcpServer::ShedFrame(const std::shared_ptr<Connection>& conn,
                          bool has_session, uint64_t client_id, uint64_t seq,
                          const Status& status) {
  Message error = MakeErrorMessage(status);
  if (has_session) error.StampSession(client_id, seq);
  conn->SendFrame(error.Encode());
}

void TcpServer::NoteShed(const char* reason) {
  last_shed_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  // Edge-triggered: only the transition into shedding is an event. The
  // per-frame shed volume lives in the sse_admission_* counters.
  if (!brownout_.exchange(true, std::memory_order_relaxed)) {
    obs::EventJournal::Global().Emit(
        obs::EventKind::kBrownoutEnter,
        std::string("admission began shedding (") + reason + ")");
  }
}

void TcpServer::MaybeExitBrownout() {
  if (!brownout_.load(std::memory_order_relaxed)) return;
  const uint64_t last = last_shed_ns_.load(std::memory_order_relaxed);
  const uint64_t quiet_ns =
      static_cast<uint64_t>(options_.brownout_exit_ms) * 1'000'000ULL;
  if (SteadyNowNs() - last < quiet_ns) return;
  if (brownout_.exchange(false, std::memory_order_relaxed)) {
    obs::EventJournal::Global().Emit(
        obs::EventKind::kBrownoutExit,
        "no sheds for " + std::to_string(options_.brownout_exit_ms) +
            " ms; admitting normally");
  }
}

void TcpServer::DispatchFrame(const std::shared_ptr<Connection>& conn,
                              Bytes frame) {
  // Loop thread: admission, accounting, hand-off. The pool runs the
  // handler and posts the encoded reply back to the connection's loop.
  const size_t queue_depth = pool_->queue_depth();
  DispatchQueueDepthHistogram().Record(queue_depth);
  // The session stamp is salvaged up front: a shed reply must be
  // addressable even though the frame never reaches a worker (and the
  // frame's bytes are gone once moved into a refused pool task).
  uint64_t client_id = 0;
  uint64_t seq = 0;
  const bool has_session = Message::PeekSession(frame, &client_id, &seq);
  const bool slo_on = options_.slo_tracking && obs::SloRecordingEnabled();
  OpClass op = OpClass::kControl;
  if (options_.admission != nullptr || options_.max_dispatch_queue > 0 ||
      slo_on) {
    op = ClassifyFrame(frame);
  }
  if (options_.admission != nullptr && op != OpClass::kControl) {
    const AdmissionDecision verdict = options_.admission->Admit(op, queue_depth);
    if (!verdict.admit) {
      AdmissionCounters::Get().shed->Add();
      if (op == OpClass::kMutation) {
        AdmissionCounters::Get().shed_mutations->Add();
      }
      if (slo_on) obs::SloTracker::Global().Record(SloClassOf(op), 0, false);
      NoteShed(verdict.reason);
      ShedFrame(conn, has_session, client_id, seq,
                WithRetryAfter(
                    Status::ResourceExhausted(
                        std::string("server overloaded (") + verdict.reason +
                        "); retry later"),
                    verdict.retry_after_ms));
      return;
    }
  }
  MaybeExitBrownout();
  inflight_requests_.fetch_add(1);
  const uint64_t enqueued_ns = SteadyNowNs();
  const auto submitted = pool_->TrySubmit(
      [this, conn, frame = std::move(frame), enqueued_ns, op, slo_on] {
        const uint64_t wait_ns = SteadyNowNs() - enqueued_ns;
        DispatchQueueWaitHistogram().Record(
            static_cast<double>(wait_ns) / 1000.0);
        if (options_.admission != nullptr) {
          options_.admission->OnQueueWait(wait_ns);
        }
        Message reply = HandleFrame(frame, enqueued_ns);
        if (slo_on) {
          // Latency is measured from frame *arrival* (queue wait included):
          // that is what the caller experiences, and what the SLO promises.
          obs::SloTracker::Global().Record(SloClassOf(op),
                                           SteadyNowNs() - enqueued_ns,
                                           reply.type != kMsgError);
        }
        Bytes encoded = reply.Encode();
        conn->SendFrame(std::move(encoded));
        inflight_requests_.fetch_sub(1);
      },
      options_.max_dispatch_queue);
  if (submitted == engine::WorkerPool::SubmitResult::kAccepted) return;
  inflight_requests_.fetch_sub(1);
  if (submitted == engine::WorkerPool::SubmitResult::kQueueFull) {
    // Never silently drop an over-quota frame: bounce it with a
    // retryable verdict so the client backs off instead of timing out.
    AdmissionCounters::Get().shed->Add();
    AdmissionCounters::Get().queue_full->Add();
    if (op == OpClass::kMutation) {
      AdmissionCounters::Get().shed_mutations->Add();
    }
    if (slo_on) obs::SloTracker::Global().Record(SloClassOf(op), 0, false);
    NoteShed("dispatch queue full");
    ShedFrame(conn, has_session, client_id, seq,
              WithRetryAfter(
                  Status::ResourceExhausted("server dispatch queue full"),
                  /*retry_after_ms=*/25));
    return;
  }
  // kShutdown: the server is mid-Stop; the connection is being closed
  // and the frame goes unanswered by design.
}

Message TcpServer::HandleFrame(const Bytes& frame, uint64_t enqueued_ns) {
  Result<Message> request = Message::Decode(frame);
  NetCounters::Get().server_frames->Add();
  obs::ScopedSpan dispatch_span(
      "server.dispatch",
      request.ok() ? obs::ContextOf(*request) : obs::TraceContext{});
  if (request.ok()) {
    dispatch_span.Annotate("msg_type", request->type);
  }
  // The caller's deadline is anchored at frame *arrival*, so time spent
  // waiting in the dispatch queue counts against the budget — exactly the
  // time a queue-blind server would waste executing already-abandoned work.
  const Deadline deadline =
      request.ok() ? Deadline::FromMessage(*request, enqueued_ns) : Deadline();
  Result<Message> reply = [&]() -> Result<Message> {
    if (!request.ok()) return request.status();
    if (options_.serve_stats && request->type == kMsgStats) {
      // Admin scrape: answered from the process-wide registry without
      // involving (or serializing on) the application handler.
      return obs::HandleStatsRequest(*request);
    }
    if (deadline.Expired()) {
      // The client has already given up on this call; executing it would
      // burn a worker on a reply nobody reads. Drop before the handler.
      AdmissionCounters::Get().deadline_dropped->Add();
      dispatch_span.Annotate("deadline_expired_at_dequeue", 1);
      return DeadlineExceededStatus("at dequeue");
    }
    // Publish the remaining budget for downstream layers (engine batch
    // boundaries, the durable server's pre-fsync check) on this thread.
    ScopedDeadline scope(deadline);
    if (options_.serialize_handler) {
      std::lock_guard<std::mutex> lock(handler_mutex_);
      return handler_->Handle(*request);
    }
    // Thread-safe handler (e.g. the sharded engine): pool workers reach
    // it concurrently.
    return handler_->Handle(*request);
  }();
  requests_served_.fetch_add(1);
  if (reply.ok()) return std::move(*reply);
  Message error = MakeErrorMessage(reply.status());
  // Address the error to the call it answers, so a pipelined client can
  // correlate it. When the request itself would not decode, salvage the
  // stamp from the raw frame (it precedes the damaged payload).
  if (request.ok()) {
    error.EchoSession(*request);
  } else {
    uint64_t client_id = 0;
    uint64_t seq = 0;
    if (Message::PeekSession(frame, &client_id, &seq)) {
      error.StampSession(client_id, seq);
    }
  }
  return error;
}

void TcpServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);

  // 1. Stop accepting: unregister and close the listener on its loop.
  {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    reactor_->loop(0)->Post([&] {
      reactor_->loop(0)->Del(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }

  // 2. Drain: connections stop reading new frames; requests already
  //    dispatched keep running and their replies keep flushing.
  auto snapshot_conns = [this] {
    std::vector<std::shared_ptr<Connection>> out;
    std::lock_guard<std::mutex> lock(conns_mu_);
    out.reserve(conns_.size());
    for (auto& [raw, shared] : conns_) out.push_back(shared);
    return out;
  };
  for (auto& conn : snapshot_conns()) conn->BeginDrain();

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<int64_t>(options_.drain_timeout_ms * 1000.0));
  while (options_.drain_timeout_ms > 0.0 &&
         std::chrono::steady_clock::now() < deadline) {
    if (inflight_requests_.load() == 0) {
      bool all_flushed = true;
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [raw, shared] : conns_) {
        if (shared->outstanding() > 0 || shared->queued_replies() > 0) {
          all_flushed = false;
          break;
        }
      }
      if (all_flushed) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 3. Hard-close whatever remains (drained connections already closed
  //    themselves), then retire the pool and the loops.
  for (auto& conn : snapshot_conns()) conn->Close();
  // Shutdown (not destruction): loop threads may still be delivering
  // already-read frames into DispatchFrame until the reactor stops below,
  // and they must find a stopped pool, not freed memory.
  pool_->Shutdown();  // joins workers; their reply posts drop on closed conns
  reactor_->Stop();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
}

// ---------------------------------------------------------------- client --

Result<std::unique_ptr<TcpChannel>> TcpChannel::Connect(
    uint16_t port, const std::string& host) {
  return Connect(port, host, Options{});
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::Connect(uint16_t port,
                                                        const std::string& host,
                                                        Options options) {
  Result<int> fd =
      DialTcp(host, port, options.connect_timeout_ms, options.send_timeout_ms,
              options.recv_timeout_ms);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<TcpChannel>(
      new TcpChannel(*fd, host, port, options));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpChannel::MarkBroken() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // The stream may have died mid-frame; partial reassembly state is
  // garbage on the next connection.
  rx_.Reset();
}

void TcpChannel::FailInflight(const Status& status) {
  for (const CallId id : inflight_order_) {
    if (inflight_.count(id) > 0) buffered_.emplace(id, status);
  }
  inflight_.clear();
  inflight_order_.clear();
}

void TcpChannel::Reset() {
  MarkBroken();
  FailInflight(Status::Unavailable("connection reset with calls in flight"));
}

double TcpChannel::EffectiveSendTimeoutMs() const {
  if (io_deadline_cap_ms_ <= 0.0) return options_.send_timeout_ms;
  if (options_.send_timeout_ms <= 0.0) return io_deadline_cap_ms_;
  return std::min(options_.send_timeout_ms, io_deadline_cap_ms_);
}

double TcpChannel::EffectiveRecvTimeoutMs() const {
  if (io_deadline_cap_ms_ <= 0.0) return options_.recv_timeout_ms;
  if (options_.recv_timeout_ms <= 0.0) return io_deadline_cap_ms_;
  return std::min(options_.recv_timeout_ms, io_deadline_cap_ms_);
}

void TcpChannel::SetIoDeadlineMs(double ms) {
  io_deadline_cap_ms_ = ms > 0.0 ? ms : 0.0;
  if (fd_ >= 0) {
    ApplyIoTimeouts(fd_, EffectiveSendTimeoutMs(), EffectiveRecvTimeoutMs());
  }
}

Status TcpChannel::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  if (!options_.auto_reconnect) {
    return Status::Unavailable("connection closed and reconnects disabled");
  }
  Result<int> fd = DialTcp(host_, port_, options_.connect_timeout_ms,
                           options_.send_timeout_ms, options_.recv_timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  // DialTcp applied the configured timeouts; re-apply if a retry layer has
  // capped this attempt tighter than the static configuration.
  if (io_deadline_cap_ms_ > 0.0) {
    ApplyIoTimeouts(fd_, EffectiveSendTimeoutMs(), EffectiveRecvTimeoutMs());
  }
  rx_.Reset();
  reconnects_ += 1;
  NetCounters::Get().reconnects->Add();
  return Status::OK();
}

Result<Bytes> TcpChannel::ReceiveFrame(bool eof_ok_at_start) {
  Bytes frame;
  if (rx_.Next(&frame)) return frame;
  uint8_t buf[16 * 1024];
  for (;;) {
    ssize_t n;
    do {
      n = ::recv(fd_, buf, sizeof(buf), 0);
    } while (n < 0 && errno == EINTR);
    if (n == 0) {
      if (!rx_.mid_frame() && eof_ok_at_start) {
        return Status::NotFound("peer closed the connection");
      }
      return Status::IoError(rx_.mid_frame()
                                 ? "socket closed mid-frame"
                                 : "socket closed with replies pending");
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("socket recv timed out");
      }
      return Status::IoError("socket recv failed: " +
                             std::string(std::strerror(errno)));
    }
    SSE_RETURN_IF_ERROR(rx_.Feed(buf, static_cast<size_t>(n)));
    if (rx_.Next(&frame)) return frame;
  }
}

void TcpChannel::Complete(CallId id, Result<Message> reply) {
  if (reply.ok()) {
    // Surface an application-level error reply as its embedded status,
    // exactly as the synchronous Call path does.
    Status app_error = DecodeErrorMessage(*reply);
    if (!app_error.ok()) reply = app_error;
  }
  inflight_.erase(id);
  for (auto it = inflight_order_.begin(); it != inflight_order_.end(); ++it) {
    if (*it == id) {
      inflight_order_.erase(it);
      break;
    }
  }
  buffered_.emplace(id, std::move(reply));
}

Channel::CallId TcpChannel::MatchReply(const Message& reply) const {
  if (reply.has_session) {
    for (const auto& [id, call] : inflight_) {
      if (call.has_session && call.client_id == reply.client_id &&
          call.seq == reply.seq) {
        return id;
      }
    }
    return 0;  // stale or unknown: not ours to deliver
  }
  // Un-stamped reply: a lockstep server answers in order, so it belongs to
  // the oldest in-flight call.
  return inflight_order_.empty() ? 0 : inflight_order_.front();
}

Channel::CallId TcpChannel::Submit(const Message& request) {
  const CallId id = next_call_id_++;
  obs::ScopedSpan send_span("net.send_frame", obs::ContextOf(request));
  InflightWindowHistogram().Record(inflight_order_.size());
  Status status = EnsureConnected();
  if (status.ok()) {
    Bytes wire = request.Encode();
    send_span.Annotate("bytes", wire.size());
    status = WriteFrameBlocking(fd_, wire);
    if (status.ok()) {
      stats_.rounds += 1;
      stats_.frames_sent += 1;
      stats_.bytes_sent += wire.size();
      stats_.calls_by_type[request.type] += 1;
      NetCounters::Get().frames_sent->Add();
      NetCounters::Get().bytes_sent->Add(wire.size());
    } else {
      if (status.code() == StatusCode::kDeadlineExceeded) {
        NetCounters::Get().timeouts->Add();
      }
      MarkBroken();
      FailInflight(status);
    }
  }
  if (!status.ok()) {
    buffered_.emplace(id, status);
    return id;
  }
  inflight_.emplace(
      id, Inflight{request.has_session, request.client_id, request.seq});
  inflight_order_.push_back(id);
  return id;
}

Result<Message> TcpChannel::Await(CallId id) {
  while (buffered_.count(id) == 0) {
    if (inflight_.count(id) == 0) {
      return Status::InvalidArgument("unknown or already-awaited call ticket");
    }
    Result<Bytes> frame = ReceiveFrame(/*eof_ok_at_start=*/false);
    if (!frame.ok()) {
      // The stream may be mid-frame (e.g. a recv timeout); nothing after
      // this point can be trusted, so every in-flight call fails and the
      // next use redials.
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        NetCounters::Get().timeouts->Add();
      }
      MarkBroken();
      FailInflight(frame.status());
      break;
    }
    stats_.frames_received += 1;
    stats_.bytes_received += frame->size();
    NetCounters::Get().frames_received->Add();
    NetCounters::Get().bytes_received->Add(frame->size());
    Result<Message> reply = Message::Decode(*frame);
    if (!reply.ok()) {
      // A frame that does not parse still answers *some* call. Attribute
      // it by its salvaged session stamp if possible, else to the oldest
      // in-flight call; the retry layer treats the status as retryable.
      uint64_t client_id = 0;
      uint64_t seq = 0;
      CallId target = 0;
      if (Message::PeekSession(*frame, &client_id, &seq)) {
        for (const auto& [cand, call] : inflight_) {
          if (call.has_session && call.client_id == client_id &&
              call.seq == seq) {
            target = cand;
            break;
          }
        }
      }
      if (target == 0 && !inflight_order_.empty()) {
        target = inflight_order_.front();
      }
      if (target != 0) Complete(target, reply.status());
      continue;
    }
    const CallId target = MatchReply(*reply);
    if (target == 0) continue;  // stale reply from a superseded call: drop
    Complete(target, std::move(*reply));
  }
  auto it = buffered_.find(id);
  if (it == buffered_.end()) {
    return Status::Internal("await terminated without a result");
  }
  Result<Message> result = std::move(it->second);
  buffered_.erase(it);
  return result;
}

Result<Message> TcpChannel::Call(const Message& request) {
  return Await(Submit(request));
}

}  // namespace sse::net
