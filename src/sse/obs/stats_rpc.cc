#include "sse/obs/stats_rpc.h"

#include "sse/obs/events.h"
#include "sse/obs/metrics_registry.h"
#include "sse/obs/trace.h"
#include "sse/util/serde.h"

namespace sse::obs {

net::Message StatsRequest::ToMessage() const {
  BufferWriter w;
  w.PutU8(static_cast<uint8_t>((include_spans ? 1 : 0) |
                               (include_events ? 2 : 0)));
  // The tail count was added with the event journal; readers that predate
  // it stop after the flags byte, so the extension is wire-compatible.
  w.PutU32(events_tail);
  return net::Message{net::kMsgStats, w.TakeData()};
}

Result<StatsRequest> StatsRequest::FromMessage(const net::Message& msg) {
  if (msg.type != net::kMsgStats) {
    return Status::ProtocolError("not a stats request");
  }
  BufferReader r(msg.payload);
  StatsRequest req;
  uint8_t flags = 0;
  SSE_ASSIGN_OR_RETURN(flags, r.GetU8());
  req.include_spans = (flags & 1) != 0;
  req.include_events = (flags & 2) != 0;
  if (r.remaining() >= 4) {
    SSE_ASSIGN_OR_RETURN(req.events_tail, r.GetU32());
  }
  return req;
}

net::Message StatsReply::ToMessage() const {
  BufferWriter w;
  w.PutString(prometheus_text);
  w.PutString(spans_json);
  w.PutString(events_json);
  return net::Message{net::kMsgStatsReply, w.TakeData()};
}

Result<StatsReply> StatsReply::FromMessage(const net::Message& msg) {
  if (msg.type != net::kMsgStatsReply) {
    return Status::ProtocolError("not a stats reply");
  }
  BufferReader r(msg.payload);
  StatsReply reply;
  SSE_ASSIGN_OR_RETURN(reply.prometheus_text, r.GetString());
  SSE_ASSIGN_OR_RETURN(reply.spans_json, r.GetString());
  // Replies from servers that predate the event journal end here.
  if (r.remaining() > 0) {
    SSE_ASSIGN_OR_RETURN(reply.events_json, r.GetString());
  }
  return reply;
}

net::Message HandleStatsRequest(const net::Message& request) {
  auto parsed = StatsRequest::FromMessage(request);
  if (!parsed.ok()) return net::MakeErrorMessage(parsed.status());
  StatsReply reply;
  reply.prometheus_text = MetricsRegistry::Global().RenderPrometheus();
  if (parsed.value().include_spans) {
    reply.spans_json =
        SpanCollector::ToChromeTraceJson(SpanCollector::Global().Collect());
  }
  if (parsed.value().include_events) {
    const uint32_t tail = parsed.value().events_tail;
    reply.events_json = EventJournal::ToJson(EventJournal::Global().Tail(
        tail == 0 ? EventJournal::Global().capacity() : tail));
  }
  net::Message msg = reply.ToMessage();
  msg.EchoSession(request);
  return msg;
}

}  // namespace sse::obs
