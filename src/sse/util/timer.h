#ifndef SSE_UTIL_TIMER_H_
#define SSE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace sse {

/// Monotonic stopwatch for the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates latency samples and reports summary statistics. Used by the
/// table-reproduction harness (google-benchmark handles the micro side;
/// this covers protocol-level sweeps where we print paper-style rows).
class LatencyStats {
 public:
  void Add(double micros) { samples_.push_back(micros); }
  size_t count() const { return samples_.size(); }

  double Mean() const;
  double Min() const;
  double Max() const;
  /// q in [0,1]; nearest-rank on the sorted samples.
  double Percentile(double q) const;
  double Stddev() const;

  /// e.g. "n=100 mean=12.3us p50=11.0us p99=20.1us".
  std::string Summary() const;

 private:
  mutable std::vector<double> samples_;
};

}  // namespace sse

#endif  // SSE_UTIL_TIMER_H_
