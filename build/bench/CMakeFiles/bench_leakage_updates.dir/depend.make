# Empty dependencies file for bench_leakage_updates.
# This may be replaced when dependencies are built.
