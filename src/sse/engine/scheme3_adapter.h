#ifndef SSE_ENGINE_SCHEME3_ADAPTER_H_
#define SSE_ENGINE_SCHEME3_ADAPTER_H_

#include "sse/core/options.h"
#include "sse/core/scheme3_server.h"
#include "sse/engine/scheme_shard.h"

namespace sse::engine {

/// Sharding policy for Scheme 3 (forward-private dynamic SSE).
///
/// Updates scatter their entries by address — addresses are pseudo-random
/// and unlinkable, so this doubles as load balancing. A search trapdoor
/// carries no keyword token the router could hash, and the entries of one
/// keyword land on arbitrary shards, so searches broadcast: every shard
/// walks the (cheap, hash-only) chain against its own slice of the index
/// and the merge unions the decrypted deltas.
///
/// Searches touch no shard state (Scheme 3 keeps no plaintext cache), so
/// they run under a shared lock — concurrent searches proceed in parallel
/// on every shard.
class Scheme3Adapter : public SchemeAdapter {
 public:
  explicit Scheme3Adapter(const core::SchemeOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "scheme3"; }
  std::unique_ptr<SchemeShard> CreateShard() const override;
  bool IsMutating(uint16_t msg_type) const override;
  LockMode LockModeFor(uint16_t msg_type) const override;
  Result<RequestPlan> Route(const net::Message& request,
                            size_t num_shards) const override;
  Result<net::Message> Merge(const net::Message& request,
                             const RequestPlan& plan,
                             std::vector<net::Message> replies,
                             const DocumentFetcher& fetch_docs) const override;

 private:
  core::SchemeOptions options_;
};

}  // namespace sse::engine

#endif  // SSE_ENGINE_SCHEME3_ADAPTER_H_
