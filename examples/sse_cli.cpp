// sse_cli — a small command-line encrypted document store.
//
// The "server" is a durable, sharded engine living in a directory; the
// "client" runs in the same process with a key derived from
// SSE_PASSPHRASE (or a default demo passphrase). Everything written to
// disk is ciphertext and searchable tokens. SSE_SCHEME picks the scheme
// from the descriptor table — any engine-capable entry works (scheme1,
// scheme2 [default], or the forward-private scheme3); it must stay the
// same across sessions of one vault, as must SSE_ENGINE_SHARDS (default
// 4), because snapshots are scheme- and partition-dependent.
//
// Delivery-semantics knobs (see DESIGN.md "Delivery semantics"):
//   SSE_RETRY_ATTEMPTS   total tries per call, default 5; 1 disables retries
//                        (calls are session-stamped either way)
//   SSE_RETRY_DEADLINE_MS  per-call deadline across attempts, default 0 (none)
//   SSE_REPLY_CACHE      1 (default) dedups stamped calls server-side so a
//                        retried update applies at most once; 0 disables
//   SSE_BATCH_SIZE       ops per kMsgBatch envelope for multi-keyword
//                        rounds, default 64; 0 disables batching entirely
//                        (monolithic per-round messages, the paper's wire
//                        format), 1 pipelines unbatched per-keyword ops
//   SSE_MAX_INFLIGHT     envelopes in flight before awaiting a reply,
//                        default 4
//   SSE_REACTOR_LOOPS    epoll loop threads in the serve-mode reactor,
//                        default 2; the serving thread budget is
//                        loops + dispatch workers at any connection count
//   SSE_REPLY_CACHE_MAX_ENTRIES  global cap on cached replies across all
//                        clients (LRU-evicted), default 0 = unbounded
//
// Replication knobs (serve mode only; see DESIGN.md "Replication"):
//   SSE_REPL_ROLE        primary | follower — serve through a repl::ReplNode
//                        instead of a standalone durable server; a restart
//                        keeps the role persisted in <dir>/repl.role
//   SSE_REPL_PEERS       comma-separated host:port follower list the node
//                        ships WAL records to while primary
//   SSE_REPL_ACK         async (default) | wait_one — whether a mutation
//                        waits for one follower ack before replying
//
// Usage:
//   sse_cli <dir> put <id> <content...> --kw <k1,k2,...>
//   sse_cli <dir> search <keyword>
//   sse_cli <dir> stats
//   sse_cli <dir> serve [port]    # serve the vault over TCP until EOF
//
// Example:
//   ./build/examples/sse_cli /tmp/vault put 1 "meeting notes" --kw work,notes
//   ./build/examples/sse_cli /tmp/vault search notes
//   ./build/examples/sse_cli /tmp/vault serve 7700 &
//   ./build/examples/vault_admin stats 127.0.0.1:7700

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "sse/core/durable_server.h"
#include "sse/core/registry.h"
#include "sse/engine/server_engine.h"
#include "sse/net/retry.h"
#include "sse/net/tcp.h"
#include "sse/obs/slo.h"
#include "sse/obs/stats_logger.h"
#include "sse/repl/node.h"
#include "sse/util/serde.h"

namespace {

using namespace sse;

int Usage() {
  std::fprintf(stderr,
               "usage: sse_cli <dir> put <id> <content> --kw <k1,k2,...>\n"
               "       sse_cli <dir> search <keyword>\n"
               "       sse_cli <dir> stats\n"
               "       sse_cli <dir> serve [port]\n");
  return 2;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

// The client's private bookkeeping (counter, epoch, used ids) lives next
// to the server files. It holds no secrets — losing it only costs chain
// elements — but an attacker-controlled rollback could cause key reuse, so
// real deployments keep it on the client device.
std::string StatePath(const std::string& dir) { return dir + "/client.state"; }

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

// Overload-protection knobs shared by both serve paths (plain vault and
// replication node): a bounded dispatch queue plus an optional admission
// controller shedding by queue depth / queue wait.
void ApplyAdmissionEnv(net::TcpServer::Options* server_options) {
  server_options->max_dispatch_queue = EnvU64("SSE_MAX_DISPATCH_QUEUE", 0);
  const uint64_t max_queue = EnvU64("SSE_ADMISSION_MAX_QUEUE", 0);
  const uint64_t max_wait_ms = EnvU64("SSE_ADMISSION_MAX_WAIT_MS", 0);
  if (max_queue == 0 && max_wait_ms == 0) return;
  net::QueueAdmissionController::Options admission;
  admission.max_queue_depth = max_queue;
  admission.mutation_queue_depth = EnvU64("SSE_ADMISSION_MUTATION_QUEUE", 0);
  admission.max_queue_wait_ms = static_cast<double>(max_wait_ms);
  admission.retry_after_ms =
      static_cast<uint32_t>(EnvU64("SSE_ADMISSION_RETRY_AFTER_MS", 25));
  server_options->admission =
      std::make_shared<net::QueueAdmissionController>(admission);
}

// SLO knobs shared by both serve paths: per-request recording on/off, the
// brownout-exit quiet period, and the per-class latency thresholds of the
// process-wide tracker. Thresholds must land before the tracker's first
// use, which is why this runs at serve startup.
void ApplySloEnv(net::TcpServer::Options* server_options) {
  server_options->slo_tracking = EnvU64("SSE_SLO_TRACKING", 1) != 0;
  server_options->brownout_exit_ms = EnvU64("SSE_BROWNOUT_EXIT_MS", 1000);
  const uint64_t search_ms = EnvU64("SSE_SLO_SEARCH_MS", 0);
  const uint64_t mutation_ms = EnvU64("SSE_SLO_MUTATION_MS", 0);
  const uint64_t control_ms = EnvU64("SSE_SLO_CONTROL_MS", 0);
  if (search_ms == 0 && mutation_ms == 0 && control_ms == 0) return;
  obs::SloOptions slo;
  if (search_ms > 0) slo.latency_threshold_us[0] = search_ms * 1000;
  if (mutation_ms > 0) slo.latency_threshold_us[1] = mutation_ms * 1000;
  if (control_ms > 0) slo.latency_threshold_us[2] = control_ms * 1000;
  if (!obs::SloTracker::ConfigureGlobal(slo)) {
    std::fprintf(stderr,
                 "warning: SSE_SLO_*_MS ignored (tracker already live)\n");
  }
}

Bytes LoadStateBytes(const std::string& dir) {
  Bytes raw;
  std::FILE* f = std::fopen(StatePath(dir).c_str(), "rb");
  if (f == nullptr) return raw;
  int c;
  while ((c = std::fgetc(f)) != EOF) raw.push_back(static_cast<uint8_t>(c));
  std::fclose(f);
  return raw;
}

void SaveStateBytes(const std::string& dir, const Bytes& state) {
  std::FILE* f = std::fopen(StatePath(dir).c_str(), "wb");
  if (f == nullptr) return;
  std::fwrite(state.data(), 1, state.size(), f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string dir = argv[1];
  const std::string command = argv[2];
  mkdir(dir.c_str(), 0755);  // idempotent

  const char* pass_env = std::getenv("SSE_PASSPHRASE");
  const std::string passphrase =
      pass_env != nullptr ? pass_env : "sse-cli-demo-passphrase";

  // The active scheme comes from the descriptor table; the vault only
  // works with engine-capable schemes (the engine provides sharding and
  // the durable shell's WAL framing).
  const char* scheme_env = std::getenv("SSE_SCHEME");
  const std::string scheme_name =
      scheme_env != nullptr ? scheme_env : "scheme2";
  const core::SchemeDescriptor* scheme = core::FindScheme(scheme_name);
  if (scheme == nullptr || !scheme->traits.engine_capable) {
    std::fprintf(stderr, "SSE_SCHEME=%s is not an engine-capable scheme; "
                 "pick one of:",
                 scheme_name.c_str());
    for (const core::SchemeDescriptor& d : core::AllSchemes()) {
      if (d.traits.engine_capable) {
        std::fprintf(stderr, " %.*s", static_cast<int>(d.name.size()),
                     d.name.data());
      }
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  core::SystemConfig config;
  config.scheme.max_documents = 1 << 16;
  config.scheme.chain_length = 1 << 14;
  const uint64_t batch_size = EnvU64("SSE_BATCH_SIZE", 64);
  config.scheme.batch_ops = batch_size > 0;
  // Scheme 2 Optimization-1 cache bound (0 = unbounded, paper behavior).
  config.scheme.plaintext_cache_max_entries =
      EnvU64("SSE_S2_CACHE_MAX_ENTRIES", 0);

  const bool reply_cache = EnvU64("SSE_REPLY_CACHE", 1) != 0;

  engine::EngineOptions engine_options;
  engine_options.num_shards = EnvU64("SSE_ENGINE_SHARDS", 4);
  // The durable shell's cache (which survives restarts) does the dedup;
  // the engine's in-memory one would only duplicate it.
  engine_options.enable_reply_cache = false;
  // Replicated serving: SSE_REPL_ROLE turns `serve` into a repl::ReplNode
  // (primary journals + ships WAL records to SSE_REPL_PEERS; follower
  // applies the stream and serves stale reads). The node owns its durable
  // state, so this path must not open the directory a second time below.
  if (const char* repl_role = std::getenv("SSE_REPL_ROLE");
      repl_role != nullptr && command == "serve") {
    repl::ReplNode::Options node_options;
    if (std::strcmp(repl_role, "primary") == 0) {
      node_options.initial_role = repl::ReplNode::Role::kPrimary;
    } else if (std::strcmp(repl_role, "follower") == 0) {
      node_options.initial_role = repl::ReplNode::Role::kFollower;
    } else {
      std::fprintf(stderr, "SSE_REPL_ROLE must be primary or follower\n");
      return 2;
    }
    if (const char* peers = std::getenv("SSE_REPL_PEERS")) {
      for (const std::string& peer : SplitCommas(peers)) {
        repl::ReplSender::Endpoint endpoint;
        const size_t colon = peer.rfind(':');
        if (colon != std::string::npos) {
          endpoint.host = peer.substr(0, colon);
          endpoint.port = static_cast<uint16_t>(
              std::strtoul(peer.c_str() + colon + 1, nullptr, 10));
        } else {
          endpoint.port =
              static_cast<uint16_t>(std::strtoul(peer.c_str(), nullptr, 10));
        }
        node_options.peers.push_back(std::move(endpoint));
      }
    }
    if (const char* ack = std::getenv("SSE_REPL_ACK")) {
      if (std::strcmp(ack, "wait_one") == 0) {
        node_options.sender.ack_mode = repl::ReplSender::AckMode::kWaitOne;
      } else if (std::strcmp(ack, "async") != 0) {
        std::fprintf(stderr, "SSE_REPL_ACK must be async or wait_one\n");
        return 2;
      }
    }
    node_options.durable.enable_reply_cache = reply_cache;
    node_options.durable.reply_cache.max_total_entries =
        EnvU64("SSE_REPLY_CACHE_MAX_ENTRIES", 0);
    auto node = repl::ReplNode::Open(
        dir,
        [scheme, config,
         engine_options]() -> std::unique_ptr<core::PersistableHandler> {
          auto engine = engine::ServerEngine::Create(
              scheme->make_adapter(config), engine_options);
          return engine.ok() ? std::move(*engine) : nullptr;
        },
        node_options);
    if (!node.ok()) {
      std::fprintf(stderr, "repl node open failed: %s\n",
                   node.status().ToString().c_str());
      return 1;
    }
    const uint16_t port = static_cast<uint16_t>(
        argc >= 4 ? std::strtoul(argv[3], nullptr, 10) : 0);
    net::TcpServer::Options server_options;
    server_options.serialize_handler = false;
    // The node answers kMsgStats itself (with its sse_repl_* series
    // injected); the TCP layer's own responder would shadow it.
    server_options.serve_stats = false;
    if (const char* loops = std::getenv("SSE_REACTOR_LOOPS")) {
      server_options.reactor_loops =
          std::max(1ul, std::strtoul(loops, nullptr, 10));
    }
    ApplyAdmissionEnv(&server_options);
    ApplySloEnv(&server_options);
    auto tcp = net::TcpServer::Start(node->get(), port, server_options);
    if (!tcp.ok()) {
      std::fprintf(stderr, "serve failed: %s\n",
                   tcp.status().ToString().c_str());
      return 1;
    }
    obs::StatsLogger stats_logger;
    std::printf("serving %s (scheme %s) as replication %s on 127.0.0.1:%u "
                "(%zu peer(s); EOF on stdin stops)\n",
                dir.c_str(), std::string(scheme->name).c_str(), repl_role, (*tcp)->port(),
                node_options.peers.size());
    std::fflush(stdout);
    while (std::fgetc(stdin) != EOF) {
    }
    (*tcp)->Stop();
    return 0;
  }

  auto server = engine::ServerEngine::Create(scheme->make_adapter(config),
                                             engine_options);
  if (!server.ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  core::DurableServer::Options durable_options;
  durable_options.enable_reply_cache = reply_cache;
  durable_options.reply_cache.max_total_entries =
      EnvU64("SSE_REPLY_CACHE_MAX_ENTRIES", 0);
  auto durable = core::DurableServer::Open(dir, server->get(), durable_options);
  if (!durable.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 durable.status().ToString().c_str());
    return 1;
  }
  net::InProcessChannel channel(durable->get());

  // Exactly-once calls: session-stamped, retried with backoff, deduped by
  // the server's reply cache (in-process the link cannot actually fail,
  // but the vault accepts stamped traffic from any transport).
  net::RetryOptions retry_options;
  retry_options.max_attempts =
      static_cast<int>(EnvU64("SSE_RETRY_ATTEMPTS", 5));
  // SSE_DEADLINE_MS is the overall per-call budget (propagated on the wire
  // to the server); SSE_RETRY_DEADLINE_MS is its older spelling.
  retry_options.call_deadline_ms = static_cast<double>(
      EnvU64("SSE_DEADLINE_MS", EnvU64("SSE_RETRY_DEADLINE_MS", 0)));
  retry_options.retry_budget =
      static_cast<double>(EnvU64("SSE_RETRY_BUDGET", 0));
  retry_options.batch_size = static_cast<int>(batch_size);
  retry_options.max_inflight = static_cast<int>(EnvU64("SSE_MAX_INFLIGHT", 4));
  SystemRandom& rng = SystemRandom::Instance();
  net::RetryingChannel retry(&channel, retry_options, &rng);

  auto key = crypto::MasterKey::FromPassphrase(passphrase);
  if (!key.ok()) return 1;
  auto client = scheme->make_client(*key, config, &retry, &rng);
  if (!client.ok()) {
    std::fprintf(stderr, "client failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  // Rehydrate the client's protocol state from the previous session.
  Bytes saved = LoadStateBytes(dir);
  if (!saved.empty()) {
    Status restored = (*client)->RestoreState(saved);
    if (!restored.ok()) {
      std::fprintf(stderr, "client state corrupt: %s\n",
                   restored.ToString().c_str());
      return 1;
    }
  }

  if (command == "put") {
    if (argc < 6 || std::strcmp(argv[argc - 2], "--kw") != 0) return Usage();
    const uint64_t id = std::strtoull(argv[3], nullptr, 10);
    std::string content;
    for (int i = 4; i < argc - 2; ++i) {
      if (!content.empty()) content += " ";
      content += argv[i];
    }
    auto keywords = SplitCommas(argv[argc - 1]);
    Status s = (*client)->Store({core::Document::Make(id, content, keywords)});
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
    SaveStateBytes(dir, (*client)->SerializeState());
    std::printf("stored document %llu with %zu keyword(s)\n",
                static_cast<unsigned long long>(id), keywords.size());
  } else if (command == "search") {
    if (argc != 4) return Usage();
    auto outcome = (*client)->Search(argv[3]);
    if (!outcome.ok()) {
      std::fprintf(stderr, "search failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    SaveStateBytes(dir, (*client)->SerializeState());
    std::printf("%zu match(es)\n", outcome->ids.size());
    for (const auto& [id, content] : outcome->documents) {
      std::printf("  #%llu: %s\n", static_cast<unsigned long long>(id),
                  BytesToString(content).c_str());
    }
  } else if (command == "stats") {
    std::printf("scheme: %s (%s)\n", std::string(scheme->name).c_str(),
                std::string(scheme->summary).c_str());
    std::printf("documents: %zu\nunique keywords: %zu\nindex bytes: %llu\n"
                "shards: %zu\n",
                (*server)->document_count(), (*server)->unique_keywords(),
                static_cast<unsigned long long>(
                    (*server)->stored_index_bytes()),
                (*server)->num_shards());
    std::printf("%s", (*server)->Metrics().ToString().c_str());
  } else if (command == "serve") {
    // Expose the durable vault over TCP. The engine is thread-safe and the
    // durable shell group-commits concurrent appends, so connections are
    // dispatched in parallel. kMsgStats is answered by the server itself —
    // scrape it with `vault_admin stats 127.0.0.1:<port>`.
    const uint16_t port = static_cast<uint16_t>(
        argc >= 4 ? std::strtoul(argv[3], nullptr, 10) : 0);
    net::TcpServer::Options server_options;
    server_options.serialize_handler = false;
    if (const char* loops = std::getenv("SSE_REACTOR_LOOPS")) {
      server_options.reactor_loops =
          std::max(1ul, std::strtoul(loops, nullptr, 10));
    }
    ApplyAdmissionEnv(&server_options);
    ApplySloEnv(&server_options);
    auto tcp = net::TcpServer::Start(durable->get(), port, server_options);
    if (!tcp.ok()) {
      std::fprintf(stderr, "serve failed: %s\n",
                   tcp.status().ToString().c_str());
      return 1;
    }
    obs::StatsLogger stats_logger;  // periodic one-line metrics digest
    std::printf(
        "serving %s (scheme %s) on 127.0.0.1:%u (EOF on stdin stops)\n"
        "reactor: %zu epoll loop(s) + %zu dispatch worker(s) = %zu serving "
        "threads at any connection count\n",
        dir.c_str(), std::string(scheme->name).c_str(), (*tcp)->port(),
        server_options.reactor_loops, server_options.pipeline_workers,
        (*tcp)->serving_threads());
    std::fflush(stdout);
    while (std::fgetc(stdin) != EOF) {
    }
    (*tcp)->Stop();
  } else {
    return Usage();
  }
  return 0;
}
