// The kMsgStats admin RPC: payload round trips, TcpServer answers scrapes
// from the process-wide registry (including the WAL and net series the
// acceptance criteria name), spans ride along when asked for, and the
// opt-out forwards the frame to the handler like any other message.

#include "sse/obs/stats_rpc.h"

#include <gtest/gtest.h>

#include <string>

#include "sse/core/durable_server.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_server.h"
#include "sse/net/retry.h"
#include "sse/net/tcp.h"
#include "sse/obs/metrics_registry.h"
#include "sse/obs/trace.h"
#include "test_util.h"

namespace sse {
namespace {

using obs::StatsReply;
using obs::StatsRequest;
using sse::testing::FastTestConfig;
using sse::testing::TempDir;
using sse::testing::TestMasterKey;

TEST(ObsStatsRpcTest, PayloadsRoundTrip) {
  StatsRequest req;
  req.include_spans = true;
  auto req2 = StatsRequest::FromMessage(req.ToMessage());
  SSE_ASSERT_OK_RESULT(req2);
  EXPECT_TRUE(req2->include_spans);

  StatsReply reply;
  reply.prometheus_text = "a_total 1\n";
  reply.spans_json = "{\"traceEvents\":[]}";
  auto reply2 = StatsReply::FromMessage(reply.ToMessage());
  SSE_ASSERT_OK_RESULT(reply2);
  EXPECT_EQ(reply2->prometheus_text, reply.prometheus_text);
  EXPECT_EQ(reply2->spans_json, reply.spans_json);

  // A non-stats message is rejected, not misparsed.
  net::Message wrong;
  wrong.type = net::kMsgPutDocument;
  EXPECT_FALSE(StatsRequest::FromMessage(wrong).ok());
  EXPECT_FALSE(StatsReply::FromMessage(wrong).ok());
}

TEST(ObsStatsRpcTest, TcpScrapeReturnsWalAndNetSeries) {
  obs::SpanCollector::Global().Clear();
  TempDir dir;
  core::SchemeOptions options = FastTestConfig().scheme;
  core::Scheme1Server inner(options);
  auto durable = core::DurableServer::Open(dir.path(), &inner);
  SSE_ASSERT_OK_RESULT(durable);
  auto tcp = net::TcpServer::Start(durable->get());
  ASSERT_TRUE(tcp.ok());
  auto channel = net::TcpChannel::Connect((*tcp)->port());
  ASSERT_TRUE(channel.ok());

  // Generate traffic (and one sampled trace) so the scrape has content.
  // The retry layer is what stamps the wire trace header, so the client
  // goes through it like real deployments do.
  DeterministicRandom rng(19);
  net::RetryingChannel retry(channel->get(), net::RetryOptions{}, &rng);
  auto client =
      core::Scheme1Client::Create(TestMasterKey(), options, &retry, &rng);
  SSE_ASSERT_OK_RESULT(client);
  {
    obs::ScopedSpan root("test.scrape_traffic", obs::StartTrace());
    SSE_ASSERT_OK(
        (*client)->Store({core::Document::Make(0, "doc", {"kw"})}));
    auto outcome = (*client)->Search("kw");
    SSE_ASSERT_OK_RESULT(outcome);
  }

  StatsRequest req;
  req.include_spans = true;
  auto raw = (*channel)->Call(req.ToMessage());
  SSE_ASSERT_OK_RESULT(raw);
  auto reply = StatsReply::FromMessage(*raw);
  SSE_ASSERT_OK_RESULT(reply);

  const std::string& text = reply->prometheus_text;
  // Parseable Prometheus text: every non-comment line is "name[{labels}] value".
  size_t samples = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    char* parse_end = nullptr;
    std::strtod(line.c_str() + space + 1, &parse_end);
    EXPECT_EQ(*parse_end, '\0') << line;
    ++samples;
  }
  EXPECT_GT(samples, 10u);

  // The series the acceptance criteria name: WAL fsync/append histograms
  // (registered by the durable server, exercised by the Store) and the
  // net-layer counters (exercised by this very connection).
  EXPECT_NE(text.find("sse_wal_fsync_seconds_count"), std::string::npos);
  EXPECT_NE(text.find("sse_wal_append_seconds_count"), std::string::npos);
  EXPECT_NE(text.find("sse_net_server_frames_total"), std::string::npos);
  EXPECT_NE(text.find("sse_net_client_frames_sent_total"), std::string::npos);
  EXPECT_NE(text.find("sse_storage_degraded 0"), std::string::npos);
  // The Store actually journaled: the append histogram counted it.
  const std::string append_count = "sse_wal_append_seconds_count ";
  const size_t pos = text.find(append_count);
  ASSERT_NE(pos, std::string::npos);
  EXPECT_GT(std::strtod(text.c_str() + pos + append_count.size(), nullptr),
            0.0);

  // Spans were requested: the traced Store/Search shows up in the export.
  EXPECT_EQ(reply->spans_json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(reply->spans_json.find("server.dispatch"), std::string::npos);
}

TEST(ObsStatsRpcTest, SpansOmittedUnlessRequested) {
  net::Message req = StatsRequest{}.ToMessage();
  auto reply = StatsReply::FromMessage(obs::HandleStatsRequest(req));
  SSE_ASSERT_OK_RESULT(reply);
  EXPECT_TRUE(reply->spans_json.empty());
  EXPECT_FALSE(reply->prometheus_text.empty());
}

TEST(ObsStatsRpcTest, SessionStampIsEchoed) {
  net::Message req = StatsRequest{}.ToMessage();
  req.StampSession(/*client=*/5, /*sequence=*/77);
  const net::Message reply = obs::HandleStatsRequest(req);
  EXPECT_TRUE(reply.has_session);
  EXPECT_EQ(reply.client_id, 5u);
  EXPECT_EQ(reply.seq, 77u);
}

TEST(ObsStatsRpcTest, ServeStatsOptOutForwardsToHandler) {
  TempDir dir;
  core::SchemeOptions options = FastTestConfig().scheme;
  core::Scheme1Server inner(options);
  net::TcpServer::Options server_opts;
  server_opts.serve_stats = false;
  auto tcp = net::TcpServer::Start(&inner, 0, server_opts);
  ASSERT_TRUE(tcp.ok());
  auto channel = net::TcpChannel::Connect((*tcp)->port());
  ASSERT_TRUE(channel.ok());
  // The scheme server does not speak kMsgStats: the call surfaces its
  // error instead of being answered by the transport.
  auto raw = (*channel)->Call(StatsRequest{}.ToMessage());
  EXPECT_FALSE(raw.ok());
}

}  // namespace
}  // namespace sse
