#ifndef SSE_PHR_TOKENIZER_H_
#define SSE_PHR_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace sse::phr {

/// Lowercases and strips non-alphanumerics; splits on whitespace and
/// punctuation. Tokens shorter than `min_len` and stopwords are dropped;
/// duplicates removed. This is the client-side step that turns free text
/// into the keyword set W_i before encryption — the server never sees it.
std::vector<std::string> Tokenize(std::string_view text, size_t min_len = 3);

/// True for common English stopwords ("the", "and", ...).
bool IsStopword(std::string_view word);

/// Lowercase copy of `word` (ASCII).
std::string ToLowerAscii(std::string_view word);

/// Builds a namespaced tag, e.g. Tag("condition", "Diabetes Type 2") ->
/// "condition:diabetes-type-2". Tags are exact-match keywords, robust to
/// tokenizer changes.
std::string Tag(std::string_view ns, std::string_view value);

}  // namespace sse::phr

#endif  // SSE_PHR_TOKENIZER_H_
