file(REMOVE_RECURSE
  "CMakeFiles/vault_admin.dir/vault_admin.cpp.o"
  "CMakeFiles/vault_admin.dir/vault_admin.cpp.o.d"
  "vault_admin"
  "vault_admin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vault_admin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
