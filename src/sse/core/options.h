#ifndef SSE_CORE_OPTIONS_H_
#define SSE_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "sse/crypto/elgamal.h"

namespace sse::core {

/// Public parameters shared by client and server. Everything here is known
/// to the adversary; secrets live only in the client's MasterKey.
struct SchemeOptions {
  /// Scheme 1: capacity of the posting bitmap I(w). Document identifiers
  /// must be < max_documents; the bitmap occupies max_documents/8 bytes per
  /// keyword on the server and per update message on the wire.
  size_t max_documents = 1 << 16;

  /// Scheme 2: length `l` of the per-keyword pseudo-random chain; at most
  /// `l` counted updates can occur before the index must re-initialize.
  uint32_t chain_length = 1 << 12;

  /// Scheme 2, Optimization 1: the server keeps searched posting lists
  /// decrypted, so repeat searches only decrypt newly added segments.
  bool server_plaintext_cache = true;

  /// Bound on Optimization 1's memory: at most this many keywords keep
  /// their decrypted posting list cached; beyond it the least-recently-
  /// searched keyword's cache is dropped (soft state — its next search
  /// simply re-decrypts every segment). 0 = unbounded, the paper's
  /// original behavior.
  size_t plaintext_cache_max_entries = 0;

  /// Scheme 2, Optimization 2: bump the global counter only when a search
  /// happened since the last update; consecutive updates then share a chain
  /// element, slowing exhaustion by the factor x of Table 1.
  bool counter_after_search_only = true;

  /// Scheme 1: group for the ElGamal instantiation of F.
  crypto::ElGamalGroupId elgamal_group = crypto::ElGamalGroupId::kModp2048;

  /// Fan-out of the server's B+-tree over search tokens.
  size_t btree_order = 64;

  /// Ablation: replace the B+-tree with a hash table (O(1) lookups but no
  /// ordered scans; the paper's complexity story assumes the tree).
  bool use_hash_index = false;

  /// When non-empty, the server keeps document ciphertexts in an on-disk
  /// LogStore at this path instead of in memory, so the encrypted corpus
  /// can exceed RAM (paper schemes only; the searchable index stays in
  /// memory either way).
  std::string document_log_path;

  /// Route multi-keyword protocol rounds (Store's per-keyword updates,
  /// MultiSearch) through the channel's MultiCall as independent per-keyword
  /// ops instead of one monolithic message per round. Over a
  /// RetryingChannel the ops are packed into pipelined kMsgBatch envelopes
  /// — a K-keyword round then costs ~1 frame instead of K round trips —
  /// and retain per-op exactly-once dedup. Off by default: the monolithic
  /// path is the paper's wire format and what the Table 1 byte counts
  /// measure.
  bool batch_ops = false;
};

}  // namespace sse::core

#endif  // SSE_CORE_OPTIONS_H_
