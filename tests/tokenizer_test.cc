#include "sse/phr/tokenizer.h"

#include <gtest/gtest.h>

namespace sse::phr {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  auto tokens = Tokenize("Patient Reports MILD Symptoms");
  EXPECT_EQ(tokens, (std::vector<std::string>{"patient", "reports", "mild",
                                              "symptoms"}));
}

TEST(TokenizerTest, DropsStopwordsAndShortTokens) {
  auto tokens = Tokenize("the cat and the hat is on it");
  // "the"/"and" are stopwords; "is"/"on"/"it"/"cat"/"hat" -> cat/hat pass
  // (len 3), is/on/it dropped (len 2).
  EXPECT_EQ(tokens, (std::vector<std::string>{"cat", "hat"}));
}

TEST(TokenizerTest, Deduplicates) {
  auto tokens = Tokenize("pain pain PAIN pain");
  EXPECT_EQ(tokens, std::vector<std::string>{"pain"});
}

TEST(TokenizerTest, SplitsOnPunctuation) {
  auto tokens = Tokenize("fever,chills;headache-nausea.dizzy");
  EXPECT_EQ(tokens, (std::vector<std::string>{"fever", "chills", "headache",
                                              "nausea", "dizzy"}));
}

TEST(TokenizerTest, KeepsDigits) {
  auto tokens = Tokenize("blood pressure 140 over 90mm");
  EXPECT_EQ(tokens, (std::vector<std::string>{"blood", "pressure", "140",
                                              "over", "90mm"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n  ").empty());
}

TEST(TokenizerTest, MinLenParameter) {
  auto tokens = Tokenize("a bb ccc dddd", /*min_len=*/2);
  EXPECT_EQ(tokens, (std::vector<std::string>{"bb", "ccc", "dddd"}));
}

TEST(TokenizerTest, IsStopword) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("their"));
  EXPECT_FALSE(IsStopword("diabetes"));
}

TEST(TokenizerTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD123"), "mixed123");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(TagTest, BuildsNamespacedTags) {
  EXPECT_EQ(Tag("condition", "Diabetes Type 2"), "condition:diabetes-type-2");
  EXPECT_EQ(Tag("med", "metformin"), "med:metformin");
  EXPECT_EQ(Tag("patient", "p00042"), "patient:p00042");
}

TEST(TagTest, CollapsesSeparatorRuns) {
  EXPECT_EQ(Tag("x", "a -- b"), "x:a-b");
  EXPECT_EQ(Tag("x", "  leading"), "x:leading");
  EXPECT_EQ(Tag("x", "trailing!! "), "x:trailing");
  EXPECT_EQ(Tag("x", ""), "x:");
}

}  // namespace
}  // namespace sse::phr
