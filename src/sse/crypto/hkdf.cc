#include "sse/crypto/hkdf.h"

#include "sse/crypto/prf.h"

namespace sse::crypto {

namespace {
constexpr size_t kHashLen = 32;
}

Result<Bytes> HkdfSha256(BytesView ikm, BytesView salt, std::string_view info,
                         size_t out_len) {
  // Extract: PRK = HMAC(salt, IKM). RFC 5869 uses a zero-filled salt when
  // none is provided.
  Bytes effective_salt =
      salt.empty() ? Bytes(kHashLen, 0) : ToBytes(salt);
  Bytes prk;
  SSE_ASSIGN_OR_RETURN(prk, HmacSha256(effective_salt, ikm));
  return HkdfExpand(prk, info, out_len);
}

Result<Bytes> HkdfExpand(BytesView prk, std::string_view info, size_t out_len) {
  if (out_len == 0) return Status::InvalidArgument("HKDF output length is zero");
  if (out_len > 255 * kHashLen) {
    return Status::InvalidArgument("HKDF output length exceeds 255*32 bytes");
  }
  Bytes out;
  out.reserve(out_len);
  Bytes t;  // T(0) = empty
  uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes block = t;
    block.insert(block.end(), reinterpret_cast<const uint8_t*>(info.data()),
                 reinterpret_cast<const uint8_t*>(info.data()) + info.size());
    block.push_back(counter++);
    SSE_ASSIGN_OR_RETURN(t, HmacSha256(prk, block));
    const size_t take = std::min(kHashLen, out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
  }
  return out;
}

}  // namespace sse::crypto
