#include "sse/storage/wal.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

#include "sse/util/crc32.h"

namespace sse::storage {

namespace {

constexpr char kSegmentMagic[8] = {'S', 'S', 'E', 'W', 'A', 'L', 'S', '1'};
constexpr size_t kSegmentHeaderSize = 16;  // magic ‖ u64 first_seq
constexpr size_t kRecordHeaderSize = 16;   // u32 len ‖ u32 crc ‖ u64 seq
constexpr uint32_t kMaxRecordSize = 1u << 30;
// A resync candidate whose seq jumps further than this past the expected
// seq is treated as a coincidental bit pattern, not a real record.
constexpr uint64_t kMaxSeqGap = 1u << 24;

void PutU32(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

void PutU64(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32(const uint8_t* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const uint8_t* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(in[i]) << (8 * i);
  return v;
}

// The CRC covers the sequence number as well as the payload, so a record
// copied (or coincidentally repeated) at the wrong position cannot verify.
uint32_t RecordCrc(uint64_t seq, BytesView payload) {
  uint8_t seq_le[8];
  PutU64(seq_le, seq);
  return Crc32cExtend(Crc32c(BytesView(seq_le, sizeof(seq_le))), payload);
}

bool ParseSegmentName(const std::string& name, uint64_t* number) {
  // wal.<digits>.log
  if (name.size() < 9) return false;
  if (name.compare(0, 4, "wal.") != 0) return false;
  if (name.compare(name.size() - 4, 4, ".log") != 0) return false;
  uint64_t v = 0;
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty()) return false;
  for (const char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *number = v;
  return true;
}

bool HeaderLooksValid(BytesView data) {
  return data.size() >= kSegmentHeaderSize &&
         std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) == 0;
}

// Per-segment scan result; `next_seq` is the seq the segment hands to its
// successor (first_seq + intact records + quarantined records).
struct SegmentScan {
  bool header_valid = false;
  uint64_t first_seq = 0;
  uint64_t next_seq = 0;
  uint64_t records = 0;  // intact records with seq >= min_seq
  uint64_t torn_bytes = 0;
  uint64_t quarantined_records = 0;
  std::vector<std::pair<size_t, size_t>> quarantined;  // byte ranges
};

// Parses one segment. Damage handling: from the first unparseable byte we
// search forward for a provably-real record (plausible length, CRC over
// seq ‖ payload verifies, seq strictly beyond the expected one). If none
// exists the damage is a torn tail — unsynced, therefore unacknowledged,
// bytes a crash legitimately dropped. If one exists, acknowledged records
// were damaged: strict mode reports CORRUPTION, salvage mode records the
// byte range for quarantine and resumes at the resync point.
Status ScanSegment(BytesView data, bool salvage, uint64_t min_seq,
                   const std::function<Status(uint64_t, BytesView)>* fn,
                   SegmentScan* out) {
  if (!HeaderLooksValid(data)) return Status::OK();  // header_valid = false
  out->header_valid = true;
  out->first_seq = GetU64(data.data() + 8);
  uint64_t expected = out->first_seq;
  size_t offset = kSegmentHeaderSize;
  while (offset < data.size()) {
    const size_t rem = data.size() - offset;
    bool intact = false;
    uint32_t len = 0;
    if (rem >= kRecordHeaderSize) {
      len = GetU32(data.data() + offset);
      const uint32_t crc = GetU32(data.data() + offset + 4);
      const uint64_t seq = GetU64(data.data() + offset + 8);
      if (len <= kMaxRecordSize && kRecordHeaderSize + len <= rem &&
          seq == expected) {
        const BytesView payload = data.subspan(offset + kRecordHeaderSize, len);
        if (RecordCrc(seq, payload) == crc) {
          intact = true;
          if (seq >= min_seq) {
            ++out->records;
            if (fn != nullptr) SSE_RETURN_IF_ERROR((*fn)(seq, payload));
          }
        }
      }
    }
    if (intact) {
      ++expected;
      offset += kRecordHeaderSize + len;
      continue;
    }
    // Damage at `offset`: hunt for a resync point.
    size_t resync = 0;
    uint64_t resync_seq = 0;
    bool found = false;
    for (size_t p = offset + 1; p + kRecordHeaderSize <= data.size(); ++p) {
      const uint32_t l = GetU32(data.data() + p);
      if (l > kMaxRecordSize) continue;
      if (p + kRecordHeaderSize + l > data.size()) continue;
      const uint64_t s = GetU64(data.data() + p + 8);
      if (s <= expected || s - expected > kMaxSeqGap) continue;
      const BytesView payload = data.subspan(p + kRecordHeaderSize, l);
      if (RecordCrc(s, payload) != GetU32(data.data() + p + 4)) continue;
      resync = p;
      resync_seq = s;
      found = true;
      break;
    }
    if (!found) {
      out->torn_bytes = data.size() - offset;
      break;
    }
    if (!salvage) {
      return Status::Corruption("WAL record corrupt mid-segment at offset " +
                                std::to_string(offset));
    }
    out->quarantined.emplace_back(offset, resync);
    out->quarantined_records += resync_seq - expected;
    expected = resync_seq;
    offset = resync;
  }
  out->next_seq = expected;
  return Status::OK();
}

// Copies damaged byte ranges into `<segment>.quarantine` for forensics.
// Best-effort: a failure here must not turn a successful salvage into a
// recovery failure, but the byte count is reported either way.
void QuarantineRanges(Env* env, const std::string& dir,
                      const std::string& segment_path, BytesView data,
                      const std::vector<std::pair<size_t, size_t>>& ranges,
                      WalReplayReport* report) {
  uint64_t bytes = 0;
  for (const auto& [begin, end] : ranges) bytes += end - begin;
  report->quarantined_bytes += bytes;
  auto file_r = env->NewWritableFile(segment_path + ".quarantine", true);
  if (!file_r.ok()) return;
  std::unique_ptr<WritableFile> file = std::move(file_r).value();
  for (const auto& [begin, end] : ranges) {
    if (!file->Append(data.subspan(begin, end - begin)).ok()) return;
  }
  (void)file->Sync();
  (void)file->Close();
  (void)env->SyncDir(dir);
}

}  // namespace

std::string WriteAheadLog::SegmentPath(uint64_t number) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal.%06llu.log",
                static_cast<unsigned long long>(number));
  return dir_ + "/" + name;
}

Status WriteAheadLog::Poison(Status cause) {
  if (poison_.ok()) poison_ = cause;
  return poison_;
}

Status WriteAheadLog::CreateSegment(uint64_t number, uint64_t first_seq) {
  auto file_r = options_.env->NewWritableFile(SegmentPath(number), true);
  if (!file_r.ok()) return file_r.status();
  std::unique_ptr<WritableFile> file = std::move(file_r).value();
  uint8_t header[kSegmentHeaderSize];
  std::memcpy(header, kSegmentMagic, sizeof(kSegmentMagic));
  PutU64(header + 8, first_seq);
  SSE_RETURN_IF_ERROR(file->Append(BytesView(header, sizeof(header))));
  SSE_RETURN_IF_ERROR(file->Sync());
  // Make the new entry durable before any record lands in it, so replay
  // never sees acknowledged records in a segment that "does not exist".
  SSE_RETURN_IF_ERROR(options_.env->SyncDir(dir_));
  file_ = std::move(file);
  segments_.push_back(SegmentInfo{number, first_seq});
  return Status::OK();
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& dir,
                                          WalOptions options) {
  Env* env = options.env;
  WriteAheadLog wal(dir, options);
  std::vector<std::string> names;
  SSE_ASSIGN_OR_RETURN(names, env->ListDir(dir));
  std::vector<uint64_t> numbers;
  for (const std::string& name : names) {
    uint64_t number = 0;
    if (ParseSegmentName(name, &number)) numbers.push_back(number);
  }
  std::sort(numbers.begin(), numbers.end());
  const uint64_t fresh_number = numbers.empty() ? 1 : numbers.back() + 1;

  // A trailing segment whose header never became durable cannot contain
  // acknowledged records (the header is written and fsynced before the
  // first append returns), so it is safe to discard.
  Bytes last_data;
  while (!numbers.empty()) {
    SSE_ASSIGN_OR_RETURN(last_data, env->ReadFile(wal.SegmentPath(numbers.back())));
    if (HeaderLooksValid(last_data)) break;
    SSE_RETURN_IF_ERROR(env->Remove(wal.SegmentPath(numbers.back())));
    SSE_RETURN_IF_ERROR(env->SyncDir(dir));
    numbers.pop_back();
  }
  if (numbers.empty()) {
    SSE_RETURN_IF_ERROR(wal.CreateSegment(fresh_number, 1));
    return wal;
  }

  // Record the first_seq of every retained segment (CompactBefore needs
  // them) and refuse non-tail segments with unreadable headers: in strict
  // mode that is unrecoverable damage; in salvage mode Replay has already
  // quarantined their bytes, so they are dropped here.
  for (size_t i = 0; i + 1 < numbers.size();) {
    Bytes data;
    SSE_ASSIGN_OR_RETURN(data, env->ReadFile(wal.SegmentPath(numbers[i])));
    if (HeaderLooksValid(data)) {
      wal.segments_.push_back(SegmentInfo{numbers[i], GetU64(data.data() + 8)});
      ++i;
      continue;
    }
    if (!options.salvage) {
      return Status::Corruption("WAL segment header invalid: " +
                                wal.SegmentPath(numbers[i]));
    }
    SSE_RETURN_IF_ERROR(env->Remove(wal.SegmentPath(numbers[i])));
    SSE_RETURN_IF_ERROR(env->SyncDir(dir));
    numbers.erase(numbers.begin() + static_cast<long>(i));
  }

  SegmentScan scan;
  SSE_RETURN_IF_ERROR(
      ScanSegment(last_data, options.salvage, 0, nullptr, &scan));
  wal.next_seq_ = scan.next_seq;
  const bool seal = scan.torn_bytes > 0 || !scan.quarantined.empty() ||
                    last_data.size() >= options.segment_bytes;
  if (seal) {
    wal.segments_.push_back(SegmentInfo{numbers.back(), scan.first_seq});
    SSE_RETURN_IF_ERROR(wal.CreateSegment(fresh_number, wal.next_seq_));
  } else {
    auto file_r = env->NewWritableFile(wal.SegmentPath(numbers.back()), false);
    if (!file_r.ok()) return file_r.status();
    wal.file_ = std::move(file_r).value();
    wal.segments_.push_back(SegmentInfo{numbers.back(), scan.first_seq});
  }
  return wal;
}

Status WriteAheadLog::Append(BytesView payload) {
  if (poisoned()) return poison_;
  if (payload.size() > kMaxRecordSize) {
    return Status::InvalidArgument("WAL record exceeds 1 GiB");
  }
  if (file_->size() >= options_.segment_bytes) {
    SSE_RETURN_IF_ERROR(Rotate());
  }
  Bytes frame(kRecordHeaderSize + payload.size());
  PutU32(frame.data(), static_cast<uint32_t>(payload.size()));
  PutU32(frame.data() + 4, RecordCrc(next_seq_, payload));
  PutU64(frame.data() + 8, next_seq_);
  std::copy(payload.begin(), payload.end(), frame.begin() + kRecordHeaderSize);
  const Status status = file_->Append(frame);
  // A failed or short append leaves an undefined tail in the segment; the
  // seq was not consumed, so after restart the sealed segment's successor
  // starts at the same seq and replay proves the tear benign.
  if (!status.ok()) return Poison(status);
  ++next_seq_;
  ++appended_records_;
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (poisoned()) return poison_;
  const Status status = file_->Sync();
  // fsyncgate: after a failed fsync the kernel may have dropped the dirty
  // pages while clearing the error, so a retry could "succeed" without
  // persisting anything. Never retry; fail-stop instead.
  if (!status.ok()) return Poison(status);
  return Status::OK();
}

Status WriteAheadLog::Rotate() {
  if (poisoned()) return poison_;
  Status status = file_->Sync();
  if (!status.ok()) return Poison(status);
  (void)file_->Close();
  status = CreateSegment(segments_.back().number + 1, next_seq_);
  if (!status.ok()) return Poison(status);
  return Status::OK();
}

Status WriteAheadLog::CompactBefore(uint64_t seq) {
  if (poisoned()) return poison_;
  bool removed = false;
  while (segments_.size() >= 2 && segments_[1].first_seq <= seq) {
    const std::string path = SegmentPath(segments_.front().number);
    SSE_RETURN_IF_ERROR(options_.env->Remove(path));
    (void)options_.env->Remove(path + ".quarantine");  // may not exist
    segments_.erase(segments_.begin());
    removed = true;
  }
  if (removed) SSE_RETURN_IF_ERROR(options_.env->SyncDir(dir_));
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  if (poisoned()) return poison_;
  (void)file_->Close();
  file_.reset();
  const uint64_t fresh_number = segments_.back().number + 1;
  for (const SegmentInfo& segment : segments_) {
    const std::string path = SegmentPath(segment.number);
    const Status status = options_.env->Remove(path);
    if (!status.ok()) return Poison(status);
    (void)options_.env->Remove(path + ".quarantine");
  }
  segments_.clear();
  // CreateSegment's SyncDir also makes the removals durable.
  const Status status = CreateSegment(fresh_number, next_seq_);
  if (!status.ok()) return Poison(status);
  return Status::OK();
}

Status WriteAheadLog::ResetAt(uint64_t next_seq) {
  if (poisoned()) return poison_;
  if (next_seq > next_seq_) next_seq_ = next_seq;
  return Reset();
}

Status WriteAheadLog::Replay(const std::string& dir, const WalOptions& options,
                             uint64_t min_seq,
                             const std::function<Status(uint64_t, BytesView)>& fn,
                             WalReplayReport* report) {
  WalReplayReport local;
  WalReplayReport* rep = report != nullptr ? report : &local;
  *rep = WalReplayReport{};
  Env* env = options.env;

  std::vector<std::string> names;
  SSE_ASSIGN_OR_RETURN(names, env->ListDir(dir));
  std::vector<uint64_t> numbers;
  for (const std::string& name : names) {
    uint64_t number = 0;
    if (ParseSegmentName(name, &number)) numbers.push_back(number);
  }
  std::sort(numbers.begin(), numbers.end());

  uint64_t expected = 0;        // 0 = no valid segment header seen yet
  bool expected_known = false;  // false after a fully-quarantined segment
  for (size_t i = 0; i < numbers.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "wal.%06llu.log",
                  static_cast<unsigned long long>(numbers[i]));
    const std::string path = dir + "/" + name;
    Bytes data;
    SSE_ASSIGN_OR_RETURN(data, env->ReadFile(path));
    ++rep->segments;

    if (!HeaderLooksValid(data)) {
      if (!options.salvage) {
        return Status::Corruption("WAL segment header invalid: " + path);
      }
      QuarantineRanges(env, dir, path, data, {{0, data.size()}}, rep);
      expected_known = false;  // lost count; trust the next header
      continue;
    }
    const uint64_t first_seq = GetU64(data.data() + 8);
    if (expected_known && first_seq != expected) {
      // A torn tail in the previous segment is benign exactly when this
      // header picks up at the expected seq (the failed append consumed
      // no seq); any other gap means acknowledged records are missing.
      if (!options.salvage || first_seq < expected) {
        return Status::Corruption("WAL segment sequence discontinuity at " +
                                  path + ": expected " +
                                  std::to_string(expected) + ", found " +
                                  std::to_string(first_seq));
      }
      rep->quarantined_records += first_seq - expected;
    }
    if (rep->lowest_seq == 0) rep->lowest_seq = first_seq;

    SegmentScan scan;
    SSE_RETURN_IF_ERROR(ScanSegment(data, options.salvage, min_seq, &fn, &scan));
    if (!scan.quarantined.empty()) {
      QuarantineRanges(env, dir, path, data, scan.quarantined, rep);
    }
    rep->records += scan.records;
    rep->torn_bytes += scan.torn_bytes;
    rep->quarantined_records += scan.quarantined_records;
    expected = scan.next_seq;
    expected_known = true;
  }
  rep->next_seq = expected > 0 ? expected : 1;
  return Status::OK();
}

}  // namespace sse::storage
