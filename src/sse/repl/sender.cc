#include "sse/repl/sender.h"

#include <algorithm>
#include <chrono>

#include "sse/storage/snapshot.h"
#include "sse/storage/wal.h"
#include "sse/util/logging.h"

namespace sse::repl {

namespace {

obs::MetricsRegistry::Counter* AckTimeoutCounter() {
  static obs::MetricsRegistry::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(
          "sse_repl_ack_timeouts_total",
          "wait-one replication acks that timed out (write acked anyway)");
  return counter;
}

obs::MetricsRegistry::Counter* SnapshotShipCounter() {
  static obs::MetricsRegistry::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter(
          "sse_repl_snapshots_shipped_total",
          "checkpoint blobs shipped to followers behind the compaction "
          "horizon");
  return counter;
}

}  // namespace

ReplSender::ReplSender(std::string dir, std::vector<Endpoint> followers,
                       uint64_t epoch)
    : ReplSender(std::move(dir), std::move(followers), epoch, Options()) {}

ReplSender::ReplSender(std::string dir, std::vector<Endpoint> followers,
                       uint64_t epoch, Options options)
    : dir_(std::move(dir)), epoch_(epoch), options_(options) {
  for (Endpoint& endpoint : followers) {
    auto f = std::make_unique<Follower>();
    f->endpoint = std::move(endpoint);
    followers_.push_back(std::move(f));
  }
  auto& registry = obs::MetricsRegistry::Global();
  registrations_.push_back(registry.RegisterGauge(
      "sse_repl_followers_connected",
      [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        double n = 0;
        for (const auto& f : followers_) n += f->connected ? 1 : 0;
        return n;
      },
      "followers with a live replication channel"));
  registrations_.push_back(registry.RegisterGauge(
      "sse_repl_follower_lag_seqs",
      [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        uint64_t lag = 0;
        for (const auto& f : followers_) {
          if (log_end_ + 1 > f->next_seq) {
            lag = std::max(lag, log_end_ + 1 - f->next_seq);
          }
        }
        return static_cast<double>(lag);
      },
      "largest follower replication lag in WAL records"));
  registrations_.push_back(registry.RegisterHistogram(
      "sse_repl_ship_seconds", [this] { return ship_hist_.Snap(); },
      "round-trip latency of replication append/snapshot exchanges"));
}

ReplSender::~ReplSender() { Stop(); }

void ReplSender::Start(uint64_t next_seq) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return;
    started_ = true;
    log_end_ = next_seq > 0 ? next_seq - 1 : 0;
  }
  for (auto& f : followers_) {
    f->thread = std::thread([this, raw = f.get()] { FollowerLoop(raw); });
  }
}

void ReplSender::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  ack_cv_.notify_all();
  for (auto& f : followers_) {
    if (f->thread.joinable()) f->thread.join();
  }
}

void ReplSender::OnAppend(uint64_t wal_seq, BytesView record) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffer_.emplace_back(wal_seq, Bytes(record.begin(), record.end()));
    while (buffer_.size() > options_.live_buffer_records) buffer_.pop_front();
    log_end_ = wal_seq;
  }
  work_cv_.notify_all();
}

void ReplSender::WaitReplicated(uint64_t wal_seq) {
  if (options_.ack_mode != AckMode::kWaitOne) return;
  std::unique_lock<std::mutex> lock(mutex_);
  if (followers_.empty()) return;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.ack_timeout_ms);
  const bool acked = ack_cv_.wait_until(lock, deadline, [&] {
    return stop_ || fenced_ || max_acked_ >= wal_seq;
  });
  if (!acked) {
    ++ack_timeouts_;
    AckTimeoutCounter()->Add();
  }
}

std::vector<ReplSender::FollowerStatus> ReplSender::followers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FollowerStatus> out;
  out.reserve(followers_.size());
  for (const auto& f : followers_) {
    out.push_back(FollowerStatus{
        f->endpoint.host + ":" + std::to_string(f->endpoint.port),
        f->connected, f->next_seq});
  }
  return out;
}

uint64_t ReplSender::max_acked_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_acked_;
}

uint64_t ReplSender::log_end() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_end_;
}

uint64_t ReplSender::ack_timeouts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ack_timeouts_;
}

uint64_t ReplSender::snapshots_shipped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshots_shipped_;
}

bool ReplSender::fenced() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fenced_;
}

bool ReplSender::SleepBackoff(uint64_t* backoff_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  work_cv_.wait_for(lock, std::chrono::milliseconds(*backoff_ms),
                    [&] { return stop_; });
  *backoff_ms = std::min(*backoff_ms * 2, options_.max_backoff_ms);
  return !stop_;
}

void ReplSender::ApplyAckLocked(Follower* f, const ReplAck& ack) {
  if (ack.epoch > epoch_ && !fenced_) {
    // A follower has been promoted past us: this primary is deposed.
    fenced_ = true;
    SSE_LOG(Error) << "repl: fenced by epoch " << ack.epoch << " (ours "
                   << epoch_ << "); this node is no longer primary";
    ack_cv_.notify_all();
  }
  f->next_seq = ack.next_seq;
  if (ack.accepted && ack.next_seq > 0 && ack.next_seq - 1 > max_acked_) {
    // The follower's cursor is its durable log end: everything below it
    // survives a follower crash.
    max_acked_ = ack.next_seq - 1;
    ack_cv_.notify_all();
  }
}

Result<ReplAck> ReplSender::Exchange(net::TcpChannel* channel, Follower* f,
                                     const net::Message& msg) {
  const auto start = std::chrono::steady_clock::now();
  Result<net::Message> reply = channel->Call(msg);
  ship_hist_.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  if (!reply.ok()) return reply.status();
  ReplAck ack;
  SSE_ASSIGN_OR_RETURN(ack, ReplAck::FromMessage(*reply));
  std::lock_guard<std::mutex> lock(mutex_);
  ApplyAckLocked(f, ack);
  return ack;
}

Status ReplSender::CollectFromDisk(uint64_t from, std::vector<Bytes>* records,
                                   bool* need_snapshot) {
  records->clear();
  *need_snapshot = false;
  const storage::WalOptions wal_options{options_.env,
                                        options_.wal_segment_bytes,
                                        /*salvage=*/false};
  storage::WalReplayReport report;
  bool full = false;
  uint64_t expected = from;
  Status replayed = storage::WriteAheadLog::Replay(
      dir_, wal_options, from,
      [&](uint64_t seq, BytesView payload) {
        if (seq != expected) {
          // The oldest surviving segment starts above `from`: compaction
          // has removed the history this follower needs.
          *need_snapshot = true;
          full = true;
          return Status::Unavailable("catch-up gap");
        }
        records->push_back(Bytes(payload.begin(), payload.end()));
        ++expected;
        if (records->size() >= options_.max_records_per_append) {
          full = true;
          return Status::Unavailable("batch full");
        }
        return Status::OK();
      },
      &report);
  if (!replayed.ok() && !full) return replayed;
  if (records->empty() && report.lowest_seq > from) *need_snapshot = true;
  if (*need_snapshot) records->clear();
  return Status::OK();
}

Status ReplSender::ShipSnapshot(net::TcpChannel* channel, Follower* f) {
  storage::SnapshotSet snapshots(dir_, options_.env);
  Bytes blob;
  SSE_ASSIGN_OR_RETURN(blob, snapshots.ReadNewestValid());
  core::DurableServer::SnapshotBlob contents;
  SSE_ASSIGN_OR_RETURN(contents, core::DurableServer::DecodeSnapshot(blob));
  ReplSnapshot snap;
  snap.epoch = epoch_;
  snap.cut_seq = contents.wal_seq;
  snap.blob = std::move(blob);
  ReplAck ack;
  SSE_ASSIGN_OR_RETURN(ack, Exchange(channel, f, snap.ToMessage()));
  if (!ack.accepted) {
    return Status::Unavailable("follower refused snapshot install");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++snapshots_shipped_;
  }
  SnapshotShipCounter()->Add();
  return Status::OK();
}

void ReplSender::FollowerLoop(Follower* f) {
  std::unique_ptr<net::TcpChannel> channel;
  uint64_t backoff_ms = options_.initial_backoff_ms;
  net::TcpChannel::Options channel_options;
  channel_options.connect_timeout_ms =
      static_cast<double>(options_.connect_timeout_ms);
  channel_options.send_timeout_ms = static_cast<double>(options_.io_timeout_ms);
  channel_options.recv_timeout_ms = static_cast<double>(options_.io_timeout_ms);
  channel_options.auto_reconnect = false;

  auto drop_channel = [&] {
    channel.reset();
    std::lock_guard<std::mutex> lock(mutex_);
    f->connected = false;
  };

  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_ || fenced_) break;
    }

    if (channel == nullptr) {
      Result<std::unique_ptr<net::TcpChannel>> connected =
          net::TcpChannel::Connect(f->endpoint.port, f->endpoint.host,
                                   channel_options);
      if (!connected.ok()) {
        if (!SleepBackoff(&backoff_ms)) break;
        continue;
      }
      channel = std::move(connected).value();
      // An empty append is the cursor query: the ack tells us where this
      // follower's durable log ends, i.e. where to resume shipping.
      ReplAppend probe;
      probe.epoch = epoch_;
      Result<ReplAck> ack = Exchange(channel.get(), f, probe.ToMessage());
      if (!ack.ok()) {
        drop_channel();
        if (!SleepBackoff(&backoff_ms)) break;
        continue;
      }
      backoff_ms = options_.initial_backoff_ms;
      std::lock_guard<std::mutex> lock(mutex_);
      f->connected = true;
    }

    // Decide this iteration's work under the lock; do I/O outside it.
    uint64_t from = 0;
    bool probe_only = false;
    ReplAppend append;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.probe_interval_ms),
          [&] { return stop_ || fenced_ || f->next_seq <= log_end_; });
      if (stop_ || fenced_) break;
      from = f->next_seq;
      if (from > log_end_) {
        probe_only = true;  // caught up: heartbeat keeps the cursor fresh
      } else if (!buffer_.empty() && from >= buffer_.front().first) {
        // The live tail covers the cursor; buffer seqs are contiguous.
        const size_t index =
            static_cast<size_t>(from - buffer_.front().first);
        const size_t count = std::min(options_.max_records_per_append,
                                      buffer_.size() - index);
        append.records.reserve(count);
        for (size_t i = 0; i < count; ++i) {
          append.records.push_back(buffer_[index + i].second);
        }
      }
    }

    append.epoch = epoch_;
    append.first_seq = from;
    if (!probe_only && append.records.empty()) {
      // Cursor is behind the live buffer: read the primary's segments.
      bool need_snapshot = false;
      const Status collected =
          CollectFromDisk(from, &append.records, &need_snapshot);
      if (!collected.ok()) {
        SSE_LOG(Warning) << "repl: disk catch-up for "
                         << f->endpoint.host << ":" << f->endpoint.port
                         << " failed: " << collected.ToString();
        if (!SleepBackoff(&backoff_ms)) break;
        continue;
      }
      if (need_snapshot) {
        const Status shipped = ShipSnapshot(channel.get(), f);
        if (!shipped.ok()) {
          SSE_LOG(Warning) << "repl: snapshot ship to " << f->endpoint.host
                           << ":" << f->endpoint.port
                           << " failed: " << shipped.ToString();
          drop_channel();
          if (!SleepBackoff(&backoff_ms)) break;
        }
        continue;
      }
      if (append.records.empty()) {
        // Segments end below log_end_ (rotation race); retry shortly.
        if (!SleepBackoff(&backoff_ms)) break;
        continue;
      }
    }

    Result<ReplAck> ack = Exchange(channel.get(), f, append.ToMessage());
    if (!ack.ok()) {
      drop_channel();
      if (!SleepBackoff(&backoff_ms)) break;
      continue;
    }
    backoff_ms = options_.initial_backoff_ms;
    // A refused append is not a transport fault: the ack's cursor already
    // rewound/advanced us and the next iteration ships from there.
  }
  drop_channel();
}

}  // namespace sse::repl
