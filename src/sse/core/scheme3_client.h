#ifndef SSE_CORE_SCHEME3_CLIENT_H_
#define SSE_CORE_SCHEME3_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "sse/core/options.h"
#include "sse/core/scheme3_messages.h"
#include "sse/core/types.h"
#include "sse/crypto/aead.h"
#include "sse/crypto/keys.h"
#include "sse/crypto/prf.h"
#include "sse/net/channel.h"

namespace sse::core {

/// The client of Scheme 3, the forward-private dynamic scheme (after
/// Etemad–Küpçü, "Efficient Dynamic Searchable Encryption with Forward
/// Privacy").
///
/// Scheme 2 keys all keywords off ONE global counter and sends the static
/// keyword token with every update, so the server links every update of a
/// keyword the moment it arrives. Scheme 3 gives each keyword its own
/// counter c_w and derives update j's key k_j = f^{l-j}(seed_w) from a
/// per-keyword chain; the update ships only (f'(k_j), E_{k_j}(delta)) —
/// an address and a ciphertext that are fresh pseudo-random values per
/// update. A search releases (k_{c_w}, c_w); since f only walks toward
/// older keys, the server can open everything stored so far but cannot
/// recognize (let alone decrypt) any update made afterwards.
///
/// The price is client state linear in the number of distinct keywords
/// (the counter map — the standard forward-privacy trade-off) and a
/// search cost of c_w chain steps server-side.
class Scheme3Client : public SseClientInterface {
 public:
  static Result<std::unique_ptr<Scheme3Client>> Create(
      const crypto::MasterKey& key, const SchemeOptions& options,
      net::Channel* channel, RandomSource* rng);

  Status Store(const std::vector<Document>& docs) override;
  Result<SearchOutcome> Search(std::string_view keyword) override;
  /// With SchemeOptions::batch_ops, runs all K one-round searches as one
  /// pipelined MultiCall round instead of K sequential round trips.
  Result<std::vector<SearchOutcome>> MultiSearch(
      const std::vector<std::string>& keywords) override;
  Status FakeUpdate(const std::vector<std::string>& keywords) override;
  std::string name() const override { return "scheme3"; }

  /// Trapdoor(w) = (k_{c_w}, c_w). Fails with FAILED_PRECONDITION before
  /// the keyword's first update (there is nothing searchable to release).
  struct Trapdoor {
    Bytes chain_element;
    uint32_t counter = 0;
  };
  Result<Trapdoor> MakeTrapdoor(std::string_view keyword) const;

  /// The keyword's update counter (0 = never updated). At most
  /// chain_length counted updates fit per keyword.
  Result<uint32_t> counter(std::string_view keyword) const;

  /// Diagnostic counters from the last search reply.
  uint64_t last_search_chain_steps() const { return last_chain_steps_; }
  uint64_t last_search_entries_decrypted() const { return last_entries_; }

  /// Reconnects the client to a new channel (e.g. after a server restart).
  /// Client-side protocol state (counters, used ids) is preserved.
  void set_channel(net::Channel* channel) { channel_ = channel; }

  /// Serializes the per-keyword counters and used document ids. A client
  /// MUST persist this between sessions: restoring an older counter would
  /// file a different delta under an address the server already holds,
  /// silently shadowing the earlier posting.
  Bytes SerializeState() const override;
  Status RestoreState(BytesView data) override;

 private:
  Scheme3Client(crypto::Prf prf, crypto::Aead aead,
                const SchemeOptions& options, net::Channel* channel,
                RandomSource* rng);

  struct PendingUpdate {
    std::string keyword;
    std::vector<uint64_t> ids;
  };

  /// Per-keyword protocol state, keyed in `states_` by the hex token.
  /// The memo caches the chain element of `memo_ctr` (0 = none): counters
  /// only grow, so recomputation from the seed — O(l - c) hash steps — is
  /// needed at most once per counter value; trapdoors for the current
  /// counter then hit the memo.
  struct KeywordState {
    Bytes token;
    uint32_t ctr = 0;
    uint32_t memo_ctr = 0;
    Bytes memo_element;
  };

  Result<Bytes> Token(std::string_view keyword) const;
  /// Looks up (creating if absent) the state slot for `token`.
  KeywordState& StateFor(const Bytes& token) const;
  /// Chain element k_{ctr} for the keyword, via the memo when possible.
  Result<Bytes> ChainKeyAt(KeywordState& state, uint32_t ctr) const;

  /// One protocol round: each pending keyword consumes its next counter
  /// (burned even if the round later fails — an ambiguous failure may
  /// have applied server-side, and reusing the counter for different
  /// content would shadow it). With SchemeOptions::batch_ops the round is
  /// K per-keyword ops through MultiCall; otherwise one monolithic
  /// message.
  Status RunUpdateProtocol(const std::vector<PendingUpdate>& updates,
                           const std::vector<Document>& documents);

  Result<SearchOutcome> ParseSearchResult(const net::Message& msg);

  crypto::Prf prf_;
  crypto::Aead aead_;
  SchemeOptions options_;
  net::Channel* channel_;
  RandomSource* rng_;

  mutable std::map<std::string, KeywordState> states_;  // key: hex token
  std::set<uint64_t> used_ids_;
  uint64_t last_chain_steps_ = 0;
  uint64_t last_entries_ = 0;
};

}  // namespace sse::core

#endif  // SSE_CORE_SCHEME3_CLIENT_H_
