#include "sse/net/retry.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>

#include "sse/net/admission.h"
#include "sse/net/batch.h"
#include "sse/obs/metrics_registry.h"
#include "sse/obs/trace.h"
#include "sse/util/crc32.h"

namespace sse::net {

namespace {

obs::MetricsRegistry::Counter* RetriesCounter() {
  static auto* c = obs::MetricsRegistry::Global().GetCounter(
      "sse_net_retries_total", "Retry attempts beyond the first, all clients");
  return c;
}

obs::MetricsRegistry::Counter* DeadlineCounter() {
  static auto* c = obs::MetricsRegistry::Global().GetCounter(
      "sse_net_deadline_exceeded_total",
      "Calls abandoned on their deadline, all clients");
  return c;
}

obs::MetricsRegistry::Counter* BudgetSpentCounter() {
  static auto* c = obs::MetricsRegistry::Global().GetCounter(
      "sse_retry_budget_spent_total",
      "Retry-budget tokens spent on retries, all clients");
  return c;
}

obs::MetricsRegistry::Counter* BudgetExhaustedCounter() {
  static auto* c = obs::MetricsRegistry::Global().GetCounter(
      "sse_retry_budget_exhausted_total",
      "Retries refused because the retry budget was empty, all clients");
  return c;
}

}  // namespace

RetryingChannel::RetryingChannel(Channel* inner, RetryOptions options,
                                 RandomSource* rng)
    : inner_(inner), options_(options), rng_(rng) {
  client_id_ = options_.client_id;
  if (client_id_ == 0) {
    if (rng_ != nullptr) {
      Result<uint64_t> id = rng_->NextU64();
      if (id.ok()) client_id_ = *id;
    }
    if (client_id_ == 0) client_id_ = 0x5353452d636c6974;  // arbitrary nonzero
  }
  retry_tokens_ = options_.retry_budget;  // bucket starts full
}

bool RetryingChannel::SpendRetryToken() {
  if (options_.retry_budget <= 0.0) return true;
  if (retry_tokens_ < 1.0) return false;
  retry_tokens_ -= 1.0;
  BudgetSpentCounter()->Add();
  return true;
}

void RetryingChannel::RefillRetryToken() {
  if (options_.retry_budget <= 0.0) return;
  retry_tokens_ = std::min(options_.retry_budget,
                           retry_tokens_ + options_.retry_budget_refill);
}

void RetryingChannel::StampRemainingDeadline(Message* msg, double start_ms) {
  if (!options_.propagate_deadline || options_.call_deadline_ms <= 0.0) return;
  // The remainder is clamped to >= 1ms: the deadline check above already
  // rejected an expired call, so what is left is a real (if tiny) budget.
  const double remaining =
      std::max(1.0, options_.call_deadline_ms - (NowMs() - start_ms));
  msg->has_deadline = true;
  msg->deadline_ms = static_cast<uint32_t>(remaining);
  // The transport must not block past the budget either: a fixed
  // per-attempt recv timeout larger than the remainder would let the last
  // attempt overshoot the overall deadline.
  inner_->SetIoDeadlineMs(remaining);
}

double RetryingChannel::NowMs() const {
  if (clock_fn_) return clock_fn_();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RetryingChannel::SleepMs(double ms) {
  if (ms <= 0.0) return;
  if (sleep_fn_) {
    sleep_fn_(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

double RetryingChannel::NextBackoff(double prev_ms) {
  // Decorrelated jitter: sleep = min(cap, uniform(base, 3 * prev)). The
  // first attempt passes prev == 0, drawing from [0, base].
  const double base = options_.initial_backoff_ms;
  double lo = prev_ms <= 0.0 ? 0.0 : base;
  double hi = prev_ms <= 0.0 ? base : 3.0 * prev_ms;
  if (hi < lo) hi = lo;
  double u = 0.5;
  if (rng_ != nullptr) {
    Result<uint64_t> raw = rng_->NextU64();
    if (raw.ok()) {
      u = static_cast<double>(*raw >> 11) * (1.0 / 9007199254740992.0);
    }
  }
  return std::min(options_.max_backoff_ms, lo + u * (hi - lo));
}

bool RetryingChannel::ShouldRetry(const Status& status) const {
  if (status.IsRetryable()) return true;
  // RESOURCE_EXHAUSTED from the *server* means "shed under overload, retry
  // later" (net/admission.h) — retryable here, where backoff honors the
  // server's retry-after hint. Status::IsRetryable itself excludes the
  // code because client-side exhaustion (a consumed hash chain) is
  // permanent; those statuses never pass through this layer.
  if (status.code() == StatusCode::kResourceExhausted) return true;
  return options_.retry_corrupt_replies &&
         status.code() == StatusCode::kCorruption;
}

Result<Message> RetryingChannel::Call(const Message& request) {
  retry_stats_.calls += 1;
  obs::ScopedSpan call_span("rpc.call");
  Message stamped = request;
  if (options_.stamp_sessions) {
    stamped.StampSession(client_id_, next_seq_++);
  }

  const double start_ms = NowMs();
  double backoff_ms = 0.0;
  Status last = Status::OK();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (!SpendRetryToken()) {
        // Empty bucket: another attempt would amplify whatever is failing.
        // Surface the failure now; successes elsewhere will refill us.
        retry_stats_.budget_exhausted += 1;
        BudgetExhaustedCounter()->Add();
        return Status(last.code(),
                      "retry budget exhausted; last: " + last.ToString());
      }
      // An ambiguous failure may have left a half-written request or a
      // buffered stale reply in the transport; flush before re-sending.
      inner_->Reset();
      retry_stats_.resets += 1;
      backoff_ms = NextBackoff(backoff_ms);
      uint32_t hint_ms = 0;
      if (RetryAfterHintMs(last, &hint_ms)) {
        // A shedding server told us when it wants us back; never return
        // earlier than that, whatever the jitter drew.
        backoff_ms = std::max(backoff_ms, static_cast<double>(hint_ms));
      }
      SleepMs(backoff_ms);
      retry_stats_.retries += 1;
      RetriesCounter()->Add();
    }
    if (options_.call_deadline_ms > 0.0 &&
        NowMs() - start_ms >= options_.call_deadline_ms) {
      retry_stats_.deadline_exceeded += 1;
      DeadlineCounter()->Add();
      return Status::DeadlineExceeded(
          "call deadline exceeded after " + std::to_string(attempt) +
          " attempt(s)" + (last.ok() ? "" : "; last: " + last.ToString()));
    }

    retry_stats_.attempts += 1;
    obs::ScopedSpan attempt_span("rpc.attempt", call_span.context());
    attempt_span.Annotate("attempt", static_cast<uint64_t>(attempt));
    // The trace header is outside the session CRC, so re-stamping each
    // attempt with its own span id is safe and keeps per-attempt frames
    // distinguishable in the span tree. Same for the deadline header:
    // each attempt carries the budget *remaining now*, not the original.
    obs::StampMessage(&stamped, attempt_span.context());
    StampRemainingDeadline(&stamped, start_ms);
    Result<Message> reply = inner_->Call(stamped);
    if (reply.ok()) {
      if (stamped.has_session && reply->has_session) {
        if (reply->client_id != client_id_ || reply->seq != stamped.seq) {
          // Stale reply from a duplicated/reordered stream: never hand it
          // to the protocol layer; flush and re-ask for ours.
          retry_stats_.stale_replies += 1;
          last = Status::Unavailable("stale reply (stream out of sync)");
          continue;
        }
        if (Crc32c(reply->payload) != reply->payload_crc) {
          retry_stats_.corrupt_replies += 1;
          last = Status::Corruption("reply payload fails its checksum");
          if (!options_.retry_corrupt_replies) return last;
          continue;
        }
      }
      RefillRetryToken();
      return reply;
    }
    last = reply.status();
    if (!ShouldRetry(last)) return last;
  }
  retry_stats_.exhausted += 1;
  return Status(last.code(), "retries exhausted after " +
                                 std::to_string(options_.max_attempts) +
                                 " attempts; last: " + last.ToString());
}

std::vector<Result<Message>> RetryingChannel::MultiCall(
    const std::vector<Message>& requests) {
  const size_t n = requests.size();
  if (n == 0) return {};
  // Without session stamps there is no per-op dedup identity, so batching
  // retried sub-ops would be at-least-once; fall back to sequential calls.
  if (!options_.stamp_sessions) return Channel::MultiCall(requests);

  retry_stats_.calls += n;
  obs::ScopedSpan mc_span("rpc.multicall");
  mc_span.Annotate("ops", n);
  // One seq per logical op, fixed for its lifetime: this is the dedup key
  // the server's ReplyCache sees, no matter which envelope carries the op.
  std::vector<uint64_t> seqs(n);
  for (size_t i = 0; i < n; ++i) seqs[i] = next_seq_++;

  std::vector<Result<Message>> results(
      n, Status::Internal("multicall op never settled"));
  std::vector<bool> settled(n, false);
  std::vector<int> attempts(n, 0);
  size_t remaining = n;
  auto settle = [&](size_t i, Result<Message> r) {
    if (settled[i]) return;
    settled[i] = true;
    results[i] = std::move(r);
    remaining -= 1;
  };

  const double start_ms = NowMs();
  double backoff_ms = 0.0;
  Status last = Status::OK();
  const int max_attempts = std::max(1, options_.max_attempts);

  /// One wire frame of the current round: either a kMsgBatch envelope of
  /// several ops or a single stamped op.
  struct Group {
    std::vector<size_t> ops;  // indices into `requests`
    Message envelope;
    bool is_batch = false;
  };

  // Classify one group's reply, settling ops that finished (successfully
  // or with a permanent error) and leaving retryable ones for next round.
  auto absorb = [&](const Group& g, Result<Message> reply) {
    if (!reply.ok()) {
      last = reply.status();
      if (!ShouldRetry(last)) {
        for (size_t i : g.ops) settle(i, last);
      }
      return;
    }
    if (reply->has_session) {
      if (reply->client_id != client_id_ || reply->seq != g.envelope.seq) {
        // Echo of some superseded attempt: drop the frame, retry the group.
        retry_stats_.stale_replies += 1;
        last = Status::Unavailable("stale reply (stream out of sync)");
        return;
      }
      if (Crc32c(reply->payload) != reply->payload_crc) {
        retry_stats_.corrupt_replies += 1;
        last = Status::Corruption("reply payload fails its checksum");
        if (!options_.retry_corrupt_replies) {
          for (size_t i : g.ops) settle(i, last);
        }
        return;
      }
    }
    if (!g.is_batch) {
      settle(g.ops[0], std::move(*reply));
      RefillRetryToken();
      return;
    }
    Result<BatchReply> decoded = BatchReply::FromMessage(*reply);
    if (!decoded.ok() || decoded->entries.size() != g.ops.size()) {
      retry_stats_.corrupt_replies += 1;
      last = decoded.ok()
                 ? Status::ProtocolError("batch reply entry count mismatch")
                 : decoded.status();
      return;
    }
    for (size_t k = 0; k < g.ops.size(); ++k) {
      const size_t i = g.ops[k];
      BatchReply::Entry& e = decoded->entries[k];
      Message op_reply{e.type, std::move(e.payload)};
      Status app_error = DecodeErrorMessage(op_reply);
      if (!app_error.ok()) {
        last = app_error;
        // A retryable sub-op failure (e.g. one shard timing out) keeps
        // only THAT op unsettled; its neighbors' outcomes stand.
        if (!ShouldRetry(app_error)) settle(i, app_error);
      } else {
        settle(i, std::move(op_reply));
        RefillRetryToken();
      }
    }
  };

  bool first_round = true;
  while (remaining > 0) {
    if (!first_round) {
      inner_->Reset();
      retry_stats_.resets += 1;
      backoff_ms = NextBackoff(backoff_ms);
      uint32_t hint_ms = 0;
      if (RetryAfterHintMs(last, &hint_ms)) {
        backoff_ms = std::max(backoff_ms, static_cast<double>(hint_ms));
      }
      SleepMs(backoff_ms);
    }
    if (options_.call_deadline_ms > 0.0 &&
        NowMs() - start_ms >= options_.call_deadline_ms) {
      const Status expired = Status::DeadlineExceeded(
          "multicall deadline exceeded" +
          std::string(last.ok() ? "" : "; last: " + last.ToString()));
      for (size_t i = 0; i < n; ++i) {
        if (settled[i]) continue;
        retry_stats_.deadline_exceeded += 1;
        settle(i, expired);
      }
      break;
    }

    std::vector<size_t> round;
    for (size_t i = 0; i < n; ++i) {
      if (settled[i]) continue;
      if (attempts[i] >= max_attempts) {
        retry_stats_.exhausted += 1;
        settle(i, Status(last.ok() ? StatusCode::kUnavailable : last.code(),
                         "retries exhausted after " +
                             std::to_string(max_attempts) +
                             " attempts; last: " + last.ToString()));
        continue;
      }
      // A re-attempt of op i is a retry: it must buy a token. First
      // attempts are free — the budget throttles amplification, not load.
      if (attempts[i] > 0 && !SpendRetryToken()) {
        retry_stats_.budget_exhausted += 1;
        BudgetExhaustedCounter()->Add();
        settle(i, Status(last.ok() ? StatusCode::kUnavailable : last.code(),
                         "retry budget exhausted; last: " + last.ToString()));
        continue;
      }
      round.push_back(i);
    }
    if (round.empty()) break;
    for (size_t i : round) {
      attempts[i] += 1;
      retry_stats_.attempts += 1;
      if (attempts[i] > 1) {
        retry_stats_.retries += 1;
        RetriesCounter()->Add();
      }
    }

    const size_t group_size =
        options_.batch_size <= 1 ? 1
                                 : static_cast<size_t>(options_.batch_size);
    std::vector<Group> groups;
    for (size_t off = 0; off < round.size(); off += group_size) {
      Group g;
      const size_t end = std::min(off + group_size, round.size());
      for (size_t k = off; k < end; ++k) g.ops.push_back(round[k]);
      g.is_batch = group_size > 1;
      if (g.is_batch) {
        BatchRequest batch;
        batch.ops.reserve(g.ops.size());
        for (size_t i : g.ops) {
          batch.ops.push_back(
              BatchRequest::Op{seqs[i], requests[i].type,
                               requests[i].payload});
        }
        g.envelope = batch.ToMessage();
        // Fresh envelope seq per attempt: a retried envelope is a NEW
        // frame to the transport/dedup layers; only its sub-op seqs (the
        // real dedup identities) are stable across retries.
        g.envelope.StampSession(client_id_, next_seq_++);
        retry_stats_.batches += 1;
      } else {
        const size_t i = g.ops[0];
        g.envelope = requests[i];
        g.envelope.StampSession(client_id_, seqs[i]);
      }
      obs::StampMessage(&g.envelope, mc_span.context());
      StampRemainingDeadline(&g.envelope, start_ms);
      groups.push_back(std::move(g));
    }

    // Slide up to max_inflight envelopes through the wire at once,
    // awaiting replies in submission order.
    const size_t window =
        options_.max_inflight < 1 ? 1
                                  : static_cast<size_t>(options_.max_inflight);
    std::deque<std::pair<CallId, size_t>> pending;  // (ticket, group index)
    auto await_front = [&] {
      auto [ticket, done_gi] = pending.front();
      pending.pop_front();
      obs::ScopedSpan env_span("rpc.envelope", mc_span.context());
      env_span.Annotate("ops", groups[done_gi].ops.size());
      env_span.Annotate("batch_seq", groups[done_gi].envelope.seq);
      env_span.Annotate("attempt",
                        static_cast<uint64_t>(attempts[groups[done_gi].ops[0]] -
                                              1));
      absorb(groups[done_gi], inner_->Await(ticket));
    };
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      while (pending.size() >= window) await_front();
      pending.emplace_back(inner_->Submit(groups[gi].envelope), gi);
    }
    while (!pending.empty()) await_front();
    first_round = false;
  }
  return results;
}

}  // namespace sse::net
