// Long-horizon randomized property tests: arbitrary interleavings of
// stores, searches, fake updates, removals (Scheme 1), chain
// re-initializations (Scheme 2) and full server crash/recovery cycles must
// always agree with a plaintext reference index.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sse/core/durable_server.h"
#include "sse/core/padding.h"
#include "sse/core/registry.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_server.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"
#include "test_util.h"

namespace sse::core {
namespace {

using sse::testing::FastTestConfig;
using sse::testing::TempDir;
using sse::testing::TestMasterKey;

std::string Kw(uint64_t i) { return "v" + std::to_string(i); }

/// Plaintext reference the encrypted systems must match.
class Reference {
 public:
  void Add(uint64_t id, const std::vector<std::string>& keywords) {
    for (const auto& kw : keywords) postings_[kw].insert(id);
    keywords_of_[id] = keywords;
  }
  void Remove(uint64_t id) {
    auto it = keywords_of_.find(id);
    if (it == keywords_of_.end()) return;
    for (const auto& kw : it->second) postings_[kw].erase(id);
    keywords_of_.erase(it);
  }
  std::vector<uint64_t> Lookup(const std::string& kw) const {
    auto it = postings_.find(kw);
    if (it == postings_.end()) return {};
    return {it->second.begin(), it->second.end()};
  }
  const std::vector<std::string>* KeywordsOf(uint64_t id) const {
    auto it = keywords_of_.find(id);
    return it == keywords_of_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, std::set<uint64_t>> postings_;
  std::map<uint64_t, std::vector<std::string>> keywords_of_;
};

std::vector<std::string> RandomKeywords(DeterministicRandom& rng,
                                        size_t vocabulary) {
  std::set<std::string> kws;
  const size_t n = 1 + rng.Next() % 4;
  while (kws.size() < n) kws.insert(Kw(rng.Next() % vocabulary));
  return {kws.begin(), kws.end()};
}

TEST(PropertyTest, Scheme1LongInterleavingWithRemovals) {
  DeterministicRandom rng(1001);
  SseSystem sys = sse::testing::MakeTestSystem(SystemKind::kScheme1, &rng);
  auto* client = static_cast<Scheme1Client*>(sys.client.get());
  Reference reference;
  uint64_t next_id = 0;
  const size_t vocabulary = 10;
  DeterministicRandom op_rng(2002);

  for (int step = 0; step < 300; ++step) {
    const int op = op_rng.Next() % 10;
    if (op < 5 || next_id == 0) {  // store
      auto kws = RandomKeywords(op_rng, vocabulary);
      ASSERT_TRUE(
          sys.client->Store({Document::Make(next_id, "c", kws)}).ok());
      reference.Add(next_id, kws);
      ++next_id;
    } else if (op < 7) {  // remove a random live document
      const uint64_t id = op_rng.Next() % next_id;
      const auto* kws = reference.KeywordsOf(id);
      if (kws != nullptr) {
        ASSERT_TRUE(client->RemoveDocument(id, *kws).ok());
        reference.Remove(id);
      }
    } else if (op == 7) {  // fake update
      ASSERT_TRUE(sys.client->FakeUpdate({Kw(op_rng.Next() % vocabulary)}).ok());
    } else {  // search
      const std::string kw = Kw(op_rng.Next() % vocabulary);
      auto outcome = sys.client->Search(kw);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      EXPECT_EQ(outcome->ids, reference.Lookup(kw)) << "step " << step;
    }
  }
  // Full sweep at the end.
  for (size_t v = 0; v < vocabulary; ++v) {
    auto outcome = sys.client->Search(Kw(v));
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->ids, reference.Lookup(Kw(v)));
  }
}

TEST(PropertyTest, Scheme2LongInterleavingWithReinit) {
  // Tiny chain so re-initialization triggers repeatedly mid-run.
  SystemConfig config = FastTestConfig();
  config.scheme.chain_length = 8;
  DeterministicRandom rng(3003);
  SseSystem sys =
      sse::testing::MakeTestSystem(SystemKind::kScheme2, &rng, config);
  auto* client = static_cast<Scheme2Client*>(sys.client.get());
  Reference reference;
  uint64_t next_id = 0;
  const size_t vocabulary = 8;
  DeterministicRandom op_rng(4004);
  int reinits = 0;

  for (int step = 0; step < 300; ++step) {
    const int op = op_rng.Next() % 8;
    if (op < 4 || next_id == 0) {  // store (reinit on exhaustion)
      auto kws = RandomKeywords(op_rng, vocabulary);
      Status s = sys.client->Store({Document::Make(next_id, "c", kws)});
      if (s.code() == StatusCode::kResourceExhausted) {
        ASSERT_TRUE(client->Reinitialize().ok()) << "step " << step;
        ++reinits;
        s = sys.client->Store({Document::Make(next_id, "c", kws)});
      }
      ASSERT_TRUE(s.ok()) << s.ToString();
      reference.Add(next_id, kws);
      ++next_id;
    } else if (op == 4) {  // fake update (also consumes chain budget)
      Status s = sys.client->FakeUpdate({Kw(op_rng.Next() % vocabulary)});
      if (s.code() == StatusCode::kResourceExhausted) {
        ASSERT_TRUE(client->Reinitialize().ok());
        ++reinits;
      } else {
        ASSERT_TRUE(s.ok());
      }
    } else {  // search
      const std::string kw = Kw(op_rng.Next() % vocabulary);
      auto outcome = sys.client->Search(kw);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      EXPECT_EQ(outcome->ids, reference.Lookup(kw)) << "step " << step;
    }
  }
  EXPECT_GT(reinits, 2) << "chain never exhausted; test lost its teeth";
  for (size_t v = 0; v < vocabulary; ++v) {
    auto outcome = sys.client->Search(Kw(v));
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->ids, reference.Lookup(Kw(v)));
  }
}

TEST(PropertyTest, Scheme1DurableCrashRecoveryLoop) {
  TempDir dir;
  const SchemeOptions options = FastTestConfig().scheme;
  Reference reference;
  Bytes client_state;
  uint64_t next_id = 0;
  DeterministicRandom op_rng(5005);

  for (int session = 0; session < 5; ++session) {
    Scheme1Server inner(options);
    auto durable = DurableServer::Open(dir.path(), &inner);
    SSE_ASSERT_OK_RESULT(durable);
    net::InProcessChannel channel(durable->get());
    DeterministicRandom rng(6006 + session);
    auto client =
        Scheme1Client::Create(TestMasterKey(), options, &channel, &rng);
    SSE_ASSERT_OK_RESULT(client);
    if (!client_state.empty()) {
      SSE_ASSERT_OK((*client)->RestoreState(client_state));
    }

    for (int step = 0; step < 40; ++step) {
      if (op_rng.Next() % 3 != 0 || next_id == 0) {
        auto kws = RandomKeywords(op_rng, 6);
        ASSERT_TRUE(
            (*client)->Store({Document::Make(next_id, "c", kws)}).ok());
        reference.Add(next_id, kws);
        ++next_id;
      } else {
        const std::string kw = Kw(op_rng.Next() % 6);
        auto outcome = (*client)->Search(kw);
        ASSERT_TRUE(outcome.ok());
        EXPECT_EQ(outcome->ids, reference.Lookup(kw))
            << "session " << session << " step " << step;
      }
    }
    // Half the sessions checkpoint; the others "crash" with a WAL only.
    if (session % 2 == 0) {
      SSE_ASSERT_OK((*durable)->Checkpoint());
    }
    client_state = (*client)->SerializeState();
  }
}

TEST(PropertyTest, PaddedClientsAgreeWithReference) {
  // Padding must never change results, across both schemes, under a long
  // random interleaving.
  for (SystemKind kind : {SystemKind::kScheme1, SystemKind::kScheme2}) {
    DeterministicRandom rng(7007);
    SseSystem sys = sse::testing::MakeTestSystem(kind, &rng);
    PaddingPolicy policy;
    policy.mode = PaddingPolicy::Mode::kPowerOfTwo;
    PaddedClient padded(sys.client.get(), policy, &rng);
    Reference reference;
    uint64_t next_id = 0;
    DeterministicRandom op_rng(8008);

    for (int step = 0; step < 120; ++step) {
      if (op_rng.Next() % 3 != 0 || next_id == 0) {
        auto kws = RandomKeywords(op_rng, 6);
        ASSERT_TRUE(padded.Store({Document::Make(next_id, "c", kws)}).ok());
        reference.Add(next_id, kws);
        ++next_id;
      } else {
        const std::string kw = Kw(op_rng.Next() % 6);
        auto outcome = padded.Search(kw);
        ASSERT_TRUE(outcome.ok());
        EXPECT_EQ(outcome->ids, reference.Lookup(kw))
            << SystemKindName(kind) << " step " << step;
      }
    }
    EXPECT_GT(padded.decoys_added(), 0u);
  }
}

}  // namespace
}  // namespace sse::core
