#ifndef SSE_CORE_SCHEME1_MESSAGES_H_
#define SSE_CORE_SCHEME1_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "sse/core/wire_common.h"
#include "sse/net/message.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::core {

/// Wire messages for Scheme 1 (paper §5.2, Figs. 1 and 2).
///
/// Update (MetadataStorage) is the two-round exchange of Fig. 1, batched
/// over all keywords touched by a document batch:
///   round 1: NonceRequest(tokens)      -> NonceReply(F(r) per token)
///   round 2: UpdateRequest(deltas+docs) -> UpdateAck
/// Search is the two-round exchange of Fig. 2:
///   round 1: SearchRequest(token)       -> SearchNonceReply(F(r))
///   round 2: SearchFinish(token, r)     -> SearchResult(ids, documents)
inline constexpr uint16_t kMsgS1NonceRequest = net::kMsgRangeScheme1 + 1;
inline constexpr uint16_t kMsgS1NonceReply = net::kMsgRangeScheme1 + 2;
inline constexpr uint16_t kMsgS1UpdateRequest = net::kMsgRangeScheme1 + 3;
inline constexpr uint16_t kMsgS1UpdateAck = net::kMsgRangeScheme1 + 4;
inline constexpr uint16_t kMsgS1SearchRequest = net::kMsgRangeScheme1 + 5;
inline constexpr uint16_t kMsgS1SearchNonceReply = net::kMsgRangeScheme1 + 6;
inline constexpr uint16_t kMsgS1SearchFinish = net::kMsgRangeScheme1 + 7;
inline constexpr uint16_t kMsgS1SearchResult = net::kMsgRangeScheme1 + 8;

/// Round 1 of an update: the client asks for the current F(r) of every
/// keyword it is about to touch.
struct S1NonceRequest {
  std::vector<Bytes> tokens;  // f_{k_w}(w), one per unique keyword

  net::Message ToMessage() const;
  static Result<S1NonceRequest> FromMessage(const net::Message& msg);
};

struct S1NonceEntry {
  bool present = false;  // does S(w) exist on the server yet?
  Bytes enc_nonce;       // F(r), empty when !present
};

struct S1NonceReply {
  std::vector<S1NonceEntry> entries;  // aligned with request.tokens

  net::Message ToMessage() const;
  static Result<S1NonceReply> FromMessage(const net::Message& msg);
};

/// One keyword's contribution to round 2 of an update.
struct S1UpdateEntry {
  Bytes token;
  /// Existing keyword: U(w) ⊕ G(r) ⊕ G(r'); the server XORs this into the
  /// stored masked bitmap. New keyword: U(w) ⊕ G(r'), stored directly.
  Bytes masked_delta;
  Bytes new_enc_nonce;  // F(r')
  bool is_new = false;
};

struct S1UpdateRequest {
  std::vector<S1UpdateEntry> entries;
  std::vector<WireDocument> documents;

  net::Message ToMessage() const;
  static Result<S1UpdateRequest> FromMessage(const net::Message& msg);
};

struct S1UpdateAck {
  uint64_t keywords_updated = 0;

  net::Message ToMessage() const;
  static Result<S1UpdateAck> FromMessage(const net::Message& msg);
};

struct S1SearchRequest {
  Bytes token;

  net::Message ToMessage() const;
  static Result<S1SearchRequest> FromMessage(const net::Message& msg);
};

struct S1SearchNonceReply {
  bool found = false;
  Bytes enc_nonce;  // F(r) when found

  net::Message ToMessage() const;
  static Result<S1SearchNonceReply> FromMessage(const net::Message& msg);
};

struct S1SearchFinish {
  Bytes token;
  Bytes nonce;  // r, recovered by the client

  net::Message ToMessage() const;
  static Result<S1SearchFinish> FromMessage(const net::Message& msg);
};

struct S1SearchResult {
  std::vector<uint64_t> ids;
  std::vector<WireDocument> documents;

  net::Message ToMessage() const;
  static Result<S1SearchResult> FromMessage(const net::Message& msg);
};

}  // namespace sse::core

#endif  // SSE_CORE_SCHEME1_MESSAGES_H_
