#include "sse/storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sse/storage/faulty_env.h"
#include "test_util.h"

namespace sse::storage {
namespace {

using sse::testing::TempDir;

struct Rec {
  uint64_t seq;
  Bytes payload;
};

std::vector<Rec> ReplayAll(const std::string& dir, WalOptions options = {},
                           WalReplayReport* report = nullptr) {
  std::vector<Rec> records;
  Status s = WriteAheadLog::Replay(
      dir, options, /*min_seq=*/0,
      [&](uint64_t seq, BytesView record) {
        records.push_back(Rec{seq, ToBytes(record)});
        return Status::OK();
      },
      report);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return records;
}

std::string FirstSegment(const std::string& dir) {
  return dir + "/wal.000001.log";
}

// Flips one byte of a file on the real filesystem.
void FlipByte(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, offset, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, offset, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);
}

void Truncate(const std::string& path, long delta) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - delta), 0);
  std::fclose(f);
}

TEST(WalTest, AppendAndReplayWithSequences) {
  TempDir dir;
  {
    auto wal = WriteAheadLog::Open(dir.path());
    SSE_ASSERT_OK_RESULT(wal);
    EXPECT_EQ(wal->next_seq(), 1u);
    SSE_ASSERT_OK(wal->Append(StringToBytes("first")));
    SSE_ASSERT_OK(wal->Append(StringToBytes("second")));
    SSE_ASSERT_OK(wal->Append(Bytes{}));  // empty record allowed
    SSE_ASSERT_OK(wal->Sync());
    EXPECT_EQ(wal->appended_records(), 3u);
    EXPECT_EQ(wal->next_seq(), 4u);
  }
  WalReplayReport report;
  auto records = ReplayAll(dir.path(), {}, &report);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(BytesToString(records[0].payload), "first");
  EXPECT_EQ(records[1].seq, 2u);
  EXPECT_EQ(BytesToString(records[1].payload), "second");
  EXPECT_EQ(records[2].seq, 3u);
  EXPECT_TRUE(records[2].payload.empty());
  EXPECT_EQ(report.segments, 1u);
  EXPECT_EQ(report.lowest_seq, 1u);
  EXPECT_EQ(report.next_seq, 4u);
}

TEST(WalTest, ReplayEmptyDirIsEmpty) {
  TempDir dir;
  WalReplayReport report;
  EXPECT_TRUE(ReplayAll(dir.path(), {}, &report).empty());
  EXPECT_EQ(report.lowest_seq, 0u);
  EXPECT_EQ(report.next_seq, 1u);
}

TEST(WalTest, SequencesContinueAcrossReopens) {
  TempDir dir;
  for (int i = 0; i < 3; ++i) {
    auto wal = WriteAheadLog::Open(dir.path());
    SSE_ASSERT_OK_RESULT(wal);
    EXPECT_EQ(wal->next_seq(), static_cast<uint64_t>(i + 1));
    SSE_ASSERT_OK(wal->Append(StringToBytes("rec" + std::to_string(i))));
    SSE_ASSERT_OK(wal->Sync());
  }
  auto records = ReplayAll(dir.path());
  ASSERT_EQ(records.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) EXPECT_EQ(records[i].seq, i + 1);
}

TEST(WalTest, MinSeqFiltersReplay) {
  TempDir dir;
  {
    auto wal = WriteAheadLog::Open(dir.path());
    SSE_ASSERT_OK_RESULT(wal);
    for (int i = 0; i < 5; ++i) {
      SSE_ASSERT_OK(wal->Append(StringToBytes("r" + std::to_string(i))));
    }
    SSE_ASSERT_OK(wal->Sync());
  }
  std::vector<uint64_t> seqs;
  SSE_ASSERT_OK(WriteAheadLog::Replay(
      dir.path(), {}, /*min_seq=*/4,
      [&](uint64_t seq, BytesView) {
        seqs.push_back(seq);
        return Status::OK();
      }));
  EXPECT_EQ(seqs, (std::vector<uint64_t>{4, 5}));
}

TEST(WalTest, RotationSpreadsRecordsAcrossSegments) {
  TempDir dir;
  WalOptions options;
  options.segment_bytes = 128;  // a few records per segment
  {
    auto wal = WriteAheadLog::Open(dir.path(), options);
    SSE_ASSERT_OK_RESULT(wal);
    for (int i = 0; i < 20; ++i) {
      SSE_ASSERT_OK(wal->Append(Bytes(24, static_cast<uint8_t>(i))));
    }
    SSE_ASSERT_OK(wal->Sync());
  }
  WalReplayReport report;
  auto records = ReplayAll(dir.path(), options, &report);
  ASSERT_EQ(records.size(), 20u);
  EXPECT_GT(report.segments, 2u);
  for (uint64_t i = 0; i < 20; ++i) EXPECT_EQ(records[i].seq, i + 1);

  // Reopening lands in the newest segment and keeps counting.
  auto wal = WriteAheadLog::Open(dir.path(), options);
  SSE_ASSERT_OK_RESULT(wal);
  EXPECT_EQ(wal->next_seq(), 21u);
  SSE_ASSERT_OK(wal->Append(StringToBytes("more")));
  SSE_ASSERT_OK(wal->Sync());
  EXPECT_EQ(ReplayAll(dir.path(), options).size(), 21u);
}

TEST(WalTest, ExplicitRotateSealsSegment) {
  TempDir dir;
  auto wal = WriteAheadLog::Open(dir.path());
  SSE_ASSERT_OK_RESULT(wal);
  SSE_ASSERT_OK(wal->Append(StringToBytes("in segment 1")));
  SSE_ASSERT_OK(wal->Rotate());
  SSE_ASSERT_OK(wal->Append(StringToBytes("in segment 2")));
  SSE_ASSERT_OK(wal->Sync());
  WalReplayReport report;
  auto records = ReplayAll(dir.path(), {}, &report);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(report.segments, 2u);
  EXPECT_TRUE(Env::Default()->FileExists(dir.path() + "/wal.000002.log"));
}

TEST(WalTest, TornTailTolerated) {
  TempDir dir;
  {
    auto wal = WriteAheadLog::Open(dir.path());
    SSE_ASSERT_OK_RESULT(wal);
    SSE_ASSERT_OK(wal->Append(StringToBytes("complete")));
    SSE_ASSERT_OK(wal->Append(StringToBytes("will be torn")));
    SSE_ASSERT_OK(wal->Sync());
  }
  Truncate(FirstSegment(dir.path()), 5);  // crash mid-write
  WalReplayReport report;
  auto records = ReplayAll(dir.path(), {}, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(BytesToString(records[0].payload), "complete");
  EXPECT_GT(report.torn_bytes, 0u);

  // Reopen seals the torn segment; the tear is never buried under new
  // records, and the new segment picks up the unconsumed sequence.
  auto wal = WriteAheadLog::Open(dir.path());
  SSE_ASSERT_OK_RESULT(wal);
  EXPECT_EQ(wal->next_seq(), 2u);
  SSE_ASSERT_OK(wal->Append(StringToBytes("after the tear")));
  SSE_ASSERT_OK(wal->Sync());
  records = ReplayAll(dir.path());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].seq, 2u);
  EXPECT_EQ(BytesToString(records[1].payload), "after the tear");
}

TEST(WalTest, MidSegmentCorruptionDetectedInStrictMode) {
  TempDir dir;
  {
    auto wal = WriteAheadLog::Open(dir.path());
    SSE_ASSERT_OK_RESULT(wal);
    SSE_ASSERT_OK(wal->Append(StringToBytes("one")));
    SSE_ASSERT_OK(wal->Append(StringToBytes("two")));
    SSE_ASSERT_OK(wal->Sync());
  }
  // Flip a payload byte of the FIRST record: 16-byte segment header +
  // 16-byte record header puts its payload at offset 32.
  FlipByte(FirstSegment(dir.path()), 32);
  Status s = WriteAheadLog::Replay(dir.path(), {}, 0,
                                   [](uint64_t, BytesView) {
                                     return Status::OK();
                                   });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(WalTest, SalvageQuarantinesMidSegmentCorruption) {
  TempDir dir;
  {
    auto wal = WriteAheadLog::Open(dir.path());
    SSE_ASSERT_OK_RESULT(wal);
    SSE_ASSERT_OK(wal->Append(StringToBytes("good-1")));
    SSE_ASSERT_OK(wal->Append(StringToBytes("damaged")));
    SSE_ASSERT_OK(wal->Append(StringToBytes("good-3")));
    SSE_ASSERT_OK(wal->Sync());
  }
  // Record 2 starts at 32 + 6; flip a payload byte inside it.
  FlipByte(FirstSegment(dir.path()), 32 + 6 + 16 + 2);
  WalOptions salvage;
  salvage.salvage = true;
  WalReplayReport report;
  auto records = ReplayAll(dir.path(), salvage, &report);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[1].seq, 3u);  // resynced past the damage
  EXPECT_EQ(BytesToString(records[1].payload), "good-3");
  EXPECT_EQ(report.quarantined_records, 1u);
  EXPECT_GT(report.quarantined_bytes, 0u);
  // The damaged range was preserved for forensics.
  auto quarantine =
      Env::Default()->ReadFile(FirstSegment(dir.path()) + ".quarantine");
  SSE_ASSERT_OK_RESULT(quarantine);
  EXPECT_EQ(quarantine->size(), report.quarantined_bytes);
}

TEST(WalTest, SegmentSequenceDiscontinuityDetected) {
  TempDir dir;
  WalOptions options;
  options.segment_bytes = 64;  // force several segments
  {
    auto wal = WriteAheadLog::Open(dir.path(), options);
    SSE_ASSERT_OK_RESULT(wal);
    for (int i = 0; i < 8; ++i) {
      SSE_ASSERT_OK(wal->Append(Bytes(24, static_cast<uint8_t>(i))));
    }
    SSE_ASSERT_OK(wal->Sync());
  }
  WalReplayReport probe;
  ReplayAll(dir.path(), options, &probe);
  ASSERT_GT(probe.segments, 2u);
  // Deleting a MIDDLE segment removes acknowledged records; replay must
  // refuse rather than silently skip them.
  SSE_ASSERT_OK(Env::Default()->Remove(dir.path() + "/wal.000002.log"));
  Status s = WriteAheadLog::Replay(dir.path(), options, 0,
                                   [](uint64_t, BytesView) {
                                     return Status::OK();
                                   });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(WalTest, FailedAppendPoisonsAndTearIsBenign) {
  FaultyEnv env;
  WalOptions options;
  options.env = &env;
  const std::string dir = "/wal";
  uint64_t failed_seq = 0;
  {
    auto wal = WriteAheadLog::Open(dir, options);
    SSE_ASSERT_OK_RESULT(wal);
    SSE_ASSERT_OK(wal->Append(StringToBytes("acked")));
    SSE_ASSERT_OK(wal->Sync());
    failed_seq = wal->next_seq();
    // The next append is cut short mid-frame, as a full disk would.
    env.FailAt(env.ops(), FaultyEnv::FaultKind::kShortWrite);
    EXPECT_FALSE(wal->Append(StringToBytes("torn away")).ok());
    EXPECT_TRUE(wal->poisoned());
    // Fail-stop: every further mutation reports the original cause.
    const Status again = wal->Append(StringToBytes("refused"));
    EXPECT_FALSE(again.ok());
    EXPECT_EQ(again.ToString(), wal->poison_cause().ToString());
    EXPECT_FALSE(wal->Sync().ok());
    EXPECT_EQ(wal->next_seq(), failed_seq);  // seq was not consumed
  }
  // Restart: the torn segment is sealed, its successor starts at the seq
  // the failed append never consumed — replay proves the tear benign.
  env.Crash();
  env.Restart();
  auto wal = WriteAheadLog::Open(dir, options);
  SSE_ASSERT_OK_RESULT(wal);
  EXPECT_EQ(wal->next_seq(), failed_seq);
  SSE_ASSERT_OK(wal->Append(StringToBytes("recovered")));
  SSE_ASSERT_OK(wal->Sync());
  std::vector<uint64_t> seqs;
  SSE_ASSERT_OK(WriteAheadLog::Replay(dir, options, 0,
                                      [&](uint64_t seq, BytesView) {
                                        seqs.push_back(seq);
                                        return Status::OK();
                                      }));
  EXPECT_EQ(seqs, (std::vector<uint64_t>{1, failed_seq}));
}

TEST(WalTest, FailedSyncPoisonsForever) {
  FaultyEnv env;
  WalOptions options;
  options.env = &env;
  auto wal = WriteAheadLog::Open("/wal", options);
  SSE_ASSERT_OK_RESULT(wal);
  SSE_ASSERT_OK(wal->Append(StringToBytes("x")));
  env.FailAt(env.ops(), FaultyEnv::FaultKind::kSyncFail);
  EXPECT_FALSE(wal->Sync().ok());
  EXPECT_TRUE(wal->poisoned());
  // fsyncgate: the sync is never retried, even though the fault was
  // one-shot and a naive retry would "succeed".
  EXPECT_FALSE(wal->Sync().ok());
  EXPECT_FALSE(wal->Append(StringToBytes("y")).ok());
  EXPECT_FALSE(wal->Rotate().ok());
  EXPECT_FALSE(wal->Reset().ok());
}

TEST(WalTest, CompactBeforeDropsOnlyFullyCoveredSegments) {
  TempDir dir;
  WalOptions options;
  options.segment_bytes = 64;
  auto wal = WriteAheadLog::Open(dir.path(), options);
  SSE_ASSERT_OK_RESULT(wal);
  for (int i = 0; i < 8; ++i) {
    SSE_ASSERT_OK(wal->Append(Bytes(24, static_cast<uint8_t>(i))));
  }
  SSE_ASSERT_OK(wal->Sync());
  WalReplayReport before;
  ReplayAll(dir.path(), options, &before);
  ASSERT_GT(before.segments, 2u);

  SSE_ASSERT_OK(wal->CompactBefore(5));
  WalReplayReport after;
  auto records = ReplayAll(dir.path(), options, &after);
  EXPECT_LT(after.segments, before.segments);
  // Everything from seq 5 on is still there (seq 5's segment may also hold
  // earlier records; CompactBefore never cuts into a segment).
  ASSERT_FALSE(records.empty());
  EXPECT_LE(records.front().seq, 5u);
  EXPECT_EQ(records.back().seq, 8u);
  // Never deletes the live segment.
  SSE_ASSERT_OK(wal->CompactBefore(1'000'000));
  SSE_ASSERT_OK(wal->Append(StringToBytes("still writable")));
  SSE_ASSERT_OK(wal->Sync());
}

TEST(WalTest, ResetStartsFreshWithoutReusingSequences) {
  TempDir dir;
  auto wal = WriteAheadLog::Open(dir.path());
  SSE_ASSERT_OK_RESULT(wal);
  SSE_ASSERT_OK(wal->Append(StringToBytes("old")));
  SSE_ASSERT_OK(wal->Sync());
  const uint64_t seq_before = wal->next_seq();
  SSE_ASSERT_OK(wal->Reset());
  EXPECT_EQ(wal->next_seq(), seq_before);  // seqs survive the reset
  SSE_ASSERT_OK(wal->Append(StringToBytes("new")));
  SSE_ASSERT_OK(wal->Sync());
  auto records = ReplayAll(dir.path());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(BytesToString(records[0].payload), "new");
  EXPECT_EQ(records[0].seq, seq_before);
}

TEST(WalTest, TrailingSegmentWithInvalidHeaderDiscardedOnOpen) {
  TempDir dir;
  {
    auto wal = WriteAheadLog::Open(dir.path());
    SSE_ASSERT_OK_RESULT(wal);
    SSE_ASSERT_OK(wal->Append(StringToBytes("keep")));
    SSE_ASSERT_OK(wal->Sync());
  }
  // A crash can leave the next segment as an empty or garbage file whose
  // header never became durable; it cannot hold acknowledged records.
  std::FILE* f = std::fopen((dir.path() + "/wal.000002.log").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("garbage", f);
  std::fclose(f);

  auto wal = WriteAheadLog::Open(dir.path());
  SSE_ASSERT_OK_RESULT(wal);
  EXPECT_EQ(wal->next_seq(), 2u);
  SSE_ASSERT_OK(wal->Append(StringToBytes("next")));
  SSE_ASSERT_OK(wal->Sync());
  auto records = ReplayAll(dir.path());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(BytesToString(records[0].payload), "keep");
  EXPECT_EQ(BytesToString(records[1].payload), "next");
}

TEST(WalTest, ReplayCallbackErrorPropagates) {
  TempDir dir;
  auto wal = WriteAheadLog::Open(dir.path());
  SSE_ASSERT_OK_RESULT(wal);
  SSE_ASSERT_OK(wal->Append(StringToBytes("x")));
  SSE_ASSERT_OK(wal->Sync());
  Status s = WriteAheadLog::Replay(dir.path(), {}, 0,
                                   [](uint64_t, BytesView) {
                                     return Status::Internal("boom");
                                   });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace sse::storage
