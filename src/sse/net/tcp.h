#ifndef SSE_NET_TCP_H_
#define SSE_NET_TCP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sse/net/channel.h"
#include "sse/util/result.h"

namespace sse::net {

/// Loopback/network transport for the protocols: a real TCP server serving
/// any `MessageHandler`, and a matching `Channel` client. Framing is a
/// little-endian u32 length prefix around `Message::Encode()` bytes — the
/// same bytes the in-process channel counts, so measurements transfer.
///
/// Connections are served concurrently (thread per connection). By default
/// the handler — a single-writer state machine for the plain scheme
/// servers — is protected by a per-server mutex, so requests from
/// different clients serialize at the dispatch point. A thread-safe
/// handler (engine::ServerEngine) opts out via
/// Options::serialize_handler=false, and concurrent connections then reach
/// the handler in parallel.
class TcpServer {
 public:
  struct Options {
    /// Serialize all Handle() calls on one mutex. Leave on for handlers
    /// that are not internally synchronized.
    bool serialize_handler = true;
    /// listen(2) backlog.
    int listen_backlog = 64;
  };

  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving `handler`
  /// on a background thread. `handler` must outlive the server.
  static Result<std::unique_ptr<TcpServer>> Start(MessageHandler* handler,
                                                  uint16_t port = 0);
  static Result<std::unique_ptr<TcpServer>> Start(MessageHandler* handler,
                                                  uint16_t port,
                                                  Options options);

  /// The actually bound port.
  uint16_t port() const { return port_; }

  /// Stops accepting and joins the service thread. Idempotent; also run by
  /// the destructor.
  void Stop();

  uint64_t requests_served() const { return requests_served_.load(); }
  uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }

 private:
  TcpServer(MessageHandler* handler, int listen_fd, uint16_t port,
            Options options);
  void Serve();
  void ServeConnection(int fd);

  MessageHandler* handler_;
  int listen_fd_;
  uint16_t port_;
  Options options_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::thread thread_;
  std::mutex handler_mutex_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  std::mutex conns_mutex_;
  std::set<int> open_conns_;
};

/// Client channel over a TCP connection. One `Call` = one request/response
/// round trip on the persistent connection.
class TcpChannel : public Channel {
 public:
  ~TcpChannel() override;
  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  /// Connects to 127.0.0.1:`port` (or `host`).
  static Result<std::unique_ptr<TcpChannel>> Connect(
      uint16_t port, const std::string& host = "127.0.0.1");

  Result<Message> Call(const Message& request) override;
  const ChannelStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Clear(); }

 private:
  explicit TcpChannel(int fd) : fd_(fd) {}
  int fd_;
  ChannelStats stats_;
};

}  // namespace sse::net

#endif  // SSE_NET_TCP_H_
