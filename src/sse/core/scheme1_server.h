#ifndef SSE_CORE_SCHEME1_SERVER_H_
#define SSE_CORE_SCHEME1_SERVER_H_

#include <cstdint>

#include "sse/core/options.h"
#include "sse/core/persistable.h"
#include "sse/core/scheme1_messages.h"
#include "sse/core/token_map.h"
#include "sse/storage/document_store.h"

namespace sse::core {

/// The honest-but-curious server of Scheme 1.
///
/// Per unique keyword it stores the paper's triple
///   S(w) = (f_{k_w}(w),  I(w) ⊕ G(r),  F(r))
/// keyed by the first component in a B+-tree. The server never sees a
/// plaintext bitmap during updates — it only XORs client-supplied deltas —
/// and during a search it unmasks exactly the one bitmap whose nonce the
/// client released (the access-pattern leakage the trace permits).
class Scheme1Server : public PersistableHandler {
 public:
  explicit Scheme1Server(const SchemeOptions& options);

  Result<net::Message> Handle(const net::Message& request) override;

  Result<Bytes> SerializeState() const override;
  Status RestoreState(BytesView data) override;
  bool IsMutating(uint16_t msg_type) const override;

  /// Number of unique keywords stored (u in the paper).
  size_t unique_keywords() const { return index_.size(); }
  size_t document_count() const { return docs_.size(); }
  uint64_t stored_index_bytes() const { return index_bytes_; }

  /// Lookup comparisons performed by the token tree (for T1-search).
  uint64_t index_comparisons() const { return index_.comparisons(); }
  void ResetIndexStats() { index_.ResetStats(); }

  /// Switches document ciphertexts to an on-disk LogStore (see
  /// SchemeOptions::document_log_path). Existing log contents become
  /// visible; any in-memory documents must not exist yet.
  Status UseLogBackedDocuments(const std::string& path);

 private:
  struct Entry {
    Bytes masked_bitmap;  // I(w) ⊕ G(r)
    Bytes enc_nonce;      // F(r)
  };

  Result<net::Message> HandleNonceRequest(const net::Message& msg);
  Result<net::Message> HandleUpdate(const net::Message& msg);
  Result<net::Message> HandleSearchRequest(const net::Message& msg);
  Result<net::Message> HandleSearchFinish(const net::Message& msg);
  Result<net::Message> HandleFetchDocuments(const net::Message& msg);

  SchemeOptions options_;
  TokenMap<Entry> index_;
  storage::DocumentStore docs_;
  uint64_t index_bytes_ = 0;
};

}  // namespace sse::core

#endif  // SSE_CORE_SCHEME1_SERVER_H_
