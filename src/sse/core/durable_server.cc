#include "sse/core/durable_server.h"

#include <utility>
#include <vector>

#include "sse/net/batch.h"
#include "sse/util/serde.h"

namespace sse::core {

namespace {
std::string SnapshotPath(const std::string& dir) { return dir + "/state.snap"; }
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

/// Snapshot wrapper magic, "SDRS": the blob is [magic ‖ bytes(inner state)
/// ‖ bytes(reply cache)]. Snapshots written before the reply cache existed
/// are the bare inner state and restore with an empty cache.
constexpr uint32_t kDurableSnapshotMagic = 0x53445253;
}  // namespace

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    const std::string& dir, PersistableHandler* inner) {
  return Open(dir, inner, Options{});
}

Result<std::unique_ptr<DurableServer>> DurableServer::Open(
    const std::string& dir, PersistableHandler* inner, Options options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("inner handler must be non-null");
  }
  std::unique_ptr<ReplyCache> cache;
  if (options.enable_reply_cache) {
    cache = std::make_unique<ReplyCache>(options.reply_cache);
  }
  // 1. Restore the last checkpoint, if any.
  if (storage::Snapshot::Exists(SnapshotPath(dir))) {
    Bytes blob;
    SSE_ASSIGN_OR_RETURN(blob, storage::Snapshot::Read(SnapshotPath(dir)));
    BufferReader r(blob);
    bool wrapped = false;
    if (blob.size() >= 4) {
      uint32_t magic = 0;
      SSE_ASSIGN_OR_RETURN(magic, r.GetU32());
      wrapped = magic == kDurableSnapshotMagic;
    }
    if (wrapped) {
      Bytes state;
      SSE_ASSIGN_OR_RETURN(state, r.GetBytes());
      Bytes cache_bytes;
      SSE_ASSIGN_OR_RETURN(cache_bytes, r.GetBytes());
      SSE_RETURN_IF_ERROR(r.ExpectEnd());
      SSE_RETURN_IF_ERROR(inner->RestoreState(state));
      if (cache != nullptr && !cache_bytes.empty()) {
        SSE_RETURN_IF_ERROR(cache->Restore(cache_bytes));
      }
    } else {
      SSE_RETURN_IF_ERROR(inner->RestoreState(blob));
    }
  }
  // 2. Replay journaled requests on top. Client-facing replies were already
  // delivered before the crash, but session-stamped ones are re-committed
  // into the reply cache so a post-recovery retry still dedups instead of
  // re-applying.
  Status replay = storage::WriteAheadLog::Replay(
      WalPath(dir), [&](BytesView record) -> Status {
        Result<net::Message> msg = net::Message::Decode(record);
        if (!msg.ok()) return msg.status();
        Result<net::Message> reply = inner->Handle(msg.value());
        if (!reply.ok()) return reply.status();
        if (cache != nullptr && msg->has_session) {
          reply->EchoSession(*msg);
          cache->Commit(msg->client_id, msg->seq, *reply);
        }
        return Status::OK();
      });
  SSE_RETURN_IF_ERROR(replay);

  Result<storage::WriteAheadLog> wal =
      storage::WriteAheadLog::Open(WalPath(dir));
  if (!wal.ok()) return wal.status();
  return std::unique_ptr<DurableServer>(
      new DurableServer(dir, inner, std::move(wal).value(), options,
                        std::move(cache)));
}

Result<net::Message> DurableServer::Handle(const net::Message& request) {
  if (request.type == net::kMsgBatch) return HandleBatch(request);
  const bool mutating = inner_->IsMutating(request.type);
  // Only mutations go through the dedup table: re-executing a read-only
  // retry is harmless, and not recording search results keeps the cache
  // small and the fault-free overhead low.
  const bool dedup =
      mutating && reply_cache_ != nullptr && request.has_session;

  if (dedup) {
    net::Message cached;
    const ReplyCache::Outcome outcome =
        reply_cache_->Begin(request.client_id, request.seq, &cached);
    switch (outcome) {
      case ReplyCache::Outcome::kCached:
        // Retry of an answered call: serve the recorded reply; never
        // re-apply (nor re-journal) the request.
        cached.EchoSession(request);
        return cached;
      case ReplyCache::Outcome::kInFlight:
      case ReplyCache::Outcome::kTooOld:
        return ReplyCache::RefusalStatus(outcome);
      case ReplyCache::Outcome::kNew:
        break;
    }
  }

  if (mutating) {
    // The commit lock spans apply, journal AND the cache commit: a
    // checkpoint can then never capture the applied state without the
    // matching dedup entry (which would let a post-recovery retry
    // double-apply).
    std::shared_lock<std::shared_mutex> commit_lock(commit_mutex_);
    Result<net::Message> reply = HandleNew(request);
    if (dedup) {
      if (reply.ok()) {
        // Runs after the WAL record is durable (HandleNew returns
        // post-sync), so a cache entry never promises a lost update.
        reply->EchoSession(request);
        reply_cache_->Commit(request.client_id, request.seq, *reply);
      } else {
        reply_cache_->Abort(request.client_id, request.seq);
      }
    }
    return reply;
  }

  Result<net::Message> reply = inner_->Handle(request);
  // Stamped read-only calls still get their session echoed (the client
  // matches replies to calls by it) unless the inner handler — e.g. an
  // engine with its own cache — already did.
  if (reply.ok() && request.has_session && !reply->has_session) {
    reply->EchoSession(request);
  }
  return reply;
}

/// Precondition for mutating requests: caller holds commit_mutex_ shared.
Result<net::Message> DurableServer::HandleNew(const net::Message& request) {
  // Apply first, journal second, reply last. Journaling a request the
  // handler would reject poisons the log (replay re-runs the rejection and
  // recovery fails), so only *accepted* mutations are written; because the
  // reply is not produced until the journal entry is durable, an
  // acknowledged update can never be lost. A crash between apply and
  // append loses only an unacknowledged update.
  Result<net::Message> reply = inner_->Handle(request);
  if (!reply.ok()) return reply;
  uint64_t my_seq = 0;
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    SSE_RETURN_IF_ERROR(wal_->Append(request.Encode()));
    my_seq = ++appended_seq_;
    if (options_.sync_every_append && !options_.group_commit) {
      // Per-append-fsync baseline: sync inline under the WAL mutex.
      SSE_RETURN_IF_ERROR(wal_->Sync());
      synced_seq_ = appended_seq_;
      ++syncs_performed_;
      return reply;
    }
  }
  if (options_.sync_every_append) {
    SSE_RETURN_IF_ERROR(SyncUpTo(my_seq));
  }
  return reply;
}

Result<net::Message> DurableServer::HandleBatch(const net::Message& request) {
  net::BatchRequest batch;
  SSE_ASSIGN_OR_RETURN(batch, net::BatchRequest::FromMessage(request));
  const size_t n = batch.ops.size();

  // One shared commit-lock span for the whole envelope: a checkpoint can
  // never slice between a sub-op's apply and its journal record.
  std::shared_lock<std::shared_mutex> commit_lock(commit_mutex_);

  // Sub-ops whose cache commit is deferred until the group sync lands.
  struct PendingCommit {
    size_t index;
    uint64_t seq;
  };
  std::vector<net::Message> outs(n);
  std::vector<PendingCommit> pending;
  uint64_t max_wal_seq = 0;
  bool need_sync = false;

  for (size_t i = 0; i < n; ++i) {
    net::Message sub;
    sub.type = batch.ops[i].type;
    sub.payload = std::move(batch.ops[i].payload);
    if (request.has_session) {
      // (envelope client, op seq) is the op's dedup identity; it is stable
      // across retried envelopes, which is what makes a partial batch
      // retry apply each sub-op exactly once.
      sub.StampSession(request.client_id, batch.ops[i].seq);
    }
    if (sub.type == net::kMsgBatch) {
      outs[i] = net::MakeErrorMessage(
          Status::InvalidArgument("batch envelopes cannot nest"));
      continue;
    }

    const bool mutating = inner_->IsMutating(sub.type);
    const bool dedup =
        mutating && reply_cache_ != nullptr && sub.has_session;
    if (dedup) {
      net::Message cached;
      const ReplyCache::Outcome outcome =
          reply_cache_->Begin(sub.client_id, sub.seq, &cached);
      if (outcome == ReplyCache::Outcome::kCached) {
        cached.EchoSession(sub);
        outs[i] = std::move(cached);
        continue;
      }
      if (outcome != ReplyCache::Outcome::kNew) {
        outs[i] = net::MakeErrorMessage(ReplyCache::RefusalStatus(outcome));
        continue;
      }
    }

    Result<net::Message> reply = inner_->Handle(sub);
    if (!reply.ok()) {
      // Rejected without a state change; a retried envelope may re-run it.
      if (dedup) reply_cache_->Abort(sub.client_id, sub.seq);
      outs[i] = net::MakeErrorMessage(reply.status());
      continue;
    }
    if (mutating) {
      // Journal the accepted sub-op as its own stamped record — replay
      // cannot tell it from a standalone request — but defer the fsync to
      // one group sync after the loop.
      std::lock_guard<std::mutex> lock(wal_mutex_);
      Status appended = wal_->Append(sub.Encode());
      if (!appended.ok()) {
        if (dedup) reply_cache_->Abort(sub.client_id, sub.seq);
        outs[i] = net::MakeErrorMessage(appended);
        continue;
      }
      max_wal_seq = ++appended_seq_;
      need_sync = true;
    }
    if (sub.has_session && !reply->has_session) reply->EchoSession(sub);
    outs[i] = std::move(reply).value();
    if (dedup) pending.push_back(PendingCommit{i, batch.ops[i].seq});
  }

  if (need_sync && options_.sync_every_append) {
    // Even with group_commit off, a batch pays one fsync — amortizing the
    // sync across the envelope is the point of the batch path.
    Status synced = SyncUpTo(max_wal_seq);
    if (!synced.ok()) {
      // Durability is unknown: withdraw the claims so retries re-resolve
      // against whatever state recovery reconstructs.
      for (const PendingCommit& p : pending) {
        reply_cache_->Abort(request.client_id, p.seq);
        outs[p.index] = net::MakeErrorMessage(synced);
      }
      pending.clear();
    }
  }
  for (const PendingCommit& p : pending) {
    reply_cache_->Commit(request.client_id, p.seq, outs[p.index]);
  }

  net::BatchReply breply;
  breply.entries.reserve(n);
  for (net::Message& out : outs) {
    breply.entries.push_back(
        net::BatchReply::Entry{out.type, std::move(out.payload)});
  }
  net::Message reply = breply.ToMessage();
  reply.EchoSession(request);
  return reply;
}

Status DurableServer::SyncUpTo(uint64_t seq) {
  std::unique_lock<std::mutex> lock(wal_mutex_);
  while (synced_seq_ < seq) {
    if (!sync_in_progress_) {
      // Become the leader: one fsync covers every record appended so far,
      // including those of the followers waiting behind us.
      sync_in_progress_ = true;
      const uint64_t target = appended_seq_;
      lock.unlock();
      Status s = wal_->Sync();  // stdio FILE* calls are internally locked
      lock.lock();
      sync_in_progress_ = false;
      if (!s.ok()) {
        sync_cv_.notify_all();
        return s;
      }
      if (target > synced_seq_) synced_seq_ = target;
      ++syncs_performed_;
      sync_cv_.notify_all();
    } else {
      sync_cv_.wait(lock, [this, seq] {
        return synced_seq_ >= seq || !sync_in_progress_;
      });
    }
  }
  return Status::OK();
}

uint64_t DurableServer::wal_syncs() const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  return syncs_performed_;
}

Status DurableServer::Checkpoint() {
  // Exclusive commit lock: no mutation is between apply and journal while
  // the snapshot is cut, so snapshot + truncated WAL is a consistent pair.
  std::unique_lock<std::shared_mutex> commit_lock(commit_mutex_);
  Bytes state;
  SSE_ASSIGN_OR_RETURN(state, inner_->SerializeState());
  BufferWriter w;
  w.PutU32(kDurableSnapshotMagic);
  w.PutBytes(state);
  w.PutBytes(reply_cache_ != nullptr ? reply_cache_->Serialize() : Bytes{});
  SSE_RETURN_IF_ERROR(
      storage::Snapshot::Write(SnapshotPath(dir_), w.TakeData()));
  std::lock_guard<std::mutex> lock(wal_mutex_);
  return wal_->Reset();
}

}  // namespace sse::core
