#include "sse/index/bloom.h"

#include <gtest/gtest.h>

#include <string>

namespace sse::index {
namespace {

TEST(BloomTest, CreateValidation) {
  EXPECT_FALSE(BloomFilter::Create(4, 4).ok());
  EXPECT_FALSE(BloomFilter::Create(64, 0).ok());
  EXPECT_FALSE(BloomFilter::Create(64, 33).ok());
  EXPECT_TRUE(BloomFilter::Create(64, 4).ok());
}

TEST(BloomTest, NoFalseNegatives) {
  auto bloom = BloomFilter::Create(1 << 14, 7);
  ASSERT_TRUE(bloom.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(bloom->Insert(StringToBytes("item" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 500; ++i) {
    auto found = bloom->Contains(StringToBytes("item" + std::to_string(i)));
    ASSERT_TRUE(found.ok());
    EXPECT_TRUE(*found) << "item" << i;
  }
}

TEST(BloomTest, FalsePositiveRateNearTheory) {
  auto bloom = BloomFilter::CreateForCapacity(1000, 0.01);
  ASSERT_TRUE(bloom.ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(bloom->Insert(StringToBytes("in" + std::to_string(i))).ok());
  }
  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    auto found = bloom->Contains(StringToBytes("out" + std::to_string(i)));
    ASSERT_TRUE(found.ok());
    if (*found) ++false_positives;
  }
  const double rate = static_cast<double>(false_positives) / probes;
  EXPECT_LT(rate, 0.03) << "rate=" << rate;  // target 1%, allow 3x slack
  EXPECT_NEAR(bloom->EstimatedFalsePositiveRate(), 0.01, 0.01);
}

TEST(BloomTest, CreateForCapacityValidation) {
  EXPECT_FALSE(BloomFilter::CreateForCapacity(0, 0.01).ok());
  EXPECT_FALSE(BloomFilter::CreateForCapacity(10, 0.0).ok());
  EXPECT_FALSE(BloomFilter::CreateForCapacity(10, 1.0).ok());
}

TEST(BloomTest, FromBitsRoundTrip) {
  auto bloom = BloomFilter::Create(256, 4);
  ASSERT_TRUE(bloom.ok());
  ASSERT_TRUE(bloom->Insert(StringToBytes("alpha")).ok());
  ASSERT_TRUE(bloom->Insert(StringToBytes("beta")).ok());
  auto restored = BloomFilter::FromBits(bloom->bits(), 4);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored->Contains(StringToBytes("alpha")));
  EXPECT_TRUE(*restored->Contains(StringToBytes("beta")));
}

TEST(BloomTest, EmptyFilterContainsNothing) {
  auto bloom = BloomFilter::Create(1024, 5);
  ASSERT_TRUE(bloom.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(*bloom->Contains(StringToBytes("x" + std::to_string(i))));
  }
}

}  // namespace
}  // namespace sse::index
