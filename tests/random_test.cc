#include "sse/util/random.h"

#include <gtest/gtest.h>

#include <set>

namespace sse {
namespace {

TEST(SystemRandomTest, FillsRequestedLength) {
  SystemRandom rng;
  for (size_t n : {0u, 1u, 16u, 1024u}) {
    auto bytes = rng.Generate(n);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes->size(), n);
  }
}

TEST(SystemRandomTest, OutputsDiffer) {
  SystemRandom rng;
  auto a = rng.Generate(32);
  auto b = rng.Generate(32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);  // 2^-256 failure probability
}

TEST(DeterministicRandomTest, SameSeedSameStream) {
  DeterministicRandom a(123);
  DeterministicRandom b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(DeterministicRandomTest, DifferentSeedsDiverge) {
  DeterministicRandom a(1);
  DeterministicRandom b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(DeterministicRandomTest, FillIsDeterministic) {
  DeterministicRandom a(5);
  DeterministicRandom b(5);
  Bytes x(37);
  Bytes y(37);
  ASSERT_TRUE(a.Fill(x).ok());
  ASSERT_TRUE(b.Fill(y).ok());
  EXPECT_EQ(x, y);
}

TEST(DeterministicRandomTest, NextDoubleInUnitInterval) {
  DeterministicRandom rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomSourceTest, UniformU64RespectsBound) {
  DeterministicRandom rng(11);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      auto v = rng.UniformU64(bound);
      ASSERT_TRUE(v.ok());
      EXPECT_LT(*v, bound);
    }
  }
}

TEST(RandomSourceTest, UniformU64RejectsZeroBound) {
  DeterministicRandom rng(1);
  EXPECT_FALSE(rng.UniformU64(0).ok());
}

TEST(RandomSourceTest, UniformU64CoversRange) {
  DeterministicRandom rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(*rng.UniformU64(10));
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 500 draws
}

}  // namespace
}  // namespace sse
