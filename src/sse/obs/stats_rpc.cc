#include "sse/obs/stats_rpc.h"

#include "sse/obs/metrics_registry.h"
#include "sse/obs/trace.h"
#include "sse/util/serde.h"

namespace sse::obs {

net::Message StatsRequest::ToMessage() const {
  BufferWriter w;
  w.PutU8(include_spans ? 1 : 0);
  return net::Message{net::kMsgStats, w.TakeData()};
}

Result<StatsRequest> StatsRequest::FromMessage(const net::Message& msg) {
  if (msg.type != net::kMsgStats) {
    return Status::ProtocolError("not a stats request");
  }
  BufferReader r(msg.payload);
  StatsRequest req;
  uint8_t flags = 0;
  SSE_ASSIGN_OR_RETURN(flags, r.GetU8());
  req.include_spans = (flags & 1) != 0;
  return req;
}

net::Message StatsReply::ToMessage() const {
  BufferWriter w;
  w.PutString(prometheus_text);
  w.PutString(spans_json);
  return net::Message{net::kMsgStatsReply, w.TakeData()};
}

Result<StatsReply> StatsReply::FromMessage(const net::Message& msg) {
  if (msg.type != net::kMsgStatsReply) {
    return Status::ProtocolError("not a stats reply");
  }
  BufferReader r(msg.payload);
  StatsReply reply;
  SSE_ASSIGN_OR_RETURN(reply.prometheus_text, r.GetString());
  SSE_ASSIGN_OR_RETURN(reply.spans_json, r.GetString());
  return reply;
}

net::Message HandleStatsRequest(const net::Message& request) {
  auto parsed = StatsRequest::FromMessage(request);
  if (!parsed.ok()) return net::MakeErrorMessage(parsed.status());
  StatsReply reply;
  reply.prometheus_text = MetricsRegistry::Global().RenderPrometheus();
  if (parsed.value().include_spans) {
    reply.spans_json =
        SpanCollector::ToChromeTraceJson(SpanCollector::Global().Collect());
  }
  net::Message msg = reply.ToMessage();
  msg.EchoSession(request);
  return msg;
}

}  // namespace sse::obs
