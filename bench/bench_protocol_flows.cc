// Experiments F1-F4 — Figures 1-4: the message flows of both protocols —
// plus F5: the fault-free cost of the exactly-once RPC stack, and F6: the
// throughput and frame-count gains of the pipelined multiplexed RPC core
// (kMsgBatch envelopes + MultiCall in-flight window) over real TCP sockets.
//
// The paper's figures are message-sequence diagrams; this bench regenerates
// them as measured per-step transcripts: direction, message type and framed
// size for MetadataStorage (Figs. 1 and 3) and Search (Figs. 2 and 4) of
// both schemes. F5 then runs an identical mixed workload through a bare
// channel and through RetryingChannel + server ReplyCache on a healthy
// link, reporting the overhead of stamping, checksumming and dedup lookups
// when nothing ever fails (target: < 5%). F6 compares sequential
// one-op-per-round-trip searches against pipelined MultiSearch (target:
// >= 3x throughput with 8 ops in flight) and counts the physical frames a
// 64-keyword Store costs when its rounds ride batch envelopes (target:
// <= 4 frames each way).

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme2_client.h"
#include "sse/engine/scheme1_adapter.h"
#include "sse/engine/scheme2_adapter.h"
#include "sse/engine/server_engine.h"
#include "sse/net/channel.h"
#include "sse/net/retry.h"
#include "sse/net/tcp.h"

namespace sse::bench {
namespace {

void PrintTranscript(const std::vector<net::Exchange>& transcript,
                     size_t from_index) {
  for (size_t i = from_index; i < transcript.size(); ++i) {
    const net::Exchange& ex = transcript[i];
    std::printf("  client -> server  %-28s %8zu bytes\n",
                net::MessageTypeName(ex.request.type).c_str(),
                ex.request.WireSize());
    std::printf("  server -> client  %-28s %8zu bytes\n",
                net::MessageTypeName(ex.reply.type).c_str(),
                ex.reply.WireSize());
  }
}

void Run(core::SystemKind kind, const char* update_fig, const char* search_fig) {
  DeterministicRandom rng(21);
  core::SystemConfig config = BenchConfig(/*max_documents=*/4096,
                                          /*chain_length=*/1024);
  config.channel.record_transcript = true;
  core::SseSystem sys = MustCreate(kind, config, &rng);

  // Seed one batch so the flows below hit existing keywords.
  auto seed = phr::GenerateDocuments(32, /*vocabulary=*/16,
                                     /*keywords_per_doc=*/4, 0.8, 9);
  MustOk(sys.client->Store(seed), "seed");
  sys.channel->ClearTranscript();

  std::printf("%s — MetadataStorage flow, %s (1 document, 4 keywords):\n",
              update_fig, std::string(core::SystemKindName(kind)).c_str());
  auto doc = phr::GenerateDocuments(1, 16, 4, 0.8, 77, 64, /*first_id=*/500);
  MustOk(sys.client->Store(doc), "update");
  PrintTranscript(sys.channel->transcript(), 0);
  const size_t after_update = sys.channel->transcript().size();

  std::printf("\n%s — Search flow, %s (keyword with postings):\n", search_fig,
              std::string(core::SystemKindName(kind)).c_str());
  MustValue(sys.client->Search(phr::SyntheticKeyword(0)), "search");
  PrintTranscript(sys.channel->transcript(), after_update);
  std::printf("\n");
}

/// One timed pass of the F5 workload: stores then repeated searches.
double RunExactlyOnceWorkload(core::SystemKind kind, bool exactly_once,
                              size_t docs, size_t searches) {
  DeterministicRandom rng(31);
  core::SystemConfig config = BenchConfig(/*max_documents=*/4096,
                                          /*chain_length=*/8192);
  config.engine_shards = 2;  // the reply cache lives on engine servers
  config.engine_reply_cache = exactly_once;
  config.with_retry = exactly_once;
  core::SseSystem sys = MustCreate(kind, config, &rng);

  auto corpus = phr::GenerateDocuments(docs, /*vocabulary=*/32,
                                       /*keywords_per_doc=*/4, 0.8, 13);
  Timer timer;
  for (const auto& doc : corpus) MustOk(sys.client->Store({doc}), "store");
  for (size_t i = 0; i < searches; ++i) {
    MustValue(sys.client->Search(phr::SyntheticKeyword(i % 32)), "search");
  }
  return timer.ElapsedMillis();
}

void RunOverheadSweep() {
  std::printf(
      "F5 — fault-free overhead of the exactly-once stack (RetryingChannel\n"
      "session stamps + CRC checks, server-side ReplyCache dedup) vs bare\n"
      "calls on a healthy in-process link. Target: < 5%% added latency.\n\n");
  TablePrinter table({"scheme", "ops", "bare ms", "exactly-once ms",
                      "overhead"});
  table.PrintHeader();
  struct Row {
    core::SystemKind kind;
    size_t docs;
    size_t searches;
  };
  for (const Row& row : {Row{core::SystemKind::kScheme1, 128, 256},
                         Row{core::SystemKind::kScheme2, 512, 1024}}) {
    // Warm-up pass absorbs one-time allocator and page-cache effects, then
    // alternate measured passes to keep drift out of the comparison.
    RunExactlyOnceWorkload(row.kind, false, row.docs / 4, row.searches / 4);
    double bare_ms = 0.0;
    double stamped_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      bare_ms +=
          RunExactlyOnceWorkload(row.kind, false, row.docs, row.searches);
      stamped_ms +=
          RunExactlyOnceWorkload(row.kind, true, row.docs, row.searches);
    }
    const double overhead = 100.0 * (stamped_ms - bare_ms) / bare_ms;
    table.PrintRow({std::string(core::SystemKindName(row.kind)),
                    FmtU(row.docs + row.searches), Fmt("%.1f", bare_ms / 3.0),
                    Fmt("%.1f", stamped_ms / 3.0), Fmt("%+.2f%%", overhead)});
  }
  table.PrintRule();
  std::printf("\n");
}

/// A scheme client talking to a sharded engine over a real TCP socket,
/// with the retry layer configured for batched pipelined dispatch.
template <typename ClientT, typename AdapterT>
struct TcpRig {
  TcpRig(const core::SchemeOptions& scheme_options, int batch_size,
         int max_inflight, uint64_t seed)
      : rng(seed) {
    engine::EngineOptions engine_opts;
    engine_opts.num_shards = 4;
    engine = MustValue(engine::ServerEngine::Create(
                           std::make_unique<AdapterT>(scheme_options),
                           engine_opts),
                       "engine");
    net::TcpServer::Options server_opts;
    server_opts.serialize_handler = false;  // the engine is thread-safe
    server = MustValue(net::TcpServer::Start(engine.get(), 0, server_opts),
                       "tcp server");
    channel =
        MustValue(net::TcpChannel::Connect(server->port()), "tcp connect");
    net::RetryOptions retry_opts;
    retry_opts.batch_size = batch_size;
    retry_opts.max_inflight = max_inflight;
    retry = std::make_unique<net::RetryingChannel>(channel.get(), retry_opts,
                                                   &rng);
    client = MustValue(
        ClientT::Create(BenchKey(), scheme_options, retry.get(), &rng),
        "client");
  }

  DeterministicRandom rng;
  std::unique_ptr<engine::ServerEngine> engine;
  std::unique_ptr<net::TcpServer> server;
  std::unique_ptr<net::TcpChannel> channel;
  std::unique_ptr<net::RetryingChannel> retry;
  std::unique_ptr<ClientT> client;
};

void RunPipelinedTcpBench() {
  std::printf(
      "F6 — pipelined multiplexed RPC core over TCP loopback: kMsgBatch\n"
      "envelopes + MultiCall's in-flight window vs the paper's lockstep\n"
      "one-op-per-round-trip flow. Targets: 64-keyword Store <= 4 frames\n"
      "each way; MultiSearch with 8 ops in flight >= 3x sequential search\n"
      "throughput.\n\n");

  // (a) Frame cost of a 64-keyword Store under Scheme 1, the two-round
  // protocol: the nonce round and the update round each collapse into one
  // batch envelope, so the whole Store is 2 frames out + 2 frames back.
  {
    core::SchemeOptions options = BenchConfig().scheme;
    options.batch_ops = true;
    TcpRig<core::Scheme1Client, engine::Scheme1Adapter> rig(
        options, /*batch_size=*/64, /*max_inflight=*/8, /*seed=*/51);
    std::vector<std::string> keywords;
    for (int i = 0; i < 64; ++i) keywords.push_back(phr::SyntheticKeyword(i));
    MustOk(rig.client->Store(
               {core::Document::Make(1, "sixty-four keywords", keywords)}),
           "batched store");
    const net::ChannelStats& stats = rig.channel->stats();
    std::printf(
        "  scheme1 Store, 64 keywords, batch_size=64:\n"
        "    frames sent %llu, received %llu (monolithic flow: 2 per\n"
        "    keyword per direction = 128)\n\n",
        static_cast<unsigned long long>(stats.frames_sent),
        static_cast<unsigned long long>(stats.frames_received));
  }

  // (b) Search throughput under Scheme 2, whose one-round search is
  // RTT-bound on a small index (Scheme 1 spends ~50us per keyword on an
  // ElGamal nonce decrypt, which no transport can amortize): the same 64
  // keywords searched one blocking Call at a time vs one MultiSearch with
  // 8-op envelopes and an 8-envelope window fanned over 4 shards.
  {
    core::SchemeOptions options = BenchConfig(4096, 8192).scheme;
    options.batch_ops = true;
    TcpRig<core::Scheme2Client, engine::Scheme2Adapter> rig(
        options, /*batch_size=*/16, /*max_inflight=*/8, /*seed=*/52);
    const size_t kVocab = 64;
    auto corpus = phr::GenerateDocuments(8, kVocab, /*keywords_per_doc=*/4,
                                         0.8, 19);
    MustOk(rig.client->Store(corpus), "corpus store");
    std::vector<std::string> keywords;
    for (size_t i = 0; i < kVocab; ++i)
      keywords.push_back(phr::SyntheticKeyword(i));

    const int kPasses = 15;
    // Warm-up pass each, then alternate timed passes; report each path's
    // best pass — the microsecond-scale passes make min-of-N the only
    // scheduler-noise-tolerant estimator of the achievable rate.
    for (const std::string& kw : keywords)
      MustValue(rig.client->Search(kw), "warmup search");
    MustValue(rig.client->MultiSearch(keywords), "warmup multisearch");
    double sequential_ms = 1e9;
    double pipelined_ms = 1e9;
    for (int pass = 0; pass < kPasses; ++pass) {
      Timer sequential;
      for (const std::string& kw : keywords)
        MustValue(rig.client->Search(kw), "search");
      sequential_ms = std::min(sequential_ms, sequential.ElapsedMillis());
      Timer pipelined;
      MustValue(rig.client->MultiSearch(keywords), "multisearch");
      pipelined_ms = std::min(pipelined_ms, pipelined.ElapsedMillis());
    }
    const double ops = static_cast<double>(kVocab);
    const double seq_rate = ops / (sequential_ms / 1000.0);
    const double pipe_rate = ops / (pipelined_ms / 1000.0);
    std::printf(
        "  scheme2 search, %zu keywords, best of %d passes, 4 shards:\n"
        "    sequential  %8.1f ops/s  (%.2f ms/pass)\n"
        "    pipelined   %8.1f ops/s  (%.2f ms/pass, batch_size=16,\n"
        "                max_inflight=8)\n"
        "    speedup     %.2fx (target >= 3x)\n\n",
        kVocab, kPasses, seq_rate, sequential_ms, pipe_rate, pipelined_ms,
        pipe_rate / seq_rate);
  }
}

}  // namespace
}  // namespace sse::bench

int main() {
  std::printf(
      "Protocol flows (Figures 1-4). Each line is one framed message as it\n"
      "crossed the instrumented channel. ElGamal group: toy-512; production\n"
      "groups enlarge F(r) to ~0.6-1.2 KB (see bench_crypto).\n\n");
  sse::bench::Run(sse::core::SystemKind::kScheme1, "Figure 1", "Figure 2");
  sse::bench::Run(sse::core::SystemKind::kScheme2, "Figure 3", "Figure 4");
  sse::bench::RunOverheadSweep();
  sse::bench::RunPipelinedTcpBench();
  return 0;
}
