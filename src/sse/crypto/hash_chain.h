#ifndef SSE_CRYPTO_HASH_CHAIN_H_
#define SSE_CRYPTO_HASH_CHAIN_H_

#include <cstdint>
#include <optional>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::crypto {

/// Lamport-style pseudo-random chain (paper §5.4, citing Lamport [17]).
///
/// A chain of length `l` over seed `a` is `e_0 = a`, `e_i = f(e_{i-1})`.
/// Scheme 2 keys the j-th update of keyword `w` with `k_j = e_{l - ctr}`,
/// walking the chain *backwards* as the counter grows. Only the seed holder
/// (the client) can walk backwards; anyone holding `e_i` can walk forwards
/// to `e_{i+1}, e_{i+2}, ...` — which is exactly what lets the server, given
/// the newest key in a trapdoor, recover every *older* segment key but no
/// newer one.
///
/// Instantiations: f = SHA-256("sse.chain.step" ‖ ·) and the public tag
/// function f' = SHA-256("sse.chain.tag" ‖ ·) used to recognize a chain
/// element without revealing it.
class HashChain {
 public:
  /// Creates a chain over `seed` with `length` usable elements
  /// (indices 0 .. length-1, where index i means f applied i times).
  static Result<HashChain> Create(BytesView seed, uint32_t length);

  /// One application of the chain step function f.
  static Result<Bytes> Step(BytesView element);

  /// The public tag f'(element).
  static Result<Bytes> Tag(BytesView element);

  /// Element at `index` (f applied `index` times to the seed). O(index).
  Result<Bytes> ElementAt(uint32_t index) const;

  /// The key the client uses at global counter `ctr`: element `l - ctr`.
  /// Fails with RESOURCE_EXHAUSTED once `ctr > l` — the chain is spent and
  /// the scheme must re-initialize (paper Optimization 2 discussion).
  Result<Bytes> KeyForCounter(uint32_t ctr) const;

  uint32_t length() const { return length_; }

  /// Walks forward from `start` at most `max_steps` applications of f,
  /// looking for an element whose tag equals `target_tag`. Returns the
  /// matching element and the number of steps taken, or NOT_FOUND. This is
  /// the server-side search loop of Scheme 2 (Fig. 4).
  struct WalkResult {
    Bytes element;
    uint32_t steps;
  };
  static Result<WalkResult> WalkForwardToTag(BytesView start,
                                             BytesView target_tag,
                                             uint32_t max_steps);

 private:
  HashChain(Bytes seed, uint32_t length)
      : seed_(std::move(seed)), length_(length) {}
  Bytes seed_;
  uint32_t length_;
};

}  // namespace sse::crypto

#endif  // SSE_CRYPTO_HASH_CHAIN_H_
