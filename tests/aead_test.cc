#include "sse/crypto/aead.h"

#include <gtest/gtest.h>

#include "sse/util/random.h"

namespace sse::crypto {
namespace {

class AeadTest : public ::testing::Test {
 protected:
  AeadTest() : rng_(42), aead_(Aead::Create(Bytes(32, 0x01)).value()) {}
  DeterministicRandom rng_;
  Aead aead_;
};

TEST_F(AeadTest, RoundTrip) {
  Bytes plaintext = StringToBytes("patient record: hypertension");
  Bytes aad = StringToBytes("doc-7");
  auto ct = aead_.Seal(plaintext, aad, rng_);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->size(), plaintext.size() + kAeadOverhead);
  auto pt = aead_.Open(*ct, aad);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, plaintext);
}

TEST_F(AeadTest, EmptyPlaintext) {
  auto ct = aead_.Seal(Bytes{}, Bytes{}, rng_);
  ASSERT_TRUE(ct.ok());
  auto pt = aead_.Open(*ct, Bytes{});
  ASSERT_TRUE(pt.ok());
  EXPECT_TRUE(pt->empty());
}

TEST_F(AeadTest, CiphertextsAreRandomized) {
  Bytes plaintext = StringToBytes("same message");
  auto a = aead_.Seal(plaintext, {}, rng_);
  auto b = aead_.Seal(plaintext, {}, rng_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST_F(AeadTest, TamperedCiphertextRejected) {
  auto ct = aead_.Seal(StringToBytes("secret"), {}, rng_);
  ASSERT_TRUE(ct.ok());
  for (size_t i = 0; i < ct->size(); i += 5) {
    Bytes corrupted = *ct;
    corrupted[i] ^= 0x80;
    EXPECT_FALSE(aead_.Open(corrupted, {}).ok()) << "byte " << i;
  }
}

TEST_F(AeadTest, WrongAadRejected) {
  auto ct = aead_.Seal(StringToBytes("content"), StringToBytes("doc-1"), rng_);
  ASSERT_TRUE(ct.ok());
  EXPECT_FALSE(aead_.Open(*ct, StringToBytes("doc-2")).ok());
  EXPECT_FALSE(aead_.Open(*ct, Bytes{}).ok());
}

TEST_F(AeadTest, WrongKeyRejected) {
  auto other = Aead::Create(Bytes(32, 0x02));
  ASSERT_TRUE(other.ok());
  auto ct = aead_.Seal(StringToBytes("content"), {}, rng_);
  ASSERT_TRUE(ct.ok());
  EXPECT_FALSE(other->Open(*ct, {}).ok());
}

TEST_F(AeadTest, TruncatedCiphertextRejected) {
  auto ct = aead_.Seal(StringToBytes("content"), {}, rng_);
  ASSERT_TRUE(ct.ok());
  Bytes truncated(ct->begin(), ct->begin() + kAeadOverhead - 1);
  EXPECT_FALSE(aead_.Open(truncated, {}).ok());
  EXPECT_FALSE(aead_.Open(Bytes{}, {}).ok());
}

TEST(AeadCreateTest, RejectsWrongKeySize) {
  EXPECT_FALSE(Aead::Create(Bytes(16, 1)).ok());
  EXPECT_FALSE(Aead::Create(Bytes(31, 1)).ok());
  EXPECT_FALSE(Aead::Create(Bytes{}).ok());
  EXPECT_TRUE(Aead::Create(Bytes(32, 1)).ok());
}

TEST(AeadCreateTest, LargePayloadRoundTrip) {
  DeterministicRandom rng(3);
  Aead aead = Aead::Create(Bytes(32, 0x0c)).value();
  Bytes big(1 << 20);
  ASSERT_TRUE(rng.Fill(big).ok());
  auto ct = aead.Seal(big, {}, rng);
  ASSERT_TRUE(ct.ok());
  auto pt = aead.Open(*ct, {});
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, big);
}

}  // namespace
}  // namespace sse::crypto
