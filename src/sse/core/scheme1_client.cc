#include "sse/core/scheme1_client.h"

#include <algorithm>
#include <map>

#include "sse/core/scheme1_messages.h"
#include "sse/crypto/hkdf.h"
#include "sse/crypto/prg.h"
#include "sse/index/posting.h"
#include "sse/util/bitvec.h"
#include "sse/util/serde.h"

namespace sse::core {

namespace {
constexpr size_t kNonceSize = 32;
constexpr const char* kTokenLabel = "s1.token";
}  // namespace

Scheme1Client::Scheme1Client(crypto::Prf prf, crypto::ElGamal elgamal,
                             crypto::Aead aead, const SchemeOptions& options,
                             net::Channel* channel, RandomSource* rng)
    : prf_(std::move(prf)),
      elgamal_(std::move(elgamal)),
      aead_(std::move(aead)),
      options_(options),
      channel_(channel),
      rng_(rng) {}

Result<std::unique_ptr<Scheme1Client>> Scheme1Client::Create(
    const crypto::MasterKey& key, const SchemeOptions& options,
    net::Channel* channel, RandomSource* rng) {
  if (channel == nullptr || rng == nullptr) {
    return Status::InvalidArgument("channel and rng must be non-null");
  }
  Result<crypto::Prf> prf = crypto::Prf::Create(key.keyword_key());
  if (!prf.ok()) return prf.status();
  Bytes elgamal_secret;
  SSE_ASSIGN_OR_RETURN(
      elgamal_secret,
      crypto::HkdfSha256(key.keyword_key(), /*salt=*/{}, "sse.s1.elgamal", 32));
  Result<crypto::ElGamal> elgamal =
      crypto::ElGamal::FromSecret(options.elgamal_group, elgamal_secret);
  if (!elgamal.ok()) return elgamal.status();
  Bytes aead_key;
  SSE_ASSIGN_OR_RETURN(aead_key, crypto::HkdfSha256(key.data_key(), /*salt=*/{},
                                                    "sse.data.aead", 32));
  Result<crypto::Aead> aead = crypto::Aead::Create(aead_key);
  if (!aead.ok()) return aead.status();
  return std::unique_ptr<Scheme1Client>(new Scheme1Client(
      std::move(prf).value(), std::move(elgamal).value(),
      std::move(aead).value(), options, channel, rng));
}

Result<Bytes> Scheme1Client::Trapdoor(std::string_view keyword) const {
  return prf_.EvalLabeled(kTokenLabel, StringToBytes(keyword));
}

Status Scheme1Client::Store(const std::vector<Document>& docs) {
  if (docs.empty()) return Status::OK();
  // Validate identifiers before touching the network.
  for (const Document& doc : docs) {
    if (doc.id >= options_.max_documents) {
      return Status::OutOfRange("document id " + std::to_string(doc.id) +
                                " exceeds bitmap capacity " +
                                std::to_string(options_.max_documents));
    }
    if (used_ids_.count(doc.id) > 0) {
      return Status::AlreadyExists("document id " + std::to_string(doc.id) +
                                   " was already stored");
    }
  }
  // Gather the per-keyword update sets U(w) = {i | w ∈ W_i}.
  std::map<std::string, std::vector<uint64_t>> by_keyword;
  for (const Document& doc : docs) {
    for (const std::string& kw : doc.keywords) {
      by_keyword[kw].push_back(doc.id);
    }
  }
  std::vector<PendingUpdate> updates;
  updates.reserve(by_keyword.size());
  for (auto& [kw, ids] : by_keyword) {
    updates.push_back(PendingUpdate{kw, index::Canonicalize(std::move(ids))});
  }
  SSE_RETURN_IF_ERROR(RunUpdateProtocol(updates, docs));
  for (const Document& doc : docs) used_ids_.insert(doc.id);
  return Status::OK();
}

Status Scheme1Client::FakeUpdate(const std::vector<std::string>& keywords) {
  // Deduplicate: two entries for one keyword in a single protocol run
  // would both be built from the same stale nonce and corrupt the mask.
  const std::set<std::string> unique(keywords.begin(), keywords.end());
  std::vector<PendingUpdate> updates;
  updates.reserve(unique.size());
  for (const std::string& kw : unique) {
    updates.push_back(PendingUpdate{kw, {}});  // U(w) = ∅: re-mask only
  }
  return RunUpdateProtocol(updates, /*documents=*/{});
}

Status Scheme1Client::RemoveDocument(uint64_t id,
                                     const std::vector<std::string>& keywords) {
  if (used_ids_.count(id) == 0) {
    return Status::NotFound("document id " + std::to_string(id) +
                            " is not stored");
  }
  // Deduplicate: toggling the same keyword twice would re-add the id.
  const std::set<std::string> unique(keywords.begin(), keywords.end());
  std::vector<PendingUpdate> updates;
  updates.reserve(unique.size());
  for (const std::string& kw : unique) {
    updates.push_back(PendingUpdate{kw, {id}});  // XOR toggles the bit off
  }
  SSE_RETURN_IF_ERROR(RunUpdateProtocol(updates, /*documents=*/{}));
  used_ids_.erase(id);
  return Status::OK();
}

Status Scheme1Client::RunUpdateProtocol(
    const std::vector<PendingUpdate>& updates,
    const std::vector<Document>& documents) {
  const size_t bitmap_bits = options_.max_documents;

  // Round 1 (Fig. 1, first exchange): request F(r) for every keyword.
  S1NonceRequest nonce_req;
  nonce_req.tokens.reserve(updates.size());
  for (const PendingUpdate& u : updates) {
    Bytes token;
    SSE_ASSIGN_OR_RETURN(token, Trapdoor(u.keyword));
    nonce_req.tokens.push_back(std::move(token));
  }
  net::Message reply_msg;
  SSE_ASSIGN_OR_RETURN(reply_msg, channel_->Call(nonce_req.ToMessage()));
  S1NonceReply nonce_reply;
  SSE_ASSIGN_OR_RETURN(nonce_reply, S1NonceReply::FromMessage(reply_msg));
  if (nonce_reply.entries.size() != updates.size()) {
    return Status::ProtocolError("nonce reply entry count mismatch");
  }

  // Round 2: build the masked deltas.
  S1UpdateRequest update_req;
  update_req.entries.reserve(updates.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    const PendingUpdate& u = updates[i];
    const S1NonceEntry& nonce_entry = nonce_reply.entries[i];

    BitVec delta;
    SSE_ASSIGN_OR_RETURN(delta, BitVec::FromPositions(bitmap_bits, u.ids));
    Bytes payload = delta.ToBytes();  // U(w), plaintext on the client only

    // Fresh nonce r' and its mask G(r').
    Bytes new_nonce;
    SSE_ASSIGN_OR_RETURN(new_nonce, rng_->Generate(kNonceSize));
    Bytes new_mask;
    SSE_ASSIGN_OR_RETURN(new_mask,
                         crypto::PrgExpand(new_nonce, payload.size()));
    SSE_RETURN_IF_ERROR(XorInPlace(payload, new_mask));  // U ⊕ G(r')

    S1UpdateEntry entry;
    entry.token = nonce_req.tokens[i];
    entry.is_new = !nonce_entry.present;
    if (nonce_entry.present) {
      // Recover r and add G(r): the delta becomes U ⊕ G(r) ⊕ G(r').
      Bytes old_nonce;
      SSE_ASSIGN_OR_RETURN(old_nonce, elgamal_.Decrypt(nonce_entry.enc_nonce));
      Bytes old_mask;
      SSE_ASSIGN_OR_RETURN(old_mask,
                           crypto::PrgExpand(old_nonce, payload.size()));
      SSE_RETURN_IF_ERROR(XorInPlace(payload, old_mask));
    }
    entry.masked_delta = std::move(payload);
    SSE_ASSIGN_OR_RETURN(entry.new_enc_nonce,
                         elgamal_.Encrypt(new_nonce, *rng_));
    update_req.entries.push_back(std::move(entry));
  }

  // Encrypted data items ride along in the same round.
  update_req.documents.reserve(documents.size());
  for (const Document& doc : documents) {
    WireDocument wire;
    wire.id = doc.id;
    SSE_ASSIGN_OR_RETURN(
        wire.ciphertext,
        aead_.Seal(doc.content, EncodeDocId(doc.id), *rng_));
    update_req.documents.push_back(std::move(wire));
  }

  net::Message ack_msg;
  SSE_ASSIGN_OR_RETURN(ack_msg, channel_->Call(update_req.ToMessage()));
  S1UpdateAck ack;
  SSE_ASSIGN_OR_RETURN(ack, S1UpdateAck::FromMessage(ack_msg));
  if (ack.keywords_updated != update_req.entries.size()) {
    return Status::ProtocolError("server acknowledged wrong keyword count");
  }
  return Status::OK();
}

Bytes Scheme1Client::SerializeState() const {
  BufferWriter w;
  w.PutVarint(used_ids_.size());
  for (uint64_t id : used_ids_) w.PutVarint(id);
  return w.TakeData();
}

Status Scheme1Client::RestoreState(BytesView data) {
  BufferReader r(data);
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > data.size()) {
    return Status::Corruption("used-id count exceeds payload");
  }
  std::set<uint64_t> used_ids;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    used_ids.insert(id);
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  used_ids_ = std::move(used_ids);
  return Status::OK();
}

Result<SearchOutcome> Scheme1Client::Search(std::string_view keyword) {
  // Round 1 (Fig. 2): send the trapdoor, receive F(r).
  S1SearchRequest req;
  SSE_ASSIGN_OR_RETURN(req.token, Trapdoor(keyword));
  net::Message reply_msg;
  SSE_ASSIGN_OR_RETURN(reply_msg, channel_->Call(req.ToMessage()));
  S1SearchNonceReply nonce_reply;
  SSE_ASSIGN_OR_RETURN(nonce_reply,
                       S1SearchNonceReply::FromMessage(reply_msg));
  if (!nonce_reply.found) {
    return SearchOutcome{};  // keyword never stored
  }

  // Round 2: release r so the server can unmask I(w).
  S1SearchFinish finish;
  finish.token = req.token;
  SSE_ASSIGN_OR_RETURN(finish.nonce, elgamal_.Decrypt(nonce_reply.enc_nonce));
  net::Message result_msg;
  SSE_ASSIGN_OR_RETURN(result_msg, channel_->Call(finish.ToMessage()));
  S1SearchResult result;
  SSE_ASSIGN_OR_RETURN(result, S1SearchResult::FromMessage(result_msg));

  SearchOutcome outcome;
  outcome.ids = result.ids;
  std::sort(outcome.ids.begin(), outcome.ids.end());
  outcome.documents.reserve(result.documents.size());
  for (const WireDocument& wire : result.documents) {
    Bytes plain;
    SSE_ASSIGN_OR_RETURN(plain,
                         aead_.Open(wire.ciphertext, EncodeDocId(wire.id)));
    outcome.documents.emplace_back(wire.id, std::move(plain));
  }
  return outcome;
}

}  // namespace sse::core
