#ifndef SSE_CORE_REPLY_CACHE_H_
#define SSE_CORE_REPLY_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>

#include "sse/net/message.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::core {

/// Server-side at-most-once dedup table: per client, the replies to its
/// most recent session-stamped calls, keyed by sequence number.
///
/// The contract with RetryingChannel: a client stamps every logical call
/// with (client_id, seq) and reuses the stamp across retries, advancing seq
/// only after a call concludes. The server consults the cache BEFORE
/// executing: a seq it already answered is served the cached reply without
/// re-executing (critical for Scheme 1's XOR updates, where re-applying
/// toggles postings back OFF), a seq currently executing on another
/// connection is refused with a retryable verdict, and only genuinely new
/// seqs reach the handler.
///
/// Bounded on three axes: per client the newest `per_client_entries`
/// replies are retained (a synchronous client only ever retries its most
/// recent call, so the window is generous), the least-recently-active
/// clients are evicted beyond `max_clients`, and `max_total_entries` caps
/// the whole table — when exceeded, the oldest entry of the least-recently
/// -active client goes first (LRU at client granularity). A retry older
/// than the retained window is refused as FAILED_PRECONDITION rather than
/// risked — executing it could be a second application.
///
/// Thread-safe; Serialize/Restore make the table part of a snapshot so
/// dedup survives crash recovery (DurableServer additionally rebuilds the
/// entries for journaled mutations during WAL replay).
class ReplyCache {
 public:
  struct Options {
    size_t per_client_entries = 128;
    size_t max_clients = 1024;
    /// Cap on replies retained across ALL clients; 0 = no global bound
    /// (the per-client and per-table client bounds still apply).
    size_t max_total_entries = 0;
  };

  enum class Outcome {
    kNew,       // never seen: execute, then Commit or Abort
    kCached,    // duplicate of an answered call: *cached_reply is the answer
    kInFlight,  // duplicate racing its original: refuse, client retries
    kTooOld,    // retry fell out of the retained window: refuse
  };

  ReplyCache() : ReplyCache(Options{}) {}
  explicit ReplyCache(const Options& options) : options_(options) {}

  /// Claims (client, seq). On kCached fills `cached_reply` (which keeps its
  /// original type/payload; the caller re-echoes the session stamp).
  Outcome Begin(uint64_t client, uint64_t seq, net::Message* cached_reply);

  /// Records the reply for a claimed (client, seq) and releases the claim.
  void Commit(uint64_t client, uint64_t seq, const net::Message& reply);

  /// Releases a claim without recording — the handler rejected the request
  /// (no state change happened), so a retry may legitimately re-execute.
  void Abort(uint64_t client, uint64_t seq);

  /// Maps a non-kNew outcome to the status the client should see.
  static Status RefusalStatus(Outcome outcome);

  /// Snapshot integration. In-flight claims are transient and excluded.
  Bytes Serialize() const;
  Status Restore(BytesView data);

  void Clear();
  size_t client_count() const;
  size_t entry_count() const;
  uint64_t hits() const;       // duplicates served from cache
  uint64_t refusals() const;   // in-flight + too-old rejections
  uint64_t evictions() const;  // reply entries dropped to enforce bounds

 private:
  struct ClientState {
    std::map<uint64_t, Bytes> replies;  // seq -> encoded reply message
    std::set<uint64_t> in_flight;
    uint64_t max_seen = 0;   // highest seq ever claimed
    uint64_t low_water = 0;  // seqs below this may have been evicted
    uint64_t last_used = 0;  // LRU tick
  };

  void EvictClientsLocked();
  void EvictEntriesLocked();
  void DropEntryLocked(ClientState* state,
                       std::map<uint64_t, Bytes>::iterator entry);

  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, ClientState> clients_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t refusals_ = 0;
  uint64_t evictions_ = 0;
  size_t total_entries_ = 0;
};

}  // namespace sse::core

#endif  // SSE_CORE_REPLY_CACHE_H_
