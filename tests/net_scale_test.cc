#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "sse/net/tcp.h"
#include "sse/obs/metrics_registry.h"

namespace sse::net {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

class EchoHandler : public MessageHandler {
 public:
  Result<Message> Handle(const Message& request) override {
    return Message{static_cast<uint16_t>(request.type + 1), request.payload};
  }
};

/// Live thread count of this process, from the kernel's view.
size_t ThreadCount() {
  size_t count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task")) {
    count += 1;
  }
  return count;
}

/// Raises RLIMIT_NOFILE as far as allowed and returns the resulting soft
/// limit, so the soak can size itself to the sandbox.
size_t RaiseFdLimit() {
  struct rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &rl);
    getrlimit(RLIMIT_NOFILE, &rl);
  }
  return static_cast<size_t>(rl.rlim_cur);
}

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool WaitFor(const std::function<bool()>& cond, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

// The refactor's core claim: connections cost file descriptors, not
// threads. Thousands of idle connections leave the process thread count
// exactly where it was, and the server still answers requests promptly.
TEST(NetScaleTest, IdleConnectionSoakKeepsThreadBudgetFixed) {
  const size_t fd_limit = RaiseFdLimit();
  // The soak sizes itself to the sandbox: each connection costs two fds
  // (client end + accepted end), and 256 are reserved for everything else
  // the process holds open. A sandbox too small for a meaningful soak is
  // a skip, not a rigged pass.
  constexpr size_t kReservedFds = 256;
  constexpr size_t kMinTarget = 100;
  if (fd_limit < 2 * kMinTarget + kReservedFds) {
    GTEST_SKIP() << "RLIMIT_NOFILE " << fd_limit << " leaves no room for a "
                 << kMinTarget << "-connection soak";
  }
  size_t target = (fd_limit - kReservedFds) / 2;
  // Cap: beyond this the test measures the sandbox, not the reactor.
  target = std::min<size_t>(target, kUnderTsan ? 500 : 12000);

  EchoHandler handler;
  TcpServer::Options opts;
  opts.serialize_handler = false;
  opts.reactor_loops = 2;
  opts.pipeline_workers = 4;
  auto server = TcpServer::Start(&handler, 0, opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ((*server)->serving_threads(), 2u + 4u);

  const size_t threads_before = ThreadCount();

  std::vector<int> fds;
  fds.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    const int fd = ConnectLoopback((*server)->port());
    ASSERT_GE(fd, 0) << "connect " << i << " failed: " << std::strerror(errno);
    fds.push_back(fd);
  }
  ASSERT_TRUE(WaitFor(
      [&] { return (*server)->connections_active() >= target; }, 10000))
      << "accepted " << (*server)->connections_active() << " of " << target;

  // Thread-per-connection would have spawned `target` threads by now; the
  // reactor spawns none (tolerate a couple of unrelated runtime threads).
  const size_t threads_during = ThreadCount();
  EXPECT_LE(threads_during, threads_before + 2)
      << "thread count grew with connection count";

  // The server still answers a real request while holding them all.
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  const auto t0 = std::chrono::steady_clock::now();
  auto reply = (*channel)->Call(Message{7, Bytes{1, 2, 3}});
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);

  for (const int fd : fds) ::close(fd);
  (*channel).reset();
  EXPECT_TRUE(WaitFor(
      [&] { return (*server)->connections_active() == 0; }, 10000))
      << (*server)->connections_active() << " connections still open";
  (*server)->Stop();
}

// Churn with hostile clients: connections that vanish mid-request, tear a
// frame in half, or write garbage. The server must keep serving polite
// clients throughout and account every connection back down to zero.
TEST(NetScaleTest, ConnectionChurnUnderFaultsKeepsServing) {
  EchoHandler handler;
  TcpServer::Options opts;
  opts.serialize_handler = false;
  auto server = TcpServer::Start(&handler, 0, opts);
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();

  const int kRounds = kUnderTsan ? 20 : 60;
  std::atomic<bool> failed{false};

  std::thread polite([&] {
    // A well-behaved client doing real round trips the whole time.
    auto channel = TcpChannel::Connect(port);
    if (!channel.ok()) {
      failed.store(true);
      return;
    }
    for (int i = 0; i < kRounds && !failed.load(); ++i) {
      auto reply = (*channel)->Call(Message{7, Bytes{static_cast<uint8_t>(i)}});
      if (!reply.ok() || reply->payload != Bytes{static_cast<uint8_t>(i)}) {
        failed.store(true);
      }
    }
  });

  std::thread rude([&] {
    for (int i = 0; i < kRounds; ++i) {
      const int fd = ConnectLoopback(port);
      if (fd < 0) continue;
      switch (i % 3) {
        case 0: {
          // Torn frame: a length prefix promising bytes that never come.
          const uint8_t torn[] = {0x40, 0x00, 0x00, 0x00, 0xAA};
          (void)!::send(fd, torn, sizeof(torn), MSG_NOSIGNAL);
          break;
        }
        case 1: {
          // Framed garbage: decodes as a frame, fails as a Message. The
          // server answers with an error frame instead of dying.
          Bytes wire = EncodeFrame(Bytes{0xDE, 0xAD, 0xBE, 0xEF});
          (void)!::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          break;
        }
        default:
          // Connect-and-slam.
          break;
      }
      ::close(fd);
    }
  });

  polite.join();
  rude.join();
  EXPECT_FALSE(failed.load()) << "polite client failed during churn";
  EXPECT_TRUE(WaitFor(
      [&] { return (*server)->connections_active() == 0; }, 10000))
      << (*server)->connections_active() << " connections leaked";
  EXPECT_GE((*server)->connections_accepted(),
            static_cast<uint64_t>(kRounds));
  (*server)->Stop();
  EXPECT_EQ((*server)->connections_active(), 0u);
}

// Reactor-level idle sweeping: connections with no socket activity and no
// in-flight work are reclaimed after the configured timeout, while a
// connection that keeps talking is left alone.
TEST(NetScaleTest, IdleSweepClosesQuietConnectionsButSparesActiveOnes) {
  auto* swept_counter = obs::MetricsRegistry::Global().GetCounter(
      "sse_net_idle_closed_total");
  const uint64_t swept_before = swept_counter->Value();

  EchoHandler handler;
  TcpServer::Options opts;
  opts.serialize_handler = false;
  opts.idle_timeout_ms = 200;
  auto server = TcpServer::Start(&handler, 0, opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // A handful of connections that never send a byte...
  constexpr size_t kIdle = 8;
  std::vector<int> idle_fds;
  for (size_t i = 0; i < kIdle; ++i) {
    const int fd = ConnectLoopback((*server)->port());
    ASSERT_GE(fd, 0);
    idle_fds.push_back(fd);
  }
  // ...and one client that keeps making real calls through the sweep
  // window (each call resets its activity clock).
  auto channel = TcpChannel::Connect((*server)->port());
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(WaitFor(
      [&] { return (*server)->connections_active() == kIdle + 1; }, 5000));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1500);
  bool survived = true;
  while (std::chrono::steady_clock::now() < deadline) {
    auto reply = (*channel)->Call(Message{7, Bytes{42}});
    if (!reply.ok()) {
      survived = false;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(survived) << "active connection was swept";
  EXPECT_TRUE(WaitFor(
      [&] { return (*server)->connections_active() == 1; }, 5000))
      << (*server)->connections_active()
      << " connections open; idle ones should have been swept";
  EXPECT_GE(swept_counter->Value(), swept_before + kIdle);

  // The swept sockets read EOF from the client side.
  for (const int fd : idle_fds) ::close(fd);
  (*server)->Stop();
}

}  // namespace
}  // namespace sse::net
