#include "sse/net/batch.h"

#include "sse/util/serde.h"

namespace sse::net {

Message BatchRequest::ToMessage() const {
  BufferWriter w;
  w.PutVarint(ops.size());
  for (const Op& op : ops) {
    w.PutVarint(op.seq);
    w.PutU16(op.type);
    w.PutBytes(op.payload);
  }
  Message msg;
  msg.type = kMsgBatch;
  msg.payload = w.TakeData();
  return msg;
}

Result<BatchRequest> BatchRequest::FromMessage(const Message& msg) {
  if (msg.type != kMsgBatch) {
    return Status::ProtocolError("not a batch envelope");
  }
  BufferReader r(msg.payload);
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > msg.payload.size()) {
    return Status::ProtocolError("batch op count exceeds payload");
  }
  BatchRequest batch;
  batch.ops.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Op op;
    SSE_ASSIGN_OR_RETURN(op.seq, r.GetVarint());
    SSE_ASSIGN_OR_RETURN(op.type, r.GetU16());
    SSE_ASSIGN_OR_RETURN(op.payload, r.GetBytes());
    batch.ops.push_back(std::move(op));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return batch;
}

Message BatchReply::ToMessage() const {
  BufferWriter w;
  w.PutVarint(entries.size());
  for (const Entry& e : entries) {
    w.PutU16(e.type);
    w.PutBytes(e.payload);
  }
  Message msg;
  msg.type = kMsgBatchReply;
  msg.payload = w.TakeData();
  return msg;
}

Result<BatchReply> BatchReply::FromMessage(const Message& msg) {
  if (msg.type != kMsgBatchReply) {
    return Status::ProtocolError("not a batch reply");
  }
  BufferReader r(msg.payload);
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > msg.payload.size()) {
    return Status::ProtocolError("batch entry count exceeds payload");
  }
  BatchReply reply;
  reply.entries.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Entry e;
    SSE_ASSIGN_OR_RETURN(e.type, r.GetU16());
    SSE_ASSIGN_OR_RETURN(e.payload, r.GetBytes());
    reply.entries.push_back(std::move(e));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return reply;
}

}  // namespace sse::net
