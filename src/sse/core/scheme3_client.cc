#include "sse/core/scheme3_client.h"

#include <algorithm>

#include "sse/crypto/hash_chain.h"
#include "sse/crypto/hkdf.h"
#include "sse/crypto/stream_cipher.h"
#include "sse/index/posting.h"
#include "sse/util/serde.h"

namespace sse::core {

namespace {
constexpr const char* kTokenLabel = "s3.token";
constexpr const char* kChainLabel = "s3.chain";
}  // namespace

Scheme3Client::Scheme3Client(crypto::Prf prf, crypto::Aead aead,
                             const SchemeOptions& options,
                             net::Channel* channel, RandomSource* rng)
    : prf_(std::move(prf)),
      aead_(std::move(aead)),
      options_(options),
      channel_(channel),
      rng_(rng) {}

Result<std::unique_ptr<Scheme3Client>> Scheme3Client::Create(
    const crypto::MasterKey& key, const SchemeOptions& options,
    net::Channel* channel, RandomSource* rng) {
  if (channel == nullptr || rng == nullptr) {
    return Status::InvalidArgument("channel and rng must be non-null");
  }
  if (options.chain_length == 0) {
    return Status::InvalidArgument("chain_length must be > 0");
  }
  Result<crypto::Prf> prf = crypto::Prf::Create(key.keyword_key());
  if (!prf.ok()) return prf.status();
  Bytes aead_key;
  SSE_ASSIGN_OR_RETURN(aead_key, crypto::HkdfSha256(key.data_key(), /*salt=*/{},
                                                    "sse.data.aead", 32));
  Result<crypto::Aead> aead = crypto::Aead::Create(aead_key);
  if (!aead.ok()) return aead.status();
  return std::unique_ptr<Scheme3Client>(
      new Scheme3Client(std::move(prf).value(), std::move(aead).value(),
                        options, channel, rng));
}

Result<Bytes> Scheme3Client::Token(std::string_view keyword) const {
  // Never leaves the client: it only seeds the per-keyword chain.
  return prf_.EvalLabeled(kTokenLabel, StringToBytes(keyword));
}

Scheme3Client::KeywordState& Scheme3Client::StateFor(
    const Bytes& token) const {
  KeywordState& state = states_[HexEncode(token)];
  if (state.token.empty()) state.token = token;
  return state;
}

Result<Bytes> Scheme3Client::ChainKeyAt(KeywordState& state,
                                        uint32_t ctr) const {
  if (ctr == 0 || ctr > options_.chain_length) {
    return Status::ResourceExhausted(
        "chain counter " + std::to_string(ctr) + " outside [1, " +
        std::to_string(options_.chain_length) + "]");
  }
  // Element index is l - ctr: a *smaller* counter lies forward (more hash
  // applications) of the memoized element, a larger one lies toward the
  // seed and must be recomputed.
  if (state.memo_ctr != 0) {
    if (state.memo_ctr == ctr) return state.memo_element;
    if (ctr < state.memo_ctr) {
      Bytes element = state.memo_element;
      for (uint32_t c = state.memo_ctr; c > ctr; --c) {
        SSE_ASSIGN_OR_RETURN(element, crypto::HashChain::Step(element));
      }
      return element;
    }
  }
  BufferWriter w;
  w.PutRaw(state.token);
  Bytes seed;
  SSE_ASSIGN_OR_RETURN(seed, prf_.EvalLabeled(kChainLabel, w.data()));
  crypto::HashChain chain =
      crypto::HashChain::Create(seed, options_.chain_length).value();
  Bytes element;
  SSE_ASSIGN_OR_RETURN(element, chain.KeyForCounter(ctr));
  state.memo_ctr = ctr;
  state.memo_element = element;
  return element;
}

Result<Scheme3Client::Trapdoor> Scheme3Client::MakeTrapdoor(
    std::string_view keyword) const {
  Bytes token;
  SSE_ASSIGN_OR_RETURN(token, Token(keyword));
  KeywordState& state = StateFor(token);
  if (state.ctr == 0) {
    return Status::FailedPrecondition(
        "keyword has no updates; nothing to release");
  }
  Trapdoor t;
  t.counter = state.ctr;
  SSE_ASSIGN_OR_RETURN(t.chain_element, ChainKeyAt(state, state.ctr));
  return t;
}

Result<uint32_t> Scheme3Client::counter(std::string_view keyword) const {
  Bytes token;
  SSE_ASSIGN_OR_RETURN(token, Token(keyword));
  return StateFor(token).ctr;
}

Status Scheme3Client::Store(const std::vector<Document>& docs) {
  if (docs.empty()) return Status::OK();
  for (const Document& doc : docs) {
    if (used_ids_.count(doc.id) > 0) {
      return Status::AlreadyExists("document id " + std::to_string(doc.id) +
                                   " was already stored");
    }
  }
  std::map<std::string, std::vector<uint64_t>> by_keyword;
  for (const Document& doc : docs) {
    for (const std::string& kw : doc.keywords) {
      by_keyword[kw].push_back(doc.id);
    }
  }
  std::vector<PendingUpdate> updates;
  updates.reserve(by_keyword.size());
  for (auto& [kw, ids] : by_keyword) {
    updates.push_back(PendingUpdate{kw, index::Canonicalize(std::move(ids))});
  }
  SSE_RETURN_IF_ERROR(RunUpdateProtocol(updates, docs));
  for (const Document& doc : docs) used_ids_.insert(doc.id);
  return Status::OK();
}

Status Scheme3Client::FakeUpdate(const std::vector<std::string>& keywords) {
  const std::set<std::string> unique(keywords.begin(), keywords.end());
  std::vector<PendingUpdate> updates;
  updates.reserve(unique.size());
  for (const std::string& kw : unique) {
    updates.push_back(PendingUpdate{kw, {}});  // empty delta
  }
  return RunUpdateProtocol(updates, /*documents=*/{});
}

Status Scheme3Client::RunUpdateProtocol(
    const std::vector<PendingUpdate>& updates,
    const std::vector<Document>& documents) {
  const bool batched = options_.batch_ops && !updates.empty();

  std::vector<S3UpdateEntry> entries;
  entries.reserve(updates.size());
  for (const PendingUpdate& u : updates) {
    Bytes token;
    SSE_ASSIGN_OR_RETURN(token, Token(u.keyword));
    KeywordState& state = StateFor(token);
    if (state.ctr >= options_.chain_length) {
      return Status::ResourceExhausted(
          "keyword's forward-private chain exhausted after " +
          std::to_string(state.ctr) + " updates");
    }
    // Burn the counter now: an ambiguous failure below may still have
    // applied server-side, and reusing it with different content would
    // shadow the stored entry.
    ++state.ctr;
    Bytes key;
    SSE_ASSIGN_OR_RETURN(key, ChainKeyAt(state, state.ctr));

    S3UpdateEntry entry;
    SSE_ASSIGN_OR_RETURN(entry.address, crypto::HashChain::Tag(key));
    Bytes plain;
    SSE_ASSIGN_OR_RETURN(plain, index::EncodeIdList(u.ids));
    Result<crypto::StreamCipher> cipher = crypto::StreamCipher::Create(key);
    if (!cipher.ok()) return cipher.status();
    SSE_ASSIGN_OR_RETURN(entry.ciphertext, cipher->Encrypt(plain, *rng_));
    entries.push_back(std::move(entry));
  }

  std::vector<WireDocument> wire_docs;
  wire_docs.reserve(documents.size());
  for (const Document& doc : documents) {
    WireDocument wire;
    wire.id = doc.id;
    SSE_ASSIGN_OR_RETURN(wire.ciphertext,
                         aead_.Seal(doc.content, EncodeDocId(doc.id), *rng_));
    wire_docs.push_back(std::move(wire));
  }

  if (batched) {
    // One op per keyword, pipelined through MultiCall; documents ride with
    // the first op (the server extracts them before routing).
    std::vector<net::Message> round;
    round.reserve(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      S3UpdateRequest one;
      one.entries.push_back(std::move(entries[i]));
      if (i == 0) one.documents = std::move(wire_docs);
      round.push_back(one.ToMessage());
    }
    std::vector<Result<net::Message>> replies = channel_->MultiCall(round);
    for (Result<net::Message>& ack_msg : replies) {
      if (!ack_msg.ok()) return ack_msg.status();
      S3UpdateAck ack;
      SSE_ASSIGN_OR_RETURN(ack, S3UpdateAck::FromMessage(*ack_msg));
      if (ack.entries_added != 1) {
        return Status::ProtocolError("server acknowledged wrong entry count");
      }
    }
    return Status::OK();
  }

  S3UpdateRequest req;
  req.entries = std::move(entries);
  req.documents = std::move(wire_docs);
  net::Message ack_msg;
  SSE_ASSIGN_OR_RETURN(ack_msg, channel_->Call(req.ToMessage()));
  S3UpdateAck ack;
  SSE_ASSIGN_OR_RETURN(ack, S3UpdateAck::FromMessage(ack_msg));
  if (ack.entries_added != req.entries.size()) {
    return Status::ProtocolError("server acknowledged wrong entry count");
  }
  return Status::OK();
}

Result<SearchOutcome> Scheme3Client::Search(std::string_view keyword) {
  Bytes token;
  SSE_ASSIGN_OR_RETURN(token, Token(keyword));
  KeywordState& state = StateFor(token);
  if (state.ctr == 0) {
    // Never updated: nothing searchable exists and no trapdoor need be
    // released (a keyword the server has never seen stays unseen).
    last_chain_steps_ = 0;
    last_entries_ = 0;
    return SearchOutcome{};
  }
  S3SearchRequest req;
  req.counter = state.ctr;
  SSE_ASSIGN_OR_RETURN(req.chain_element, ChainKeyAt(state, state.ctr));

  net::Message reply_msg;
  SSE_ASSIGN_OR_RETURN(reply_msg, channel_->Call(req.ToMessage()));
  return ParseSearchResult(reply_msg);
}

Result<SearchOutcome> Scheme3Client::ParseSearchResult(
    const net::Message& msg) {
  S3SearchResult result;
  SSE_ASSIGN_OR_RETURN(result, S3SearchResult::FromMessage(msg));
  last_chain_steps_ = result.chain_steps;
  last_entries_ = result.entries_decrypted;

  SearchOutcome outcome;
  if (!result.found) return outcome;
  outcome.ids = result.ids;
  std::sort(outcome.ids.begin(), outcome.ids.end());
  outcome.documents.reserve(result.documents.size());
  for (const WireDocument& wire : result.documents) {
    Bytes plain;
    SSE_ASSIGN_OR_RETURN(plain,
                         aead_.Open(wire.ciphertext, EncodeDocId(wire.id)));
    outcome.documents.emplace_back(wire.id, std::move(plain));
  }
  return outcome;
}

Result<std::vector<SearchOutcome>> Scheme3Client::MultiSearch(
    const std::vector<std::string>& keywords) {
  if (!options_.batch_ops) return SseClientInterface::MultiSearch(keywords);
  const size_t n = keywords.size();
  std::vector<SearchOutcome> outcomes(n);
  if (n == 0) return outcomes;

  // One round: never-updated keywords resolve locally (empty outcome), the
  // rest pipeline through a single MultiCall.
  std::vector<net::Message> round;
  std::vector<size_t> positions;  // round[i] answers keywords[positions[i]]
  for (size_t i = 0; i < n; ++i) {
    Bytes token;
    SSE_ASSIGN_OR_RETURN(token, Token(keywords[i]));
    KeywordState& state = StateFor(token);
    if (state.ctr == 0) continue;
    S3SearchRequest req;
    req.counter = state.ctr;
    SSE_ASSIGN_OR_RETURN(req.chain_element, ChainKeyAt(state, state.ctr));
    round.push_back(req.ToMessage());
    positions.push_back(i);
  }
  if (round.empty()) return outcomes;
  std::vector<Result<net::Message>> replies = channel_->MultiCall(round);
  for (size_t i = 0; i < replies.size(); ++i) {
    if (!replies[i].ok()) return replies[i].status();
    SSE_ASSIGN_OR_RETURN(outcomes[positions[i]],
                         ParseSearchResult(*replies[i]));
  }
  return outcomes;
}

Bytes Scheme3Client::SerializeState() const {
  BufferWriter w;
  w.PutVarint(states_.size());
  for (const auto& [hex, state] : states_) {
    w.PutBytes(state.token);
    w.PutU32(state.ctr);
  }
  w.PutVarint(used_ids_.size());
  for (uint64_t id : used_ids_) w.PutVarint(id);
  return w.TakeData();
}

Status Scheme3Client::RestoreState(BytesView data) {
  BufferReader r(data);
  uint64_t keyword_count = 0;
  SSE_ASSIGN_OR_RETURN(keyword_count, r.GetVarint());
  if (keyword_count > data.size()) {
    return Status::Corruption("keyword count exceeds payload");
  }
  std::map<std::string, KeywordState> states;
  for (uint64_t i = 0; i < keyword_count; ++i) {
    KeywordState state;
    SSE_ASSIGN_OR_RETURN(state.token, r.GetBytes());
    SSE_ASSIGN_OR_RETURN(state.ctr, r.GetU32());
    if (state.ctr > options_.chain_length) {
      return Status::Corruption("restored counter exceeds chain length");
    }
    states[HexEncode(state.token)] = std::move(state);
  }
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > data.size()) {
    return Status::Corruption("used-id count exceeds payload");
  }
  std::set<uint64_t> used_ids;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    SSE_ASSIGN_OR_RETURN(id, r.GetVarint());
    used_ids.insert(id);
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  states_ = std::move(states);  // memos reset with the map
  used_ids_ = std::move(used_ids);
  return Status::OK();
}

}  // namespace sse::core
