#ifndef SSE_UTIL_STATUS_H_
#define SSE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace sse {

/// Error categories used across the library. The set intentionally mirrors
/// the failure domains of an SSE deployment: local argument misuse, crypto
/// failures (bad MAC, decryption failure), protocol violations observed by
/// either party, server-side storage faults, and exhausted resources such as
/// a fully-consumed hash chain (Scheme 2, Optimization 2).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kCryptoError = 6,
  kProtocolError = 7,
  kIoError = 8,
  kCorruption = 9,
  kResourceExhausted = 10,
  kUnimplemented = 11,
  kInternal = 12,
  kUnavailable = 13,
  kDeadlineExceeded = 14,
};

/// Returns a stable, human-readable name for `code` (e.g. "CRYPTO_ERROR").
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic status object carrying an error code and a message.
///
/// The library does not throw exceptions across its public API; every
/// fallible operation returns `Status` or `Result<T>`. `Status` is cheap to
/// copy in the OK case (empty message) and cheap to move always.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status CryptoError(std::string msg) {
    return Status(StatusCode::kCryptoError, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for transient transport-level failures a caller may safely retry
  /// against an at-most-once server: the peer was unreachable or overloaded
  /// (UNAVAILABLE), the call timed out (DEADLINE_EXCEEDED), or the socket
  /// failed mid-exchange (IO_ERROR). Application verdicts (protocol, crypto,
  /// argument errors) are deliberately excluded — re-sending the same bytes
  /// cannot fix them.
  bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kIoError;
  }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller. Usable in any function
/// returning `Status` or `Result<T>` (Result converts from Status).
#define SSE_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::sse::Status _sse_status = (expr);      \
    if (!_sse_status.ok()) return _sse_status; \
  } while (0)

}  // namespace sse

#endif  // SSE_UTIL_STATUS_H_
