#ifndef SSE_CRYPTO_HKDF_H_
#define SSE_CRYPTO_HKDF_H_

#include <cstddef>
#include <string_view>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::crypto {

/// HKDF-SHA-256 (RFC 5869). Used to derive the data key `k_m`, the keyword
/// key `k_w`, and the ElGamal secret from a single master secret, and to
/// split one stream-cipher key into (encryption key, MAC key).
///
/// `info` provides domain separation; `out_len` up to 255*32 bytes.
Result<Bytes> HkdfSha256(BytesView ikm, BytesView salt, std::string_view info,
                         size_t out_len);

/// Expand-only step for already-uniform keys.
Result<Bytes> HkdfExpand(BytesView prk, std::string_view info, size_t out_len);

}  // namespace sse::crypto

#endif  // SSE_CRYPTO_HKDF_H_
