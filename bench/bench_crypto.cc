// Experiment E-crypto — microbenchmarks of every primitive the schemes are
// built from, at production parameters. These anchor the protocol-level
// numbers: e.g. a Scheme 1 search costs ~1 ElGamal decryption client-side
// plus one tree lookup and one PRG expansion server-side.

#include <benchmark/benchmark.h>

#include "sse/crypto/aead.h"
#include "sse/crypto/elgamal.h"
#include "sse/crypto/hash_chain.h"
#include "sse/crypto/hkdf.h"
#include "sse/crypto/prf.h"
#include "sse/crypto/prg.h"
#include "sse/crypto/stream_cipher.h"
#include "sse/util/random.h"

namespace sse::crypto {
namespace {

void BM_PrfEval(benchmark::State& state) {
  Prf prf = Prf::Create(Bytes(32, 1)).value();
  Bytes input(static_cast<size_t>(state.range(0)), 0x61);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prf.Eval(input));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrfEval)->Arg(16)->Arg(64)->Arg(256);

void BM_PrgExpand(benchmark::State& state) {
  Bytes seed(32, 2);
  const size_t len = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrgExpand(seed, len));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(len));
}
// Mask sizes for bitmaps of 2^13..2^20 documents.
BENCHMARK(BM_PrgExpand)->Arg(1024)->Arg(8192)->Arg(131072);

void BM_AeadSeal(benchmark::State& state) {
  DeterministicRandom rng(1);
  Aead aead = Aead::Create(Bytes(32, 3)).value();
  Bytes doc(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead.Seal(doc, {}, rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(256)->Arg(4096)->Arg(65536);

void BM_StreamCipherEncrypt(benchmark::State& state) {
  DeterministicRandom rng(2);
  StreamCipher cipher = StreamCipher::Create(Bytes(32, 4)).value();
  Bytes segment(static_cast<size_t>(state.range(0)), 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.Encrypt(segment, rng));
  }
}
BENCHMARK(BM_StreamCipherEncrypt)->Arg(64)->Arg(1024);

void BM_ElGamalEncrypt(benchmark::State& state) {
  DeterministicRandom rng(3);
  const auto group = static_cast<ElGamalGroupId>(state.range(0));
  ElGamal eg = ElGamal::Generate(group, rng).value();
  Bytes nonce(32, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eg.Encrypt(nonce, rng));
  }
}
BENCHMARK(BM_ElGamalEncrypt)
    ->Arg(static_cast<int>(ElGamalGroupId::kToy512))
    ->Arg(static_cast<int>(ElGamalGroupId::kModp1536))
    ->Arg(static_cast<int>(ElGamalGroupId::kModp2048));

void BM_ElGamalDecrypt(benchmark::State& state) {
  DeterministicRandom rng(4);
  const auto group = static_cast<ElGamalGroupId>(state.range(0));
  ElGamal eg = ElGamal::Generate(group, rng).value();
  Bytes ct = eg.Encrypt(Bytes(32, 6), rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eg.Decrypt(ct));
  }
}
BENCHMARK(BM_ElGamalDecrypt)
    ->Arg(static_cast<int>(ElGamalGroupId::kToy512))
    ->Arg(static_cast<int>(ElGamalGroupId::kModp1536))
    ->Arg(static_cast<int>(ElGamalGroupId::kModp2048));

void BM_ChainStep(benchmark::State& state) {
  Bytes element(32, 7);
  for (auto _ : state) {
    element = HashChain::Step(element).value();
    benchmark::DoNotOptimize(element);
  }
}
BENCHMARK(BM_ChainStep);

void BM_ChainWalk(benchmark::State& state) {
  // Server-side: walk `range` steps to find a tag (Fig. 4 inner loop).
  HashChain chain = HashChain::Create(Bytes(32, 8), 1 << 16).value();
  const uint32_t steps = static_cast<uint32_t>(state.range(0));
  Bytes start = chain.ElementAt(0).value();
  Bytes target_tag = HashChain::Tag(chain.ElementAt(steps).value()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HashChain::WalkForwardToTag(start, target_tag, steps + 1));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_ChainWalk)->Arg(16)->Arg(256)->Arg(4096);

void BM_HkdfDerive(benchmark::State& state) {
  Bytes ikm(32, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HkdfSha256(ikm, {}, "bench", 64));
  }
}
BENCHMARK(BM_HkdfDerive);

}  // namespace
}  // namespace sse::crypto

BENCHMARK_MAIN();
