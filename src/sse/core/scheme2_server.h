#ifndef SSE_CORE_SCHEME2_SERVER_H_
#define SSE_CORE_SCHEME2_SERVER_H_

#include <cstdint>
#include <vector>

#include "sse/core/options.h"
#include "sse/core/persistable.h"
#include "sse/core/scheme2_messages.h"
#include "sse/core/token_map.h"
#include "sse/index/posting.h"
#include "sse/storage/document_store.h"

namespace sse::core {

/// The honest-but-curious server of Scheme 2.
///
/// Per unique keyword it stores the paper's growing list
///   S(w) = (f_{k_w}(w), E_{k_1}(I_1(w)), f'(k_1), ..., E_{k_j}(I_j(w)), f'(k_j))
/// — one encrypted posting segment per update, each tagged with the public
/// image f'(k_j) of its chain key. On a search the server receives the
/// newest usable chain element and walks the chain *forward*, matching tags
/// to recover each older segment key (Fig. 4); it can never walk backward
/// to keys of future updates.
///
/// Optimization 1 (paper §5.6): once a search decrypted a keyword's
/// segments, the union of ids is cached in plaintext, so the next search
/// only decrypts segments added since. The cache is soft state (never
/// serialized) — it reflects information the server has legitimately
/// learned through the access pattern.
class Scheme2Server : public PersistableHandler {
 public:
  explicit Scheme2Server(const SchemeOptions& options);

  Result<net::Message> Handle(const net::Message& request) override;

  Result<Bytes> SerializeState() const override;
  Status RestoreState(BytesView data) override;
  bool IsMutating(uint16_t msg_type) const override;

  size_t unique_keywords() const { return index_.size(); }
  size_t document_count() const { return docs_.size(); }
  uint64_t stored_index_bytes() const { return index_bytes_; }
  uint64_t index_comparisons() const { return index_.comparisons(); }
  void ResetIndexStats() { index_.ResetStats(); }

  /// Total chain steps walked across all searches (Table 1's l/2x term).
  uint64_t total_chain_steps() const { return total_chain_steps_; }
  uint64_t total_segments_decrypted() const {
    return total_segments_decrypted_;
  }

  /// Switches document ciphertexts to an on-disk LogStore (see
  /// SchemeOptions::document_log_path).
  Status UseLogBackedDocuments(const std::string& path);

 private:
  struct Entry {
    std::vector<S2Segment> segments;
    // Optimization 1 cache (soft state): ids decrypted so far and how many
    // segments they cover.
    index::DocIdList cached_ids;
    size_t cached_segments = 0;
  };

  Result<net::Message> HandleUpdate(const net::Message& msg);
  Result<net::Message> HandleSearch(const net::Message& msg);
  Result<net::Message> HandleFetchAll(const net::Message& msg);
  Result<net::Message> HandleReinit(const net::Message& msg);

  SchemeOptions options_;
  TokenMap<Entry> index_;
  storage::DocumentStore docs_;
  uint64_t index_bytes_ = 0;
  uint64_t total_chain_steps_ = 0;
  uint64_t total_segments_decrypted_ = 0;
};

}  // namespace sse::core

#endif  // SSE_CORE_SCHEME2_SERVER_H_
