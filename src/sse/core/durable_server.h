#ifndef SSE_CORE_DURABLE_SERVER_H_
#define SSE_CORE_DURABLE_SERVER_H_

#include <memory>
#include <string>

#include "sse/core/persistable.h"
#include "sse/storage/snapshot.h"
#include "sse/storage/wal.h"

namespace sse::core {

/// Crash-safe shell around any PersistableHandler.
///
/// Layout in `dir`: `state.snap` (last checkpoint) and `wal.log` (mutating
/// request messages journaled since). Recovery = restore snapshot (if any)
/// + re-handle every journaled request; because server handling is
/// deterministic given requests, replay reconstructs the exact state. Only
/// *successfully applied* mutations are journaled, and the reply is
/// withheld until the journal entry is durable — so acknowledged updates
/// survive crashes and rejected requests can never poison recovery. Call
/// Checkpoint() periodically to bound the log.
class DurableServer : public net::MessageHandler {
 public:
  struct Options {
    /// fsync the WAL after every mutating request (safest, slowest).
    bool sync_every_append = true;
  };

  /// Opens (and recovers) a durable server over `inner` in directory `dir`,
  /// which must exist. `inner` must outlive the DurableServer.
  static Result<std::unique_ptr<DurableServer>> Open(
      const std::string& dir, PersistableHandler* inner);
  static Result<std::unique_ptr<DurableServer>> Open(
      const std::string& dir, PersistableHandler* inner, Options options);

  Result<net::Message> Handle(const net::Message& request) override;

  /// Writes a snapshot of the inner state and truncates the WAL.
  Status Checkpoint();

  uint64_t wal_records() const { return wal_->appended_records(); }
  const std::string& directory() const { return dir_; }

 private:
  DurableServer(std::string dir, PersistableHandler* inner,
                storage::WriteAheadLog wal, Options options)
      : dir_(std::move(dir)),
        inner_(inner),
        wal_(std::make_unique<storage::WriteAheadLog>(std::move(wal))),
        options_(options) {}

  std::string dir_;
  PersistableHandler* inner_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  Options options_;
};

}  // namespace sse::core

#endif  // SSE_CORE_DURABLE_SERVER_H_
