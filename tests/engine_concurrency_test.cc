// Multi-threaded stress tests for the sharded engine and the layers that
// become concurrent with it: TcpServer without handler serialization and
// DurableServer group commit. These are the tests scripts/ci.sh runs under
// ThreadSanitizer (ctest label "concurrency").

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sse/core/durable_server.h"
#include "sse/core/scheme1_client.h"
#include "sse/engine/scheme1_adapter.h"
#include "sse/engine/server_engine.h"
#include "sse/net/tcp.h"
#include "test_util.h"

namespace sse {
namespace {

using ::sse::testing::FastTestConfig;
using ::sse::testing::TempDir;
using ::sse::testing::TestMasterKey;

std::unique_ptr<engine::ServerEngine> MakeEngine(size_t shards) {
  engine::EngineOptions options;
  options.num_shards = shards;
  auto eng = engine::ServerEngine::Create(
      std::make_unique<engine::Scheme1Adapter>(FastTestConfig().scheme),
      options);
  EXPECT_TRUE(eng.ok()) << eng.status().ToString();
  return std::move(eng).value();
}

std::unique_ptr<core::Scheme1Client> MakeClient(net::Channel* channel,
                                                RandomSource* rng) {
  auto client = core::Scheme1Client::Create(
      TestMasterKey(), FastTestConfig().scheme, channel, rng);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

/// Keyword owned exclusively by writer thread `t`; concurrent updates to
/// the *same* keyword are a protocol-level race for Scheme 1 (the client
/// would reuse the nonce), so writers keep disjoint keyword sets — the
/// engine's job is to make that safe, not to change the protocol.
std::string WriterKeyword(size_t t, int i) {
  return "w" + std::to_string(t) + "-" + std::to_string(i);
}

// Readers hammer preloaded keywords while writers grow the index with
// disjoint keywords; every read must see exactly the preloaded ids and
// every write must land.
TEST(EngineConcurrencyTest, InterleavedSearchesAndUpdates) {
  const size_t kShards = 8;
  auto eng = MakeEngine(kShards);

  // Preload: stable keywords whose result sets never change.
  DeterministicRandom setup_rng(31);
  net::InProcessChannel setup_channel(eng.get());
  auto setup_client = MakeClient(&setup_channel, &setup_rng);
  std::vector<core::Document> preload;
  for (uint64_t i = 0; i < 8; ++i) {
    preload.push_back(core::Document::Make(
        i, "stable " + std::to_string(i),
        {"stable" + std::to_string(i % 4), "everywhere"}));
  }
  SSE_ASSERT_OK(setup_client->Store(preload));

  const size_t kWriters = 2;
  const size_t kReaders = 3;
  const int kOpsPerWriter = 12;
  const int kOpsPerReader = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  for (size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      DeterministicRandom rng(100 + t);
      net::InProcessChannel channel(eng.get());
      auto client = MakeClient(&channel, &rng);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        // Disjoint id space per writer, above the preloaded ids.
        const uint64_t id = 16 + t * kOpsPerWriter + i;
        Status s = client->Store({core::Document::Make(
            id, "doc", {WriterKeyword(t, i)})});
        if (!s.ok()) failures.fetch_add(1);
      }
    });
  }
  for (size_t t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      DeterministicRandom rng(200 + t);
      net::InProcessChannel channel(eng.get());
      auto client = MakeClient(&channel, &rng);
      for (int i = 0; i < kOpsPerReader; ++i) {
        auto outcome = client->Search("stable" + std::to_string(i % 4));
        if (!outcome.ok() || outcome->ids.size() != 2 ||
            outcome->documents.size() != 2) {
          failures.fetch_add(1);
          continue;
        }
        if (i % 8 == 0) {
          auto all = client->Search("everywhere");
          if (!all.ok() || all->ids.size() != 8) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Every concurrent write landed and is findable afterwards.
  for (size_t t = 0; t < kWriters; ++t) {
    for (int i = 0; i < kOpsPerWriter; ++i) {
      auto outcome = setup_client->Search(WriterKeyword(t, i));
      SSE_ASSERT_OK_RESULT(outcome);
      EXPECT_EQ(outcome->ids.size(), 1u) << WriterKeyword(t, i);
    }
  }
  const engine::MetricsSnapshot snap = eng->Metrics();
  EXPECT_GE(snap.requests,
            static_cast<uint64_t>(kReaders * kOpsPerReader));
}

// Shard states survive a serialize/restore cycle taken while the engine is
// under read load (SerializeState locks shards shared, so concurrent
// searches are legal during the snapshot).
TEST(EngineConcurrencyTest, SnapshotUnderReadLoad) {
  auto eng = MakeEngine(4);
  DeterministicRandom setup_rng(37);
  net::InProcessChannel setup_channel(eng.get());
  auto setup_client = MakeClient(&setup_channel, &setup_rng);
  std::vector<core::Document> docs;
  for (uint64_t i = 0; i < 12; ++i) {
    docs.push_back(core::Document::Make(i, "d", {"k" + std::to_string(i % 3)}));
  }
  SSE_ASSERT_OK(setup_client->Store(docs));

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread reader([&] {
    DeterministicRandom rng(38);
    net::InProcessChannel channel(eng.get());
    auto client = MakeClient(&channel, &rng);
    int i = 0;
    while (!stop.load()) {
      auto outcome = client->Search("k" + std::to_string(i++ % 3));
      if (!outcome.ok() || outcome->ids.size() != 4) failures.fetch_add(1);
    }
  });

  Result<Bytes> state = Status::Internal("unset");
  for (int i = 0; i < 5; ++i) state = eng->SerializeState();
  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  SSE_ASSERT_OK_RESULT(state);

  auto restored = MakeEngine(4);
  SSE_ASSERT_OK(restored->RestoreState(*state));
  net::InProcessChannel channel(restored.get());
  DeterministicRandom rng(39);
  auto client = MakeClient(&channel, &rng);
  auto outcome = client->Search("k1");
  SSE_ASSERT_OK_RESULT(outcome);
  EXPECT_EQ(outcome->ids, (std::vector<uint64_t>{1, 4, 7, 10}));
}

// Multiple TCP connections reach a thread-safe engine concurrently when
// handler serialization is off.
TEST(EngineConcurrencyTest, TcpServerConcurrentConnections) {
  auto eng = MakeEngine(8);
  net::TcpServer::Options options;
  options.serialize_handler = false;
  auto server = net::TcpServer::Start(eng.get(), /*port=*/0, options);
  SSE_ASSERT_OK_RESULT(server);
  const uint16_t port = (*server)->port();

  const size_t kThreads = 3;
  const int kOps = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto channel = net::TcpChannel::Connect(port);
      if (!channel.ok()) {
        failures.fetch_add(1);
        return;
      }
      DeterministicRandom rng(300 + t);
      auto client = MakeClient(channel->get(), &rng);
      for (int i = 0; i < kOps; ++i) {
        const uint64_t id = t * kOps + i;
        const std::string kw = WriterKeyword(t, i);
        if (!client->Store({core::Document::Make(id, "tcp doc", {kw})}).ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto outcome = client->Search(kw);
        if (!outcome.ok() || outcome->ids != std::vector<uint64_t>{id}) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE((*server)->connections_accepted(), kThreads);
  EXPECT_GE((*server)->requests_served(),
            static_cast<uint64_t>(kThreads * kOps * 2));
  (*server)->Stop();
}

// Concurrent mutations through DurableServer: group commit batches fsyncs,
// a mid-run checkpoint quiesces correctly, and recovery replays to the
// exact same searchable state.
TEST(EngineConcurrencyTest, DurableGroupCommitAndRecovery) {
  TempDir dir;
  const size_t kThreads = 3;
  const int kOps = 8;
  {
    auto eng = MakeEngine(4);
    auto durable = core::DurableServer::Open(dir.path(), eng.get());
    SSE_ASSERT_OK_RESULT(durable);

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        DeterministicRandom rng(400 + t);
        net::InProcessChannel channel(durable->get());
        auto client = MakeClient(&channel, &rng);
        for (int i = 0; i < kOps; ++i) {
          const uint64_t id = t * kOps + i;
          Status s = client->Store(
              {core::Document::Make(id, "durable", {WriterKeyword(t, i)})});
          if (!s.ok()) failures.fetch_add(1);
        }
      });
    }
    // A checkpoint racing the writers: it must block them, not tear them.
    threads.emplace_back([&] {
      for (int i = 0; i < 2; ++i) {
        Status s = (*durable)->Checkpoint();
        if (!s.ok()) failures.fetch_add(1);
      }
    });
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);
    // Group commit only merges fsyncs: never more than one per mutation.
    EXPECT_LE((*durable)->wal_syncs(),
              static_cast<uint64_t>(kThreads * kOps));
  }

  // Reopen: snapshot + WAL replay must reconstruct every update.
  auto eng = MakeEngine(4);
  auto durable = core::DurableServer::Open(dir.path(), eng.get());
  SSE_ASSERT_OK_RESULT(durable);
  net::InProcessChannel channel(durable->get());
  DeterministicRandom rng(41);
  auto client = MakeClient(&channel, &rng);
  for (size_t t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOps; ++i) {
      auto outcome = client->Search(WriterKeyword(t, i));
      SSE_ASSERT_OK_RESULT(outcome);
      EXPECT_EQ(outcome->ids,
                (std::vector<uint64_t>{t * kOps + static_cast<uint64_t>(i)}))
          << WriterKeyword(t, i);
    }
  }
}

}  // namespace
}  // namespace sse
