file(REMOVE_RECURSE
  "CMakeFiles/durable_server_test.dir/durable_server_test.cc.o"
  "CMakeFiles/durable_server_test.dir/durable_server_test.cc.o.d"
  "durable_server_test"
  "durable_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
