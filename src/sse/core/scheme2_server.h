#ifndef SSE_CORE_SCHEME2_SERVER_H_
#define SSE_CORE_SCHEME2_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "sse/core/options.h"
#include "sse/core/persistable.h"
#include "sse/core/scheme2_messages.h"
#include "sse/core/token_map.h"
#include "sse/index/posting.h"
#include "sse/obs/metrics_registry.h"
#include "sse/storage/document_store.h"

namespace sse::core {

/// The honest-but-curious server of Scheme 2.
///
/// Per unique keyword it stores the paper's growing list
///   S(w) = (f_{k_w}(w), E_{k_1}(I_1(w)), f'(k_1), ..., E_{k_j}(I_j(w)), f'(k_j))
/// — one encrypted posting segment per update, each tagged with the public
/// image f'(k_j) of its chain key. On a search the server receives the
/// newest usable chain element and walks the chain *forward*, matching tags
/// to recover each older segment key (Fig. 4); it can never walk backward
/// to keys of future updates.
///
/// Optimization 1 (paper §5.6): once a search decrypted a keyword's
/// segments, the union of ids is cached in plaintext, so the next search
/// only decrypts segments added since. The cache is soft state (never
/// serialized) — it reflects information the server has legitimately
/// learned through the access pattern.
class Scheme2Server : public PersistableHandler {
 public:
  explicit Scheme2Server(const SchemeOptions& options);

  Result<net::Message> Handle(const net::Message& request) override;

  Result<Bytes> SerializeState() const override;
  Status RestoreState(BytesView data) override;
  bool IsMutating(uint16_t msg_type) const override;

  size_t unique_keywords() const { return index_.size(); }
  size_t document_count() const { return docs_.size(); }
  uint64_t stored_index_bytes() const { return index_bytes_; }
  uint64_t index_comparisons() const { return index_.comparisons(); }
  void ResetIndexStats() { index_.ResetStats(); }

  /// Total chain steps walked across all searches (Table 1's l/2x term).
  uint64_t total_chain_steps() const { return total_chain_steps_; }
  uint64_t total_segments_decrypted() const {
    return total_segments_decrypted_;
  }

  /// Keywords currently holding a decrypted posting-list cache, and how
  /// many such caches the LRU bound has dropped (see
  /// SchemeOptions::plaintext_cache_max_entries).
  size_t plaintext_cache_entries() const {
    return cache_entries_.load(std::memory_order_relaxed);
  }
  uint64_t plaintext_cache_evictions() const {
    return cache_evictions_.load(std::memory_order_relaxed);
  }

  /// Switches document ciphertexts to an on-disk LogStore (see
  /// SchemeOptions::document_log_path).
  Status UseLogBackedDocuments(const std::string& path);

 private:
  struct Entry {
    std::vector<S2Segment> segments;
    // Optimization 1 cache (soft state): ids decrypted so far and how many
    // segments they cover.
    index::DocIdList cached_ids;
    size_t cached_segments = 0;
  };

  Result<net::Message> HandleUpdate(const net::Message& msg);
  Result<net::Message> HandleSearch(const net::Message& msg);
  Result<net::Message> HandleFetchAll(const net::Message& msg);
  Result<net::Message> HandleReinit(const net::Message& msg);

  /// Marks `token` most-recently-searched in the plaintext-cache LRU and
  /// evicts over-bound victims (clearing their Entry cache fields). No-op
  /// when the bound is off.
  void TouchPlaintextCache(const Bytes& token);
  /// Forgets all LRU bookkeeping (index rebuilt: reinit/restore).
  void ResetPlaintextCacheLru();

  SchemeOptions options_;
  TokenMap<Entry> index_;
  storage::DocumentStore docs_;
  uint64_t index_bytes_ = 0;
  uint64_t total_chain_steps_ = 0;
  uint64_t total_segments_decrypted_ = 0;

  // LRU over tokens with a live plaintext cache, MRU at the front. The
  // atomics mirror sizes for the metrics scrape thread; all structural
  // mutation happens under the owner's handler serialization.
  std::list<Bytes> cache_lru_;
  std::map<Bytes, std::list<Bytes>::iterator> cache_pos_;
  std::atomic<size_t> cache_entries_{0};
  std::atomic<uint64_t> cache_evictions_{0};
  std::vector<obs::MetricsRegistry::Registration> registrations_;
};

}  // namespace sse::core

#endif  // SSE_CORE_SCHEME2_SERVER_H_
