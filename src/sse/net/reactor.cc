#include "sse/net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sse/obs/metrics_registry.h"

namespace sse::net {

namespace {

/// Distribution of ready events per epoll_wait wakeup (value = event
/// count, not a duration): a proxy for how batched the loop runs under
/// fan-in. Registered once per process, merged across all loops.
obs::LatencyHistogram& EpollWaitHistogram() {
  static auto* h = [] {
    auto* hist = new obs::LatencyHistogram();
    static auto reg = obs::MetricsRegistry::Global().RegisterHistogram(
        "sse_net_epoll_wait",
        [hist] { return hist->Snap(); },
        "Ready events per epoll_wait wakeup across reactor loops "
        "(count, not time)");
    return hist;
  }();
  return *h;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
}

EventLoop::~EventLoop() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Start() {
  if (started_.exchange(true)) return;
  // Register the wake eventfd before the thread runs so the first Post
  // cannot race the registration.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  thread_ = std::thread([this] {
    loop_thread_id_.store(std::this_thread::get_id());
    Run();
  });
}

void EventLoop::Stop() {
  if (!started_.load()) return;
  if (!stopping_.exchange(true)) Wake();
  if (thread_.joinable() && !InLoopThread()) thread_.join();
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.push_back(std::move(fn));
  }
  Wake();
}

void EventLoop::RunInLoop(std::function<void()> fn) {
  if (InLoopThread()) {
    fn();
  } else {
    Post(std::move(fn));
  }
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n;
  do {
    n = ::write(wake_fd_, &one, sizeof(one));
  } while (n < 0 && errno == EINTR);
}

void EventLoop::DrainWakeFd() {
  uint64_t buf;
  ssize_t n;
  do {
    n = ::read(wake_fd_, &buf, sizeof(buf));
  } while (n > 0 || (n < 0 && errno == EINTR));
}

Status EventLoop::Add(int fd, uint32_t events, Handler* handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IoError("epoll_ctl(ADD) failed: " +
                           std::string(std::strerror(errno)));
  }
  handlers_[fd] = handler;
  return Status::OK();
}

Status EventLoop::Mod(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IoError("epoll_ctl(MOD) failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

void EventLoop::Del(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::SchedulePeriodic(uint64_t period_ms, std::function<void()> fn) {
  if (period_ms == 0) period_ms = 1;
  PeriodicTask task;
  task.period_ms = period_ms;
  task.fn = std::move(fn);
  task.next_due =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(period_ms);
  periodics_.push_back(std::move(task));
}

int EventLoop::NextTimeoutMs() const {
  if (periodics_.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  auto earliest = periodics_.front().next_due;
  for (const PeriodicTask& task : periodics_) {
    if (task.next_due < earliest) earliest = task.next_due;
  }
  if (earliest <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(earliest - now)
          .count() +
      1;
  return static_cast<int>(ms);
}

void EventLoop::RunDuePeriodics() {
  if (periodics_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  for (PeriodicTask& task : periodics_) {
    if (now >= task.next_due) {
      task.fn();
      task.next_due = now + std::chrono::milliseconds(task.period_ms);
    }
  }
}

void EventLoop::RunPending() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    tasks.swap(pending_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, NextTimeoutMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone; nothing sane left to do
    }
    EpollWaitHistogram().Record(static_cast<uint64_t>(n));
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWakeFd();
        continue;
      }
      // Look the handler up per event: an earlier handler in this batch
      // may have closed this fd (Del erases the entry), in which case the
      // stale readiness bit is simply dropped.
      auto it = handlers_.find(fd);
      if (it != handlers_.end()) it->second->OnEvents(events[i].events);
    }
    RunPending();
    RunDuePeriodics();
  }
  // Run closures posted up to the stop point so resources they carry
  // (shared connection handles, completion notifications) are released.
  RunPending();
}

Reactor::Reactor(size_t loops) {
  if (loops == 0) loops = 1;
  loops_.reserve(loops);
  for (size_t i = 0; i < loops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
}

Reactor::~Reactor() { Stop(); }

void Reactor::Start() {
  for (auto& loop : loops_) loop->Start();
}

void Reactor::Stop() {
  for (auto& loop : loops_) loop->Stop();
}

EventLoop* Reactor::NextLoop() {
  return loops_[next_.fetch_add(1, std::memory_order_relaxed) % loops_.size()]
      .get();
}

}  // namespace sse::net
