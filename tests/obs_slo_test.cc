// Unit tests for the sliding-window SLO tracker: bucket rotation across
// idle gaps and ring wraps, burn-rate arithmetic against the class
// objective, latency-threshold attainment vs availability, window
// clamping, concurrent recording (the TSan target), and the rendered
// gauge family / summary line.

#include "sse/obs/slo.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "sse/obs/metrics_registry.h"

namespace sse {
namespace {

using obs::SloClass;
using obs::SloOptions;
using obs::SloTracker;

SloOptions SmallRing() {
  SloOptions opts;
  opts.bucket_seconds = 1;
  opts.buckets = 16;
  opts.fast_window_s = 4;
  opts.slow_window_s = 8;
  return opts;
}

TEST(SloTrackerTest, EmptyWindowIsPerfect) {
  SloTracker tracker(SmallRing());
  const auto w = tracker.WindowAt(SloClass::kSearch, 4, /*now_s=*/1000);
  EXPECT_EQ(w.total, 0u);
  EXPECT_DOUBLE_EQ(w.availability(), 1.0);
  EXPECT_DOUBLE_EQ(w.attainment(), 1.0);
  EXPECT_DOUBLE_EQ(tracker.BurnRate(SloClass::kSearch, w), 0.0);
}

TEST(SloTrackerTest, CountsErrorsAndSlowSuccessesSeparately) {
  SloOptions opts = SmallRing();
  opts.latency_threshold_us[0] = 1000;  // search: 1 ms
  SloTracker tracker(opts);
  const int64_t now = 5000;
  // 7 good, 2 slow successes, 1 error.
  for (int i = 0; i < 7; ++i) {
    tracker.RecordAt(SloClass::kSearch, 100'000, true, now);
  }
  tracker.RecordAt(SloClass::kSearch, 5'000'000, true, now);
  tracker.RecordAt(SloClass::kSearch, 2'000'000, true, now);
  tracker.RecordAt(SloClass::kSearch, 100'000, false, now);
  const auto w = tracker.WindowAt(SloClass::kSearch, 4, now);
  EXPECT_EQ(w.total, 10u);
  EXPECT_EQ(w.errors, 1u);
  EXPECT_EQ(w.slow, 2u);
  // Availability only counts errors; attainment also counts slow.
  EXPECT_DOUBLE_EQ(w.availability(), 0.9);
  EXPECT_DOUBLE_EQ(w.attainment(), 0.7);
}

TEST(SloTrackerTest, ZeroThresholdDisablesLatencyCriterion) {
  SloOptions opts = SmallRing();
  opts.latency_threshold_us[0] = 0;
  SloTracker tracker(opts);
  tracker.RecordAt(SloClass::kSearch, 60'000'000'000ull, true, 100);
  const auto w = tracker.WindowAt(SloClass::kSearch, 4, 100);
  EXPECT_EQ(w.slow, 0u);
  EXPECT_DOUBLE_EQ(w.attainment(), 1.0);
}

TEST(SloTrackerTest, BurnRateAgainstObjective) {
  SloOptions opts = SmallRing();
  opts.objective[0] = 0.99;  // 1% budget
  SloTracker tracker(opts);
  const int64_t now = 200;
  // 10% bad -> burn = 0.10 / 0.01 = 10.
  for (int i = 0; i < 90; ++i) {
    tracker.RecordAt(SloClass::kSearch, 0, true, now);
  }
  for (int i = 0; i < 10; ++i) {
    tracker.RecordAt(SloClass::kSearch, 0, false, now);
  }
  const auto w = tracker.WindowAt(SloClass::kSearch, 4, now);
  EXPECT_NEAR(tracker.BurnRate(SloClass::kSearch, w), 10.0, 1e-9);
}

TEST(SloTrackerTest, IdleGapsAreExcludedFromWindows) {
  SloTracker tracker(SmallRing());
  tracker.RecordAt(SloClass::kMutation, 0, false, /*now_s=*/100);
  // Four seconds later the sample is still inside the 8 s window...
  auto w = tracker.WindowAt(SloClass::kMutation, 8, 104);
  EXPECT_EQ(w.total, 1u);
  // ...but well past the window it is gone, without any explicit decay
  // pass having run (epoch mismatch, not zeroing, excludes it).
  w = tracker.WindowAt(SloClass::kMutation, 8, 130);
  EXPECT_EQ(w.total, 0u);
  EXPECT_DOUBLE_EQ(w.attainment(), 1.0);
}

TEST(SloTrackerTest, RingWrapReclaimsAndZeroesSlots) {
  SloOptions opts = SmallRing();  // 16 buckets
  SloTracker tracker(opts);
  const int64_t t0 = 1000;
  tracker.RecordAt(SloClass::kSearch, 0, false, t0);
  // A full ring later the same physical slot is re-claimed for the new
  // epoch; the old error must not leak into the new window.
  const int64_t t1 = t0 + 16;
  tracker.RecordAt(SloClass::kSearch, 0, true, t1);
  const auto w = tracker.WindowAt(SloClass::kSearch, 4, t1);
  EXPECT_EQ(w.total, 1u);
  EXPECT_EQ(w.errors, 0u);
}

TEST(SloTrackerTest, WindowLongerThanRingIsClamped) {
  SloTracker tracker(SmallRing());
  const int64_t now = 50;
  for (int64_t s = now - 15; s <= now; ++s) {
    tracker.RecordAt(SloClass::kControl, 0, true, s);
  }
  // Asking for an hour only sums the 16 live buckets once each.
  const auto w = tracker.WindowAt(SloClass::kControl, 3600, now);
  EXPECT_EQ(w.total, 16u);
}

TEST(SloTrackerTest, ClassesAreIndependent) {
  SloTracker tracker(SmallRing());
  tracker.RecordAt(SloClass::kSearch, 0, false, 100);
  EXPECT_EQ(tracker.WindowAt(SloClass::kSearch, 4, 100).errors, 1u);
  EXPECT_EQ(tracker.WindowAt(SloClass::kMutation, 4, 100).total, 0u);
  EXPECT_EQ(tracker.WindowAt(SloClass::kControl, 4, 100).total, 0u);
}

TEST(SloTrackerTest, SnapshotVerdictsAndWindows) {
  SloOptions opts = SmallRing();
  opts.objective[0] = 0.9;
  SloTracker tracker(opts);
  const int64_t now = 300;
  // Old traffic inside the slow (8 s) window only: all good.
  for (int i = 0; i < 400; ++i) {
    tracker.RecordAt(SloClass::kSearch, 0, true, now - 6);
  }
  // Recent traffic inside the fast (4 s) window: half bad.
  for (int i = 0; i < 25; ++i) {
    tracker.RecordAt(SloClass::kSearch, 0, true, now);
    tracker.RecordAt(SloClass::kSearch, 0, false, now);
  }
  const auto report = tracker.SnapshotAt(now);
  const auto& r = report.of(SloClass::kSearch);
  EXPECT_EQ(r.fast.total, 50u);
  EXPECT_EQ(r.slow.total, 450u);
  // Fast window: 25/50 bad, attainment 0.5 < 0.9 -> violated, burn 5x.
  EXPECT_FALSE(r.fast_ok);
  EXPECT_NEAR(r.fast_burn, 5.0, 1e-9);
  // Slow window dilutes the incident: 25/450 bad, ~0.944 > 0.9 -> ok.
  EXPECT_TRUE(r.slow_ok);
  EXPECT_LT(r.slow_burn, 1.0);
}

TEST(SloTrackerTest, MergeComposesWindows) {
  SloTracker::Window a{/*total=*/10, /*errors=*/1, /*slow=*/2};
  SloTracker::Window b{/*total=*/30, /*errors=*/3, /*slow=*/0};
  a.Merge(b);
  EXPECT_EQ(a.total, 40u);
  EXPECT_EQ(a.errors, 4u);
  EXPECT_EQ(a.slow, 2u);
  EXPECT_DOUBLE_EQ(a.availability(), 0.9);
}

TEST(SloTrackerTest, ConcurrentRecordersLoseNothingWithinAnEpoch) {
  SloOptions opts = SmallRing();
  SloTracker tracker(opts);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  const int64_t now = 700;  // one fixed epoch: no rotation races by design
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker, now, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracker.RecordAt(SloClass::kSearch, 0, (t + i) % 10 != 0, now);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto w = tracker.WindowAt(SloClass::kSearch, 4, now);
  EXPECT_EQ(w.total, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(w.errors, static_cast<uint64_t>(kThreads * kPerThread / 10));
}

TEST(SloTrackerTest, ConcurrentRotationStaysSane) {
  // Threads record across advancing epochs while a reader snapshots.
  // The documented rotation race may drop a bounded number of samples;
  // the invariants are: no crash, no TSan report, and derived ratios
  // stay inside [0, 1].
  SloTracker tracker(SmallRing());
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto report = tracker.SnapshotAt(900);
      const auto& w = report.of(SloClass::kSearch).fast;
      EXPECT_GE(w.availability(), 0.0);
      EXPECT_LE(w.availability(), 1.0);
      EXPECT_GE(w.attainment(), 0.0);
      EXPECT_LE(w.attainment(), 1.0);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&tracker, t] {
      for (int i = 0; i < 20000; ++i) {
        tracker.RecordAt(SloClass::kSearch, 1000, i % 7 != 0,
                         890 + (i % 16) + t);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();
}

TEST(SloTrackerTest, RegistersGaugeFamily) {
  obs::MetricsRegistry registry;
  SloTracker tracker(SmallRing());
  auto regs = tracker.RegisterGauges(registry);
  tracker.Record(SloClass::kSearch, 0, true);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("sse_slo_search_attainment"), std::string::npos);
  EXPECT_NE(text.find("sse_slo_mutation_burn_fast"), std::string::npos);
  EXPECT_NE(text.find("sse_slo_control_window_total"), std::string::npos);
}

TEST(SloTrackerTest, SummarySkipsIdleAndFlagsViolations) {
  SloOptions opts = SmallRing();
  opts.objective[0] = 0.999;
  SloTracker tracker(opts);
  EXPECT_EQ(tracker.Summary(), "(no traffic)");
  for (int i = 0; i < 10; ++i) {
    tracker.Record(SloClass::kSearch, 0, i != 0);  // 10% errors
  }
  const std::string line = tracker.Summary();
  EXPECT_NE(line.find("search"), std::string::npos);
  EXPECT_NE(line.find("VIOLATED"), std::string::npos);
  // Idle classes stay out of the line unless asked for.
  EXPECT_EQ(line.find("control"), std::string::npos);
  EXPECT_NE(tracker.Summary(/*include_idle=*/true).find("control"),
            std::string::npos);
}

TEST(SloRecordingGateTest, TogglesProcessWide) {
  EXPECT_TRUE(obs::SloRecordingEnabled());
  obs::SetSloRecordingEnabled(false);
  EXPECT_FALSE(obs::SloRecordingEnabled());
  obs::SetSloRecordingEnabled(true);
  EXPECT_TRUE(obs::SloRecordingEnabled());
}

}  // namespace
}  // namespace sse
