#include "sse/core/scheme1_messages.h"

#include "sse/util/serde.h"

namespace sse::core {

namespace {

Status CheckType(const net::Message& msg, uint16_t want) {
  if (msg.type != want) {
    return Status::ProtocolError("expected message type " +
                                 net::MessageTypeName(want) + ", got " +
                                 net::MessageTypeName(msg.type));
  }
  return Status::OK();
}

}  // namespace

net::Message S1NonceRequest::ToMessage() const {
  BufferWriter w;
  PutBytesList(w, tokens);
  return net::Message{kMsgS1NonceRequest, w.TakeData()};
}

Result<S1NonceRequest> S1NonceRequest::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS1NonceRequest));
  BufferReader r(msg.payload);
  S1NonceRequest out;
  SSE_ASSIGN_OR_RETURN(out.tokens, GetBytesList(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S1NonceReply::ToMessage() const {
  BufferWriter w;
  w.PutVarint(entries.size());
  for (const S1NonceEntry& e : entries) {
    w.PutBool(e.present);
    w.PutBytes(e.enc_nonce);
  }
  return net::Message{kMsgS1NonceReply, w.TakeData()};
}

Result<S1NonceReply> S1NonceReply::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS1NonceReply));
  BufferReader r(msg.payload);
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > r.remaining()) {
    return Status::Corruption("nonce entry count exceeds payload");
  }
  S1NonceReply out;
  out.entries.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    S1NonceEntry e;
    SSE_ASSIGN_OR_RETURN(e.present, r.GetBool());
    SSE_ASSIGN_OR_RETURN(e.enc_nonce, r.GetBytes());
    out.entries.push_back(std::move(e));
  }
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S1UpdateRequest::ToMessage() const {
  BufferWriter w;
  w.PutVarint(entries.size());
  for (const S1UpdateEntry& e : entries) {
    w.PutBytes(e.token);
    w.PutBytes(e.masked_delta);
    w.PutBytes(e.new_enc_nonce);
    w.PutBool(e.is_new);
  }
  PutWireDocuments(w, documents);
  return net::Message{kMsgS1UpdateRequest, w.TakeData()};
}

Result<S1UpdateRequest> S1UpdateRequest::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS1UpdateRequest));
  BufferReader r(msg.payload);
  uint64_t count = 0;
  SSE_ASSIGN_OR_RETURN(count, r.GetVarint());
  if (count > r.remaining()) {
    return Status::Corruption("update entry count exceeds payload");
  }
  S1UpdateRequest out;
  out.entries.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    S1UpdateEntry e;
    SSE_ASSIGN_OR_RETURN(e.token, r.GetBytes());
    SSE_ASSIGN_OR_RETURN(e.masked_delta, r.GetBytes());
    SSE_ASSIGN_OR_RETURN(e.new_enc_nonce, r.GetBytes());
    SSE_ASSIGN_OR_RETURN(e.is_new, r.GetBool());
    out.entries.push_back(std::move(e));
  }
  SSE_ASSIGN_OR_RETURN(out.documents, GetWireDocuments(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S1UpdateAck::ToMessage() const {
  BufferWriter w;
  w.PutVarint(keywords_updated);
  return net::Message{kMsgS1UpdateAck, w.TakeData()};
}

Result<S1UpdateAck> S1UpdateAck::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS1UpdateAck));
  BufferReader r(msg.payload);
  S1UpdateAck out;
  SSE_ASSIGN_OR_RETURN(out.keywords_updated, r.GetVarint());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S1SearchRequest::ToMessage() const {
  BufferWriter w;
  w.PutBytes(token);
  return net::Message{kMsgS1SearchRequest, w.TakeData()};
}

Result<S1SearchRequest> S1SearchRequest::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS1SearchRequest));
  BufferReader r(msg.payload);
  S1SearchRequest out;
  SSE_ASSIGN_OR_RETURN(out.token, r.GetBytes());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S1SearchNonceReply::ToMessage() const {
  BufferWriter w;
  w.PutBool(found);
  w.PutBytes(enc_nonce);
  return net::Message{kMsgS1SearchNonceReply, w.TakeData()};
}

Result<S1SearchNonceReply> S1SearchNonceReply::FromMessage(
    const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS1SearchNonceReply));
  BufferReader r(msg.payload);
  S1SearchNonceReply out;
  SSE_ASSIGN_OR_RETURN(out.found, r.GetBool());
  SSE_ASSIGN_OR_RETURN(out.enc_nonce, r.GetBytes());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S1SearchFinish::ToMessage() const {
  BufferWriter w;
  w.PutBytes(token);
  w.PutBytes(nonce);
  return net::Message{kMsgS1SearchFinish, w.TakeData()};
}

Result<S1SearchFinish> S1SearchFinish::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS1SearchFinish));
  BufferReader r(msg.payload);
  S1SearchFinish out;
  SSE_ASSIGN_OR_RETURN(out.token, r.GetBytes());
  SSE_ASSIGN_OR_RETURN(out.nonce, r.GetBytes());
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

net::Message S1SearchResult::ToMessage() const {
  BufferWriter w;
  PutIdList(w, ids);
  PutWireDocuments(w, documents);
  return net::Message{kMsgS1SearchResult, w.TakeData()};
}

Result<S1SearchResult> S1SearchResult::FromMessage(const net::Message& msg) {
  SSE_RETURN_IF_ERROR(CheckType(msg, kMsgS1SearchResult));
  BufferReader r(msg.payload);
  S1SearchResult out;
  SSE_ASSIGN_OR_RETURN(out.ids, GetIdList(r));
  SSE_ASSIGN_OR_RETURN(out.documents, GetWireDocuments(r));
  SSE_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

}  // namespace sse::core
