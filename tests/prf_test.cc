#include "sse/crypto/prf.h"

#include <gtest/gtest.h>

#include <set>

#include "sse/util/random.h"

namespace sse::crypto {
namespace {

Bytes TestKey(uint8_t fill = 0x42) { return Bytes(32, fill); }

TEST(PrfTest, HmacKnownVector) {
  // RFC 4231 test case 2: key "Jefe", data "what do ya want for nothing?".
  auto mac = HmacSha256(StringToBytes("Jefe"),
                        StringToBytes("what do ya want for nothing?"));
  ASSERT_TRUE(mac.ok());
  EXPECT_EQ(HexEncode(*mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(PrfTest, CreateRejectsShortKeys) {
  EXPECT_FALSE(Prf::Create(Bytes(15, 1)).ok());
  EXPECT_TRUE(Prf::Create(Bytes(16, 1)).ok());
}

TEST(PrfTest, Deterministic) {
  auto prf = Prf::Create(TestKey());
  ASSERT_TRUE(prf.ok());
  auto a = prf->Eval(StringToBytes("diabetes"));
  auto b = prf->Eval(StringToBytes("diabetes"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(a->size(), kPrfOutputSize);
}

TEST(PrfTest, DifferentInputsDifferentOutputs) {
  auto prf = Prf::Create(TestKey());
  ASSERT_TRUE(prf.ok());
  std::set<std::string> outputs;
  for (int i = 0; i < 100; ++i) {
    auto out = prf->Eval("keyword" + std::to_string(i));
    ASSERT_TRUE(out.ok());
    outputs.insert(HexEncode(*out));
  }
  EXPECT_EQ(outputs.size(), 100u);
}

TEST(PrfTest, DifferentKeysDifferentOutputs) {
  auto a = Prf::Create(TestKey(1));
  auto b = Prf::Create(TestKey(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a->Eval(StringToBytes("x")), *b->Eval(StringToBytes("x")));
}

TEST(PrfTest, LabeledEvalSeparatesDomains) {
  auto prf = Prf::Create(TestKey());
  ASSERT_TRUE(prf.ok());
  auto t1 = prf->EvalLabeled("s1.token", StringToBytes("w"));
  auto t2 = prf->EvalLabeled("s2.token", StringToBytes("w"));
  auto plain = prf->Eval(StringToBytes("w"));
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_NE(*t1, *t2);
  EXPECT_NE(*t1, *plain);
}

TEST(PrfTest, LabeledEvalNotConfusableByConcat) {
  // EvalLabeled("ab", "c") must differ from EvalLabeled("a", "bc"):
  // the 0x00 separator prevents ambiguity.
  auto prf = Prf::Create(TestKey());
  ASSERT_TRUE(prf.ok());
  auto a = prf->EvalLabeled("ab", StringToBytes("c"));
  auto b = prf->EvalLabeled("a", StringToBytes("bc"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST(PrfTest, StringAndBytesOverloadsAgree) {
  auto prf = Prf::Create(TestKey());
  ASSERT_TRUE(prf.ok());
  EXPECT_EQ(*prf->Eval("hello"), *prf->Eval(StringToBytes("hello")));
}

}  // namespace
}  // namespace sse::crypto
