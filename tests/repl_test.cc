// Replication layer: primary→follower WAL shipping over real loopback
// TCP, sequence-based catch-up, snapshot catch-up past the compaction
// horizon, epoch fencing, promotion through the ordinary recovery path,
// and the client-side failover router. The state machine under
// replication is a tiny XOR register — double-applying any record flips
// a cell back, so exactly-once violations are directly observable.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sse/core/persistable.h"
#include "sse/net/retry.h"
#include "sse/net/tcp.h"
#include "sse/obs/stats_rpc.h"
#include "sse/repl/failover_channel.h"
#include "sse/repl/messages.h"
#include "sse/repl/node.h"
#include "test_util.h"

namespace sse::repl {
namespace {

using net::TcpServer;
using sse::testing::TempDir;

// Toy protocol in an unused type range: kOpSet XORs a value into a keyed
// cell (mutating, NOT idempotent), kOpGet reads a cell back.
constexpr uint16_t kOpSet = 0x0700;
constexpr uint16_t kOpSetAck = 0x0701;
constexpr uint16_t kOpGet = 0x0702;
constexpr uint16_t kOpGetReply = 0x0703;

class XorRegisterHandler : public core::PersistableHandler {
 public:
  Result<net::Message> Handle(const net::Message& request) override {
    if (request.type == kOpSet) {
      if (request.payload.size() != 2) {
        return Status::InvalidArgument("set wants key,value");
      }
      cells_[request.payload[0]] ^= request.payload[1];
      return net::Message{kOpSetAck, {}};
    }
    if (request.type == kOpGet) {
      if (request.payload.size() != 1) {
        return Status::InvalidArgument("get wants key");
      }
      return net::Message{kOpGetReply, Bytes{cells_[request.payload[0]]}};
    }
    return Status::InvalidArgument("unknown op");
  }

  Result<Bytes> SerializeState() const override {
    Bytes out;
    for (const auto& [key, value] : cells_) {
      out.push_back(key);
      out.push_back(value);
    }
    return out;
  }

  Status RestoreState(BytesView data) override {
    if (data.size() % 2 != 0) return Status::Corruption("odd register blob");
    cells_.clear();
    for (size_t i = 0; i < data.size(); i += 2) cells_[data[i]] = data[i + 1];
    return Status::OK();
  }

  bool IsMutating(uint16_t msg_type) const override {
    return msg_type == kOpSet;
  }

 private:
  std::map<uint8_t, uint8_t> cells_;
};

ReplNode::HandlerFactory XorFactory() {
  return [] { return std::make_unique<XorRegisterHandler>(); };
}

net::Message SetOp(uint8_t key, uint8_t value) {
  return net::Message{kOpSet, Bytes{key, value}};
}

net::Message GetOp(uint8_t key) { return net::Message{kOpGet, Bytes{key}}; }

bool WaitFor(const std::function<bool()>& cond, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

/// Grabs an ephemeral port the kernel considers free right now (bind(0) +
/// close). SO_REUSEADDR on the server's listener makes the later rebind
/// reliable; the window for another process to steal it is negligible in
/// the test sandbox.
uint16_t ReservePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TcpServer::Options NodeServerOptions() {
  net::TcpServer::Options opts;
  // ReplNode injects per-node sse_repl_* lines into the stats RPC itself;
  // TcpServer must not answer from the (shared, process-wide) registry.
  opts.serve_stats = false;
  return opts;
}

/// Fast-converging replication knobs for tests.
ReplSender::Options FastSenderOptions() {
  ReplSender::Options opts;
  opts.probe_interval_ms = 20;
  opts.connect_timeout_ms = 500;
  opts.io_timeout_ms = 2000;
  opts.initial_backoff_ms = 10;
  opts.max_backoff_ms = 100;
  return opts;
}

/// One in-process node: directory, ReplNode, TcpServer.
struct TestNode {
  TempDir dir;
  std::unique_ptr<ReplNode> node;
  std::unique_ptr<TcpServer> server;

  uint16_t port() const { return server->port(); }

  void Start(ReplNode::Options options, uint16_t port = 0) {
    auto node_or = ReplNode::Open(dir.path(), XorFactory(), std::move(options));
    SSE_ASSERT_OK(node_or.status());
    node = std::move(node_or).value();
    auto server_or = TcpServer::Start(node.get(), port, NodeServerOptions());
    SSE_ASSERT_OK(server_or.status());
    server = std::move(server_or).value();
  }

  void StopAll() {
    if (server) server->Stop();
    server.reset();
    node.reset();
  }
};

ReplNode::Options FollowerOptions() {
  ReplNode::Options opts;
  opts.initial_role = ReplNode::Role::kFollower;
  return opts;
}

ReplNode::Options PrimaryOptions(std::vector<ReplSender::Endpoint> peers) {
  ReplNode::Options opts;
  opts.initial_role = ReplNode::Role::kPrimary;
  opts.peers = std::move(peers);
  opts.sender = FastSenderOptions();
  return opts;
}

TEST(FindMetricValueTest, ParsesLineStartSamplesOnly) {
  const std::string text =
      "# HELP sse_repl_is_primary role\n"
      "not_sse_repl_is_primary 7\n"
      "sse_repl_is_primary 1\n"
      "sse_repl_epoch 42\n";
  double value = 0;
  EXPECT_TRUE(FindMetricValue(text, "sse_repl_is_primary", &value));
  EXPECT_EQ(value, 1.0);
  EXPECT_TRUE(FindMetricValue(text, "sse_repl_epoch", &value));
  EXPECT_EQ(value, 42.0);
  EXPECT_FALSE(FindMetricValue(text, "sse_repl_missing", &value));
  // A name that is a prefix of a longer series must not match it.
  EXPECT_FALSE(FindMetricValue("sse_repl_epoch_total 3\n", "sse_repl_epoch",
                               &value));
}

TEST(ReplNodeTest, PrimaryShipsToFollowerWhichServesStaleReads) {
  TestNode follower;
  follower.Start(FollowerOptions());
  TestNode primary;
  primary.Start(PrimaryOptions({{"127.0.0.1", follower.port()}}));
  ASSERT_EQ(primary.node->role(), ReplNode::Role::kPrimary);
  ASSERT_EQ(follower.node->role(), ReplNode::Role::kFollower);

  auto channel = net::TcpChannel::Connect(primary.port());
  SSE_ASSERT_OK(channel.status());
  for (uint8_t i = 0; i < 5; ++i) {
    auto reply = (*channel)->Call(SetOp(i, static_cast<uint8_t>(i + 1)));
    SSE_ASSERT_OK(reply.status());
    EXPECT_EQ(reply->type, kOpSetAck);
  }

  // The follower's durable cursor converges on the primary's log end.
  const uint64_t primary_next = primary.node->durable()->wal_next_seq();
  EXPECT_TRUE(WaitFor(
      [&] { return follower.node->receiver()->next_seq() == primary_next; },
      5000))
      << "follower at " << follower.node->receiver()->next_seq()
      << ", primary log next " << primary_next;

  // Stale reads come straight off the follower's read view.
  auto fchannel = net::TcpChannel::Connect(follower.port());
  SSE_ASSERT_OK(fchannel.status());
  for (uint8_t i = 0; i < 5; ++i) {
    auto reply = (*fchannel)->Call(GetOp(i));
    SSE_ASSERT_OK(reply.status());
    EXPECT_EQ(reply->payload, Bytes{static_cast<uint8_t>(i + 1)});
  }

  // Mutations are refused by the follower with a retryable "not primary".
  auto refused = (*fchannel)->Call(SetOp(0, 0xFF));
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsRetryable());
  EXPECT_NE(refused.status().message().find("not primary"), std::string::npos);

  // The sender sees the follower connected and fully acked.
  const auto statuses = primary.node->sender()->followers();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].connected);
  EXPECT_EQ(statuses[0].next_seq, primary_next);

  primary.StopAll();
  follower.StopAll();
}

TEST(ReplNodeTest, FollowerCatchesUpAfterRestartAndMissedWrites) {
  TestNode follower;
  follower.Start(FollowerOptions());
  const uint16_t follower_port = follower.port();
  TestNode primary;
  primary.Start(PrimaryOptions({{"127.0.0.1", follower_port}}));

  auto channel = net::TcpChannel::Connect(primary.port());
  SSE_ASSERT_OK(channel.status());
  for (uint8_t i = 0; i < 3; ++i) {
    SSE_ASSERT_OK((*channel)->Call(SetOp(i, 0x11)).status());
  }
  ASSERT_TRUE(WaitFor(
      [&] {
        return follower.node->receiver()->next_seq() ==
               primary.node->durable()->wal_next_seq();
      },
      5000));

  // Follower goes down; the primary keeps accepting writes regardless.
  follower.StopAll();
  for (uint8_t i = 0; i < 3; ++i) {
    SSE_ASSERT_OK((*channel)->Call(SetOp(i, 0x22)).status());
  }

  // It comes back on the same endpoint with its old directory and is
  // caught up from the primary's log, from exactly its durable cursor.
  auto restarted_or =
      ReplNode::Open(follower.dir.path(), XorFactory(), FollowerOptions());
  SSE_ASSERT_OK(restarted_or.status());
  auto restarted = std::move(restarted_or).value();
  EXPECT_GE(restarted->receiver()->next_seq(), 4u);  // pre-crash acks survived
  auto server_or =
      TcpServer::Start(restarted.get(), follower_port, NodeServerOptions());
  SSE_ASSERT_OK(server_or.status());
  auto fserver = std::move(server_or).value();

  EXPECT_TRUE(WaitFor(
      [&] {
        return restarted->receiver()->next_seq() ==
               primary.node->durable()->wal_next_seq();
      },
      5000));
  auto fchannel = net::TcpChannel::Connect(follower_port);
  SSE_ASSERT_OK(fchannel.status());
  for (uint8_t i = 0; i < 3; ++i) {
    auto reply = (*fchannel)->Call(GetOp(i));
    SSE_ASSERT_OK(reply.status());
    EXPECT_EQ(reply->payload, Bytes{static_cast<uint8_t>(0x11 ^ 0x22)});
  }

  fserver->Stop();
  fserver.reset();
  restarted.reset();
  primary.StopAll();
}

TEST(ReplNodeTest, FollowerBehindCompactionIsCaughtUpBySnapshot) {
  // The follower endpoint exists but nothing listens there yet.
  const uint16_t follower_port = ReservePort();

  TestNode primary;
  {
    ReplNode::Options opts = PrimaryOptions({{"127.0.0.1", follower_port}});
    // Tiny segments so checkpoints actually free whole segments below the
    // compaction horizon (sender must read segments of the same size).
    opts.durable.wal_segment_bytes = 128;
    opts.sender.wal_segment_bytes = 128;
    // Keep the live tail tiny: a deep catch-up must read the primary's
    // segments (and find the compaction gap) instead of being served from
    // the in-memory buffer.
    opts.sender.live_buffer_records = 4;
    primary.Start(std::move(opts));
  }

  auto channel = net::TcpChannel::Connect(primary.port());
  SSE_ASSERT_OK(channel.status());
  for (uint8_t i = 0; i < 10; ++i) {
    SSE_ASSERT_OK((*channel)->Call(SetOp(i, 0x0F)).status());
  }
  SSE_ASSERT_OK(primary.node->Checkpoint());
  for (uint8_t i = 0; i < 10; ++i) {
    SSE_ASSERT_OK((*channel)->Call(SetOp(i, 0xF0)).status());
  }
  // Two generations retained; compaction drops segments below the older
  // cut, so history no longer reaches back to sequence 1.
  SSE_ASSERT_OK(primary.node->Checkpoint());

  // Now the follower appears, empty, asking for sequence 1: the sender
  // must ship a snapshot, then stream the tail.
  TestNode follower;
  follower.Start(FollowerOptions(), follower_port);
  EXPECT_TRUE(WaitFor(
      [&] {
        return follower.node->receiver()->next_seq() ==
               primary.node->durable()->wal_next_seq();
      },
      10000))
      << "follower at " << follower.node->receiver()->next_seq();
  // The follower converges the moment it installs the blob, a hair before
  // the sender's own counter increment lands — poll rather than assert.
  EXPECT_TRUE(WaitFor(
      [&] { return primary.node->sender()->snapshots_shipped() >= 1; }, 5000));

  auto fchannel = net::TcpChannel::Connect(follower_port);
  SSE_ASSERT_OK(fchannel.status());
  for (uint8_t i = 0; i < 10; ++i) {
    auto reply = (*fchannel)->Call(GetOp(i));
    SSE_ASSERT_OK(reply.status());
    EXPECT_EQ(reply->payload, Bytes{0xFF});
  }

  follower.StopAll();
  primary.StopAll();
}

TEST(ReplNodeTest, DeposedPrimaryIsFencedByHigherEpochAck) {
  TestNode follower;
  follower.Start(FollowerOptions());
  TestNode primary;
  primary.Start(PrimaryOptions({{"127.0.0.1", follower.port()}}));

  auto channel = net::TcpChannel::Connect(primary.port());
  SSE_ASSERT_OK(channel.status());
  SSE_ASSERT_OK((*channel)->Call(SetOp(1, 1)).status());

  // A (simulated) new primary with a higher epoch reaches the follower:
  // an empty append is enough for the follower to adopt the epoch.
  auto fchannel = net::TcpChannel::Connect(follower.port());
  SSE_ASSERT_OK(fchannel.status());
  ReplAppend fence;
  fence.epoch = primary.node->epoch() + 5;
  fence.first_seq = follower.node->receiver()->next_seq();
  auto fence_reply = (*fchannel)->Call(fence.ToMessage());
  SSE_ASSERT_OK(fence_reply.status());
  auto fence_ack = ReplAck::FromMessage(*fence_reply);
  SSE_ASSERT_OK(fence_ack.status());
  EXPECT_EQ(fence_ack->epoch, fence.epoch);

  // The old primary's next probe returns that epoch; it fences itself and
  // steps down from mutations.
  EXPECT_TRUE(WaitFor([&] { return primary.node->sender()->fenced(); }, 5000));
  auto refused = (*channel)->Call(SetOp(1, 2));
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsRetryable());
  EXPECT_NE(refused.status().message().find("not primary"), std::string::npos);

  // Stale-epoch traffic is refused by the follower without touching its log.
  ReplAppend stale;
  stale.epoch = 1;
  stale.first_seq = follower.node->receiver()->next_seq();
  stale.records.push_back(SetOp(9, 9).Encode());
  auto stale_reply = (*fchannel)->Call(stale.ToMessage());
  SSE_ASSERT_OK(stale_reply.status());
  auto stale_ack = ReplAck::FromMessage(*stale_reply);
  SSE_ASSERT_OK(stale_ack.status());
  EXPECT_FALSE(stale_ack->accepted);
  EXPECT_EQ(stale_ack->epoch, fence.epoch);

  primary.StopAll();
  follower.StopAll();
}

TEST(ReplNodeTest, PromotedFollowerRecoversPrimaryStateAndTakesWrites) {
  TestNode follower;
  follower.Start(FollowerOptions());
  TestNode primary;
  primary.Start(PrimaryOptions({{"127.0.0.1", follower.port()}}));
  const uint64_t old_epoch = primary.node->epoch();

  auto channel = net::TcpChannel::Connect(primary.port());
  SSE_ASSERT_OK(channel.status());
  for (uint8_t i = 0; i < 4; ++i) {
    SSE_ASSERT_OK((*channel)->Call(SetOp(i, 0x33)).status());
  }
  ASSERT_TRUE(WaitFor(
      [&] {
        return follower.node->receiver()->next_seq() ==
               primary.node->durable()->wal_next_seq();
      },
      5000));

  // Operator promotes the follower: its shipped segments replay through
  // the ordinary DurableServer recovery path.
  auto fchannel = net::TcpChannel::Connect(follower.port());
  SSE_ASSERT_OK(fchannel.status());
  auto promote_reply = (*fchannel)->Call(ReplPromote{}.ToMessage());
  SSE_ASSERT_OK(promote_reply.status());
  auto promote_ack = ReplAck::FromMessage(*promote_reply);
  SSE_ASSERT_OK(promote_ack.status());
  EXPECT_TRUE(promote_ack->accepted);
  EXPECT_GT(promote_ack->epoch, old_epoch);
  EXPECT_EQ(follower.node->role(), ReplNode::Role::kPrimary);
  EXPECT_EQ(follower.node->promotions(), 1u);
  ASSERT_NE(follower.node->durable(), nullptr);

  // Replicated state survived promotion intact, and the node now applies
  // mutations itself.
  for (uint8_t i = 0; i < 4; ++i) {
    auto reply = (*fchannel)->Call(GetOp(i));
    SSE_ASSERT_OK(reply.status());
    EXPECT_EQ(reply->payload, Bytes{0x33});
  }
  SSE_ASSERT_OK((*fchannel)->Call(SetOp(0, 0x0F)).status());
  auto read_back = (*fchannel)->Call(GetOp(0));
  SSE_ASSERT_OK(read_back.status());
  EXPECT_EQ(read_back->payload, Bytes{static_cast<uint8_t>(0x33 ^ 0x0F)});

  // Promoting a primary again is a no-op acknowledgment, not a new epoch.
  auto again = (*fchannel)->Call(ReplPromote{}.ToMessage());
  SSE_ASSERT_OK(again.status());
  auto again_ack = ReplAck::FromMessage(*again);
  SSE_ASSERT_OK(again_ack.status());
  EXPECT_EQ(again_ack->epoch, promote_ack->epoch);
  EXPECT_EQ(follower.node->promotions(), 1u);

  primary.StopAll();
  follower.StopAll();
}

TEST(ReplNodeTest, RoleAndEpochSurviveRestartViaMarkerFile) {
  TempDir dir;
  uint64_t promoted_epoch = 0;
  {
    auto node_or = ReplNode::Open(dir.path(), XorFactory(), FollowerOptions());
    SSE_ASSERT_OK(node_or.status());
    auto node = std::move(node_or).value();
    ReplPromote promote;
    promote.min_epoch = 7;
    auto reply = node->Handle(promote.ToMessage());
    SSE_ASSERT_OK(reply.status());
    EXPECT_EQ(node->role(), ReplNode::Role::kPrimary);
    promoted_epoch = node->epoch();
    EXPECT_GT(promoted_epoch, 7u);
  }
  // Reopening with a *follower* initial_role keeps the persisted primary
  // role and epoch: the marker wins over the default.
  auto reopened_or = ReplNode::Open(dir.path(), XorFactory(), FollowerOptions());
  SSE_ASSERT_OK(reopened_or.status());
  auto reopened = std::move(reopened_or).value();
  EXPECT_EQ(reopened->role(), ReplNode::Role::kPrimary);
  EXPECT_EQ(reopened->epoch(), promoted_epoch);
  EXPECT_EQ(reopened->promotions(), 1u);
}

TEST(ReplNodeTest, WaitOneBlocksForFollowerAckAndDegradesWhenAlone) {
  TestNode follower;
  follower.Start(FollowerOptions());
  TestNode primary;
  {
    ReplNode::Options opts = PrimaryOptions({{"127.0.0.1", follower.port()}});
    opts.sender.ack_mode = ReplSender::AckMode::kWaitOne;
    opts.sender.ack_timeout_ms = 150;
    primary.Start(std::move(opts));
  }

  auto channel = net::TcpChannel::Connect(primary.port());
  SSE_ASSERT_OK(channel.status());
  SSE_ASSERT_OK((*channel)->Call(SetOp(1, 1)).status());
  // The reply was withheld until at least one follower held the record
  // durable, so by now the ack cursor covers the write.
  EXPECT_GE(primary.node->sender()->max_acked_seq(), 1u);
  EXPECT_EQ(primary.node->sender()->ack_timeouts(), 0u);

  // With the follower gone, kWaitOne degrades to async after the bounded
  // timeout instead of wedging the primary.
  follower.StopAll();
  const auto t0 = std::chrono::steady_clock::now();
  SSE_ASSERT_OK((*channel)->Call(SetOp(1, 2)).status());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  EXPECT_TRUE(WaitFor(
      [&] { return primary.node->sender()->ack_timeouts() >= 1u; }, 1000));

  primary.StopAll();
}

TEST(FailoverChannelTest, RoutesMutationsToPrimaryAndReadsAnywhere) {
  TestNode follower;
  follower.Start(FollowerOptions());
  TestNode primary;
  primary.Start(PrimaryOptions({{"127.0.0.1", follower.port()}}));

  // Follower listed FIRST: the router must discover the primary by role,
  // not by list order.
  std::vector<ReplSender::Endpoint> endpoints = {
      {"127.0.0.1", follower.port()}, {"127.0.0.1", primary.port()}};

  FailoverChannel::Options opts;
  opts.is_mutating = [](const net::Message& m) { return m.type == kOpSet; };
  FailoverChannel mutate_channel(endpoints, opts);
  auto reply = mutate_channel.Call(SetOp(5, 0x5A));
  SSE_ASSERT_OK(reply.status());
  EXPECT_EQ(reply->type, kOpSetAck);
  EXPECT_EQ(mutate_channel.primary_index(), 1);
  // Reads follow the primary too while read_from_followers is off.
  auto read = mutate_channel.Call(GetOp(5));
  SSE_ASSERT_OK(read.status());
  EXPECT_EQ(read->payload, Bytes{0x5A});

  ASSERT_TRUE(WaitFor(
      [&] {
        return follower.node->receiver()->next_seq() ==
               primary.node->durable()->wal_next_seq();
      },
      5000));

  // With stale reads opted in, reads succeed from whichever endpoint the
  // round-robin lands on — including the follower.
  FailoverChannel::Options stale_opts = opts;
  stale_opts.read_from_followers = true;
  FailoverChannel stale_channel(endpoints, stale_opts);
  for (int i = 0; i < 4; ++i) {
    auto stale_read = stale_channel.Call(GetOp(5));
    SSE_ASSERT_OK(stale_read.status());
    EXPECT_EQ(stale_read->payload, Bytes{0x5A});
  }

  primary.StopAll();
  follower.StopAll();
}

// ---------------------------------------------------------------------------
// Satellite: a MultiCall window that is mid-flight when its endpoint dies
// must fail over without losing or double-applying any op. The handler
// below plays both "replicas" (two servers, one shared state) and dedups
// on the session stamp exactly like DurableServer's ReplyCache — so the
// test fails if RetryingChannel ever re-stamps an op on the failover path.

class DedupXorHandler : public net::MessageHandler {
 public:
  Result<net::Message> Handle(const net::Message& request) override {
    if (request.type == net::kMsgStats) {
      // Both servers claim primary; the router just needs *a* primary.
      obs::StatsReply stats;
      stats.prometheus_text = "sse_repl_is_primary 1\n";
      net::Message reply = stats.ToMessage();
      reply.EchoSession(request);
      return reply;
    }
    if (request.type != kOpSet) {
      return Status::InvalidArgument("unexpected op");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (request.has_session) {
      const auto key = std::make_pair(request.client_id, request.seq);
      auto it = replies_.find(key);
      if (it != replies_.end()) {
        ++dedup_hits_;
        net::Message reply = it->second;
        reply.EchoSession(request);
        return reply;
      }
    }
    // Slow enough that a 200-op window is still in flight when the test
    // kills the first server.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (request.payload.size() != 2) {
      return Status::InvalidArgument("set wants key,value");
    }
    cells_[request.payload[0]] ^= request.payload[1];
    ++applies_;
    net::Message reply{kOpSetAck, {}};
    if (request.has_session) {
      replies_.emplace(std::make_pair(request.client_id, request.seq), reply);
    }
    reply.EchoSession(request);
    return reply;
  }

  uint64_t applies() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return applies_;
  }
  uint64_t dedup_hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dedup_hits_;
  }
  std::map<uint8_t, uint8_t> cells() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_;
  }

 private:
  mutable std::mutex mutex_;
  std::map<uint8_t, uint8_t> cells_;
  std::map<std::pair<uint64_t, uint64_t>, net::Message> replies_;
  uint64_t applies_ = 0;
  uint64_t dedup_hits_ = 0;
};

TEST(FailoverChannelTest, MultiCallWindowSurvivesMidFlightEndpointFailover) {
  DedupXorHandler handler;  // internally locked: shared by both servers
  net::TcpServer::Options sopts = NodeServerOptions();
  sopts.serialize_handler = false;
  // The "killed" endpoint goes down hard: no drain, queued replies drop.
  net::TcpServer::Options abrupt = sopts;
  abrupt.drain_timeout_ms = 0.0;
  auto server_a = TcpServer::Start(&handler, 0, abrupt);
  SSE_ASSERT_OK(server_a.status());
  auto server_b = TcpServer::Start(&handler, 0, sopts);
  SSE_ASSERT_OK(server_b.status());

  // Endpoint A first, so the router starts there deterministically.
  FailoverChannel::Options fopts;
  fopts.is_mutating = [](const net::Message& m) { return m.type == kOpSet; };
  fopts.backoff_initial_ms = 5;
  FailoverChannel failover(
      {{"127.0.0.1", (*server_a)->port()}, {"127.0.0.1", (*server_b)->port()}},
      fopts);

  net::RetryOptions ropts;
  ropts.max_attempts = 10;
  ropts.initial_backoff_ms = 2.0;
  ropts.max_backoff_ms = 50.0;
  ropts.batch_size = 1;   // each op is its own stamped, pipelined frame
  ropts.max_inflight = 8;
  net::RetryingChannel client(&failover, ropts);

  constexpr int kOps = 200;
  std::vector<net::Message> ops;
  ops.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    ops.push_back(SetOp(static_cast<uint8_t>(i % 7),
                        static_cast<uint8_t>(1 + i % 5)));
  }

  std::vector<Result<net::Message>> results;
  std::thread window([&] { results = client.MultiCall(ops); });
  // Kill endpoint A while the window is demonstrably mid-flight.
  ASSERT_TRUE(WaitFor([&] { return handler.applies() >= 20; }, 10000));
  (*server_a)->Stop();
  window.join();

  ASSERT_EQ(results.size(), static_cast<size_t>(kOps));
  for (int i = 0; i < kOps; ++i) {
    SSE_ASSERT_OK_RESULT(results[i]) << " (op " << i << ")";
    EXPECT_EQ(results[i]->type, kOpSetAck);
  }
  // Exactly-once: every op applied once despite retries crossing the
  // endpoint switch. XOR makes any double-apply visible in the cells too.
  EXPECT_EQ(handler.applies(), static_cast<uint64_t>(kOps));
  std::map<uint8_t, uint8_t> expected;
  for (const auto& op : ops) expected[op.payload[0]] ^= op.payload[1];
  EXPECT_EQ(handler.cells(), expected);
  EXPECT_GE(failover.failovers(), 1u);

  (*server_b)->Stop();
}

}  // namespace
}  // namespace sse::repl
