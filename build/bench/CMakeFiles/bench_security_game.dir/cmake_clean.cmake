file(REMOVE_RECURSE
  "CMakeFiles/bench_security_game.dir/bench_security_game.cc.o"
  "CMakeFiles/bench_security_game.dir/bench_security_game.cc.o.d"
  "bench_security_game"
  "bench_security_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
