#include "sse/storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "test_util.h"

namespace sse::storage {
namespace {

using sse::testing::TempDir;

std::vector<Bytes> ReplayAll(const std::string& path,
                             uint64_t* torn = nullptr) {
  std::vector<Bytes> records;
  Status s = WriteAheadLog::Replay(
      path,
      [&](BytesView record) {
        records.push_back(ToBytes(record));
        return Status::OK();
      },
      torn);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return records;
}

TEST(WalTest, AppendAndReplay) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(StringToBytes("first")).ok());
    ASSERT_TRUE(wal->Append(StringToBytes("second")).ok());
    ASSERT_TRUE(wal->Append(Bytes{}).ok());  // empty record allowed
    ASSERT_TRUE(wal->Sync().ok());
    EXPECT_EQ(wal->appended_records(), 3u);
  }
  auto records = ReplayAll(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(BytesToString(records[0]), "first");
  EXPECT_EQ(BytesToString(records[1]), "second");
  EXPECT_TRUE(records[2].empty());
}

TEST(WalTest, ReplayMissingFileIsEmpty) {
  TempDir dir;
  EXPECT_TRUE(ReplayAll(dir.path() + "/absent.log").empty());
}

TEST(WalTest, AppendAcrossReopens) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  for (int i = 0; i < 3; ++i) {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(StringToBytes("rec" + std::to_string(i))).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  EXPECT_EQ(ReplayAll(path).size(), 3u);
}

TEST(WalTest, TornTailTolerated) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(StringToBytes("complete")).ok());
    ASSERT_TRUE(wal->Append(StringToBytes("will be torn")).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  // Chop the last 5 bytes to simulate a crash mid-write.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 5), 0);
  std::fclose(f);

  uint64_t torn = 0;
  auto records = ReplayAll(path, &torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(BytesToString(records[0]), "complete");
  EXPECT_GT(torn, 0u);
}

TEST(WalTest, MidLogCorruptionDetected) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(StringToBytes("one")).ok());
    ASSERT_TRUE(wal->Append(StringToBytes("two")).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  // Flip a payload byte of the FIRST record (not the tail).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8, SEEK_SET);  // first payload byte
  int c = std::fgetc(f);
  std::fseek(f, 8, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  Status s = WriteAheadLog::Replay(
      path, [](BytesView) { return Status::OK(); });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(WalTest, ResetTruncates) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(StringToBytes("old")).ok());
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->appended_records(), 0u);
  ASSERT_TRUE(wal->Append(StringToBytes("new")).ok());
  ASSERT_TRUE(wal->Sync().ok());
  auto records = ReplayAll(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(BytesToString(records[0]), "new");
}

TEST(WalTest, ReplayCallbackErrorPropagates) {
  TempDir dir;
  const std::string path = dir.path() + "/wal.log";
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(StringToBytes("x")).ok());
  ASSERT_TRUE(wal->Sync().ok());
  Status s = WriteAheadLog::Replay(
      path, [](BytesView) { return Status::Internal("boom"); });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace sse::storage
