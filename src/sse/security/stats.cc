#include "sse/security/stats.h"

#include <array>
#include <bit>
#include <cmath>

namespace sse::security {

double MonobitFraction(BytesView data) {
  if (data.empty()) return 0.5;
  size_t ones = 0;
  for (uint8_t b : data) ones += std::popcount(b);
  return static_cast<double>(ones) / (8.0 * static_cast<double>(data.size()));
}

double ChiSquareBytes(BytesView data) {
  if (data.empty()) return 0.0;
  std::array<uint64_t, 256> histogram{};
  for (uint8_t b : data) ++histogram[b];
  const double expected = static_cast<double>(data.size()) / 256.0;
  double chi = 0.0;
  for (uint64_t observed : histogram) {
    const double d = static_cast<double>(observed) - expected;
    chi += d * d / expected;
  }
  return chi;
}

double ShannonEntropyBytes(BytesView data) {
  if (data.empty()) return 0.0;
  std::array<uint64_t, 256> histogram{};
  for (uint8_t b : data) ++histogram[b];
  double entropy = 0.0;
  const double n = static_cast<double>(data.size());
  for (uint64_t count : histogram) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double SerialCorrelationBytes(BytesView data) {
  if (data.size() < 2) return 0.0;
  const size_t n = data.size() - 1;
  double sum_x = 0, sum_y = 0, sum_xy = 0, sum_x2 = 0, sum_y2 = 0;
  for (size_t i = 0; i < n; ++i) {
    const double x = data[i];
    const double y = data[i + 1];
    sum_x += x;
    sum_y += y;
    sum_xy += x * y;
    sum_x2 += x * x;
    sum_y2 += y * y;
  }
  const double num = static_cast<double>(n) * sum_xy - sum_x * sum_y;
  const double den =
      std::sqrt((static_cast<double>(n) * sum_x2 - sum_x * sum_x) *
                (static_cast<double>(n) * sum_y2 - sum_y * sum_y));
  if (den == 0.0) return 0.0;
  return num / den;
}

bool LooksUniform(BytesView data, double monobit_slack, double chi_cut,
                  double corr_cut) {
  if (std::abs(MonobitFraction(data) - 0.5) > monobit_slack) return false;
  if (ChiSquareBytes(data) > chi_cut) return false;
  if (std::abs(SerialCorrelationBytes(data)) > corr_cut) return false;
  return true;
}

}  // namespace sse::security
