#ifndef SSE_STORAGE_FAULTY_ENV_H_
#define SSE_STORAGE_FAULTY_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sse/storage/env.h"

namespace sse::storage {

/// Deterministic fault-injecting, fully in-memory `Env` — the disk-side
/// counterpart of `net::FaultInjectionChannel`.
///
/// FaultyEnv keeps two worlds per file: the *live* bytes an open handle or
/// reader observes, and the *durable* bytes that survive a crash. A file
/// `Sync` promotes live content to durable; `SyncDir` promotes namespace
/// changes (creations, renames, removals) of a directory's immediate
/// children. `Crash()` throws away everything not durable — including
/// renamed-but-unsynced directory entries, which models the classic
/// rename-without-parent-fsync durability hole — and additionally persists
/// a deterministic pseudo-random prefix of each file's unsynced suffix
/// (torn write-back, as a real page cache would).
///
/// Every faultable operation (Append, Sync, SyncDir, Rename, Remove, file
/// creation, ReadFile) consumes one index from a global operation counter.
/// Tests schedule faults at exact indices via `FailAt`/`CrashAt`, so a
/// crash-recovery sweep can hit *every* operation the system under test
/// performs. Thread-safe; operations after a crash fail with IO_ERROR until
/// `Restart()`.
class FaultyEnv final : public Env {
 public:
  enum class FaultKind {
    kEio,         // operation fails with IO_ERROR, no side effect
    kShortWrite,  // Append persists only a prefix of the data, then fails
    kSyncFail,    // Sync/SyncDir fails; nothing is promoted to durable
    kCrash,       // process crash: live world reset to the durable world
  };

  explicit FaultyEnv(uint64_t torn_write_seed = 0x53534531u)
      : torn_write_seed_(torn_write_seed) {}

  // Env interface -----------------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<Bytes> ReadFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Result<uint64_t> FileSize(const std::string& path) override;

  // Fault scheduling --------------------------------------------------------

  /// Schedules `kind` to fire when the operation counter reaches
  /// `op_index` (0-based). The faulted operation still consumes its index.
  void FailAt(uint64_t op_index, FaultKind kind);
  void CrashAt(uint64_t op_index) { FailAt(op_index, FaultKind::kCrash); }
  void ClearSchedule();

  /// Immediately crashes: live state reverts to durable state (with torn
  /// write-back of unsynced suffixes) and all further operations fail until
  /// `Restart()`.
  void Crash();

  /// Clears the crashed flag, as if the process restarted against the
  /// surviving disk image. The operation counter keeps running.
  void Restart();

  /// Total faultable operations observed so far (ops attempted after a
  /// crash and before the matching Restart are not counted).
  uint64_t ops() const;
  bool crashed() const;

  /// One entry per counted operation, e.g. "append wal.000001.log" —
  /// lets tests locate "the 3rd sync" without hard-coding indices.
  std::vector<std::string> op_log() const;

  /// Flips one byte (XOR 0xFF) in both the live and durable image of
  /// `path`, for corruption-fallback tests.
  Status CorruptByte(const std::string& path, uint64_t offset);

 private:
  struct Inode {
    Bytes live;
    Bytes durable;
  };
  using Namespace = std::map<std::string, std::shared_ptr<Inode>>;
  class FaultyWritableFile;

  // Both helpers assume `mu_` is held. `Account` counts one faultable
  // operation and applies any scheduled fault; a kShortWrite fault is
  // reported through `*short_write` (when the caller supports it) so the
  // caller can persist the partial prefix before failing.
  Status Account(const std::string& what, bool* short_write);
  void CrashLocked();

  mutable std::mutex mu_;
  Namespace live_ns_;
  Namespace durable_ns_;
  std::map<uint64_t, FaultKind> schedule_;
  std::vector<std::string> op_log_;
  uint64_t op_counter_ = 0;
  uint64_t crash_epoch_ = 0;
  bool crashed_ = false;
  const uint64_t torn_write_seed_;
};

}  // namespace sse::storage

#endif  // SSE_STORAGE_FAULTY_ENV_H_
