#include <gtest/gtest.h>

#include <thread>

#include "sse/util/logging.h"
#include "sse/util/timer.h"

namespace sse {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double ms = timer.ElapsedMillis();
  EXPECT_GE(ms, 9.0);
  EXPECT_LT(ms, 500.0);  // generous upper bound for loaded CI machines
  EXPECT_NEAR(timer.ElapsedMicros(), timer.ElapsedMillis() * 1000.0,
              timer.ElapsedMicros() * 0.5);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Reset();
  EXPECT_LT(timer.ElapsedMillis(), 5.0);
}

TEST(LatencyStatsTest, SummaryStatistics) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) stats.Add(static_cast<double>(i));
  EXPECT_EQ(stats.count(), 100u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 100.0);
  EXPECT_NEAR(stats.Percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(stats.Percentile(0.99), 99.0, 1.0);
  EXPECT_NEAR(stats.Stddev(), 29.0, 0.5);
  EXPECT_NE(stats.Summary().find("n=100"), std::string::npos);
}

TEST(LatencyStatsTest, EmptyAndSingle) {
  LatencyStats empty;
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.Stddev(), 0.0);

  LatencyStats single;
  single.Add(7.0);
  EXPECT_DOUBLE_EQ(single.Mean(), 7.0);
  EXPECT_DOUBLE_EQ(single.Percentile(0.99), 7.0);
  EXPECT_DOUBLE_EQ(single.Stddev(), 0.0);
}

TEST(LoggingTest, LevelGating) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash regardless of the gate; output goes to stderr.
  SSE_LOG(Debug) << "suppressed";
  SSE_LOG(Info) << "suppressed " << 42;
  SSE_LOG(Warning) << "suppressed";
  SSE_LOG(Error) << "emitted during test, expected";
  SetLogLevel(original);
}

}  // namespace
}  // namespace sse
