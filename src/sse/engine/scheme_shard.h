#ifndef SSE_ENGINE_SCHEME_SHARD_H_
#define SSE_ENGINE_SCHEME_SHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "sse/core/wire_common.h"
#include "sse/net/message.h"
#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::engine {

/// How a message type must lock the shard it is dispatched to. Searches on
/// Scheme 1 only read the token tree, so they share; anything that writes
/// shard state — including Scheme 2's Optimization-1 plaintext cache, which
/// a *search* refreshes — is exclusive.
enum class LockMode { kShared, kExclusive };

/// One shard's slice of a scheme server: the keyword entries whose tokens
/// route to it. Shards never store document ciphertexts — those live in the
/// engine's shared store — and they never see messages for tokens they do
/// not own. Implementations wrap an unmodified scheme server; thread safety
/// is the engine's job (per-shard reader-writer lock), not the shard's.
class SchemeShard {
 public:
  virtual ~SchemeShard() = default;

  virtual Result<net::Message> Handle(const net::Message& request) = 0;
  virtual Result<Bytes> SerializeState() const = 0;
  virtual Status RestoreState(BytesView data) = 0;

  virtual size_t unique_keywords() const = 0;
  virtual uint64_t stored_index_bytes() const = 0;
};

/// Wraps any scheme server type (Scheme1Server, Scheme2Server, ...) as a
/// SchemeShard. The server's own document store stays empty — the routing
/// adapter strips documents out of updates before they reach a shard.
template <typename Server>
class ServerShard : public SchemeShard {
 public:
  template <typename... Args>
  explicit ServerShard(Args&&... args) : server_(std::forward<Args>(args)...) {}

  Result<net::Message> Handle(const net::Message& request) override {
    return server_.Handle(request);
  }
  Result<Bytes> SerializeState() const override {
    return server_.SerializeState();
  }
  Status RestoreState(BytesView data) override {
    return server_.RestoreState(data);
  }
  size_t unique_keywords() const override { return server_.unique_keywords(); }
  uint64_t stored_index_bytes() const override {
    return server_.stored_index_bytes();
  }

  Server& server() { return server_; }
  const Server& server() const { return server_; }

 private:
  Server server_;
};

/// One shard's slice of a client request.
struct SubRequest {
  size_t shard = 0;
  net::Message message;
  /// For merges that must realign per-token reply entries with the original
  /// request order (e.g. S1NonceReply): positions[i] is the index in the
  /// original token list of this sub-request's i-th token.
  std::vector<size_t> positions;
};

/// The routing decision for one decoded request: which shards see which
/// sub-request, which documents the engine stores, and how the reply is
/// reassembled.
struct RequestPlan {
  std::vector<SubRequest> subs;
  /// Documents stripped from a mutating request; the engine stores them in
  /// its shared document store after every sub-request succeeded.
  std::vector<core::WireDocument> documents;
  /// Merge needs to attach result.ids' ciphertexts from the engine store.
  bool attach_documents = false;
};

/// Fetches (id, ciphertext) pairs from the engine's shared document store;
/// handed to Merge so reply assembly can fill in search-result documents.
using DocumentFetcher =
    std::function<Result<std::vector<std::pair<uint64_t, Bytes>>>(
        const std::vector<uint64_t>&)>;

/// Scheme-specific sharding policy: how to create shard-local state, how to
/// split a request across shards, and how to merge the shard replies into
/// the single reply the (unmodified) scheme client expects. Adapters are
/// stateless and shared across worker threads — all state lives in shards
/// or in the engine.
class SchemeAdapter {
 public:
  virtual ~SchemeAdapter() = default;

  virtual std::string_view name() const = 0;
  virtual std::unique_ptr<SchemeShard> CreateShard() const = 0;
  virtual bool IsMutating(uint16_t msg_type) const = 0;
  virtual LockMode LockModeFor(uint16_t msg_type) const = 0;

  /// Decodes `request` and splits it into per-shard sub-requests.
  virtual Result<RequestPlan> Route(const net::Message& request,
                                    size_t num_shards) const = 0;

  /// Reassembles shard replies (aligned with plan.subs) into one reply.
  /// Only called when every sub-request succeeded.
  virtual Result<net::Message> Merge(const net::Message& request,
                                     const RequestPlan& plan,
                                     std::vector<net::Message> replies,
                                     const DocumentFetcher& fetch_docs)
      const = 0;
};

}  // namespace sse::engine

#endif  // SSE_ENGINE_SCHEME_SHARD_H_
