// Experiment T1-search — Table 1, row "Searching computation".
//
// Paper claims: Scheme 1 search costs O(log u) (u = unique keywords, tree
// index); Scheme 2 costs O(log u + l/2x) where l is the chain length and x
// the average number of updates between two searches. This bench measures
// (a) B+-tree comparisons and wall-clock vs u for both schemes, and
// (b) Scheme 2's chain-walk steps vs x and vs l.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sse/core/scheme1_client.h"
#include "sse/core/scheme1_server.h"
#include "sse/core/scheme2_client.h"
#include "sse/core/scheme2_server.h"
#include "sse/core/scheme3_client.h"
#include "sse/core/scheme3_server.h"
#include "sse/engine/scheme2_adapter.h"
#include "sse/engine/server_engine.h"
#include "sse/net/admission.h"
#include "sse/net/retry.h"
#include "sse/net/tcp.h"
#include "sse/obs/histogram.h"
#include "sse/obs/slo.h"
#include "sse/obs/trace.h"

namespace sse::bench {
namespace {

void SweepUniqueKeywords() {
  std::printf(
      "T1-search (a): cost vs u, both schemes. Expect comparisons to grow\n"
      "logarithmically (x16 data -> +~4 comparisons), not linearly.\n\n");
  TablePrinter table({"system", "u_keywords", "tree_cmp/search", "search_us"});
  table.PrintHeader();
  for (core::SystemKind kind :
       {core::SystemKind::kScheme1, core::SystemKind::kScheme2}) {
    for (size_t u : {1024u, 4096u, 16384u, 65536u}) {
      DeterministicRandom rng(2);
      // Short chain: the client walks l-ctr hash steps per keyword per
      // update (inherent to the Lamport chain), so index construction at
      // u=64k needs a modest l to stay fast. Chain-length effects are
      // measured separately in sweep (c).
      core::SystemConfig config =
          BenchConfig(/*max_documents=*/1 << 12, /*chain_length=*/64);
      core::SseSystem sys = MustCreate(kind, config, &rng);
      // One document carrying many keywords per batch keeps doc count small
      // while u grows.
      const size_t docs_count = 512;
      const size_t keywords_per_doc = u / docs_count;
      std::vector<core::Document> docs;
      size_t kw_rank = 0;
      for (size_t i = 0; i < docs_count; ++i) {
        std::vector<std::string> kws;
        for (size_t k = 0; k < keywords_per_doc; ++k) {
          kws.push_back(phr::SyntheticKeyword(kw_rank++));
        }
        docs.push_back(core::Document::Make(i, "content", kws));
      }
      MustOk(sys.client->Store(docs), "store");

      // Measure steady-state searches over random keywords.
      const int probes = 64;
      auto comparisons_before = [&]() -> uint64_t {
        if (kind == core::SystemKind::kScheme1) {
          return static_cast<core::Scheme1Server*>(sys.server.get())
              ->index_comparisons();
        }
        return static_cast<core::Scheme2Server*>(sys.server.get())
            ->index_comparisons();
      };
      const uint64_t before = comparisons_before();
      Timer timer;
      DeterministicRandom probe_rng(3);
      for (int i = 0; i < probes; ++i) {
        MustValue(sys.client->Search(
                      phr::SyntheticKeyword(probe_rng.Next() % u)),
                  "search");
      }
      const double micros = timer.ElapsedMicros() / probes;
      const uint64_t comparisons = comparisons_before() - before;
      // Scheme 1 does 2 lookups per search (nonce + finish), scheme 2 one;
      // report comparisons per lookup-normalized search as measured.
      table.PrintRow({std::string(core::SystemKindName(kind)), FmtU(u),
                      Fmt("%.1f", static_cast<double>(comparisons) / probes),
                      Fmt("%.1f", micros)});
    }
  }
  table.PrintRule();
  std::printf("\n");
}

void SweepUpdateSearchRatio() {
  std::printf(
      "T1-search (b): Scheme 2 chain walk vs x (updates between searches).\n"
      "With Optimization 2, consecutive updates reuse one chain element, so\n"
      "walk steps per search stay ~1 regardless of x; with the optimization\n"
      "off, steps grow with x — the l/2x term of Table 1.\n\n");
  TablePrinter table({"opt2", "x_updates_between", "walk_steps/search",
                      "segments/search", "chain_spent"});
  table.PrintHeader();
  for (bool opt2 : {true, false}) {
    for (size_t x : {1u, 2u, 4u, 8u, 16u}) {
      DeterministicRandom rng(4);
      core::SystemConfig config = BenchConfig(/*max_documents=*/1 << 12,
                                              /*chain_length=*/4096);
      config.scheme.counter_after_search_only = opt2;
      config.scheme.server_plaintext_cache = false;  // isolate walk cost
      core::SseSystem sys = MustCreate(core::SystemKind::kScheme2, config, &rng);
      auto* client = static_cast<core::Scheme2Client*>(sys.client.get());
      auto* server = static_cast<core::Scheme2Server*>(sys.server.get());

      uint64_t doc_id = 0;
      const int cycles = 16;
      uint64_t walk_steps = 0;
      uint64_t segments = 0;
      int searches = 0;
      for (int c = 0; c < cycles; ++c) {
        for (size_t i = 0; i < x; ++i) {
          MustOk(sys.client->Store({core::Document::Make(
                     doc_id++, "d", {"hot", "cold" + std::to_string(c)})}),
                 "store");
        }
        const uint64_t steps_before = server->total_chain_steps();
        const uint64_t segs_before = server->total_segments_decrypted();
        MustValue(sys.client->Search("hot"), "search");
        walk_steps += server->total_chain_steps() - steps_before;
        segments += server->total_segments_decrypted() - segs_before;
        ++searches;
      }
      table.PrintRow({opt2 ? "on" : "off", FmtU(x),
                      Fmt("%.1f", static_cast<double>(walk_steps) / searches),
                      Fmt("%.1f", static_cast<double>(segments) / searches),
                      FmtU(client->counter())});
    }
  }
  table.PrintRule();
  std::printf("\n");
}

void SweepChainLength() {
  std::printf(
      "T1-search (c): Scheme 2 search cost vs chain length l. The first\n"
      "search after a long idle gap walks from the current counter element\n"
      "back to the segment keys; cost is bounded by l.\n\n");
  TablePrinter table({"chain_l", "idle_updates", "walk_steps_first_search"});
  table.PrintHeader();
  for (uint32_t l : {256u, 1024u, 4096u}) {
    DeterministicRandom rng(5);
    core::SystemConfig config = BenchConfig(1 << 12, l);
    config.scheme.counter_after_search_only = false;  // every update counts
    core::SseSystem sys = MustCreate(core::SystemKind::kScheme2, config, &rng);
    auto* server = static_cast<core::Scheme2Server*>(sys.server.get());

    // Store the probe keyword once, then churn other keywords to advance
    // the global counter far past it.
    MustOk(sys.client->Store({core::Document::Make(0, "d", {"stale"})}),
           "store");
    const size_t idle = l / 2;
    for (size_t i = 1; i <= idle; ++i) {
      MustOk(sys.client->Store({core::Document::Make(
                 i, "d", {"churn" + std::to_string(i)})}),
             "store");
    }
    const uint64_t before = server->total_chain_steps();
    MustValue(sys.client->Search("stale"), "search");
    table.PrintRow({FmtU(l), FmtU(idle),
                    FmtU(server->total_chain_steps() - before)});
  }
  table.PrintRule();
  std::printf("\n");
}

void SweepEngineThreads() {
  std::printf(
      "T1-search (d): multi-threaded search throughput on the sharded\n"
      "engine (scheme 1, 8 shards, shared document store). T per-thread\n"
      "clients issue searches against one engine; searches lock shards\n"
      "shared, so throughput scales with the cores the host actually has\n"
      "(a 1-core host is expected to stay near 1.0x).\n\n");
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  // One shared engine, preloaded once.
  DeterministicRandom rng(6);
  core::SystemConfig config = BenchConfig(/*max_documents=*/1 << 12,
                                          /*chain_length=*/64);
  config.engine_shards = 8;
  core::SseSystem loader = MustCreate(core::SystemKind::kScheme1, config, &rng);
  const size_t u = 4096;
  const size_t docs_count = 256;
  const size_t keywords_per_doc = u / docs_count;
  std::vector<core::Document> docs;
  size_t kw_rank = 0;
  for (size_t i = 0; i < docs_count; ++i) {
    std::vector<std::string> kws;
    for (size_t k = 0; k < keywords_per_doc; ++k) {
      kws.push_back(phr::SyntheticKeyword(kw_rank++));
    }
    docs.push_back(core::Document::Make(i, "content", kws));
  }
  MustOk(loader.client->Store(docs), "store");
  auto* eng = static_cast<engine::ServerEngine*>(loader.server.get());

  TablePrinter table(
      {"threads", "searches", "total_ms", "searches/s", "speedup"});
  table.PrintHeader();
  double base_rate = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    const int per_thread = 192;
    // Searching never mutates Scheme 1 client state, so each thread gets
    // its own client (same master key) over its own channel to the shared
    // engine — the contended path is the engine, as in a real deployment.
    std::vector<std::unique_ptr<DeterministicRandom>> rngs;
    std::vector<std::unique_ptr<net::InProcessChannel>> channels;
    std::vector<std::unique_ptr<core::Scheme1Client>> clients;
    for (size_t t = 0; t < threads; ++t) {
      rngs.push_back(std::make_unique<DeterministicRandom>(100 + t));
      channels.push_back(std::make_unique<net::InProcessChannel>(
          eng, config.channel));
      clients.push_back(MustValue(
          core::Scheme1Client::Create(BenchKey(), config.scheme,
                                      channels.back().get(), rngs.back().get()),
          "client"));
    }
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        DeterministicRandom probe(200 + t);
        for (int i = 0; i < per_thread; ++i) {
          MustValue(clients[t]->Search(
                        phr::SyntheticKeyword(probe.Next() % u)),
                    "search");
        }
      });
    }
    Timer timer;
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    const double ms = timer.ElapsedMicros() / 1000.0;
    const double rate = threads * per_thread / (ms / 1000.0);
    if (threads == 1) base_rate = rate;
    table.PrintRow({FmtU(threads), FmtU(threads * per_thread),
                    Fmt("%.1f", ms), Fmt("%.0f", rate),
                    Fmt("%.2fx", base_rate > 0 ? rate / base_rate : 1.0)});
  }
  table.PrintRule();
  std::printf("\nengine metrics after the sweep:\n%s\n",
              eng->Metrics().ToString().c_str());
}

// T1-search (e): latency distribution + tracing overhead, emitted as
// machine-readable BENCH_search.json so CI runs accumulate comparable
// numbers. Quantiles come from obs::LatencyHistogram (interpolated), and
// the same workload runs with span recording off and on to price the
// observability layer: the off mode is the default production path (span
// code compiled in, one thread-local check per instrumented site) and the
// acceptance budget for it is <2% vs the pre-obs baseline, which the on/off
// delta bounds from above since "off" only skips work the baseline also
// lacked.
void SweepLatencyProfile(const char* json_path,
                         const std::string& extra_json) {
  std::printf(
      "T1-search (e): scheme 1 search latency profile on the sharded\n"
      "engine, span recording off vs on. Written to %s.\n\n",
      json_path);

  // One preloaded scheme-1 engine, same shape as sweep (a)'s u=4096 point.
  DeterministicRandom rng(7);
  core::SystemConfig config = BenchConfig(/*max_documents=*/1 << 12,
                                          /*chain_length=*/64);
  config.engine_shards = 8;
  core::SseSystem sys = MustCreate(core::SystemKind::kScheme1, config, &rng);
  const size_t u = 4096;
  const size_t docs_count = 256;
  const size_t keywords_per_doc = u / docs_count;
  std::vector<core::Document> docs;
  size_t kw_rank = 0;
  for (size_t i = 0; i < docs_count; ++i) {
    std::vector<std::string> kws;
    for (size_t k = 0; k < keywords_per_doc; ++k) {
      kws.push_back(phr::SyntheticKeyword(kw_rank++));
    }
    docs.push_back(core::Document::Make(i, "content", kws));
  }
  MustOk(sys.client->Store(docs), "store");

  // Earlier revisions ran all of trace_off's probes to completion and
  // then all of trace_on's. The two blocks ran tens of milliseconds
  // apart, and whatever drifted between them — frequency scaling, page
  // cache state, the allocator settling — was billed entirely to
  // whichever mode ran second; a committed run once showed an 11%
  // "overhead" that a reordered run turned into a speedup. Sampling is
  // interleaved now: every iteration measures both modes back to back on
  // the same keyword, alternating which goes first, so drift lands evenly
  // on both sides and only the real delta survives the subtraction.
  struct Mode {
    const char* name;
    obs::LatencyHistogram hist;
    std::vector<uint64_t> samples_ns;
    obs::LatencyHistogram::Snapshot snap;
    void Record(uint64_t ns) {
      hist.Record(ns);
      samples_ns.push_back(ns);
    }
    // Mean of the fastest 99% of samples. Overhead deltas are computed
    // from this rather than the raw mean: on a small shared host a single
    // multi-millisecond scheduler preemption landing on one side of the
    // A/B pair shifts the raw mean by several percent while every
    // quantile through p99 stays identical, and the trim discards exactly
    // that contamination without hiding a real per-op cost (a true
    // overhead moves the whole distribution, trimmed mean included).
    double TrimmedMeanMicros() const {
      std::vector<uint64_t> sorted = samples_ns;
      std::sort(sorted.begin(), sorted.end());
      const size_t keep = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(sorted.size()) * 0.99));
      double sum = 0;
      for (size_t i = 0; i < keep; ++i) sum += static_cast<double>(sorted[i]);
      return sum / static_cast<double>(keep) / 1000.0;
    }
  };
  Mode modes[] = {{"trace_off"}, {"trace_on"}};
  const int warmup = 64;
  const int probes = 1024;
  DeterministicRandom probe_rng(8);
  auto probe_once = [&](bool traced, const std::string& kw) -> uint64_t {
    Timer timer;
    if (traced) {
      obs::ScopedSpan root("bench.search", obs::StartTrace());
      MustValue(sys.client->Search(kw), "search");
    } else {
      MustValue(sys.client->Search(kw), "search");
    }
    return static_cast<uint64_t>(timer.ElapsedMicros() * 1000.0);
  };
  for (int i = 0; i < warmup; ++i) {
    const std::string kw = phr::SyntheticKeyword(probe_rng.Next() % u);
    probe_once(false, kw);
    probe_once(true, kw);
  }
  for (int i = 0; i < probes; ++i) {
    const std::string kw = phr::SyntheticKeyword(probe_rng.Next() % u);
    const int first = i & 1;  // alternate which mode pays any cold cost
    modes[first].Record(probe_once(first == 1, kw));
    modes[1 - first].Record(probe_once(first == 0, kw));
  }
  TablePrinter table({"mode", "p50_us", "p95_us", "p99_us", "mean_us"});
  table.PrintHeader();
  for (Mode& mode : modes) {
    mode.snap = mode.hist.Snap();
    table.PrintRow({mode.name, Fmt("%.1f", mode.snap.quantile_micros(0.50)),
                    Fmt("%.1f", mode.snap.quantile_micros(0.95)),
                    Fmt("%.1f", mode.snap.quantile_micros(0.99)),
                    Fmt("%.1f", mode.snap.mean_micros())});
  }
  table.PrintRule();
  const double off_mean = modes[0].TrimmedMeanMicros();
  const double on_mean = modes[1].TrimmedMeanMicros();
  const double overhead_pct =
      off_mean > 0 ? (on_mean - off_mean) / off_mean * 100.0 : 0.0;
  std::printf(
      "\nspan-recording overhead (on vs off trimmed means): %+.2f%%\n",
      overhead_pct);

  // SLO-tracker overhead, measured the same interleaved way but over TCP:
  // SloTracker::Record runs only on the served path (TcpServer's dispatch
  // loop), so the in-process probes above never touch it. The same engine
  // is served for real and the process-wide recording gate is toggled per
  // leg; everything else — framing, socket hops, dispatch — is identical
  // between the two sides.
  auto slo_server = MustValue(
      net::TcpServer::Start(sys.server.get(), 0, net::TcpServer::Options{}),
      "slo tcp server");
  auto slo_channel = MustValue(net::TcpChannel::Connect(slo_server->port()),
                               "slo tcp connect");
  auto* s1_client = static_cast<core::Scheme1Client*>(sys.client.get());
  s1_client->set_channel(slo_channel.get());
  Mode slo_modes[] = {{"slo_off"}, {"slo_on"}};
  auto slo_probe_once = [&](bool slo_on, const std::string& kw) -> uint64_t {
    obs::SetSloRecordingEnabled(slo_on);
    Timer timer;
    MustValue(sys.client->Search(kw), "search");
    return static_cast<uint64_t>(timer.ElapsedMicros() * 1000.0);
  };
  for (int i = 0; i < warmup; ++i) {
    const std::string kw = phr::SyntheticKeyword(probe_rng.Next() % u);
    slo_probe_once(false, kw);
    slo_probe_once(true, kw);
  }
  for (int i = 0; i < probes; ++i) {
    const std::string kw = phr::SyntheticKeyword(probe_rng.Next() % u);
    const int first = i & 1;
    slo_modes[first].Record(slo_probe_once(first == 1, kw));
    slo_modes[1 - first].Record(slo_probe_once(first == 0, kw));
  }
  obs::SetSloRecordingEnabled(true);
  s1_client->set_channel(sys.channel.get());
  slo_server->Stop();
  for (Mode& mode : slo_modes) {
    mode.snap = mode.hist.Snap();
    table.PrintRow({mode.name, Fmt("%.1f", mode.snap.quantile_micros(0.50)),
                    Fmt("%.1f", mode.snap.quantile_micros(0.95)),
                    Fmt("%.1f", mode.snap.quantile_micros(0.99)),
                    Fmt("%.1f", mode.snap.mean_micros())});
  }
  table.PrintRule();
  const double slo_off_mean = slo_modes[0].TrimmedMeanMicros();
  const double slo_on_mean = slo_modes[1].TrimmedMeanMicros();
  const double slo_overhead_pct =
      slo_off_mean > 0 ? (slo_on_mean - slo_off_mean) / slo_off_mean * 100.0
                       : 0.0;
  std::printf(
      "slo-tracking overhead over TCP (on vs off trimmed means): %+.2f%%\n",
      slo_overhead_pct);

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"table1_search\",\n"
               "  \"system\": \"scheme1\",\n"
               "  \"unique_keywords\": %zu,\n"
               "  \"engine_shards\": %zu,\n"
               "  \"probes\": %d,\n",
               u, config.engine_shards, probes);
  auto emit_mode = [out](const Mode& mode) {
    std::fprintf(out,
                 "  \"%s\": {\"p50_us\": %.3f, \"p95_us\": %.3f, "
                 "\"p99_us\": %.3f, \"mean_us\": %.3f, \"count\": %llu},\n",
                 mode.name, mode.snap.quantile_micros(0.50),
                 mode.snap.quantile_micros(0.95),
                 mode.snap.quantile_micros(0.99), mode.snap.mean_micros(),
                 static_cast<unsigned long long>(mode.snap.count));
  };
  for (const Mode& mode : modes) emit_mode(mode);
  for (const Mode& mode : slo_modes) emit_mode(mode);
  std::fputs(extra_json.c_str(), out);
  std::fprintf(out, "  \"trace_overhead_pct\": %.3f,\n", overhead_pct);
  std::fprintf(out, "  \"slo_overhead_pct\": %.3f\n}\n", slo_overhead_pct);
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
}

// T1-search (f): the reactor network core under connection scale. A
// scheme-2 client (one-round search, so RTT-bound) runs pipelined
// MultiSearch over real TCP while a crowd of idle connections sits on the
// same server. With thread-per-connection serving the crowd would cost a
// thread each; on the reactor it costs two epoll registrations per
// connection and the latency profile should barely move. Returns a JSON
// fragment for BENCH_search.json.
std::string SweepReactorConnectionScale() {
  std::printf(
      "T1-search (f): reactor TCP MultiSearch latency vs idle-connection\n"
      "scale. The thread budget stays reactor_loops + pipeline_workers at\n"
      "every point; idle connections should not shift p50/p99.\n\n");

  // Idle connections need 2 fds each (client + accepted side); size the
  // crowd to the sandbox's fd limit.
  struct rlimit rl{};
  size_t fd_limit = 1024;
  if (getrlimit(RLIMIT_NOFILE, &rl) == 0) {
    if (rl.rlim_cur < rl.rlim_max) {
      rl.rlim_cur = rl.rlim_max;
      setrlimit(RLIMIT_NOFILE, &rl);
      getrlimit(RLIMIT_NOFILE, &rl);
    }
    fd_limit = static_cast<size_t>(rl.rlim_cur);
  }
  size_t crowd = 1000;
  if (fd_limit < 2 * crowd + 256) crowd = (fd_limit - 256) / 2;

  DeterministicRandom rng(9);
  core::SchemeOptions scheme_options = BenchConfig(4096, 8192).scheme;
  scheme_options.batch_ops = true;
  engine::EngineOptions engine_opts;
  engine_opts.num_shards = 4;
  auto engine = MustValue(
      engine::ServerEngine::Create(
          std::make_unique<engine::Scheme2Adapter>(scheme_options),
          engine_opts),
      "engine");
  net::TcpServer::Options server_opts;
  server_opts.serialize_handler = false;  // the engine is thread-safe
  server_opts.reactor_loops = 2;
  server_opts.pipeline_workers = 4;
  auto server = MustValue(net::TcpServer::Start(engine.get(), 0, server_opts),
                          "tcp server");
  auto channel =
      MustValue(net::TcpChannel::Connect(server->port()), "tcp connect");
  net::RetryOptions retry_opts;
  retry_opts.batch_size = 16;
  retry_opts.max_inflight = 8;
  net::RetryingChannel retry(channel.get(), retry_opts, &rng);
  auto client = MustValue(
      core::Scheme2Client::Create(BenchKey(), scheme_options, &retry, &rng),
      "client");

  const size_t kVocab = 64;
  auto corpus =
      phr::GenerateDocuments(8, kVocab, /*keywords_per_doc=*/4, 0.8, 23);
  MustOk(client->Store(corpus), "corpus store");
  std::vector<std::string> keywords;
  for (size_t i = 0; i < kVocab; ++i)
    keywords.push_back(phr::SyntheticKeyword(i));

  auto connect_idle = [&]() -> int {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };

  struct Point {
    size_t idle;
    double p50_us;
    double p99_us;
    double frames_per_sec;
  };
  std::vector<Point> points;
  std::vector<int> idle_fds;
  TablePrinter table({"idle_conns", "active_conns", "p50_us", "p99_us",
                      "frames/s", "threads"});
  table.PrintHeader();
  for (const size_t idle : {size_t{0}, crowd}) {
    while (idle_fds.size() < idle) {
      const int fd = connect_idle();
      if (fd < 0) break;
      idle_fds.push_back(fd);
    }
    // Wait for the acceptor to absorb the crowd before measuring.
    while (server->connections_active() < idle_fds.size() + 1) {
      std::this_thread::yield();
    }

    const int warmup = 8;
    const int passes = 64;
    for (int i = 0; i < warmup; ++i) {
      MustValue(client->MultiSearch(keywords), "warmup multisearch");
    }
    obs::LatencyHistogram hist;
    const uint64_t frames_before =
        channel->stats().frames_sent + channel->stats().frames_received;
    Timer window;
    for (int i = 0; i < passes; ++i) {
      Timer timer;
      MustValue(client->MultiSearch(keywords), "multisearch");
      hist.Record(static_cast<uint64_t>(timer.ElapsedMicros() * 1000.0));
    }
    const double window_s = window.ElapsedMicros() / 1e6;
    const uint64_t frames =
        channel->stats().frames_sent + channel->stats().frames_received -
        frames_before;
    const auto snap = hist.Snap();
    const Point point{idle, snap.quantile_micros(0.50),
                      snap.quantile_micros(0.99),
                      window_s > 0 ? frames / window_s : 0.0};
    points.push_back(point);
    table.PrintRow({FmtU(idle), FmtU(server->connections_active()),
                    Fmt("%.1f", point.p50_us), Fmt("%.1f", point.p99_us),
                    Fmt("%.0f", point.frames_per_sec),
                    FmtU(server->serving_threads())});
  }
  table.PrintRule();
  std::printf("\n");
  for (const int fd : idle_fds) ::close(fd);

  std::string json = "  \"tcp_reactor\": {\n";
  json += "    \"multisearch_keywords\": " + std::to_string(kVocab) + ",\n";
  json += "    \"serving_threads\": " +
          std::to_string(server->serving_threads()) + ",\n";
  for (size_t i = 0; i < points.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    \"idle_%zu\": {\"p50_us\": %.3f, \"p99_us\": %.3f, "
                  "\"frames_per_sec\": %.1f}%s\n",
                  points[i].idle, points[i].p50_us, points[i].p99_us,
                  points[i].frames_per_sec,
                  i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  },\n";
  return json;
}

// T1-search (g): forward-private Scheme 3 under an update-heavy workload.
// Every update burns one chain element and adds one encrypted index entry;
// a search with counter c walks the hash chain c-1 steps and decrypts c
// entries, so search cost grows linearly with the updates a keyword has
// absorbed — the price of forward privacy relative to Scheme 2's
// search-anchored counters. Returns a JSON fragment for BENCH_search.json.
std::string SweepScheme3UpdateHeavy() {
  std::printf(
      "T1-search (g): Scheme 3 (forward-private) update-heavy sweep. Walk\n"
      "steps per search should equal updates-1 and entries decrypted should\n"
      "equal updates: linear search cost is the forward-privacy tradeoff.\n\n");
  TablePrinter table({"updates", "update_us", "walk_steps/search",
                      "entries/search", "search_us", "index_bytes"});
  table.PrintHeader();

  struct Point {
    size_t updates;
    double update_us;
    double walk_steps;
    double entries;
    double search_us;
    uint64_t index_bytes;
  };
  std::vector<Point> points;
  for (size_t updates : {16u, 64u, 256u, 1024u}) {
    DeterministicRandom rng(10);
    core::SystemConfig config = BenchConfig(/*max_documents=*/1 << 12,
                                            /*chain_length=*/4096);
    core::SseSystem sys = MustCreate(core::SystemKind::kScheme3, config, &rng);
    auto* server = static_cast<core::Scheme3Server*>(sys.server.get());

    // Update-heavy phase: each update carries the hot keyword plus a unique
    // churn keyword, so both the hot chain and the index grow per round.
    Timer update_timer;
    for (size_t i = 0; i < updates; ++i) {
      MustOk(sys.client->Store({core::Document::Make(
                 i, "d", {"hot", "churn" + std::to_string(i)})}),
             "store");
    }
    const double update_us = update_timer.ElapsedMicros() / updates;

    const int probes = 8;
    const uint64_t steps_before = server->total_chain_steps();
    const uint64_t entries_before = server->total_entries_decrypted();
    Timer search_timer;
    for (int i = 0; i < probes; ++i) {
      MustValue(sys.client->Search("hot"), "search");
    }
    const Point point{
        updates,
        update_us,
        static_cast<double>(server->total_chain_steps() - steps_before) /
            probes,
        static_cast<double>(server->total_entries_decrypted() -
                            entries_before) /
            probes,
        search_timer.ElapsedMicros() / probes,
        server->stored_index_bytes()};
    points.push_back(point);
    table.PrintRow({FmtU(point.updates), Fmt("%.1f", point.update_us),
                    Fmt("%.1f", point.walk_steps), Fmt("%.1f", point.entries),
                    Fmt("%.1f", point.search_us), FmtU(point.index_bytes)});
  }
  table.PrintRule();
  std::printf("\n");

  std::string json = "  \"scheme3_update_heavy\": {\n";
  for (size_t i = 0; i < points.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    \"updates_%zu\": {\"update_us\": %.3f, "
                  "\"walk_steps\": %.1f, \"entries_decrypted\": %.1f, "
                  "\"search_us\": %.3f, \"index_bytes\": %llu}%s\n",
                  points[i].updates, points[i].update_us, points[i].walk_steps,
                  points[i].entries, points[i].search_us,
                  static_cast<unsigned long long>(points[i].index_bytes),
                  i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  },\n";
  return json;
}

// T1-search (h): brownout behavior at ~2x sustained saturation. A
// throttled scheme-2 engine (known capacity: pipeline_workers / 1ms) sits
// behind the admission controller and a bounded dispatch queue; two
// open-loop burst threads offer mixed traffic well past capacity while a
// closed-loop prober measures what admitted requests actually cost. The
// numbers that matter: mutations shed harder than searches (the brownout
// gradient), and the accepted-op p99 stays near queue-bound x handler
// cost instead of growing with the offered load. Returns a JSON fragment
// for BENCH_search.json.
std::string SweepOverloadBrownout() {
  std::printf(
      "T1-search (h): overload brownout — shed rate and accepted-op\n"
      "latency at ~2x saturation (admission: mutations shed at queue 12,\n"
      "searches at 24, dispatch hard cap 32, 1ms/op handler).\n\n");

  struct ThrottledHandler : public net::MessageHandler {
    explicit ThrottledHandler(net::MessageHandler* inner) : inner(inner) {}
    Result<net::Message> Handle(const net::Message& request) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return inner->Handle(request);
    }
    net::MessageHandler* inner;
  };

  DeterministicRandom rng(11);
  core::SystemConfig config = BenchConfig(/*max_documents=*/1 << 10,
                                          /*chain_length=*/64);
  config.engine_shards = 2;
  core::SseSystem sys = MustCreate(core::SystemKind::kScheme2, config, &rng);
  ThrottledHandler throttled(sys.server.get());

  net::QueueAdmissionController::Options admission_options;
  admission_options.max_queue_depth = 24;
  admission_options.mutation_queue_depth = 12;
  admission_options.retry_after_ms = 5;
  auto controller =
      std::make_shared<net::QueueAdmissionController>(admission_options);

  net::TcpServer::Options server_opts;
  server_opts.serialize_handler = false;
  server_opts.pipeline_workers = 2;
  server_opts.max_dispatch_queue = 32;
  server_opts.admission = controller;
  auto server = MustValue(net::TcpServer::Start(&throttled, 0, server_opts),
                          "tcp server");

  // Open-loop bursters: windows of 48 frames, 3:1 mutations to searches,
  // submitted without pacing. 2 threads x ~1 window/50ms is ~2000 frames/s
  // offered against ~2000/s capacity shared with the prober — sustained
  // past saturation once the prober and reply handling are added.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sent[2] = {{0}, {0}};  // [0]=search, [1]=mutation
  std::atomic<uint64_t> shed[2] = {{0}, {0}};
  std::vector<std::thread> bursters;
  for (int b = 0; b < 2; ++b) {
    bursters.emplace_back([&, b] {
      auto tcp = MustValue(net::TcpChannel::Connect(server->port()),
                           "burst connect");
      uint64_t seq = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<std::pair<net::Channel::CallId, int>> window;
        for (int i = 0; i < 48; ++i) {
          const int mutation = i % 4 != 0 ? 1 : 0;
          net::Message msg{mutation != 0 ? core::kMsgS2UpdateRequest
                                         : core::kMsgS2SearchRequest,
                           Bytes{static_cast<uint8_t>(i)}};
          msg.StampSession(2000 + static_cast<uint64_t>(b), seq++);
          window.emplace_back(tcp->Submit(msg), mutation);
          sent[mutation].fetch_add(1, std::memory_order_relaxed);
        }
        for (const auto& [id, mutation] : window) {
          auto reply = tcp->Await(id);
          if (!reply.ok() &&
              (reply.status().code() == StatusCode::kResourceExhausted ||
               reply.status().code() == StatusCode::kDeadlineExceeded)) {
            shed[mutation].fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Closed-loop prober: blocking search calls, latency of each *admitted*
  // reply recorded (a shed answer is not an accepted op).
  obs::LatencyHistogram accepted;
  uint64_t probe_calls = 0, probe_shed = 0;
  {
    auto tcp =
        MustValue(net::TcpChannel::Connect(server->port()), "probe connect");
    uint64_t seq = 1;
    Timer window;
    while (window.ElapsedMicros() < 1.5e6) {
      net::Message msg{core::kMsgS2SearchRequest, Bytes{0x01}};
      msg.StampSession(3000, seq++);
      Timer timer;
      auto reply = tcp->Call(msg);
      ++probe_calls;
      if (!reply.ok() &&
          reply.status().code() == StatusCode::kResourceExhausted) {
        ++probe_shed;
        continue;
      }
      accepted.Record(static_cast<uint64_t>(timer.ElapsedMicros() * 1000.0));
    }
  }
  stop.store(true);
  for (auto& t : bursters) t.join();
  server->Stop();

  const auto rate = [](uint64_t shed_n, uint64_t sent_n) {
    return sent_n > 0 ? static_cast<double>(shed_n) /
                            static_cast<double>(sent_n)
                      : 0.0;
  };
  const double mutation_shed_rate = rate(shed[1].load(), sent[1].load());
  const double search_shed_rate = rate(shed[0].load(), sent[0].load());
  const obs::LatencyHistogram::Snapshot snap = accepted.Snap();

  TablePrinter table({"class", "offered", "shed", "shed_rate"});
  table.PrintHeader();
  table.PrintRow({"mutation", FmtU(sent[1].load()), FmtU(shed[1].load()),
                  Fmt("%.3f", mutation_shed_rate)});
  table.PrintRow({"search", FmtU(sent[0].load()), FmtU(shed[0].load()),
                  Fmt("%.3f", search_shed_rate)});
  table.PrintRule();
  std::printf(
      "\naccepted probe ops: %llu of %llu (p50 %.0fus, p99 %.0fus); "
      "controller shed %llu total\n\n",
      static_cast<unsigned long long>(snap.count),
      static_cast<unsigned long long>(probe_calls),
      snap.quantile_micros(0.50), snap.quantile_micros(0.99),
      static_cast<unsigned long long>(controller->shed_total()));

  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"overload_brownout\": {\"mutations_offered\": %llu, "
      "\"mutation_shed_rate\": %.4f, \"searches_offered\": %llu, "
      "\"search_shed_rate\": %.4f, \"accepted_p50_us\": %.3f, "
      "\"accepted_p99_us\": %.3f, \"probe_calls\": %llu, "
      "\"probe_shed\": %llu},\n",
      static_cast<unsigned long long>(sent[1].load()), mutation_shed_rate,
      static_cast<unsigned long long>(sent[0].load()), search_shed_rate,
      snap.quantile_micros(0.50), snap.quantile_micros(0.99),
      static_cast<unsigned long long>(probe_calls),
      static_cast<unsigned long long>(probe_shed));
  return std::string(buf);
}

}  // namespace
}  // namespace sse::bench

int main(int argc, char** argv) {
  sse::bench::SweepUniqueKeywords();
  sse::bench::SweepUpdateSearchRatio();
  sse::bench::SweepChainLength();
  sse::bench::SweepEngineThreads();
  const std::string tcp_json = sse::bench::SweepReactorConnectionScale();
  const std::string s3_json = sse::bench::SweepScheme3UpdateHeavy();
  const std::string overload_json = sse::bench::SweepOverloadBrownout();
  sse::bench::SweepLatencyProfile(argc > 1 ? argv[1] : "BENCH_search.json",
                                  tcp_json + s3_json + overload_json);
  return 0;
}
