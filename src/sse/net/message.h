#ifndef SSE_NET_MESSAGE_H_
#define SSE_NET_MESSAGE_H_

#include <cstdint>
#include <string>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::net {

/// High bit of the type tag: the payload is preceded by a session header
/// (client_id ‖ seq ‖ payload CRC-32C). Messages without the flag encode
/// exactly as they always did, so the framing stays backward compatible;
/// the flag is stripped during Decode and `type` is always the clean tag.
inline constexpr uint16_t kMsgFlagSession = 0x8000;

/// Second-highest bit of the type tag: a trace header (trace id ‖ sender
/// span id ‖ flags) follows the session header (if any) and precedes the
/// payload. Untraced messages encode exactly as before, so tracing costs
/// zero wire bytes until a request is actually sampled.
inline constexpr uint16_t kMsgFlagTrace = 0x4000;

/// Third-highest bit of the type tag: a deadline header (remaining budget
/// in milliseconds, u32) follows the trace header (if any) and precedes
/// the payload. The deadline is *relative* — the sender's remaining call
/// budget at send time — so clock skew between endpoints does not matter;
/// the receiver anchors it to its own arrival clock. Like the trace
/// header it sits outside the session CRC, so a retrying client can
/// re-stamp a fresh (smaller) budget on each attempt without invalidating
/// the stamped payload.
inline constexpr uint16_t kMsgFlagDeadline = 0x2000;

/// Trace header flag bits.
inline constexpr uint8_t kTraceFlagSampled = 0x01;

/// Wire message: a 16-bit type tag plus an opaque payload. Each scheme
/// defines its own type constants (see sse/core/*_messages.h); the channel
/// layer only needs the envelope to frame, count and transcribe traffic.
///
/// An optional *session header* supports exactly-once RPC: the client
/// stamps each logical call with its (client_id, seq) identity plus a
/// payload checksum, every retry of that call reuses the stamp, and the
/// server's reply cache dedups on it (see core::ReplyCache). The checksum
/// lets both ends reject corrupted frames with a retryable verdict instead
/// of feeding garbage to the protocol parsers.
struct Message {
  uint16_t type = 0;
  Bytes payload;

  /// Session header (present when has_session). client_id identifies one
  /// retrying client instance, seq its logical call number; payload_crc is
  /// CRC-32C of `payload` at stamping time.
  bool has_session = false;
  uint64_t client_id = 0;
  uint64_t seq = 0;
  uint32_t payload_crc = 0;

  /// Trace header (present when has_trace): which end-to-end request this
  /// frame belongs to and which client-side span sent it, so server-side
  /// spans can parent across the wire (see sse/obs/trace.h).
  bool has_trace = false;
  uint64_t trace_id = 0;
  uint64_t trace_parent = 0;
  uint8_t trace_flags = 0;

  /// Deadline header (present when has_deadline): the sender's remaining
  /// per-call budget in milliseconds at the moment the frame was encoded.
  /// Servers anchor it to arrival time and drop the work (retryable
  /// DEADLINE_EXCEEDED) once the budget is spent — at dequeue, between
  /// batch sub-ops, and before the WAL fsync (see sse/net/deadline.h).
  bool has_deadline = false;
  uint32_t deadline_ms = 0;

  /// Envelope size on the wire: type(2) ‖ u32 length ‖ [session(20)] ‖
  /// [trace(17)] ‖ [deadline(4)] ‖ payload.
  size_t WireSize() const {
    return 2 + 4 + (has_session ? kSessionHeaderSize : 0) +
           (has_trace ? kTraceHeaderSize : 0) +
           (has_deadline ? kDeadlineHeaderSize : 0) + payload.size();
  }

  /// Fills the session header for this payload (computes the CRC). Use on
  /// fully built messages only: mutating `payload` afterwards invalidates
  /// the checksum, which Decode will then reject.
  void StampSession(uint64_t client, uint64_t sequence);

  /// Copies `request`'s session stamp onto this reply so the client can
  /// match it to the call it made (and detect stale replies from a
  /// duplicated or reordered stream). Recomputes the CRC for this payload.
  void EchoSession(const Message& request);

  /// Serializes to the framed wire form.
  Bytes Encode() const;

  /// Parses a framed message; rejects trailing bytes. A session-stamped
  /// message whose payload fails its checksum comes back as CORRUPTION —
  /// the transport delivered damaged bytes and the sender should retry.
  static Result<Message> Decode(BytesView data);

  /// Best-effort parse of just the session stamp of a frame whose full
  /// Decode failed (e.g. a corrupt payload). Lets a pipelined server
  /// address its error reply to the right in-flight call: the stamp fields
  /// sit before the payload, so they usually survive payload damage. False
  /// when the header itself is unreadable or unstamped.
  static bool PeekSession(BytesView data, uint64_t* client_id, uint64_t* seq);

  static constexpr size_t kSessionHeaderSize = 8 + 8 + 4;
  static constexpr size_t kTraceHeaderSize = 8 + 8 + 1;
  static constexpr size_t kDeadlineHeaderSize = 4;
};

/// Message type ranges. Keeping ranges disjoint per scheme makes
/// transcripts self-describing.
inline constexpr uint16_t kMsgRangeCommon = 0x0000;
inline constexpr uint16_t kMsgRangeScheme1 = 0x0100;
inline constexpr uint16_t kMsgRangeScheme2 = 0x0200;
inline constexpr uint16_t kMsgRangeBaseline = 0x0300;

/// Common messages.
inline constexpr uint16_t kMsgError = kMsgRangeCommon + 1;
inline constexpr uint16_t kMsgPutDocument = kMsgRangeCommon + 2;
inline constexpr uint16_t kMsgPutDocumentAck = kMsgRangeCommon + 3;
inline constexpr uint16_t kMsgFetchDocuments = kMsgRangeCommon + 4;
inline constexpr uint16_t kMsgFetchDocumentsResult = kMsgRangeCommon + 5;
/// Batch envelope: N logical sub-ops in one frame (see sse/net/batch.h).
inline constexpr uint16_t kMsgBatch = kMsgRangeCommon + 6;
inline constexpr uint16_t kMsgBatchReply = kMsgRangeCommon + 7;
/// Admin RPC: ask a server for its metrics (and optionally recent sampled
/// spans); served by TcpServer, see sse/obs/stats_rpc.h for the payloads.
inline constexpr uint16_t kMsgStats = kMsgRangeCommon + 8;
inline constexpr uint16_t kMsgStatsReply = kMsgRangeCommon + 9;
/// Replication: primary → follower WAL record shipping plus control plane
/// (see sse/repl/messages.h for the payloads and docs/PROTOCOL.md §7).
/// An empty ReplAppend doubles as a health probe; the ReplAck reply always
/// carries the follower's durable next sequence and its fencing epoch.
inline constexpr uint16_t kMsgReplAppend = kMsgRangeCommon + 10;
inline constexpr uint16_t kMsgReplAck = kMsgRangeCommon + 11;
/// Full-state catch-up for a follower that fell behind WAL compaction: the
/// primary ships its newest snapshot blob with the WAL cut it covers.
inline constexpr uint16_t kMsgReplSnapshot = kMsgRangeCommon + 12;
/// Operator RPC: promote a follower to primary (replays its shipped
/// segments through the normal recovery path, bumps the fencing epoch).
inline constexpr uint16_t kMsgReplPromote = kMsgRangeCommon + 13;

/// Human-readable name for a message type (for transcripts and benches).
std::string MessageTypeName(uint16_t type);

/// Builds the standard error reply carrying a status.
Message MakeErrorMessage(const Status& status);

/// If `msg` is an error reply, decodes it into a Status (always non-OK);
/// otherwise returns OK.
Status DecodeErrorMessage(const Message& msg);

}  // namespace sse::net

#endif  // SSE_NET_MESSAGE_H_
