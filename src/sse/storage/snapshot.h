#ifndef SSE_STORAGE_SNAPSHOT_H_
#define SSE_STORAGE_SNAPSHOT_H_

#include <string>

#include "sse/util/bytes.h"
#include "sse/util/result.h"

namespace sse::storage {

/// Atomic snapshot files.
///
/// A snapshot is an opaque byte blob (the serialized server state) wrapped
/// in a small integrity envelope: magic ‖ version ‖ u64 length ‖ u32 CRC-32C
/// ‖ payload. `Write` stages into `<path>.tmp` and renames, so readers
/// never observe a half-written snapshot; `Read` verifies the envelope and
/// fails with CORRUPTION on any mismatch.
class Snapshot {
 public:
  /// Writes `payload` atomically to `path`.
  static Status Write(const std::string& path, BytesView payload);

  /// Reads and verifies the snapshot at `path`.
  static Result<Bytes> Read(const std::string& path);

  /// True if a snapshot file exists at `path`.
  static bool Exists(const std::string& path);
};

}  // namespace sse::storage

#endif  // SSE_STORAGE_SNAPSHOT_H_
