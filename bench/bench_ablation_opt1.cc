// Experiment E-opt1 — §5.6 Optimization 1 ablation: the server keeps
// searched posting lists decrypted, so a repeat search only decrypts
// segments added since the previous one. Measures repeat-search latency
// and segment decryptions with the cache on vs off.

#include <cstdio>

#include "bench_common.h"
#include "sse/core/scheme2_server.h"

namespace sse::bench {
namespace {

void Run() {
  std::printf(
      "E-opt1: Scheme 2 server plaintext cache (Optimization 1).\n"
      "Workload: per round, x=2 updates to the hot keyword, then one\n"
      "search; 32 rounds. With the cache, each search decrypts only the\n"
      "new segments; without it, all segments so far.\n\n");
  TablePrinter table({"cache", "searches", "segments_decrypted",
                      "decrypts/search", "search_us"});
  table.PrintHeader();
  for (bool cache : {true, false}) {
    DeterministicRandom rng(41);
    core::SystemConfig config = BenchConfig(/*max_documents=*/1 << 12,
                                            /*chain_length=*/512);
    config.scheme.server_plaintext_cache = cache;
    core::SseSystem sys = MustCreate(core::SystemKind::kScheme2, config, &rng);
    auto* server = static_cast<core::Scheme2Server*>(sys.server.get());

    const int rounds = 32;
    uint64_t doc_id = 0;
    double total_us = 0;
    for (int r = 0; r < rounds; ++r) {
      for (int x = 0; x < 2; ++x) {
        MustOk(sys.client->Store(
                   {core::Document::Make(doc_id++, "d", {"hot"})}),
               "store");
      }
      Timer timer;
      MustValue(sys.client->Search("hot"), "search");
      total_us += timer.ElapsedMicros();
    }
    table.PrintRow(
        {cache ? "on" : "off", FmtU(rounds),
         FmtU(server->total_segments_decrypted()),
         Fmt("%.1f",
             static_cast<double>(server->total_segments_decrypted()) / rounds),
         Fmt("%.1f", total_us / rounds)});
  }
  table.PrintRule();
  std::printf("\n");
}

}  // namespace
}  // namespace sse::bench

int main() {
  sse::bench::Run();
  return 0;
}
