#include "sse/security/leakage.h"

#include <cmath>

#include "sse/core/scheme1_messages.h"
#include "sse/core/scheme2_messages.h"

namespace sse::security {

uint64_t LeakageReport::repeated_searches() const {
  uint64_t repeats = 0;
  for (const auto& [token, count] : token_occurrences) {
    if (count > 1) repeats += count - 1;
  }
  return repeats;
}

double LeakageReport::UpdateSizeEntropy() const {
  if (update_sizes.empty()) return 0.0;
  std::map<uint64_t, uint64_t> histogram;
  for (uint64_t size : update_sizes) ++histogram[size];
  const double n = static_cast<double>(update_sizes.size());
  double entropy = 0.0;
  for (const auto& [size, count] : histogram) {
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

LeakageReport AnalyzeTranscript(
    const std::vector<net::Exchange>& transcript) {
  LeakageReport report;
  for (const net::Exchange& exchange : transcript) {
    const net::Message& req = exchange.request;
    switch (req.type) {
      case core::kMsgS1UpdateRequest: {
        Result<core::S1UpdateRequest> parsed =
            core::S1UpdateRequest::FromMessage(req);
        if (parsed.ok()) {
          report.update_keyword_counts.push_back(parsed->entries.size());
          report.update_sizes.push_back(req.WireSize());
        }
        break;
      }
      case core::kMsgS2UpdateRequest: {
        Result<core::S2UpdateRequest> parsed =
            core::S2UpdateRequest::FromMessage(req);
        if (parsed.ok()) {
          report.update_keyword_counts.push_back(parsed->entries.size());
          report.update_sizes.push_back(req.WireSize());
        }
        break;
      }
      case core::kMsgS1SearchRequest: {
        Result<core::S1SearchRequest> parsed =
            core::S1SearchRequest::FromMessage(req);
        if (parsed.ok()) {
          ++report.token_occurrences[HexEncode(parsed->token)];
        }
        break;
      }
      case core::kMsgS2SearchRequest: {
        Result<core::S2SearchRequest> parsed =
            core::S2SearchRequest::FromMessage(req);
        if (parsed.ok()) {
          ++report.token_occurrences[HexEncode(parsed->token)];
        }
        break;
      }
      default:
        break;
    }
    const net::Message& reply = exchange.reply;
    if (reply.type == core::kMsgS1SearchResult) {
      Result<core::S1SearchResult> parsed =
          core::S1SearchResult::FromMessage(reply);
      if (parsed.ok()) report.result_sizes.push_back(parsed->ids.size());
    } else if (reply.type == core::kMsgS2SearchResult) {
      Result<core::S2SearchResult> parsed =
          core::S2SearchResult::FromMessage(reply);
      if (parsed.ok()) report.result_sizes.push_back(parsed->ids.size());
    }
  }
  return report;
}

}  // namespace sse::security
