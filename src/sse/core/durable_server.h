#ifndef SSE_CORE_DURABLE_SERVER_H_
#define SSE_CORE_DURABLE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "sse/core/persistable.h"
#include "sse/core/reply_cache.h"
#include "sse/storage/snapshot.h"
#include "sse/storage/wal.h"

namespace sse::core {

/// Crash-safe shell around any PersistableHandler.
///
/// Layout in `dir`: `state.snap` (last checkpoint) and `wal.log` (mutating
/// request messages journaled since). Recovery = restore snapshot (if any)
/// + re-handle every journaled request; because server handling is
/// deterministic given requests, replay reconstructs the exact state. Only
/// *successfully applied* mutations are journaled, and the reply is
/// withheld until the journal entry is durable — so acknowledged updates
/// survive crashes and rejected requests can never poison recovery. Call
/// Checkpoint() periodically to bound the log.
///
/// Concurrency: Handle() is safe to call from many threads when the inner
/// handler is itself thread-safe (e.g. an engine::ServerEngine). Appends
/// serialize on a WAL mutex; durability syncs use *group commit* — the
/// first waiter fsyncs on behalf of every append that landed before the
/// sync started, so N concurrent mutations cost far fewer than N fsyncs
/// while each reply still waits for its own record to be durable.
/// Checkpoint() quiesces mutating requests (a commit rw-lock) so the
/// snapshot and the truncated WAL stay consistent.
///
/// At-most-once: session-stamped requests (see net::Message::StampSession)
/// are deduped through a ReplyCache *before* the apply+journal path, so a
/// client retry of an already-applied mutation is served the recorded
/// reply instead of being re-applied. The cache is part of the checkpoint
/// snapshot and is rebuilt for journaled mutations during WAL replay —
/// dedup therefore survives crash recovery, closing the window where a
/// crash between apply and reply would otherwise let a retry double-apply
/// a non-idempotent Scheme 1 update. Mutations only enter the cache after
/// their WAL record is durable; non-mutating requests bypass the cache
/// entirely (re-executing a search is harmless, and not recording search
/// results keeps the table small) but still have their session echoed.
class DurableServer : public net::MessageHandler {
 public:
  struct Options {
    /// fsync the WAL before replying to a mutating request (safest).
    bool sync_every_append = true;
    /// Batch concurrent fsyncs (leader/follower group commit). With a
    /// single client this degenerates to one fsync per append; turn it off
    /// only to benchmark the per-append-fsync baseline.
    bool group_commit = true;
    /// Dedup session-stamped requests through a crash-surviving ReplyCache.
    bool enable_reply_cache = true;
    ReplyCache::Options reply_cache;
  };

  /// Opens (and recovers) a durable server over `inner` in directory `dir`,
  /// which must exist. `inner` must outlive the DurableServer.
  static Result<std::unique_ptr<DurableServer>> Open(
      const std::string& dir, PersistableHandler* inner);
  static Result<std::unique_ptr<DurableServer>> Open(
      const std::string& dir, PersistableHandler* inner, Options options);

  Result<net::Message> Handle(const net::Message& request) override;

  /// Writes a snapshot of the inner state and truncates the WAL. Blocks
  /// until in-flight mutating requests have committed, and blocks new ones
  /// while the snapshot is cut.
  Status Checkpoint();

  uint64_t wal_records() const { return wal_->appended_records(); }
  /// fsyncs actually issued; under concurrent load with group commit this
  /// grows slower than wal_records().
  uint64_t wal_syncs() const;
  const std::string& directory() const { return dir_; }

  /// Dedup table for session-stamped requests; null when disabled.
  const ReplyCache* reply_cache() const { return reply_cache_.get(); }

 private:
  DurableServer(std::string dir, PersistableHandler* inner,
                storage::WriteAheadLog wal, Options options,
                std::unique_ptr<ReplyCache> reply_cache)
      : dir_(std::move(dir)),
        inner_(inner),
        wal_(std::make_unique<storage::WriteAheadLog>(std::move(wal))),
        options_(options),
        reply_cache_(std::move(reply_cache)) {}

  Result<net::Message> HandleNew(const net::Message& request);

  /// Unpacks a kMsgBatch envelope, running each sub-op through the same
  /// dedup + apply + journal path as a standalone request but with ONE
  /// group fsync covering every accepted mutation in the envelope. Sub-ops
  /// are journaled as individual stamped messages, so WAL replay is
  /// byte-identical to the unbatched case and needs no changes. Cache
  /// commits happen only after the group sync succeeds — a reply entry
  /// never promises a lost update even when the batch is cut short.
  Result<net::Message> HandleBatch(const net::Message& request);

  /// Blocks until every append up to `seq` is fsynced, electing the caller
  /// as the sync leader if none is running.
  Status SyncUpTo(uint64_t seq);

  std::string dir_;
  PersistableHandler* inner_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  Options options_;
  std::unique_ptr<ReplyCache> reply_cache_;

  /// Held shared by mutating requests for their whole apply+journal span,
  /// exclusively by Checkpoint(): the snapshot sees no half-committed
  /// mutation and no applied-but-unjournaled request can be truncated.
  std::shared_mutex commit_mutex_;

  mutable std::mutex wal_mutex_;  // guards wal_ appends and the fields below
  std::condition_variable sync_cv_;
  uint64_t appended_seq_ = 0;
  uint64_t synced_seq_ = 0;
  bool sync_in_progress_ = false;
  uint64_t syncs_performed_ = 0;
};

}  // namespace sse::core

#endif  // SSE_CORE_DURABLE_SERVER_H_
